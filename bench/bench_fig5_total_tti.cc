// Reproduces Figure 5: total TTI of each workload group for the three
// store variants, on both the ordered and random workload versions.
//
// Expected shape (paper §6.2): RDB-GDB lowest everywhere; the gap between
// RDB-GDB on ordered and random versions of the same workload is small
// (DOTIL's adaptivity is insensitive to query order).

#include <cstdio>

#include "bench_util.h"

namespace dskg::bench {
namespace {

void Run() {
  std::printf("Figure 5: total TTI per workload by store variant "
              "(simulated seconds)\n\n");
  std::printf("%-22s | %12s %12s %12s\n", "workload", "RDB-only",
              "RDB-views", "RDB-GDB");
  Rule();

  const WorkloadKind kinds[] = {WorkloadKind::kYago, WorkloadKind::kWatDivL,
                                WorkloadKind::kWatDivS, WorkloadKind::kWatDivF,
                                WorkloadKind::kWatDivC,
                                WorkloadKind::kBio2Rdf};
  double gdb_ordered_yago = 0, gdb_random_yago = 0;
  for (bool ordered : {true, false}) {
    for (WorkloadKind kind : kinds) {
      char label[64];
      std::snprintf(label, sizeof(label), "%s %s",
                    ordered ? "ordered" : "random", WorkloadKindName(kind));
      double totals[3] = {0, 0, 0};
      int i = 0;
      for (Variant v :
           {Variant::kRdbOnly, Variant::kRdbViews, Variant::kRdbGdb}) {
        totals[i++] = Sec(RunVariant(kind, ordered, v).TotalTtiMicros());
      }
      std::printf("%-22s | %12.4f %12.4f %12.4f\n", label, totals[0],
                  totals[1], totals[2]);
      if (kind == WorkloadKind::kYago) {
        (ordered ? gdb_ordered_yago : gdb_random_yago) = totals[2];
      }
    }
  }
  Rule();
  std::printf("Order insensitivity of RDB-GDB (YAGO): ordered %.4fs vs "
              "random %.4fs (paper: \"little difference\")\n",
              gdb_ordered_yago, gdb_random_yago);
}

}  // namespace
}  // namespace dskg::bench

int main() {
  dskg::bench::Run();
  return 0;
}
