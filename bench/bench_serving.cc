// Serving-tier benchmark: wire-level latency and admission behaviour of
// the src/server/ front end, measured through real loopback sockets.
//
// Two arrival disciplines:
//   * Closed loop — C client threads, each with its own connection,
//     issuing requests back to back. Sweeps hot (one template, shared-
//     plan-cache friendly) and cold ($param template catalog round-
//     robin) mixes at several concurrencies; reports wire p50/p95/p99.
//   * Open loop — one pipelined connection offered a fixed request rate
//     against a deliberately small admission queue. As offered load
//     passes capacity the server sheds with RESOURCE_EXHAUSTED errors
//     (counted, never a hang) while latency of admitted requests stays
//     bounded — the admission-control story in one table.
//
// Row counts, error counts and total simulated charges are
// deterministic (same seeded dataset + workload every run) and guarded
// against bench/baselines/serving.json; wall-clock latency columns
// (`*_us`, `*_wall`) are machine-dependent and ignored by the checker.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/online_store.h"
#include "server/client.h"
#include "server/server.h"

namespace dskg::bench {
namespace {

using core::OnlineStore;
using server::Client;
using server::Response;
using server::RowsResult;
using server::Server;
using server::ServerConfig;
using workload::WorkloadQuery;

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0;
  std::sort(samples->begin(), samples->end());
  const size_t idx = static_cast<size_t>(p * (samples->size() - 1));
  return (*samples)[idx];
}

struct ClientTally {
  uint64_t requests = 0;
  uint64_t rows = 0;
  uint64_t errors = 0;
  double sim_micros = 0;  ///< total simulated charge of answered requests
  std::vector<double> latencies_us;
};

/// One closed-loop client: connect, prepare every distinct text in the
/// mix once, then issue `requests` executions back to back.
ClientTally RunClosedLoopClient(uint16_t port,
                                const std::vector<const WorkloadQuery*>& mix,
                                int requests) {
  ClientTally tally;
  auto client_r = Client::Connect(port);
  if (!client_r.ok()) {
    std::fprintf(stderr, "bench_serving: connect failed: %s\n",
                 client_r.status().ToString().c_str());
    std::abort();
  }
  Client client = std::move(client_r).ValueOrDie();

  // Map each distinct template text in the mix to a statement id.
  std::vector<std::pair<std::string, uint32_t>> stmts;
  auto stmt_for = [&](const std::string& text) -> uint32_t {
    for (const auto& [t, id] : stmts) {
      if (t == text) return id;
    }
    const uint32_t id = static_cast<uint32_t>(stmts.size() + 1);
    auto params = client.Prepare(id, text);
    if (!params.ok()) {
      std::fprintf(stderr, "bench_serving: prepare failed: %s\n",
                   params.status().ToString().c_str());
      std::abort();
    }
    stmts.emplace_back(text, id);
    return id;
  };

  tally.latencies_us.reserve(requests);
  for (int i = 0; i < requests; ++i) {
    const WorkloadQuery& q = *mix[i % mix.size()];
    const uint32_t stmt = stmt_for(q.prepared_text);
    const double start = NowUs();
    auto rows = client.Execute(stmt, q.bindings);
    tally.latencies_us.push_back(NowUs() - start);
    ++tally.requests;
    if (!rows.ok()) {
      ++tally.errors;
      continue;
    }
    tally.rows += rows->rows.size();
    tally.sim_micros += rows->rel_us + rows->graph_us + rows->migrate_us;
  }
  return tally;
}

}  // namespace
}  // namespace dskg::bench

int main(int argc, char** argv) {
  using namespace dskg;
  using namespace dskg::bench;

  JsonReporter json(argc, argv, "serving");

  std::printf("Serving tier: wire latency vs load (loopback TCP)\n");
  std::printf("scale=%.2f\n", ScaleFactor());
  Rule('=');

  rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
  workload::Workload w = MakeWorkload(WorkloadKind::kYago, ds,
                                      /*ordered=*/true);
  core::DualStoreConfig store_cfg;
  store_cfg.num_shards = 4;
  store_cfg.graph_capacity_triples = DefaultGraphBudget(ds);
  OnlineStore store(ds, store_cfg);

  // The hot mix hammers the mutations of one template (one shared-plan-
  // cache entry serves everything); the cold mix cycles the full
  // catalog.
  std::vector<const WorkloadQuery*> hot, cold;
  for (const WorkloadQuery& q : w.queries) {
    if (q.prepared_text == w.queries.front().prepared_text) {
      hot.push_back(&q);
    }
    cold.push_back(&q);
  }

  // ---- closed loop ---------------------------------------------------------
  {
    ServerConfig cfg;
    cfg.workers = 4;
    cfg.max_queue_depth = 1024;
    cfg.max_batch = 16;
    Server server(&store, cfg);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }

    std::printf("\nClosed loop (requests back to back per connection)\n");
    std::printf("%-6s %8s %9s %10s %8s %9s %9s %9s\n", "mix", "clients",
                "requests", "rows", "errors", "p50_us", "p95_us", "p99_us");
    Rule();
    const int per_client = 150;
    for (const auto& [mix_name, mix] :
         {std::pair<const char*, const std::vector<const WorkloadQuery*>*>(
              "hot", &hot),
          {"cold", &cold}}) {
      for (const int clients : {1, 4, 8}) {
        std::vector<ClientTally> tallies(clients);
        std::vector<std::thread> threads;
        const double wall_start = NowUs();
        for (int c = 0; c < clients; ++c) {
          threads.emplace_back([&, c] {
            tallies[c] = RunClosedLoopClient(server.port(), *mix, per_client);
          });
        }
        for (auto& t : threads) t.join();
        const double wall_us = NowUs() - wall_start;

        ClientTally total;
        for (ClientTally& t : tallies) {
          total.requests += t.requests;
          total.rows += t.rows;
          total.errors += t.errors;
          total.sim_micros += t.sim_micros;
          total.latencies_us.insert(total.latencies_us.end(),
                                    t.latencies_us.begin(),
                                    t.latencies_us.end());
        }
        const double p50 = Percentile(&total.latencies_us, 0.50);
        const double p95 = Percentile(&total.latencies_us, 0.95);
        const double p99 = Percentile(&total.latencies_us, 0.99);
        std::printf("%-6s %8d %9llu %10llu %8llu %9.0f %9.0f %9.0f\n",
                    mix_name, clients,
                    static_cast<unsigned long long>(total.requests),
                    static_cast<unsigned long long>(total.rows),
                    static_cast<unsigned long long>(total.errors), p50, p95,
                    p99);
        json.Row("closed_loop",
                 {{"mix", mix_name},
                  {"clients", clients},
                  {"requests", total.requests},
                  {"rows_total", total.rows},
                  {"errors", total.errors},
                  {"sim_micros", total.sim_micros},
                  {"p50_us", p50},
                  {"p95_us", p95},
                  {"p99_us", p99},
                  {"qps_wall", total.requests / (wall_us * 1e-6)}});
      }
    }
    server.Stop();
  }

  // ---- open loop -----------------------------------------------------------
  {
    // Small queue + few workers: offered load beyond capacity must shed
    // with RESOURCE_EXHAUSTED, not queue without bound.
    ServerConfig cfg;
    cfg.workers = 2;
    cfg.max_queue_depth = 32;
    cfg.max_batch = 8;
    Server server(&store, cfg);
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
      return 1;
    }

    std::printf("\nOpen loop (offered rate on one pipelined connection, "
                "queue depth %zu)\n", cfg.max_queue_depth);
    std::printf("%12s %8s %10s %10s %9s %9s %9s\n", "offered_rps", "sent",
                "answered", "rejected", "p50_us", "p95_us", "p99_us");
    Rule();
    for (const int offered_rps : {500, 2000, 8000}) {
      auto client_r = Client::Connect(server.port());
      if (!client_r.ok()) {
        std::fprintf(stderr, "connect failed: %s\n",
                     client_r.status().ToString().c_str());
        return 1;
      }
      Client client = std::move(client_r).ValueOrDie();
      auto params = client.Prepare(1, hot.front()->prepared_text);
      if (!params.ok()) {
        std::fprintf(stderr, "prepare failed: %s\n",
                     params.status().ToString().c_str());
        return 1;
      }

      const int sent_target = std::max(200, offered_rps / 2);  // ~0.5 s
      std::atomic<uint64_t> answered{0}, rejected{0};
      std::vector<double> latencies;
      latencies.reserve(sent_target);
      // Send times are scheduled on the offered-rate grid; latency of an
      // answered request = receive time - its scheduled send time, so
      // queue delay counts against the server.
      std::vector<double> send_us(sent_target);

      std::thread reader([&] {
        for (int i = 0; i < sent_target; ++i) {
          auto resp = client.Receive();
          if (!resp.ok()) return;  // connection torn down
          const uint32_t id = resp->request_id;
          if (resp->type == server::MsgType::kError) {
            ++rejected;
          } else {
            ++answered;
            if (id >= 100 && id - 100 < send_us.size()) {
              latencies.push_back(NowUs() - send_us[id - 100]);
            }
          }
        }
      });

      const auto start = std::chrono::steady_clock::now();
      const std::chrono::nanoseconds gap(1000000000LL / offered_rps);
      for (int i = 0; i < sent_target; ++i) {
        std::this_thread::sleep_until(start + gap * i);
        const WorkloadQuery& q = *hot[i % hot.size()];
        send_us[i] = NowUs();
        if (Status s = client.SendExecute(100 + i, 1, q.bindings); !s.ok()) {
          std::fprintf(stderr, "send failed: %s\n", s.ToString().c_str());
          break;
        }
      }
      reader.join();

      const double p50 = Percentile(&latencies, 0.50);
      const double p95 = Percentile(&latencies, 0.95);
      const double p99 = Percentile(&latencies, 0.99);
      std::printf("%12d %8d %10llu %10llu %9.0f %9.0f %9.0f\n", offered_rps,
                  sent_target, static_cast<unsigned long long>(answered),
                  static_cast<unsigned long long>(rejected), p50, p95, p99);
      json.Row("open_loop",
               {{"offered_rps", offered_rps},
                {"sent", sent_target},
                {"answered_wall", answered.load()},
                {"rejected_wall", rejected.load()},
                {"p50_us", p50},
                {"p95_us", p95},
                {"p99_us", p99}});
    }
    const Server::Stats st = server.stats();
    std::printf("\nserver: admitted=%llu rejected=%llu batches=%llu\n",
                static_cast<unsigned long long>(st.requests_admitted),
                static_cast<unsigned long long>(st.requests_rejected),
                static_cast<unsigned long long>(st.batches));
    server.Stop();
  }

  Rule('=');
  std::printf("done\n");
  return 0;
}
