// Reproduces Table 5: DOTIL parameter tuning on half of the random YAGO
// workload. One parameter varies per block while the others stay at the
// paper's defaults (Table 4: r_BG=25%, prob=50%, alpha=0.5, gamma=0.5,
// lambda=3.5). Reported: TTI and the element-wise sum of all partitions'
// Q-matrices [Q00, Q01, Q10, Q11] — Q00 and Q11 stay exactly 0 because
// the paper pins R(0,0) and R(1,1) at zero.

#include <cstdio>

#include "bench_util.h"

namespace dskg::bench {
namespace {

struct Params {
  double r_bg = 0.25;
  double prob = 0.50;
  double alpha = 0.5;
  double gamma = 0.5;
  double lambda = 3.5;
};

struct Outcome {
  double tti_sec = 0;
  std::array<double, 4> qsums{};
};

Outcome RunWith(const Params& p) {
  rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
  workload::Workload w =
      MakeWorkload(WorkloadKind::kYago, ds, /*ordered=*/false);
  // Half of the random YAGO workload.
  w.queries.resize(w.queries.size() / 2);

  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples =
      static_cast<uint64_t>(static_cast<double>(ds.num_triples()) * p.r_bg);
  core::DualStore store(&ds, cfg);

  core::DotilConfig dc;
  dc.alpha = p.alpha;
  dc.gamma = p.gamma;
  dc.lambda = p.lambda;
  dc.transfer_prob = p.prob;
  core::DotilTuner tuner(dc);

  core::WorkloadRunner runner(&store, &tuner);
  auto m = runner.Run(w, /*num_batches=*/5);
  if (!m.ok()) {
    std::fprintf(stderr, "param run failed: %s\n",
                 m.status().ToString().c_str());
    std::abort();
  }
  return {Sec(m->TotalTtiMicros()), tuner.QMatrixSums()};
}

void PrintRow(const char* param, const char* value, const Outcome& o) {
  std::printf("%-8s %8s | %10.4f | [%.1f, %.4f, %.4f, %.1f]\n", param, value,
              o.tti_sec, o.qsums[0], o.qsums[1], o.qsums[2], o.qsums[3]);
}

void Run() {
  std::printf("Table 5: DOTIL parameter sweep, half random YAGO workload\n");
  std::printf("(TTI in simulated seconds; Q-matrix = summed "
              "[Q00, Q01, Q10, Q11]; paper defaults in Table 4)\n\n");
  std::printf("%-8s %8s | %10s | %s\n", "param", "value", "TTI (s)",
              "Q-matrix sums");
  Rule();

  char buf[32];
  for (double r : {0.20, 0.25, 0.30, 0.35, 0.40}) {
    Params p;
    p.r_bg = r;
    std::snprintf(buf, sizeof(buf), "%.0f%%", r * 100);
    PrintRow("rBG", buf, RunWith(p));
  }
  Rule();
  for (double prob : {0.50, 0.60, 0.70, 0.80, 0.90, 1.00}) {
    Params p;
    p.prob = prob;
    std::snprintf(buf, sizeof(buf), "%.0f%%", prob * 100);
    PrintRow("prob", buf, RunWith(p));
  }
  Rule();
  for (double alpha : {0.3, 0.4, 0.5, 0.6, 0.7}) {
    Params p;
    p.alpha = alpha;
    std::snprintf(buf, sizeof(buf), "%.1f", alpha);
    PrintRow("alpha", buf, RunWith(p));
  }
  Rule();
  for (double gamma : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    Params p;
    p.gamma = gamma;
    std::snprintf(buf, sizeof(buf), "%.1f", gamma);
    PrintRow("gamma", buf, RunWith(p));
  }
  Rule();
  for (double lambda : {3.0, 3.5, 4.0, 4.5, 5.0}) {
    Params p;
    p.lambda = lambda;
    std::snprintf(buf, sizeof(buf), "%.1f", lambda);
    PrintRow("lambda", buf, RunWith(p));
  }
  Rule();
  std::printf("\nShape check (paper): Q00 = Q11 = 0 in every row; larger "
              "prob trains more (higher Q sums); mid-range alpha/gamma "
              "train best.\n");
}

}  // namespace
}  // namespace dskg::bench

int main() {
  dskg::bench::Run();
  return 0;
}
