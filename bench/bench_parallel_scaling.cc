// Parallel sharded query execution: batch throughput versus thread count.
//
// Not a figure of the paper — this bench exercises the ThreadPool-backed
// execution paths added on top of the reproduction:
//
//   1. `WorkloadRunner::RunParallel` — the queries of each batch run
//      concurrently (tuning stays serial between batches). Reported
//      throughput is *wall-clock* queries/second; the simulated TTI is
//      printed alongside and must be identical at every thread count
//      (the equivalence tests enforce the same bit-for-bit).
//   2. `Executor::ExecuteSharded` — one heavy scan-dominated query whose
//      initial index range is split across workers.
//   3. `TraversalMatcher::MatchSharded` — the graph-store analogue: the
//      first pattern step's candidate range is split across workers.
//   4. Parallel load — block-parallel dataset generation plus the
//      permutation/sub-shard-parallel `TripleTable::BulkLoad`.
//
// Wall-clock speedup depends on the machine's core count; the simulated
// numbers do not. DSKG_PARALLEL_MAX_THREADS (default 8) caps the sweep.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "graphstore/matcher.h"
#include "relstore/executor.h"
#include "relstore/triple_table.h"
#include "sparql/parser.h"

namespace dskg::bench {
namespace {

double WallMillis(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int MaxThreads() {
  const char* env = std::getenv("DSKG_PARALLEL_MAX_THREADS");
  if (env == nullptr) return 8;
  const int v = std::atoi(env);
  return v > 0 ? v : 8;
}

void RunBatchScaling(JsonReporter* json) {
  std::printf("Batch-parallel execution (WorkloadRunner::RunParallel)\n");
  std::printf("hardware threads: %zu\n\n", ThreadPool::DefaultThreads());

  Rule();
  std::printf("%8s %12s %14s %10s %16s\n", "threads", "wall ms",
              "queries/s", "speedup", "simulated TTI s");
  Rule();

  double base_ms = 0;
  double base_tti = -1;
  bool tti_consistent = true;
  size_t num_queries = 0;
  for (int threads = 1; threads <= MaxThreads(); threads *= 2) {
    // Every thread count gets a *fresh, identically warmed* store:
    // tuning mutates store state, so reusing one store across the sweep
    // would compare different tuner states, not different thread counts.
    // Dataset generation and warmup are deterministic, so any TTI
    // difference below is a genuine parallelism bug.
    rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
    workload::Workload w = MakeWorkload(WorkloadKind::kYago, ds,
                                        /*ordered=*/true);
    num_queries = w.queries.size();
    core::DualStoreConfig cfg;
    cfg.graph_capacity_triples = DefaultGraphBudget(ds);
    core::DualStore store(&ds, cfg);
    core::DotilTuner tuner;
    core::WorkloadRunner runner(&store, &tuner);

    // Warm the accelerator (serial) as the paper's protocol does, so the
    // timed run compares steady-state query execution.
    for (int warm = 0; warm < 2; ++warm) {
      auto w_run = runner.Run(w, /*num_batches=*/5);
      if (!w_run.ok()) {
        std::fprintf(stderr, "warmup failed: %s\n",
                     w_run.status().ToString().c_str());
        std::abort();
      }
    }

    ThreadPool pool(static_cast<size_t>(threads));
    // Route every parallel surface through the same pool: sharded
    // traversal inside each query, and DOTIL's speculative c1/c2 probes
    // between batches. Simulated TTI must not move.
    store.SetExecutionPool(&pool);
    tuner.set_probe_pool(&pool);
    const auto t0 = std::chrono::steady_clock::now();
    auto m = runner.RunParallel(w, /*num_batches=*/5, &pool);
    const double ms = WallMillis(t0);
    if (!m.ok()) {
      std::fprintf(stderr, "run failed: %s\n", m.status().ToString().c_str());
      std::abort();
    }
    if (threads == 1) base_ms = ms;
    const double tti = m->TotalTtiMicros();
    if (base_tti < 0) base_tti = tti;
    if (tti != base_tti) tti_consistent = false;
    std::printf("%8d %12.1f %14.0f %9.2fx %16.3f\n", threads, ms,
                static_cast<double>(num_queries) * 1000.0 / ms,
                base_ms / ms, Sec(tti));
    if (json != nullptr) {
      json->Row("batch_scaling",
                {{"threads", threads},
                 {"simulated_tti_s", Sec(tti)},
                 {"wall_ms", ms},
                 {"wall_speedup", base_ms / ms}});
    }
  }
  Rule();
  std::printf("simulated TTI identical across thread counts: %s\n\n",
              tti_consistent ? "yes" : "NO (BUG)");
}

void RunShardedScan(JsonReporter* json) {
  std::printf("Sharded scan execution (Executor::ExecuteSharded)\n\n");

  rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
  core::DualStoreConfig cfg;
  cfg.use_graph = false;
  core::DualStore store(&ds, cfg);

  // A scan-heavy star query: every person with a birth city, a name and
  // an advisor — large extents, large intermediates.
  auto q = sparql::Parser::Parse(
      "SELECT ?p ?c ?a WHERE { ?p y:wasBornIn ?c . "
      "?p y:hasAcademicAdvisor ?a . }");
  if (!q.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", q.status().ToString().c_str());
    std::abort();
  }

  Rule();
  std::printf("%8s %12s %10s %12s %16s\n", "shards", "wall ms", "speedup",
              "rows", "simulated s");
  Rule();
  double base_ms = 0;
  for (int shards = 1; shards <= MaxThreads(); shards *= 2) {
    ThreadPool pool(static_cast<size_t>(shards));
    // Re-run a few times so wall time is measurable at bench scale.
    const int reps = 5;
    size_t rows = 0;
    double sim = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      CostMeter meter;
      auto result = store.executor().ExecuteSharded(*q, &meter, &pool, shards);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        std::abort();
      }
      rows = result->NumRows();
      sim = meter.sim_micros();
    }
    const double ms = WallMillis(t0) / reps;
    if (shards == 1) base_ms = ms;
    std::printf("%8d %12.2f %9.2fx %12zu %16.4f\n", shards, ms,
                base_ms / ms, rows, Sec(sim));
    if (json != nullptr) {
      json->Row("sharded_scan",
                {{"shards", shards},
                 {"simulated_s", Sec(sim)},
                 {"rows", rows},
                 {"wall_ms", ms},
                 {"wall_speedup", base_ms / ms}});
    }
  }
  Rule();
}

void RunShardedTraversal(JsonReporter* json) {
  std::printf("Sharded graph traversal (TraversalMatcher::MatchSharded)\n\n");

  rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
  core::DualStoreConfig cfg;
  cfg.use_graph = true;
  cfg.graph_capacity_triples = ds.num_triples();
  core::DualStore store(&ds, cfg);
  CostMeter load;
  for (const rdf::TermId pred : store.table().Predicates()) {
    if (!store.MigratePartition(pred, &load).ok()) {
      std::fprintf(stderr, "migration failed\n");
      std::abort();
    }
  }
  graphstore::TraversalMatcher matcher(&store.graph(), &ds.dict());

  // The flagship star: a heavy traversal whose root step enumerates every
  // wasBornIn edge — the candidate range MatchSharded partitions.
  auto q = sparql::Parser::Parse(
      "SELECT ?p ?c ?a WHERE { ?p y:wasBornIn ?c . "
      "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?c . }");
  if (!q.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", q.status().ToString().c_str());
    std::abort();
  }
  auto plan = matcher.Compile(*q);
  if (!plan.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 plan.status().ToString().c_str());
    std::abort();
  }

  Rule();
  std::printf("%8s %12s %10s %12s %16s\n", "shards", "wall ms", "speedup",
              "rows", "simulated s");
  Rule();
  double base_ms = 0;
  for (int shards = 1; shards <= MaxThreads(); shards *= 2) {
    ThreadPool pool(static_cast<size_t>(shards));
    const int reps = 5;
    size_t rows = 0;
    double sim = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) {
      CostMeter meter;
      auto result =
          matcher.MatchSharded(*plan, nullptr, &meter, &pool, shards);
      if (!result.ok()) {
        std::fprintf(stderr, "traversal failed: %s\n",
                     result.status().ToString().c_str());
        std::abort();
      }
      rows = result->NumRows();
      sim = meter.sim_micros();
    }
    const double ms = WallMillis(t0) / reps;
    if (shards == 1) base_ms = ms;
    std::printf("%8d %12.2f %9.2fx %12zu %16.4f\n", shards, ms,
                base_ms / ms, rows, Sec(sim));
    if (json != nullptr) {
      json->Row("sharded_traversal",
                {{"shards", shards},
                 {"simulated_s", Sec(sim)},
                 {"rows", rows},
                 {"wall_ms", ms},
                 {"wall_speedup", base_ms / ms}});
    }
  }
  Rule();
  std::printf("\n");
}

void RunParallelLoad(JsonReporter* json) {
  std::printf(
      "Parallel load (block-parallel generation + parallel BulkLoad)\n\n");

  Rule();
  std::printf("%8s %12s %12s %10s %12s %14s\n", "threads", "gen ms",
              "load ms", "speedup", "triples", "load sim s");
  Rule();
  double base_ms = 0;
  for (int threads = 1; threads <= MaxThreads(); threads *= 2) {
    ThreadPool pool(static_cast<size_t>(threads));
    workload::YagoConfig c;
    c.target_triples = Scaled(kYagoTriples);

    const auto t0 = std::chrono::steady_clock::now();
    rdf::Dataset ds = workload::GenerateYago(c, &pool);
    const double gen_ms = WallMillis(t0);

    const auto t1 = std::chrono::steady_clock::now();
    relstore::TripleTable table;
    CostMeter meter;
    table.BulkLoad(ds.triples(), &meter, &pool);
    const double load_ms = WallMillis(t1);

    const double total_ms = gen_ms + load_ms;
    if (threads == 1) base_ms = total_ms;
    std::printf("%8d %12.2f %12.2f %9.2fx %12llu %14.4f\n", threads, gen_ms,
                load_ms, base_ms / total_ms,
                static_cast<unsigned long long>(ds.num_triples()),
                Sec(meter.sim_micros()));
    if (json != nullptr) {
      // `triples`, `dict_terms` and `load_sim_s` are deterministic — the
      // regression checker pins them, so a thread-dependent generator or
      // loader shows up as a baseline diff.
      json->Row("parallel_load",
                {{"threads", threads},
                 {"gen_wall_ms", gen_ms},
                 {"load_wall_ms", load_ms},
                 {"wall_speedup", base_ms / total_ms},
                 {"triples", ds.num_triples()},
                 {"dict_terms", static_cast<uint64_t>(ds.dict().size())},
                 {"load_sim_s", Sec(meter.sim_micros())}});
    }
  }
  Rule();
}

}  // namespace
}  // namespace dskg::bench

int main(int argc, char** argv) {
  dskg::bench::JsonReporter json(argc, argv, "bench_parallel_scaling");
  dskg::bench::JsonReporter* j = json.enabled() ? &json : nullptr;
  dskg::bench::RunBatchScaling(j);
  dskg::bench::RunShardedScan(j);
  dskg::bench::RunShardedTraversal(j);
  dskg::bench::RunParallelLoad(j);
  return 0;
}
