#ifndef DSKG_BENCH_BENCH_UTIL_H_
#define DSKG_BENCH_BENCH_UTIL_H_

/// \file bench_util.h
/// Shared helpers for the paper-reproduction benchmark harness.
///
/// Every bench binary regenerates one table or figure of the paper and
/// prints the paper's numbers next to the measured ones. All reported
/// latencies are *simulated* seconds from the deterministic cost model
/// (common/cost.h), so output is identical across machines and runs.
///
/// Scale: the paper ran 14-60M triples on a server; the benches default
/// to a laptop-scale fraction. Set DSKG_BENCH_SCALE (a float, default
/// 1.0) to grow or shrink every dataset proportionally.

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/baseline_tuners.h"
#include "core/dotil.h"
#include "core/dual_store.h"
#include "core/runner.h"
#include "workload/generators.h"
#include "workload/templates.h"
#include "workload/workload.h"

namespace dskg::bench {

/// Global scale multiplier from DSKG_BENCH_SCALE (default 1.0).
inline double ScaleFactor() {
  const char* env = std::getenv("DSKG_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline uint64_t Scaled(uint64_t base) {
  const double v = static_cast<double>(base) * ScaleFactor();
  return v < 1 ? 1 : static_cast<uint64_t>(v);
}

/// Default bench dataset sizes (triples), chosen so the full harness runs
/// in minutes. The paper's originals: YAGO 16.4M, WatDiv 14.6M,
/// Bio2RDF 60.2M.
inline constexpr uint64_t kYagoTriples = 120000;
inline constexpr uint64_t kWatDivTriples = 110000;
inline constexpr uint64_t kBio2RdfTriples = 140000;

/// The six workload groups of §6.1.
enum class WorkloadKind {
  kYago,
  kWatDivL,
  kWatDivS,
  kWatDivF,
  kWatDivC,
  kBio2Rdf,
};

inline const char* WorkloadKindName(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kYago: return "YAGO";
    case WorkloadKind::kWatDivL: return "WatDiv-L";
    case WorkloadKind::kWatDivS: return "WatDiv-S";
    case WorkloadKind::kWatDivF: return "WatDiv-F";
    case WorkloadKind::kWatDivC: return "WatDiv-C";
    case WorkloadKind::kBio2Rdf: return "Bio2RDF";
  }
  return "?";
}

/// Generates the dataset backing a workload kind at bench scale.
inline rdf::Dataset MakeDataset(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kYago: {
      workload::YagoConfig c;
      c.target_triples = Scaled(kYagoTriples);
      return workload::GenerateYago(c);
    }
    case WorkloadKind::kWatDivL:
    case WorkloadKind::kWatDivS:
    case WorkloadKind::kWatDivF:
    case WorkloadKind::kWatDivC: {
      workload::WatDivConfig c;
      c.target_triples = Scaled(kWatDivTriples);
      return workload::GenerateWatDiv(c);
    }
    case WorkloadKind::kBio2Rdf: {
      workload::Bio2RdfConfig c;
      c.target_triples = Scaled(kBio2RdfTriples);
      return workload::GenerateBio2Rdf(c);
    }
  }
  return rdf::Dataset{};
}

/// Template catalog for a workload kind.
inline std::vector<workload::QueryTemplate> TemplatesFor(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kYago: return workload::YagoTemplates();
    case WorkloadKind::kWatDivL: return workload::WatDivLinearTemplates();
    case WorkloadKind::kWatDivS: return workload::WatDivStarTemplates();
    case WorkloadKind::kWatDivF: return workload::WatDivSnowflakeTemplates();
    case WorkloadKind::kWatDivC: return workload::WatDivComplexTemplates();
    case WorkloadKind::kBio2Rdf: return workload::Bio2RdfTemplates();
  }
  return {};
}

/// Builds the (ordered or random) workload for a kind over `ds`.
inline workload::Workload MakeWorkload(WorkloadKind k, const rdf::Dataset& ds,
                                       bool ordered, uint64_t seed = 42) {
  workload::WorkloadBuilder builder(&ds);
  workload::WorkloadOptions opt;
  opt.ordered = ordered;
  opt.seed = seed;
  auto w = builder.Build(WorkloadKindName(k), TemplatesFor(k), opt);
  if (!w.ok()) {
    std::fprintf(stderr, "workload build failed: %s\n",
                 w.status().ToString().c_str());
    std::abort();
  }
  return std::move(w).ValueOrDie();
}

/// B_G used by the store-variant experiments: the paper's tuned
/// r_BG = 25% of the knowledge graph.
inline uint64_t DefaultGraphBudget(const rdf::Dataset& ds) {
  return ds.num_triples() / 4;
}

/// Simulated microseconds -> seconds for printing.
inline double Sec(double micros) { return micros * 1e-6; }

/// Repetitions of each test (paper: 6, averaging the last 5). Override
/// with DSKG_BENCH_REPS to trade precision for wall time.
inline int Reps() {
  const char* env = std::getenv("DSKG_BENCH_REPS");
  if (env == nullptr) return 6;
  const int v = std::atoi(env);
  return v > 1 ? v : 2;
}

/// The three store variants of §6.2.
enum class Variant { kRdbOnly, kRdbViews, kRdbGdb };

inline const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kRdbOnly: return "RDB-only";
    case Variant::kRdbViews: return "RDB-views";
    case Variant::kRdbGdb: return "RDB-GDB";
  }
  return "?";
}

/// Runs one (workload kind, order, store variant) cell of Figures 3-5:
/// fresh dataset + store, 5 batches, warm repetitions per the paper's
/// protocol. Equal storage budgets for views and graph store.
inline core::RunMetrics RunVariant(WorkloadKind kind, bool ordered,
                                   Variant variant) {
  rdf::Dataset ds = MakeDataset(kind);
  workload::Workload w = MakeWorkload(kind, ds, ordered);

  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = DefaultGraphBudget(ds);
  switch (variant) {
    case Variant::kRdbOnly:
      cfg.use_graph = false;
      break;
    case Variant::kRdbViews:
      cfg.use_graph = false;
      cfg.use_views = true;
      cfg.views_budget_rows = DefaultGraphBudget(ds);
      break;
    case Variant::kRdbGdb:
      cfg.use_graph = true;
      break;
  }
  core::DualStore store(&ds, cfg);

  std::unique_ptr<core::Tuner> tuner;
  switch (variant) {
    case Variant::kRdbOnly:
      tuner = nullptr;
      break;
    case Variant::kRdbViews:
      tuner = std::make_unique<core::ViewsTuner>();
      break;
    case Variant::kRdbGdb:
      tuner = std::make_unique<core::DotilTuner>();
      break;
  }
  core::WorkloadRunner runner(&store, tuner.get());
  // RDB-only has no accelerator to warm and is bitwise repeatable: one
  // repetition suffices and equals the paper's averaged value.
  const int reps = (variant == Variant::kRdbOnly) ? 1 : Reps();
  const int warmup = (variant == Variant::kRdbOnly) ? 0 : 1;
  auto m = runner.RunAveraged(w, /*num_batches=*/5, reps, warmup);
  if (!m.ok()) {
    std::fprintf(stderr, "run failed (%s, %s): %s\n", WorkloadKindName(kind),
                 VariantName(variant), m.status().ToString().c_str());
    std::abort();
  }
  return std::move(m).ValueOrDie();
}

/// Prints a rule line.
inline void Rule(char c = '-', int n = 78) {
  for (int i = 0; i < n; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Peak resident set size of this process in KiB (`ru_maxrss` on Linux).
/// Monotone over the process lifetime, so per-record values bracket the
/// high-water mark reached *so far* — the last record of a run carries the
/// run's peak.
inline uint64_t PeakRssKb() {
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
  return static_cast<uint64_t>(ru.ru_maxrss);
}

/// Current resident set size in KiB (VmRSS from /proc/self/status; 0 when
/// unavailable). Unlike `PeakRssKb` this can go down, so a before/after
/// pair brackets the resident footprint one construction added — the
/// number the replica-vs-snapshot memory claims are guarded on.
inline uint64_t CurrentRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  unsigned long long kb = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return static_cast<uint64_t>(kb);
}

/// Machine-readable bench output. Run any wired bench as
///
///   ./bench/bench_xyz --json out.json
///
/// and, in addition to the human-readable tables on stdout, it writes
///
///   {"bench": "<name>", "scale": <DSKG_BENCH_SCALE>,
///    "tables": {"<table>": [{"col": value, ...}, ...], ...}}
///
/// so successive PRs can track a BENCH_*.json perf trajectory with plain
/// tooling (jq, a spreadsheet, CI artifact diffing). Most values are the
/// same deterministic simulated costs the tables print — wall-clock
/// numbers live in explicitly-named columns ("wall_ms", "peak_rss_kb") so
/// trajectory diffs can ignore them. Every record automatically carries
/// `wall_ms` (monotonic milliseconds since reporter construction) and
/// `peak_rss_kb` (getrusage high-water mark at record time), so memory
/// and wall-clock wins land in the BENCH_*.json trajectories alongside
/// the simulated TTI; a caller-supplied cell with the same key wins.
class JsonReporter {
 public:
  /// Scans argv for `--json <path>` (or `--json=<path>`); stays disabled
  /// when absent. `name` identifies the bench in the output.
  JsonReporter(int argc, char** argv, std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--json" && i + 1 < argc) {
        path_ = argv[i + 1];
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = arg.substr(7);
      }
    }
  }

  ~JsonReporter() { Flush(); }

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// One result cell; see `Row`.
  struct Cell {
    Cell(std::string k, double v) : key(std::move(k)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", v);
      json = buf;
    }
    Cell(std::string k, uint64_t v)
        : key(std::move(k)), json(std::to_string(v)) {}
    Cell(std::string k, int v) : key(std::move(k)), json(std::to_string(v)) {}
    Cell(std::string k, const std::string& v)
        : key(std::move(k)), json(Quote(v)) {}
    Cell(std::string k, const char* v) : key(std::move(k)), json(Quote(v)) {}

    std::string key;
    std::string json;
  };

  /// Appends one row of cells to `table`. No-op when disabled.
  void Row(const std::string& table, std::vector<Cell> cells) {
    if (!enabled()) return;
    auto has = [&](const char* key) {
      for (const Cell& c : cells) {
        if (c.key == key) return true;
      }
      return false;
    };
    if (!has("wall_ms")) {
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start_)
              .count();
      cells.emplace_back("wall_ms", wall_ms);
    }
    if (!has("peak_rss_kb")) cells.emplace_back("peak_rss_kb", PeakRssKb());
    // Machine shape, so trajectory tooling can tell a perf shift from a
    // core-count change. Both keys are on the regression checker's ignore
    // list — simulated costs must not depend on them.
    if (!has("threads")) {
      cells.emplace_back("threads",
                         static_cast<uint64_t>(ThreadPool::DefaultThreads()));
    }
    if (!has("hardware_concurrency")) {
      cells.emplace_back(
          "hardware_concurrency",
          static_cast<uint64_t>(std::thread::hardware_concurrency()));
    }
    std::string row = "{";
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) row += ", ";
      row += Quote(cells[i].key) + ": " + cells[i].json;
    }
    row += "}";
    RowsOf(table)->push_back(std::move(row));
  }

  /// Writes the file (also called by the destructor). Safe to call twice.
  /// In addition to the tables, the record carries a `"telemetry"` block
  /// — the global registry's `DumpJson()` at flush time — so every
  /// `--json` bench record ships its runtime metrics (plan-cache churn,
  /// per-shard applier latencies, COW churn, ...) without the bench
  /// opting in. `ci/check_telemetry_schema.py` validates the block;
  /// `ci/check_bench_regression.py` ignores it (wall-clock histograms are
  /// machine-dependent by design).
  void Flush() {
    if (!enabled() || flushed_) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": %s, \"scale\": %g, \"tables\": {",
                 Quote(name_).c_str(), ScaleFactor());
    bool first_table = true;
    for (const auto& [table, rows] : tables_) {
      std::fprintf(f, "%s\n  %s: [", first_table ? "" : ",",
                   Quote(table).c_str());
      for (size_t i = 0; i < rows.size(); ++i) {
        std::fprintf(f, "%s\n    %s", i > 0 ? "," : "", rows[i].c_str());
      }
      std::fprintf(f, "\n  ]");
      first_table = false;
    }
    std::fprintf(f, "\n},\n\"telemetry\": %s}\n",
                 telemetry::MetricsRegistry::Global().DumpJson().c_str());
    std::fclose(f);
    flushed_ = true;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += '"';
    return out;
  }

  /// The rows of `table`, creating it at the back on first use. Tables
  /// flush in first-`Row` order — insertion order, not std::map name
  /// order — so adding a table never reshuffles the others in baseline
  /// diffs, and the order on disk matches the order the bench produced.
  std::vector<std::string>* RowsOf(const std::string& table) {
    for (auto& [name, rows] : tables_) {
      if (name == table) return &rows;
    }
    tables_.emplace_back(table, std::vector<std::string>{});
    return &tables_.back().second;
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::string path_;
  bool flushed_ = false;
  // Insertion-ordered (see RowsOf) so output is deterministic across
  // runs *and* stable under table additions.
  std::vector<std::pair<std::string, std::vector<std::string>>> tables_;
};

}  // namespace dskg::bench

#endif  // DSKG_BENCH_BENCH_UTIL_H_
