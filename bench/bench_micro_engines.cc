// Wall-clock microbenchmarks for the engine primitives, unlike the
// table/figure reproductions which report simulated time. Useful for
// spotting real performance regressions in the substrates, and the
// canonical place the columnar-pipeline perf trajectory is recorded.
//
// Unlike the simulated benches, numbers here are machine-dependent; the
// BENCH_micro_engines.json trajectory should be compared across PRs on
// the same machine only. Sections:
//
//   * btree_insert / btree_lower_bound — index substrate primitives;
//   * parse_flagship — parser throughput on the flagship complex query;
//   * rel_flagship / graph_flagship — one complex query, both engines;
//   * rel_complex_mix / graph_complex_mix — a whole complex-query
//     workload (WatDiv-C resp. YAGO templates) through each engine: the
//     large-selectivity mix whose intermediate-row materialization the
//     slot-compiled columnar pipeline targets.
//
// Scale with DSKG_BENCH_SCALE as usual (>= 8.4 pushes YAGO past 1M
// triples). Run with `--json out.json` for the machine-readable record
// (wall_ms / peak_rss_kb are appended to every row automatically).

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/dual_store.h"
#include "core/session.h"
#include "graphstore/matcher.h"
#include "relstore/btree.h"
#include "relstore/executor.h"
#include "sparql/parser.h"
#include "workload/generators.h"

namespace dskg::bench {
namespace {

constexpr const char* kFlagship =
    "SELECT ?p WHERE { ?p y:wasBornIn ?city . "
    "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }";

/// Runs `body` repeatedly until ~min_ms of wall time or max_iters passes,
/// whichever comes first, and returns (iterations, total milliseconds).
template <typename Fn>
std::pair<uint64_t, double> TimeLoop(Fn&& body, double min_ms = 300.0,
                                     uint64_t max_iters = 1u << 22) {
  using Clock = std::chrono::steady_clock;
  uint64_t iters = 0;
  const auto start = Clock::now();
  double elapsed_ms = 0.0;
  while (iters < max_iters) {
    body();
    ++iters;
    elapsed_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                           start)
                     .count();
    if (elapsed_ms >= min_ms) break;
  }
  return {iters, elapsed_ms};
}

struct Section {
  std::string name;
  uint64_t iters = 0;
  double total_ms = 0.0;
  double per_iter_us = 0.0;
  uint64_t work_items = 0;  // section-specific unit (keys, queries, rows)
};

void Report(JsonReporter* json, std::vector<Section>* all, Section s) {
  s.per_iter_us = s.iters > 0 ? s.total_ms * 1000.0 / static_cast<double>(
                                                         s.iters)
                              : 0.0;
  std::printf("%-22s %10llu iters %12.2f ms total %12.3f us/iter\n",
              s.name.c_str(), static_cast<unsigned long long>(s.iters),
              s.total_ms, s.per_iter_us);
  json->Row("micro", {{"name", s.name},
                      {"iters", s.iters},
                      {"total_ms", s.total_ms},
                      {"per_iter_us", s.per_iter_us},
                      {"work_items", s.work_items}});
  all->push_back(std::move(s));
}

void Run(JsonReporter* json) {
  std::vector<Section> sections;
  std::printf("Engine microbenchmarks (wall clock, DSKG_BENCH_SCALE=%.2f)\n",
              ScaleFactor());
  Rule();

  // ---- index substrate ----------------------------------------------------
  {
    using BenchKey = std::array<uint64_t, 3>;
    constexpr uint64_t kN = 100000;
    uint64_t sink = 0;
    auto [iters, ms] = TimeLoop(
        [&] {
          relstore::BPlusTree<BenchKey> tree;
          for (uint64_t i = 0; i < kN; ++i) {
            tree.Insert({i * 2654435761u % kN, i, i ^ 0x5bd1e995u});
          }
          sink += tree.size();
        },
        300.0, 64);
    Report(json, &sections,
           {"btree_insert_100k", iters, ms, 0.0, kN * iters + (sink & 1)});
  }
  {
    using BenchKey = std::array<uint64_t, 3>;
    constexpr uint64_t kN = 100000;
    relstore::BPlusTree<BenchKey> tree;
    for (uint64_t i = 0; i < kN; ++i) tree.Insert({i, i, i});
    uint64_t q = 0;
    uint64_t sink = 0;
    auto [iters, ms] = TimeLoop([&] {
      auto it = tree.LowerBound({q % kN, 0, 0});
      sink += it.AtEnd() ? 0 : 1;
      ++q;
    });
    Report(json, &sections,
           {"btree_lower_bound", iters, ms, 0.0, sink});
  }

  // ---- parser -------------------------------------------------------------
  {
    uint64_t ok = 0;
    auto [iters, ms] = TimeLoop([&] {
      auto q = sparql::Parser::Parse(kFlagship);
      ok += q.ok() ? 1 : 0;
    });
    Report(json, &sections, {"parse_flagship", iters, ms, 0.0, ok});
  }

  // ---- flagship query, both engines --------------------------------------
  {
    workload::YagoConfig cfg;
    cfg.target_triples = Scaled(60000);
    rdf::Dataset ds = workload::GenerateYago(cfg);
    core::DualStoreConfig sc;
    core::DualStore store(&ds, sc);
    CostMeter load;
    (void)store.MigratePartition(ds.dict().Lookup("y:wasBornIn"), &load);
    (void)store.MigratePartition(ds.dict().Lookup("y:hasAcademicAdvisor"),
                                 &load);
    const sparql::Query flagship =
        sparql::Parser::Parse(kFlagship).ValueOrDie();
    relstore::Executor ex(&store.table(), &ds.dict());
    {
      uint64_t rows = 0;
      auto [iters, ms] = TimeLoop(
          [&] {
            CostMeter meter;
            auto r = ex.Execute(flagship, &meter);
            rows += r.ok() ? r->NumRows() : 0;
          },
          500.0, 1u << 14);
      Report(json, &sections, {"rel_flagship", iters, ms, 0.0, rows});
    }
    {
      uint64_t rows = 0;
      auto [iters, ms] = TimeLoop(
          [&] {
            auto r = store.Process(flagship);
            rows += r.ok() ? r->result.NumRows() : 0;
          },
          500.0, 1u << 14);
      Report(json, &sections, {"graph_flagship", iters, ms, 0.0, rows});
    }
  }

  // ---- complex-query mix, relational engine -------------------------------
  // The paper's large-selectivity complex workload (WatDiv-C): every query
  // through the row-store pipeline. This is the section the slot-compiled
  // columnar refactor targets.
  {
    rdf::Dataset ds = MakeDataset(WorkloadKind::kWatDivC);
    workload::Workload w =
        MakeWorkload(WorkloadKind::kWatDivC, ds, /*ordered=*/true);
    core::DualStoreConfig sc;
    sc.use_graph = false;
    core::DualStore store(&ds, sc);
    relstore::Executor ex(&store.table(), &ds.dict());
    uint64_t rows = 0;
    auto [iters, ms] = TimeLoop(
        [&] {
          for (const workload::WorkloadQuery& wq : w.queries) {
            CostMeter meter;
            auto r = ex.Execute(wq.query, &meter);
            rows += r.ok() ? r->NumRows() : 0;
          }
        },
        1500.0, 64);
    Report(json, &sections, {"rel_complex_mix", iters, ms, 0.0, rows});
    json->Row("mix", {{"engine", "relational"},
                      {"dataset_triples", ds.num_triples()},
                      {"queries_per_pass",
                       static_cast<uint64_t>(w.queries.size())},
                      {"passes", iters},
                      {"pass_ms", iters > 0 ? ms / static_cast<double>(iters)
                                            : 0.0},
                      {"result_rows", rows}});
  }

  // ---- complex-query mix, graph engine ------------------------------------
  // The same YAGO complex templates through the traversal matcher (all
  // their partitions made resident first).
  {
    rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
    workload::Workload w =
        MakeWorkload(WorkloadKind::kYago, ds, /*ordered=*/true);
    core::DualStoreConfig sc;
    sc.use_graph = true;
    sc.graph_capacity_triples = ds.num_triples();
    core::DualStore store(&ds, sc);
    CostMeter load;
    for (const workload::WorkloadQuery& wq : w.queries) {
      for (const std::string& pred : wq.query.ConstantPredicates()) {
        const rdf::TermId id = ds.dict().Lookup(pred);
        if (id != rdf::kInvalidTermId && !store.graph().HasPredicate(id)) {
          (void)store.MigratePartition(id, &load);
        }
      }
    }
    graphstore::TraversalMatcher matcher(&store.graph(), &ds.dict());
    uint64_t rows = 0;
    uint64_t matched = 0;
    auto [iters, ms] = TimeLoop(
        [&] {
          for (const workload::WorkloadQuery& wq : w.queries) {
            CostMeter meter;
            auto r = matcher.Match(wq.query, &meter);
            if (r.ok()) {
              rows += r->NumRows();
              ++matched;
            }
          }
        },
        1500.0, 64);
    Report(json, &sections, {"graph_complex_mix", iters, ms, 0.0, rows});
    // `matched` < queries * passes means some queries errored (e.g. a
    // template predicate absent at this scale): surface it so trajectory
    // runs are comparable, and say so on stdout.
    if (matched != w.queries.size() * iters) {
      std::printf("  NOTE: graph mix matched %llu of %llu query runs "
                  "(rest not answerable by the graph store at this "
                  "scale)\n",
                  static_cast<unsigned long long>(matched),
                  static_cast<unsigned long long>(w.queries.size() * iters));
    }
    json->Row("mix", {{"engine", "graph"},
                      {"dataset_triples", ds.num_triples()},
                      {"queries_per_pass",
                       static_cast<uint64_t>(w.queries.size())},
                      {"passes", iters},
                      {"pass_ms", iters > 0 ? ms / static_cast<double>(iters)
                                            : 0.0},
                      {"matched_queries", matched},
                      {"result_rows", rows}});
  }

  // ---- prepare-once / execute-many vs parse-per-query ---------------------
  // The session-API amortization on the WatDiv-C complex mix: the
  // parse-per-query baseline instantiates each execution the way the old
  // workload path did (string-substitute the template's $params, re-parse,
  // re-identify, re-plan), while the prepared path binds new parameter
  // values into the cached plan. Execution work is identical by design
  // (simulated charges are bit-equal), so the delta is exactly the
  // plan-time work the prepared-statement API removes. A deliberately
  // small extent keeps per-execution engine time low so the amortized
  // share is visible and stable.
  {
    workload::WatDivConfig cfg;
    cfg.target_triples = std::max<uint64_t>(Scaled(8000), 6000);
    rdf::Dataset ds = workload::GenerateWatDiv(cfg);
    workload::WorkloadBuilder builder(&ds);
    workload::WorkloadOptions opt;
    opt.ordered = true;
    auto wres = builder.Build("watdiv-c", workload::WatDivComplexTemplates(),
                              opt);
    if (!wres.ok()) {
      std::fprintf(stderr, "prepared-bench workload build failed: %s\n",
                   wres.status().ToString().c_str());
      std::abort();
    }
    const workload::Workload w = std::move(wres).ValueOrDie();
    core::DualStoreConfig sc;
    sc.use_graph = false;
    core::DualStore store(&ds, sc);

    // The old instantiation path: substitute $params into the text.
    auto instantiate = [](std::string text,
                          const std::vector<std::pair<std::string,
                                                      std::string>>& binds) {
      for (const auto& [p, v] : binds) {
        const std::string needle = "$" + p;
        size_t pos = 0;
        while ((pos = text.find(needle, pos)) != std::string::npos) {
          const size_t after = pos + needle.size();
          const bool boundary =
              after >= text.size() ||
              (!std::isalnum(static_cast<unsigned char>(text[after])) &&
               text[after] != '_');
          if (boundary) {
            text.replace(pos, needle.size(), v);
            pos += v.size();
          } else {
            pos += needle.size();
          }
        }
      }
      return text;
    };
    std::vector<std::string> bound_texts;
    bound_texts.reserve(w.queries.size());
    for (const workload::WorkloadQuery& wq : w.queries) {
      bound_texts.push_back(instantiate(wq.prepared_text, wq.bindings));
    }

    // One prepared handle per query (all handles of a template share the
    // cached plan; binding is the only per-execution setup).
    core::Session session(&store);
    std::vector<core::PreparedQuery> prepared;
    prepared.reserve(w.queries.size());
    for (const workload::WorkloadQuery& wq : w.queries) {
      auto p = session.Prepare(wq.prepared_text);
      if (!p.ok()) {
        std::fprintf(stderr, "Prepare failed: %s\n",
                     p.status().ToString().c_str());
        std::abort();
      }
      prepared.push_back(std::move(p).ValueOrDie());
    }

    using Clock = std::chrono::steady_clock;
    const int kPasses = 8;  // 8 x 15 queries = 120 executions per round
    const int kRounds = 3;  // alternate rounds, keep each path's best
    uint64_t rows_baseline = 0;
    uint64_t rows_prepared = 0;
    double best_baseline_ms = std::numeric_limits<double>::max();
    double best_prepared_ms = std::numeric_limits<double>::max();
    for (int round = 0; round < kRounds; ++round) {
      uint64_t rows_b = 0;
      const auto b0 = Clock::now();
      for (int pass = 0; pass < kPasses; ++pass) {
        for (const std::string& text : bound_texts) {
          auto r = store.Process(text);  // parse + identify + plan + run
          rows_b += r.ok() ? r->result.NumRows() : 0;
        }
      }
      best_baseline_ms = std::min(
          best_baseline_ms,
          std::chrono::duration<double, std::milli>(Clock::now() - b0)
              .count());

      uint64_t rows_p = 0;
      const auto p0 = Clock::now();
      for (int pass = 0; pass < kPasses; ++pass) {
        for (size_t i = 0; i < prepared.size(); ++i) {
          for (const auto& [param, term] : w.queries[i].bindings) {
            (void)prepared[i].Bind(param, term);
          }
          auto r = prepared[i].ExecuteAll();  // bind-patch + run
          rows_p += r.ok() ? r->result.NumRows() : 0;
        }
      }
      best_prepared_ms = std::min(
          best_prepared_ms,
          std::chrono::duration<double, std::milli>(Clock::now() - p0)
              .count());
      rows_baseline = rows_b;
      rows_prepared = rows_p;
    }

    // The removed work, measured directly: substitution + parse +
    // identification + routing + slot compilation (no execution).
    uint64_t prep_iters = 0;
    double prep_ms = 0;
    {
      const auto t0 = Clock::now();
      while (prep_ms < 200.0) {
        for (const workload::WorkloadQuery& wq : w.queries) {
          const std::string text = instantiate(wq.prepared_text, wq.bindings);
          auto q = sparql::Parser::Parse(text);
          if (q.ok()) {
            auto plan = store.Prepare(*q);
            prep_iters += plan.ok() ? 1 : 0;
          }
        }
        prep_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                      .count();
      }
    }

    const uint64_t executions =
        static_cast<uint64_t>(kPasses) * w.queries.size();
    const double base_us = best_baseline_ms * 1000.0 /
                           static_cast<double>(executions);
    const double prep_us_exec = best_prepared_ms * 1000.0 /
                                static_cast<double>(executions);
    const double removed_us =
        prep_iters > 0 ? prep_ms * 1000.0 / static_cast<double>(prep_iters)
                       : 0.0;
    // The CI-guarded bit. The prepared path does strictly less work per
    // execution, but this is a wall-clock comparison on shared runners:
    // a 10% noise margin keeps the gate honest (losing the amortization
    // entirely would make the two paths equal, well past the margin)
    // without flaking on scheduler jitter. The raw per-exec numbers and
    // speedup are recorded alongside for trajectory tracking.
    const int prepared_slower = prep_us_exec <= base_us * 1.10 ? 0 : 1;
    const int rows_match = rows_baseline == rows_prepared ? 1 : 0;
    std::printf("%-22s %10llu execs  %10.3f us/exec parse-per-query\n",
                "prepared_vs_parse",
                static_cast<unsigned long long>(executions), base_us);
    std::printf("%-22s %10s        %10.3f us/exec prepared (bind+run)\n", "",
                "", prep_us_exec);
    std::printf("  removed per execution: %.3f us (substitute+parse+"
                "identify+plan), speedup %.2fx, rows_match=%d\n",
                removed_us, prep_us_exec > 0 ? base_us / prep_us_exec : 0.0,
                rows_match);
    json->Row("prepared",
              {{"name", "prepared_vs_parse"},
               {"executions", executions},
               {"queries_per_pass",
                static_cast<uint64_t>(w.queries.size())},
               {"result_rows", rows_baseline / kPasses},
               {"rows_match", rows_match},
               {"prepared_slower", prepared_slower},
               {"baseline_per_exec_us", base_us},
               {"prepared_per_exec_us", prep_us_exec},
               {"removed_prepare_us", removed_us},
               {"speedup_wall",
                prep_us_exec > 0 ? base_us / prep_us_exec : 0.0}});
  }

  Rule();
  std::printf("peak RSS: %llu KiB\n",
              static_cast<unsigned long long>(PeakRssKb()));
}

}  // namespace
}  // namespace dskg::bench

int main(int argc, char** argv) {
  dskg::bench::JsonReporter json(argc, argv, "micro_engines");
  dskg::bench::Run(&json);
  return 0;
}
