// Wall-clock microbenchmarks for the engine primitives, unlike the
// table/figure reproductions which report simulated time. Useful for
// spotting real performance regressions in the substrates, and the
// canonical place the columnar-pipeline perf trajectory is recorded.
//
// Unlike the simulated benches, numbers here are machine-dependent; the
// BENCH_micro_engines.json trajectory should be compared across PRs on
// the same machine only. Sections:
//
//   * btree_insert / btree_lower_bound — index substrate primitives;
//   * parse_flagship — parser throughput on the flagship complex query;
//   * rel_flagship / graph_flagship — one complex query, both engines;
//   * rel_complex_mix / graph_complex_mix — a whole complex-query
//     workload (WatDiv-C resp. YAGO templates) through each engine: the
//     large-selectivity mix whose intermediate-row materialization the
//     slot-compiled columnar pipeline targets.
//
// Scale with DSKG_BENCH_SCALE as usual (>= 8.4 pushes YAGO past 1M
// triples). Run with `--json out.json` for the machine-readable record
// (wall_ms / peak_rss_kb are appended to every row automatically).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/dual_store.h"
#include "graphstore/matcher.h"
#include "relstore/btree.h"
#include "relstore/executor.h"
#include "sparql/parser.h"
#include "workload/generators.h"

namespace dskg::bench {
namespace {

constexpr const char* kFlagship =
    "SELECT ?p WHERE { ?p y:wasBornIn ?city . "
    "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }";

/// Runs `body` repeatedly until ~min_ms of wall time or max_iters passes,
/// whichever comes first, and returns (iterations, total milliseconds).
template <typename Fn>
std::pair<uint64_t, double> TimeLoop(Fn&& body, double min_ms = 300.0,
                                     uint64_t max_iters = 1u << 22) {
  using Clock = std::chrono::steady_clock;
  uint64_t iters = 0;
  const auto start = Clock::now();
  double elapsed_ms = 0.0;
  while (iters < max_iters) {
    body();
    ++iters;
    elapsed_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                           start)
                     .count();
    if (elapsed_ms >= min_ms) break;
  }
  return {iters, elapsed_ms};
}

struct Section {
  std::string name;
  uint64_t iters = 0;
  double total_ms = 0.0;
  double per_iter_us = 0.0;
  uint64_t work_items = 0;  // section-specific unit (keys, queries, rows)
};

void Report(JsonReporter* json, std::vector<Section>* all, Section s) {
  s.per_iter_us = s.iters > 0 ? s.total_ms * 1000.0 / static_cast<double>(
                                                         s.iters)
                              : 0.0;
  std::printf("%-22s %10llu iters %12.2f ms total %12.3f us/iter\n",
              s.name.c_str(), static_cast<unsigned long long>(s.iters),
              s.total_ms, s.per_iter_us);
  json->Row("micro", {{"name", s.name},
                      {"iters", s.iters},
                      {"total_ms", s.total_ms},
                      {"per_iter_us", s.per_iter_us},
                      {"work_items", s.work_items}});
  all->push_back(std::move(s));
}

void Run(JsonReporter* json) {
  std::vector<Section> sections;
  std::printf("Engine microbenchmarks (wall clock, DSKG_BENCH_SCALE=%.2f)\n",
              ScaleFactor());
  Rule();

  // ---- index substrate ----------------------------------------------------
  {
    using BenchKey = std::array<uint64_t, 3>;
    constexpr uint64_t kN = 100000;
    uint64_t sink = 0;
    auto [iters, ms] = TimeLoop(
        [&] {
          relstore::BPlusTree<BenchKey> tree;
          for (uint64_t i = 0; i < kN; ++i) {
            tree.Insert({i * 2654435761u % kN, i, i ^ 0x5bd1e995u});
          }
          sink += tree.size();
        },
        300.0, 64);
    Report(json, &sections,
           {"btree_insert_100k", iters, ms, 0.0, kN * iters + (sink & 1)});
  }
  {
    using BenchKey = std::array<uint64_t, 3>;
    constexpr uint64_t kN = 100000;
    relstore::BPlusTree<BenchKey> tree;
    for (uint64_t i = 0; i < kN; ++i) tree.Insert({i, i, i});
    uint64_t q = 0;
    uint64_t sink = 0;
    auto [iters, ms] = TimeLoop([&] {
      auto it = tree.LowerBound({q % kN, 0, 0});
      sink += it.AtEnd() ? 0 : 1;
      ++q;
    });
    Report(json, &sections,
           {"btree_lower_bound", iters, ms, 0.0, sink});
  }

  // ---- parser -------------------------------------------------------------
  {
    uint64_t ok = 0;
    auto [iters, ms] = TimeLoop([&] {
      auto q = sparql::Parser::Parse(kFlagship);
      ok += q.ok() ? 1 : 0;
    });
    Report(json, &sections, {"parse_flagship", iters, ms, 0.0, ok});
  }

  // ---- flagship query, both engines --------------------------------------
  {
    workload::YagoConfig cfg;
    cfg.target_triples = Scaled(60000);
    rdf::Dataset ds = workload::GenerateYago(cfg);
    core::DualStoreConfig sc;
    core::DualStore store(&ds, sc);
    CostMeter load;
    (void)store.MigratePartition(ds.dict().Lookup("y:wasBornIn"), &load);
    (void)store.MigratePartition(ds.dict().Lookup("y:hasAcademicAdvisor"),
                                 &load);
    const sparql::Query flagship =
        sparql::Parser::Parse(kFlagship).ValueOrDie();
    relstore::Executor ex(&store.table(), &ds.dict());
    {
      uint64_t rows = 0;
      auto [iters, ms] = TimeLoop(
          [&] {
            CostMeter meter;
            auto r = ex.Execute(flagship, &meter);
            rows += r.ok() ? r->NumRows() : 0;
          },
          500.0, 1u << 14);
      Report(json, &sections, {"rel_flagship", iters, ms, 0.0, rows});
    }
    {
      uint64_t rows = 0;
      auto [iters, ms] = TimeLoop(
          [&] {
            auto r = store.Process(flagship);
            rows += r.ok() ? r->result.NumRows() : 0;
          },
          500.0, 1u << 14);
      Report(json, &sections, {"graph_flagship", iters, ms, 0.0, rows});
    }
  }

  // ---- complex-query mix, relational engine -------------------------------
  // The paper's large-selectivity complex workload (WatDiv-C): every query
  // through the row-store pipeline. This is the section the slot-compiled
  // columnar refactor targets.
  {
    rdf::Dataset ds = MakeDataset(WorkloadKind::kWatDivC);
    workload::Workload w =
        MakeWorkload(WorkloadKind::kWatDivC, ds, /*ordered=*/true);
    core::DualStoreConfig sc;
    sc.use_graph = false;
    core::DualStore store(&ds, sc);
    relstore::Executor ex(&store.table(), &ds.dict());
    uint64_t rows = 0;
    auto [iters, ms] = TimeLoop(
        [&] {
          for (const workload::WorkloadQuery& wq : w.queries) {
            CostMeter meter;
            auto r = ex.Execute(wq.query, &meter);
            rows += r.ok() ? r->NumRows() : 0;
          }
        },
        1500.0, 64);
    Report(json, &sections, {"rel_complex_mix", iters, ms, 0.0, rows});
    json->Row("mix", {{"engine", "relational"},
                      {"dataset_triples", ds.num_triples()},
                      {"queries_per_pass",
                       static_cast<uint64_t>(w.queries.size())},
                      {"passes", iters},
                      {"pass_ms", iters > 0 ? ms / static_cast<double>(iters)
                                            : 0.0},
                      {"result_rows", rows}});
  }

  // ---- complex-query mix, graph engine ------------------------------------
  // The same YAGO complex templates through the traversal matcher (all
  // their partitions made resident first).
  {
    rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
    workload::Workload w =
        MakeWorkload(WorkloadKind::kYago, ds, /*ordered=*/true);
    core::DualStoreConfig sc;
    sc.use_graph = true;
    sc.graph_capacity_triples = ds.num_triples();
    core::DualStore store(&ds, sc);
    CostMeter load;
    for (const workload::WorkloadQuery& wq : w.queries) {
      for (const std::string& pred : wq.query.ConstantPredicates()) {
        const rdf::TermId id = ds.dict().Lookup(pred);
        if (id != rdf::kInvalidTermId && !store.graph().HasPredicate(id)) {
          (void)store.MigratePartition(id, &load);
        }
      }
    }
    graphstore::TraversalMatcher matcher(&store.graph(), &ds.dict());
    uint64_t rows = 0;
    uint64_t matched = 0;
    auto [iters, ms] = TimeLoop(
        [&] {
          for (const workload::WorkloadQuery& wq : w.queries) {
            CostMeter meter;
            auto r = matcher.Match(wq.query, &meter);
            if (r.ok()) {
              rows += r->NumRows();
              ++matched;
            }
          }
        },
        1500.0, 64);
    Report(json, &sections, {"graph_complex_mix", iters, ms, 0.0, rows});
    // `matched` < queries * passes means some queries errored (e.g. a
    // template predicate absent at this scale): surface it so trajectory
    // runs are comparable, and say so on stdout.
    if (matched != w.queries.size() * iters) {
      std::printf("  NOTE: graph mix matched %llu of %llu query runs "
                  "(rest not answerable by the graph store at this "
                  "scale)\n",
                  static_cast<unsigned long long>(matched),
                  static_cast<unsigned long long>(w.queries.size() * iters));
    }
    json->Row("mix", {{"engine", "graph"},
                      {"dataset_triples", ds.num_triples()},
                      {"queries_per_pass",
                       static_cast<uint64_t>(w.queries.size())},
                      {"passes", iters},
                      {"pass_ms", iters > 0 ? ms / static_cast<double>(iters)
                                            : 0.0},
                      {"matched_queries", matched},
                      {"result_rows", rows}});
  }

  Rule();
  std::printf("peak RSS: %llu KiB\n",
              static_cast<unsigned long long>(PeakRssKb()));
}

}  // namespace
}  // namespace dskg::bench

int main(int argc, char** argv) {
  dskg::bench::JsonReporter json(argc, argv, "micro_engines");
  dskg::bench::Run(&json);
  return 0;
}
