// Google-benchmark microbenchmarks for the engine primitives (wall-clock,
// unlike the table/figure reproductions which report simulated time).
// Useful for spotting real performance regressions in the substrates.

#include <benchmark/benchmark.h>

#include "core/dual_store.h"
#include "relstore/btree.h"
#include "sparql/parser.h"
#include "workload/generators.h"

namespace dskg {
namespace {

using BenchKey = std::array<uint64_t, 3>;

void BM_BTreeInsert(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    relstore::BPlusTree<BenchKey> tree;
    for (uint64_t i = 0; i < n; ++i) {
      tree.Insert({i * 2654435761u % n, i, i ^ 0x5bd1e995u});
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(n) * state.iterations());
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BTreeLowerBound(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  relstore::BPlusTree<BenchKey> tree;
  for (uint64_t i = 0; i < n; ++i) tree.Insert({i, i, i});
  uint64_t q = 0;
  for (auto _ : state) {
    auto it = tree.LowerBound({q % n, 0, 0});
    benchmark::DoNotOptimize(it.AtEnd());
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLowerBound)->Arg(100000);

void BM_ParseFlagship(benchmark::State& state) {
  constexpr const char* kText =
      "SELECT ?p WHERE { ?p y:wasBornIn ?city . "
      "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }";
  for (auto _ : state) {
    auto q = sparql::Parser::Parse(kText);
    benchmark::DoNotOptimize(q.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseFlagship);

/// Shared fixture state: one dataset + dual store per process.
struct FlagshipFixture {
  FlagshipFixture() {
    workload::YagoConfig cfg;
    cfg.target_triples = 60000;
    ds = workload::GenerateYago(cfg);
    core::DualStoreConfig sc;
    store = std::make_unique<core::DualStore>(&ds, sc);
    CostMeter meter;
    (void)store->MigratePartition(ds.dict().Lookup("y:wasBornIn"), &meter);
    (void)store->MigratePartition(ds.dict().Lookup("y:hasAcademicAdvisor"),
                                  &meter);
  }
  rdf::Dataset ds;
  std::unique_ptr<core::DualStore> store;
};

FlagshipFixture& Fixture() {
  static FlagshipFixture fixture;
  return fixture;
}

void BM_RelationalFlagship(benchmark::State& state) {
  auto& f = Fixture();
  sparql::Query q = sparql::Parser::Parse(
                        "SELECT ?p WHERE { ?p y:wasBornIn ?city . "
                        "?p y:hasAcademicAdvisor ?a . "
                        "?a y:wasBornIn ?city . }")
                        .ValueOrDie();
  relstore::Executor ex(&f.store->table(), &f.ds.dict());
  for (auto _ : state) {
    CostMeter meter;
    auto r = ex.Execute(q, &meter);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RelationalFlagship);

void BM_GraphFlagship(benchmark::State& state) {
  auto& f = Fixture();
  for (auto _ : state) {
    auto r = f.store->Process(
        "SELECT ?p WHERE { ?p y:wasBornIn ?city . "
        "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }");
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GraphFlagship);

}  // namespace
}  // namespace dskg

BENCHMARK_MAIN();
