// Reproduces Figure 6: cold start of the graph store. The dual store
// begins with an *empty* graph store; DOTIL migrates partitions as
// batches arrive. Reported per batch: total TTI, the share of online cost
// spent in the graph store, and the number of resident partitions.
//
// Expected shape (paper §6.3.2): the graph store's cost share is small in
// the first two batches and rises quickly from the third — the cold start
// barely hurts overall performance.

#include <cstdio>

#include "bench_util.h"

namespace dskg::bench {
namespace {

void RunOne(bool ordered) {
  rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
  workload::Workload w = MakeWorkload(WorkloadKind::kYago, ds, ordered);

  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = DefaultGraphBudget(ds);
  core::DualStore store(&ds, cfg);
  core::DotilTuner tuner;
  core::WorkloadRunner runner(&store, &tuner);

  // Single cold run: warm repetitions would hide the cold start.
  auto m = runner.Run(w, /*num_batches=*/5);
  if (!m.ok()) {
    std::fprintf(stderr, "run failed: %s\n", m.status().ToString().c_str());
    std::abort();
  }

  std::printf("(%s YAGO workload)\n", ordered ? "ordered" : "random");
  std::printf("%6s | %10s | %16s | %10s\n", "batch", "TTI (s)",
              "graph share (%)", "tuning (s)");
  Rule('-', 56);
  for (size_t b = 0; b < m->batches.size(); ++b) {
    const core::BatchMetrics& bm = m->batches[b];
    std::printf("%6zu | %10.4f | %16.2f | %10.4f\n", b + 1,
                Sec(bm.tti_micros), 100.0 * bm.GraphCostProportion(),
                Sec(bm.tuning_micros));
  }
  std::printf("graph store now holds %llu / %llu triples (%zu partitions)\n\n",
              static_cast<unsigned long long>(store.graph().used_triples()),
              static_cast<unsigned long long>(
                  store.graph().capacity_triples()),
              store.graph().LoadedPredicates().size());
}

void Run() {
  std::printf("Figure 6: cost proportion of the graph store from a cold "
              "start (DOTIL, B_G = 25%%)\n\n");
  RunOne(/*ordered=*/true);
  RunOne(/*ordered=*/false);
  std::printf("Shape check (paper): share ~0 in batch 1, rising rapidly "
              "from around batch 3 as DOTIL fills the graph store.\n");
}

}  // namespace
}  // namespace dskg::bench

int main() {
  dskg::bench::Run();
  return 0;
}
