// Shared implementation of Figures 3 and 4: per-batch TTI of the three
// store variants (RDB-only, RDB-views, RDB-GDB) on the six workload
// groups. Figure 3 uses the ordered workloads, Figure 4 the random ones;
// the binary is built twice with DSKG_FIG_ORDERED = 1 / 0.
//
// Expected shape (paper §6.2): RDB-GDB below RDB-only and RDB-views in
// every batch; RDB-views occasionally *above* RDB-only (view lookup +
// view-table joins cost more than they save); RDB-GDB more stable across
// batches as DOTIL accumulates experience.

#include <cstdio>

#include "bench_util.h"

namespace dskg::bench {
namespace {

void Run(bool ordered) {
  std::printf("Figure %d: per-batch TTI by store variant, %s workloads "
              "(simulated seconds)\n\n",
              ordered ? 3 : 4, ordered ? "ordered" : "random");

  const WorkloadKind kinds[] = {WorkloadKind::kYago, WorkloadKind::kWatDivL,
                                WorkloadKind::kWatDivS, WorkloadKind::kWatDivF,
                                WorkloadKind::kWatDivC,
                                WorkloadKind::kBio2Rdf};
  for (WorkloadKind kind : kinds) {
    std::printf("(%s, %s)\n", ordered ? "ordered" : "random",
                WorkloadKindName(kind));
    std::printf("%-10s | %9s %9s %9s %9s %9s | %9s\n", "variant", "batch1",
                "batch2", "batch3", "batch4", "batch5", "total");
    Rule('-', 76);
    double only_total = 0, gdb_total = 0, views_total = 0;
    for (Variant v :
         {Variant::kRdbOnly, Variant::kRdbViews, Variant::kRdbGdb}) {
      const core::RunMetrics m = RunVariant(kind, ordered, v);
      std::printf("%-10s |", VariantName(v));
      for (const core::BatchMetrics& b : m.batches) {
        std::printf(" %9.4f", Sec(b.tti_micros));
      }
      std::printf(" | %9.4f\n", Sec(m.TotalTtiMicros()));
      if (v == Variant::kRdbOnly) only_total = m.TotalTtiMicros();
      if (v == Variant::kRdbViews) views_total = m.TotalTtiMicros();
      if (v == Variant::kRdbGdb) gdb_total = m.TotalTtiMicros();
    }
    Rule('-', 76);
    std::printf("RDB-GDB improvement vs RDB-only: %.2f%%   vs RDB-views: "
                "%.2f%%   (paper averages: 43.72%% / 63.01%%)\n\n",
                only_total > 0 ? 100.0 * (only_total - gdb_total) / only_total
                               : 0.0,
                views_total > 0
                    ? 100.0 * (views_total - gdb_total) / views_total
                    : 0.0);
  }
}

}  // namespace
}  // namespace dskg::bench

int main() {
#ifdef DSKG_FIG_ORDERED
  dskg::bench::Run(DSKG_FIG_ORDERED != 0);
#else
  dskg::bench::Run(true);
#endif
  return 0;
}
