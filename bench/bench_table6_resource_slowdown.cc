// Reproduces Table 6: slowdown of the graph store when DOTIL's parallel
// counterfactual thread leaves only limited spare IO / CPU.
//
// Protocol: warm a dual store (one full DOTIL-tuned pass over the ordered
// YAGO workload), then replay the workload under each ResourceThrottle
// setting and compare the graph-store time against the unthrottled
// replay. Expected shape (paper §6.3.3): sub-1% slowdown under reduced
// IO, mid-single-digit to ~18% under reduced CPU — graph traversal is
// CPU-bound, not IO-bound.

#include <cstdio>

#include "bench_util.h"

namespace dskg::bench {
namespace {

double GraphMicrosOfReplay(core::DualStore* store,
                           const workload::Workload& w) {
  core::WorkloadRunner runner(store, /*tuner=*/nullptr);
  auto m = runner.Run(w, /*num_batches=*/5);
  if (!m.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 m.status().ToString().c_str());
    std::abort();
  }
  double graph = 0;
  for (const core::BatchMetrics& b : m->batches) graph += b.graph_micros;
  return graph;
}

void Run() {
  rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
  workload::Workload w =
      MakeWorkload(WorkloadKind::kYago, ds, /*ordered=*/true);

  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = DefaultGraphBudget(ds);
  core::DualStore store(&ds, cfg);
  core::DotilTuner tuner;
  core::WorkloadRunner warm(&store, &tuner);
  auto warm_run = warm.Run(w, 5);
  if (!warm_run.ok()) {
    std::fprintf(stderr, "warmup failed: %s\n",
                 warm_run.status().ToString().c_str());
    return;
  }

  const double baseline = GraphMicrosOfReplay(&store, w);

  struct Setting {
    const char* label;
    double io;
    double cpu;
    double paper_pct;
  };
  const Setting settings[] = {
      {"IO 40%", 0.40, 1.00, 0.45},
      {"IO 20%", 0.20, 1.00, 0.30},
      {"CPU 40%", 1.00, 0.40, 5.00},
      {"CPU 20%", 1.00, 0.20, 18.00},
  };

  std::printf("Table 6: graph-store slowdown with limited spare resources\n");
  std::printf("(graph-store simulated time on the warmed ordered YAGO "
              "workload; baseline %.4f s)\n\n",
              Sec(baseline));
  std::printf("%-10s | %14s | %14s\n", "spare", "slowdown (%)",
              "paper (%)");
  Rule('-', 48);
  for (const Setting& s : settings) {
    ResourceThrottle t;
    t.spare_io_fraction = s.io;
    t.spare_cpu_fraction = s.cpu;
    store.SetGraphThrottle(t);
    const double throttled = GraphMicrosOfReplay(&store, w);
    store.SetGraphThrottle(ResourceThrottle{});
    std::printf("%-10s | %14.2f | %14.2f\n", s.label,
                100.0 * (throttled - baseline) / baseline, s.paper_pct);
  }
  Rule('-', 48);
  std::printf("Shape check (paper): negligible under reduced IO, "
              "noticeable but bounded under reduced CPU.\n");
}

}  // namespace
}  // namespace dskg::bench

int main() {
  dskg::bench::Run();
  return 0;
}
