// Ablation (DESIGN.md refinement 3): DOTIL with and without the
// value-aware eviction guard, plus a migration-cost account.
//
// Without the guard, Algorithm 1 evicts unconditionally whenever a
// transfer wins its decision, so at bench scale (graph budget far below
// the workload's combined partition working set) every batch flushes the
// previous batch's partitions — online TTI degrades and offline
// migration volume explodes. The guard keeps high-keep-value partitions
// resident unless the incoming set is worth more.

#include <cstdio>

#include "bench_util.h"

namespace dskg::bench {
namespace {

struct Outcome {
  double tti_sec;
  double tuning_sec;
  uint64_t migrated_triples;
};

Outcome RunWith(bool guard, WorkloadKind kind, bool ordered) {
  rdf::Dataset ds = MakeDataset(kind);
  workload::Workload w = MakeWorkload(kind, ds, ordered);
  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = DefaultGraphBudget(ds);
  core::DualStore store(&ds, cfg);
  core::DotilConfig dc;
  dc.eviction_guard = guard;
  core::DotilTuner tuner(dc);
  core::WorkloadRunner runner(&store, &tuner);

  // Two passes (cold + warm), reporting the warm pass — the steady state
  // the guard is supposed to protect.
  auto cold = runner.Run(w, 5);
  auto warm = runner.Run(w, 5);
  if (!cold.ok() || !warm.ok()) {
    std::fprintf(stderr, "run failed\n");
    std::abort();
  }
  // Migration volume proxy: tuning time is dominated by imports.
  return {Sec(warm->TotalTtiMicros()),
          Sec(cold->TotalTuningMicros() + warm->TotalTuningMicros()),
          store.graph().used_triples()};
}

void Run() {
  std::printf("Ablation: DOTIL value-aware eviction guard "
              "(warm-pass TTI, simulated seconds)\n\n");
  std::printf("%-18s | %10s | %10s | %12s | %12s\n", "workload",
              "guard TTI", "no-guard", "guard tune", "no-guard tune");
  Rule();
  const struct {
    WorkloadKind kind;
    bool ordered;
    const char* label;
  } cases[] = {
      {WorkloadKind::kYago, true, "ordered YAGO"},
      {WorkloadKind::kYago, false, "random YAGO"},
      {WorkloadKind::kWatDivF, false, "random WatDiv-F"},
      {WorkloadKind::kBio2Rdf, true, "ordered Bio2RDF"},
  };
  for (const auto& c : cases) {
    const Outcome with = RunWith(true, c.kind, c.ordered);
    const Outcome without = RunWith(false, c.kind, c.ordered);
    std::printf("%-18s | %10.4f | %10.4f | %12.4f | %12.4f\n", c.label,
                with.tti_sec, without.tti_sec, with.tuning_sec,
                without.tuning_sec);
  }
  Rule();
  std::printf("Expected: guard <= no-guard on TTI, with substantially "
              "lower offline tuning (migration) cost.\n");
}

}  // namespace
}  // namespace dskg::bench

int main() {
  dskg::bench::Run();
  return 0;
}
