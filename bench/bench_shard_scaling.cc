// Share-nothing shard scaling: update-ingestion throughput and memory
// versus applier shard count.
//
// Not a figure of the paper — the paper's store is offline between
// batches. This bench exercises the sharded copy-on-write ingestion
// pipeline built on top of the reproduction: an `OnlineStore` splits its
// triple table and graph store into N predicate shards, each with its
// own applier thread; the injector routes every batch's ops and merges
// the outcomes.
//
// Reported per shard count:
//   * inserted / deleted and the simulated apply cost — shard-count
//     *invariant* by construction (the injector resolves ids in op
//     order; each shard applies its slice in op order), so any drift
//     across rows is a sharding bug, not noise;
//   * store_bytes — the deterministic storage-tier footprint (dataset +
//     dictionary + index slabs of the single copy; snapshots share
//     nodes, so this does not grow with N);
//   * wall-clock ingest time and ops/s (machine-dependent, prefixed
//     `wall_` so the CI regression check ignores them).
//
// `--json out.json` additionally writes the table machine-readably
// (bench_util.h JsonReporter) for cross-PR perf trajectories.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/online_store.h"
#include "workload/update_stream.h"

namespace dskg::bench {
namespace {

double WallMillis(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void RunShardScaling(JsonReporter* json) {
  std::printf("Shard scaling: update ingestion vs. applier shards (YAGO)\n");
  std::printf("hardware threads: %zu\n\n", ThreadPool::DefaultThreads());

  Rule();
  std::printf("%8s %10s %9s %9s %12s %14s %12s\n", "shards", "ops",
              "ins", "del", "update s", "store MiB", "wall ops/s");
  Rule();

  const int kBatches = 8;
  const int kOpsPerBatch = 4000;
  for (int shards : {1, 2, 4, 8}) {
    rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
    core::DualStoreConfig cfg;
    cfg.graph_capacity_triples = DefaultGraphBudget(ds);
    cfg.num_shards = shards;

    const uint64_t rss_before_kb = CurrentRssKb();
    core::OnlineStore store(ds, cfg);
    const uint64_t store_rss_kb =
        CurrentRssKb() > rss_before_kb ? CurrentRssKb() - rss_before_kb : 0;

    workload::UpdateStreamConfig uc;
    uc.num_batches = kBatches;
    uc.ops_per_batch = kOpsPerBatch;
    const core::UpdateLog updates = workload::GenerateUpdateStream(ds, uc);

    CostMeter meter;
    uint64_t inserted = 0, deleted = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t b = 0; b < updates.size(); ++b) {
      auto r = store.ApplyUpdates(updates.at(b), &meter);
      if (!r.ok()) {
        std::fprintf(stderr, "apply failed (%d shards): %s\n", shards,
                     r.status().ToString().c_str());
        std::abort();
      }
      inserted += r->inserted;
      deleted += r->deleted;
    }
    const double ingest_ms = WallMillis(t0);
    const uint64_t total_ops =
        static_cast<uint64_t>(kBatches) * kOpsPerBatch;
    const double wall_ops_per_sec =
        ingest_ms > 0 ? 1000.0 * static_cast<double>(total_ops) / ingest_ms
                      : 0;
    const uint64_t store_bytes = store.StorageBytes();

    std::printf("%8d %10llu %9llu %9llu %12.3f %14.2f %12.0f\n", shards,
                static_cast<unsigned long long>(total_ops),
                static_cast<unsigned long long>(inserted),
                static_cast<unsigned long long>(deleted),
                Sec(meter.sim_micros()),
                static_cast<double>(store_bytes) / (1024.0 * 1024.0),
                wall_ops_per_sec);
    if (json != nullptr) {
      json->Row("shard_scaling",
                {{"num_shards", shards},
                 {"total_ops", total_ops},
                 {"inserted", inserted},
                 {"deleted", deleted},
                 {"update_s", Sec(meter.sim_micros())},
                 {"store_bytes", store_bytes},
                 {"store_rss_kb", store_rss_kb},
                 {"wall_ingest_ms", ingest_ms},
                 {"wall_ops_per_sec", wall_ops_per_sec}});
    }
  }
  Rule();
  std::printf(
      "inserted/deleted and the simulated apply cost are shard-count\n"
      "invariant (id resolution and per-shard application preserve op\n"
      "order); wall-clock throughput is what the extra appliers buy.\n"
      "store_bytes is the single-copy storage tier — snapshots add only\n"
      "transient copy-on-write deltas, reclaimed after each batch.\n");
}

}  // namespace
}  // namespace dskg::bench

int main(int argc, char** argv) {
  dskg::bench::JsonReporter json(argc, argv, "bench_shard_scaling");
  dskg::bench::RunShardScaling(json.enabled() ? &json : nullptr);
  return 0;
}
