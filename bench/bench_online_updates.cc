// Online updates: query latency/TTI as a function of update rate.
//
// Not a figure of the paper — the paper's protocol takes the store
// offline between batches and never mutates it while queries run. This
// bench exercises the streaming-update subsystem built on top of the
// reproduction: an `OnlineStore` (share-nothing predicate shards with
// copy-on-write B+-tree snapshots + epoch reclamation) serves the YAGO
// workload's query batches on a thread pool while the injector publishes
// a synthetic insert/delete stream, re-triggering DOTIL when partition
// statistics drift.
//
// Reported per update rate (mutations per query batch):
//   * query TTI — simulated, deterministic, directly comparable with the
//     rate-0 row (the cost of concurrent updates on the query path);
//   * update apply cost and drift-triggered tuning cost (simulated);
//   * retunes, triples inserted/deleted, wall-clock of the whole run.
//
// `--json out.json` additionally writes the table machine-readably
// (bench_util.h JsonReporter) for cross-PR perf trajectories.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "core/online_store.h"
#include "workload/update_stream.h"

namespace dskg::bench {
namespace {

double WallMillis(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void RunUpdateRateSweep(JsonReporter* json) {
  std::printf("Online updates: query TTI vs. update rate (YAGO)\n");
  std::printf("hardware threads: %zu\n\n", ThreadPool::DefaultThreads());

  Rule();
  std::printf("%10s %14s %12s %10s %8s %9s %9s %10s\n", "ops/batch",
              "query TTI s", "update s", "tuning s", "retunes", "ins",
              "del", "wall ms");
  Rule();

  const int kRates[] = {0, 500, 2000, 8000};
  double base_tti = -1;
  // One point per update rate for the TTI-vs-freshness frontier emitted
  // after the sweep: how much simulated query latency buys how much
  // absorbed-update throughput.
  struct FrontierPoint {
    int rate;
    uint64_t absorbed;
    double tti_s;
    double tti_slowdown;
    double update_s;
    double tuning_s;
    double freshness_ops_per_s;
  };
  std::vector<FrontierPoint> frontier;
  for (int rate : kRates) {
    rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
    workload::Workload w = MakeWorkload(WorkloadKind::kYago, ds,
                                        /*ordered=*/true);

    core::DualStoreConfig cfg;
    cfg.graph_capacity_triples = DefaultGraphBudget(ds);
    // Bracket the store's resident footprint: the delta isolates what the
    // online store itself adds on top of the (architecture-independent)
    // dataset/workload scaffolding, so the single-copy-vs-left-right
    // memory claim is a guarded number rather than process noise (CI pins
    // store_bytes at <= 0.65x the frozen left-right baseline).
    const uint64_t rss_before_kb = CurrentRssKb();
    core::OnlineStore store(ds, cfg);
    const uint64_t store_rss_kb =
        CurrentRssKb() > rss_before_kb ? CurrentRssKb() - rss_before_kb : 0;
    const uint64_t store_bytes = store.StorageBytes();

    workload::UpdateStreamConfig uc;
    uc.num_batches = 5;
    uc.ops_per_batch = rate;
    const core::UpdateLog updates = workload::GenerateUpdateStream(ds, uc);

    core::DotilTuner tuner;
    core::WorkloadRunner runner(/*store=*/nullptr, &tuner);
    core::OnlineRunOptions opt;
    opt.num_batches = 5;
    opt.drift_threshold = 0.10;

    ThreadPool pool(ThreadPool::DefaultThreads());
    const auto t0 = std::chrono::steady_clock::now();
    auto m = runner.RunOnline(&store, w, updates, opt, &pool);
    const double wall_ms = WallMillis(t0);
    if (!m.ok()) {
      std::fprintf(stderr, "online run failed (rate %d): %s\n", rate,
                   m.status().ToString().c_str());
      std::abort();
    }

    const double tti = m->TotalTtiMicros();
    if (base_tti < 0) base_tti = tti;
    std::printf("%10d %14.3f %12.3f %10.3f %8d %9llu %9llu %10.1f\n", rate,
                Sec(tti), Sec(m->TotalUpdateMicros()),
                Sec(m->TotalTuningMicros()), m->Retunes(),
                static_cast<unsigned long long>(m->TotalInserted()),
                static_cast<unsigned long long>(m->TotalDeleted()), wall_ms);
    if (json != nullptr) {
      json->Row("tti_vs_update_rate",
                {{"ops_per_batch", rate},
                 {"query_tti_s", Sec(tti)},
                 {"update_s", Sec(m->TotalUpdateMicros())},
                 {"tuning_s", Sec(m->TotalTuningMicros())},
                 {"retunes", m->Retunes()},
                 {"inserted", m->TotalInserted()},
                 {"deleted", m->TotalDeleted()},
                 {"tti_vs_static", base_tti > 0 ? tti / base_tti : 1.0},
                 {"store_bytes", store_bytes},
                 {"store_rss_kb", store_rss_kb},
                 {"wall_ms", wall_ms}});
    }

    // Frontier coordinates, all simulated and deterministic. Freshness =
    // absorbed mutations per simulated second of TOTAL store work (query
    // TTI + update apply + retuning), so a rate that saves apply time but
    // explodes tuning cost does not get credit for it.
    const uint64_t absorbed = m->TotalInserted() + m->TotalDeleted();
    const double total_s =
        Sec(tti) + Sec(m->TotalUpdateMicros()) + Sec(m->TotalTuningMicros());
    frontier.push_back({rate, absorbed, Sec(tti),
                        base_tti > 0 ? tti / base_tti : 1.0,
                        Sec(m->TotalUpdateMicros()),
                        Sec(m->TotalTuningMicros()),
                        total_s > 0 ? absorbed / total_s : 0.0});
  }
  Rule();

  // The frontier table: each rate is one point trading query latency
  // (tti_slowdown vs the static rate-0 run) against update freshness
  // (absorbed mutations per simulated second). A dominated point — more
  // slowdown AND less freshness than a neighbour — marks a rate not
  // worth running at.
  std::printf("\nTTI-vs-freshness frontier\n");
  std::printf("%10s %10s %12s %14s %18s\n", "ops/batch", "absorbed",
              "tti_s", "tti_slowdown", "freshness ops/s");
  Rule();
  for (const FrontierPoint& p : frontier) {
    std::printf("%10d %10llu %12.3f %14.3f %18.1f\n", p.rate,
                static_cast<unsigned long long>(p.absorbed), p.tti_s,
                p.tti_slowdown, p.freshness_ops_per_s);
    if (json != nullptr) {
      json->Row("freshness_frontier",
                {{"ops_per_batch", p.rate},
                 {"absorbed", p.absorbed},
                 {"query_tti_s", p.tti_s},
                 {"tti_slowdown", p.tti_slowdown},
                 {"update_cost_s", p.update_s},
                 {"tuning_cost_s", p.tuning_s},
                 {"freshness_ops_per_s", p.freshness_ops_per_s}});
    }
  }
  Rule();
  std::printf(
      "rate 0 is the static, never-retuned baseline (zero drift means the\n"
      "tuner never re-triggers). TTI differences at higher rates reflect\n"
      "genuinely changed knowledge (inserted facts join, deleted ones stop\n"
      "matching) and drift-triggered DOTIL placements — never reader-side\n"
      "blocking: the read path is epoch-pinned and lock-free.\n");
}

}  // namespace
}  // namespace dskg::bench

int main(int argc, char** argv) {
  dskg::bench::JsonReporter json(argc, argv, "bench_online_updates");
  dskg::bench::RunUpdateRateSweep(json.enabled() ? &json : nullptr);
  return 0;
}
