// Durability tier benchmarks + snapshot format compatibility harness.
//
// Not a figure of the paper — the paper's store is rebuilt from the
// dataset on every run. This bench measures the crash-recovery tier this
// reproduction adds on top (src/persist/): snapshot save/load wall time
// and byte footprint, WAL append throughput under each fsync policy, and
// end-to-end recovery (snapshot load + WAL replay).
//
// Deterministic columns (guarded by ci/check_bench_regression.py against
// bench/baselines/persistence.json): snapshot bytes, bytes/triple, WAL
// bytes and record counts, replayed batches, recovered rows. Wall-clock
// columns end in `_ms`/`_us` and are ignored by the guard.
//
// Compatibility harness:
//   --write-fixture DIR   writes a golden fixture (snapshot + WAL +
//                         expected.json) from a tiny fixed dataset that
//                         does NOT scale with DSKG_BENCH_SCALE.
//   --check-compat DIR    recovers from a COPY of the fixture and prints
//                         one machine-readable line:
//                           COMPAT {"ok": ..., ...}
//                         ci/check_snapshot_compat.py runs this against
//                         the committed fixture in tests/persist/golden/
//                         so a format change that breaks old snapshots
//                         fails CI instead of failing a user.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/online_store.h"
#include "persist/crc32c.h"
#include "persist/file.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "workload/update_stream.h"

namespace dskg::bench {
namespace {

double WallMillis(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string ScratchDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("dskg_bench_" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Canonical row digest: CRC32C over the sorted decoded triples. Two
/// stores with the same digest hold identical logical content.
uint32_t RowsCrc(const core::OnlineStore& store) {
  const rdf::Dataset& ds = store.active().dataset();
  std::vector<std::string> rows;
  rows.reserve(ds.triples().size());
  for (const rdf::Triple& t : ds.triples()) {
    rows.push_back(std::string(ds.dict().TermOf(t.subject)) + "|" +
                   std::string(ds.dict().TermOf(t.predicate)) + "|" +
                   std::string(ds.dict().TermOf(t.object)) + "\n");
  }
  std::sort(rows.begin(), rows.end());
  uint32_t crc = 0;
  for (const std::string& r : rows) {
    crc = persist::Crc32cExtend(crc, r.data(), r.size());
  }
  return crc;
}

// ---- snapshot save/load ----------------------------------------------------

void RunSnapshotBench(JsonReporter* json) {
  std::printf("Snapshot save/load (YAGO at DSKG_BENCH_SCALE=%.2f)\n\n",
              ScaleFactor());
  Rule();
  std::printf("%12s %12s %12s %14s %12s %12s\n", "triples", "save ms",
              "load ms", "snapshot B", "B/triple", "rows crc");
  Rule();

  rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
  core::DualStoreConfig cfg;
  cfg.num_shards = 2;
  cfg.graph_capacity_triples = DefaultGraphBudget(ds);
  core::OnlineStore store(ds, cfg);

  const std::string dir = ScratchDir("snapshot");
  const std::string path = dir + "/" + persist::SnapshotFileName(0);

  const auto save0 = std::chrono::steady_clock::now();
  Status s = persist::SaveStoreSnapshot(store.active(), /*watermark=*/0, path,
                                        nullptr);
  const double save_ms = WallMillis(save0);
  if (!s.ok()) {
    std::fprintf(stderr, "snapshot save failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  uint64_t bytes = 0;
  if (auto sz = persist::FileSize(path); sz.ok()) bytes = *sz;

  const auto load0 = std::chrono::steady_clock::now();
  auto loaded = persist::LoadStoreSnapshot(path);
  const double load_ms = WallMillis(load0);
  if (!loaded.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 loaded.status().ToString().c_str());
    std::abort();
  }

  const uint64_t triples = ds.num_triples();
  const double per_triple =
      triples > 0 ? static_cast<double>(bytes) / static_cast<double>(triples)
                  : 0;
  const uint32_t crc = RowsCrc(store);
  std::printf("%12llu %12.2f %12.2f %14llu %12.2f %12u\n",
              static_cast<unsigned long long>(triples), save_ms, load_ms,
              static_cast<unsigned long long>(bytes), per_triple, crc);
  if (json != nullptr) {
    json->Row("snapshot",
              {{"triples", triples},
               {"snapshot_bytes", bytes},
               {"bytes_per_triple", per_triple},
               {"loaded_triples", loaded->dataset.num_triples()},
               {"rows_crc", static_cast<uint64_t>(crc)},
               {"save_ms", save_ms},
               {"load_ms", load_ms}});
  }
  std::printf("\n");
}

// ---- WAL throughput per sync policy ----------------------------------------

void RunWalBench(JsonReporter* json) {
  std::printf("WAL append throughput per fsync policy\n\n");
  Rule();
  std::printf("%14s %10s %12s %12s %14s\n", "policy", "records", "ops",
              "append ms", "wal bytes");
  Rule();

  rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
  workload::UpdateStreamConfig uc;
  uc.seed = 17;
  uc.num_batches = static_cast<int>(Scaled(200));
  uc.ops_per_batch = 50;
  const core::UpdateLog log = workload::GenerateUpdateStream(ds, uc);

  struct PolicyRow {
    const char* name;
    persist::SyncPolicy policy;
  };
  const PolicyRow policies[] = {
      {"every-batch", persist::SyncPolicy::kEveryBatch},
      {"every-8", persist::SyncPolicy::kEveryN},
      {"interval", persist::SyncPolicy::kInterval},
      {"never", persist::SyncPolicy::kNever},
  };
  for (const PolicyRow& p : policies) {
    const std::string dir = ScratchDir(std::string("wal_") + p.name);
    persist::DurabilityOptions opts;
    opts.dir = dir;
    opts.sync_policy = p.policy;
    auto w = persist::WalWriter::Open(opts, 0);
    if (!w.ok()) {
      std::fprintf(stderr, "wal open failed: %s\n",
                   w.status().ToString().c_str());
      std::abort();
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t k = 0; k < log.size(); ++k) {
      Status s = (*w)->Append(log.at(k), k);
      if (!s.ok()) {
        std::fprintf(stderr, "wal append failed: %s\n", s.ToString().c_str());
        std::abort();
      }
    }
    Status closed = (*w)->Close();
    const double append_ms = WallMillis(t0);
    if (!closed.ok()) {
      std::fprintf(stderr, "wal close failed: %s\n",
                   closed.ToString().c_str());
      std::abort();
    }
    uint64_t bytes = 0;
    if (auto sz = persist::FileSize(dir + "/" + persist::WalSegmentName(0));
        sz.ok()) {
      bytes = *sz;
    }
    std::printf("%14s %10llu %12llu %12.2f %14llu\n", p.name,
                static_cast<unsigned long long>(log.size()),
                static_cast<unsigned long long>(log.TotalOps()), append_ms,
                static_cast<unsigned long long>(bytes));
    if (json != nullptr) {
      json->Row("wal", {{"policy", p.name},
                        {"records", log.size()},
                        {"ops", log.TotalOps()},
                        {"wal_bytes", bytes},
                        {"append_ms", append_ms}});
    }
  }
  std::printf("\n");
}

// ---- end-to-end recovery ---------------------------------------------------

void RunRecoveryBench(JsonReporter* json) {
  std::printf("End-to-end recovery (snapshot load + WAL replay)\n\n");
  Rule();
  std::printf("%12s %12s %14s %14s %12s\n", "batches", "replayed",
              "recover ms", "rows", "rows crc");
  Rule();

  rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
  core::DualStoreConfig cfg;
  cfg.num_shards = 2;
  cfg.graph_capacity_triples = DefaultGraphBudget(ds);

  workload::UpdateStreamConfig uc;
  uc.seed = 31;
  uc.num_batches = 10;
  uc.ops_per_batch = static_cast<int>(Scaled(300));
  const core::UpdateLog log = workload::GenerateUpdateStream(ds, uc);

  persist::DurabilityOptions opts;
  opts.dir = ScratchDir("recovery");
  opts.sync_policy = persist::SyncPolicy::kEveryBatch;

  uint32_t live_crc = 0;
  {
    core::OnlineStore store(ds, cfg, opts);
    if (!store.poison_status().ok()) {
      std::fprintf(stderr, "durable store failed: %s\n",
                   store.poison_status().ToString().c_str());
      std::abort();
    }
    for (uint64_t k = 0; k < log.size(); ++k) {
      auto r = store.ApplyUpdates(log.at(k));
      if (!r.ok()) {
        std::fprintf(stderr, "apply failed: %s\n",
                     r.status().ToString().c_str());
        std::abort();
      }
    }
    live_crc = RowsCrc(store);
    // Dies here without a final snapshot: every batch replays from WAL.
  }

  core::OnlineStore::RecoveryReport report;
  const auto t0 = std::chrono::steady_clock::now();
  auto recovered = core::OnlineStore::Recover(cfg, opts, &report);
  const double recover_ms = WallMillis(t0);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    std::abort();
  }
  const uint32_t crc = RowsCrc(**recovered);
  const uint64_t rows = (*recovered)->active().dataset().num_triples();
  if (crc != live_crc) {
    std::fprintf(stderr, "recovered rows diverge from the live store\n");
    std::abort();
  }
  std::printf("%12llu %12llu %14.2f %14llu %12u\n",
              static_cast<unsigned long long>(log.size()),
              static_cast<unsigned long long>(report.replayed_batches),
              recover_ms, static_cast<unsigned long long>(rows), crc);
  if (json != nullptr) {
    json->Row("recovery", {{"batches", log.size()},
                           {"replayed_batches", report.replayed_batches},
                           {"recovered_rows", rows},
                           {"rows_crc", static_cast<uint64_t>(crc)},
                           {"zero_diff", 1},
                           {"recover_ms", recover_ms}});
  }
  std::printf("\n");
}

// ---- compatibility fixture -------------------------------------------------

/// Tiny fixed dataset for the golden fixture — deliberately independent
/// of DSKG_BENCH_SCALE so the committed bytes never depend on the
/// environment.
rdf::Dataset FixtureDataset() {
  rdf::Dataset ds(1);
  for (int i = 0; i < 40; ++i) {
    ds.Add("s" + std::to_string(i % 7), "p" + std::to_string(i % 3),
           "o" + std::to_string(i));
  }
  return ds;
}

core::UpdateLog FixtureLog() {
  core::UpdateLog log;
  for (int b = 0; b < 3; ++b) {
    core::UpdateBatch batch;
    for (int i = 0; i < 10; ++i) {
      const int v = b * 10 + i;
      if (i % 3 == 0) {
        batch.ops.push_back(core::UpdateOp::Delete(
            "s" + std::to_string(v % 7), "p" + std::to_string(v % 3),
            "o" + std::to_string(v)));
      } else {
        batch.ops.push_back(core::UpdateOp::Insert(
            "n" + std::to_string(v), "p" + std::to_string(v % 3),
            "m" + std::to_string(v)));
      }
    }
    log.Append(std::move(batch));
  }
  return log;
}

core::DualStoreConfig FixtureConfig() {
  core::DualStoreConfig cfg;
  cfg.num_shards = 1;
  cfg.graph_capacity_triples = 64;
  return cfg;
}

int WriteFixture(const std::string& dir) {
  std::filesystem::remove_all(dir);
  rdf::Dataset ds = FixtureDataset();
  const core::UpdateLog log = FixtureLog();

  persist::DurabilityOptions opts;
  opts.dir = dir;
  opts.sync_policy = persist::SyncPolicy::kEveryBatch;

  uint32_t crc = 0;
  uint64_t rows = 0;
  {
    core::OnlineStore store(ds, FixtureConfig(), opts);
    if (!store.poison_status().ok()) {
      std::fprintf(stderr, "fixture store failed: %s\n",
                   store.poison_status().ToString().c_str());
      return 1;
    }
    for (uint64_t k = 0; k < log.size(); ++k) {
      auto r = store.ApplyUpdates(log.at(k));
      if (!r.ok()) {
        std::fprintf(stderr, "fixture apply failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
    }
    crc = RowsCrc(store);
    rows = store.active().dataset().num_triples();
    // Dies WITHOUT a final snapshot: the fixture exercises both the
    // snapshot reader (snapshot-0) and the WAL replay path (3 records).
  }

  auto f = persist::OpenWritable(dir + "/expected.json", /*truncate=*/true);
  if (!f.ok()) return 1;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"format_version\": %u, \"rows\": %llu, \"rows_crc\": %u, "
                "\"wal_batches\": %llu}\n",
                persist::kSnapshotVersion, static_cast<unsigned long long>(rows),
                crc, static_cast<unsigned long long>(log.size()));
  if (!(*f)->Append(buf).ok() || !(*f)->Close().ok()) return 1;
  std::printf("fixture written to %s (rows=%llu crc=%u)\n", dir.c_str(),
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(crc));
  return 0;
}

/// Pulls `"key": <number>` out of a one-line JSON file (fixture
/// expected.json only — not a general parser).
bool JsonNumber(const std::string& text, const std::string& key,
                uint64_t* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  return std::sscanf(text.c_str() + pos + needle.size(), " %llu",
                     reinterpret_cast<unsigned long long*>(out)) == 1;
}

int CheckCompat(const std::string& fixture_dir) {
  // Recover from a COPY: Recover checkpoints into its directory, and the
  // committed golden fixture must stay pristine.
  const std::string work = ScratchDir("compat");
  auto names = persist::ListDir(fixture_dir);
  if (!names.ok()) {
    std::printf("COMPAT {\"ok\": false, \"error\": \"cannot list fixture\"}\n");
    return 1;
  }
  std::string expected_text;
  for (const std::string& name : *names) {
    auto data = persist::ReadFileToString(fixture_dir + "/" + name);
    if (!data.ok()) continue;
    if (name == "expected.json") {
      expected_text = *data;
      continue;
    }
    auto f = persist::OpenWritable(work + "/" + name, /*truncate=*/true);
    if (!f.ok() || !(*f)->Append(*data).ok() || !(*f)->Close().ok()) {
      std::printf("COMPAT {\"ok\": false, \"error\": \"copy failed\"}\n");
      return 1;
    }
  }
  uint64_t want_rows = 0, want_crc = 0, want_batches = 0;
  if (!JsonNumber(expected_text, "rows", &want_rows) ||
      !JsonNumber(expected_text, "rows_crc", &want_crc) ||
      !JsonNumber(expected_text, "wal_batches", &want_batches)) {
    std::printf("COMPAT {\"ok\": false, \"error\": \"bad expected.json\"}\n");
    return 1;
  }

  persist::DurabilityOptions opts;
  opts.dir = work;
  core::OnlineStore::RecoveryReport report;
  auto recovered =
      core::OnlineStore::Recover(FixtureConfig(), opts, &report);
  if (!recovered.ok()) {
    std::printf("COMPAT {\"ok\": false, \"error\": \"%s\"}\n",
                recovered.status().ToString().c_str());
    return 1;
  }
  const uint64_t rows = (*recovered)->active().dataset().num_triples();
  const uint32_t crc = RowsCrc(**recovered);
  const bool ok = rows == want_rows && crc == want_crc &&
                  report.replayed_batches == want_batches &&
                  report.wal_status.ok() && !report.dropped_tail;
  std::printf(
      "COMPAT {\"ok\": %s, \"rows\": %llu, \"want_rows\": %llu, "
      "\"rows_crc\": %u, \"want_crc\": %llu, \"replayed\": %llu, "
      "\"want_replayed\": %llu}\n",
      ok ? "true" : "false", static_cast<unsigned long long>(rows),
      static_cast<unsigned long long>(want_rows), crc,
      static_cast<unsigned long long>(want_crc),
      static_cast<unsigned long long>(report.replayed_batches),
      static_cast<unsigned long long>(want_batches));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dskg::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--write-fixture" && i + 1 < argc) {
      return dskg::bench::WriteFixture(argv[i + 1]);
    }
    if (arg.rfind("--write-fixture=", 0) == 0) {
      return dskg::bench::WriteFixture(arg.substr(16));
    }
    if (arg == "--check-compat" && i + 1 < argc) {
      return dskg::bench::CheckCompat(argv[i + 1]);
    }
    if (arg.rfind("--check-compat=", 0) == 0) {
      return dskg::bench::CheckCompat(arg.substr(15));
    }
  }
  dskg::bench::JsonReporter json(argc, argv, "bench_persistence");
  dskg::bench::RunSnapshotBench(json.enabled() ? &json : nullptr);
  dskg::bench::RunWalBench(json.enabled() ? &json : nullptr);
  dskg::bench::RunRecoveryBench(json.enabled() ? &json : nullptr);
  return 0;
}
