// Telemetry overhead guard: the wall-clock cost of the instrumented hot
// path must stay negligible. Runs the flagship complex query through a
// Session with the global registry enabled and disabled, interleaved in
// A/B rounds so CPU-frequency drift and cache warmth hit both modes
// equally, and compares the *best* round per mode (min-of-reps is the
// standard noise-robust estimator for "how fast can this go").
//
// Exit status is the CI contract: non-zero when the enabled/disabled
// ratio exceeds DSKG_TELEM_OVERHEAD_MAX (default 1.05, i.e. <= 5%
// overhead). Wall-clock numbers are machine-dependent as usual; the
// *ratio* is what the guard pins down.
//
// Run with `--json out.json` for the machine-readable record.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/telemetry.h"
#include "core/dual_store.h"
#include "core/session.h"
#include "workload/generators.h"

namespace dskg::bench {
namespace {

constexpr const char* kFlagship =
    "SELECT ?p WHERE { ?p y:wasBornIn ?city . "
    "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }";

double MaxRatio() {
  const char* env = std::getenv("DSKG_TELEM_OVERHEAD_MAX");
  if (env == nullptr) return 1.05;
  const double v = std::atof(env);
  return v > 1.0 ? v : 1.05;
}

/// Milliseconds to execute the flagship `iters` times on `session`.
double RunRound(core::Session* session, int iters) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  for (int i = 0; i < iters; ++i) {
    auto exec = session->Execute(kFlagship);
    if (!exec.ok()) {
      std::fprintf(stderr, "flagship failed: %s\n",
                   exec.status().ToString().c_str());
      std::abort();
    }
  }
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  JsonReporter json(argc, argv, "bench_telemetry_overhead");

  workload::YagoConfig cfg;
  cfg.target_triples = Scaled(30000);
  rdf::Dataset ds = workload::GenerateYago(cfg);
  core::DualStore store(&ds, {});
  core::Session session(&store);

  auto& reg = telemetry::MetricsRegistry::Global();
  const bool was_enabled = reg.enabled();

  // Sized so one round is long enough to time reliably (~tens of ms)
  // but a full A/B run stays in CI-smoke territory.
  const int iters = 20;
  const int rounds = 5;

  // Warm both modes once (plan cache, allocator, branch predictors).
  reg.set_enabled(true);
  RunRound(&session, iters);
  reg.set_enabled(false);
  RunRound(&session, iters);

  double best_on = std::numeric_limits<double>::infinity();
  double best_off = std::numeric_limits<double>::infinity();
  std::printf("%-8s %14s %14s\n", "round", "enabled_ms", "disabled_ms");
  Rule();
  for (int r = 0; r < rounds; ++r) {
    reg.set_enabled(true);
    const double on = RunRound(&session, iters);
    reg.set_enabled(false);
    const double off = RunRound(&session, iters);
    best_on = std::min(best_on, on);
    best_off = std::min(best_off, off);
    std::printf("%-8d %14.3f %14.3f\n", r, on, off);
    json.Row("rounds", {{"round", r},
                        {"enabled_ms", on},
                        {"disabled_ms", off}});
  }
  reg.set_enabled(was_enabled);

  const double ratio = best_off > 0 ? best_on / best_off : 1.0;
  const double limit = MaxRatio();
  Rule();
  std::printf("best enabled  %10.3f ms\n", best_on);
  std::printf("best disabled %10.3f ms\n", best_off);
  std::printf("ratio         %10.4f   (limit %.2f)\n", ratio, limit);
  json.Row("summary", {{"best_enabled_ms", best_on},
                       {"best_disabled_ms", best_off},
                       {"ratio", ratio},
                       {"limit", limit}});

  if (ratio > limit) {
    std::fprintf(stderr,
                 "FAIL: telemetry overhead ratio %.4f exceeds %.2f\n", ratio,
                 limit);
    return 1;
  }
  std::printf("OK: telemetry overhead within %.2fx\n", limit);
  return 0;
}

}  // namespace
}  // namespace dskg::bench

int main(int argc, char** argv) { return dskg::bench::Main(argc, argv); }
