// Reproduces Figure 7: time-varying share of IO and CPU consumed by the
// graph store while the counterfactual thread holds 60% of the IO budget
// (i.e. 40% spare IO). We trace the ordered YAGO workload from a cold
// start and report, over a sliding window of queries, the percentage of
// the window's simulated cost that the graph store's IO and CPU account
// for.
//
// Expected shape (paper §6.3.3): wide fluctuation at the beginning (the
// routing mix is unsettled and early dual-route queries ship intermediate
// results), then stabilization at a small value — the graph store is
// cheap relative to the relational work around it.

#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace dskg::bench {
namespace {

void Run() {
  rdf::Dataset ds = MakeDataset(WorkloadKind::kYago);
  workload::Workload w =
      MakeWorkload(WorkloadKind::kYago, ds, /*ordered=*/true);

  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = DefaultGraphBudget(ds);
  cfg.graph_throttle.spare_io_fraction = 0.40;
  core::DualStore store(&ds, cfg);
  core::DotilTuner tuner;
  core::WorkloadRunner runner(&store, &tuner);
  auto m = runner.Run(w, /*num_batches=*/5);
  if (!m.ok()) {
    std::fprintf(stderr, "run failed: %s\n", m.status().ToString().c_str());
    return;
  }

  // Flatten per-query traces across batches.
  std::vector<core::QueryTrace> trace;
  for (const core::BatchMetrics& b : m->batches) {
    trace.insert(trace.end(), b.queries.begin(), b.queries.end());
  }

  std::printf("Figure 7: graph-store share of IO / CPU over time "
              "(40%% spare IO, sliding window of 5 queries)\n\n");
  std::printf("%7s | %12s | %12s | %s\n", "query", "IO (%)", "CPU (%)",
              "route");
  Rule('-', 56);
  constexpr size_t kWindow = 5;
  for (size_t i = 0; i < trace.size(); ++i) {
    const size_t lo = i + 1 >= kWindow ? i + 1 - kWindow : 0;
    double total = 0, gio = 0, gcpu = 0;
    for (size_t j = lo; j <= i; ++j) {
      total += trace[j].total_micros;
      gio += trace[j].graph_io_micros;
      gcpu += trace[j].graph_cpu_micros;
    }
    std::printf("%7zu | %12.3f | %12.3f | %s\n", i + 1,
                total > 0 ? 100.0 * gio / total : 0.0,
                total > 0 ? 100.0 * gcpu / total : 0.0,
                core::RouteName(trace[i].route));
  }
  Rule('-', 56);
  std::printf("Shape check (paper): wide fluctuation early, then a stable "
              "small share.\n");
}

}  // namespace
}  // namespace dskg::bench

int main() {
  dskg::bench::Run();
  return 0;
}
