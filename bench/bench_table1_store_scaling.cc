// Reproduces Table 1: query latency of the relational store (MySQL in the
// paper) vs the native graph store (Neo4j) on the flagship complex query
//
//   SELECT ?p WHERE { ?p y:wasBornIn ?city .
//                     ?p y:hasAcademicAdvisor ?a .
//                     ?a y:wasBornIn ?city . }
//
// varying the knowledge-graph size. The paper sweeps 0.5M..5M triples; the
// bench sweeps the same ten relative sizes at 1/10 scale (override with
// DSKG_BENCH_SCALE). Expected shape: relational latency grows roughly
// linearly with |G| while graph-store latency stays an order of magnitude
// smaller throughout.
//
// `--json out.json` records the sweep (simulated seconds plus wall-clock
// and peak-RSS columns) for the BENCH_*.json perf trajectory. A second
// `storage` table records the storage tier's exact footprint — B+-tree
// node slabs, dictionary arena + tables, triple list — as deterministic
// bytes/triple, plus machine-dependent load wall time and peak RSS.
//
// `--max-step N` stops the sweep after step N: the paper-scale load path
// runs one big step instead of ten small ones, e.g.
//
//   DSKG_BENCH_SCALE=200 bench_table1_store_scaling --max-step 1
//
// loads 10M triples and runs the flagship query on both engines.
//
// `--parallel[=N]` generates the dataset and bulk-loads the store on a
// thread pool (N threads, default hardware concurrency). The loaded store
// is byte-identical to the serial one, so every deterministic `storage`
// metric (bytes_per_triple, storage_bytes, dict_bytes, index_bytes,
// index_nodes) must match a serial run exactly — the CI scale smoke
// asserts that; only load_wall_ms may move.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace dskg::bench {
namespace {

constexpr const char* kQuery =
    "SELECT ?p WHERE { ?p y:wasBornIn ?city . "
    "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }";

// Paper's Table 1 (seconds), for side-by-side comparison.
constexpr double kPaperMySql[10] = {11.2304, 17.2368, 27.6332, 37.6454,
                                    47.9656, 62.5006, 69.7482, 68.8358,
                                    68.6312, 99.4103};
constexpr double kPaperNeo4j[10] = {0.6067, 1.3270, 1.5837, 3.3893, 2.2573,
                                    3.4786, 2.7923, 3.4560, 3.7312, 3.9833};

/// Returns false on any failure, including an engine row-count mismatch —
/// the CI smoke steps rely on a non-zero exit to surface scale-only
/// correctness bugs.
bool Run(JsonReporter* json, int max_step, ThreadPool* pool) {
  bool mismatch = false;
  std::printf("Table 1: relational vs graph store, flagship complex query\n");
  std::printf("(paper: MySQL / Neo4j at 0.5M-5M triples; measured: DSKG "
              "simulated seconds at 1/10 scale x DSKG_BENCH_SCALE=%.2f)\n\n",
              ScaleFactor());
  std::printf("%10s | %12s %12s | %12s %12s | %8s\n", "triples",
              "rel (s)", "graph (s)", "paper MySQL", "paper Neo4j",
              "speedup");
  Rule();

  for (int step = 1; step <= max_step; ++step) {
    workload::YagoConfig cfg;
    cfg.target_triples = Scaled(50000) * static_cast<uint64_t>(step);
    rdf::Dataset ds = workload::GenerateYago(cfg, pool);

    // Relational-only store (timed: this is the storage tier's bulk-load
    // path — dataset + dictionary arena + three B+-tree indexes).
    core::DualStoreConfig rc;
    rc.use_graph = false;
    rc.load_pool = pool;
    const auto load_start = std::chrono::steady_clock::now();
    core::DualStore rel(&ds, rc);
    const double load_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - load_start)
            .count();

    // Storage-tier footprint, exact and deterministic: triple list +
    // dictionary (arena, spans, refcounts, hash index) + index slabs.
    const uint64_t dict_bytes = ds.dict().MemoryBytes();
    const uint64_t dataset_bytes = ds.StorageBytes();
    const uint64_t index_bytes = rel.table().IndexBytes();
    const uint64_t storage_bytes = dataset_bytes + index_bytes;
    const double bytes_per_triple =
        static_cast<double>(storage_bytes) /
        static_cast<double>(ds.num_triples());
    json->Row("storage",
              {{"step", step},
               {"triples", ds.num_triples()},
               {"bytes_per_triple", bytes_per_triple},
               {"storage_bytes", storage_bytes},
               {"dict_bytes", dict_bytes},
               {"index_bytes", index_bytes},
               {"index_nodes", rel.table().IndexNodes()},
               {"load_wall_ms", load_wall_ms}});

    const auto rel_start = std::chrono::steady_clock::now();
    auto r1 = rel.Process(kQuery);
    const double rel_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - rel_start)
            .count();
    if (!r1.ok()) {
      std::fprintf(stderr, "relational run failed: %s\n",
                   r1.status().ToString().c_str());
      return false;
    }

    // Graph store with the needed partitions resident (Table 1 measures
    // the two engines head to head, no budget).
    core::DualStoreConfig gc;
    gc.use_graph = true;
    gc.load_pool = pool;
    core::DualStore dual(&ds, gc);
    CostMeter load;
    for (const char* pred : {"y:wasBornIn", "y:hasAcademicAdvisor"}) {
      auto st = dual.MigratePartition(ds.dict().Lookup(pred), &load);
      if (!st.ok()) {
        std::fprintf(stderr, "migration failed: %s\n", st.ToString().c_str());
        return false;
      }
    }
    const auto graph_start = std::chrono::steady_clock::now();
    auto r2 = dual.Process(kQuery);
    const double graph_wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - graph_start)
            .count();
    if (!r2.ok()) {
      std::fprintf(stderr, "graph run failed: %s\n",
                   r2.status().ToString().c_str());
      return false;
    }

    const double rel_s = Sec(r1->rel_micros);
    const double graph_s = Sec(r2->graph_micros);
    std::printf("%10llu | %12.4f %12.4f | %12.4f %12.4f | %7.1fx"
                " | %5.1f B/triple, load %.0f ms, rss %llu MiB\n",
                static_cast<unsigned long long>(ds.num_triples()), rel_s,
                graph_s, kPaperMySql[step - 1], kPaperNeo4j[step - 1],
                graph_s > 0 ? rel_s / graph_s : 0.0, bytes_per_triple,
                load_wall_ms,
                static_cast<unsigned long long>(PeakRssKb() / 1024));
    if (r1->result.NumRows() != r2->result.NumRows()) {
      // The two engines disagreeing on the flagship query is a
      // correctness bug, not a perf signal: fail the process so the CI
      // smoke steps go red.
      std::fprintf(stderr,
                   "FAIL: result mismatch (%zu vs %zu rows) at step %d\n",
                   r1->result.NumRows(), r2->result.NumRows(), step);
      mismatch = true;
    }
    json->Row("table1", {{"step", step},
                         {"triples", ds.num_triples()},
                         {"rel_tti_s", rel_s},
                         {"graph_tti_s", graph_s},
                         {"result_rows",
                          static_cast<uint64_t>(r1->result.NumRows())},
                         {"rel_wall_ms", rel_wall_ms},
                         {"graph_wall_ms", graph_wall_ms}});
  }
  Rule();
  std::printf("Shape check: relational grows ~linearly in |G|; the graph "
              "store stays far below it at every size (paper: 9-25x).\n");
  return !mismatch;
}

}  // namespace
}  // namespace dskg::bench

int main(int argc, char** argv) {
  dskg::bench::JsonReporter json(argc, argv, "table1_store_scaling");
  int max_step = 10;
  int parallel_threads = 0;  // 0 = serial
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--max-step") == 0 && i + 1 < argc) {
      value = argv[++i];
    } else if (std::strncmp(argv[i], "--max-step=", 11) == 0) {
      value = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--parallel") == 0) {
      parallel_threads = static_cast<int>(dskg::ThreadPool::DefaultThreads());
    } else if (std::strncmp(argv[i], "--parallel=", 11) == 0) {
      parallel_threads = std::atoi(argv[i] + 11);
      if (parallel_threads < 1) {
        std::fprintf(stderr, "--parallel needs a positive thread count\n");
        return 2;
      }
    }
    if (value != nullptr) {
      max_step = std::atoi(value);
      if (max_step < 1 || max_step > 10) {
        // A typo must not silently widen a CI smoke run into the full
        // ten-step sweep at paper scale.
        std::fprintf(stderr, "--max-step must be 1..10, got \"%s\"\n", value);
        return 2;
      }
    }
  }
  std::unique_ptr<dskg::ThreadPool> pool;
  if (parallel_threads > 0) {
    pool = std::make_unique<dskg::ThreadPool>(
        static_cast<size_t>(parallel_threads));
  }
  return dskg::bench::Run(&json, max_step, pool.get()) ? 0 : 1;
}
