// Reproduces Figure 8: DOTIL vs the baseline tuning policies on four
// workload groups — YAGO, ordered WatDiv (all 100 L/S/F/C queries),
// random WatDiv, and Bio2RDF.
//
//   * one-off — sees the whole workload, tunes once up front (static)
//   * lru     — keeps the historically most frequent partitions
//   * ideal   — oracle that tunes for exactly the next batch
//   * dotil   — the paper's RL tuner
//
// Expected shape (paper §6.4): DOTIL clearly below one-off and LRU;
// ideal below DOTIL, with a smaller DOTIL-ideal gap on ordered workloads
// than on random ones (clustered mutations are easier to adapt to).

#include <cstdio>
#include <memory>

#include "bench_util.h"

namespace dskg::bench {
namespace {

workload::Workload MakeCombinedWatDiv(const rdf::Dataset& ds, bool ordered) {
  std::vector<workload::QueryTemplate> templates;
  for (auto list :
       {workload::WatDivLinearTemplates(), workload::WatDivStarTemplates(),
        workload::WatDivSnowflakeTemplates(),
        workload::WatDivComplexTemplates()}) {
    templates.insert(templates.end(), list.begin(), list.end());
  }
  workload::WorkloadBuilder builder(&ds);
  workload::WorkloadOptions opt;
  opt.ordered = ordered;
  auto w = builder.Build(ordered ? "ordered WatDiv" : "random WatDiv",
                         templates, opt);
  if (!w.ok()) {
    std::fprintf(stderr, "workload build failed: %s\n",
                 w.status().ToString().c_str());
    std::abort();
  }
  return std::move(w).ValueOrDie();
}

std::unique_ptr<core::Tuner> MakeTuner(const std::string& name) {
  if (name == "one-off") return std::make_unique<core::OneOffTuner>();
  if (name == "lru") return std::make_unique<core::LruTuner>();
  if (name == "ideal") return std::make_unique<core::IdealTuner>();
  return std::make_unique<core::DotilTuner>();
}

void RunAll() {
  struct Group {
    const char* label;
    WorkloadKind kind;  // dataset source
    bool combined_watdiv;
    bool ordered;
  };
  const Group groups[] = {
      {"YAGO workloads", WorkloadKind::kYago, false, true},
      {"ordered WatDiv workloads", WorkloadKind::kWatDivL, true, true},
      {"random WatDiv workloads", WorkloadKind::kWatDivL, true, false},
      {"Bio2RDF workloads", WorkloadKind::kBio2Rdf, false, true},
  };

  std::printf("Figure 8: tuner comparison, per-batch and total TTI "
              "(simulated seconds)\n\n");
  for (const Group& g : groups) {
    std::printf("(%s)\n", g.label);
    std::printf("%-8s | %9s %9s %9s %9s %9s | %9s\n", "tuner", "batch1",
                "batch2", "batch3", "batch4", "batch5", "total");
    Rule('-', 76);
    double dotil_total = 0, ideal_total = 0;
    for (const char* tn : {"one-off", "lru", "dotil", "ideal"}) {
      rdf::Dataset ds = MakeDataset(g.kind);
      workload::Workload w = g.combined_watdiv
                                 ? MakeCombinedWatDiv(ds, g.ordered)
                                 : MakeWorkload(g.kind, ds, g.ordered);
      core::DualStoreConfig cfg;
      cfg.graph_capacity_triples = DefaultGraphBudget(ds);
      core::DualStore store(&ds, cfg);
      std::unique_ptr<core::Tuner> tuner = MakeTuner(tn);
      core::WorkloadRunner runner(&store, tuner.get());
      auto m = runner.RunAveraged(w, 5, Reps(), /*warmup=*/1);
      if (!m.ok()) {
        std::fprintf(stderr, "run failed (%s/%s): %s\n", g.label, tn,
                     m.status().ToString().c_str());
        std::abort();
      }
      std::printf("%-8s |", tn);
      for (const core::BatchMetrics& b : m->batches) {
        std::printf(" %9.4f", Sec(b.tti_micros));
      }
      std::printf(" | %9.4f\n", Sec(m->TotalTtiMicros()));
      if (std::string(tn) == "dotil") dotil_total = m->TotalTtiMicros();
      if (std::string(tn) == "ideal") ideal_total = m->TotalTtiMicros();
    }
    Rule('-', 76);
    std::printf("DOTIL vs ideal gap: %.2f%%\n\n",
                ideal_total > 0
                    ? 100.0 * (dotil_total - ideal_total) / ideal_total
                    : 0.0);
  }
  std::printf("Shape check (paper): DOTIL well below one-off and LRU; "
              "ideal is the lower bound; the DOTIL-ideal gap is smaller "
              "on ordered than on random workloads.\n");
}

}  // namespace
}  // namespace dskg::bench

int main() {
  dskg::bench::RunAll();
  return 0;
}
