#ifndef DSKG_TESTS_TEST_UTIL_H_
#define DSKG_TESTS_TEST_UTIL_H_

/// \file test_util.h
/// Shared test helpers: a tiny hand-written dataset, a brute-force BGP
/// reference evaluator (independent of both engines), and a random BGP
/// generator for property tests.

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rdf/dataset.h"
#include "sparql/ast.h"
#include "sparql/bindings.h"

namespace dskg::testing {

/// A small fixed dataset about people, cities and movies, convenient for
/// hand-checkable assertions.
///
///   alice bornIn berlin      bob bornIn berlin    carol bornIn paris
///   bob   advisor alice      carol advisor alice  dave advisor carol
///   dave  bornIn paris       alice likes film1    bob likes film1
///   carol likes film2        dave likes film2     film1 genre drama
///   film2 genre comedy       alice marriedTo bob
inline rdf::Dataset SmallPeopleGraph() {
  rdf::Dataset ds;
  ds.Add("alice", "bornIn", "berlin");
  ds.Add("bob", "bornIn", "berlin");
  ds.Add("carol", "bornIn", "paris");
  ds.Add("dave", "bornIn", "paris");
  ds.Add("bob", "advisor", "alice");
  ds.Add("carol", "advisor", "alice");
  ds.Add("dave", "advisor", "carol");
  ds.Add("alice", "likes", "film1");
  ds.Add("bob", "likes", "film1");
  ds.Add("carol", "likes", "film2");
  ds.Add("dave", "likes", "film2");
  ds.Add("film1", "genre", "drama");
  ds.Add("film2", "genre", "comedy");
  ds.Add("alice", "marriedTo", "bob");
  return ds;
}

/// Brute-force BGP evaluation by exhaustive backtracking over the raw
/// triple list. Deliberately naive and engine-independent: the oracle for
/// both the relational executor and the graph matcher.
class ReferenceEvaluator {
 public:
  explicit ReferenceEvaluator(const rdf::Dataset* ds) : ds_(ds) {}

  sparql::BindingTable Evaluate(const sparql::Query& query) const {
    sparql::BindingTable out;
    out.columns = query.select_vars.empty() ? query.AllVariables()
                                            : query.select_vars;
    std::map<std::string, rdf::TermId> bindings;
    Recurse(query, 0, &bindings, &out);
    return out;
  }

 private:
  bool TermMatches(const sparql::PatternTerm& t, rdf::TermId value,
                   std::map<std::string, rdf::TermId>* bindings,
                   std::vector<std::string>* bound_here) const {
    if (!t.is_variable) {
      const rdf::TermId id = ds_->dict().Lookup(t.text);
      return id == value;
    }
    auto it = bindings->find(t.text);
    if (it != bindings->end()) return it->second == value;
    bindings->emplace(t.text, value);
    bound_here->push_back(t.text);
    return true;
  }

  void Recurse(const sparql::Query& query, size_t depth,
               std::map<std::string, rdf::TermId>* bindings,
               sparql::BindingTable* out) const {
    if (depth == query.patterns.size()) {
      rdf::TermId* row = out->AppendRow();
      for (size_t i = 0; i < out->columns.size(); ++i) {
        row[i] = bindings->at(out->columns[i]);
      }
      return;
    }
    const sparql::TriplePattern& p = query.patterns[depth];
    for (const rdf::Triple& t : CandidatesFor(p)) {
      std::vector<std::string> bound_here;
      const bool ok = TermMatches(p.subject, t.subject, bindings,
                                  &bound_here) &&
                      TermMatches(p.predicate, t.predicate, bindings,
                                  &bound_here) &&
                      TermMatches(p.object, t.object, bindings, &bound_here);
      if (ok) Recurse(query, depth + 1, bindings, out);
      for (const std::string& v : bound_here) bindings->erase(v);
    }
  }

  /// Candidate triples for a pattern: the predicate's partition when the
  /// predicate is a constant (still brute force within it), else all
  /// triples. Pure pruning — does not change results.
  const std::vector<rdf::Triple>& CandidatesFor(
      const sparql::TriplePattern& p) const {
    if (p.predicate.is_variable) return DedupedTriples();
    const rdf::TermId id = ds_->dict().Lookup(p.predicate.text);
    auto it = by_predicate_.find(id);
    if (it == by_predicate_.end()) {
      std::vector<rdf::Triple> filtered;
      for (const rdf::Triple& t : DedupedTriples()) {
        if (t.predicate == id) filtered.push_back(t);
      }
      it = by_predicate_.emplace(id, std::move(filtered)).first;
    }
    return it->second;
  }

  /// Engines store triples with set semantics; match that here.
  const std::vector<rdf::Triple>& DedupedTriples() const {
    if (deduped_.empty()) {
      std::vector<rdf::Triple> sorted = ds_->triples();
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      deduped_ = std::move(sorted);
    }
    return deduped_;
  }

  const rdf::Dataset* ds_;
  mutable std::vector<rdf::Triple> deduped_;
  mutable std::map<rdf::TermId, std::vector<rdf::Triple>> by_predicate_;
};

/// Generates a random connected BGP over the predicates/terms of `ds`.
/// Produces 1-4 patterns mixing fresh variables, reused variables and
/// constants — a fuzz driver for cross-engine equivalence tests.
inline sparql::Query RandomBgp(const rdf::Dataset& ds, Rng* rng) {
  sparql::Query q;
  const auto& triples = ds.triples();
  const size_t num_patterns = 1 + rng->NextIndex(3);
  std::vector<std::string> vars = {"a", "b", "c", "d", "e"};
  size_t next_var = 0;
  auto reuse_or_new_var = [&]() -> std::string {
    if (next_var > 0 && rng->NextBool(0.5)) {
      return vars[rng->NextIndex(next_var)];
    }
    if (next_var < vars.size()) return vars[next_var++];
    return vars[rng->NextIndex(vars.size())];
  };
  for (size_t i = 0; i < num_patterns; ++i) {
    // Anchor the pattern on a real triple so matches are likely.
    const rdf::Triple& t = triples[rng->NextIndex(triples.size())];
    sparql::TriplePattern p;
    p.predicate = sparql::PatternTerm::Const(
        std::string(ds.dict().TermOf(t.predicate)));
    p.subject = rng->NextBool(0.7)
                    ? sparql::PatternTerm::Var(reuse_or_new_var())
                    : sparql::PatternTerm::Const(
                          std::string(ds.dict().TermOf(t.subject)));
    p.object = rng->NextBool(0.7)
                   ? sparql::PatternTerm::Var(reuse_or_new_var())
                   : sparql::PatternTerm::Const(
                         std::string(ds.dict().TermOf(t.object)));
    q.patterns.push_back(std::move(p));
  }
  // SELECT * (all variables) keeps the comparison total.
  return q;
}

}  // namespace dskg::testing

#endif  // DSKG_TESTS_TEST_UTIL_H_
