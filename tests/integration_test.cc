// Cross-module integration tests: every workload query returns identical
// results through the relational-only store and through a fully loaded
// graph store, and a full DOTIL-tuned workload run is deterministic and
// faster than RDB-only.

#include <gtest/gtest.h>

#include "core/dotil.h"
#include "core/dual_store.h"
#include "core/runner.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/templates.h"

namespace dskg {
namespace {

struct WorkloadCase {
  const char* name;
  int kind;  // 0 = yago, 1 = watdiv, 2 = bio2rdf
  std::vector<workload::QueryTemplate> (*templates)();
};

class CrossEngineEquivalenceTest
    : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(CrossEngineEquivalenceTest, AllQueriesAgreeAcrossEngines) {
  const WorkloadCase& wc = GetParam();
  rdf::Dataset ds;
  switch (wc.kind) {
    case 0: {
      workload::YagoConfig c;
      c.target_triples = 12000;
      ds = workload::GenerateYago(c);
      break;
    }
    case 1: {
      workload::WatDivConfig c;
      c.target_triples = 12000;
      ds = workload::GenerateWatDiv(c);
      break;
    }
    default: {
      workload::Bio2RdfConfig c;
      c.target_triples = 14000;
      ds = workload::GenerateBio2Rdf(c);
      break;
    }
  }

  workload::WorkloadBuilder builder(&ds);
  auto w = builder.Build(wc.name, wc.templates(), workload::WorkloadOptions{});
  ASSERT_TRUE(w.ok()) << w.status();

  // Store A: relational only.
  core::DualStoreConfig rel_cfg;
  rel_cfg.use_graph = false;
  core::DualStore rel(&ds, rel_cfg);

  // Store B: graph store with EVERY partition resident (unlimited budget),
  // so any query with a complex subquery routes through the graph.
  core::DualStoreConfig gdb_cfg;
  core::DualStore dual(&ds, gdb_cfg);
  CostMeter meter;
  for (const auto& part : ds.AllPartitions()) {
    ASSERT_TRUE(dual.MigratePartition(part.predicate, &meter).ok());
  }

  for (const auto& wq : w->queries) {
    auto a = rel.Process(wq.query);
    ASSERT_TRUE(a.ok()) << a.status() << "\n" << wq.query.ToString();
    EXPECT_EQ(a->route, core::Route::kRelationalOnly);
    auto b = dual.Process(wq.query);
    ASSERT_TRUE(b.ok()) << b.status() << "\n" << wq.query.ToString();
    EXPECT_TRUE(
        sparql::BindingTable::SameRows(a->result, b->result))
        << wq.query.ToString() << "\nrel rows: " << a->result.NumRows()
        << " dual rows: " << b->result.NumRows()
        << " route: " << core::RouteName(b->route);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, CrossEngineEquivalenceTest,
    ::testing::Values(
        WorkloadCase{"yago", 0, &workload::YagoTemplates},
        WorkloadCase{"watdiv_l", 1, &workload::WatDivLinearTemplates},
        WorkloadCase{"watdiv_s", 1, &workload::WatDivStarTemplates},
        WorkloadCase{"watdiv_f", 1, &workload::WatDivSnowflakeTemplates},
        WorkloadCase{"watdiv_c", 1, &workload::WatDivComplexTemplates},
        WorkloadCase{"bio2rdf", 2, &workload::Bio2RdfTemplates}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(EndToEnd, DotilRunIsDeterministic) {
  auto run_once = []() {
    workload::YagoConfig c;
    c.target_triples = 12000;
    rdf::Dataset ds = workload::GenerateYago(c);
    workload::WorkloadBuilder builder(&ds);
    auto w = builder.Build("yago", workload::YagoTemplates(),
                           workload::WorkloadOptions{});
    EXPECT_TRUE(w.ok());
    core::DualStoreConfig cfg;
    cfg.graph_capacity_triples = ds.num_triples() / 4;
    core::DualStore store(&ds, cfg);
    core::DotilTuner tuner;
    core::WorkloadRunner runner(&store, &tuner);
    auto m = runner.Run(*w, 5);
    EXPECT_TRUE(m.ok());
    return m->TotalTtiMicros();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(EndToEnd, WarmDualStoreBeatsRdbOnly) {
  workload::YagoConfig c;
  c.target_triples = 20000;
  rdf::Dataset ds1 = workload::GenerateYago(c);
  rdf::Dataset ds2 = workload::GenerateYago(c);

  workload::WorkloadBuilder builder(&ds1);
  auto w = builder.Build("yago", workload::YagoTemplates(),
                         workload::WorkloadOptions{});
  ASSERT_TRUE(w.ok());

  core::DualStoreConfig rel_cfg;
  rel_cfg.use_graph = false;
  core::DualStore rel(&ds1, rel_cfg);
  core::WorkloadRunner rel_runner(&rel, nullptr);
  auto rel_m = rel_runner.Run(*w, 5);
  ASSERT_TRUE(rel_m.ok());

  core::DualStoreConfig gdb_cfg;
  gdb_cfg.graph_capacity_triples = ds2.num_triples() / 4;
  core::DualStore dual(&ds2, gdb_cfg);
  core::DotilTuner tuner;
  core::WorkloadRunner dual_runner(&dual, &tuner);
  auto warm = dual_runner.RunAveraged(*w, 5, /*reps=*/3, /*warmup=*/1);
  ASSERT_TRUE(warm.ok());

  EXPECT_LT(warm->TotalTtiMicros(), rel_m->TotalTtiMicros());
}

}  // namespace
}  // namespace dskg
