// Persistence codec tests: CRC32C vectors, byte-level primitives, the
// UpdateBatch / WAL record framing, and the snapshot section format.
//
// The property pinned throughout: every torn or bit-flipped image is
// DETECTED — a WAL scan returns exactly the valid record prefix, and a
// snapshot reader refuses the whole file. Corruption is never loaded.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "core/update.h"
#include "persist/crc32c.h"
#include "persist/file.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "rdf/dataset.h"

namespace dskg::persist {
namespace {

using core::UpdateBatch;
using core::UpdateOp;

// ---- scratch directory helpers --------------------------------------------

std::string ScratchDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("dskg_codec_" + name))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Status WriteWholeFile(const std::string& path, const std::string& data) {
  auto f = OpenWritable(path, /*truncate=*/true);
  if (!f.ok()) return f.status();
  DSKG_RETURN_NOT_OK((*f)->Append(data));
  return (*f)->Close();
}

// ---- CRC32C ----------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // Published CRC-32C (Castagnoli) test vectors.
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32c("a"), 0xC1D04330u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data), base) << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<char>(1 << bit);
    }
  }
  EXPECT_EQ(Crc32c(data), base);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  const std::string data = "incremental crc over split buffers";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t first = Crc32cExtend(0, data.data(), split);
    const uint32_t two =
        Crc32cExtend(first, data.data() + split, data.size() - split);
    EXPECT_EQ(two, Crc32c(data)) << "split " << split;
  }
}

// ---- byte primitives -------------------------------------------------------

TEST(BytesTest, RoundTrip) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU16(&buf, 0xBEEF);
  PutU32(&buf, 0xDEADBEEFu);
  PutU64(&buf, 0x0123456789ABCDEFull);
  PutString(&buf, "hello");
  ByteReader r(buf);
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, TruncatedReadsFailCleanly) {
  std::string buf;
  PutU64(&buf, 42);
  for (size_t len = 0; len < 8; ++len) {
    ByteReader r(std::string_view(buf).substr(0, len));
    uint64_t v = 0;
    EXPECT_FALSE(r.ReadU64(&v).ok()) << "len " << len;
  }
}

// ---- UpdateBatch codec -----------------------------------------------------

UpdateBatch SampleBatch() {
  UpdateBatch b;
  b.ops.push_back(UpdateOp::Insert("s1", "p1", "o1"));
  b.ops.push_back(UpdateOp::Delete("s2", "p2", "o2"));
  b.ops.push_back(UpdateOp::Insert("a long subject with spaces", "p", ""));
  return b;
}

TEST(UpdateBatchCodecTest, RoundTrip) {
  UpdateBatch in = SampleBatch();
  std::string buf;
  core::EncodeUpdateBatch(in, /*batch_id=*/7, &buf);
  UpdateBatch out;
  ByteReader r(buf);
  ASSERT_TRUE(core::DecodeUpdateBatch(&r, &out).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(out.batch_id, 7u);
  ASSERT_EQ(out.ops.size(), in.ops.size());
  for (size_t i = 0; i < in.ops.size(); ++i) {
    EXPECT_EQ(out.ops[i].kind, in.ops[i].kind);
    EXPECT_EQ(out.ops[i].subject, in.ops[i].subject);
    EXPECT_EQ(out.ops[i].predicate, in.ops[i].predicate);
    EXPECT_EQ(out.ops[i].object, in.ops[i].object);
  }
}

TEST(UpdateBatchCodecTest, EveryTruncationFails) {
  std::string buf;
  core::EncodeUpdateBatch(SampleBatch(), 3, &buf);
  for (size_t len = 0; len < buf.size(); ++len) {
    UpdateBatch out;
    ByteReader r(std::string_view(buf).substr(0, len));
    EXPECT_FALSE(core::DecodeUpdateBatch(&r, &out).ok()) << "len " << len;
  }
}

// ---- WAL record framing ----------------------------------------------------

std::string WalPath(const std::string& dir) {
  return dir + "/" + WalSegmentName(0);
}

Result<std::string> BuildWal(const std::string& dir, int num_batches) {
  DurabilityOptions opts;
  opts.dir = dir;
  opts.sync_policy = SyncPolicy::kNever;
  DSKG_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> w, WalWriter::Open(opts, 0));
  for (int i = 0; i < num_batches; ++i) {
    UpdateBatch b;
    b.ops.push_back(UpdateOp::Insert("s" + std::to_string(i), "p",
                                     "o" + std::to_string(i)));
    DSKG_RETURN_NOT_OK(w->Append(b, static_cast<uint64_t>(i)));
  }
  DSKG_RETURN_NOT_OK(w->Close());
  return ReadFileToString(WalPath(dir));
}

TEST(WalCodecTest, FileNames) {
  EXPECT_EQ(WalSegmentName(0), "wal-00000000000000000000.log");
  EXPECT_EQ(SnapshotFileName(42), "snapshot-00000000000000000042.dskg");
  uint64_t v = 0;
  EXPECT_TRUE(ParseWalSegmentName("wal-00000000000000000042.log", &v));
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(ParseSnapshotFileName("snapshot-00000000000000000007.dskg", &v));
  EXPECT_EQ(v, 7u);
  EXPECT_FALSE(ParseWalSegmentName("snapshot-00000000000000000007.dskg", &v));
  EXPECT_FALSE(ParseSnapshotFileName("wal-00000000000000000042.log", &v));
  EXPECT_FALSE(ParseWalSegmentName("wal-xyz.log", &v));
  // Zero padding makes lexicographic order numeric order.
  EXPECT_LT(WalSegmentName(9), WalSegmentName(10));
}

TEST(WalCodecTest, ScanRoundTrip) {
  const std::string dir = ScratchDir("wal_roundtrip");
  ASSERT_TRUE(BuildWal(dir, 5).ok());
  auto scan = ScanWalFile(WalPath(dir));
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_FALSE(scan->dropped_tail);
  EXPECT_TRUE(scan->tail_status.ok());
  ASSERT_EQ(scan->batches.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(scan->batches[i].batch_id, i);
    ASSERT_EQ(scan->batches[i].ops.size(), 1u);
    EXPECT_EQ(scan->batches[i].ops[0].subject, "s" + std::to_string(i));
  }
}

TEST(WalCodecTest, MissingFileIsEmptyNotError) {
  const std::string dir = ScratchDir("wal_missing");
  auto scan = ScanWalFile(dir + "/no-such-file.log");
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->batches.empty());
  EXPECT_FALSE(scan->dropped_tail);
}

// Property: truncating the WAL at EVERY byte offset yields exactly the
// records whose frames fit — a clean tail drop, never an error, never a
// phantom record.
TEST(WalCodecTest, EveryTruncationYieldsValidPrefix) {
  const std::string dir = ScratchDir("wal_trunc");
  auto full = BuildWal(dir, 4);
  ASSERT_TRUE(full.ok());
  // Record boundaries, reconstructed from the framing.
  std::vector<size_t> boundaries = {0};
  {
    size_t pos = 0;
    while (pos < full->size()) {
      ByteReader r(std::string_view(*full).substr(pos + 4, 4));
      uint32_t len = 0;
      ASSERT_TRUE(r.ReadU32(&len).ok());
      pos += 8 + len;
      boundaries.push_back(pos);
    }
  }
  const std::string path = dir + "/cut.log";
  for (size_t cut = 0; cut <= full->size(); ++cut) {
    ASSERT_TRUE(WriteWholeFile(path, full->substr(0, cut)).ok());
    auto scan = ScanWalFile(path);
    ASSERT_TRUE(scan.ok()) << "cut " << cut << ": " << scan.status();
    // Number of whole records below the cut.
    size_t want = 0;
    while (want + 1 < boundaries.size() && boundaries[want + 1] <= cut) {
      ++want;
    }
    EXPECT_EQ(scan->batches.size(), want) << "cut " << cut;
    EXPECT_EQ(scan->valid_bytes, boundaries[want]) << "cut " << cut;
    EXPECT_EQ(scan->dropped_tail, cut != boundaries[want]) << "cut " << cut;
    // A bare partial tail is the expected crash shape: scan stays OK.
    EXPECT_TRUE(scan->tail_status.ok()) << "cut " << cut;
  }
}

// Property: flipping ANY single byte of the WAL never yields a record
// set that disagrees with some prefix of the original log, and a flip
// inside a fully framed record surfaces as a non-OK tail status.
TEST(WalCodecTest, EveryByteFlipIsDetected) {
  const std::string dir = ScratchDir("wal_flip");
  auto full = BuildWal(dir, 3);
  ASSERT_TRUE(full.ok());
  auto baseline = ScanWalFile(WalPath(dir));
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->batches.size(), 3u);

  const std::string path = dir + "/flipped.log";
  for (size_t i = 0; i < full->size(); ++i) {
    std::string corrupt = *full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    ASSERT_TRUE(WriteWholeFile(path, corrupt).ok());
    auto scan = ScanWalFile(path);
    ASSERT_TRUE(scan.ok()) << "flip " << i;
    // The scan must return a (possibly shorter) prefix of the true log —
    // the flipped record and everything after it are dropped.
    ASSERT_LT(scan->batches.size(), 4u) << "flip " << i;
    for (size_t k = 0; k < scan->batches.size(); ++k) {
      EXPECT_EQ(scan->batches[k].batch_id, baseline->batches[k].batch_id);
      EXPECT_EQ(scan->batches[k].ops[0].subject,
                baseline->batches[k].ops[0].subject);
    }
    EXPECT_TRUE(scan->dropped_tail) << "flip " << i;
    // Flips in a length field can masquerade as a partial tail; flips in
    // the CRC or payload of a fully framed record must report corruption.
    if (scan->tail_status.ok()) {
      EXPECT_LT(scan->batches.size(), 3u) << "flip " << i;
    }
  }
}

// ---- snapshot format -------------------------------------------------------

Status BuildSnapshot(const std::string& path) {
  auto f = OpenWritable(path, /*truncate=*/true);
  if (!f.ok()) return f.status();
  SnapshotWriter w(std::move(*f));
  DSKG_RETURN_NOT_OK(w.AddSection(1, "first section payload"));
  DSKG_RETURN_NOT_OK(w.AddSection(2, ""));  // empty sections are legal
  DSKG_RETURN_NOT_OK(w.AddSection(3, std::string(1000, 'x')));
  return w.Finish(/*watermark=*/99);
}

TEST(SnapshotCodecTest, RoundTrip) {
  const std::string dir = ScratchDir("snap_roundtrip");
  const std::string path = dir + "/s.dskg";
  ASSERT_TRUE(BuildSnapshot(path).ok());
  auto raw = ReadSnapshotFile(path);
  ASSERT_TRUE(raw.ok()) << raw.status();
  EXPECT_EQ(raw->version, kSnapshotVersion);
  EXPECT_EQ(raw->watermark, 99u);
  ASSERT_EQ(raw->sections.size(), 3u);
  ASSERT_NE(raw->Section(1), nullptr);
  EXPECT_EQ(*raw->Section(1), "first section payload");
  ASSERT_NE(raw->Section(2), nullptr);
  EXPECT_EQ(*raw->Section(2), "");
  ASSERT_NE(raw->Section(3), nullptr);
  EXPECT_EQ(raw->Section(3)->size(), 1000u);
  EXPECT_EQ(raw->Section(4), nullptr);
}

// Property: EVERY truncation of a snapshot fails validation — a torn
// snapshot (crash before the footer landed) is never loaded.
TEST(SnapshotCodecTest, EveryTruncationIsRejected) {
  const std::string dir = ScratchDir("snap_trunc");
  const std::string path = dir + "/s.dskg";
  ASSERT_TRUE(BuildSnapshot(path).ok());
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  const std::string cut_path = dir + "/cut.dskg";
  for (size_t cut = 0; cut < full->size(); ++cut) {
    ASSERT_TRUE(WriteWholeFile(cut_path, full->substr(0, cut)).ok());
    auto raw = ReadSnapshotFile(cut_path);
    EXPECT_FALSE(raw.ok()) << "cut " << cut << " validated a torn snapshot";
  }
}

// Property: EVERY single-byte flip of a snapshot fails validation.
TEST(SnapshotCodecTest, EveryByteFlipIsRejected) {
  const std::string dir = ScratchDir("snap_flip");
  const std::string path = dir + "/s.dskg";
  ASSERT_TRUE(BuildSnapshot(path).ok());
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  const std::string flip_path = dir + "/flip.dskg";
  for (size_t i = 0; i < full->size(); ++i) {
    std::string corrupt = *full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    ASSERT_TRUE(WriteWholeFile(flip_path, corrupt).ok());
    auto raw = ReadSnapshotFile(flip_path);
    EXPECT_FALSE(raw.ok()) << "flip at " << i << " validated";
  }
}

// Dataset (triples + partition stats + dictionary) round-trips through
// its section image, including interleaved interning and releases.
TEST(SnapshotCodecTest, DatasetSectionRoundTrip) {
  rdf::Dataset ds(2);
  ds.Add("s1", "p1", "o1");
  ds.Add("s2", "p1", "o2");
  const rdf::Triple dead = ds.Add("s3", "p2", "o3");
  ds.Add("s4", "p2", "o4");
  std::unordered_set<rdf::Triple, rdf::TripleHash> kill = {dead};
  ds.RemoveBatch(kill);

  std::string image;
  ASSERT_TRUE(ds.SerializeTo(&image).ok());
  // Serialization is deterministic: same logical state, same bytes.
  std::string image2;
  ASSERT_TRUE(ds.SerializeTo(&image2).ok());
  EXPECT_EQ(image, image2);

  rdf::Dataset back(2);
  ByteReader r(image);
  ASSERT_TRUE(back.DeserializeFrom(&r).ok());
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(back.num_triples(), ds.num_triples());
  for (size_t i = 0; i < ds.triples().size(); ++i) {
    EXPECT_EQ(back.triples()[i], ds.triples()[i]);
  }
  // The dictionary image preserves ids AND text.
  for (const rdf::Triple& t : ds.triples()) {
    EXPECT_EQ(back.dict().TermOf(t.subject), ds.dict().TermOf(t.subject));
    EXPECT_EQ(back.dict().TermOf(t.predicate), ds.dict().TermOf(t.predicate));
    EXPECT_EQ(back.dict().TermOf(t.object), ds.dict().TermOf(t.object));
  }
  // Probe index rebuilt: lookups by text resolve to the original ids.
  EXPECT_EQ(back.dict().Lookup("s1"), ds.dict().Lookup("s1"));
  EXPECT_EQ(back.dict().Lookup("p2"), ds.dict().Lookup("p2"));
  // The slice count is part of the image: a mismatched target refuses.
  rdf::Dataset wrong(3);
  ByteReader r2(image);
  EXPECT_FALSE(wrong.DeserializeFrom(&r2).ok());
}

// ---- fault injection harness ----------------------------------------------

TEST(FaultInjectorTest, FailWriteFiresOnceThenStaysDead) {
  const std::string dir = ScratchDir("fault_fail");
  FaultPlan plan;
  plan.kind = FaultKind::kFailWrite;
  plan.at_io = 1;
  FaultInjector inj(plan);
  auto wrap = inj.Wrapper();
  auto inner = OpenWritable(dir + "/f", true);
  ASSERT_TRUE(inner.ok());
  auto f = wrap(std::move(*inner), dir + "/f");
  EXPECT_TRUE(f->Append("first").ok());   // io 0: passes
  EXPECT_FALSE(f->Append("second").ok()); // io 1: fails, nothing lands
  EXPECT_TRUE(inj.triggered());
  EXPECT_FALSE(f->Append("third").ok());  // dead: every later write fails
  ASSERT_TRUE(f->Close().ok());
  auto data = ReadFileToString(dir + "/f");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "first");
}

TEST(FaultInjectorTest, TornWriteClaimsSuccessButDropsBytes) {
  const std::string dir = ScratchDir("fault_torn");
  FaultPlan plan;
  plan.kind = FaultKind::kTornWrite;
  plan.at_io = 0;
  plan.seed = 7;
  FaultInjector inj(plan);
  auto wrap = inj.Wrapper();
  auto inner = OpenWritable(dir + "/f", true);
  ASSERT_TRUE(inner.ok());
  auto f = wrap(std::move(*inner), dir + "/f");
  const std::string payload(64, 'A');
  EXPECT_TRUE(f->Append(payload).ok());  // lies: only a prefix landed
  EXPECT_TRUE(f->Append("more").ok());   // silently swallowed
  ASSERT_TRUE(f->Close().ok());
  auto data = ReadFileToString(dir + "/f");
  ASSERT_TRUE(data.ok());
  EXPECT_LT(data->size(), payload.size());
  EXPECT_EQ(*data, payload.substr(0, data->size()));
}

TEST(FaultInjectorTest, FlipByteCorruptsExactlyOneByteAndContinues) {
  const std::string dir = ScratchDir("fault_flip");
  FaultPlan plan;
  plan.kind = FaultKind::kFlipByte;
  plan.at_io = 0;
  plan.seed = 3;
  FaultInjector inj(plan);
  auto wrap = inj.Wrapper();
  auto inner = OpenWritable(dir + "/f", true);
  ASSERT_TRUE(inner.ok());
  auto f = wrap(std::move(*inner), dir + "/f");
  const std::string payload(32, 'B');
  EXPECT_TRUE(f->Append(payload).ok());
  EXPECT_TRUE(f->Append("tail").ok());  // run continues after bit rot
  ASSERT_TRUE(f->Close().ok());
  auto data = ReadFileToString(dir + "/f");
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size(), payload.size() + 4);
  size_t diffs = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    if ((*data)[i] != payload[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_EQ(data->substr(payload.size()), "tail");
}

TEST(FaultInjectorTest, DeterministicAcrossRuns) {
  // Same plan, same writes => byte-identical outcome (the crash matrix
  // depends on reproducible failures).
  auto run = [](const std::string& dir) {
    FaultPlan plan;
    plan.kind = FaultKind::kShortWrite;
    plan.at_io = 2;
    plan.seed = 11;
    FaultInjector inj(plan);
    auto wrap = inj.Wrapper();
    auto inner = OpenWritable(dir + "/f", true);
    EXPECT_TRUE(inner.ok());
    auto f = wrap(std::move(*inner), dir + "/f");
    (void)f->Append("aaaaaaaa");
    (void)f->Append("bbbbbbbb");
    (void)f->Append("cccccccc");
    (void)f->Close();
    auto data = ReadFileToString(dir + "/f");
    EXPECT_TRUE(data.ok());
    return *data;
  };
  const std::string a = run(ScratchDir("fault_det_a"));
  const std::string b = run(ScratchDir("fault_det_b"));
  EXPECT_EQ(a, b);
  EXPECT_LT(a.size(), 24u);  // the short write cut the third append
  EXPECT_EQ(a.substr(0, 16), "aaaaaaaabbbbbbbb");
}

}  // namespace
}  // namespace dskg::persist
