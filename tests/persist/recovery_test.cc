// Crash-recovery matrix for the durability tier (the ISSUE acceptance
// property):
//
//   For EVERY injected failure mode (clean write error, short write, torn
//   write, silent bit flip, sync failure) x randomized injection points x
//   seeds, a durable OnlineStore that "crashes" recovers to a state
//   bit-identical — rows AND simulated charges — to a serial oracle at
//   some batch-prefix watermark, and NEVER loads corrupt data.
//
// The oracle is a plain (non-durable) OnlineStore applying the same log
// serially; after each batch it records the canonical sorted row set and
// the cumulative simulated cost. Recovery must land exactly on one of
// those prefixes, and continuing the log from the watermark must converge
// to the oracle's final state with identical charges for the re-applied
// suffix.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/dual_store.h"
#include "core/online_store.h"
#include "core/update.h"
#include "persist/file.h"
#include "persist/wal.h"
#include "rdf/dataset.h"
#include "workload/generators.h"
#include "workload/update_stream.h"

namespace dskg::core {
namespace {

using persist::DurabilityOptions;
using persist::FaultInjector;
using persist::FaultKind;
using persist::FaultPlan;

std::string ScratchDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("dskg_recovery_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Canonical text form of the store's row set: every triple decoded
/// through the dictionary, sorted. Two stores with equal canon hold
/// bit-identical logical content regardless of internal id layout.
std::vector<std::string> CanonRows(const OnlineStore& store) {
  const rdf::Dataset& ds = store.active().dataset();
  std::vector<std::string> rows;
  rows.reserve(ds.triples().size());
  for (const rdf::Triple& t : ds.triples()) {
    rows.push_back(std::string(ds.dict().TermOf(t.subject)) + "|" +
                   std::string(ds.dict().TermOf(t.predicate)) + "|" +
                   std::string(ds.dict().TermOf(t.object)));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

struct OracleState {
  std::vector<std::vector<std::string>> rows_after;  // [k] = after batch k
  std::vector<UpdateResult> results;                 // per batch
  std::vector<double> charges;                       // per-batch sim_micros
  std::vector<std::string> initial_rows;
};

/// Serial reference run: applies `log` batch by batch to a non-durable
/// store, recording the canonical row set and charge after each batch.
OracleState RunOracle(const rdf::Dataset& ds, const DualStoreConfig& cfg,
                      const UpdateLog& log) {
  OracleState out;
  OnlineStore store(ds, cfg);
  out.initial_rows = CanonRows(store);
  for (uint64_t k = 0; k < log.size(); ++k) {
    CostMeter meter;
    auto r = store.ApplyUpdates(log.at(k), &meter);
    EXPECT_TRUE(r.ok()) << r.status();
    out.results.push_back(*r);
    out.charges.push_back(meter.sim_micros());
    out.rows_after.push_back(CanonRows(store));
  }
  return out;
}

/// The rows the oracle had after batch-prefix `k` (k = 0 means "initial
/// bulk-loaded state, no batches applied").
const std::vector<std::string>& OracleRowsAt(const OracleState& oracle,
                                             uint64_t k) {
  return k == 0 ? oracle.initial_rows : oracle.rows_after[k - 1];
}

struct Fixture {
  rdf::Dataset dataset;
  DualStoreConfig config;
  UpdateLog log;
};

Fixture MakeFixture(int num_shards) {
  Fixture f{rdf::Dataset(1), {}, {}};
  workload::YagoConfig gen;
  gen.seed = 5;
  gen.target_triples = 1600;
  f.dataset = workload::GenerateYago(gen);

  f.config.num_shards = num_shards;
  f.config.graph_capacity_triples = f.dataset.num_triples() / 2;
  f.config.use_views = false;

  workload::UpdateStreamConfig uc;
  uc.seed = 77;
  uc.num_batches = 12;
  uc.ops_per_batch = 120;
  uc.insert_fraction = 0.6;
  f.log = workload::GenerateUpdateStream(f.dataset, uc);
  return f;
}

// ---- basic durable lifecycle ----------------------------------------------

TEST(RecoveryTest, RecoverFromNothingIsNotFound) {
  DurabilityOptions opts;
  opts.dir = ScratchDir("nothing") + "/never_created";
  DualStoreConfig cfg;
  auto r = OnlineStore::Recover(cfg, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status();
}

TEST(RecoveryTest, SnapshotPlusWalRoundTripZeroDiff) {
  Fixture f = MakeFixture(/*num_shards=*/2);
  DurabilityOptions opts;
  opts.dir = ScratchDir("roundtrip");

  OracleState oracle = RunOracle(f.dataset, f.config, f.log);

  std::vector<std::string> live_rows;
  std::vector<UpdateResult> live_results;
  {
    OnlineStore store(f.dataset, f.config, opts);
    ASSERT_TRUE(store.poison_status().ok()) << store.poison_status();
    EXPECT_TRUE(store.durable());
    for (uint64_t k = 0; k < f.log.size(); ++k) {
      if (k == 5) ASSERT_TRUE(store.SaveSnapshot().ok());
      CostMeter meter;
      auto r = store.ApplyUpdates(f.log.at(k), &meter);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(r->batch_id, k);
      EXPECT_EQ(meter.sim_micros(), oracle.charges[k]) << "batch " << k;
      live_results.push_back(*r);
    }
    EXPECT_EQ(store.next_batch_id(), f.log.size());
    live_rows = CanonRows(store);
    // The store dies here WITHOUT a final snapshot: batches 5..11 exist
    // only in the WAL.
  }
  EXPECT_EQ(live_rows, oracle.rows_after.back());

  OnlineStore::RecoveryReport report;
  auto recovered = OnlineStore::Recover(f.config, opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(report.wal_status.ok()) << report.wal_status;
  EXPECT_FALSE(report.dropped_tail);
  EXPECT_EQ(report.snapshot_watermark, 5u);
  EXPECT_EQ(report.replayed_batches, f.log.size() - 5);
  EXPECT_EQ((*recovered)->next_batch_id(), f.log.size());
  EXPECT_EQ(CanonRows(**recovered), live_rows);  // zero diff

  // Replay reproduced the oracle's per-batch outcomes too.
  for (uint64_t k = 0; k < f.log.size(); ++k) {
    EXPECT_EQ(live_results[k].inserted, oracle.results[k].inserted);
    EXPECT_EQ(live_results[k].deleted, oracle.results[k].deleted);
  }

  // The recovered store keeps working — and further updates charge
  // exactly what the oracle's serial continuation would.
  workload::UpdateStreamConfig more;
  more.seed = 123;
  more.num_batches = 2;
  more.ops_per_batch = 50;
  const UpdateLog extra =
      workload::GenerateUpdateStream((*recovered)->active().dataset(), more);
  for (uint64_t k = 0; k < extra.size(); ++k) {
    auto r = (*recovered)->ApplyUpdates(extra.at(k));
    ASSERT_TRUE(r.ok()) << r.status();
  }
}

TEST(RecoveryTest, ReplayIsIdempotent) {
  Fixture f = MakeFixture(/*num_shards=*/1);
  DurabilityOptions opts;
  opts.dir = ScratchDir("idempotent");

  OnlineStore store(f.dataset, f.config, opts);
  ASSERT_TRUE(store.poison_status().ok());
  for (uint64_t k = 0; k < 4; ++k) {
    auto r = store.ApplyUpdates(f.log.at(k));
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->already_applied);
  }
  const std::vector<std::string> rows = CanonRows(store);
  // Re-offering already-sequenced batches acknowledges without applying.
  for (uint64_t k = 0; k < 4; ++k) {
    auto r = store.ApplyUpdates(f.log.at(k));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->already_applied);
    EXPECT_EQ(r->batch_id, k);
    EXPECT_EQ(r->inserted, 0u);
    EXPECT_EQ(r->deleted, 0u);
  }
  EXPECT_EQ(CanonRows(store), rows);
  EXPECT_EQ(store.next_batch_id(), 4u);
}

TEST(RecoveryTest, MidLogCorruptionReportsAndKeepsPrefix) {
  Fixture f = MakeFixture(/*num_shards=*/1);
  DurabilityOptions opts;
  opts.dir = ScratchDir("midlog");

  {
    OnlineStore store(f.dataset, f.config, opts);
    ASSERT_TRUE(store.poison_status().ok());
    for (uint64_t k = 0; k < 6; ++k) {
      ASSERT_TRUE(store.ApplyUpdates(f.log.at(k)).ok());
    }
  }
  OracleState oracle = RunOracle(f.dataset, f.config, f.log);

  // Flip one byte in the MIDDLE of the only WAL segment: records after
  // the flip are unreachable, records before it must survive.
  const std::string wal_path = opts.dir + "/" + persist::WalSegmentName(0);
  auto data = persist::ReadFileToString(wal_path);
  ASSERT_TRUE(data.ok());
  std::string corrupt = *data;
  corrupt[corrupt.size() / 2] ^= 0x10;
  {
    auto file = persist::OpenWritable(wal_path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append(corrupt).ok());
    ASSERT_TRUE((*file)->Close().ok());
  }

  OnlineStore::RecoveryReport report;
  auto recovered = OnlineStore::Recover(f.config, opts, &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(report.dropped_tail);
  // A flip in a length field can read as a clean torn tail, but with the
  // flip mid-file a fully framed record usually fails its CRC; either
  // way the recovered prefix is a valid oracle prefix.
  const uint64_t k = report.snapshot_watermark + report.replayed_batches;
  ASSERT_LE(k, 6u);
  EXPECT_EQ(CanonRows(**recovered), OracleRowsAt(oracle, k));

  // The recovered prefix stays usable: continue the log from k.
  for (uint64_t j = k; j < f.log.size(); ++j) {
    CostMeter meter;
    auto r = (*recovered)->ApplyUpdates(f.log.at(j), &meter);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(meter.sim_micros(), oracle.charges[j]) << "batch " << j;
  }
  EXPECT_EQ(CanonRows(**recovered), oracle.rows_after.back());
}

// ---- the crash matrix ------------------------------------------------------

struct MatrixCase {
  FaultKind kind;
  uint64_t at_io;
  uint64_t seed;
};

/// One simulated process run: a durable 2-shard store under fault
/// injection applies the log (snapshotting every 4th batch) until the
/// fault kills it, then the test recovers from what reached "disk" and
/// checks the recovered state against the oracle.
void RunMatrixCase(const Fixture& f, const OracleState& oracle,
                   const MatrixCase& mc, const std::string& dir) {
  std::filesystem::remove_all(dir);
  FaultPlan plan;
  plan.kind = mc.kind;
  plan.at_io = mc.at_io;
  plan.seed = mc.seed;
  FaultInjector injector(plan);

  DurabilityOptions opts;
  opts.dir = dir;
  opts.sync_policy = persist::SyncPolicy::kEveryBatch;
  opts.wrap_writable = injector.Wrapper();

  uint64_t acked = 0;  // batches the dying store acknowledged as applied
  {
    OnlineStore store(f.dataset, f.config, opts);
    if (store.poison_status().ok()) {
      for (uint64_t k = 0; k < f.log.size(); ++k) {
        if (k > 0 && k % 4 == 0) {
          if (!store.SaveSnapshot().ok()) break;  // crash during snapshot
        }
        auto r = store.ApplyUpdates(f.log.at(k));
        if (!r.ok()) break;  // crash during append/apply
        if (!r->already_applied) acked = k + 1;
      }
    }
    // Process "dies" here: whatever the injector let through is on disk.
  }

  // Recover WITHOUT fault injection (the next process run is healthy).
  DurabilityOptions clean = opts;
  clean.wrap_writable = nullptr;
  OnlineStore::RecoveryReport report;
  auto recovered = OnlineStore::Recover(f.config, clean, &report);
  if (!recovered.ok()) {
    // Acceptable only when the crash predates any committed snapshot:
    // the fault hit the construction-time save, so nothing durable ever
    // existed and no batch was ever acknowledged. Corrupt data must
    // never "recover", and acknowledged data must never need it.
    EXPECT_TRUE(recovered.status().IsNotFound())
        << "kind=" << static_cast<int>(mc.kind) << " at_io=" << mc.at_io
        << " seed=" << mc.seed << ": " << recovered.status();
    EXPECT_EQ(acked, 0u)
        << "acknowledged batches lost without recovery; kind="
        << static_cast<int>(mc.kind) << " at_io=" << mc.at_io;
    return;
  }

  const uint64_t k = report.snapshot_watermark + report.replayed_batches;
  ASSERT_LE(k, f.log.size());
  // Durability floor: every batch the store acknowledged after an
  // fsync-per-batch append must survive the crash... unless the fault
  // was a TORN write (claims success, drops bytes) or a failed/short
  // path that fired later. Torn writes are exactly the case where an
  // "acknowledged" batch may legally vanish — the store only promised
  // what the (lying) disk told it. So the check here is the recoverable
  // one: k never EXCEEDS what was acknowledged plus nothing, i.e. the
  // recovered prefix is a prefix of the acknowledged run.
  EXPECT_LE(k, acked) << "recovered batches that were never applied";

  // THE acceptance property: the recovered rows are bit-identical to the
  // serial oracle at prefix k.
  EXPECT_EQ(CanonRows(**recovered), OracleRowsAt(oracle, k))
      << "kind=" << static_cast<int>(mc.kind) << " at_io=" << mc.at_io
      << " seed=" << mc.seed << " k=" << k;

  // And the recovered store still ingests: re-apply the remaining suffix
  // with charges identical to the oracle's.
  for (uint64_t j = k; j < f.log.size(); ++j) {
    CostMeter meter;
    auto r = (*recovered)->ApplyUpdates(f.log.at(j), &meter);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->inserted, oracle.results[j].inserted) << "batch " << j;
    EXPECT_EQ(r->deleted, oracle.results[j].deleted) << "batch " << j;
    EXPECT_EQ(meter.sim_micros(), oracle.charges[j]) << "batch " << j;
  }
  EXPECT_EQ(CanonRows(**recovered), oracle.rows_after.back());
}

TEST(RecoveryMatrixTest, EveryFaultKindRecoversToAnOraclePrefix) {
  Fixture f = MakeFixture(/*num_shards=*/2);
  OracleState oracle = RunOracle(f.dataset, f.config, f.log);
  const std::string base = ScratchDir("matrix");

  const FaultKind kinds[] = {FaultKind::kFailWrite, FaultKind::kShortWrite,
                             FaultKind::kTornWrite, FaultKind::kFlipByte,
                             FaultKind::kFailSync};
  // Injection points spread across the run: construction-time snapshot,
  // early WAL appends, mid-run snapshot rotation, late appends. I/O
  // indices are deterministic, so these hit the same structural spots on
  // every run.
  const uint64_t at_ios[] = {0, 3, 9, 17, 33, 61};
  int case_id = 0;
  for (FaultKind kind : kinds) {
    for (uint64_t at_io : at_ios) {
      for (uint64_t seed : {1u, 2u}) {
        RunMatrixCase(f, oracle, {kind, at_io, seed},
                      base + "/case" + std::to_string(case_id));
        ++case_id;
      }
    }
  }
  EXPECT_EQ(case_id, 60);
}

}  // namespace
}  // namespace dskg::core
