// End-to-end smoke test: build a small YAGO-like graph, run the paper's
// flagship query through all three store variants, and check the answers
// agree.

#include <gtest/gtest.h>

#include "core/dotil.h"
#include "core/dual_store.h"
#include "core/runner.h"
#include "workload/generators.h"
#include "workload/templates.h"

namespace dskg {
namespace {

TEST(Smoke, FlagshipQueryAgreesAcrossVariants) {
  workload::YagoConfig cfg;
  cfg.target_triples = 20000;
  rdf::Dataset ds = workload::GenerateYago(cfg);
  ASSERT_GT(ds.num_triples(), 10000u);

  const char* kQuery =
      "SELECT ?p WHERE { ?p y:wasBornIn ?city . "
      "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }";

  core::DualStoreConfig rdb_only;
  rdb_only.use_graph = false;
  core::DualStore only(&ds, rdb_only);
  auto r1 = only.Process(kQuery);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(r1->route, core::Route::kRelationalOnly);
  EXPECT_GT(r1->result.NumRows(), 0u);

  core::DualStoreConfig gdb;
  gdb.use_graph = true;
  core::DualStore dual(&ds, gdb);
  // Load the two partitions the query needs.
  CostMeter meter;
  ASSERT_TRUE(
      dual.MigratePartition(ds.dict().Lookup("y:wasBornIn"), &meter).ok());
  ASSERT_TRUE(
      dual.MigratePartition(ds.dict().Lookup("y:hasAcademicAdvisor"), &meter)
          .ok());
  auto r2 = dual.Process(kQuery);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r2->route, core::Route::kGraphOnly);
  EXPECT_TRUE(sparql::BindingTable::SameRows(r1->result, r2->result));
  // The accelerator should beat the relational plan on this query.
  EXPECT_LT(r2->graph_micros, r1->rel_micros);
}

}  // namespace
}  // namespace dskg
