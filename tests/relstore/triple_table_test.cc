// TripleTable tests: all eight bound/unbound pattern combinations
// (parameterized), statistics, estimates, budget aborts.

#include <gtest/gtest.h>

#include "relstore/triple_table.h"
#include "rdf/dataset.h"
#include "test_util.h"

namespace dskg::relstore {
namespace {

using rdf::TermId;
using rdf::Triple;

class TripleTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = testing::SmallPeopleGraph();
    CostMeter meter;
    table_.BulkLoad(ds_.triples(), &meter);
  }

  TermId Id(const std::string& term) { return ds_.dict().Lookup(term); }

  std::vector<Triple> Collect(const BoundPattern& p) {
    std::vector<Triple> out;
    CostMeter meter;
    EXPECT_TRUE(table_
                    .ScanPattern(p, &meter,
                                 [&](const Triple& t) {
                                   out.push_back(t);
                                   return true;
                                 })
                    .ok());
    return out;
  }

  rdf::Dataset ds_;
  TripleTable table_;
};

TEST_F(TripleTableTest, InsertDeduplicates) {
  CostMeter meter;
  EXPECT_FALSE(table_.Insert(ds_.triples()[0], &meter));
  EXPECT_EQ(table_.size(), ds_.num_triples());  // dataset has no dups
}

TEST_F(TripleTableTest, ContainsExactTriple) {
  CostMeter meter;
  EXPECT_TRUE(table_.Contains(
      Triple{Id("alice"), Id("bornIn"), Id("berlin")}, &meter));
  EXPECT_FALSE(table_.Contains(
      Triple{Id("alice"), Id("bornIn"), Id("paris")}, &meter));
  EXPECT_GT(meter.count(Op::kIndexProbe), 0u);
}

TEST_F(TripleTableTest, ScanFullyBound) {
  BoundPattern p;
  p.subject = Id("alice");
  p.predicate = Id("bornIn");
  p.object = Id("berlin");
  EXPECT_EQ(Collect(p).size(), 1u);
}

TEST_F(TripleTableTest, ScanByPredicate) {
  BoundPattern p;
  p.predicate = Id("bornIn");
  EXPECT_EQ(Collect(p).size(), 4u);
}

TEST_F(TripleTableTest, ScanBySubject) {
  BoundPattern p;
  p.subject = Id("alice");
  EXPECT_EQ(Collect(p).size(), 3u);  // bornIn, likes, marriedTo
}

TEST_F(TripleTableTest, ScanByObject) {
  BoundPattern p;
  p.object = Id("alice");
  EXPECT_EQ(Collect(p).size(), 2u);  // two advisees
}

TEST_F(TripleTableTest, ScanSubjectPredicate) {
  BoundPattern p;
  p.subject = Id("bob");
  p.predicate = Id("likes");
  auto r = Collect(p);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].object, Id("film1"));
}

TEST_F(TripleTableTest, ScanPredicateObject) {
  BoundPattern p;
  p.predicate = Id("likes");
  p.object = Id("film2");
  EXPECT_EQ(Collect(p).size(), 2u);  // carol, dave
}

TEST_F(TripleTableTest, ScanObjectSubject) {
  BoundPattern p;
  p.subject = Id("dave");
  p.object = Id("carol");
  auto r = Collect(p);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].predicate, Id("advisor"));
}

TEST_F(TripleTableTest, FullScanVisitsEverything) {
  EXPECT_EQ(Collect(BoundPattern{}).size(), ds_.num_triples());
}

TEST_F(TripleTableTest, EarlyStopViaCallback) {
  CostMeter meter;
  size_t visited = 0;
  ASSERT_TRUE(table_
                  .ScanPattern(BoundPattern{}, &meter,
                               [&](const Triple&) {
                                 ++visited;
                                 return visited < 3;
                               })
                  .ok());
  EXPECT_EQ(visited, 3u);
}

TEST_F(TripleTableTest, BudgetAbortsScan) {
  CostMeter meter;
  meter.set_budget_micros(0.6);  // roughly one tuple worth
  Status s = table_.ScanPattern(BoundPattern{}, &meter,
                                [](const Triple&) { return true; });
  EXPECT_TRUE(s.IsCancelled()) << s;
}

TEST_F(TripleTableTest, StatsPerPredicate) {
  auto st = table_.StatsOf(Id("bornIn"));
  EXPECT_EQ(st.num_triples, 4u);
  EXPECT_EQ(st.num_distinct_subjects, 4u);
  EXPECT_EQ(st.num_distinct_objects, 2u);  // berlin, paris
  auto missing = table_.StatsOf(999999);
  EXPECT_EQ(missing.num_triples, 0u);
}

TEST_F(TripleTableTest, EstimateMatchesBoundsReality) {
  BoundPattern by_pred;
  by_pred.predicate = Id("bornIn");
  EXPECT_EQ(table_.EstimateMatches(by_pred), 4u);

  BoundPattern point;
  point.predicate = Id("bornIn");
  point.subject = Id("alice");
  EXPECT_EQ(table_.EstimateMatches(point), 1u);

  BoundPattern unknown;
  unknown.predicate = 424242;
  EXPECT_EQ(table_.EstimateMatches(unknown), 0u);
}

TEST_F(TripleTableTest, PredicatesListsAll) {
  EXPECT_EQ(table_.Predicates().size(), 5u);
  EXPECT_EQ(table_.num_predicates(), 5u);
}

TEST_F(TripleTableTest, GlobalDistinctCounts) {
  EXPECT_GT(table_.SubjectCount(), 0u);
  EXPECT_GT(table_.ObjectCount(), 0u);
}

TEST_F(TripleTableTest, ScanChargesCosts) {
  CostMeter meter;
  BoundPattern p;
  p.predicate = Id("bornIn");
  ASSERT_TRUE(
      table_.ScanPattern(p, &meter, [](const Triple&) { return true; })
          .ok());
  EXPECT_EQ(meter.count(Op::kIndexProbe), 1u);
  EXPECT_GE(meter.count(Op::kIndexScanTuple), 4u);
}

// Differential test: every bound-mask combination agrees with a naive
// filter over the raw triples.
class PatternMaskTest : public ::testing::TestWithParam<int> {};

TEST_P(PatternMaskTest, AgreesWithNaiveFilter) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  TripleTable table;
  CostMeter meter;
  table.BulkLoad(ds.triples(), &meter);

  const int mask = GetParam();
  // Use an existing triple's components as the bound values.
  for (const Triple& probe : ds.triples()) {
    BoundPattern p;
    if (mask & 1) p.subject = probe.subject;
    if (mask & 2) p.predicate = probe.predicate;
    if (mask & 4) p.object = probe.object;

    std::vector<Triple> expected;
    for (const Triple& t : ds.triples()) {
      if ((!p.subject || *p.subject == t.subject) &&
          (!p.predicate || *p.predicate == t.predicate) &&
          (!p.object || *p.object == t.object)) {
        expected.push_back(t);
      }
    }
    std::sort(expected.begin(), expected.end());

    std::vector<Triple> actual;
    CostMeter m2;
    ASSERT_TRUE(table
                    .ScanPattern(p, &m2,
                                 [&](const Triple& t) {
                                   actual.push_back(t);
                                   return true;
                                 })
                    .ok());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(AllMasks, PatternMaskTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace dskg::relstore
