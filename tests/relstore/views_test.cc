// Materialized view manager tests: signatures, generalization, filtered
// answers, and the row budget.

#include <gtest/gtest.h>

#include "relstore/views.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace dskg::relstore {
namespace {

using sparql::Parser;
using sparql::Query;

std::vector<sparql::TriplePattern> Patterns(const std::string& text) {
  auto q = Parser::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return q->patterns;
}

TEST(BgpSignature, InvariantUnderVariableRenaming) {
  EXPECT_EQ(BgpSignature(Patterns("SELECT * WHERE { ?a p ?b . ?b q ?c }")),
            BgpSignature(Patterns("SELECT * WHERE { ?x p ?y . ?y q ?z }")));
}

TEST(BgpSignature, DistinguishesJoinStructure) {
  EXPECT_NE(BgpSignature(Patterns("SELECT * WHERE { ?a p ?b . ?b q ?c }")),
            BgpSignature(Patterns("SELECT * WHERE { ?a p ?b . ?a q ?c }")));
}

TEST(BgpSignature, DistinguishesPredicates) {
  EXPECT_NE(BgpSignature(Patterns("SELECT * WHERE { ?a p ?b }")),
            BgpSignature(Patterns("SELECT * WHERE { ?a q ?b }")));
}

TEST(BgpSignature, ConstantsAlignWithGeneralizingVariables) {
  // A query with a constant matches the signature of the generalized view
  // (the constant occupies the same canonical slot as a variable).
  EXPECT_EQ(BgpSignature(Patterns("SELECT * WHERE { ?a p berlin }")),
            BgpSignature(Patterns("SELECT * WHERE { ?a p ?g }")));
}

TEST(BgpSignature, RepeatedConstantMatchesRepeatedVariable) {
  EXPECT_EQ(
      BgpSignature(Patterns("SELECT * WHERE { ?a p berlin . ?b q berlin }")),
      BgpSignature(Patterns("SELECT * WHERE { ?a p ?c . ?b q ?c }")));
  EXPECT_NE(
      BgpSignature(Patterns("SELECT * WHERE { ?a p berlin . ?b q paris }")),
      BgpSignature(Patterns("SELECT * WHERE { ?a p ?c . ?b q ?c }")));
}

class ViewsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = testing::SmallPeopleGraph();
    CostMeter meter;
    table_.BulkLoad(ds_.triples(), &meter);
    executor_ = std::make_unique<Executor>(&table_, &ds_.dict());
    views_ = std::make_unique<MaterializedViewManager>(
        executor_.get(), &ds_.dict(), /*budget_rows=*/0);
  }

  rdf::Dataset ds_;
  TripleTable table_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<MaterializedViewManager> views_;
};

TEST_F(ViewsTest, CreateAndAnswerExactSubquery) {
  auto def = Parser::Parse(
      "SELECT * WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }");
  ASSERT_TRUE(def.ok());
  CostMeter meter;
  ASSERT_TRUE(views_->CreateView(*def, &meter).ok());
  EXPECT_EQ(views_->num_views(), 1u);

  CostMeter qmeter;
  auto ans = views_->TryAnswer(def->patterns, &qmeter);
  ASSERT_TRUE(ans.has_value());
  EXPECT_EQ(ans->bindings.NumRows(), 2u);  // bob, dave
  EXPECT_GT(qmeter.count(Op::kViewLookup), 0u);
}

TEST_F(ViewsTest, GeneralizedViewAnswersMutations) {
  // Build from one mutation (drama), answer another (comedy).
  auto drama = Parser::Parse(
      "SELECT * WHERE { ?p likes ?f . ?f genre drama . }");
  ASSERT_TRUE(drama.ok());
  CostMeter meter;
  ASSERT_TRUE(views_->CreateView(*drama, &meter).ok());

  auto comedy =
      Patterns("SELECT * WHERE { ?p likes ?f . ?f genre comedy . }");
  CostMeter qmeter;
  auto ans = views_->TryAnswer(comedy, &qmeter);
  ASSERT_TRUE(ans.has_value());
  ASSERT_EQ(ans->bindings.NumRows(), 2u);  // carol, dave like film2
  const int f_col = ans->bindings.ColumnIndex("f");
  ASSERT_GE(f_col, 0);
  for (const auto row : ans->bindings.Rows()) {
    EXPECT_EQ(row[static_cast<size_t>(f_col)], ds_.dict().Lookup("film2"));
  }
}

TEST_F(ViewsTest, UnknownConstantFilterGivesEmptyAnswer) {
  auto def = Parser::Parse("SELECT * WHERE { ?p likes ?f . ?f genre drama }");
  ASSERT_TRUE(def.ok());
  CostMeter meter;
  ASSERT_TRUE(views_->CreateView(*def, &meter).ok());
  auto q = Patterns("SELECT * WHERE { ?p likes ?f . ?f genre horror }");
  CostMeter qmeter;
  auto ans = views_->TryAnswer(q, &qmeter);
  ASSERT_TRUE(ans.has_value());
  EXPECT_TRUE(ans->bindings.empty());
}

TEST_F(ViewsTest, NoMatchingViewReturnsNullopt) {
  CostMeter meter;
  EXPECT_FALSE(
      views_->TryAnswer(Patterns("SELECT * WHERE { ?a bornIn ?b }"), &meter)
          .has_value());
}

TEST_F(ViewsTest, DuplicateCreateRejected) {
  auto def = Parser::Parse("SELECT * WHERE { ?p bornIn ?c . ?p likes ?f }");
  ASSERT_TRUE(def.ok());
  CostMeter meter;
  ASSERT_TRUE(views_->CreateView(*def, &meter).ok());
  EXPECT_TRUE(views_->CreateView(*def, &meter).IsAlreadyExists());
}

TEST_F(ViewsTest, DropViewAndClear) {
  auto def = Parser::Parse("SELECT * WHERE { ?p bornIn ?c . ?p likes ?f }");
  ASSERT_TRUE(def.ok());
  CostMeter meter;
  ASSERT_TRUE(views_->CreateView(*def, &meter).ok());
  const std::string sig = BgpSignature(def->patterns);
  EXPECT_TRUE(views_->HasViewFor(def->patterns));
  ASSERT_TRUE(views_->DropView(sig).ok());
  EXPECT_TRUE(views_->DropView(sig).IsNotFound());
  ASSERT_TRUE(views_->CreateView(*def, &meter).ok());
  views_->Clear();
  EXPECT_EQ(views_->num_views(), 0u);
  EXPECT_EQ(views_->used_rows(), 0u);
}

TEST(ViewsBudget, RejectsViewsOverBudget) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  relstore::TripleTable table;
  CostMeter meter;
  table.BulkLoad(ds.triples(), &meter);
  Executor executor(&table, &ds.dict());
  MaterializedViewManager views(&executor, &ds.dict(), /*budget_rows=*/3);

  auto big = sparql::Parser::Parse("SELECT * WHERE { ?p bornIn ?c }");
  ASSERT_TRUE(big.ok());
  // 4 bornIn rows > budget of 3.
  EXPECT_TRUE(views.CreateView(*big, &meter).IsCapacityExceeded());
  EXPECT_EQ(views.num_views(), 0u);

  auto small = sparql::Parser::Parse("SELECT * WHERE { ?f genre ?g }");
  ASSERT_TRUE(small.ok());
  EXPECT_TRUE(views.CreateView(*small, &meter).ok());
  EXPECT_EQ(views.used_rows(), 2u);
}

}  // namespace
}  // namespace dskg::relstore
