// Relational executor tests: hand-checked joins, seeded execution,
// budget aborts, and randomized differential testing against the
// brute-force reference evaluator.

#include <gtest/gtest.h>

#include "relstore/executor.h"
#include "sparql/parser.h"
#include "test_util.h"
#include "workload/generators.h"

namespace dskg::relstore {
namespace {

using sparql::BindingTable;
using sparql::Parser;

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = testing::SmallPeopleGraph();
    CostMeter meter;
    table_.BulkLoad(ds_.triples(), &meter);
    executor_ = std::make_unique<Executor>(&table_, &ds_.dict());
  }

  BindingTable Run(const std::string& text) {
    auto q = Parser::Parse(text);
    EXPECT_TRUE(q.ok()) << q.status();
    CostMeter meter;
    auto r = executor_->Execute(*q, &meter);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).ValueOrDie();
  }

  rdf::Dataset ds_;
  TripleTable table_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, SinglePatternScan) {
  BindingTable r = Run("SELECT ?p WHERE { ?p bornIn berlin . }");
  EXPECT_EQ(r.NumRows(), 2u);  // alice, bob
}

TEST_F(ExecutorTest, TwoWayJoin) {
  // People born in the same city as their advisor: bob (alice/berlin)
  // and dave (carol/paris).
  BindingTable r = Run(
      "SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }");
  ASSERT_EQ(r.NumRows(), 2u);
  r.Canonicalize();
  std::set<rdf::TermId> people = {r.At(0, 0), r.At(1, 0)};
  EXPECT_TRUE(people.count(ds_.dict().Lookup("bob")));
  EXPECT_TRUE(people.count(ds_.dict().Lookup("dave")));
}

TEST_F(ExecutorTest, UnknownConstantYieldsEmptyWithHeader) {
  BindingTable r = Run("SELECT ?p WHERE { ?p bornIn atlantis . }");
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.columns, std::vector<std::string>{"p"});
}

TEST_F(ExecutorTest, RepeatedVariableWithinPattern) {
  // ?x likes ?x matches nothing here.
  BindingTable r = Run("SELECT ?x WHERE { ?x likes ?x . }");
  EXPECT_TRUE(r.empty());
}

TEST_F(ExecutorTest, VariablePredicate) {
  BindingTable r = Run("SELECT ?rel WHERE { alice ?rel bob . }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.At(0, 0), ds_.dict().Lookup("marriedTo"));
}

TEST_F(ExecutorTest, CartesianProductWhenDisconnected) {
  BindingTable r = Run(
      "SELECT ?a ?b WHERE { ?a genre drama . ?b genre comedy . }");
  ASSERT_EQ(r.NumRows(), 1u);  // film1 x film2
}

TEST_F(ExecutorTest, SelectStarProjectsAllVariables) {
  BindingTable r = Run("SELECT * WHERE { ?p likes ?f . ?f genre ?g . }");
  EXPECT_EQ(r.columns.size(), 3u);
  EXPECT_EQ(r.NumRows(), 4u);
}

TEST_F(ExecutorTest, DuplicateResultsPreserved) {
  // Two people like film1 and two like film2 -> co-like pairs include
  // symmetric and self pairs (SELECT without DISTINCT keeps them all).
  BindingTable r =
      Run("SELECT ?a ?b WHERE { ?a likes ?f . ?b likes ?f . }");
  EXPECT_EQ(r.NumRows(), 8u);  // 2^2 + 2^2
}

TEST_F(ExecutorTest, SeededExecutionJoinsByColumnName) {
  // Seed with two people; the remainder looks up their birth city.
  BindingTable seed;
  seed.columns = {"p"};
  seed.AppendRow({ds_.dict().Lookup("alice")});
  seed.AppendRow({ds_.dict().Lookup("carol")});
  auto q = Parser::Parse("SELECT ?p ?c WHERE { ?p bornIn ?c . }");
  ASSERT_TRUE(q.ok());
  CostMeter meter;
  auto r = executor_->ExecuteWithSeed(*q, seed, &meter);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->NumRows(), 2u);
  // Each row's city matches the seeded person, not the cross product.
  for (const auto row : r->Rows()) {
    if (row[0] == ds_.dict().Lookup("alice")) {
      EXPECT_EQ(row[1], ds_.dict().Lookup("berlin"));
    } else {
      EXPECT_EQ(row[1], ds_.dict().Lookup("paris"));
    }
  }
}

TEST_F(ExecutorTest, BudgetCancelsExpensiveQuery) {
  auto q = Parser::Parse("SELECT ?a ?b WHERE { ?a likes ?f . ?b likes ?f . }");
  ASSERT_TRUE(q.ok());
  CostMeter meter;
  meter.set_budget_micros(0.5);
  auto r = executor_->Execute(*q, &meter);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled());
}

TEST_F(ExecutorTest, EmptyQueryRejected) {
  sparql::Query q;
  CostMeter meter;
  EXPECT_TRUE(executor_->Execute(q, &meter).status().IsInvalidArgument());
}

TEST_F(ExecutorTest, ChargesMaterializationPerIntermediateRow) {
  auto q = Parser::Parse(
      "SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }");
  ASSERT_TRUE(q.ok());
  CostMeter meter;
  ASSERT_TRUE(executor_->Execute(*q, &meter).ok());
  EXPECT_GT(meter.count(Op::kMaterializeTuple), 0u);
  EXPECT_GT(meter.sim_micros(), 0.0);
}

// ---- randomized differential testing -------------------------------------

class ExecutorFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorFuzzTest, AgreesWithReferenceEvaluator) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  TripleTable table;
  CostMeter load;
  table.BulkLoad(ds.triples(), &load);
  Executor executor(&table, &ds.dict());
  testing::ReferenceEvaluator reference(&ds);

  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    sparql::Query q = testing::RandomBgp(ds, &rng);
    CostMeter meter;
    auto actual = executor.Execute(q, &meter);
    ASSERT_TRUE(actual.ok()) << actual.status() << "\n" << q.ToString();
    BindingTable expected = reference.Evaluate(q);
    EXPECT_TRUE(BindingTable::SameRows(*actual, expected))
        << "query: " << q.ToString() << "\nactual rows: "
        << actual->NumRows() << " expected: " << expected.NumRows();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzzTest,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80));

TEST(ExecutorScale, FlagshipQueryOnGeneratedGraph) {
  workload::YagoConfig cfg;
  cfg.target_triples = 8000;
  rdf::Dataset ds = workload::GenerateYago(cfg);
  TripleTable table;
  CostMeter load;
  table.BulkLoad(ds.triples(), &load);
  Executor executor(&table, &ds.dict());
  auto q = Parser::Parse(
      "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasAcademicAdvisor ?a . "
      "?a y:wasBornIn ?c . }");
  ASSERT_TRUE(q.ok());
  CostMeter meter;
  auto r = executor.Execute(*q, &meter);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->NumRows(), 0u);

  testing::ReferenceEvaluator reference(&ds);
  BindingTable expected = reference.Evaluate(*q);
  EXPECT_TRUE(BindingTable::SameRows(*r, expected));
}

}  // namespace
}  // namespace dskg::relstore
