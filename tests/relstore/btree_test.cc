// B+-tree tests: structural invariants plus randomized differential
// testing against std::set.

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "common/rng.h"
#include "relstore/btree.h"

namespace dskg::relstore {
namespace {

using Key = std::array<uint64_t, 3>;

TEST(BPlusTree, EmptyTree) {
  BPlusTree<Key> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Begin().AtEnd());
  EXPECT_FALSE(tree.Contains({1, 2, 3}));
}

TEST(BPlusTree, InsertAndContains) {
  BPlusTree<Key> tree;
  EXPECT_TRUE(tree.Insert({1, 2, 3}));
  EXPECT_FALSE(tree.Insert({1, 2, 3}));  // duplicate
  EXPECT_TRUE(tree.Contains({1, 2, 3}));
  EXPECT_FALSE(tree.Contains({1, 2, 4}));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTree, IterationIsSorted) {
  BPlusTree<Key> tree;
  for (uint64_t i = 100; i > 0; --i) tree.Insert({i, 0, 0});
  uint64_t prev = 0;
  size_t count = 0;
  for (auto it = tree.Begin(); !it.AtEnd(); ++it) {
    EXPECT_GT((*it)[0], prev);
    prev = (*it)[0];
    ++count;
  }
  EXPECT_EQ(count, 100u);
}

TEST(BPlusTree, SplitsGrowHeight) {
  BPlusTree<Key> tree;
  EXPECT_EQ(tree.height(), 1);
  for (uint64_t i = 0; i < 1000; ++i) tree.Insert({i, i, i});
  EXPECT_GT(tree.height(), 1);
  EXPECT_EQ(tree.size(), 1000u);
}

TEST(BPlusTree, LowerBoundFindsFirstNotLess) {
  BPlusTree<Key> tree;
  for (uint64_t i = 0; i < 100; i += 10) tree.Insert({i, 0, 0});
  auto it = tree.LowerBound({35, 0, 0});
  ASSERT_FALSE(it.AtEnd());
  EXPECT_EQ((*it)[0], 40u);
  it = tree.LowerBound({40, 0, 0});
  EXPECT_EQ((*it)[0], 40u);
  it = tree.LowerBound({95, 0, 0});
  EXPECT_TRUE(it.AtEnd());
}

TEST(BPlusTree, LowerBoundPrefixScan) {
  // The index usage pattern: all keys with a bound first component.
  BPlusTree<Key> tree;
  for (uint64_t s = 0; s < 20; ++s) {
    for (uint64_t o = 0; o < 5; ++o) tree.Insert({s, 7, o});
  }
  size_t count = 0;
  for (auto it = tree.LowerBound({13, 0, 0}); !it.AtEnd(); ++it) {
    if ((*it)[0] != 13) break;
    ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(BPlusTree, EraseRemovesKeys) {
  BPlusTree<Key> tree;
  for (uint64_t i = 0; i < 200; ++i) tree.Insert({i, 0, 0});
  EXPECT_TRUE(tree.Erase({50, 0, 0}));
  EXPECT_FALSE(tree.Erase({50, 0, 0}));
  EXPECT_FALSE(tree.Contains({50, 0, 0}));
  EXPECT_EQ(tree.size(), 199u);
  // Iteration skips the erased key.
  for (auto it = tree.Begin(); !it.AtEnd(); ++it) {
    EXPECT_NE((*it)[0], 50u);
  }
}

class BTreeDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeDifferentialTest, MatchesStdSetUnderRandomOps) {
  Rng rng(GetParam());
  BPlusTree<Key> tree;
  std::set<Key> reference;
  for (int op = 0; op < 5000; ++op) {
    Key k{rng.NextBounded(50), rng.NextBounded(10), rng.NextBounded(50)};
    if (rng.NextBool(0.8)) {
      EXPECT_EQ(tree.Insert(k), reference.insert(k).second);
    } else {
      EXPECT_EQ(tree.Erase(k), reference.erase(k) > 0);
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  // Full scan equals sorted reference.
  auto rit = reference.begin();
  for (auto it = tree.Begin(); !it.AtEnd(); ++it, ++rit) {
    ASSERT_NE(rit, reference.end());
    EXPECT_EQ(*it, *rit);
  }
  EXPECT_EQ(rit, reference.end());
  // Random lower-bound probes agree.
  for (int probe = 0; probe < 200; ++probe) {
    Key k{rng.NextBounded(55), rng.NextBounded(11), rng.NextBounded(55)};
    auto it = tree.LowerBound(k);
    auto ref = reference.lower_bound(k);
    if (ref == reference.end()) {
      EXPECT_TRUE(it.AtEnd());
    } else {
      ASSERT_FALSE(it.AtEnd());
      EXPECT_EQ(*it, *ref);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

TEST(BPlusTree, SequentialAndReverseInsertions) {
  for (bool reverse : {false, true}) {
    BPlusTree<Key> tree;
    const uint64_t n = 2000;
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t v = reverse ? n - 1 - i : i;
      tree.Insert({v, v % 7, v % 3});
    }
    EXPECT_EQ(tree.size(), n);
    uint64_t count = 0;
    for (auto it = tree.Begin(); !it.AtEnd(); ++it) ++count;
    EXPECT_EQ(count, n);
  }
}

}  // namespace
}  // namespace dskg::relstore
