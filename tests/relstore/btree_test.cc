// B+-tree tests: structural invariants plus randomized differential
// testing against std::set.

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

#include "common/rng.h"
#include "relstore/btree.h"

namespace dskg::relstore {
namespace {

using Key = std::array<uint64_t, 3>;

TEST(BPlusTree, EmptyTree) {
  BPlusTree<Key> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Begin().AtEnd());
  EXPECT_FALSE(tree.Contains({1, 2, 3}));
}

TEST(BPlusTree, InsertAndContains) {
  BPlusTree<Key> tree;
  EXPECT_TRUE(tree.Insert({1, 2, 3}));
  EXPECT_FALSE(tree.Insert({1, 2, 3}));  // duplicate
  EXPECT_TRUE(tree.Contains({1, 2, 3}));
  EXPECT_FALSE(tree.Contains({1, 2, 4}));
  EXPECT_EQ(tree.size(), 1u);
}

TEST(BPlusTree, IterationIsSorted) {
  BPlusTree<Key> tree;
  for (uint64_t i = 100; i > 0; --i) tree.Insert({i, 0, 0});
  uint64_t prev = 0;
  size_t count = 0;
  for (auto it = tree.Begin(); !it.AtEnd(); ++it) {
    EXPECT_GT((*it)[0], prev);
    prev = (*it)[0];
    ++count;
  }
  EXPECT_EQ(count, 100u);
}

TEST(BPlusTree, SplitsGrowHeight) {
  BPlusTree<Key> tree;
  EXPECT_EQ(tree.height(), 1);
  for (uint64_t i = 0; i < 1000; ++i) tree.Insert({i, i, i});
  EXPECT_GT(tree.height(), 1);
  EXPECT_EQ(tree.size(), 1000u);
}

TEST(BPlusTree, LowerBoundFindsFirstNotLess) {
  BPlusTree<Key> tree;
  for (uint64_t i = 0; i < 100; i += 10) tree.Insert({i, 0, 0});
  auto it = tree.LowerBound({35, 0, 0});
  ASSERT_FALSE(it.AtEnd());
  EXPECT_EQ((*it)[0], 40u);
  it = tree.LowerBound({40, 0, 0});
  EXPECT_EQ((*it)[0], 40u);
  it = tree.LowerBound({95, 0, 0});
  EXPECT_TRUE(it.AtEnd());
}

TEST(BPlusTree, LowerBoundPrefixScan) {
  // The index usage pattern: all keys with a bound first component.
  BPlusTree<Key> tree;
  for (uint64_t s = 0; s < 20; ++s) {
    for (uint64_t o = 0; o < 5; ++o) tree.Insert({s, 7, o});
  }
  size_t count = 0;
  for (auto it = tree.LowerBound({13, 0, 0}); !it.AtEnd(); ++it) {
    if ((*it)[0] != 13) break;
    ++count;
  }
  EXPECT_EQ(count, 5u);
}

TEST(BPlusTree, EraseRemovesKeys) {
  BPlusTree<Key> tree;
  for (uint64_t i = 0; i < 200; ++i) tree.Insert({i, 0, 0});
  EXPECT_TRUE(tree.Erase({50, 0, 0}));
  EXPECT_FALSE(tree.Erase({50, 0, 0}));
  EXPECT_FALSE(tree.Contains({50, 0, 0}));
  EXPECT_EQ(tree.size(), 199u);
  // Iteration skips the erased key.
  for (auto it = tree.Begin(); !it.AtEnd(); ++it) {
    EXPECT_NE((*it)[0], 50u);
  }
}

class BTreeDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeDifferentialTest, MatchesStdSetUnderRandomOps) {
  Rng rng(GetParam());
  BPlusTree<Key> tree;
  std::set<Key> reference;
  for (int op = 0; op < 5000; ++op) {
    Key k{rng.NextBounded(50), rng.NextBounded(10), rng.NextBounded(50)};
    if (rng.NextBool(0.8)) {
      EXPECT_EQ(tree.Insert(k), reference.insert(k).second);
    } else {
      EXPECT_EQ(tree.Erase(k), reference.erase(k) > 0);
    }
  }
  EXPECT_EQ(tree.size(), reference.size());
  // Full scan equals sorted reference.
  auto rit = reference.begin();
  for (auto it = tree.Begin(); !it.AtEnd(); ++it, ++rit) {
    ASSERT_NE(rit, reference.end());
    EXPECT_EQ(*it, *rit);
  }
  EXPECT_EQ(rit, reference.end());
  // Random lower-bound probes agree.
  for (int probe = 0; probe < 200; ++probe) {
    Key k{rng.NextBounded(55), rng.NextBounded(11), rng.NextBounded(55)};
    auto it = tree.LowerBound(k);
    auto ref = reference.lower_bound(k);
    if (ref == reference.end()) {
      EXPECT_TRUE(it.AtEnd());
    } else {
      ASSERT_FALSE(it.AtEnd());
      EXPECT_EQ(*it, *ref);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

// ---- targeted erase/underflow coverage ------------------------------------

TEST(BPlusTree, EraseDrainsLeafThroughUnderflow) {
  // One split (65 keys -> two leaves), then drain one side far below
  // kMinKeys: every key must stay reachable by Contains, iteration and
  // LowerBound while borrow/merge rebalancing runs underneath.
  BPlusTree<Key> tree;
  const uint64_t n = BPlusTree<Key>::kMaxKeys + 1;
  for (uint64_t i = 0; i < n; ++i) tree.Insert({i, 0, 0});
  EXPECT_EQ(tree.height(), 2);
  for (uint64_t i = 0; i < n; i += 2) {
    ASSERT_TRUE(tree.Erase({i, 0, 0})) << i;
  }
  EXPECT_EQ(tree.size(), n / 2);
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(tree.Contains({i, 0, 0}), i % 2 == 1) << i;
  }
  size_t count = 0;
  for (auto it = tree.Begin(); !it.AtEnd(); ++it) ++count;
  EXPECT_EQ(count, n / 2);
}

TEST(BPlusTree, EraseMergesBackToSingleLeaf) {
  // Deleting all but one key must collapse every level: the tree ends as
  // a single near-empty root leaf, not a chain of hollow inner nodes.
  BPlusTree<Key> tree;
  for (uint64_t i = 0; i < 1000; ++i) tree.Insert({i, i, i});
  const int grown_height = tree.height();
  EXPECT_GT(grown_height, 1);
  for (uint64_t i = 0; i < 999; ++i) {
    ASSERT_TRUE(tree.Erase({i, i, i})) << i;
  }
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.Contains({999, 999, 999}));
  EXPECT_TRUE(tree.Erase({999, 999, 999}));
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Begin().AtEnd());
}

TEST(BPlusTree, BorrowKeepsLeafChainScansExact) {
  // Interleaved deletes force both borrow directions and leaf merges;
  // the linked-leaf scan from any lower bound must stay gap-free and
  // sorted (this is the range-scan path queries use).
  BPlusTree<Key> tree;
  std::set<Key> reference;
  const uint64_t n = 500;
  for (uint64_t i = 0; i < n; ++i) {
    tree.Insert({i, 1, 2});
    reference.insert({i, 1, 2});
  }
  Rng rng(21);
  for (int round = 0; round < 400; ++round) {
    Key k{rng.NextBounded(n), 1, 2};
    tree.Erase(k);
    reference.erase(k);
    const Key lo{rng.NextBounded(n), 0, 0};
    auto it = tree.LowerBound(lo);
    for (auto ref = reference.lower_bound(lo); ref != reference.end();
         ++ref, ++it) {
      ASSERT_FALSE(it.AtEnd());
      ASSERT_EQ(*it, *ref);
    }
    EXPECT_TRUE(it.AtEnd());
  }
}

TEST(BPlusTree, ShardStartsStayExactAfterDeletions) {
  // ShardStarts partitions a prefix range on leaf boundaries; after heavy
  // deletion the chosen boundaries must still cover exactly the surviving
  // range keys, in order, with no shard starting on a vanished key.
  BPlusTree<Key> tree;
  for (uint64_t p = 1; p <= 3; ++p) {
    for (uint64_t i = 0; i < 300; ++i) tree.Insert({p, i, 0});
  }
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    tree.Erase({2, rng.NextBounded(300), 0});
  }
  std::set<Key> survivors;
  for (auto it = tree.Begin(); !it.AtEnd(); ++it) {
    if ((*it)[0] == 2) survivors.insert(*it);
  }
  ASSERT_FALSE(survivors.empty());
  const auto within = [](const Key& k) { return k[0] == 2; };
  for (int max_shards : {1, 2, 4, 7, 64}) {
    const std::vector<Key> starts =
        tree.ShardStarts({2, 0, 0}, max_shards, within);
    ASSERT_FALSE(starts.empty());
    EXPECT_EQ(starts.front(), *survivors.begin());
    // Starts are strictly ascending, live keys inside the range.
    for (size_t s = 0; s < starts.size(); ++s) {
      EXPECT_TRUE(survivors.count(starts[s]) > 0);
      if (s > 0) EXPECT_LT(starts[s - 1], starts[s]);
    }
    // Walking shard by shard reproduces the survivors exactly.
    std::vector<Key> walked;
    for (size_t s = 0; s < starts.size(); ++s) {
      for (auto it = tree.LowerBound(starts[s]); !it.AtEnd(); ++it) {
        if (!within(*it)) break;
        if (s + 1 < starts.size() && !((*it) < starts[s + 1])) break;
        walked.push_back(*it);
      }
    }
    EXPECT_EQ(walked, std::vector<Key>(survivors.begin(), survivors.end()));
  }
}

TEST(BPlusTree, DeleteThenReinsertCycles) {
  // The online workload's steady state: sustained churn at constant size.
  BPlusTree<Key> tree;
  std::set<Key> reference;
  Rng rng(77);
  for (uint64_t i = 0; i < 300; ++i) {
    Key k{rng.NextBounded(1000), 0, 0};
    tree.Insert(k);
    reference.insert(k);
  }
  for (int cycle = 0; cycle < 20; ++cycle) {
    // Delete ~half, then refill to the same size.
    std::vector<Key> doomed;
    for (const Key& k : reference) {
      if (rng.NextBool(0.5)) doomed.push_back(k);
    }
    for (const Key& k : doomed) {
      ASSERT_TRUE(tree.Erase(k));
      reference.erase(k);
    }
    while (reference.size() < 300) {
      Key k{rng.NextBounded(1000), rng.NextBounded(4), 0};
      EXPECT_EQ(tree.Insert(k), reference.insert(k).second);
    }
    ASSERT_EQ(tree.size(), reference.size());
  }
  auto rit = reference.begin();
  for (auto it = tree.Begin(); !it.AtEnd(); ++it, ++rit) {
    ASSERT_EQ(*it, *rit);
  }
}

// ---- pool / free-list coverage --------------------------------------------

TEST(BPlusTree, PoolRecyclesNodesThroughFreeList) {
  // Growing then draining must push merged-away nodes onto the free list;
  // regrowing must consume them before the slab grows again.
  BPlusTree<Key> tree;
  for (uint64_t i = 0; i < 5000; ++i) tree.Insert({i, 0, 0});
  const size_t grown_pool = tree.pool_nodes();
  EXPECT_EQ(tree.live_nodes() + tree.free_nodes(), grown_pool);
  for (uint64_t i = 0; i < 5000; ++i) ASSERT_TRUE(tree.Erase({i, 0, 0}));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.live_nodes(), 1u);  // the root leaf
  EXPECT_EQ(tree.pool_nodes(), grown_pool);  // slab never shrinks...
  EXPECT_EQ(tree.free_nodes(), grown_pool - 1);
  for (uint64_t i = 0; i < 5000; ++i) tree.Insert({i, 1, 0});
  // ...and regrowth reuses the recycled slots instead of extending it.
  EXPECT_EQ(tree.pool_nodes(), grown_pool);
}

class BTreeChurnOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeChurnOracleTest, MatchesStdSetAcrossFreeListReuse) {
  // The arena-specific differential test: sustained churn cycles force
  // splits to consume free-listed node slots that merges produced, so a
  // stale-id or mislinked-recycled-node bug shows up as a divergence from
  // the std::set oracle in membership, full iteration, lower-bound probes
  // or ShardStarts coverage.
  Rng rng(GetParam());
  BPlusTree<Key> tree;
  std::set<Key> reference;
  size_t peak_pool = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    // Grow aggressively, then shrink aggressively (85% / 15% inserts).
    const bool growing = cycle % 2 == 0;
    for (int op = 0; op < 4000; ++op) {
      Key k{rng.NextBounded(40), rng.NextBounded(12), rng.NextBounded(40)};
      if (rng.NextBool(growing ? 0.85 : 0.15)) {
        ASSERT_EQ(tree.Insert(k), reference.insert(k).second);
      } else {
        ASSERT_EQ(tree.Erase(k), reference.erase(k) > 0);
      }
    }
    ASSERT_EQ(tree.size(), reference.size());
    ASSERT_EQ(tree.live_nodes() + tree.free_nodes(), tree.pool_nodes());
    peak_pool = std::max(peak_pool, tree.pool_nodes());
    // Full scan equals the sorted reference.
    auto rit = reference.begin();
    for (auto it = tree.Begin(); !it.AtEnd(); ++it, ++rit) {
      ASSERT_NE(rit, reference.end());
      ASSERT_EQ(*it, *rit);
    }
    ASSERT_EQ(rit, reference.end());
    // Random lower-bound probes agree.
    for (int probe = 0; probe < 100; ++probe) {
      Key k{rng.NextBounded(45), rng.NextBounded(13), rng.NextBounded(45)};
      auto it = tree.LowerBound(k);
      auto ref = reference.lower_bound(k);
      if (ref == reference.end()) {
        ASSERT_TRUE(it.AtEnd());
      } else {
        ASSERT_FALSE(it.AtEnd());
        ASSERT_EQ(*it, *ref);
      }
    }
    // ShardStarts covers the survivors of a random prefix exactly.
    const uint64_t p = rng.NextBounded(40);
    const auto within = [&](const Key& k) { return k[0] == p; };
    const std::vector<Key> starts = tree.ShardStarts({p, 0, 0}, 5, within);
    std::vector<Key> walked;
    for (size_t s = 0; s < starts.size(); ++s) {
      for (auto it = tree.LowerBound(starts[s]); !it.AtEnd(); ++it) {
        if (!within(*it)) break;
        if (s + 1 < starts.size() && !((*it) < starts[s + 1])) break;
        walked.push_back(*it);
      }
    }
    std::vector<Key> expected;
    for (auto ref = reference.lower_bound(Key{p, 0, 0});
         ref != reference.end() && (*ref)[0] == p; ++ref) {
      expected.push_back(*ref);
    }
    ASSERT_EQ(walked, expected);
  }
  // The shrink cycles must actually have recycled slots (otherwise this
  // test exercised nothing arena-specific).
  EXPECT_GT(peak_pool, tree.live_nodes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeChurnOracleTest,
                         ::testing::Values(7, 31, 2024));

// ---- packed bulk build ----------------------------------------------------

TEST(BPlusTree, BulkBuildMatchesIncrementalInsertion) {
  // Same key set, two construction paths: every read API must agree.
  std::vector<Key> keys;
  for (uint64_t i = 0; i < 10000; ++i) keys.push_back({i * 3, i % 17, i});
  std::sort(keys.begin(), keys.end());
  BPlusTree<Key> packed;
  packed.BulkBuild(keys);
  BPlusTree<Key> grown;
  for (const Key& k : keys) grown.Insert(k);
  ASSERT_EQ(packed.size(), grown.size());
  // Packed leaves: meaningfully fewer nodes than incremental growth.
  EXPECT_LT(packed.pool_nodes(), grown.pool_nodes());
  EXPECT_LE(packed.pool_nodes(), keys.size() / 64 + keys.size() / 1000 + 2);
  auto a = packed.Begin();
  auto b = grown.Begin();
  for (; !a.AtEnd(); ++a, ++b) {
    ASSERT_FALSE(b.AtEnd());
    ASSERT_EQ(*a, *b);
  }
  EXPECT_TRUE(b.AtEnd());
  Rng rng(3);
  for (int probe = 0; probe < 500; ++probe) {
    Key k{rng.NextBounded(31000), rng.NextBounded(18), rng.NextBounded(10001)};
    EXPECT_EQ(packed.Contains(k), grown.Contains(k));
    auto pa = packed.LowerBound(k);
    auto pb = grown.LowerBound(k);
    ASSERT_EQ(pa.AtEnd(), pb.AtEnd());
    if (!pa.AtEnd()) EXPECT_EQ(*pa, *pb);
  }
}

TEST(BPlusTree, BulkBuildEdgeSizes) {
  for (size_t n : {0u, 1u, 63u, 64u, 65u, 64u * 65u, 64u * 65u + 1u}) {
    std::vector<Key> keys;
    for (uint64_t i = 0; i < n; ++i) keys.push_back({i, 0, 0});
    BPlusTree<Key> tree;
    tree.BulkBuild(keys);
    EXPECT_EQ(tree.size(), n);
    size_t count = 0;
    uint64_t prev = 0;
    for (auto it = tree.Begin(); !it.AtEnd(); ++it, ++count) {
      if (count > 0) EXPECT_GT((*it)[0], prev);
      prev = (*it)[0];
    }
    EXPECT_EQ(count, n);
    if (n > 0) {
      EXPECT_TRUE(tree.Contains({0, 0, 0}));
      EXPECT_TRUE(tree.Contains({n - 1, 0, 0}));
      EXPECT_FALSE(tree.Contains({n, 0, 0}));
    }
  }
}

TEST(BPlusTree, BulkBuiltTreeSurvivesChurn) {
  // Mutating a packed tree (splits of full leaves, underflow of the
  // sparse tail) must keep oracle equivalence.
  std::vector<Key> keys;
  for (uint64_t i = 0; i < 5000; ++i) keys.push_back({i * 2, 0, 0});
  BPlusTree<Key> tree;
  tree.BulkBuild(keys);
  std::set<Key> reference(keys.begin(), keys.end());
  Rng rng(11);
  for (int op = 0; op < 20000; ++op) {
    Key k{rng.NextBounded(10000), 0, 0};
    if (rng.NextBool(0.5)) {
      ASSERT_EQ(tree.Insert(k), reference.insert(k).second);
    } else {
      ASSERT_EQ(tree.Erase(k), reference.erase(k) > 0);
    }
  }
  ASSERT_EQ(tree.size(), reference.size());
  auto rit = reference.begin();
  for (auto it = tree.Begin(); !it.AtEnd(); ++it, ++rit) {
    ASSERT_NE(rit, reference.end());
    ASSERT_EQ(*it, *rit);
  }
  EXPECT_EQ(rit, reference.end());
}

TEST(BPlusTree, SplitHeuristicPacksSequentialRuns) {
  // Ascending and descending runs must fill leaves nearly completely
  // instead of the 50% an even split leaves behind.
  for (bool reverse : {false, true}) {
    BPlusTree<Key> tree;
    const uint64_t n = 6400;
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t v = reverse ? n - 1 - i : i;
      tree.Insert({v, 0, 0});
    }
    // ~n/64 packed leaves plus inners; allow modest slack.
    EXPECT_LT(tree.pool_nodes(), n / 64 + n / 500 + 8) << reverse;
  }
}

TEST(BPlusTree, MemoryBytesTracksPool) {
  BPlusTree<Key> tree;
  const uint64_t empty_bytes = tree.MemoryBytes();
  EXPECT_GT(empty_bytes, 0u);
  for (uint64_t i = 0; i < 10000; ++i) tree.Insert({i, i, i});
  EXPECT_GT(tree.MemoryBytes(), empty_bytes);
  // ~64-key fan-out: 10k keys need a few hundred nodes, not thousands.
  EXPECT_LT(tree.pool_nodes(), 500u);
}

TEST(BPlusTree, ReserveDoesNotChangeSemantics) {
  BPlusTree<Key> reserved;
  reserved.Reserve(2000);
  BPlusTree<Key> plain;
  for (uint64_t i = 0; i < 2000; ++i) {
    const Key k{i * 7919 % 2000, i % 13, i};
    EXPECT_EQ(reserved.Insert(k), plain.Insert(k));
  }
  EXPECT_EQ(reserved.size(), plain.size());
  EXPECT_EQ(reserved.height(), plain.height());
  EXPECT_EQ(reserved.pool_nodes(), plain.pool_nodes());
  auto a = reserved.Begin();
  auto b = plain.Begin();
  for (; !a.AtEnd(); ++a, ++b) {
    ASSERT_FALSE(b.AtEnd());
    ASSERT_EQ(*a, *b);
  }
  EXPECT_TRUE(b.AtEnd());
}

TEST(BPlusTree, SequentialAndReverseInsertions) {
  for (bool reverse : {false, true}) {
    BPlusTree<Key> tree;
    const uint64_t n = 2000;
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t v = reverse ? n - 1 - i : i;
      tree.Insert({v, v % 7, v % 3});
    }
    EXPECT_EQ(tree.size(), n);
    uint64_t count = 0;
    for (auto it = tree.Begin(); !it.AtEnd(); ++it) ++count;
    EXPECT_EQ(count, n);
  }
}

TEST(BPlusTree, CopyOnWriteSnapshotsStayImmutable) {
  // A published root must keep serving the exact pre-batch contents while
  // the writer mutates through cloned paths, and the accounting must keep
  // retired-but-undrained nodes separate from both live and free.
  BPlusTree<Key> tree;
  for (uint64_t i = 0; i < 3000; ++i) tree.Insert({i, 0, 0});
  tree.SetCopyOnWrite(true);

  const auto snap = tree.root();
  const size_t live_before = tree.live_nodes();
  tree.BeginCowBatch();
  for (uint64_t i = 0; i < 200; ++i) tree.Insert({i, 5, 5});
  for (uint64_t i = 0; i < 200; ++i) ASSERT_TRUE(tree.Erase({i, 0, 0}));

  // The snapshot still sees exactly the old keys...
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(tree.ContainsAt(snap, {i, 0, 0}));
    EXPECT_FALSE(tree.ContainsAt(snap, {i, 5, 5}));
  }
  size_t snap_count = 0;
  for (auto it = tree.BeginAt(snap); !it.AtEnd(); ++it) ++snap_count;
  EXPECT_EQ(snap_count, 3000u);
  // ...while the live root sees the new state.
  EXPECT_TRUE(tree.Contains({0, 5, 5}));
  EXPECT_FALSE(tree.Contains({0, 0, 0}));
  EXPECT_EQ(tree.size(), 3000u);

  // Superseded path copies are pending, not free and not live.
  EXPECT_GT(tree.pending_nodes(), 0u);
  EXPECT_EQ(tree.live_nodes() + tree.free_nodes() + tree.pending_nodes(),
            tree.pool_nodes());

  // After the drain point the pending slots return to the free lists.
  const size_t pending = tree.pending_nodes();
  EXPECT_EQ(tree.ReclaimRetired(), pending);
  EXPECT_EQ(tree.pending_nodes(), 0u);
  EXPECT_EQ(tree.live_nodes() + tree.free_nodes(), tree.pool_nodes());
  EXPECT_LE(tree.live_nodes(), live_before + 8);  // one path delta, no copy
}

TEST(BPlusTree, CopyOnWriteChurnReturnsToSteadyState) {
  // Sustained batch churn with reclamation after every "drain" must not
  // grow the pool without bound: each batch's clones are fed by the slots
  // the previous batch retired.
  Rng rng(7);
  BPlusTree<Key> tree;
  std::set<Key> reference;
  for (uint64_t i = 0; i < 4000; ++i) {
    Key k{rng.NextBounded(50), rng.NextBounded(10), rng.NextBounded(50)};
    tree.Insert(k);
    reference.insert(k);
  }
  tree.SetCopyOnWrite(true);
  const size_t settled_pool_hint = tree.pool_nodes();
  size_t peak_pool = 0;
  for (int batch = 0; batch < 40; ++batch) {
    tree.BeginCowBatch();
    for (int op = 0; op < 100; ++op) {
      Key k{rng.NextBounded(50), rng.NextBounded(10), rng.NextBounded(50)};
      if (rng.NextBool(0.5)) {
        ASSERT_EQ(tree.Insert(k), reference.insert(k).second);
      } else {
        ASSERT_EQ(tree.Erase(k), reference.erase(k) > 0);
      }
    }
    ASSERT_EQ(tree.live_nodes() + tree.free_nodes() + tree.pending_nodes(),
              tree.pool_nodes());
    tree.ReclaimRetired();  // the post-WaitUntilDrained step
    ASSERT_EQ(tree.pending_nodes(), 0u);
    peak_pool = std::max(peak_pool, tree.pool_nodes());
  }
  // Steady state: the pool stays within one batch's path-copy overhead of
  // the offline pool for the same contents (batch of 100 ops, height 3).
  EXPECT_LT(peak_pool, settled_pool_hint + 400);
  // And the tree still matches the oracle exactly.
  ASSERT_EQ(tree.size(), reference.size());
  auto rit = reference.begin();
  for (auto it = tree.Begin(); !it.AtEnd(); ++it, ++rit) {
    ASSERT_EQ(*it, *rit);
  }
}

}  // namespace
}  // namespace dskg::relstore
