#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dskg {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  const uint64_t first = a.NextU64();
  a.NextU64();
  a.Reseed(7);
  EXPECT_EQ(a.NextU64(), first);
}

class RngBoundsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngBoundsTest, NextBoundedStaysInRange) {
  Rng rng(GetParam());
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST_P(RngBoundsTest, NextInRangeInclusive) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST_P(RngBoundsTest, NextDoubleInUnitInterval) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundsTest,
                         ::testing::Values(0, 1, 42, 0xdeadbeef,
                                           ~0ULL));

TEST(Rng, BoundedCoversAllResidues) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BernoulliRespectsProbabilityRoughly) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  const double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleHandlesEmptyAndSingle) {
  Rng rng(12);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

TEST(Zipf, RankZeroIsMostProbable) {
  Rng rng(21);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, ZeroSkewIsRoughlyUniform) {
  Rng rng(22);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(Zipf, SamplesWithinRange) {
  Rng rng(23);
  ZipfSampler zipf(5, 2.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 5u);
  }
}

TEST(Zipf, SingleRankAlwaysZero) {
  Rng rng(24);
  ZipfSampler zipf(1, 1.5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace dskg
