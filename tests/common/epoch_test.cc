// EpochManager tests: pin/advance/drain semantics plus a concurrent
// stress that mimics the OnlineStore protocol (readers resolving an
// atomic index under pins, a writer mutating only drained state). The
// stress test is the one the ThreadSanitizer CI job leans on.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/epoch.h"

namespace dskg {
namespace {

TEST(EpochManager, PinPublishesCurrentEpoch) {
  EpochManager epochs;
  EXPECT_EQ(epochs.current_epoch(), 1u);
  EXPECT_EQ(epochs.ActivePins(), 0u);
  {
    EpochManager::Pin pin = epochs.Enter();
    EXPECT_TRUE(pin.pinned());
    EXPECT_EQ(pin.epoch(), 1u);
    EXPECT_EQ(epochs.ActivePins(), 1u);
  }
  EXPECT_EQ(epochs.ActivePins(), 0u);
}

TEST(EpochManager, AdvanceReturnsRetiredEpoch) {
  EpochManager epochs;
  EXPECT_EQ(epochs.Advance(), 1u);
  EXPECT_EQ(epochs.current_epoch(), 2u);
  EXPECT_EQ(epochs.Advance(), 2u);
}

TEST(EpochManager, DrainReturnsImmediatelyWithoutReaders) {
  EpochManager epochs;
  const uint64_t retired = epochs.Advance();
  epochs.WaitUntilDrained(retired);  // must not block
}

TEST(EpochManager, DrainIgnoresNewerPins) {
  EpochManager epochs;
  const uint64_t retired = epochs.Advance();
  // This pin observes the *advanced* epoch; the writer draining `retired`
  // must not wait for it (it can only be reading post-publish state).
  EpochManager::Pin pin = epochs.Enter();
  EXPECT_GT(pin.epoch(), retired);
  epochs.WaitUntilDrained(retired);  // must not block
}

TEST(EpochManager, DrainWaitsForOldPin) {
  EpochManager epochs;
  EpochManager::Pin pin = epochs.Enter();
  const uint64_t retired = epochs.Advance();
  std::atomic<bool> drained{false};
  std::thread writer([&] {
    epochs.WaitUntilDrained(retired);
    drained.store(true);
  });
  // The writer must be stuck on our pin. (A sleep can only make this
  // test pass wrongly if drain *does* wait, so it is not flaky.)
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(drained.load());
  { EpochManager::Pin released = std::move(pin); }  // release
  writer.join();
  EXPECT_TRUE(drained.load());
}

TEST(EpochManager, MovedFromPinDoesNotDoubleRelease) {
  EpochManager epochs;
  EpochManager::Pin a = epochs.Enter();
  EpochManager::Pin b = std::move(a);
  EXPECT_FALSE(a.pinned());  // NOLINT(bugprone-use-after-move): asserting it
  EXPECT_TRUE(b.pinned());
  EXPECT_EQ(epochs.ActivePins(), 1u);
}

TEST(EpochManager, ConcurrentReadersNeverObserveRetiredState) {
  // The left-right skeleton: two value slots, an atomic active index.
  // The writer bumps the passive slot, publishes, drains, then verifies
  // the retired slot is safe to mutate. Readers check they only ever see
  // a fully-published value. Under TSan this validates the protocol's
  // happens-before edges end to end.
  EpochManager epochs;
  std::atomic<size_t> active{0};
  // Both slots start published with value 0; writer increments by 1 per
  // publish, always writing value publish_count into the passive slot.
  uint64_t values[2] = {0, 0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn_reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochManager::Pin pin = epochs.Enter();
        const size_t idx = active.load(std::memory_order_seq_cst);
        // Read the pinned slot twice; a writer mutating it while we are
        // pinned would tear the pair (and TSan would flag the race).
        const uint64_t v1 = values[idx];
        std::this_thread::yield();
        const uint64_t v2 = values[idx];
        if (v1 != v2) torn_reads.fetch_add(1);
      }
    });
  }

  for (uint64_t publish = 1; publish <= 200; ++publish) {
    const size_t passive = 1 - active.load(std::memory_order_seq_cst);
    values[passive] = publish;  // mutate retired state (drained below)
    active.store(passive, std::memory_order_seq_cst);
    epochs.WaitUntilDrained(epochs.Advance());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn_reads.load(), 0u);
}

}  // namespace
}  // namespace dskg
