#include "common/cost.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace dskg {
namespace {

TEST(CostModel, DefaultWeightsArePositive) {
  const CostModel& m = CostModel::Default();
  for (int i = 0; i < kNumOps; ++i) {
    EXPECT_GT(m.weight(static_cast<Op>(i)), 0.0)
        << OpName(static_cast<Op>(i));
  }
}

TEST(CostModel, RelationalTupleWorkCostsMoreThanGraphEdgeWork) {
  // The Table 1 calibration invariant: disk-based row-store tuple access
  // is an order of magnitude above index-free adjacency pointer chasing.
  const CostModel& m = CostModel::Default();
  EXPECT_GT(m.weight(Op::kSeqScanTuple), 10 * m.weight(Op::kAdjExpandEdge));
  EXPECT_GT(m.weight(Op::kMaterializeTuple),
            10 * m.weight(Op::kAdjExpandEdge));
  // Import is the most expensive per-triple op: the graph store is costly
  // to (re)load, which is why it is an accelerator and not primary store.
  EXPECT_GT(m.weight(Op::kImportTriple), m.weight(Op::kInsertTuple));
}

TEST(CostModel, SetWeightOverrides) {
  CostModel m;
  m.set_weight(Op::kSeqScanTuple, 3.5);
  EXPECT_DOUBLE_EQ(m.weight(Op::kSeqScanTuple), 3.5);
}

TEST(OpNames, AllOpsHaveDistinctNames) {
  std::set<std::string> names;
  for (int i = 0; i < kNumOps; ++i) {
    names.insert(OpName(static_cast<Op>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumOps));
}

TEST(ResourceClasses, ScanIsIoTraversalIsCpu) {
  EXPECT_EQ(OpResourceClass(Op::kSeqScanTuple), ResourceClass::kIo);
  EXPECT_EQ(OpResourceClass(Op::kIndexProbe), ResourceClass::kIo);
  EXPECT_EQ(OpResourceClass(Op::kImportTriple), ResourceClass::kIo);
  EXPECT_EQ(OpResourceClass(Op::kAdjExpandEdge), ResourceClass::kCpu);
  EXPECT_EQ(OpResourceClass(Op::kNodeLookup), ResourceClass::kCpu);
  EXPECT_EQ(OpResourceClass(Op::kHashProbeTuple), ResourceClass::kCpu);
}

TEST(CostMeter, AccumulatesCountsAndTime) {
  CostMeter meter;
  meter.Add(Op::kSeqScanTuple, 10);
  meter.Add(Op::kAdjExpandEdge, 100);
  EXPECT_EQ(meter.count(Op::kSeqScanTuple), 10u);
  EXPECT_EQ(meter.count(Op::kAdjExpandEdge), 100u);
  const double expected =
      10 * CostModel::Default().weight(Op::kSeqScanTuple) +
      100 * CostModel::Default().weight(Op::kAdjExpandEdge);
  EXPECT_DOUBLE_EQ(meter.sim_micros(), expected);
}

TEST(CostMeter, SplitsIoAndCpu) {
  CostMeter meter;
  meter.Add(Op::kSeqScanTuple, 4);     // IO
  meter.Add(Op::kHashProbeTuple, 8);   // CPU
  EXPECT_GT(meter.io_micros(), 0.0);
  EXPECT_GT(meter.cpu_micros(), 0.0);
  EXPECT_DOUBLE_EQ(meter.sim_micros(),
                   meter.io_micros() + meter.cpu_micros());
}

TEST(CostMeter, BudgetTripsOnlyWhenExceeded) {
  CostMeter meter;
  meter.set_budget_micros(1.0);
  EXPECT_FALSE(meter.ExceededBudget());
  meter.Add(Op::kSeqScanTuple, 1);  // 0.5us
  EXPECT_FALSE(meter.ExceededBudget());
  meter.Add(Op::kSeqScanTuple, 10);
  EXPECT_TRUE(meter.ExceededBudget());
}

TEST(CostMeter, ZeroBudgetMeansUnlimited) {
  CostMeter meter;
  meter.Add(Op::kImportTriple, 1000000);
  EXPECT_FALSE(meter.ExceededBudget());
}

TEST(CostMeter, MergeFoldsCountsAndTime) {
  CostMeter a, b;
  a.Add(Op::kNodeLookup, 3);
  b.Add(Op::kNodeLookup, 4);
  b.Add(Op::kSeqScanTuple, 5);
  a.Merge(b);
  EXPECT_EQ(a.count(Op::kNodeLookup), 7u);
  EXPECT_EQ(a.count(Op::kSeqScanTuple), 5u);
  EXPECT_GT(a.io_micros(), 0.0);
}

TEST(CostMeter, ResetClearsEverythingButBudget) {
  CostMeter meter;
  meter.set_budget_micros(5.0);
  meter.Add(Op::kSeqScanTuple, 100);
  meter.Reset();
  EXPECT_EQ(meter.count(Op::kSeqScanTuple), 0u);
  EXPECT_DOUBLE_EQ(meter.sim_micros(), 0.0);
  EXPECT_DOUBLE_EQ(meter.budget_micros(), 5.0);
}

TEST(CostMeter, DebugStringListsNonZeroOps) {
  CostMeter meter;
  meter.Add(Op::kViewLookup, 2);
  const std::string s = meter.DebugString();
  EXPECT_NE(s.find("view_lookup"), std::string::npos);
  EXPECT_EQ(s.find("seq_scan_tuple"), std::string::npos);
}

TEST(ResourceThrottle, NeutralByDefault) {
  ResourceThrottle t;
  EXPECT_TRUE(t.IsNeutral());
  EXPECT_DOUBLE_EQ(t.Factor(ResourceClass::kIo), 1.0);
  EXPECT_DOUBLE_EQ(t.Factor(ResourceClass::kCpu), 1.0);
}

class ThrottleShapeTest : public ::testing::TestWithParam<double> {};

TEST_P(ThrottleShapeTest, LessSpareMeansMoreSlowdown) {
  const double f = GetParam();
  ResourceThrottle tight{f, f};
  ResourceThrottle loose{f * 2, f * 2};
  EXPECT_GT(tight.Factor(ResourceClass::kCpu),
            loose.Factor(ResourceClass::kCpu));
  EXPECT_GE(tight.Factor(ResourceClass::kIo),
            loose.Factor(ResourceClass::kIo));
}

INSTANTIATE_TEST_SUITE_P(SpareFractions, ThrottleShapeTest,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4));

TEST(ResourceThrottle, Table6Calibration) {
  // Paper Table 6: CPU-bound slowdowns ~5% at 40% spare and ~18% at 20%
  // spare; IO slowdowns well under 1%.
  ResourceThrottle cpu40{1.0, 0.40};
  ResourceThrottle cpu20{1.0, 0.20};
  EXPECT_NEAR(cpu40.Factor(ResourceClass::kCpu), 1.05, 0.03);
  EXPECT_NEAR(cpu20.Factor(ResourceClass::kCpu), 1.18, 0.03);
  ResourceThrottle io40{0.40, 1.0};
  ResourceThrottle io20{0.20, 1.0};
  EXPECT_LT(io40.Factor(ResourceClass::kIo), 1.01);
  EXPECT_LT(io20.Factor(ResourceClass::kIo), 1.01);
}

TEST(ResourceThrottle, ThrottledMeterChargesMore) {
  CostMeter plain;
  CostMeter throttled(&CostModel::Default(),
                      ResourceThrottle{1.0, 0.2});
  plain.Add(Op::kAdjExpandEdge, 1000);
  throttled.Add(Op::kAdjExpandEdge, 1000);
  EXPECT_GT(throttled.sim_micros(), plain.sim_micros());
}

}  // namespace
}  // namespace dskg
