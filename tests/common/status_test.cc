#include "common/status.h"

#include <gtest/gtest.h>

namespace dskg {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryConstructorsSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::CapacityExceeded("d"), StatusCode::kCapacityExceeded,
       "CapacityExceeded"},
      {Status::Cancelled("e"), StatusCode::kCancelled, "Cancelled"},
      {Status::FailedPrecondition("f"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::ParseError("g"), StatusCode::kParseError, "ParseError"},
      {Status::IoError("h"), StatusCode::kIoError, "IoError"},
      {Status::Internal("i"), StatusCode::kInternal, "Internal"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(std::string(StatusCodeToString(c.code)), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(Status, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsCancelled());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
}

TEST(Status, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(b.code(), StatusCode::kInternal);
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsStatus) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "hello");
}

Result<int> Double(Result<int> in) {
  DSKG_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnPropagatesValue) {
  auto r = Double(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, AssignOrReturnPropagatesError) {
  auto r = Double(Status::IoError("disk"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError());
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int v) {
  DSKG_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(Status, ReturnNotOkMacro) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

}  // namespace
}  // namespace dskg
