#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace dskg {
namespace {

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, CompletesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return std::string("hello"); });
  EXPECT_EQ(f.get(), "hello");
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor runs here: queued tasks must all execute before join.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(97);
  pool.ParallelFor(hits.size(), [&hits](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRethrowsSmallestIndexException) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(16, [](size_t i) {
      if (i % 2 == 1) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Smallest throwing index, independent of scheduling.
    EXPECT_STREQ(e.what(), "1");
  }
}

TEST(ThreadPoolTest, ParallelForChunkedCoversEveryIndexOnce) {
  ThreadPool pool(4);
  // 103 indices with grain 8: 12 full chunks and a remainder of 7.
  std::vector<std::atomic<int>> hits(103);
  pool.ParallelForChunked(hits.size(), 8, [&hits](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, hits.size());
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForChunkedHandlesDegenerateShapes) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  const auto sum_range = [&total](size_t begin, size_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  };
  pool.ParallelForChunked(0, 8, sum_range);  // empty range: no calls
  EXPECT_EQ(total.load(), 0u);
  pool.ParallelForChunked(5, 0, sum_range);  // zero grain clamps to 1
  EXPECT_EQ(total.load(), 5u);
  total = 0;
  pool.ParallelForChunked(3, 100, sum_range);  // grain larger than n
  EXPECT_EQ(total.load(), 3u);
}

TEST(ThreadPoolTest, ParallelForChunkedRethrowsSmallestChunkException) {
  ThreadPool pool(4);
  try {
    pool.ParallelForChunked(64, 4, [](size_t begin, size_t) {
      if (begin >= 8) throw std::runtime_error(std::to_string(begin));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "8");  // smallest throwing chunk wins
  }
}

TEST(ThreadPoolTest, NestedParallelForChunkedDoesNotDeadlock) {
  ThreadPool pool(1);  // one worker: the outer task must help execute
  std::atomic<int> counter{0};
  auto f = pool.Submit([&] {
    pool.ParallelForChunked(20, 3, [&](size_t begin, size_t end) {
      pool.ParallelForChunked(end - begin, 1, [&](size_t b, size_t e) {
        counter.fetch_add(static_cast<int>(e - b),
                          std::memory_order_relaxed);
      });
    });
  });
  f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(1);  // one worker: the outer task must help execute
  std::atomic<int> counter{0};
  auto f = pool.Submit([&] {
    pool.ParallelFor(8, [&counter](size_t) {
      counter.fetch_add(1, std::memory_order_relaxed);
    });
  });
  f.get();
  EXPECT_EQ(counter.load(), 8);
}

}  // namespace
}  // namespace dskg
