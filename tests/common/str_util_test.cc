#include "common/str_util.h"

#include <gtest/gtest.h>

namespace dskg {
namespace {

TEST(SplitString, BasicSplit) {
  EXPECT_EQ(SplitString("a b c", " "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitString, MultipleDelimitersAndEmptyPieces) {
  EXPECT_EQ(SplitString("a\t b  c ", " \t"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitString("", " ").empty());
  EXPECT_TRUE(SplitString("   ", " ").empty());
}

TEST(TrimWhitespace, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hi  "), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace("\t\n x \r "), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(JoinStrings, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({"a"}, ", "), "a");
  EXPECT_EQ(JoinStrings({}, ", "), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("y:wasBornIn", "y:"));
  EXPECT_FALSE(StartsWith("y", "y:"));
  EXPECT_TRUE(EndsWith("bench.cc", ".cc"));
  EXPECT_FALSE(EndsWith("cc", ".cc"));
}

TEST(AsciiToLower, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiToLower("abc123"), "abc123");
}

TEST(HumanBytes, PicksUnit) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.00 MiB");
}

TEST(FormatDouble, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

}  // namespace
}  // namespace dskg
