// Telemetry tests: log-bucket math invariants, quantile upper bounds
// against a sorted-vector oracle, concurrent counter/histogram recording
// (this target runs under TSan in CI), export formats, and the
// end-to-end guarantee that enabling telemetry cannot move a simulated
// charge or a result row.

#include "common/telemetry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/dual_store.h"
#include "core/session.h"
#include "test_util.h"

namespace dskg::telemetry {
namespace {

constexpr const char* kFlagship =
    "SELECT ?p WHERE { ?p bornIn ?city . "
    "?p advisor ?a . ?a bornIn ?city . }";

// ---- bucket math ------------------------------------------------------------

TEST(HistogramBuckets, SmallValuesAreExact) {
  for (uint64_t u = 0; u < (1ull << Histogram::kSubBits); ++u) {
    EXPECT_EQ(Histogram::BucketOf(u), static_cast<int>(u));
    EXPECT_EQ(Histogram::BucketLower(static_cast<int>(u)), u);
    EXPECT_EQ(Histogram::BucketUpper(static_cast<int>(u)), u);
  }
}

TEST(HistogramBuckets, LowerAndUpperBracketEveryValue) {
  std::vector<uint64_t> probes;
  for (uint64_t u = 0; u < 4096; ++u) probes.push_back(u);
  for (int shift = 12; shift < 64; ++shift) {
    const uint64_t base = 1ull << shift;
    probes.push_back(base - 1);
    probes.push_back(base);
    probes.push_back(base + 1);
    probes.push_back(base + (base >> 1));
  }
  probes.push_back(~static_cast<uint64_t>(0));
  for (uint64_t u : probes) {
    const int idx = Histogram::BucketOf(u);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    EXPECT_LE(Histogram::BucketLower(idx), u) << "u=" << u;
    EXPECT_GE(Histogram::BucketUpper(idx), u) << "u=" << u;
  }
}

TEST(HistogramBuckets, BoundariesAreMonotoneAndContiguous) {
  for (int i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketUpper(i) + 1, Histogram::BucketLower(i + 1));
    EXPECT_LT(Histogram::BucketLower(i), Histogram::BucketLower(i + 1));
  }
  EXPECT_EQ(Histogram::BucketUpper(Histogram::kNumBuckets - 1),
            ~static_cast<uint64_t>(0));
}

TEST(HistogramBuckets, RelativeWidthStaysUnderQuarter) {
  // For buckets past the exact range, width / lower <= 2^-kSubBits = 25%.
  for (int i = (1 << Histogram::kSubBits); i + 1 < Histogram::kNumBuckets;
       ++i) {
    const double lower = static_cast<double>(Histogram::BucketLower(i));
    const double width =
        static_cast<double>(Histogram::BucketUpper(i) - Histogram::BucketLower(i) + 1);
    EXPECT_LE(width / lower, 0.25 + 1e-12) << "bucket " << i;
  }
}

// ---- quantiles vs a sorted-vector oracle ------------------------------------

// The histogram quantile is an upper bound of the true rank-th value and
// must land in the same bucket (<= 25% relative error past the exact
// range).
void CheckQuantiles(const Histogram& h, std::vector<uint64_t> values) {
  std::sort(values.begin(), values.end());
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(q * static_cast<double>(values.size()))));
    const uint64_t oracle = values[rank - 1];
    const double ret = h.Quantile(q);
    EXPECT_GE(ret, static_cast<double>(oracle)) << "q=" << q;
    EXPECT_EQ(Histogram::BucketOf(static_cast<uint64_t>(ret)),
              Histogram::BucketOf(oracle))
        << "q=" << q << " oracle=" << oracle << " got=" << ret;
  }
}

TEST(HistogramQuantile, MatchesOracleOnUniformValues) {
  Histogram h("t");
  std::vector<uint64_t> values;
  dskg::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t u = rng.NextU64() % 100000;
    values.push_back(u);
    h.Record(static_cast<double>(u));
  }
  CheckQuantiles(h, std::move(values));
}

TEST(HistogramQuantile, MatchesOracleOnLogNormalValues) {
  // Latency-shaped distribution: heavy tail across many octaves.
  Histogram h("t");
  std::vector<uint64_t> values;
  dskg::Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    double v = 1.0;
    for (int k = 0; k < 12; ++k) {
      if (rng.NextBool(0.5)) v *= 2.0;
    }
    v *= 1.0 + 0.9 * rng.NextDouble();
    const uint64_t u = static_cast<uint64_t>(v + 0.5);
    values.push_back(u);
    h.Record(v);
  }
  CheckQuantiles(h, std::move(values));
}

TEST(HistogramQuantile, EmptyAndSingleton) {
  Histogram h("t");
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max_value(), 0u);
  h.Record(42.0);
  EXPECT_EQ(h.Quantile(0.0), 42.0);
  EXPECT_EQ(h.Quantile(0.5), 42.0);
  EXPECT_EQ(h.Quantile(1.0), 42.0);
  EXPECT_EQ(h.min_value(), 42u);
  EXPECT_EQ(h.max_value(), 42u);
}

TEST(HistogramQuantile, ClampsToObservedMax) {
  Histogram h("t");
  for (int i = 0; i < 100; ++i) h.Record(1000.0);
  // 1000 sits strictly inside its bucket; the quantile must clamp to the
  // observed max instead of reporting the bucket's upper edge.
  EXPECT_EQ(h.Quantile(0.99), 1000.0);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram h("t");
  h.Record(-5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min_value(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(Histogram, SummarizeAggregates) {
  Histogram h("t");
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  const Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_GE(s.p50, 50.0);
  EXPECT_GE(s.p95, 95.0);
  EXPECT_GE(s.p99, 99.0);
  EXPECT_LE(s.p99, 100.0);
}

// ---- concurrency (exercised under TSan in CI) -------------------------------

TEST(Counter, ConcurrentAddsAreLossless) {
  Counter c("t");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(Counter, CellsArePrivateButFoldIntoTotal) {
  Counter c("t");
  constexpr int kThreads = 4;
  std::vector<Counter::Cell*> cells(kThreads);
  for (int t = 0; t < kThreads; ++t) cells[t] = c.NewCell();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, cell = cells[t], t] {
      for (int i = 0; i <= t; ++i) cell->Add(10);
      c.Add(1);  // stripe write racing the cell writes
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(cells[t]->value(), static_cast<uint64_t>(t + 1) * 10);
  }
  // Total = 10+20+30+40 cell increments + 4 stripe increments.
  EXPECT_EQ(c.value(), 104u);
}

TEST(Histogram, ConcurrentRecordsAreLossless) {
  Histogram h("t");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      dskg::Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>(rng.NextU64() % 1000000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t expect = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(h.count(), expect);
  uint64_t buckets[Histogram::kNumBuckets];
  h.MergedBuckets(buckets);
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  EXPECT_EQ(total, expect);
  EXPECT_LE(h.min_value(), h.max_value());
}

TEST(MetricsRegistry, ConcurrentGetOrCreateReturnsStablePointers) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter* c = reg.counter("shared.counter");
      c->Add();
      seen[t] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->value(), static_cast<uint64_t>(kThreads));
}

TEST(TraceSink, ConcurrentRecordsKeepRingBounded) {
  TraceSink sink;
  sink.set_capacity(16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.Record("span", 1.0, 2.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(sink.total(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(sink.Snapshot().size(), 16u);
  sink.set_capacity(0);
  EXPECT_FALSE(sink.enabled());
}

// ---- gauges, trace sink, slow-query log -------------------------------------

TEST(Gauge, SetAddValue) {
  Gauge g("t");
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.Add(1.5);
  EXPECT_EQ(g.value(), 5.0);
  g.Reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(TraceSink, DisabledByDefaultAndEvictsOldest) {
  TraceSink sink;
  EXPECT_FALSE(sink.enabled());
  sink.Record("ignored", 0.0, 1.0);
  EXPECT_EQ(sink.total(), 0u);
  sink.set_capacity(2);
  sink.Record("a", 0.0, 1.0);
  sink.Record("b", 1.0, 2.0);
  sink.Record("c", 2.0, 3.0);
  const std::vector<TraceSink::Span> spans = sink.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "b");
  EXPECT_EQ(spans[1].name, "c");
  EXPECT_LT(spans[0].seq, spans[1].seq);
  EXPECT_EQ(sink.total(), 3u);
}

TEST(SlowQueryLog, RecordsOnlyAboveThresholdAndTruncates) {
  SlowQueryLog log;
  EXPECT_FALSE(log.enabled());
  log.MaybeRecord("fast", "relational_only", 100.0);
  EXPECT_EQ(log.total(), 0u);  // disabled: nothing recorded
  log.set_threshold_ms(10.0);
  log.MaybeRecord("fast", "relational_only", 9.9);
  EXPECT_EQ(log.total(), 0u);
  const std::string long_text(2 * SlowQueryLog::kMaxText, 'q');
  log.MaybeRecord(long_text, "dual_store", 12.5);
  ASSERT_EQ(log.total(), 1u);
  const std::vector<SlowQueryLog::Entry> entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].wall_ms, 12.5);
  EXPECT_EQ(entries[0].route, "dual_store");
  EXPECT_EQ(entries[0].text.size(), SlowQueryLog::kMaxText);
}

// ---- registry + export ------------------------------------------------------

TEST(MetricsRegistry, DumpJsonIsWellFormedAndDeterministic) {
  MetricsRegistry reg;
  reg.counter("b.two")->Add(2);
  reg.counter("a.one")->Add(1);
  reg.gauge("g.depth")->Set(4.5);
  Histogram* h = reg.histogram("h.lat_us");
  for (int i = 0; i < 10; ++i) h->Record(100.0 * (i + 1));
  reg.traces().set_capacity(4);
  reg.traces().Record("span.x", 1.0, 2.0);
  reg.slow_queries().set_threshold_ms(1.0);
  reg.slow_queries().MaybeRecord("SELECT \"quoted\"", "graph_only", 5.0);

  const std::string json = reg.DumpJson();
  EXPECT_EQ(json, reg.DumpJson());  // deterministic for fixed state
  // Sorted counter order and structural markers.
  EXPECT_LT(json.find("\"a.one\""), json.find("\"b.two\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"h.lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos);
  EXPECT_NE(json.find("\"slow_queries\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);  // escaping
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"span.x\""), std::string::npos);
}

TEST(MetricsRegistry, DumpTextIsPrometheusShaped) {
  MetricsRegistry reg;
  reg.counter("session.prepares")->Add(3);
  Histogram* h = reg.histogram("query.wall_us.dual_store");
  h->Record(10.0);
  h->Record(1000.0);
  const std::string text = reg.DumpText();
  EXPECT_NE(text.find("session_prepares 3"), std::string::npos);
  EXPECT_NE(text.find("query_wall_us_dual_store_bucket{le="),
            std::string::npos);
  EXPECT_NE(text.find("query_wall_us_dual_store_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
}

TEST(MetricsRegistry, SnapshotValuesFlattensMetrics) {
  MetricsRegistry reg;
  reg.counter("c")->Add(7);
  reg.gauge("g")->Set(2.5);
  Histogram* h = reg.histogram("h");
  h->Record(5.0);
  h->Record(15.0);
  const std::map<std::string, double> v = reg.SnapshotValues();
  EXPECT_EQ(v.at("c"), 7.0);
  EXPECT_EQ(v.at("g"), 2.5);
  EXPECT_EQ(v.at("h.count"), 2.0);
  EXPECT_EQ(v.at("h.sum"), 20.0);
  EXPECT_EQ(v.at("h.max"), 15.0);
  EXPECT_GT(v.at("h.p99"), 0.0);
}

TEST(MetricsRegistry, ResetZeroesEverything) {
  MetricsRegistry reg;
  reg.counter("c")->Add(5);
  reg.gauge("g")->Set(1.0);
  reg.histogram("h")->Record(9.0);
  reg.traces().set_capacity(4);
  reg.traces().Record("s", 0.0, 1.0);
  reg.Reset();
  EXPECT_EQ(reg.counter("c")->value(), 0u);
  EXPECT_EQ(reg.gauge("g")->value(), 0.0);
  EXPECT_EQ(reg.histogram("h")->count(), 0u);
  EXPECT_TRUE(reg.traces().Snapshot().empty());
}

TEST(TraceScope, RecordsWhenEnabledInertWhenDisabled) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("h");
  reg.traces().set_capacity(4);
  { TraceScope span(reg, h, "scope.a"); }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_EQ(reg.traces().total(), 1u);
  reg.set_enabled(false);
  { TraceScope span(reg, h, "scope.b"); }
  EXPECT_EQ(h->count(), 1u);  // inert: nothing recorded
  EXPECT_EQ(reg.traces().total(), 1u);
}

// ---- end-to-end: telemetry cannot move results or simulated charges ---------

TEST(Equivalence, FlagshipIsBitIdenticalEnabledVsDisabled) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const bool was_enabled = reg.enabled();

  auto run_once = [] {
    rdf::Dataset ds = testing::SmallPeopleGraph();
    core::DualStore store(&ds, {});
    core::Session session(&store);
    auto exec = session.Execute(kFlagship);
    EXPECT_TRUE(exec.ok()) << exec.status();
    return std::move(*exec);
  };

  reg.set_enabled(true);
  const core::QueryExecution on = run_once();
  reg.set_enabled(false);
  const core::QueryExecution off = run_once();
  reg.set_enabled(was_enabled);

  EXPECT_EQ(on.route, off.route);
  EXPECT_TRUE(sparql::BindingTable::SameRows(on.result, off.result));
  // Simulated charges are bit-identical, not merely close.
  EXPECT_EQ(on.rel_micros, off.rel_micros);
  EXPECT_EQ(on.graph_micros, off.graph_micros);
  EXPECT_EQ(on.migrate_micros, off.migrate_micros);
  EXPECT_EQ(on.graph_io_micros, off.graph_io_micros);
  EXPECT_EQ(on.graph_cpu_micros, off.graph_cpu_micros);
  EXPECT_EQ(on.total_micros(), off.total_micros());
}

TEST(Equivalence, SessionStatsKeepCountingWhileDisabled) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(false);

  rdf::Dataset ds = testing::SmallPeopleGraph();
  core::DualStore store(&ds, {});
  core::Session session(&store);
  auto exec = session.Execute(kFlagship);
  ASSERT_TRUE(exec.ok()) << exec.status();
  const core::Session::Stats stats = session.stats();
  EXPECT_EQ(stats.prepares, 1u);
  EXPECT_EQ(stats.executions, 1u);

  reg.set_enabled(was_enabled);
}

}  // namespace
}  // namespace dskg::telemetry
