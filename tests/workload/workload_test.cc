// Workload construction tests: generators' macro statistics, template
// instantiation/mutations, ordered vs random versions, batch splitting.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/identifier.h"
#include "sparql/parser.h"
#include "workload/generators.h"
#include "workload/templates.h"
#include "workload/update_stream.h"
#include "workload/workload.h"

namespace dskg::workload {
namespace {

TEST(Generators, YagoMatchesPaperPredicateCount) {
  YagoConfig cfg;
  cfg.target_triples = 30000;
  rdf::Dataset ds = GenerateYago(cfg);
  EXPECT_EQ(ds.num_predicates(), 39u);  // Table 3: #-P = 39
  EXPECT_NEAR(static_cast<double>(ds.num_triples()), 30000.0, 30000.0 * 0.25);
}

TEST(Generators, WatDivMatchesPaperPredicateCount) {
  WatDivConfig cfg;
  cfg.target_triples = 30000;
  rdf::Dataset ds = GenerateWatDiv(cfg);
  EXPECT_EQ(ds.num_predicates(), 86u);  // Table 3: #-P = 86
}

TEST(Generators, Bio2RdfMatchesPaperPredicateCount) {
  Bio2RdfConfig cfg;
  cfg.target_triples = 40000;
  rdf::Dataset ds = GenerateBio2Rdf(cfg);
  EXPECT_EQ(ds.num_predicates(), 161u);  // Table 3: #-P = 161
}

TEST(Generators, DeterministicForEqualConfig) {
  YagoConfig cfg;
  cfg.target_triples = 5000;
  rdf::Dataset a = GenerateYago(cfg);
  rdf::Dataset b = GenerateYago(cfg);
  ASSERT_EQ(a.num_triples(), b.num_triples());
  EXPECT_EQ(a.triples(), b.triples());
}

TEST(Generators, SeedChangesContent) {
  YagoConfig a_cfg, b_cfg;
  a_cfg.target_triples = b_cfg.target_triples = 5000;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  rdf::Dataset a = GenerateYago(a_cfg);
  rdf::Dataset b = GenerateYago(b_cfg);
  EXPECT_NE(a.triples(), b.triples());
}

TEST(Generators, FlagshipQueryHasAnswers) {
  // The advisor-born-same-city correlation must produce matches.
  YagoConfig cfg;
  cfg.target_triples = 20000;
  rdf::Dataset ds = GenerateYago(cfg);
  const rdf::TermId born = ds.dict().Lookup("y:wasBornIn");
  const rdf::TermId advisor = ds.dict().Lookup("y:hasAcademicAdvisor");
  ASSERT_NE(born, rdf::kInvalidTermId);
  ASSERT_NE(advisor, rdf::kInvalidTermId);
  EXPECT_GT(ds.PartitionOf(born)->num_triples, 1000u);
  EXPECT_GT(ds.PartitionOf(advisor)->num_triples, 300u);
}

TEST(Generators, ScalesWithTarget) {
  YagoConfig small, large;
  small.target_triples = 5000;
  large.target_triples = 50000;
  EXPECT_GT(GenerateYago(large).num_triples(),
            5 * GenerateYago(small).num_triples());
}

class TemplateCatalogTest
    : public ::testing::TestWithParam<
          std::pair<const char*, std::vector<QueryTemplate> (*)()>> {};

TEST_P(TemplateCatalogTest, TemplatesParseAndSlotsAreValid) {
  const auto& [name, factory] = GetParam();
  (void)name;
  for (const QueryTemplate& t : factory()) {
    auto q = sparql::Parser::Parse(t.text);
    ASSERT_TRUE(q.ok()) << t.name << ": " << q.status();
    const std::vector<std::string> params = q->Parameters();
    // Canonical catalogs mark every slot as a $param (so runners prepare
    // each template once and re-bind per mutation), and every skeleton
    // parameter has a sampling slot.
    for (const auto& slot : t.slots) {
      EXPECT_TRUE(std::find(params.begin(), params.end(), slot.variable) !=
                  params.end())
          << t.name << " slot $" << slot.variable << " is not a parameter";
      for (const auto& sv : q->select_vars) {
        EXPECT_NE(sv, slot.variable) << t.name << " projects a slot var";
      }
    }
    for (const auto& p : params) {
      EXPECT_TRUE(std::any_of(
          t.slots.begin(), t.slots.end(),
          [&](const QueryTemplate::Slot& s) { return s.variable == p; }))
          << t.name << " parameter $" << p << " has no slot";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalogs, TemplateCatalogTest,
    ::testing::Values(
        std::make_pair("yago", &YagoTemplates),
        std::make_pair("watdiv_l", &WatDivLinearTemplates),
        std::make_pair("watdiv_s", &WatDivStarTemplates),
        std::make_pair("watdiv_f", &WatDivSnowflakeTemplates),
        std::make_pair("watdiv_c", &WatDivComplexTemplates),
        std::make_pair("bio2rdf", &Bio2RdfTemplates)),
    [](const auto& info) { return std::string(info.param.first); });

TEST(TemplateCatalog, PaperWorkloadSizes) {
  EXPECT_EQ(YagoTemplates().size(), 4u);           // x5 = 20 queries
  EXPECT_EQ(WatDivLinearTemplates().size(), 7u);   // x5 = 35
  EXPECT_EQ(WatDivStarTemplates().size(), 5u);     // x5 = 25
  EXPECT_EQ(WatDivSnowflakeTemplates().size(), 5u);// x5 = 25
  EXPECT_EQ(WatDivComplexTemplates().size(), 3u);  // x5 = 15
  EXPECT_EQ(Bio2RdfTemplates().size(), 5u);        // x5 = 25
}

class WorkloadBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    YagoConfig cfg;
    cfg.target_triples = 10000;
    ds_ = GenerateYago(cfg);
  }
  rdf::Dataset ds_;
};

TEST_F(WorkloadBuilderTest, BuildsTemplatesTimesFiveQueries) {
  WorkloadBuilder builder(&ds_);
  auto w = builder.Build("yago", YagoTemplates(), WorkloadOptions{});
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_EQ(w->queries.size(), 20u);
  EXPECT_EQ(w->name, "yago");
}

TEST_F(WorkloadBuilderTest, OrderedClustersTemplates) {
  WorkloadBuilder builder(&ds_);
  WorkloadOptions opt;
  opt.ordered = true;
  auto w = builder.Build("yago", YagoTemplates(), opt);
  ASSERT_TRUE(w.ok());
  for (size_t i = 0; i < w->queries.size(); ++i) {
    EXPECT_EQ(w->queries[i].template_index, static_cast<int>(i / 5));
  }
}

TEST_F(WorkloadBuilderTest, RandomShufflesButKeepsMultiset) {
  WorkloadBuilder builder(&ds_);
  WorkloadOptions ordered, random;
  ordered.ordered = true;
  random.ordered = false;
  auto wo = builder.Build("o", YagoTemplates(), ordered);
  auto wr = builder.Build("r", YagoTemplates(), random);
  ASSERT_TRUE(wo.ok() && wr.ok());
  std::multiset<int> to, tr;
  for (const auto& q : wo->queries) to.insert(q.template_index);
  for (const auto& q : wr->queries) tr.insert(q.template_index);
  EXPECT_EQ(to, tr);
  // The random version is (astronomically likely) a different order.
  bool same_order = true;
  for (size_t i = 0; i < wo->queries.size(); ++i) {
    if (wo->queries[i].template_index != wr->queries[i].template_index) {
      same_order = false;
      break;
    }
  }
  EXPECT_FALSE(same_order);
}

TEST_F(WorkloadBuilderTest, MutationsChangeConstantsNotStructure) {
  WorkloadBuilder builder(&ds_);
  WorkloadOptions opt;
  opt.ordered = true;
  auto w = builder.Build("yago", YagoTemplates(), opt);
  ASSERT_TRUE(w.ok());
  // All versions of template 0 share pattern count and predicates.
  const auto& base = w->queries[0].query;
  std::set<std::string> constants_seen;
  for (int v = 0; v < 5; ++v) {
    const auto& q = w->queries[static_cast<size_t>(v)].query;
    EXPECT_EQ(q.patterns.size(), base.patterns.size());
    EXPECT_EQ(q.ConstantPredicates(), base.ConstantPredicates());
    // The slot constant is the prize in the last pattern.
    constants_seen.insert(q.patterns.back().object.text);
  }
  EXPECT_GT(constants_seen.size(), 1u);  // mutations vary the constant
}

TEST_F(WorkloadBuilderTest, EveryYagoQueryHasComplexSubquery) {
  WorkloadBuilder builder(&ds_);
  auto w = builder.Build("yago", YagoTemplates(), WorkloadOptions{});
  ASSERT_TRUE(w.ok());
  for (const auto& wq : w->queries) {
    auto split = core::ComplexSubqueryIdentifier::Identify(wq.query);
    EXPECT_TRUE(split.HasComplexSubquery()) << wq.query.ToString();
  }
}

TEST_F(WorkloadBuilderTest, RejectsUnknownPredicate) {
  WorkloadBuilder builder(&ds_);
  QueryTemplate bad{"bad",
                    "SELECT ?a WHERE { ?a nosuch:pred ?b . ?b q ?a . }",
                    {{"b", "nosuch:pred", true}}};
  EXPECT_TRUE(builder.Build("x", {bad}, WorkloadOptions{})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(WorkloadBuilderTest, RejectsProjectedSlotVariable) {
  WorkloadBuilder builder(&ds_);
  QueryTemplate bad{"bad",
                    "SELECT ?b WHERE { ?a y:wasBornIn ?b . }",
                    {{"b", "y:wasBornIn", true}}};
  EXPECT_TRUE(builder.Build("x", {bad}, WorkloadOptions{})
                  .status()
                  .IsInvalidArgument());
}

TEST(WorkloadSplit, BatchesCoverAllQueriesInOrder) {
  Workload w;
  w.name = "t";
  for (int i = 0; i < 23; ++i) {
    WorkloadQuery q;
    q.template_index = i;
    w.queries.push_back(q);
  }
  auto batches = w.SplitBatches(5);
  ASSERT_EQ(batches.size(), 5u);
  EXPECT_EQ(batches[0].size(), 5u);  // 23 = 5+5+5+4+4
  EXPECT_EQ(batches[3].size(), 4u);
  int expect = 0;
  for (const auto& b : batches) {
    for (const auto& q : b) EXPECT_EQ(q.template_index, expect++);
  }
  EXPECT_EQ(expect, 23);
}

// Split mode: for every shard count, the per-shard streams are an exact,
// order-preserving partition of the unsharded stream — batch by batch,
// with no op lost, duplicated, or misrouted.
TEST(UpdateStreamSplit, PerShardStreamsPartitionTheFullStream) {
  YagoConfig gen;
  gen.target_triples = 5000;
  rdf::Dataset ds = GenerateYago(gen);

  UpdateStreamConfig base;
  base.seed = 17;
  base.num_batches = 3;
  base.ops_per_batch = 200;
  const core::UpdateLog full = GenerateUpdateStream(ds, base);
  ASSERT_EQ(full.size(), 3u);

  auto op_key = [](const core::UpdateOp& op) {
    return std::string(op.kind == core::UpdateOp::Kind::kInsert ? "+" : "-") +
           op.subject + '\x1f' + op.predicate + '\x1f' + op.object;
  };

  for (int shards : {2, 4, 8}) {
    SCOPED_TRACE(shards);
    std::vector<core::UpdateLog> slices;
    for (int s = 0; s < shards; ++s) {
      UpdateStreamConfig cfg = base;
      cfg.num_shards = shards;
      cfg.shard_index = s;
      slices.push_back(GenerateUpdateStream(ds, cfg));
      ASSERT_EQ(slices.back().size(), full.size());
    }
    for (uint64_t b = 0; b < full.size(); ++b) {
      // Every op of every slice belongs to its shard; merging the slices
      // by walking the full batch reproduces it exactly.
      std::vector<size_t> cursor(static_cast<size_t>(shards), 0);
      for (const core::UpdateOp& op : full.at(b).ops) {
        const uint32_t s = UpdateStreamShardOf(op.predicate, shards);
        const core::UpdateBatch& slice = slices[s].at(b);
        ASSERT_LT(cursor[s], slice.ops.size())
            << "batch " << b << ": shard " << s << " ran out of ops";
        EXPECT_EQ(op_key(slice.ops[cursor[s]]), op_key(op));
        ++cursor[s];
      }
      size_t merged = 0;
      for (int s = 0; s < shards; ++s) {
        EXPECT_EQ(cursor[static_cast<size_t>(s)],
                  slices[s].at(b).ops.size())
            << "batch " << b << ": shard " << s << " has extra ops";
        merged += slices[s].at(b).ops.size();
      }
      EXPECT_EQ(merged, full.at(b).ops.size());
    }
  }
}

TEST(WorkloadSplit, DegenerateCases) {
  Workload w;
  EXPECT_TRUE(w.SplitBatches(0).empty());
  auto batches = w.SplitBatches(3);
  ASSERT_EQ(batches.size(), 3u);
  for (const auto& b : batches) EXPECT_TRUE(b.empty());
}

TEST(WorkloadSplit, BatchRangesAgreeWithSplitBatches) {
  for (int total : {0, 1, 4, 5, 23, 100}) {
    Workload w;
    for (int i = 0; i < total; ++i) {
      WorkloadQuery q;
      q.template_index = i;
      w.queries.push_back(q);
    }
    for (int n : {1, 3, 5, 7}) {
      const auto batches = w.SplitBatches(n);
      const auto ranges = w.BatchRanges(n);
      ASSERT_EQ(batches.size(), ranges.size()) << total << "/" << n;
      for (size_t b = 0; b < batches.size(); ++b) {
        const auto [begin, end] = ranges[b];
        ASSERT_EQ(batches[b].size(), end - begin) << total << "/" << n;
        for (size_t i = 0; i < batches[b].size(); ++i) {
          EXPECT_EQ(batches[b][i].template_index,
                    w.queries[begin + i].template_index);
        }
      }
    }
  }
}

}  // namespace
}  // namespace dskg::workload
