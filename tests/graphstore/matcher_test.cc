// Traversal matcher tests: hand-checked traversals, routing
// preconditions, budget aborts, and randomized cross-engine equivalence
// against the brute-force reference.

#include <gtest/gtest.h>

#include "graphstore/matcher.h"
#include "sparql/parser.h"
#include "test_util.h"
#include "workload/generators.h"

namespace dskg::graphstore {
namespace {

using sparql::BindingTable;
using sparql::Parser;

/// Loads every partition of `ds` into a graph.
void LoadAll(const rdf::Dataset& ds, PropertyGraph* g) {
  CostMeter meter;
  for (const auto& part : ds.AllPartitions()) {
    std::vector<rdf::Triple> triples =
        ds.TriplesWithPredicate(part.predicate);
    // Engines use set semantics; dedupe to match.
    std::sort(triples.begin(), triples.end());
    triples.erase(std::unique(triples.begin(), triples.end()),
                  triples.end());
    ASSERT_TRUE(g->ImportPartition(part.predicate, triples, &meter).ok());
  }
}

class MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = testing::SmallPeopleGraph();
    LoadAll(ds_, &graph_);
    matcher_ = std::make_unique<TraversalMatcher>(&graph_, &ds_.dict());
  }

  BindingTable Match(const std::string& text) {
    auto q = Parser::Parse(text);
    EXPECT_TRUE(q.ok()) << q.status();
    CostMeter meter;
    auto r = matcher_->Match(*q, &meter);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).ValueOrDie();
  }

  rdf::Dataset ds_;
  PropertyGraph graph_;
  std::unique_ptr<TraversalMatcher> matcher_;
};

TEST_F(MatcherTest, FlagshipTraversal) {
  BindingTable r = Match(
      "SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }");
  EXPECT_EQ(r.NumRows(), 2u);  // bob, dave
}

TEST_F(MatcherTest, BoundSubjectExpansion) {
  BindingTable r = Match("SELECT ?f WHERE { alice likes ?f . }");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.At(0, 0), ds_.dict().Lookup("film1"));
}

TEST_F(MatcherTest, BoundObjectUsesInAdjacency) {
  BindingTable r = Match("SELECT ?p WHERE { ?p advisor alice . }");
  EXPECT_EQ(r.NumRows(), 2u);
}

TEST_F(MatcherTest, RepeatedVariableWithinPattern) {
  BindingTable r = Match("SELECT ?x WHERE { ?x likes ?x . }");
  EXPECT_TRUE(r.empty());
}

TEST_F(MatcherTest, UnknownConstantGivesEmpty) {
  BindingTable r = Match("SELECT ?p WHERE { ?p bornIn atlantis . }");
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.columns, std::vector<std::string>{"p"});
}

TEST_F(MatcherTest, VariablePredicateRejected) {
  auto q = Parser::Parse("SELECT ?p WHERE { alice ?p bob . }");
  ASSERT_TRUE(q.ok());
  CostMeter meter;
  EXPECT_TRUE(matcher_->Match(*q, &meter).status().IsFailedPrecondition());
}

TEST_F(MatcherTest, MissingPartitionRejected) {
  PropertyGraph partial;
  CostMeter meter;
  rdf::TermId likes = ds_.dict().Lookup("likes");
  std::vector<rdf::Triple> triples = ds_.TriplesWithPredicate(likes);
  ASSERT_TRUE(partial.ImportPartition(likes, triples, &meter).ok());
  TraversalMatcher m(&partial, &ds_.dict());
  auto q = Parser::Parse("SELECT ?p WHERE { ?p likes ?f . ?f genre ?g . }");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(m.Match(*q, &meter).status().IsFailedPrecondition());
}

TEST_F(MatcherTest, BudgetCancelsTraversal) {
  auto q = Parser::Parse(
      "SELECT ?a ?b WHERE { ?a likes ?f . ?b likes ?f . }");
  ASSERT_TRUE(q.ok());
  CostMeter meter;
  meter.set_budget_micros(0.01);
  EXPECT_TRUE(matcher_->Match(*q, &meter).status().IsCancelled());
}

TEST_F(MatcherTest, ChargesTraversalCosts) {
  auto q = Parser::Parse(
      "SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }");
  ASSERT_TRUE(q.ok());
  CostMeter meter;
  ASSERT_TRUE(matcher_->Match(*q, &meter).ok());
  EXPECT_GT(meter.count(Op::kAdjExpandEdge), 0u);
  EXPECT_GT(meter.count(Op::kNodeLookup), 0u);
  EXPECT_EQ(meter.count(Op::kSeqScanTuple), 0u);  // no relational ops
}

// ---- randomized cross-engine equivalence ----------------------------------

class MatcherFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherFuzzTest, AgreesWithReferenceEvaluator) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  PropertyGraph graph;
  LoadAll(ds, &graph);
  TraversalMatcher matcher(&graph, &ds.dict());
  testing::ReferenceEvaluator reference(&ds);

  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    sparql::Query q = testing::RandomBgp(ds, &rng);
    CostMeter meter;
    auto actual = matcher.Match(q, &meter);
    ASSERT_TRUE(actual.ok()) << actual.status() << "\n" << q.ToString();
    BindingTable expected = reference.Evaluate(q);
    EXPECT_TRUE(BindingTable::SameRows(*actual, expected))
        << "query: " << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(MatcherScale, FlagshipOnGeneratedGraphMatchesReference) {
  workload::YagoConfig cfg;
  cfg.target_triples = 8000;
  rdf::Dataset ds = workload::GenerateYago(cfg);
  PropertyGraph graph;
  LoadAll(ds, &graph);
  TraversalMatcher matcher(&graph, &ds.dict());
  auto q = Parser::Parse(
      "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:hasAcademicAdvisor ?a . "
      "?a y:wasBornIn ?c . }");
  ASSERT_TRUE(q.ok());
  CostMeter meter;
  auto r = matcher.Match(*q, &meter);
  ASSERT_TRUE(r.ok()) << r.status();
  testing::ReferenceEvaluator reference(&ds);
  EXPECT_TRUE(BindingTable::SameRows(*r, reference.Evaluate(*q)));
}

}  // namespace
}  // namespace dskg::graphstore
