// Property graph tests: partition import/evict, capacity budget,
// adjacency access, and the single-insert update path.

#include <gtest/gtest.h>

#include "graphstore/property_graph.h"
#include "test_util.h"

namespace dskg::graphstore {
namespace {

using rdf::TermId;
using rdf::Triple;

std::vector<Triple> PartitionOf(const rdf::Dataset& ds,
                                const std::string& pred) {
  return ds.TriplesWithPredicate(ds.dict().Lookup(pred));
}

class PropertyGraphTest : public ::testing::Test {
 protected:
  void SetUp() override { ds_ = testing::SmallPeopleGraph(); }

  TermId Id(const std::string& s) { return ds_.dict().Lookup(s); }

  rdf::Dataset ds_;
  CostMeter meter_;
};

TEST_F(PropertyGraphTest, ImportMakesPredicateResident) {
  PropertyGraph g;
  ASSERT_TRUE(
      g.ImportPartition(Id("bornIn"), PartitionOf(ds_, "bornIn"), &meter_)
          .ok());
  EXPECT_TRUE(g.HasPredicate(Id("bornIn")));
  EXPECT_FALSE(g.HasPredicate(Id("likes")));
  EXPECT_EQ(g.used_triples(), 4u);
  EXPECT_EQ(g.PartitionTriples(Id("bornIn")), 4u);
  EXPECT_EQ(meter_.count(Op::kImportTriple), 4u);
}

TEST_F(PropertyGraphTest, DoubleImportRejected) {
  PropertyGraph g;
  ASSERT_TRUE(
      g.ImportPartition(Id("bornIn"), PartitionOf(ds_, "bornIn"), &meter_)
          .ok());
  EXPECT_TRUE(
      g.ImportPartition(Id("bornIn"), PartitionOf(ds_, "bornIn"), &meter_)
          .IsAlreadyExists());
}

TEST_F(PropertyGraphTest, WrongPredicateInPartitionRejected) {
  PropertyGraph g;
  EXPECT_TRUE(
      g.ImportPartition(Id("likes"), PartitionOf(ds_, "bornIn"), &meter_)
          .IsInvalidArgument());
}

TEST_F(PropertyGraphTest, CapacityEnforced) {
  PropertyGraph g(/*capacity_triples=*/5);
  ASSERT_TRUE(
      g.ImportPartition(Id("bornIn"), PartitionOf(ds_, "bornIn"), &meter_)
          .ok());  // 4 triples
  EXPECT_EQ(g.FreeTriples(), 1u);
  // likes has 4 triples; does not fit.
  EXPECT_TRUE(
      g.ImportPartition(Id("likes"), PartitionOf(ds_, "likes"), &meter_)
          .IsCapacityExceeded());
  // genre has 2 triples; still does not fit (1 free).
  EXPECT_TRUE(
      g.ImportPartition(Id("genre"), PartitionOf(ds_, "genre"), &meter_)
          .IsCapacityExceeded());
}

TEST_F(PropertyGraphTest, EvictFreesCapacity) {
  PropertyGraph g(/*capacity_triples=*/6);
  ASSERT_TRUE(
      g.ImportPartition(Id("bornIn"), PartitionOf(ds_, "bornIn"), &meter_)
          .ok());
  ASSERT_TRUE(g.EvictPartition(Id("bornIn"), &meter_).ok());
  EXPECT_FALSE(g.HasPredicate(Id("bornIn")));
  EXPECT_EQ(g.used_triples(), 0u);
  EXPECT_EQ(meter_.count(Op::kEvictTriple), 4u);
  EXPECT_TRUE(g.EvictPartition(Id("bornIn"), &meter_).IsNotFound());
  // Now likes fits.
  EXPECT_TRUE(
      g.ImportPartition(Id("likes"), PartitionOf(ds_, "likes"), &meter_)
          .ok());
}

TEST_F(PropertyGraphTest, AdjacencyBothDirections) {
  PropertyGraph g;
  ASSERT_TRUE(
      g.ImportPartition(Id("advisor"), PartitionOf(ds_, "advisor"), &meter_)
          .ok());
  const auto* out = g.OutNeighbors(Id("bob"), Id("advisor"));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, std::vector<TermId>{Id("alice")});
  const auto* in = g.InNeighbors(Id("alice"), Id("advisor"));
  ASSERT_NE(in, nullptr);
  EXPECT_EQ(in->size(), 2u);  // bob, carol
  EXPECT_EQ(g.OutNeighbors(Id("alice"), Id("advisor")), nullptr);
  EXPECT_EQ(g.OutNeighbors(Id("bob"), Id("likes")), nullptr);  // not loaded
}

TEST_F(PropertyGraphTest, EdgesListMatchesPartition) {
  PropertyGraph g;
  ASSERT_TRUE(
      g.ImportPartition(Id("likes"), PartitionOf(ds_, "likes"), &meter_)
          .ok());
  EXPECT_EQ(g.Edges(Id("likes")).size(), 4u);
  EXPECT_TRUE(g.Edges(Id("bornIn")).empty());  // not loaded
}

TEST_F(PropertyGraphTest, LoadedPredicatesSortedAscending) {
  PropertyGraph g;
  ASSERT_TRUE(
      g.ImportPartition(Id("likes"), PartitionOf(ds_, "likes"), &meter_).ok());
  ASSERT_TRUE(
      g.ImportPartition(Id("bornIn"), PartitionOf(ds_, "bornIn"), &meter_)
          .ok());
  auto loaded = g.LoadedPredicates();
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_LT(loaded[0], loaded[1]);
}

TEST_F(PropertyGraphTest, InsertTripleExtendsLoadedPartition) {
  PropertyGraph g;
  ASSERT_TRUE(
      g.ImportPartition(Id("likes"), PartitionOf(ds_, "likes"), &meter_).ok());
  rdf::Triple t{Id("alice"), Id("likes"), Id("film2")};
  ASSERT_TRUE(g.InsertTriple(t, &meter_).ok());
  EXPECT_EQ(g.PartitionTriples(Id("likes")), 5u);
  const auto* out = g.OutNeighbors(Id("alice"), Id("likes"));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->size(), 2u);
}

TEST_F(PropertyGraphTest, InsertIntoAbsentPartitionRejected) {
  PropertyGraph g;
  rdf::Triple t{Id("alice"), Id("likes"), Id("film2")};
  EXPECT_TRUE(g.InsertTriple(t, &meter_).IsNotFound());
}

TEST_F(PropertyGraphTest, InsertRespectsCapacity) {
  PropertyGraph g(/*capacity_triples=*/4);
  ASSERT_TRUE(
      g.ImportPartition(Id("likes"), PartitionOf(ds_, "likes"), &meter_).ok());
  rdf::Triple t{Id("alice"), Id("likes"), Id("film2")};
  EXPECT_TRUE(g.InsertTriple(t, &meter_).IsCapacityExceeded());
}

TEST_F(PropertyGraphTest, UnlimitedCapacityReportsMaxFree) {
  PropertyGraph g;
  EXPECT_EQ(g.capacity_triples(), 0u);
  EXPECT_GT(g.FreeTriples(), 1ULL << 60);
}

}  // namespace
}  // namespace dskg::graphstore
