// Parser + AST tests, including the paper's Example 1 query text.

#include <gtest/gtest.h>

#include "sparql/ast.h"
#include "sparql/bindings.h"
#include "sparql/parser.h"

namespace dskg::sparql {
namespace {

TEST(Parser, SimpleSelect) {
  auto q = Parser::Parse("SELECT ?x WHERE { ?x y:p y:o . }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->select_vars, std::vector<std::string>{"x"});
  ASSERT_EQ(q->patterns.size(), 1u);
  EXPECT_TRUE(q->patterns[0].subject.is_variable);
  EXPECT_EQ(q->patterns[0].subject.text, "x");
  EXPECT_FALSE(q->patterns[0].predicate.is_variable);
  EXPECT_EQ(q->patterns[0].predicate.text, "y:p");
  EXPECT_EQ(q->patterns[0].object.text, "y:o");
}

TEST(Parser, PaperExampleOneParses) {
  // Verbatim shape from the paper's Example 1 (§3.1).
  constexpr const char* kText =
      "SELECT ?GivenName ?FamilyName WHERE{ "
      "?p y:hasGivenName ?GivenName. "
      "?p y:hasFamilyName ?FamilyName. "
      "?p y:wasBornIn ?city. "
      "?p y:hasAcademicAdvisor ?a. "
      "?a y:wasBornIn ?city. "
      "?p y:isMarriedTo ?p2. "
      "?p2 y:wasBornIn ?city.}";
  auto q = Parser::Parse(kText);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->patterns.size(), 7u);
  EXPECT_EQ(q->select_vars,
            (std::vector<std::string>{"GivenName", "FamilyName"}));
  auto counts = q->VariableCounts();
  EXPECT_EQ(counts["p"], 5);
  EXPECT_EQ(counts["city"], 3);
  EXPECT_EQ(counts["a"], 2);
  EXPECT_EQ(counts["p2"], 2);
  EXPECT_EQ(counts["GivenName"], 1);
}

TEST(Parser, SelectStar) {
  auto q = Parser::Parse("SELECT * WHERE { ?s ?p ?o }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->select_vars.empty());
  EXPECT_TRUE(q->patterns[0].predicate.is_variable);
}

TEST(Parser, CaseInsensitiveKeywords) {
  auto q = Parser::Parse("select ?x where { ?x p o . }");
  ASSERT_TRUE(q.ok()) << q.status();
}

TEST(Parser, IriRefAndLiteralTerms) {
  auto q = Parser::Parse(
      "SELECT ?x WHERE { ?x <http://example.org/name> \"Ada Lovelace\" . }");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->patterns[0].predicate.text, "<http://example.org/name>");
  EXPECT_EQ(q->patterns[0].object.text, "\"Ada Lovelace\"");
}

TEST(Parser, OptionalTrailingDotAndNoSpaces) {
  auto q = Parser::Parse("SELECT ?p WHERE {?p y:a ?x. ?p y:b ?y}");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->patterns.size(), 2u);
}

TEST(Parser, MultiplePatternsKeepOrder) {
  auto q = Parser::Parse(
      "SELECT ?a WHERE { ?a p1 ?b . ?b p2 ?c . ?c p3 ?a . }");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->patterns.size(), 3u);
  EXPECT_EQ(q->patterns[0].predicate.text, "p1");
  EXPECT_EQ(q->patterns[2].predicate.text, "p3");
}

struct BadInput {
  const char* label;
  const char* text;
};

class ParserErrorTest : public ::testing::TestWithParam<BadInput> {};

TEST_P(ParserErrorTest, Rejects) {
  auto q = Parser::Parse(GetParam().text);
  ASSERT_FALSE(q.ok()) << GetParam().label;
  EXPECT_TRUE(q.status().IsParseError()) << q.status();
}

INSTANTIATE_TEST_SUITE_P(
    BadQueries, ParserErrorTest,
    ::testing::Values(
        BadInput{"missing_select", "WHERE { ?a p ?b }"},
        BadInput{"missing_where", "SELECT ?a { ?a p ?b }"},
        BadInput{"no_projection", "SELECT WHERE { ?a p ?b }"},
        BadInput{"unterminated_block", "SELECT ?a WHERE { ?a p ?b"},
        BadInput{"empty_block", "SELECT * WHERE { }"},
        BadInput{"truncated_pattern", "SELECT ?a WHERE { ?a p }"},
        BadInput{"unterminated_iri", "SELECT ?a WHERE { ?a <p ?b }"},
        BadInput{"unterminated_literal", "SELECT ?a WHERE { ?a p \"x }"},
        BadInput{"unknown_projected_var", "SELECT ?z WHERE { ?a p ?b }"},
        BadInput{"empty_var_name", "SELECT ? WHERE { ?a p ?b }"}),
    [](const ::testing::TestParamInfo<BadInput>& info) {
      return info.param.label;
    });

TEST(Ast, AllVariablesFirstAppearanceOrder) {
  auto q = Parser::Parse("SELECT * WHERE { ?b p ?a . ?a q ?c . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->AllVariables(), (std::vector<std::string>{"b", "a", "c"}));
}

TEST(Ast, ConstantPredicatesDeduplicated) {
  auto q = Parser::Parse("SELECT * WHERE { ?a p ?b . ?b p ?c . ?c q ?d . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->ConstantPredicates(), (std::vector<std::string>{"p", "q"}));
}

TEST(Ast, ToStringRoundTripsThroughParser) {
  auto q = Parser::Parse(
      "SELECT ?p WHERE { ?p y:wasBornIn ?c . ?p y:likes \"x\" . }");
  ASSERT_TRUE(q.ok());
  auto q2 = Parser::Parse(q->ToString());
  ASSERT_TRUE(q2.ok()) << q2.status() << " text: " << q->ToString();
  EXPECT_EQ(*q, *q2);
}

TEST(Bindings, ProjectSelectsAndReorders) {
  BindingTable t;
  t.columns = {"a", "b", "c"};
  t.AppendRow({1, 2, 3});
  t.AppendRow({4, 5, 6});
  BindingTable p = t.Project({"c", "a"});
  EXPECT_EQ(p.columns, (std::vector<std::string>{"c", "a"}));
  ASSERT_EQ(p.NumRows(), 2u);
  EXPECT_EQ(p.At(0, 0), 3u);
  EXPECT_EQ(p.At(0, 1), 1u);
}

TEST(Bindings, ProjectSkipsMissingColumns) {
  BindingTable t;
  t.columns = {"a"};
  t.AppendRow({7});
  BindingTable p = t.Project({"a", "zz"});
  EXPECT_EQ(p.columns, std::vector<std::string>{"a"});
}

TEST(Bindings, SameRowsIgnoresOrderButNotMultiplicity) {
  BindingTable x, y;
  x.columns = y.columns = {"a"};
  for (rdf::TermId v : {1, 2, 2}) x.AppendRow({v});
  for (rdf::TermId v : {2, 1, 2}) y.AppendRow({v});
  EXPECT_TRUE(BindingTable::SameRows(x, y));
  y.ClearRows();
  for (rdf::TermId v : {2, 1}) y.AppendRow({v});
  EXPECT_FALSE(BindingTable::SameRows(x, y));
}

TEST(Bindings, ColumnIndexAndHasColumn) {
  BindingTable t;
  t.columns = {"x", "y"};
  EXPECT_EQ(t.ColumnIndex("y"), 1);
  EXPECT_EQ(t.ColumnIndex("z"), -1);
  EXPECT_TRUE(t.HasColumn("x"));
  EXPECT_FALSE(t.HasColumn("z"));
}

}  // namespace
}  // namespace dskg::sparql
