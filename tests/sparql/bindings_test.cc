// Unit tests for the columnar BindingTable: flat-storage accessors, row
// append paths, projection, canonicalization and the zero-column edge
// cases the explicit row counter exists for.

#include "sparql/bindings.h"

#include <gtest/gtest.h>

#include <vector>

namespace dskg::sparql {
namespace {

using rdf::TermId;

TEST(BindingTableFlat, AppendAndAccessors) {
  BindingTable t;
  t.columns = {"a", "b"};
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.NumColumns(), 2u);

  t.AppendRow({1, 2});
  const TermId vals[] = {3, 4};
  t.AppendRow(vals);
  TermId* in_place = t.AppendRow();
  in_place[0] = 5;
  in_place[1] = 6;

  ASSERT_EQ(t.NumRows(), 3u);
  EXPECT_FALSE(t.empty());
  // Flat row-major layout with stride NumColumns().
  EXPECT_EQ(t.flat(), (std::vector<TermId>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(t.At(0, 1), 2u);
  EXPECT_EQ(t.At(2, 0), 5u);
  EXPECT_EQ(t.RowData(1)[0], 3u);

  // RowView indexing and iteration.
  BindingTable::RowView row = t.Row(1);
  EXPECT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], 4u);
  TermId sum = 0;
  for (BindingTable::RowView r : t.Rows()) {
    for (TermId v : r) sum += v;
  }
  EXPECT_EQ(sum, 21u);
}

TEST(BindingTableFlat, AppendRowsFromSplicesBuffers) {
  BindingTable a, b;
  a.columns = b.columns = {"x", "y"};
  a.AppendRow({1, 2});
  b.AppendRow({3, 4});
  b.AppendRow({5, 6});
  a.AppendRowsFrom(b);
  EXPECT_EQ(a.NumRows(), 3u);
  EXPECT_EQ(a.flat(), (std::vector<TermId>{1, 2, 3, 4, 5, 6}));
}

TEST(BindingTableFlat, ClearRowsKeepsHeader) {
  BindingTable t;
  t.columns = {"a"};
  t.AppendRow({7});
  t.ClearRows();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.NumColumns(), 1u);
  EXPECT_TRUE(t.flat().empty());
}

TEST(BindingTableFlat, ZeroColumnRowsStillCount) {
  // An all-constant pattern produces zero-width rows; the match count
  // must survive (the flat buffer alone cannot carry it).
  BindingTable t;
  t.AppendRow();
  t.AppendRow();
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(t.flat().empty());

  BindingTable s;
  s.AppendRow();
  EXPECT_FALSE(BindingTable::SameRows(t, s));  // 2 rows vs 1 row
  s.AppendRow();
  EXPECT_TRUE(BindingTable::SameRows(t, s));
}

TEST(BindingTableFlat, ProjectDuplicateTargetColumn) {
  BindingTable t;
  t.columns = {"a", "b"};
  t.AppendRow({1, 2});
  BindingTable p = t.Project({"b", "a", "b"});
  EXPECT_EQ(p.columns, (std::vector<std::string>{"b", "a", "b"}));
  ASSERT_EQ(p.NumRows(), 1u);
  EXPECT_EQ(p.flat(), (std::vector<TermId>{2, 1, 2}));
}

TEST(BindingTableFlat, CanonicalizeSortsLexicographically) {
  BindingTable t;
  t.columns = {"a", "b"};
  t.AppendRow({2, 1});
  t.AppendRow({1, 9});
  t.AppendRow({1, 3});
  t.Canonicalize();
  EXPECT_EQ(t.flat(), (std::vector<TermId>{1, 3, 1, 9, 2, 1}));
}

TEST(BindingTableFlat, ReserveRowsDoesNotChangeContents) {
  BindingTable t;
  t.columns = {"a"};
  t.AppendRow({1});
  t.ReserveRows(1000);
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.flat(), std::vector<TermId>{1});
}

}  // namespace
}  // namespace dskg::sparql
