// Arena-dictionary tests: span stability, LIFO id-recycle determinism,
// extent reuse, and refcount-driven reclamation under the online-update
// replay pattern (two replicas applying identical op sequences must stay
// id-aligned forever).

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "rdf/dictionary.h"

namespace dskg::rdf {
namespace {

std::string Term(uint64_t i) { return "y:term_" + std::to_string(i); }

TEST(DictionaryArena, SpansStayStableAcrossChunkGrowth) {
  // Interning enough text to span many 64 KiB chunks must never move the
  // bytes of already-interned terms: the engines hold TermOf views across
  // later interns (e.g. while decoding one result as updates intern new
  // terms into the other replica).
  Dictionary d;
  std::vector<TermId> ids;
  std::vector<std::string_view> views;
  std::vector<std::string> expected;
  for (uint64_t i = 0; i < 5000; ++i) {
    // ~40 bytes/term -> ~200 KiB of text, several chunks.
    std::string t = Term(i) + std::string(30, 'x');
    ids.push_back(d.Intern(t));
    views.push_back(d.TermOf(ids.back()));
    expected.push_back(t);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(views[i], expected[i]) << i;           // view still valid
    EXPECT_EQ(d.TermOf(ids[i]), expected[i]) << i;   // and re-readable
    EXPECT_EQ(d.Lookup(expected[i]), ids[i]) << i;
  }
}

TEST(DictionaryArena, LookupIsAllocationFreeSemantics) {
  // Heterogeneous probe: looking up via a non-null-terminated substring
  // view must work (no hidden std::string construction needed).
  Dictionary d;
  const TermId id = d.Intern("y:wasBornIn");
  const std::string haystack = "xy:wasBornInz";
  const std::string_view probe(haystack.data() + 1, 11);
  EXPECT_EQ(d.Lookup(probe), id);
  EXPECT_EQ(d.Intern(probe), id);
}

TEST(DictionaryArena, EmptyTermNeedsNoArena) {
  // The empty string is a valid term and may be the first ever interned
  // (no arena chunk exists yet): it must round-trip without touching
  // arena storage, and its id must recycle like any other.
  Dictionary d;
  const TermId id = d.Intern("");
  EXPECT_EQ(d.TermOf(id), "");
  EXPECT_EQ(d.Lookup(""), id);
  EXPECT_EQ(d.Intern(""), id);
  EXPECT_EQ(d.text_bytes(), 0u);
  const TermId other = d.Intern("y:real");
  EXPECT_NE(other, id);
  EXPECT_EQ(d.Lookup(""), id);  // still findable next to real terms
  d.Retain(id);
  d.Release(id);
  EXPECT_EQ(d.Lookup(""), kInvalidTermId);
  EXPECT_EQ(d.Intern("y:recycled"), id);  // freed id reused
  EXPECT_EQ(d.TermOf(id), "y:recycled");
}

TEST(DictionaryArena, ReleaseRecyclesIdsLifo) {
  Dictionary d;
  const TermId a = d.Intern("a");
  const TermId b = d.Intern("b");
  const TermId c = d.Intern("c");
  for (TermId id : {a, b, c}) d.Retain(id);
  d.Release(a);
  d.Release(c);
  EXPECT_EQ(d.free_ids(), 2u);
  EXPECT_FALSE(d.Contains("a"));
  EXPECT_TRUE(d.Contains("b"));
  // LIFO: the most recently freed id (c's) is handed out first.
  EXPECT_EQ(d.Intern("d"), c);
  EXPECT_EQ(d.Intern("e"), a);
  EXPECT_EQ(d.Intern("f"), 3u);  // free list drained -> fresh id
  EXPECT_EQ(d.TermOf(c), "d");
  EXPECT_EQ(d.Lookup("d"), c);
}

TEST(DictionaryArena, FreedTermReadsEmptyUntilRecycled) {
  Dictionary d;
  const TermId id = d.Intern("y:gone");
  d.Retain(id);
  d.Release(id);
  EXPECT_EQ(d.TermOf(id), "");
  EXPECT_EQ(d.Lookup("y:gone"), kInvalidTermId);
  EXPECT_EQ(d.RefCount(id), 0u);
}

TEST(DictionaryArena, RecycleReusesExtentInPlace) {
  // Churn at a steady population with same-or-shorter terms must not grow
  // the arena: the recycled id's old extent absorbs the new text.
  Dictionary d;
  std::vector<TermId> ids;
  for (uint64_t i = 0; i < 100; ++i) {
    ids.push_back(d.Intern(Term(i)));
    d.Retain(ids.back());
  }
  const uint64_t grown = d.arena_bytes();
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 100; ++i) d.Release(ids[static_cast<size_t>(i)]);
    ids.clear();
    for (uint64_t i = 0; i < 100; ++i) {
      // Same lengths, different texts (cycle digit rotates).
      ids.push_back(d.Intern(Term((i + static_cast<uint64_t>(cycle)) % 100)));
      d.Retain(ids.back());
    }
  }
  EXPECT_EQ(d.arena_bytes(), grown);
  EXPECT_EQ(d.size(), 100u);  // id space never grew either
}

TEST(DictionaryArena, TextBytesTracksLiveTerms) {
  Dictionary d;
  const TermId abc = d.Intern("abc");
  d.Intern("de");
  d.Intern("abc");  // duplicate adds nothing
  EXPECT_EQ(d.text_bytes(), 5u);
  d.Retain(abc);
  d.Release(abc);
  EXPECT_EQ(d.text_bytes(), 2u);
  EXPECT_GT(d.MemoryBytes(), d.text_bytes());
}

TEST(DictionaryArena, ReserveDoesNotChangeAssignment) {
  Dictionary hinted;
  hinted.Reserve(1000, 1 << 20);
  Dictionary plain;
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(hinted.Intern(Term(i % 700)), plain.Intern(Term(i % 700)));
  }
  EXPECT_EQ(hinted.size(), plain.size());
  EXPECT_EQ(hinted.text_bytes(), plain.text_bytes());
}

TEST(DictionaryArena, ReplayedOpSequencesStayIdAligned) {
  // The left-right OnlineStore guarantee: two dictionaries fed the exact
  // same intern/retain/release sequence assign identical ids at every
  // step, across free-list recycling, chunk growth and index rehashes.
  Rng rng(2027);
  Dictionary left;
  Dictionary right;
  std::vector<std::pair<TermId, std::string>> live;
  for (int op = 0; op < 20000; ++op) {
    if (live.empty() || rng.NextBool(0.6)) {
      const std::string t = Term(rng.NextBounded(4000));
      const TermId dl = left.Intern(t);
      const TermId dr = right.Intern(t);
      ASSERT_EQ(dl, dr) << "op " << op;
      left.Retain(dl);
      right.Retain(dr);
      live.emplace_back(dl, t);
    } else {
      const size_t pick = rng.NextIndex(live.size());
      const auto [id, t] = live[pick];
      live[pick] = live.back();
      live.pop_back();
      left.Release(id);
      right.Release(id);
      ASSERT_EQ(left.Contains(t), right.Contains(t));
    }
  }
  ASSERT_EQ(left.size(), right.size());
  ASSERT_EQ(left.free_ids(), right.free_ids());
  ASSERT_EQ(left.text_bytes(), right.text_bytes());
  ASSERT_EQ(left.arena_bytes(), right.arena_bytes());
  for (const auto& [id, t] : live) {
    ASSERT_EQ(left.TermOf(id), right.TermOf(id));
  }
}

TEST(DictionaryArena, HeavyChurnKeepsForwardIndexExact) {
  // Backward-shift deletion in the open-addressing index: random
  // insert/release churn with many colliding-length keys must never lose
  // or resurrect an entry.
  Rng rng(99);
  Dictionary d;
  std::vector<std::pair<TermId, std::string>> live;
  for (int op = 0; op < 30000; ++op) {
    if (live.empty() || rng.NextBool(0.55)) {
      const std::string t = Term(rng.NextBounded(500));
      const TermId id = d.Intern(t);
      d.Retain(id);
      live.emplace_back(id, t);
    } else {
      const size_t pick = rng.NextIndex(live.size());
      d.Release(live[pick].first);
      live[pick] = live.back();
      live.pop_back();
    }
    if (op % 5000 == 0) {
      // Spot-check: every live term resolves to an id whose text matches.
      for (const auto& [id, t] : live) {
        if (d.RefCount(id) == 0) continue;  // released duplicate entry
        ASSERT_EQ(d.TermOf(d.Lookup(t)), t);
      }
    }
  }
}

}  // namespace
}  // namespace dskg::rdf
