// Unit tests for the RDF data model: dictionary, triples, dataset
// partition statistics, and N-Triples round-tripping.

#include <gtest/gtest.h>

#include <sstream>

#include "rdf/dataset.h"
#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/triple.h"

namespace dskg::rdf {
namespace {

TEST(Dictionary, InternAssignsDenseIdsInOrder) {
  Dictionary d;
  EXPECT_EQ(d.Intern("a"), 0u);
  EXPECT_EQ(d.Intern("b"), 1u);
  EXPECT_EQ(d.Intern("a"), 0u);  // idempotent
  EXPECT_EQ(d.size(), 2u);
}

TEST(Dictionary, LookupMissingReturnsInvalid) {
  Dictionary d;
  d.Intern("x");
  EXPECT_EQ(d.Lookup("y"), kInvalidTermId);
  EXPECT_TRUE(d.Contains("x"));
  EXPECT_FALSE(d.Contains("y"));
}

TEST(Dictionary, TermOfRoundTrips) {
  Dictionary d;
  const TermId id = d.Intern("y:wasBornIn");
  EXPECT_EQ(d.TermOf(id), "y:wasBornIn");
  auto checked = d.TermOfChecked(id);
  ASSERT_TRUE(checked.ok());
  EXPECT_EQ(checked.value(), "y:wasBornIn");
}

TEST(Dictionary, TermOfCheckedRejectsOutOfRange) {
  Dictionary d;
  EXPECT_TRUE(d.TermOfChecked(0).status().IsNotFound());
  EXPECT_TRUE(d.TermOfChecked(kInvalidTermId).status().IsNotFound());
}

TEST(Dictionary, TracksTextBytes) {
  Dictionary d;
  d.Intern("abc");
  d.Intern("de");
  d.Intern("abc");  // duplicate adds nothing
  EXPECT_EQ(d.text_bytes(), 5u);
}

TEST(Triple, OrderingIsLexicographicSPO) {
  Triple a{1, 2, 3}, b{1, 2, 4}, c{1, 3, 0}, d{2, 0, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(c, d);
  EXPECT_EQ(a, (Triple{1, 2, 3}));
}

TEST(Triple, HashDistinguishesPermutations) {
  TripleHash h;
  EXPECT_NE(h(Triple{1, 2, 3}), h(Triple{3, 2, 1}));
  EXPECT_EQ(h(Triple{1, 2, 3}), h(Triple{1, 2, 3}));
}

TEST(Dataset, AddInternsAndCounts) {
  Dataset ds;
  ds.Add("s1", "p1", "o1");
  ds.Add("s2", "p1", "o2");
  ds.Add("s1", "p2", "o1");
  EXPECT_EQ(ds.num_triples(), 3u);
  EXPECT_EQ(ds.num_predicates(), 2u);
  EXPECT_EQ(ds.dict().size(), 6u);  // s1 s2 p1 p2 o1 o2
}

TEST(Dataset, PartitionStatsAreIncremental) {
  Dataset ds;
  ds.Add("a", "p", "b");
  ds.Add("c", "p", "d");
  ds.Add("a", "q", "b");
  auto p = ds.PartitionOf(ds.dict().Lookup("p"));
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_triples, 2u);
  EXPECT_GT(p->bytes, 0u);
  auto q = ds.PartitionOf(ds.dict().Lookup("q"));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_triples, 1u);
}

TEST(Dataset, PartitionOfUnknownPredicateIsNotFound) {
  Dataset ds;
  EXPECT_TRUE(ds.PartitionOf(99).status().IsNotFound());
}

TEST(Dataset, AllPartitionsSortedByPredicateId) {
  Dataset ds;
  ds.Add("a", "z", "b");
  ds.Add("a", "y", "b");
  ds.Add("a", "x", "b");
  auto parts = ds.AllPartitions();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_LT(parts[0].predicate, parts[1].predicate);
  EXPECT_LT(parts[1].predicate, parts[2].predicate);
}

TEST(Dataset, CountDistinctSubjectsObjects) {
  Dataset ds;
  ds.Add("a", "p", "b");
  ds.Add("b", "p", "c");
  ds.Add("a", "q", "c");
  // Subjects/objects: a, b, c (predicates don't count).
  EXPECT_EQ(ds.CountDistinctSubjectsObjects(), 3u);
}

TEST(Dataset, TriplesWithPredicateFilters) {
  Dataset ds;
  ds.Add("a", "p", "b");
  ds.Add("c", "q", "d");
  ds.Add("e", "p", "f");
  auto p_triples = ds.TriplesWithPredicate(ds.dict().Lookup("p"));
  EXPECT_EQ(p_triples.size(), 2u);
}

TEST(Dataset, EstimatedBytesGrowsWithData) {
  Dataset ds;
  const uint64_t empty = ds.EstimatedBytes();
  ds.Add("aaaa", "bbbb", "cccc");
  EXPECT_GT(ds.EstimatedBytes(), empty);
}

TEST(NTriples, RoundTrip) {
  Dataset ds;
  ds.Add("y:alice", "y:wasBornIn", "y:berlin");
  ds.Add("y:bob", "y:hasAcademicAdvisor", "y:alice");
  std::ostringstream out;
  ASSERT_TRUE(NTriplesWriter::Write(ds, out).ok());

  std::istringstream in(out.str());
  auto parsed = NTriplesReader::Read(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_triples(), 2u);
  EXPECT_TRUE(parsed->dict().Contains("y:wasBornIn"));
}

TEST(NTriples, SkipsCommentsAndBlankLines) {
  std::istringstream in("# comment\n\n s p o .\n s2 p o2\n");
  auto parsed = NTriplesReader::Read(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->num_triples(), 2u);
}

TEST(NTriples, RejectsMalformedLines) {
  std::istringstream in("s p\n");
  auto parsed = NTriplesReader::Read(in);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsParseError());
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos);
}

TEST(NTriples, FileIoErrors) {
  EXPECT_TRUE(NTriplesReader::ReadFile("/nonexistent/path.nt")
                  .status()
                  .IsIoError());
  Dataset ds;
  EXPECT_TRUE(
      NTriplesWriter::WriteFile(ds, "/nonexistent/dir/out.nt").IsIoError());
}

TEST(NTriples, FileRoundTrip) {
  Dataset ds;
  ds.Add("a", "p", "b");
  const std::string path = ::testing::TempDir() + "/dskg_roundtrip.nt";
  ASSERT_TRUE(NTriplesWriter::WriteFile(ds, path).ok());
  auto parsed = NTriplesReader::ReadFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_triples(), 1u);
}

}  // namespace
}  // namespace dskg::rdf
