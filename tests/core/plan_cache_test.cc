// SharedPlanCache tests: one compilation per (text, plan_epoch) across
// sessions, monotone-epoch invalidation under online updates, parse
// reuse across epoch moves, LRU bounding, and the Session hook.

#include "core/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/dual_store.h"
#include "core/online_store.h"
#include "core/session.h"
#include "core/update.h"
#include "sparql/bindings.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace dskg::core {
namespace {

using sparql::BindingTable;

constexpr const char* kFlagship =
    "SELECT ?p WHERE { ?p bornIn berlin . "
    "?p advisor ?a . ?a bornIn berlin . }";
constexpr const char* kScan = "SELECT ?p ?c WHERE { ?p bornIn ?c . }";

TEST(SharedPlanCacheTest, OnePrepareAcrossCallers) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  SharedPlanCache cache;

  auto first = cache.GetOrPrepare(kFlagship, store);
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrPrepare(kFlagship, store);
  ASSERT_TRUE(second.ok());
  // Same epoch, same text: the very same plan object is served.
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().parses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedPlanCacheTest, CallerSuppliedParseSkipsParsing) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  SharedPlanCache cache;

  auto parsed = sparql::Parser::Parse(kFlagship);
  ASSERT_TRUE(parsed.ok());
  auto plan = cache.GetOrPrepare(kFlagship, store, &*parsed);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(cache.stats().parses, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SharedPlanCacheTest, ParseErrorSurfaces) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  SharedPlanCache cache;
  auto r = cache.GetOrPrepare("SELEC nope", store);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SharedPlanCacheTest, EpochMoveInvalidatesButReusesParse) {
  rdf::Dataset initial = testing::SmallPeopleGraph();
  OnlineStore store(initial, {});
  SharedPlanCache cache;

  std::shared_ptr<const PreparedPlan> plan_before;
  uint64_t epoch_before = 0;
  {
    auto guard = store.Read();
    auto before = cache.GetOrPrepare(kFlagship, guard.store());
    ASSERT_TRUE(before.ok());
    plan_before = *before;
    epoch_before = plan_before->plan_epoch;
  }  // drop the pin so the applier can reclaim

  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Insert("eve", "bornIn", "berlin"));
  batch.ops.push_back(UpdateOp::Insert("eve", "advisor", "alice"));
  ASSERT_TRUE(store.ApplyUpdates(batch).ok());

  auto guard2 = store.Read();
  ASSERT_GT(guard2.store().plan_epoch(), epoch_before);
  auto after = cache.GetOrPrepare(kFlagship, guard2.store());
  ASSERT_TRUE(after.ok());
  EXPECT_GT((*after)->plan_epoch, epoch_before);
  EXPECT_NE(plan_before.get(), after->get());

  const SharedPlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.invalidations, 1u);
  // The epoch move re-planned without re-parsing.
  EXPECT_EQ(s.parses, 1u);
  // The caller's old shared_ptr stays valid after replacement.
  EXPECT_EQ(plan_before->plan_epoch, epoch_before);
}

TEST(SharedPlanCacheTest, LruBoundEvictsOldestText) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  SharedPlanCache cache(/*capacity=*/2);

  ASSERT_TRUE(cache.GetOrPrepare(kFlagship, store).ok());
  ASSERT_TRUE(cache.GetOrPrepare(kScan, store).ok());
  // Touch the flagship so the scan is the LRU victim.
  ASSERT_TRUE(cache.GetOrPrepare(kFlagship, store).ok());
  ASSERT_TRUE(
      cache.GetOrPrepare("SELECT ?a WHERE { ?p advisor ?a . }", store).ok());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The evicted scan re-prepares (a miss), the retained flagship hits.
  const uint64_t misses_before = cache.stats().misses;
  ASSERT_TRUE(cache.GetOrPrepare(kFlagship, store).ok());
  EXPECT_EQ(cache.stats().misses, misses_before);
  ASSERT_TRUE(cache.GetOrPrepare(kScan, store).ok());
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(SharedPlanCacheTest, ConcurrentCallersAllGetValidPlans) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  SharedPlanCache cache;

  constexpr int kThreads = 8;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const char* text = (t % 2 == 0) ? kFlagship : kScan;
      for (int i = 0; i < 50; ++i) {
        auto plan = cache.GetOrPrepare(text, store);
        if (plan.ok() && (*plan)->plan_epoch == store.plan_epoch()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok_count.load(), kThreads * 50);
  const SharedPlanCache::Stats s = cache.stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<uint64_t>(kThreads) * 50);
  // Lost prepare races cost duplicate work, never a wrong answer.
  EXPECT_GE(s.misses, 2u);
}

TEST(SharedPlanCacheTest, SessionsShareOneCompilation) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  SharedPlanCache cache;

  Session alice(&store);
  Session bob(&store);
  alice.set_shared_plan_cache(&cache);
  bob.set_shared_plan_cache(&cache);

  auto a = alice.Execute(kFlagship);
  ASSERT_TRUE(a.ok());
  auto b = bob.Execute(kFlagship);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(BindingTable::SameRows(a->result, b->result));

  // Alice missed (first compile); Bob hit the shared entry.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Re-execution within a session stays on the lock-free per-entry fast
  // path and never consults the shared cache again.
  auto prepared = alice.Prepare(kFlagship);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->ExecuteAll().ok());
  EXPECT_EQ(cache.stats().hits, 1u);

  // An uncached session still produces identical rows.
  Session lone(&store);
  auto c = lone.Execute(kFlagship);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(BindingTable::SameRows(a->result, c->result));
}

TEST(SharedPlanCacheTest, SessionRevalidatesThroughSharedCacheOnUpdates) {
  rdf::Dataset initial = testing::SmallPeopleGraph();
  OnlineStore store(initial, {});
  SharedPlanCache cache;
  Session session(&store);
  session.set_shared_plan_cache(&cache);

  auto prepared = session.Prepare(kFlagship);
  ASSERT_TRUE(prepared.ok());
  auto before = prepared->ExecuteAll();
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->result.NumRows(), 1u);

  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Insert("eve", "bornIn", "berlin"));
  batch.ops.push_back(UpdateOp::Insert("eve", "advisor", "alice"));
  ASSERT_TRUE(store.ApplyUpdates(batch).ok());

  auto after = prepared->ExecuteAll();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result.NumRows(), 2u);
  EXPECT_GE(session.stats().replans, 1u);
  EXPECT_GE(cache.stats().invalidations, 1u);
}

}  // namespace
}  // namespace dskg::core
