// DOTIL tests: Algorithm 1's transfer/keep/evict decisions, Algorithm 2's
// reward amortization, the counterfactual cutoff, and the value-aware
// eviction guard.

#include <gtest/gtest.h>

#include "core/dotil.h"
#include "core/identifier.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace dskg::core {
namespace {

using sparql::Parser;
using sparql::Query;

Query Complex(const std::string& text) {
  auto q = Parser::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  IdentifiedQuery split = ComplexSubqueryIdentifier::Identify(*q);
  EXPECT_TRUE(split.HasComplexSubquery()) << text;
  return *split.complex;
}

constexpr const char* kFlagship =
    "SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }";

class DotilTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = testing::SmallPeopleGraph();
    DualStoreConfig cfg;
    cfg.graph_capacity_triples = 9;  // bornIn (4) + advisor (3) fit
    store_ = std::make_unique<DualStore>(&ds_, cfg);
  }

  rdf::TermId Id(const std::string& s) { return ds_.dict().Lookup(s); }

  rdf::Dataset ds_;
  std::unique_ptr<DualStore> store_;
};

TEST_F(DotilTest, ColdStartTransfersWithHighProbability) {
  DotilConfig cfg;
  cfg.transfer_prob = 1.0;  // deterministic for the test
  DotilTuner tuner(cfg);
  CostMeter meter;
  ASSERT_TRUE(tuner.AfterBatch(store_.get(), {Complex(kFlagship)}, &meter)
                  .ok());
  EXPECT_TRUE(store_->IsResident(Id("bornIn")));
  EXPECT_TRUE(store_->IsResident(Id("advisor")));
  EXPECT_GT(meter.count(Op::kImportTriple), 0u);
  // Transferred partitions were trained with (state 0, action 1).
  EXPECT_GT(tuner.MatrixOf(Id("bornIn")).at(0, 1), 0.0);
  EXPECT_GT(tuner.MatrixOf(Id("advisor")).at(0, 1), 0.0);
}

TEST_F(DotilTest, ZeroProbabilityNeverTransfers) {
  DotilConfig cfg;
  cfg.transfer_prob = 0.0;
  DotilTuner tuner(cfg);
  CostMeter meter;
  ASSERT_TRUE(tuner.AfterBatch(store_.get(), {Complex(kFlagship)}, &meter)
                  .ok());
  EXPECT_FALSE(store_->IsResident(Id("bornIn")));
  EXPECT_EQ(tuner.num_trained(), 0u);
}

TEST_F(DotilTest, ResidentSetReinforcesKeeping) {
  DotilConfig cfg;
  cfg.transfer_prob = 1.0;
  DotilTuner tuner(cfg);
  CostMeter meter;
  const Query qc = Complex(kFlagship);
  ASSERT_TRUE(tuner.AfterBatch(store_.get(), {qc}, &meter).ok());
  const double q10_before = tuner.MatrixOf(Id("bornIn")).at(1, 0);
  ASSERT_TRUE(tuner.AfterBatch(store_.get(), {qc}, &meter).ok());
  EXPECT_GT(tuner.MatrixOf(Id("bornIn")).at(1, 0), q10_before);
}

TEST_F(DotilTest, RewardAmortizedByPredicateShare) {
  DotilConfig cfg;
  cfg.transfer_prob = 1.0;
  DotilTuner tuner(cfg);
  CostMeter meter;
  // bornIn appears in 2 of 3 patterns, advisor in 1 of 3.
  ASSERT_TRUE(tuner.AfterBatch(store_.get(), {Complex(kFlagship)}, &meter)
                  .ok());
  EXPECT_GT(tuner.MatrixOf(Id("bornIn")).at(0, 1),
            tuner.MatrixOf(Id("advisor")).at(0, 1));
}

TEST_F(DotilTest, Q00AndQ11StayZero) {
  DotilConfig cfg;
  cfg.transfer_prob = 1.0;
  DotilTuner tuner(cfg);
  CostMeter meter;
  const Query qc = Complex(kFlagship);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tuner.AfterBatch(store_.get(), {qc}, &meter).ok());
  }
  const auto sums = tuner.QMatrixSums();
  EXPECT_DOUBLE_EQ(sums[0], 0.0);  // Q00 pinned (paper Table 5 shape)
  EXPECT_DOUBLE_EQ(sums[3], 0.0);  // Q11 pinned
  EXPECT_GT(sums[1], 0.0);
  EXPECT_GT(sums[2], 0.0);
}

TEST_F(DotilTest, OversizedSetNeverTransfers) {
  DotilConfig cfg;
  cfg.transfer_prob = 1.0;
  DotilTuner tuner(cfg);
  CostMeter meter;
  // bornIn + advisor + likes = 11 > capacity 9: can never fit together.
  const Query qc = Complex(
      "SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . "
      "?p likes ?f . ?a likes ?f . }");
  ASSERT_TRUE(tuner.AfterBatch(store_.get(), {qc}, &meter).ok());
  EXPECT_EQ(store_->graph().used_triples(), 0u);
}

TEST_F(DotilTest, EvictionMakesRoomForMoreValuableSet) {
  DotilConfig cfg;
  cfg.transfer_prob = 1.0;
  DotilTuner tuner(cfg);
  CostMeter meter;
  // First: load the likes+genre set (6 triples).
  const Query co_likes = Complex(
      "SELECT ?a WHERE { ?a likes ?f . ?a likes ?f2 . "
      "?f genre drama . ?f2 genre comedy . }");
  ASSERT_TRUE(tuner.AfterBatch(store_.get(), {co_likes}, &meter).ok());
  ASSERT_TRUE(store_->IsResident(Id("likes")));
  // Then: the flagship set (7 triples) needs room; eviction must kick in
  // (capacity 9, used 6).
  ASSERT_TRUE(tuner.AfterBatch(store_.get(), {Complex(kFlagship)}, &meter)
                  .ok());
  EXPECT_TRUE(store_->IsResident(Id("bornIn")));
  EXPECT_TRUE(store_->IsResident(Id("advisor")));
  EXPECT_FALSE(store_->IsResident(Id("likes")));
}

TEST_F(DotilTest, EvictionGuardProtectsValuablePartitions) {
  // Train the flagship set heavily, then offer a nearly-free point query
  // whose set needs eviction: with the guard the eviction is refused
  // (its probed value is below the flagship's keep-value), without it
  // (Algorithm 1 verbatim) the valuable partitions are flushed.
  const Query cheap_qc = Complex(
      "SELECT ?f WHERE { alice likes ?f . ?f genre drama . }");
  for (bool guard : {true, false}) {
    rdf::Dataset ds = testing::SmallPeopleGraph();
    DualStoreConfig scfg;
    scfg.graph_capacity_triples = 9;
    DualStore store(&ds, scfg);
    DotilConfig cfg;
    cfg.transfer_prob = 1.0;
    cfg.eviction_guard = guard;
    // Large lambda: keep-rewards reflect the full relational cost rather
    // than the λ·c1 cutoff, giving the guard a clear margin at toy scale.
    cfg.lambda = 50.0;
    DotilTuner tuner(cfg);
    CostMeter meter;
    const Query flagship = Complex(kFlagship);
    // Many reinforcements of the flagship set's keep-value.
    ASSERT_TRUE(tuner.AfterBatch(&store, {flagship}, &meter).ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(tuner.AfterBatch(&store, {flagship}, &meter).ok());
    }
    ASSERT_TRUE(tuner.AfterBatch(&store, {cheap_qc}, &meter).ok());
    const bool flagship_resident =
        store.IsResident(ds.dict().Lookup("bornIn")) &&
        store.IsResident(ds.dict().Lookup("advisor"));
    if (guard) {
      EXPECT_TRUE(flagship_resident) << "guard should refuse the eviction";
    } else {
      EXPECT_FALSE(flagship_resident)
          << "verbatim Algorithm 1 should thrash";
    }
  }
}

TEST_F(DotilTest, MatrixOfUnknownPartitionIsZero) {
  DotilTuner tuner;
  const QMatrix m = tuner.MatrixOf(42);
  EXPECT_EQ(m.Flat(), (std::array<double, 4>{0, 0, 0, 0}));
}

TEST_F(DotilTest, SinglePredicateSubqueriesIgnored) {
  DotilConfig cfg;
  cfg.transfer_prob = 1.0;
  DotilTuner tuner(cfg);
  CostMeter meter;
  Query qc;
  auto parsed = Parser::Parse("SELECT ?a WHERE { ?a likes ?f . ?b likes ?f }");
  ASSERT_TRUE(parsed.ok());
  // Both patterns share one predicate -> partition set of size 1.
  ASSERT_TRUE(tuner.AfterBatch(store_.get(), {*parsed}, &meter).ok());
  EXPECT_EQ(store_->graph().used_triples(), 0u);
}

TEST_F(DotilTest, DeterministicAcrossRuns) {
  auto run_once = [&]() {
    rdf::Dataset ds = testing::SmallPeopleGraph();
    DualStoreConfig scfg;
    scfg.graph_capacity_triples = 9;
    DualStore store(&ds, scfg);
    DotilConfig cfg;
    cfg.seed = 99;
    DotilTuner tuner(cfg);
    CostMeter meter;
    EXPECT_TRUE(
        tuner.AfterBatch(&store, {Complex(kFlagship)}, &meter).ok());
    return tuner.QMatrixSums();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dskg::core
