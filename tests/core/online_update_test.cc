// Online-update subsystem tests.
//
// The headline property (ISSUE acceptance): queries running concurrently
// with `OnlineStore::ApplyUpdates` return results identical to *some*
// serial apply-then-query ordering — snapshot-per-batch consistency — on
// both the hand-checkable SmallPeopleGraph and a generated YAGO graph.
// The concurrent tests are also the ThreadSanitizer CI job's main load.
//
// Below that, `DualStore::ApplyUpdates` unit tests pin the cross-structure
// consistency contract: triple table + all three indexes, per-predicate
// statistics, dataset + dictionary usage counts, resident graph
// partitions, and the materialized-view catalog.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dotil.h"
#include "core/dual_store.h"
#include "core/online_store.h"
#include "core/runner.h"
#include "core/update.h"
#include "sparql/parser.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/templates.h"
#include "workload/update_stream.h"
#include "workload/workload.h"

namespace dskg::core {
namespace {

using rdf::TermId;
using sparql::BindingTable;
using sparql::Parser;
using sparql::Query;

// ---- helpers --------------------------------------------------------------

Query Parse(const char* text) {
  auto q = Parser::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).ValueOrDie();
}

/// Order-insensitive, id-free canonical form of a result (rows decoded
/// through the dictionary that produced them, then sorted).
std::string Canon(const BindingTable& t, const rdf::Dictionary& dict) {
  std::vector<std::string> rows;
  rows.reserve(t.NumRows());
  for (const auto row : t.Rows()) {
    std::string r;
    for (TermId id : row) {
      r += dict.TermOf(id);
      r += '|';
    }
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& c : t.columns) {
    out += c;
    out += ',';
  }
  out += '#';
  for (const std::string& r : rows) {
    out += r;
    out += ';';
  }
  return out;
}

/// Per-query canonical results of every batch-prefix snapshot: entry k
/// holds the results after serially applying the first k batches to a
/// fresh store. This is the "some serial ordering" oracle.
void BuildSnapshotOracle(const rdf::Dataset& base, const DualStoreConfig& cfg,
                         const std::vector<Query>& queries,
                         const UpdateLog& log,
                         const std::vector<std::string>& resident_partitions,
                         std::vector<std::vector<std::string>>* oracle) {
  rdf::Dataset ds = base.Clone();
  DualStore store(&ds, cfg);
  CostMeter scratch;
  for (const std::string& p : resident_partitions) {
    const TermId id = ds.dict().Lookup(p);
    ASSERT_NE(id, rdf::kInvalidTermId) << p;
    ASSERT_TRUE(store.MigratePartition(id, &scratch).ok()) << p;
  }
  for (uint64_t k = 0; k <= log.size(); ++k) {
    std::vector<std::string> per_query;
    for (const Query& q : queries) {
      auto exec = store.Process(q);
      ASSERT_TRUE(exec.ok()) << exec.status();
      per_query.push_back(Canon(exec->result, store.dict()));
    }
    oracle->push_back(std::move(per_query));
    if (k < log.size()) {
      auto applied = store.ApplyUpdates(log.at(k), &scratch);
      ASSERT_TRUE(applied.ok()) << applied.status();
    }
  }
}

/// Runs readers hammering `store` with `queries` while this thread (the
/// single injector) publishes `log` through `num_shards` appliers, then
/// asserts every observed result matches some batch-prefix snapshot in
/// `oracle` (built once by the caller from the serial store).
void RunConcurrentShardedPhase(
    const rdf::Dataset& base, DualStoreConfig cfg, int num_shards,
    const std::vector<Query>& queries, const UpdateLog& log,
    const std::vector<std::string>& resident_partitions,
    const std::vector<std::vector<std::string>>& oracle) {
  SCOPED_TRACE("num_shards=" + std::to_string(num_shards));
  cfg.num_shards = num_shards;
  OnlineStore store(base, cfg);
  ASSERT_EQ(store.num_shards(), num_shards);
  if (!resident_partitions.empty()) {
    ASSERT_TRUE(store
                    .TuneExclusive([&](DualStore* s) {
                      CostMeter scratch;
                      for (const std::string& p : resident_partitions) {
                        DSKG_RETURN_NOT_OK(s->MigratePartition(
                            s->dict().Lookup(p), &scratch));
                      }
                      return Status::OK();
                    })
                    .ok());
  }

  struct Observation {
    size_t query = 0;
    std::string canon;
  };
  std::atomic<bool> stop{false};
  const int kReaders = 4;
  std::vector<std::vector<Observation>> observed(kReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t qi = static_cast<size_t>(r);  // staggered start
      while (!stop.load(std::memory_order_acquire)) {
        qi = (qi + 1) % queries.size();
        // Process() executes against the guard's pinned snapshot — the
        // only read mode that is safe while shard appliers run. The
        // guard stays alive through result decoding, so the epoch pin
        // also protects the dictionary spans the rows point into.
        OnlineStore::ReadGuard guard = store.Read();
        auto exec = guard.Process(queries[qi]);
        if (!exec.ok()) {
          observed[r].push_back({qi, "ERROR: " + exec.status().ToString()});
          return;
        }
        observed[r].push_back(
            {qi, Canon(exec->result, guard.store().dict())});
      }
    });
  }

  CostMeter update_meter;
  for (uint64_t k = 0; k < log.size(); ++k) {
    auto applied = store.ApplyUpdates(log.at(k), &update_meter);
    ASSERT_TRUE(applied.ok()) << applied.status();
    // Give readers a slice of every snapshot (not required for
    // correctness — only for coverage of intermediate prefixes).
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  size_t total = 0;
  for (int r = 0; r < kReaders; ++r) {
    for (const Observation& ob : observed[r]) {
      ++total;
      const bool matches_some_prefix = [&] {
        for (uint64_t k = 0; k <= log.size(); ++k) {
          if (oracle[k][ob.query] == ob.canon) return true;
        }
        return false;
      }();
      ASSERT_TRUE(matches_some_prefix)
          << "reader " << r << " query " << ob.query
          << " saw a result matching no serial snapshot:\n  " << ob.canon;
    }
  }
  EXPECT_GT(total, 0u);

  // Final convergence: the published snapshot equals the all-batches
  // serial state, and stays equal across an empty-batch publish (which
  // still runs the full capture/publish/drain/reclaim cycle).
  for (int publish = 0; publish < 2; ++publish) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      OnlineStore::ReadGuard guard = store.Read();
      auto exec = guard.Process(queries[qi]);
      ASSERT_TRUE(exec.ok()) << exec.status();
      EXPECT_EQ(Canon(exec->result, guard.store().dict()),
                oracle[log.size()][qi])
          << "query " << qi << " after " << publish << " extra publishes";
    }
    ASSERT_TRUE(store.ApplyUpdates(UpdateBatch{}, &update_meter).ok());
  }

  // Crash-free drain: every batch completed its post-publish
  // reclamation, so no copy-on-write garbage is left pending and the
  // store is not poisoned.
  EXPECT_TRUE(store.poison_status().ok());
  EXPECT_EQ(store.active().table().PendingNodes(), 0u);
  EXPECT_EQ(store.applied_batches(), log.size() + 2);
}

/// Full matrix: one serial prefix oracle, then the concurrent phase at
/// every requested shard count (the same oracle must hold at each — the
/// injector resolves ids in op order, so shard routing is invisible).
void RunConcurrentEquivalence(
    const rdf::Dataset& base, const DualStoreConfig& cfg,
    const std::vector<Query>& queries, const UpdateLog& log,
    const std::vector<std::string>& resident_partitions = {},
    const std::vector<int>& shard_counts = {1, 2, 4}) {
  std::vector<std::vector<std::string>> oracle;
  BuildSnapshotOracle(base, cfg, queries, log, resident_partitions, &oracle);
  ASSERT_EQ(oracle.size(), log.size() + 1);
  for (int n : shard_counts) {
    RunConcurrentShardedPhase(base, cfg, n, queries, log,
                              resident_partitions, oracle);
  }
}

// ---- DualStore::ApplyUpdates unit tests -----------------------------------

class ApplyUpdatesTest : public ::testing::Test {
 protected:
  ApplyUpdatesTest() : ds_(testing::SmallPeopleGraph()) {
    DualStoreConfig cfg;
    cfg.graph_capacity_triples = 8;
    store_ = std::make_unique<DualStore>(&ds_, cfg);
  }

  TermId Id(const std::string& term) { return ds_.dict().Lookup(term); }

  rdf::Dataset ds_;
  std::unique_ptr<DualStore> store_;
};

TEST_F(ApplyUpdatesTest, InsertAndDeleteKeepTableAndDatasetAligned) {
  const uint64_t before = store_->table().size();
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Insert("eve", "bornIn", "berlin"));
  batch.ops.push_back(UpdateOp::Insert("alice", "bornIn", "berlin"));  // dup
  batch.ops.push_back(UpdateOp::Delete("dave", "likes", "film2"));
  batch.ops.push_back(UpdateOp::Delete("zed", "foo", "bar"));  // unknown
  CostMeter meter;
  auto res = store_->ApplyUpdates(batch, &meter);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->inserted, 1u);
  EXPECT_EQ(res->deleted, 1u);
  EXPECT_EQ(store_->table().size(), before);  // +1 -1
  EXPECT_EQ(ds_.num_triples(), before);
  EXPECT_EQ(meter.count(Op::kInsertTuple), 1u);
  EXPECT_EQ(meter.count(Op::kRemoveTuple), 1u);

  auto gone = store_->Process("SELECT ?f WHERE { dave likes ?f . }");
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->result.empty());
  auto there = store_->Process("SELECT ?p WHERE { ?p bornIn berlin . }");
  ASSERT_TRUE(there.ok());
  EXPECT_EQ(there->result.NumRows(), 3u);  // alice, bob, eve
}

TEST_F(ApplyUpdatesTest, StatsDecayExactlyOnDelete) {
  const TermId born_in = Id("bornIn");
  const auto before = store_->table().StatsOf(born_in);
  EXPECT_EQ(before.num_triples, 4u);
  EXPECT_EQ(before.num_distinct_objects, 2u);  // berlin, paris

  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Delete("carol", "bornIn", "paris"));
  batch.ops.push_back(UpdateOp::Delete("dave", "bornIn", "paris"));
  ASSERT_TRUE(store_->ApplyUpdates(batch).ok());

  const auto after = store_->table().StatsOf(born_in);
  EXPECT_EQ(after.num_triples, 2u);
  EXPECT_EQ(after.num_distinct_subjects, 2u);  // alice, bob
  EXPECT_EQ(after.num_distinct_objects, 1u);   // paris fully gone
}

TEST_F(ApplyUpdatesTest, DeleteThenReinsertWithinOneBatch) {
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Delete("alice", "likes", "film1"));
  batch.ops.push_back(UpdateOp::Insert("alice", "likes", "film1"));
  batch.ops.push_back(UpdateOp::Insert("gina", "bornIn", "paris"));
  batch.ops.push_back(UpdateOp::Delete("gina", "bornIn", "paris"));
  const uint64_t triples_before = ds_.num_triples();
  auto res = store_->ApplyUpdates(batch);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(ds_.num_triples(), triples_before);
  CostMeter meter;
  EXPECT_TRUE(store_->table().Contains(
      {Id("alice"), Id("likes"), Id("film1")}, &meter));
  EXPECT_EQ(ds_.dict().Lookup("gina"), rdf::kInvalidTermId);  // reclaimed
}

TEST_F(ApplyUpdatesTest, ResidentGraphPartitionIsMaintained) {
  CostMeter meter;
  ASSERT_TRUE(store_->MigratePartition(Id("likes"), &meter).ok());
  EXPECT_EQ(store_->graph().PartitionTriples(Id("likes")), 4u);

  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Insert("eve", "likes", "film2"));
  batch.ops.push_back(UpdateOp::Delete("bob", "likes", "film1"));
  auto res = store_->ApplyUpdates(batch, &meter);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->graph_maintained, 2u);
  EXPECT_EQ(store_->graph().PartitionTriples(Id("likes")), 4u);  // +1 -1

  // The graph copy answers with the new knowledge (Case 1 route).
  auto exec = store_->Process("SELECT ?p WHERE { ?p likes film2 . }");
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->result.NumRows(), 3u);  // carol, dave, eve
}

TEST_F(ApplyUpdatesTest, DictionaryReclaimsAndRecyclesTerms) {
  rdf::Dictionary& dict = ds_.mutable_dict();
  const TermId film2 = Id("film2");
  const TermId comedy = Id("comedy");
  EXPECT_GT(dict.RefCount(film2), 0u);

  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Delete("carol", "likes", "film2"));
  batch.ops.push_back(UpdateOp::Delete("dave", "likes", "film2"));
  batch.ops.push_back(UpdateOp::Delete("film2", "genre", "comedy"));
  ASSERT_TRUE(store_->ApplyUpdates(batch).ok());
  // film2 and comedy lost their last uses: both forgotten and reclaimed.
  EXPECT_EQ(dict.Lookup("film2"), rdf::kInvalidTermId);
  EXPECT_EQ(dict.Lookup("comedy"), rdf::kInvalidTermId);
  EXPECT_EQ(dict.RefCount(film2), 0u);
  EXPECT_EQ(dict.free_ids(), 2u);

  // Freed ids are recycled LIFO by fresh interns (comedy was freed last).
  UpdateBatch next;
  next.ops.push_back(UpdateOp::Insert("alice", "likes", "film3"));
  ASSERT_TRUE(store_->ApplyUpdates(next).ok());
  EXPECT_EQ(dict.Lookup("film3"), comedy);
  auto exec = store_->Process("SELECT ?p WHERE { ?p likes film3 . }");
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->result.NumRows(), 1u);
}

TEST(ApplyUpdatesViewsTest, TouchedPredicatesInvalidateViews) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStoreConfig cfg;
  cfg.use_graph = false;
  cfg.use_views = true;
  cfg.views_budget_rows = 100;
  DualStore store(&ds, cfg);

  CostMeter meter;
  const Query vq = Parse(
      "SELECT ?p ?c WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }");
  ASSERT_TRUE(store.views()->CreateView(vq, &meter).ok());
  const Query other = Parse("SELECT ?p ?f WHERE { ?p likes ?f . }");
  ASSERT_TRUE(store.views()->CreateView(other, &meter).ok());
  ASSERT_EQ(store.views()->num_views(), 2u);

  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Insert("eve", "advisor", "alice"));
  auto res = store.ApplyUpdates(batch, &meter);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(res->views_dropped, 1u);  // advisor view gone, likes view kept
  EXPECT_EQ(store.views()->num_views(), 1u);
  EXPECT_TRUE(store.views()->HasViewFor(other.patterns));
}

// ---- OnlineStore: snapshot equivalence under concurrency ------------------

std::vector<Query> SmallQueries() {
  return {
      Parse("SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . "
            "?a bornIn ?c . }"),
      Parse("SELECT ?p ?f WHERE { ?p likes ?f . ?f genre drama . }"),
      Parse("SELECT ?s WHERE { ?s bornIn berlin . }"),
      Parse("SELECT ?x ?y WHERE { ?x advisor ?y . ?y likes ?f . }"),
      Parse("SELECT ?p WHERE { ?p bornIn paris . ?p likes ?f . "
            "?f genre comedy . }"),
  };
}

UpdateLog SmallLog() {
  UpdateLog log;
  {
    UpdateBatch b;
    b.ops.push_back(UpdateOp::Insert("eve", "bornIn", "berlin"));
    b.ops.push_back(UpdateOp::Insert("eve", "likes", "film1"));
    b.ops.push_back(UpdateOp::Delete("alice", "likes", "film1"));
    log.Append(std::move(b));
  }
  {
    UpdateBatch b;
    b.ops.push_back(UpdateOp::Delete("eve", "bornIn", "berlin"));
    b.ops.push_back(UpdateOp::Insert("frank", "advisor", "alice"));
    b.ops.push_back(UpdateOp::Insert("frank", "bornIn", "berlin"));
    b.ops.push_back(UpdateOp::Insert("frank", "likes", "film2"));
    log.Append(std::move(b));
  }
  {
    UpdateBatch b;
    b.ops.push_back(UpdateOp::Delete("carol", "advisor", "alice"));
    b.ops.push_back(UpdateOp::Insert("carol", "advisor", "alice"));
    b.ops.push_back(UpdateOp::Insert("gina", "bornIn", "paris"));
    b.ops.push_back(UpdateOp::Delete("gina", "bornIn", "paris"));
    b.ops.push_back(UpdateOp::Delete("dave", "likes", "film2"));
    log.Append(std::move(b));
  }
  {
    UpdateBatch b;
    b.ops.push_back(UpdateOp::Insert("alice", "likes", "film1"));
    b.ops.push_back(UpdateOp::Delete("film1", "genre", "drama"));
    log.Append(std::move(b));
  }
  return log;
}

TEST(OnlineEquivalenceTest, SmallPeopleGraphRelationalOnly) {
  DualStoreConfig cfg;
  cfg.use_graph = false;
  RunConcurrentEquivalence(testing::SmallPeopleGraph(), cfg, SmallQueries(),
                           SmallLog());
}

TEST(OnlineEquivalenceTest, SmallPeopleGraphWithResidentPartitions) {
  DualStoreConfig cfg;
  cfg.graph_capacity_triples = 16;
  RunConcurrentEquivalence(testing::SmallPeopleGraph(), cfg, SmallQueries(),
                           SmallLog(), {"likes", "genre"});
}

TEST(OnlineEquivalenceTest, RandomizedYagoStream) {
  workload::YagoConfig gen;
  gen.target_triples = 6000;
  rdf::Dataset ds = workload::GenerateYago(gen);

  // Queries: the YAGO templates plus random BGPs anchored on the data.
  workload::WorkloadBuilder builder(&ds);
  auto w = builder.Build("yago", workload::YagoTemplates(), {});
  ASSERT_TRUE(w.ok()) << w.status();
  std::vector<Query> queries;
  for (size_t i = 0; i < w->queries.size() && queries.size() < 6; i += 3) {
    queries.push_back(w->queries[i].query);
  }
  Rng rng(13);
  for (int i = 0; i < 6; ++i) {
    queries.push_back(testing::RandomBgp(ds, &rng));
  }

  workload::UpdateStreamConfig uc;
  uc.seed = 99;
  uc.num_batches = 4;
  uc.ops_per_batch = 250;
  uc.insert_fraction = 0.6;
  const UpdateLog log = workload::GenerateUpdateStream(ds, uc);
  ASSERT_EQ(log.size(), 4u);

  DualStoreConfig cfg;
  cfg.graph_capacity_triples = ds.num_triples();  // roomy: no eviction noise
  RunConcurrentEquivalence(ds, cfg, queries, log, {"y:wasBornIn"});
}

// Cross-shard fan-in: one batch whose ops span predicates owned by
// different shards must land identically to the serial store — result
// counters, exact op-count charges, and query-visible state.
TEST(OnlineEquivalenceTest, CrossShardFanInMatchesSerial) {
  rdf::Dataset base = testing::SmallPeopleGraph();
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Insert("eve", "bornIn", "berlin"));
  batch.ops.push_back(UpdateOp::Insert("eve", "likes", "film1"));
  batch.ops.push_back(UpdateOp::Delete("alice", "likes", "film1"));
  batch.ops.push_back(UpdateOp::Insert("alice", "likes", "film1"));
  batch.ops.push_back(UpdateOp::Insert("frank", "advisor", "alice"));
  batch.ops.push_back(UpdateOp::Delete("film1", "genre", "drama"));
  batch.ops.push_back(UpdateOp::Delete("zed", "foo", "bar"));  // unknown
  batch.ops.push_back(UpdateOp::Insert("film9", "genre", "noir"));

  DualStoreConfig cfg;
  cfg.graph_capacity_triples = 16;

  rdf::Dataset serial_ds = base.Clone();
  DualStore serial(&serial_ds, cfg);
  CostMeter scratch;
  ASSERT_TRUE(
      serial.MigratePartition(serial_ds.dict().Lookup("likes"), &scratch)
          .ok());
  CostMeter serial_meter;
  auto want = serial.ApplyUpdates(batch, &serial_meter);
  ASSERT_TRUE(want.ok()) << want.status();

  for (int shards : {1, 2, 4}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    DualStoreConfig scfg = cfg;
    scfg.num_shards = shards;
    OnlineStore store(base, scfg);
    ASSERT_TRUE(store
                    .TuneExclusive([&](DualStore* s) {
                      CostMeter m;
                      return s->MigratePartition(s->dict().Lookup("likes"),
                                                 &m);
                    })
                    .ok());
    CostMeter meter;
    auto got = store.ApplyUpdates(batch, &meter);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->inserted, want->inserted);
    EXPECT_EQ(got->deleted, want->deleted);
    EXPECT_EQ(got->graph_maintained, want->graph_maintained);
    // Op counts are shard-invariant integers; simulated micros are a
    // float sum whose addition order the shard-major merge fixes, so
    // they are bit-identical only at one shard.
    EXPECT_EQ(meter.count(Op::kInsertTuple),
              serial_meter.count(Op::kInsertTuple));
    EXPECT_EQ(meter.count(Op::kRemoveTuple),
              serial_meter.count(Op::kRemoveTuple));
    EXPECT_EQ(meter.count(Op::kImportTriple),
              serial_meter.count(Op::kImportTriple));
    EXPECT_EQ(meter.count(Op::kEvictTriple),
              serial_meter.count(Op::kEvictTriple));
    if (shards == 1) {
      EXPECT_EQ(meter.sim_micros(), serial_meter.sim_micros());
    } else {
      EXPECT_NEAR(meter.sim_micros(), serial_meter.sim_micros(),
                  1e-9 * (1.0 + serial_meter.sim_micros()));
    }
    for (const Query& q : SmallQueries()) {
      auto s = serial.Process(q);
      auto o = store.Process(q);
      ASSERT_TRUE(s.ok() && o.ok());
      EXPECT_EQ(Canon(o->result, store.active().dict()),
                Canon(s->result, serial.dict()));
    }
    EXPECT_EQ(store.active().table().PendingNodes(), 0u);
  }
}

// Quiescent shard invariance on a generated stream: per-batch result
// counters and final query-visible state are identical at every shard
// count (and to the serial reference), because the injector resolves
// ids in op order and each shard applies its ops in op order.
TEST(OnlineEquivalenceTest, YagoStreamCountsAreShardCountInvariant) {
  workload::YagoConfig gen;
  gen.target_triples = 6000;
  rdf::Dataset ds = workload::GenerateYago(gen);

  workload::UpdateStreamConfig uc;
  uc.seed = 7;
  uc.num_batches = 4;
  uc.ops_per_batch = 300;
  uc.insert_fraction = 0.55;
  const UpdateLog log = workload::GenerateUpdateStream(ds, uc);

  DualStoreConfig cfg;
  cfg.graph_capacity_triples = ds.num_triples();

  rdf::Dataset serial_ds = ds.Clone();
  DualStore serial(&serial_ds, cfg);
  CostMeter scratch;
  ASSERT_TRUE(serial
                  .MigratePartition(serial_ds.dict().Lookup("y:wasBornIn"),
                                    &scratch)
                  .ok());
  std::vector<UpdateResult> serial_results;
  CostMeter serial_meter;
  for (uint64_t k = 0; k < log.size(); ++k) {
    auto r = serial.ApplyUpdates(log.at(k), &serial_meter);
    ASSERT_TRUE(r.ok()) << r.status();
    serial_results.push_back(*r);
  }

  Rng rng(29);
  std::vector<Query> probes;
  for (int i = 0; i < 5; ++i) probes.push_back(testing::RandomBgp(ds, &rng));

  for (int shards : {1, 2, 4}) {
    SCOPED_TRACE("num_shards=" + std::to_string(shards));
    DualStoreConfig scfg = cfg;
    scfg.num_shards = shards;
    OnlineStore store(ds, scfg);
    ASSERT_TRUE(store
                    .TuneExclusive([&](DualStore* s) {
                      CostMeter m;
                      return s->MigratePartition(
                          s->dict().Lookup("y:wasBornIn"), &m);
                    })
                    .ok());
    CostMeter meter;
    for (uint64_t k = 0; k < log.size(); ++k) {
      auto r = store.ApplyUpdates(log.at(k), &meter);
      ASSERT_TRUE(r.ok()) << r.status();
      EXPECT_EQ(r->inserted, serial_results[k].inserted) << "batch " << k;
      EXPECT_EQ(r->deleted, serial_results[k].deleted) << "batch " << k;
      EXPECT_EQ(r->graph_maintained, serial_results[k].graph_maintained)
          << "batch " << k;
    }
    if (shards == 1) {
      EXPECT_EQ(meter.sim_micros(), serial_meter.sim_micros());
    }
    for (const Query& q : probes) {
      auto s = serial.Process(q);
      auto o = store.Process(q);
      ASSERT_TRUE(s.ok() && o.ok());
      EXPECT_EQ(Canon(o->result, store.active().dict()),
                Canon(s->result, serial.dict()));
    }
    EXPECT_EQ(store.active().table().PendingNodes(), 0u);
    EXPECT_TRUE(store.poison_status().ok());
  }
}

// ---- WorkloadRunner::RunOnline --------------------------------------------

TEST(RunOnlineTest, InterleavesUpdatesAndRetunesOnDrift) {
  workload::YagoConfig gen;
  gen.target_triples = 8000;
  rdf::Dataset ds = workload::GenerateYago(gen);
  workload::WorkloadBuilder builder(&ds);
  auto w = builder.Build("yago", workload::YagoTemplates(), {});
  ASSERT_TRUE(w.ok()) << w.status();

  DualStoreConfig cfg;
  cfg.graph_capacity_triples = ds.num_triples() / 4;
  OnlineStore store(ds, cfg);

  workload::UpdateStreamConfig uc;
  uc.num_batches = 5;
  uc.ops_per_batch = 400;
  const UpdateLog updates = workload::GenerateUpdateStream(ds, uc);

  DotilTuner tuner;
  WorkloadRunner runner(/*store=*/nullptr, &tuner);
  OnlineRunOptions opt;
  opt.num_batches = 5;
  opt.drift_threshold = 0.0;  // re-tune after every window
  ThreadPool pool(4);
  auto m = runner.RunOnline(&store, *w, updates, opt, &pool);
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->batches.size(), 5u);
  EXPECT_GT(m->TotalTtiMicros(), 0.0);
  EXPECT_GT(m->TotalUpdateMicros(), 0.0);
  EXPECT_GT(m->TotalInserted(), 0u);
  EXPECT_GT(m->TotalDeleted(), 0u);
  EXPECT_EQ(m->Retunes(), 5);  // threshold 0: every window re-tunes
  EXPECT_EQ(store.applied_batches(), updates.size());
  size_t traced_queries = 0;
  for (const OnlineBatchMetrics& b : m->batches) {
    traced_queries += b.queries.size();
  }
  EXPECT_EQ(traced_queries, w->queries.size());
}

TEST(RunOnlineTest, SerialPathAndDisabledTuningWork) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStoreConfig cfg;
  cfg.use_graph = false;
  OnlineStore store(ds, cfg);

  workload::Workload w;
  w.name = "small";
  for (const Query& q : SmallQueries()) {
    workload::WorkloadQuery wq;
    wq.query = q;
    w.queries.push_back(std::move(wq));
  }
  const UpdateLog log = SmallLog();

  WorkloadRunner runner(/*store=*/nullptr, /*tuner=*/nullptr);
  OnlineRunOptions opt;
  opt.num_batches = 2;
  auto m = runner.RunOnline(&store, w, log, opt, /*pool=*/nullptr);
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->batches.size(), 2u);
  EXPECT_EQ(m->Retunes(), 0);
  EXPECT_EQ(store.applied_batches(), log.size());
}

}  // namespace
}  // namespace dskg::core
