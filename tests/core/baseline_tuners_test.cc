// Baseline tuner tests: frequency packing (LRU), set packing (one-off /
// ideal), and the view-selection policy.

#include <gtest/gtest.h>

#include "core/baseline_tuners.h"
#include "core/identifier.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace dskg::core {
namespace {

using sparql::Parser;
using sparql::Query;

Query Q(const std::string& text) {
  auto q = Parser::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return *q;
}

class BaselineTunersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = testing::SmallPeopleGraph();
    DualStoreConfig cfg;
    cfg.graph_capacity_triples = 9;
    store_ = std::make_unique<DualStore>(&ds_, cfg);
  }

  rdf::TermId Id(const std::string& s) { return ds_.dict().Lookup(s); }

  rdf::Dataset ds_;
  std::unique_ptr<DualStore> store_;
};

TEST_F(BaselineTunersTest, NoopTunerDoesNothing) {
  NoopTuner tuner;
  CostMeter meter;
  ASSERT_TRUE(tuner
                  .AfterBatch(store_.get(),
                              {Q("SELECT ?a WHERE { ?a bornIn ?c . "
                                 "?a advisor ?x . }")},
                              &meter)
                  .ok());
  EXPECT_EQ(store_->graph().used_triples(), 0u);
  EXPECT_EQ(tuner.name(), "noop");
}

TEST_F(BaselineTunersTest, AccumulateCountsPerPredicate) {
  std::map<rdf::TermId, uint64_t> counts;
  AccumulatePartitionCounts(
      *store_,
      {Q("SELECT ?a WHERE { ?a bornIn ?c . ?a likes ?f . }"),
       Q("SELECT ?a WHERE { ?a bornIn ?c . }")},
      &counts);
  EXPECT_EQ(counts[Id("bornIn")], 2u);
  EXPECT_EQ(counts[Id("likes")], 1u);
}

TEST_F(BaselineTunersTest, FrequencyDesignLoadsTopPartitionsWithinBudget) {
  std::map<rdf::TermId, uint64_t> counts = {
      {Id("bornIn"), 10},   // size 4
      {Id("likes"), 5},     // size 4
      {Id("advisor"), 1},   // size 3 (no room after the first two)
  };
  CostMeter meter;
  ASSERT_TRUE(ApplyFrequencyDesign(store_.get(), counts, &meter).ok());
  EXPECT_TRUE(store_->IsResident(Id("bornIn")));
  EXPECT_TRUE(store_->IsResident(Id("likes")));
  EXPECT_FALSE(store_->IsResident(Id("advisor")));
}

TEST_F(BaselineTunersTest, FrequencyDesignEvictsStalePartitions) {
  CostMeter meter;
  ASSERT_TRUE(store_->MigratePartition(Id("genre"), &meter).ok());
  std::map<rdf::TermId, uint64_t> counts = {{Id("bornIn"), 3}};
  ASSERT_TRUE(ApplyFrequencyDesign(store_.get(), counts, &meter).ok());
  EXPECT_FALSE(store_->IsResident(Id("genre")));
  EXPECT_TRUE(store_->IsResident(Id("bornIn")));
}

TEST_F(BaselineTunersTest, SetDesignLoadsWholeSetsOnly) {
  // Flagship set (bornIn+advisor = 7) is more frequent than likes+genre
  // (6); only one fits in capacity 9 -> the frequent one, completely.
  std::vector<Query> foreseen = {
      Q("SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . }"),
      Q("SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . }"),
      Q("SELECT ?p WHERE { ?p likes ?f . ?f genre ?g . }"),
  };
  CostMeter meter;
  ASSERT_TRUE(ApplySetDesign(store_.get(), foreseen, &meter).ok());
  EXPECT_TRUE(store_->IsResident(Id("bornIn")));
  EXPECT_TRUE(store_->IsResident(Id("advisor")));
  EXPECT_FALSE(store_->IsResident(Id("likes")));
  EXPECT_FALSE(store_->IsResident(Id("genre")));
}

TEST_F(BaselineTunersTest, SetDesignSharesPartitionsBetweenSets) {
  // {bornIn, advisor} then {advisor, marriedTo}: the shared advisor
  // partition is counted once, so both sets fit (4+3+1 = 8 <= 9).
  std::vector<Query> foreseen = {
      Q("SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . }"),
      Q("SELECT ?p WHERE { ?p advisor ?a . ?p marriedTo ?s . }"),
  };
  CostMeter meter;
  ASSERT_TRUE(ApplySetDesign(store_.get(), foreseen, &meter).ok());
  EXPECT_TRUE(store_->IsResident(Id("bornIn")));
  EXPECT_TRUE(store_->IsResident(Id("advisor")));
  EXPECT_TRUE(store_->IsResident(Id("marriedTo")));
}

TEST_F(BaselineTunersTest, OneOffTunesOnceUpFront) {
  OneOffTuner tuner;
  CostMeter meter;
  ASSERT_TRUE(
      tuner
          .BeforeWorkload(
              store_.get(),
              {Q("SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . }")},
              &meter)
          .ok());
  EXPECT_TRUE(store_->IsResident(Id("bornIn")));
  // AfterBatch is a no-op for one-off mode.
  const uint64_t used = store_->graph().used_triples();
  ASSERT_TRUE(tuner
                  .AfterBatch(store_.get(),
                              {Q("SELECT ?p WHERE { ?p likes ?f . "
                                 "?f genre ?g . }")},
                              &meter)
                  .ok());
  EXPECT_EQ(store_->graph().used_triples(), used);
}

TEST_F(BaselineTunersTest, LruFollowsCumulativeFrequency) {
  LruTuner tuner;
  CostMeter meter;
  const Query likes = Q("SELECT ?p WHERE { ?p likes ?f . ?f genre ?g . }");
  const Query flagship =
      Q("SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . }");
  // Batch 1: only likes seen.
  ASSERT_TRUE(tuner.AfterBatch(store_.get(), {likes}, &meter).ok());
  EXPECT_TRUE(store_->IsResident(Id("likes")));
  // Batches 2-3: flagship dominates cumulative counts; capacity forces
  // the likes set out.
  ASSERT_TRUE(
      tuner.AfterBatch(store_.get(), {flagship, flagship}, &meter).ok());
  ASSERT_TRUE(
      tuner.AfterBatch(store_.get(), {flagship, flagship}, &meter).ok());
  EXPECT_TRUE(store_->IsResident(Id("bornIn")));
  EXPECT_TRUE(store_->IsResident(Id("advisor")));
}

TEST_F(BaselineTunersTest, IdealTunesForNextBatch) {
  IdealTuner tuner;
  CostMeter meter;
  ASSERT_TRUE(
      tuner
          .BeforeBatch(
              store_.get(),
              {Q("SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . }")},
              &meter)
          .ok());
  EXPECT_TRUE(store_->IsResident(Id("bornIn")));
  ASSERT_TRUE(
      tuner
          .BeforeBatch(store_.get(),
                       {Q("SELECT ?p WHERE { ?p likes ?f . ?f genre ?g . }")},
                       &meter)
          .ok());
  EXPECT_TRUE(store_->IsResident(Id("likes")));
  EXPECT_FALSE(store_->IsResident(Id("bornIn")));  // reshaped per batch
}

TEST(ViewsTunerTest, BuildsViewsForFrequentSignatures) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStoreConfig cfg;
  cfg.use_graph = false;
  cfg.use_views = true;
  cfg.views_budget_rows = 50;
  DualStore store(&ds, cfg);
  ViewsTuner tuner;
  CostMeter meter;
  const Query qc = Q(
      "SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }");
  ASSERT_TRUE(tuner.AfterBatch(&store, {qc, qc}, &meter).ok());
  EXPECT_EQ(store.views()->num_views(), 1u);
  // The view now answers the subquery.
  CostMeter qmeter;
  auto ans = store.views()->TryAnswer(qc.patterns, &qmeter);
  EXPECT_TRUE(ans.has_value());
}

TEST(ViewsTunerTest, RequiresViewsVariant) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStoreConfig cfg;  // use_views = false
  DualStore store(&ds, cfg);
  ViewsTuner tuner;
  CostMeter meter;
  EXPECT_TRUE(tuner.AfterBatch(&store, {}, &meter).IsFailedPrecondition());
}

}  // namespace
}  // namespace dskg::core
