// DualStore facade tests: construction, routing (Algorithm 3 cases),
// migration/eviction admin, the Algorithm 2 cost probes, and knowledge
// updates.

#include <gtest/gtest.h>

#include "core/dual_store.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace dskg::core {
namespace {

constexpr const char* kFlagship =
    "SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }";

class DualStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = testing::SmallPeopleGraph();
    DualStoreConfig cfg;
    cfg.graph_capacity_triples = 10;
    store_ = std::make_unique<DualStore>(&ds_, cfg);
  }

  rdf::TermId Id(const std::string& s) { return ds_.dict().Lookup(s); }

  rdf::Dataset ds_;
  std::unique_ptr<DualStore> store_;
};

TEST_F(DualStoreTest, LoadsEntireGraphIntoRelationalStore) {
  EXPECT_EQ(store_->table().size(), ds_.num_triples());
  EXPECT_EQ(store_->graph().used_triples(), 0u);  // graph starts empty
  EXPECT_GT(store_->load_micros(), 0.0);
}

TEST_F(DualStoreTest, Case3RelationalWhenGraphEmpty) {
  auto r = store_->Process(kFlagship);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->route, Route::kRelationalOnly);
  EXPECT_EQ(r->result.NumRows(), 2u);
  EXPECT_GT(r->rel_micros, 0.0);
  EXPECT_DOUBLE_EQ(r->graph_micros, 0.0);
}

TEST_F(DualStoreTest, Case1GraphOnlyWhenCovered) {
  CostMeter meter;
  ASSERT_TRUE(store_->MigratePartition(Id("bornIn"), &meter).ok());
  ASSERT_TRUE(store_->MigratePartition(Id("advisor"), &meter).ok());
  auto r = store_->Process(kFlagship);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->route, Route::kGraphOnly);
  EXPECT_EQ(r->result.NumRows(), 2u);
  EXPECT_GT(r->graph_micros, 0.0);
  EXPECT_DOUBLE_EQ(r->rel_micros, 0.0);
}

TEST_F(DualStoreTest, Case2DualStoreWhenOnlySubqueryCovered) {
  CostMeter meter;
  ASSERT_TRUE(store_->MigratePartition(Id("bornIn"), &meter).ok());
  ASSERT_TRUE(store_->MigratePartition(Id("advisor"), &meter).ok());
  // marriedTo is NOT resident: the query spans both stores.
  auto r = store_->Process(
      "SELECT ?s WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . "
      "?s marriedTo ?p . }");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->route, Route::kDualStore);
  ASSERT_EQ(r->result.NumRows(), 1u);  // alice marriedTo bob
  EXPECT_GT(r->graph_micros, 0.0);
  EXPECT_GT(r->rel_micros, 0.0);
  EXPECT_GT(r->migrate_micros, 0.0);
}

TEST_F(DualStoreTest, DualRouteAgreesWithRelationalRoute) {
  const char* query =
      "SELECT ?p ?s WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . "
      "?s marriedTo ?p . }";
  auto rel = store_->Process(query);
  ASSERT_TRUE(rel.ok());
  ASSERT_EQ(rel->route, Route::kRelationalOnly);

  CostMeter meter;
  ASSERT_TRUE(store_->MigratePartition(Id("bornIn"), &meter).ok());
  ASSERT_TRUE(store_->MigratePartition(Id("advisor"), &meter).ok());
  auto dual = store_->Process(query);
  ASSERT_TRUE(dual.ok());
  ASSERT_EQ(dual->route, Route::kDualStore);
  EXPECT_TRUE(sparql::BindingTable::SameRows(rel->result, dual->result));
}

TEST_F(DualStoreTest, MigrationRespectsBudget) {
  CostMeter meter;
  // bornIn (4) + advisor (3) + likes (4) = 11 > capacity 10.
  ASSERT_TRUE(store_->MigratePartition(Id("bornIn"), &meter).ok());
  ASSERT_TRUE(store_->MigratePartition(Id("advisor"), &meter).ok());
  EXPECT_TRUE(
      store_->MigratePartition(Id("likes"), &meter).IsCapacityExceeded());
  // Evicting advisor makes room.
  ASSERT_TRUE(store_->EvictPartition(Id("advisor"), &meter).ok());
  EXPECT_TRUE(store_->MigratePartition(Id("likes"), &meter).ok());
}

TEST_F(DualStoreTest, MigrationChargesTransferAndImport) {
  CostMeter meter;
  ASSERT_TRUE(store_->MigratePartition(Id("bornIn"), &meter).ok());
  EXPECT_EQ(meter.count(Op::kMigratePartitionTriple), 4u);
  EXPECT_EQ(meter.count(Op::kImportTriple), 4u);
}

TEST_F(DualStoreTest, MigrateErrors) {
  CostMeter meter;
  EXPECT_TRUE(store_->MigratePartition(999999, &meter).IsNotFound());
  ASSERT_TRUE(store_->MigratePartition(Id("bornIn"), &meter).ok());
  EXPECT_TRUE(
      store_->MigratePartition(Id("bornIn"), &meter).IsAlreadyExists());
}

TEST_F(DualStoreTest, PartitionSizeMatchesTable) {
  EXPECT_EQ(store_->PartitionSize(Id("bornIn")), 4u);
  EXPECT_EQ(store_->PartitionSize(Id("genre")), 2u);
  EXPECT_EQ(store_->PartitionSize(999999), 0u);
}

TEST_F(DualStoreTest, GraphQueryCostProbe) {
  CostMeter meter;
  ASSERT_TRUE(store_->MigratePartition(Id("bornIn"), &meter).ok());
  ASSERT_TRUE(store_->MigratePartition(Id("advisor"), &meter).ok());
  auto q = sparql::Parser::Parse(kFlagship);
  ASSERT_TRUE(q.ok());
  CostMeter probe;
  auto c1 = store_->GraphQueryCost(*q, &probe);
  ASSERT_TRUE(c1.ok()) << c1.status();
  EXPECT_GT(*c1, 0.0);
  EXPECT_GT(probe.sim_micros(), 0.0);  // charged to the tuning meter
}

TEST_F(DualStoreTest, CounterfactualCutoffCapsCost) {
  auto q = sparql::Parser::Parse(kFlagship);
  ASSERT_TRUE(q.ok());
  CostMeter probe;
  // Absurdly small budget: the relational run must be cut off at it.
  auto c2 = store_->RelationalQueryCostWithCutoff(*q, 0.1, &probe);
  ASSERT_TRUE(c2.ok()) << c2.status();
  EXPECT_DOUBLE_EQ(*c2, 0.1);
  // Generous budget: the actual cost comes back.
  CostMeter probe2;
  auto full = store_->RelationalQueryCostWithCutoff(*q, 1e9, &probe2);
  ASSERT_TRUE(full.ok());
  EXPECT_GT(*full, 0.1);
  EXPECT_LT(*full, 1e9);
}

TEST_F(DualStoreTest, InsertUpdatesBothStoresWhenResident) {
  CostMeter meter;
  ASSERT_TRUE(store_->MigratePartition(Id("likes"), &meter).ok());
  const uint64_t before = store_->graph().PartitionTriples(Id("likes"));
  ASSERT_TRUE(store_->Insert("eve", "likes", "film1", &meter).ok());
  EXPECT_EQ(store_->graph().PartitionTriples(Id("likes")), before + 1);
  // And queryable relationally immediately.
  auto r = store_->Process("SELECT ?p WHERE { ?p bornIn ?c . }");
  ASSERT_TRUE(r.ok());
  auto r2 = store_->Process("SELECT ?f WHERE { eve likes ?f . }");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->result.NumRows(), 1u);
}

TEST_F(DualStoreTest, InsertIntoNonResidentPartitionOnlyTouchesTable) {
  CostMeter meter;
  const uint64_t graph_before = store_->graph().used_triples();
  ASSERT_TRUE(store_->Insert("eve", "bornIn", "berlin", &meter).ok());
  EXPECT_EQ(store_->graph().used_triples(), graph_before);
  EXPECT_EQ(store_->table().size(), ds_.num_triples());
}

TEST_F(DualStoreTest, ParseErrorsSurface) {
  auto r = store_->Process("SELETC ?p WHERE { }");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(DualStoreVariants, ViewsVariantUsesViewRoute) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStoreConfig cfg;
  cfg.use_graph = false;
  cfg.use_views = true;
  cfg.views_budget_rows = 100;
  DualStore store(&ds, cfg);
  ASSERT_NE(store.views(), nullptr);

  // Materialize the flagship complex subquery as a view.
  auto q = sparql::Parser::Parse(kFlagship);
  ASSERT_TRUE(q.ok());
  auto split = ComplexSubqueryIdentifier::Identify(*q);
  ASSERT_TRUE(split.HasComplexSubquery());
  CostMeter meter;
  ASSERT_TRUE(store.views()->CreateView(*split.complex, &meter).ok());

  auto r = store.Process(kFlagship);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->route, Route::kViewAssisted);
  EXPECT_EQ(r->result.NumRows(), 2u);
}

TEST(DualStoreVariants, RdbOnlyNeverRoutesToGraph) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStoreConfig cfg;
  cfg.use_graph = false;
  DualStore store(&ds, cfg);
  auto r = store.Process(kFlagship);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->route, Route::kRelationalOnly);
}

}  // namespace
}  // namespace dskg::core
