/// Parallel-vs-serial equivalence: the whole value of the parallel
/// subsystem rests on it changing *nothing* about results or simulated
/// costs. These tests pin that down on the hand-checkable SmallPeopleGraph
/// and on a generated YAGO workload:
///
///   * `WorkloadRunner::RunParallel` must produce bit-identical metrics
///     (TTI, tuning, per-query traces) to `Run`;
///   * concurrent `DualStore::Process` must return the same binding
///     tables as serial calls;
///   * `Executor::ExecuteSharded` must return the same rows as `Execute`,
///     and identical scan/materialize costs on single-pattern queries;
///   * `TripleTable::ShardPattern`/`ScanShard` must partition exactly the
///     triples `ScanPattern` streams, in the same global order.

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dotil.h"
#include "core/dual_store.h"
#include "core/runner.h"
#include "gtest/gtest.h"
#include "relstore/executor.h"
#include "relstore/triple_table.h"
#include "sparql/parser.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/templates.h"
#include "workload/workload.h"

namespace dskg::core {
namespace {

using sparql::BindingTable;
using sparql::Parser;
using workload::Workload;
using workload::WorkloadQuery;

Workload SmallWorkload() {
  const char* texts[] = {
      "SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }",
      "SELECT ?p ?f WHERE { ?p likes ?f . ?f genre drama . }",
      "SELECT ?s WHERE { ?s bornIn berlin . }",
      "SELECT ?a ?b WHERE { ?a marriedTo ?b . }",
      "SELECT ?x ?y WHERE { ?x advisor ?y . ?y likes ?f . }",
      "SELECT ?p WHERE { ?p bornIn paris . ?p likes ?f . ?f genre comedy . }",
  };
  Workload w;
  w.name = "small";
  int idx = 0;
  for (const char* t : texts) {
    WorkloadQuery wq;
    auto q = Parser::Parse(t);
    EXPECT_TRUE(q.ok()) << q.status();
    wq.query = std::move(q).ValueOrDie();
    wq.template_index = idx++;
    w.queries.push_back(std::move(wq));
  }
  return w;
}

void ExpectSameMetrics(const RunMetrics& serial, const RunMetrics& parallel) {
  ASSERT_EQ(serial.batches.size(), parallel.batches.size());
  EXPECT_EQ(serial.TotalTtiMicros(), parallel.TotalTtiMicros());
  EXPECT_EQ(serial.TotalTuningMicros(), parallel.TotalTuningMicros());
  for (size_t b = 0; b < serial.batches.size(); ++b) {
    const BatchMetrics& sb = serial.batches[b];
    const BatchMetrics& pb = parallel.batches[b];
    EXPECT_EQ(sb.tti_micros, pb.tti_micros) << "batch " << b;
    EXPECT_EQ(sb.graph_micros, pb.graph_micros) << "batch " << b;
    EXPECT_EQ(sb.rel_micros, pb.rel_micros) << "batch " << b;
    EXPECT_EQ(sb.migrate_micros, pb.migrate_micros) << "batch " << b;
    EXPECT_EQ(sb.tuning_micros, pb.tuning_micros) << "batch " << b;
    ASSERT_EQ(sb.queries.size(), pb.queries.size()) << "batch " << b;
    for (size_t q = 0; q < sb.queries.size(); ++q) {
      EXPECT_EQ(sb.queries[q].route, pb.queries[q].route);
      EXPECT_EQ(sb.queries[q].total_micros, pb.queries[q].total_micros);
      EXPECT_EQ(sb.queries[q].result_rows, pb.queries[q].result_rows);
    }
  }
}

TEST(ParallelEquivalenceTest, RunParallelMatchesRunOnSmallPeopleGraph) {
  const Workload w = SmallWorkload();
  ThreadPool pool(4);

  // Two identical stores: tuning mutates store state, so serial and
  // parallel runs each get a fresh one.
  rdf::Dataset ds1 = testing::SmallPeopleGraph();
  rdf::Dataset ds2 = testing::SmallPeopleGraph();
  DualStoreConfig cfg;
  cfg.graph_capacity_triples = 8;
  DualStore serial_store(&ds1, cfg);
  DualStore parallel_store(&ds2, cfg);
  DotilTuner serial_tuner;
  DotilTuner parallel_tuner;

  WorkloadRunner serial_runner(&serial_store, &serial_tuner);
  WorkloadRunner parallel_runner(&parallel_store, &parallel_tuner);

  auto sm = serial_runner.Run(w, /*num_batches=*/3);
  ASSERT_TRUE(sm.ok()) << sm.status();
  auto pm = parallel_runner.RunParallel(w, /*num_batches=*/3, &pool);
  ASSERT_TRUE(pm.ok()) << pm.status();
  ExpectSameMetrics(*sm, *pm);
}

TEST(ParallelEquivalenceTest, RunParallelMatchesRunOnYagoWorkload) {
  workload::YagoConfig gen;
  gen.target_triples = 20000;
  rdf::Dataset ds1 = workload::GenerateYago(gen);
  rdf::Dataset ds2 = workload::GenerateYago(gen);

  workload::WorkloadBuilder builder(&ds1);
  auto w = builder.Build("yago", workload::YagoTemplates(), {});
  ASSERT_TRUE(w.ok()) << w.status();

  DualStoreConfig cfg;
  cfg.graph_capacity_triples = ds1.num_triples() / 4;
  DualStore serial_store(&ds1, cfg);
  DualStore parallel_store(&ds2, cfg);
  DotilTuner serial_tuner;
  DotilTuner parallel_tuner;

  WorkloadRunner serial_runner(&serial_store, &serial_tuner);
  WorkloadRunner parallel_runner(&parallel_store, &parallel_tuner);

  auto sm = serial_runner.Run(*w, /*num_batches=*/5);
  ASSERT_TRUE(sm.ok()) << sm.status();
  ThreadPool pool(4);
  auto pm = parallel_runner.RunParallel(*w, /*num_batches=*/5, &pool);
  ASSERT_TRUE(pm.ok()) << pm.status();
  ExpectSameMetrics(*sm, *pm);
}

TEST(ParallelEquivalenceTest, ConcurrentProcessReturnsSameBindingTables) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStoreConfig cfg;
  cfg.graph_capacity_triples = 8;
  DualStore store(&ds, cfg);
  const Workload w = SmallWorkload();

  std::vector<BindingTable> serial(w.queries.size());
  for (size_t i = 0; i < w.queries.size(); ++i) {
    auto exec = store.Process(w.queries[i].query);
    ASSERT_TRUE(exec.ok()) << exec.status();
    serial[i] = exec->result;
  }

  ThreadPool pool(4);
  std::vector<BindingTable> parallel(w.queries.size());
  for (int round = 0; round < 4; ++round) {
    pool.ParallelFor(w.queries.size(), [&](size_t i) {
      auto exec = store.Process(w.queries[i].query);
      ASSERT_TRUE(exec.ok()) << exec.status();
      parallel[i] = exec->result;
    });
    for (size_t i = 0; i < w.queries.size(); ++i) {
      EXPECT_TRUE(BindingTable::SameRows(serial[i], parallel[i]))
          << "query " << i << " round " << round;
    }
  }
}

TEST(ParallelEquivalenceTest, ExecuteShardedMatchesExecuteOnRandomBgps) {
  workload::YagoConfig gen;
  gen.target_triples = 8000;
  rdf::Dataset ds = workload::GenerateYago(gen);
  DualStoreConfig cfg;
  cfg.use_graph = false;
  DualStore store(&ds, cfg);
  ThreadPool pool(4);

  Rng rng(7);
  int nonempty = 0;
  for (int i = 0; i < 60; ++i) {
    const sparql::Query q = testing::RandomBgp(ds, &rng);
    CostMeter serial_meter;
    auto serial = store.executor().Execute(q, &serial_meter);
    ASSERT_TRUE(serial.ok()) << serial.status();
    CostMeter sharded_meter;
    auto sharded =
        store.executor().ExecuteSharded(q, &sharded_meter, &pool, 4);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    EXPECT_EQ(serial->columns, sharded->columns) << "query " << i;
    EXPECT_TRUE(BindingTable::SameRows(*serial, *sharded)) << "query " << i;
    if (!serial->empty()) ++nonempty;

    if (q.patterns.size() == 1) {
      // Single-pattern queries have no join-operator freedom: the sharded
      // plan touches exactly the same tuples as the serial one.
      EXPECT_EQ(serial_meter.count(Op::kIndexScanTuple),
                sharded_meter.count(Op::kIndexScanTuple));
      EXPECT_EQ(serial_meter.count(Op::kMaterializeTuple),
                sharded_meter.count(Op::kMaterializeTuple));
    }
  }
  // The fuzz corpus must actually exercise non-trivial results.
  EXPECT_GT(nonempty, 10);
}

TEST(ParallelEquivalenceTest, ShardedScanPartitionsSerialScanExactly) {
  workload::YagoConfig gen;
  gen.target_triples = 6000;
  rdf::Dataset ds = workload::GenerateYago(gen);
  relstore::TripleTable table;
  CostMeter load;
  table.BulkLoad(ds.triples(), &load);

  std::vector<relstore::BoundPattern> patterns;
  patterns.push_back({});  // full scan
  for (rdf::TermId p : table.Predicates()) {
    relstore::BoundPattern bp;
    bp.predicate = p;
    patterns.push_back(bp);
    if (patterns.size() >= 8) break;
  }

  for (const relstore::BoundPattern& bp : patterns) {
    std::vector<rdf::Triple> serial;
    CostMeter serial_meter;
    ASSERT_TRUE(table
                    .ScanPattern(bp, &serial_meter,
                                 [&](const rdf::Triple& t) {
                                   serial.push_back(t);
                                   return true;
                                 })
                    .ok());

    for (int shards : {1, 2, 4, 7}) {
      std::vector<rdf::Triple> sharded;
      CostMeter sharded_meter;
      const auto specs = table.ShardPattern(bp, shards);
      for (const auto& spec : specs) {
        ASSERT_TRUE(table
                        .ScanShard(spec, bp, &sharded_meter,
                                   [&](const rdf::Triple& t) {
                                     sharded.push_back(t);
                                     return true;
                                   })
                        .ok());
      }
      // Exact partition: same triples, same global order.
      EXPECT_EQ(serial, sharded) << "shards=" << shards;
      // Same per-tuple costs; only the per-shard descent differs.
      EXPECT_EQ(serial_meter.count(Op::kIndexScanTuple),
                sharded_meter.count(Op::kIndexScanTuple));
      EXPECT_EQ(serial_meter.count(Op::kSeqScanTuple),
                sharded_meter.count(Op::kSeqScanTuple));
      sharded_meter.Reset();
    }
  }
}

}  // namespace
}  // namespace dskg::core
