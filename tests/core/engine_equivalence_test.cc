// Randomized equivalence suite for the slot-compiled columnar pipeline:
// every execution path (serial, sharded, seeded, graph traversal) must
// produce the same multiset of rows (`BindingTable::SameRows`) as the
// brute-force reference evaluator on SmallPeopleGraph and a generated
// YAGO graph, plus directed slot-compiler edge cases (duplicate
// variables, unused select variables, seed-column overlap).

#include <gtest/gtest.h>

#include <array>
#include <initializer_list>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dotil.h"
#include "core/dual_store.h"
#include "core/online_store.h"
#include "core/session.h"
#include "core/update.h"
#include "graphstore/matcher.h"
#include "relstore/executor.h"
#include "sparql/parser.h"
#include "test_util.h"
#include "workload/generators.h"

namespace dskg::core {
namespace {

using rdf::TermId;
using relstore::Executor;
using relstore::TripleTable;
using sparql::BindingTable;
using sparql::Parser;

/// The two corpora of the suite: index 0 the hand-written people graph,
/// index 1 a generated YAGO graph (Dataset is move-only, so tests build
/// by index instead of iterating a list of values).
rdf::Dataset MakeCorpus(int which) {
  if (which == 0) return testing::SmallPeopleGraph();
  workload::YagoConfig cfg;
  cfg.target_triples = 6000;
  return workload::GenerateYago(cfg);
}

/// Splits `q`'s patterns into a seed prefix and a remainder, evaluates
/// the prefix with the executor (SELECT *), and runs the remainder from
/// that seed. Equivalent to evaluating the whole query — the dual-store
/// migration contract ExecuteWithSeed exists for.
Result<BindingTable> RunSeeded(const Executor& ex, const sparql::Query& q,
                               size_t seed_patterns, CostMeter* meter) {
  sparql::Query seed_q;
  seed_q.patterns.assign(q.patterns.begin(),
                         q.patterns.begin() + seed_patterns);
  sparql::Query rest;
  rest.patterns.assign(q.patterns.begin() + seed_patterns, q.patterns.end());
  rest.select_vars =
      q.select_vars.empty() ? q.AllVariables() : q.select_vars;
  DSKG_ASSIGN_OR_RETURN(BindingTable seed, ex.Execute(seed_q, meter));
  return ex.ExecuteWithSeed(rest, seed, meter);
}

class EngineEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EngineEquivalenceTest, AllRelationalPathsMatchReference) {
  for (int corpus = 0; corpus < 2; ++corpus) {
    const rdf::Dataset ds = MakeCorpus(corpus);
    TripleTable table;
    CostMeter load;
    table.BulkLoad(ds.triples(), &load);
    Executor ex(&table, &ds.dict());
    testing::ReferenceEvaluator reference(&ds);
    ThreadPool pool(4);

    Rng rng(GetParam());
    for (int i = 0; i < 40; ++i) {
      const sparql::Query q = testing::RandomBgp(ds, &rng);
      const BindingTable expected = reference.Evaluate(q);

      CostMeter m1;
      auto serial = ex.Execute(q, &m1);
      ASSERT_TRUE(serial.ok()) << serial.status() << "\n" << q.ToString();
      EXPECT_TRUE(BindingTable::SameRows(*serial, expected))
          << "Execute diverged: " << q.ToString();

      CostMeter m2;
      auto sharded = ex.ExecuteSharded(q, &m2, &pool, 4);
      ASSERT_TRUE(sharded.ok()) << sharded.status() << "\n" << q.ToString();
      EXPECT_TRUE(BindingTable::SameRows(*sharded, expected))
          << "ExecuteSharded diverged: " << q.ToString();

      // Seed with every possible pattern prefix (seed columns then
      // overlap the remainder's join variables in all combinations the
      // query offers).
      for (size_t k = 1; k < q.patterns.size(); ++k) {
        CostMeter m3;
        auto seeded = RunSeeded(ex, q, k, &m3);
        ASSERT_TRUE(seeded.ok()) << seeded.status() << "\n" << q.ToString();
        EXPECT_TRUE(BindingTable::SameRows(*seeded, expected))
            << "ExecuteWithSeed diverged (prefix " << k
            << "): " << q.ToString();
      }
    }
  }
}

TEST_P(EngineEquivalenceTest, TraversalMatcherMatchesReference) {
  for (int corpus = 0; corpus < 2; ++corpus) {
    rdf::Dataset ds = MakeCorpus(corpus);
    DualStoreConfig cfg;
    cfg.use_graph = true;
    cfg.graph_capacity_triples = ds.num_triples();
    DualStore store(&ds, cfg);
    CostMeter load;
    for (const TermId pred : store.table().Predicates()) {
      ASSERT_TRUE(store.MigratePartition(pred, &load).ok());
    }
    graphstore::TraversalMatcher matcher(&store.graph(), &ds.dict());
    testing::ReferenceEvaluator reference(&ds);

    Rng rng(GetParam() ^ 0xabcdef);
    for (int i = 0; i < 40; ++i) {
      const sparql::Query q = testing::RandomBgp(ds, &rng);
      CostMeter meter;
      auto actual = matcher.Match(q, &meter);
      ASSERT_TRUE(actual.ok()) << actual.status() << "\n" << q.ToString();
      EXPECT_TRUE(BindingTable::SameRows(*actual, reference.Evaluate(q)))
          << "Match diverged: " << q.ToString();
    }
  }
}

// Sharded traversal must be indistinguishable from serial traversal at
// every thread count: the same rows in the same order, and bit-identical
// simulated charges (the integer-picosecond meter makes shard merges
// exact, not approximately equal).
TEST_P(EngineEquivalenceTest, ShardedTraversalMatchesSerial) {
  for (int corpus = 0; corpus < 2; ++corpus) {
    rdf::Dataset ds = MakeCorpus(corpus);
    DualStoreConfig cfg;
    cfg.use_graph = true;
    cfg.graph_capacity_triples = ds.num_triples();
    DualStore store(&ds, cfg);
    CostMeter load;
    for (const TermId pred : store.table().Predicates()) {
      ASSERT_TRUE(store.MigratePartition(pred, &load).ok());
    }
    graphstore::TraversalMatcher matcher(&store.graph(), &ds.dict());

    Rng rng(GetParam() ^ 0x5eed);
    for (int i = 0; i < 25; ++i) {
      const sparql::Query q = testing::RandomBgp(ds, &rng);
      auto plan = matcher.Compile(q);
      ASSERT_TRUE(plan.ok()) << plan.status() << "\n" << q.ToString();

      CostMeter serial_meter;
      auto serial = matcher.Match(q, &serial_meter);
      ASSERT_TRUE(serial.ok()) << serial.status() << "\n" << q.ToString();

      for (const int threads : {1, 2, 4}) {
        ThreadPool pool(static_cast<size_t>(threads));
        CostMeter meter;
        auto sharded = matcher.MatchSharded(*plan, nullptr, &meter, &pool,
                                            /*max_shards=*/0);
        ASSERT_TRUE(sharded.ok()) << sharded.status() << "\n"
                                  << q.ToString();

        // Rows: identical content *and* order (shards merge in shard
        // order, and each shard preserves DFS order).
        ASSERT_EQ(sharded->columns, serial->columns) << q.ToString();
        ASSERT_EQ(sharded->NumRows(), serial->NumRows())
            << threads << " threads: " << q.ToString();
        for (size_t r = 0; r < serial->NumRows(); ++r) {
          for (size_t c = 0; c < serial->NumColumns(); ++c) {
            ASSERT_EQ(sharded->At(r, c), serial->At(r, c))
                << "row " << r << " col " << c << " at " << threads
                << " threads: " << q.ToString();
          }
        }

        // Charges: every op count and all three simulated-time components,
        // down to the picosecond.
        for (int op = 0; op < kNumOps; ++op) {
          EXPECT_EQ(meter.count(static_cast<Op>(op)),
                    serial_meter.count(static_cast<Op>(op)))
              << OpName(static_cast<Op>(op)) << " at " << threads
              << " threads: " << q.ToString();
        }
        EXPECT_EQ(meter.sim_picos(), serial_meter.sim_picos())
            << q.ToString();
        EXPECT_EQ(meter.io_picos(), serial_meter.io_picos())
            << q.ToString();
        EXPECT_EQ(meter.cpu_picos(), serial_meter.cpu_picos())
            << q.ToString();
      }
    }
  }
}

// Parallel dataset generation must be byte-identical to serial: the same
// triples in the same order over the same term-id assignment.
TEST(GeneratorDeterminismTest, ParallelGenerationMatchesSerial) {
  ThreadPool pool(4);
  const auto expect_same = [](const char* name, const rdf::Dataset& serial,
                              const rdf::Dataset& parallel) {
    ASSERT_EQ(serial.triples().size(), parallel.triples().size()) << name;
    for (size_t i = 0; i < serial.triples().size(); ++i) {
      const rdf::Triple& a = serial.triples()[i];
      const rdf::Triple& b = parallel.triples()[i];
      ASSERT_TRUE(a.subject == b.subject && a.predicate == b.predicate &&
                  a.object == b.object)
          << name << ": triple " << i << " diverged";
    }
    EXPECT_EQ(serial.dict().size(), parallel.dict().size()) << name;
  };
  {
    workload::YagoConfig c;
    c.target_triples = 40000;
    expect_same("yago", workload::GenerateYago(c),
                workload::GenerateYago(c, &pool));
  }
  {
    workload::WatDivConfig c;
    c.target_triples = 40000;
    expect_same("watdiv", workload::GenerateWatDiv(c),
                workload::GenerateWatDiv(c, &pool));
  }
  {
    workload::Bio2RdfConfig c;
    c.target_triples = 40000;
    expect_same("bio2rdf", workload::GenerateBio2Rdf(c),
                workload::GenerateBio2Rdf(c, &pool));
  }
}

// DOTIL with a probe pool must make exactly the decisions — and charge
// exactly the costs — of the serial tuner at every thread count: the
// speculative c1/c2 probes change wall-clock only.
TEST(DotilParallelProbeTest, DecisionsAndChargesMatchSerial) {
  const auto make_queries = [] {
    std::vector<sparql::Query> qs;
    const auto bgp = [](std::initializer_list<std::array<const char*, 3>>
                            patterns) {
      sparql::Query q;
      for (const auto& p : patterns) {
        sparql::PatternTerm s = p[0][0] == '?'
                                    ? sparql::PatternTerm::Var(p[0] + 1)
                                    : sparql::PatternTerm::Const(p[0]);
        sparql::PatternTerm o = p[2][0] == '?'
                                    ? sparql::PatternTerm::Var(p[2] + 1)
                                    : sparql::PatternTerm::Const(p[2]);
        q.patterns.push_back({s, sparql::PatternTerm::Const(p[1]), o});
      }
      q.select_vars = q.AllVariables();
      return q;
    };
    qs.push_back(bgp({{"?p", "y:wasBornIn", "?c"},
                      {"?p", "y:hasAcademicAdvisor", "?a"},
                      {"?a", "y:wasBornIn", "?c"}}));
    qs.push_back(bgp({{"?p", "y:livesIn", "?c"},
                      {"?p", "y:isMarriedTo", "?s"},
                      {"?s", "y:livesIn", "?c"}}));
    qs.push_back(bgp({{"?p", "y:actedIn", "?m"},
                      {"?m", "y:hasGenre", "?g"}}));
    qs.push_back(bgp({{"?p", "y:worksAt", "?k"},
                      {"?k", "y:headquarteredIn", "?c"},
                      {"?p", "y:livesIn", "?c"}}));
    return qs;
  };
  const std::vector<sparql::Query> queries = make_queries();

  // Serial reference run.
  const auto run = [&](ThreadPool* probe_pool, CostMeter* meter,
                       DotilTuner* tuner, std::vector<TermId>* resident) {
    rdf::Dataset ds = MakeCorpus(1);
    DualStoreConfig cfg;
    cfg.use_graph = true;
    cfg.graph_capacity_triples = ds.num_triples();
    DualStore store(&ds, cfg);
    tuner->set_probe_pool(probe_pool);
    for (int round = 0; round < 3; ++round) {
      ASSERT_TRUE(tuner->AfterBatch(&store, queries, meter).ok());
    }
    *resident = store.graph().LoadedPredicates();
    std::sort(resident->begin(), resident->end());
  };

  CostMeter serial_meter;
  DotilTuner serial_tuner;
  std::vector<TermId> serial_resident;
  run(nullptr, &serial_meter, &serial_tuner, &serial_resident);
  ASSERT_GT(serial_tuner.num_trained(), 0u);

  for (const int threads : {2, 4}) {
    ThreadPool pool(static_cast<size_t>(threads));
    CostMeter meter;
    DotilTuner tuner;
    std::vector<TermId> resident;
    run(&pool, &meter, &tuner, &resident);

    EXPECT_EQ(resident, serial_resident) << threads << " threads";
    EXPECT_EQ(tuner.num_trained(), serial_tuner.num_trained());
    const std::array<double, 4> a = tuner.QMatrixSums();
    const std::array<double, 4> b = serial_tuner.QMatrixSums();
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(a[i], b[i]) << "Q sum " << i << " at " << threads
                            << " threads";
    }
    for (int op = 0; op < kNumOps; ++op) {
      EXPECT_EQ(meter.count(static_cast<Op>(op)),
                serial_meter.count(static_cast<Op>(op)))
          << OpName(static_cast<Op>(op)) << " at " << threads << " threads";
    }
    EXPECT_EQ(meter.sim_picos(), serial_meter.sim_picos());
    EXPECT_EQ(meter.io_picos(), serial_meter.io_picos());
    EXPECT_EQ(meter.cpu_picos(), serial_meter.cpu_picos());
  }
}

// A prepared query (kept across mutations of the store) must always
// return exactly what a freshly prepared/processed query returns: plans
// carry a plan epoch and re-validate after `ApplyUpdates` or re-tuning
// moves graph residency, the view catalog or the dictionary. This is the
// randomized oracle for that invariant: random parameterized BGPs are
// prepared once, then the store is mutated round after round (update
// batches interleaved with migrate/evict tuning windows) and every
// prepared handle is compared — rows and simulated charges — against a
// fresh one-shot execution of its bound form.
TEST_P(EngineEquivalenceTest, PreparedVsFreshOracleUnderMutations) {
  for (int corpus = 0; corpus < 2; ++corpus) {
    rdf::Dataset initial = MakeCorpus(corpus);
    const std::vector<rdf::Triple> triples = initial.triples();
    DualStoreConfig cfg;
    cfg.graph_capacity_triples = initial.num_triples();
    OnlineStore store(initial, cfg);
    Session session(&store);

    Rng rng(GetParam() ^ 0xfeed);

    // Prepare a pool of parameterized queries once, up front.
    struct Prepared {
      sparql::Query bound;    // the equivalent constant-only query
      std::optional<PreparedQuery> handle;
      std::vector<std::pair<std::string, std::string>> bindings;
    };
    std::vector<Prepared> pool;
    for (int i = 0; i < 6; ++i) {
      const sparql::Query q = testing::RandomBgp(store.active().dataset(),
                                                 &rng);
      Prepared p;
      p.bound = q;
      // Parameterize each constant endpoint with probability 1/2.
      sparql::Query tmpl = q;
      int next = 0;
      for (sparql::TriplePattern& tp : tmpl.patterns) {
        for (sparql::PatternTerm* end : {&tp.subject, &tp.object}) {
          if (end->is_variable || !rng.NextBool(0.5)) continue;
          const std::string name = "prm" + std::to_string(next++);
          p.bindings.emplace_back(name, end->text);
          *end = sparql::PatternTerm::Param(name);
        }
      }
      auto prepared = session.Prepare(tmpl.ToString());
      ASSERT_TRUE(prepared.ok()) << prepared.status() << "\n"
                                 << tmpl.ToString();
      p.handle.emplace(std::move(prepared).ValueOrDie());
      pool.push_back(std::move(p));
    }

    for (int round = 0; round < 6; ++round) {
      // ---- mutate the store -------------------------------------------
      if (round % 2 == 0) {
        // An update batch: inserts of novel facts + deletes of existing
        // triples (term strings survive via the initial triple list).
        UpdateBatch batch;
        for (int u = 0; u < 5; ++u) {
          if (rng.NextBool(0.5) && !triples.empty()) {
            const rdf::Triple& t = triples[rng.NextIndex(triples.size())];
            batch.ops.push_back(UpdateOp::Delete(
                std::string(initial.dict().TermOf(t.subject)),
                std::string(initial.dict().TermOf(t.predicate)),
                std::string(initial.dict().TermOf(t.object))));
          } else {
            const rdf::Triple& t = triples[rng.NextIndex(triples.size())];
            batch.ops.push_back(UpdateOp::Insert(
                "fresh:s" + std::to_string(round) + "_" + std::to_string(u),
                std::string(initial.dict().TermOf(t.predicate)),
                std::string(initial.dict().TermOf(t.object))));
          }
        }
        ASSERT_TRUE(store.ApplyUpdates(batch).ok());
      } else {
        // A tuning window: flip residency of a random predicate.
        ASSERT_TRUE(store.TuneExclusive([&](DualStore* s) {
          const std::vector<rdf::TermId> preds = s->table().Predicates();
          if (preds.empty()) return Status::OK();
          const rdf::TermId pred = preds[rng.NextIndex(preds.size())];
          CostMeter scratch;
          if (s->IsResident(pred)) {
            (void)s->EvictPartition(pred, &scratch);
          } else {
            (void)s->MigratePartition(pred, &scratch);
          }
          return Status::OK();
        }).ok());
      }

      // ---- every prepared handle vs a fresh execution -----------------
      for (Prepared& p : pool) {
        for (const auto& [name, term] : p.bindings) {
          // Terms referenced by the pool come from the immutable initial
          // triple list; deletes can only remove whole triples, not the
          // sampled subjects/objects used elsewhere — but a vanished
          // term is still possible, and then both paths must agree that
          // nothing matches.
          const Status s = p.handle->Bind(name, term);
          if (!s.ok()) {
            ASSERT_TRUE(s.IsNotFound()) << s;
          }
        }
        Result<QueryExecution> prepared_exec = p.handle->ExecuteAll();
        Result<QueryExecution> fresh = store.Process(p.bound);
        if (!prepared_exec.ok()) {
          // Only a vanished bound term may fail; the fresh path then
          // returns the empty result that constant could never match.
          ASSERT_TRUE(prepared_exec.status().IsNotFound())
              << prepared_exec.status();
          ASSERT_TRUE(fresh.ok()) << fresh.status();
          EXPECT_TRUE(fresh->result.empty());
          continue;
        }
        ASSERT_TRUE(fresh.ok()) << fresh.status();
        EXPECT_EQ(prepared_exec->route, fresh->route)
            << p.bound.ToString();
        EXPECT_TRUE(BindingTable::SameRows(prepared_exec->result,
                                           fresh->result))
            << "prepared diverged from fresh after round " << round << ": "
            << p.bound.ToString();
        EXPECT_DOUBLE_EQ(prepared_exec->rel_micros, fresh->rel_micros);
        EXPECT_DOUBLE_EQ(prepared_exec->graph_micros, fresh->graph_micros);
        EXPECT_DOUBLE_EQ(prepared_exec->migrate_micros,
                         fresh->migrate_micros);

        // And against a second, cache-cold session (a truly fresh
        // prepare of the same parameterized text).
        Session cold(&store);
        auto cold_prep = cold.Prepare(p.handle->text());
        ASSERT_TRUE(cold_prep.ok());
        bool bound_ok = true;
        for (const auto& [name, term] : p.bindings) {
          if (!cold_prep->Bind(name, term).ok()) bound_ok = false;
        }
        if (bound_ok) {
          auto cold_exec = cold_prep->ExecuteAll();
          ASSERT_TRUE(cold_exec.ok()) << cold_exec.status();
          EXPECT_TRUE(BindingTable::SameRows(cold_exec->result,
                                             fresh->result));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44));

// ---- slot-compiler edge cases ---------------------------------------------

class SlotCompilerEdgeTest : public ::testing::Test {
 protected:
  SlotCompilerEdgeTest() : ds_(testing::SmallPeopleGraph()) {
    CostMeter load;
    table_.BulkLoad(ds_.triples(), &load);
    ex_ = std::make_unique<Executor>(&table_, &ds_.dict());
  }

  rdf::Dataset ds_;
  TripleTable table_;
  std::unique_ptr<Executor> ex_;
};

TEST_F(SlotCompilerEdgeTest, DuplicateVariableAcrossAllPositions) {
  // The same variable in subject and object compiles to one slot; no row
  // of SmallPeopleGraph is reflexive, and the reference agrees.
  auto q = Parser::Parse("SELECT ?x WHERE { ?x marriedTo ?x . }");
  ASSERT_TRUE(q.ok());
  CostMeter meter;
  auto r = ex_->Execute(*q, &meter);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());

  // Variable repeated across *patterns* shares the slot through the
  // bound-variable set instead.
  auto q2 = Parser::Parse(
      "SELECT ?x WHERE { alice likes ?x . bob likes ?x . }");
  ASSERT_TRUE(q2.ok());
  CostMeter m2;
  auto r2 = ex_->Execute(*q2, &m2);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->NumRows(), 1u);
  EXPECT_EQ(r2->At(0, 0), ds_.dict().Lookup("film1"));
}

// A select variable with no slot in any pattern (the parser rejects this
// at the surface syntax, so build the AST directly): with rows present
// the executor refuses rather than fabricating values; with no rows the
// header is still normalized to the full projection.
TEST_F(SlotCompilerEdgeTest, UnusedSelectVariableErrorsWhenRowsExist) {
  sparql::Query q;
  q.select_vars = {"p", "zz"};
  q.patterns.push_back({sparql::PatternTerm::Var("p"),
                        sparql::PatternTerm::Const("bornIn"),
                        sparql::PatternTerm::Const("berlin")});
  CostMeter meter;
  auto r = ex_->Execute(q, &meter);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST_F(SlotCompilerEdgeTest, UnusedSelectVariableEmptyResultKeepsHeader) {
  sparql::Query q;
  q.select_vars = {"p", "zz"};
  q.patterns.push_back({sparql::PatternTerm::Var("p"),
                        sparql::PatternTerm::Const("bornIn"),
                        sparql::PatternTerm::Const("atlantis")});
  CostMeter meter;
  auto r = ex_->Execute(q, &meter);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(r->columns, (std::vector<std::string>{"p", "zz"}));
}

TEST_F(SlotCompilerEdgeTest, SeedColumnOverlapJoinsAndCarries) {
  // Seed columns: one overlapping the remainder's variables (p, a join
  // column) and one the remainder never mentions (tag, carried through).
  BindingTable seed;
  seed.columns = {"p", "tag"};
  seed.AppendRow({ds_.dict().Lookup("alice"), 77});
  seed.AppendRow({ds_.dict().Lookup("carol"), 88});

  // ?tag only exists in the seed, so the surface parser would reject the
  // projection; build the AST directly (the dual-store remainder path
  // projects seed columns the same way).
  sparql::Query q;
  q.select_vars = {"p", "c", "tag"};
  q.patterns.push_back({sparql::PatternTerm::Var("p"),
                        sparql::PatternTerm::Const("bornIn"),
                        sparql::PatternTerm::Var("c")});
  CostMeter meter;
  auto r = ex_->ExecuteWithSeed(q, seed, &meter);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 2u);
  r->Canonicalize();
  for (const BindingTable::RowView row : r->Rows()) {
    if (row[0] == ds_.dict().Lookup("alice")) {
      EXPECT_EQ(row[1], ds_.dict().Lookup("berlin"));
      EXPECT_EQ(row[2], 77u);
    } else {
      EXPECT_EQ(row[0], ds_.dict().Lookup("carol"));
      EXPECT_EQ(row[1], ds_.dict().Lookup("paris"));
      EXPECT_EQ(row[2], 88u);
    }
  }
}

TEST_F(SlotCompilerEdgeTest, SeedColumnsIdenticalToPatternVars) {
  // Full overlap: every remainder variable is already seeded — the join
  // degenerates to a filter and must not duplicate columns.
  BindingTable seed;
  seed.columns = {"p", "c"};
  seed.AppendRow({ds_.dict().Lookup("alice"), ds_.dict().Lookup("berlin")});
  seed.AppendRow({ds_.dict().Lookup("alice"), ds_.dict().Lookup("paris")});

  auto q = Parser::Parse("SELECT ?p ?c WHERE { ?p bornIn ?c . }");
  ASSERT_TRUE(q.ok());
  CostMeter meter;
  auto r = ex_->ExecuteWithSeed(*q, seed, &meter);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->NumRows(), 1u);  // only alice/berlin survives
  EXPECT_EQ(r->NumColumns(), 2u);
  EXPECT_EQ(r->At(0, 0), ds_.dict().Lookup("alice"));
  EXPECT_EQ(r->At(0, 1), ds_.dict().Lookup("berlin"));
}

}  // namespace
}  // namespace dskg::core
