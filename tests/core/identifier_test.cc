// Complex subquery identifier tests, anchored on the paper's Example 1.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/identifier.h"
#include "sparql/parser.h"

namespace dskg::core {
namespace {

using sparql::Parser;

IdentifiedQuery Identify(const std::string& text) {
  auto q = Parser::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return ComplexSubqueryIdentifier::Identify(*q);
}

TEST(Identifier, PaperExampleOne) {
  // Example 1 (§3.1): q3..q7 form the complex subquery; q1, q2 remain.
  IdentifiedQuery r = Identify(
      "SELECT ?GivenName ?FamilyName WHERE { "
      "?p y:hasGivenName ?GivenName . "
      "?p y:hasFamilyName ?FamilyName . "
      "?p y:wasBornIn ?city . "
      "?p y:hasAcademicAdvisor ?a . "
      "?a y:wasBornIn ?city . "
      "?p y:isMarriedTo ?p2 . "
      "?p2 y:wasBornIn ?city . }");
  ASSERT_TRUE(r.HasComplexSubquery());
  EXPECT_EQ(r.complex->patterns.size(), 5u);
  EXPECT_EQ(r.remainder.patterns.size(), 2u);
  // The join variable between q_c and the remainder is ?p (the paper's
  // stated output of q_c).
  EXPECT_EQ(r.complex->select_vars, std::vector<std::string>{"p"});
  // Remainder keeps the original projection.
  EXPECT_EQ(r.remainder.select_vars,
            (std::vector<std::string>{"GivenName", "FamilyName"}));
  // The complex subquery contains exactly the wasBornIn / advisor /
  // marriedTo patterns.
  for (const auto& p : r.complex->patterns) {
    EXPECT_NE(p.predicate.text, "y:hasGivenName");
    EXPECT_NE(p.predicate.text, "y:hasFamilyName");
  }
}

TEST(Identifier, NoComplexSubqueryForSinglePattern) {
  IdentifiedQuery r = Identify("SELECT ?a WHERE { ?a p ?b . }");
  EXPECT_FALSE(r.HasComplexSubquery());
  EXPECT_EQ(r.remainder.patterns.size(), 1u);
}

TEST(Identifier, NoComplexSubqueryWhenVariablesOccurOnce) {
  // A pure star with single-occurrence leaves: no pattern qualifies
  // (the center ?p repeats but every leaf variable appears once).
  IdentifiedQuery r = Identify(
      "SELECT ?a ?b WHERE { ?p p1 ?a . ?p p2 ?b . ?p p3 ?c . }");
  EXPECT_FALSE(r.HasComplexSubquery());
}

TEST(Identifier, ConstantEndpointsQualify) {
  // Star with two constant-object patterns: both qualify (center repeats,
  // constants qualify trivially) -> q_c of size 2.
  IdentifiedQuery r = Identify(
      "SELECT ?a WHERE { ?p p1 ?a . ?p p2 c1 . ?p p3 c2 . }");
  ASSERT_TRUE(r.HasComplexSubquery());
  EXPECT_EQ(r.complex->patterns.size(), 2u);
  EXPECT_EQ(r.remainder.patterns.size(), 1u);
  EXPECT_EQ(r.complex->select_vars, std::vector<std::string>{"p"});
}

TEST(Identifier, WholeQueryComplexKeepsProjection) {
  IdentifiedQuery r = Identify(
      "SELECT ?p WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . }");
  ASSERT_TRUE(r.HasComplexSubquery());
  EXPECT_TRUE(r.remainder.patterns.empty());
  EXPECT_EQ(r.complex->patterns.size(), 3u);
  EXPECT_EQ(r.complex->select_vars, std::vector<std::string>{"p"});
}

TEST(Identifier, VariablePredicatePatternsStayInRemainder) {
  IdentifiedQuery r = Identify(
      "SELECT ?x WHERE { ?x ?rel ?y . ?x p1 ?y . ?y p2 ?x . }");
  ASSERT_TRUE(r.HasComplexSubquery());
  EXPECT_EQ(r.complex->patterns.size(), 2u);
  ASSERT_EQ(r.remainder.patterns.size(), 1u);
  EXPECT_TRUE(r.remainder.patterns[0].predicate.is_variable);
}

TEST(Identifier, AllConstantPatternExcluded) {
  // A fully constant pattern is a point lookup, never complex.
  IdentifiedQuery r = Identify(
      "SELECT ?x WHERE { a p b . ?x q ?y . ?y r ?x . }");
  ASSERT_TRUE(r.HasComplexSubquery());
  EXPECT_EQ(r.complex->patterns.size(), 2u);
  EXPECT_EQ(r.remainder.patterns.size(), 1u);
}

TEST(Identifier, ProjectedVariableOnlyInComplexIsExported) {
  // ?a appears only in q_c but is projected: it must be in q_c's output.
  IdentifiedQuery r = Identify(
      "SELECT ?a WHERE { ?p bornIn ?c . ?p advisor ?a . ?a bornIn ?c . "
      "?p name ?n . }");
  ASSERT_TRUE(r.HasComplexSubquery());
  ASSERT_EQ(r.remainder.patterns.size(), 1u);
  const auto& sel = r.complex->select_vars;
  EXPECT_NE(std::find(sel.begin(), sel.end(), "a"), sel.end());
  EXPECT_NE(std::find(sel.begin(), sel.end(), "p"), sel.end());
}

TEST(Identifier, LinearChainTailQualifies) {
  // 3-hop path: the two tail hops share repeated variables; the head's
  // subject occurs once.
  IdentifiedQuery r = Identify(
      "SELECT ?u WHERE { ?u follows ?v . ?v likes ?p . ?p genre g1 . }");
  ASSERT_TRUE(r.HasComplexSubquery());
  EXPECT_EQ(r.complex->patterns.size(), 2u);
  EXPECT_EQ(r.remainder.patterns.size(), 1u);
}

TEST(Identifier, IdentifierIsPure) {
  auto q = Parser::Parse(
      "SELECT ?p WHERE { ?p a ?b . ?p c ?b . }");
  ASSERT_TRUE(q.ok());
  IdentifiedQuery r1 = ComplexSubqueryIdentifier::Identify(*q);
  IdentifiedQuery r2 = ComplexSubqueryIdentifier::Identify(*q);
  EXPECT_EQ(r1.query, r2.query);
  EXPECT_EQ(r1.HasComplexSubquery(), r2.HasComplexSubquery());
}

}  // namespace
}  // namespace dskg::core
