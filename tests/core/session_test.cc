// Session façade tests: prepared-query caching, $parameter binding,
// streaming cursors, uniform error handling at the API boundary, and
// plan-epoch invalidation across residency flips and online updates.

#include "core/session.h"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/dual_store.h"
#include "core/online_store.h"
#include "core/update.h"
#include "sparql/parser.h"
#include "test_util.h"
#include "workload/generators.h"

namespace dskg::core {
namespace {

using rdf::TermId;
using sparql::BindingTable;
using sparql::Parser;
using sparql::Query;

constexpr const char* kFlagshipParam =
    "SELECT ?p WHERE { ?p bornIn $city . "
    "?p advisor ?a . ?a bornIn $city . }";

/// Substitutes a query's $param sites with constants (the "old way" the
/// prepared path must match exactly).
Query BindAst(const Query& q,
              const std::vector<std::pair<std::string, std::string>>& binds) {
  Query out = q;
  for (sparql::TriplePattern& p : out.patterns) {
    for (sparql::PatternTerm* end : {&p.subject, &p.object}) {
      if (!end->is_param) continue;
      for (const auto& [name, term] : binds) {
        if (end->text == name) {
          *end = sparql::PatternTerm::Const(term);
          break;
        }
      }
    }
  }
  return out;
}

void ExpectSameExecution(const QueryExecution& a, const QueryExecution& b) {
  EXPECT_EQ(a.route, b.route);
  EXPECT_TRUE(BindingTable::SameRows(a.result, b.result));
  EXPECT_DOUBLE_EQ(a.rel_micros, b.rel_micros);
  EXPECT_DOUBLE_EQ(a.graph_micros, b.graph_micros);
  EXPECT_DOUBLE_EQ(a.migrate_micros, b.migrate_micros);
}

// ---- error handling at the API boundary -------------------------------------

class SessionErrorTest : public ::testing::Test {
 protected:
  SessionErrorTest() : ds_(testing::SmallPeopleGraph()), store_(&ds_, {}) {}
  rdf::Dataset ds_;
  DualStore store_;
};

TEST_F(SessionErrorTest, ParseFailureSurfacesFromPrepare) {
  Session session(&store_);
  auto r = session.Prepare("SELEC ?p WHERE { ?p bornIn berlin . }");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST_F(SessionErrorTest, ParameterInPredicatePositionIsRejected) {
  Session session(&store_);
  auto r = session.Prepare("SELECT ?p WHERE { ?p $pred berlin . }");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST_F(SessionErrorTest, ProjectedParameterIsRejected) {
  Session session(&store_);
  auto r = session.Prepare("SELECT $x WHERE { ?p bornIn $x . }");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST_F(SessionErrorTest, NameAsBothVariableAndParameterIsRejected) {
  Session session(&store_);
  auto r = session.Prepare("SELECT ?x WHERE { ?x bornIn $x . }");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST_F(SessionErrorTest, BindUnknownParameterIsInvalidArgument) {
  Session session(&store_);
  auto prepared = session.Prepare(kFlagshipParam);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  const Status s = prepared->Bind("nosuch", "berlin");
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST_F(SessionErrorTest, BindUnknownTermIsNotFound) {
  Session session(&store_);
  auto prepared = session.Prepare(kFlagshipParam);
  ASSERT_TRUE(prepared.ok());
  const Status s = prepared->Bind("city", "atlantis");
  EXPECT_TRUE(s.IsNotFound());
}

TEST_F(SessionErrorTest, ExecuteWithUnboundParameterFails) {
  Session session(&store_);
  auto prepared = session.Prepare(kFlagshipParam);
  ASSERT_TRUE(prepared.ok());
  auto exec = prepared->ExecuteAll();
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsFailedPrecondition());
  auto cursor = prepared->OpenCursor();
  ASSERT_FALSE(cursor.ok());
  EXPECT_TRUE(cursor.status().IsFailedPrecondition());
  // One-shot Execute on parameterized text fails the same way.
  auto oneshot = session.Execute(kFlagshipParam);
  ASSERT_FALSE(oneshot.ok());
  EXPECT_TRUE(oneshot.status().IsFailedPrecondition());
}

TEST_F(SessionErrorTest, DirectEnginePathsRefuseUnboundParameters) {
  // The engines themselves refuse unbound parameters instead of treating
  // the open site as a wildcard or matching nothing.
  auto q = Parser::Parse(kFlagshipParam);
  ASSERT_TRUE(q.ok());
  auto exec = store_.Process(*q);
  ASSERT_FALSE(exec.ok());
  EXPECT_TRUE(exec.status().IsFailedPrecondition());

  CostMeter m1;
  auto rel = store_.executor().Execute(*q, &m1);
  ASSERT_FALSE(rel.ok());
  EXPECT_TRUE(rel.status().IsFailedPrecondition());

  CostMeter m2;
  ThreadPool pool(2);
  auto sharded = store_.executor().ExecuteSharded(*q, &m2, &pool, 2);
  ASSERT_FALSE(sharded.ok());
  EXPECT_TRUE(sharded.status().IsFailedPrecondition());

  // All-resident store so the matcher's precondition is residency-clean.
  rdf::Dataset ds2 = testing::SmallPeopleGraph();
  DualStoreConfig cfg;
  cfg.graph_capacity_triples = ds2.num_triples();
  DualStore store2(&ds2, cfg);
  CostMeter load;
  for (const TermId pred : store2.table().Predicates()) {
    ASSERT_TRUE(store2.MigratePartition(pred, &load).ok());
  }
  CostMeter m3;
  auto matched = store2.matcher().Match(*q, &m3);
  ASSERT_FALSE(matched.ok());
  EXPECT_TRUE(matched.status().IsFailedPrecondition());
}

// ---- prepared execution semantics -------------------------------------------

TEST(SessionTest, PreparedBindExecutesLikeOneShotProcess) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  Session session(&store);
  auto prepared = session.Prepare(kFlagshipParam);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_EQ(prepared->parameters(), std::vector<std::string>{"city"});

  for (const char* city : {"berlin", "paris"}) {
    ASSERT_TRUE(prepared->Bind("city", city).ok());
    auto exec = prepared->ExecuteAll();
    ASSERT_TRUE(exec.ok()) << exec.status();

    const std::string bound_text =
        "SELECT ?p WHERE { ?p bornIn " + std::string(city) +
        " . ?p advisor ?a . ?a bornIn " + std::string(city) + " . }";
    auto oneshot = store.Process(bound_text);
    ASSERT_TRUE(oneshot.ok()) << oneshot.status();
    ExpectSameExecution(*exec, *oneshot);
  }
  // berlin: bob's advisor alice was born in berlin too.
  ASSERT_TRUE(prepared->Bind("city", "berlin").ok());
  auto exec = prepared->ExecuteAll();
  ASSERT_TRUE(exec.ok());
  ASSERT_EQ(exec->result.NumRows(), 1u);
  EXPECT_EQ(exec->result.At(0, 0), ds.dict().Lookup("bob"));
}

TEST(SessionTest, PrepareIsCachedByText) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  Session session(&store);
  ASSERT_TRUE(session.Prepare(kFlagshipParam).ok());
  ASSERT_TRUE(session.Prepare(kFlagshipParam).ok());
  ASSERT_TRUE(session.Prepare(kFlagshipParam).ok());
  const Session::Stats stats = session.stats();
  EXPECT_EQ(stats.prepares, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(SessionTest, PlanCacheEvictsLeastRecentlyPrepared) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  Session session(&store);
  session.SetPlanCacheCapacity(2);
  const std::string a = "SELECT ?p WHERE { ?p bornIn berlin . }";
  const std::string b = "SELECT ?p WHERE { ?p bornIn paris . }";
  const std::string c = "SELECT ?p WHERE { ?p bornIn tokyo . }";
  ASSERT_TRUE(session.Prepare(a).ok());
  ASSERT_TRUE(session.Prepare(b).ok());
  EXPECT_EQ(session.plan_cache_size(), 2u);
  EXPECT_EQ(session.stats().evictions, 0u);
  // Touch `a` so `b` becomes least-recently-prepared, then overflow.
  ASSERT_TRUE(session.Prepare(a).ok());
  ASSERT_TRUE(session.Prepare(c).ok());
  EXPECT_EQ(session.plan_cache_size(), 2u);
  EXPECT_EQ(session.stats().evictions, 1u);
  // `a` survived (hit), `b` was evicted (fresh parse).
  const uint64_t prepares_before = session.stats().prepares;
  ASSERT_TRUE(session.Prepare(a).ok());
  EXPECT_EQ(session.stats().prepares, prepares_before);
  ASSERT_TRUE(session.Prepare(b).ok());
  EXPECT_EQ(session.stats().prepares, prepares_before + 1);
}

TEST(SessionTest, EvictedPreparedHandleStillExecutes) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  Session session(&store);
  session.SetPlanCacheCapacity(1);
  auto prepared = session.Prepare(kFlagshipParam);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Bind("city", "berlin").ok());
  // Evict the flagship entry by preparing a different text.
  ASSERT_TRUE(session.Prepare("SELECT ?p WHERE { ?p bornIn paris . }").ok());
  EXPECT_EQ(session.stats().evictions, 1u);
  // The outstanding handle shares the entry and keeps working.
  auto exec = prepared->ExecuteAll();
  ASSERT_TRUE(exec.ok());
  auto direct = store.Process(
      "SELECT ?p WHERE { ?p bornIn berlin . "
      "?p advisor ?a . ?a bornIn berlin . }");
  ASSERT_TRUE(direct.ok());
  ExpectSameExecution(*exec, *direct);
}

TEST(SessionTest, ShrinkingCapacityEvictsImmediately) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  Session session(&store);
  for (const char* city : {"berlin", "paris", "tokyo"}) {
    ASSERT_TRUE(session
                    .Prepare("SELECT ?p WHERE { ?p bornIn " +
                             std::string(city) + " . }")
                    .ok());
  }
  EXPECT_EQ(session.plan_cache_size(), 3u);
  session.SetPlanCacheCapacity(1);
  EXPECT_EQ(session.plan_cache_size(), 1u);
  EXPECT_EQ(session.stats().evictions, 2u);
  // Capacity 0 = unbounded again.
  session.SetPlanCacheCapacity(0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(session
                    .Prepare("SELECT ?p WHERE { ?p bornIn city" +
                             std::to_string(i) + " . }")
                    .ok());
  }
  EXPECT_EQ(session.plan_cache_size(), 11u);
  EXPECT_EQ(session.stats().evictions, 2u);
}

TEST(SessionTest, SubmitAsyncExecutesOnThePool) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStore store(&ds, {});
  ThreadPool pool(2);
  Session session(&store, &pool);
  std::vector<std::future<Result<QueryExecution>>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(session.SubmitAsync(
        "SELECT ?p WHERE { ?p bornIn berlin . }"));
  }
  auto prepared = session.Prepare(kFlagshipParam);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Bind("city", "berlin").ok());
  futures.push_back(session.SubmitAsync(*std::move(prepared)));
  for (size_t i = 0; i < futures.size(); ++i) {
    auto r = futures[i].get();
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->result.NumRows(), i < 8 ? 2u : 1u);
  }
}

// ---- streaming cursors ------------------------------------------------------

/// Parameterizes ~half of a random query's constant endpoints.
struct ParameterizedQuery {
  Query query;  // with $params
  std::vector<std::pair<std::string, std::string>> bindings;
};

ParameterizedQuery Parameterize(const Query& q, Rng* rng) {
  ParameterizedQuery out;
  out.query = q;
  int next = 0;
  for (sparql::TriplePattern& p : out.query.patterns) {
    for (sparql::PatternTerm* end : {&p.subject, &p.object}) {
      if (end->is_variable || end->is_param) continue;
      if (!rng->NextBool(0.5)) continue;
      const std::string name = "prm" + std::to_string(next++);
      out.bindings.emplace_back(name, end->text);
      *end = sparql::PatternTerm::Param(name);
    }
  }
  return out;
}

class SessionCursorTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SessionCursorTest, CursorChunksMatchExecuteAllAndReference) {
  for (int corpus = 0; corpus < 2; ++corpus) {
    rdf::Dataset ds = [&] {
      if (corpus == 0) return testing::SmallPeopleGraph();
      workload::YagoConfig cfg;
      cfg.target_triples = 6000;
      return workload::GenerateYago(cfg);
    }();
    // Half the partitions resident: random BGPs route through all of
    // Case 1 (graph), Case 2 (dual) and Case 3 (relational).
    DualStoreConfig cfg;
    cfg.graph_capacity_triples = ds.num_triples();
    DualStore store(&ds, cfg);
    CostMeter load;
    size_t migrated = 0;
    for (const TermId pred : store.table().Predicates()) {
      if (migrated++ % 2 == 0) {
        ASSERT_TRUE(store.MigratePartition(pred, &load).ok());
      }
    }
    testing::ReferenceEvaluator reference(&ds);
    Session session(&store);
    ThreadPool pool(4);

    Rng rng(GetParam() ^ 0x5e55);
    for (int i = 0; i < 30; ++i) {
      const Query q = testing::RandomBgp(ds, &rng);
      ParameterizedQuery pq = Parameterize(q, &rng);
      const BindingTable expected = reference.Evaluate(q);

      auto prepared = session.Prepare(pq.query.ToString());
      ASSERT_TRUE(prepared.ok()) << prepared.status();
      for (const auto& [name, term] : pq.bindings) {
        ASSERT_TRUE(prepared->Bind(name, term).ok()) << name << "=" << term;
      }

      auto exec = prepared->ExecuteAll();
      ASSERT_TRUE(exec.ok()) << exec.status() << "\n" << q.ToString();
      EXPECT_TRUE(BindingTable::SameRows(exec->result, expected))
          << "ExecuteAll diverged: " << q.ToString();

      // Stream the same execution in several chunk sizes; rows and, once
      // drained, cost totals must match the materialized call exactly.
      for (const size_t chunk_rows : {size_t{1}, size_t{3}, size_t{1024}}) {
        auto cursor = prepared->OpenCursor();
        ASSERT_TRUE(cursor.ok()) << cursor.status() << "\n" << q.ToString();
        BindingTable streamed;
        streamed.columns = cursor->columns();
        BindingTable chunk;
        bool done = false;
        while (!done) {
          ASSERT_TRUE(cursor->Next(&chunk, chunk_rows, &done).ok());
          ASSERT_LE(chunk.NumRows(), chunk_rows);
          streamed.AppendRowsFrom(chunk);
        }
        EXPECT_TRUE(BindingTable::SameRows(streamed, expected))
            << "cursor (chunk " << chunk_rows << ") diverged: "
            << q.ToString();
        const QueryExecution drained = cursor->Execution();
        EXPECT_EQ(drained.route, exec->route);
        EXPECT_DOUBLE_EQ(drained.rel_micros, exec->rel_micros);
        EXPECT_DOUBLE_EQ(drained.graph_micros, exec->graph_micros);
        EXPECT_DOUBLE_EQ(drained.migrate_micros, exec->migrate_micros);
      }

      // The sharded executor path agrees too (bound form; the sharded
      // path requires a parameter-free query).
      const Query bound = BindAst(pq.query, pq.bindings);
      CostMeter meter;
      auto sharded = store.executor().ExecuteSharded(bound, &meter, &pool, 4);
      ASSERT_TRUE(sharded.ok()) << sharded.status();
      EXPECT_TRUE(BindingTable::SameRows(*sharded, expected))
          << "ExecuteSharded diverged: " << bound.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionCursorTest,
                         ::testing::Values(7, 21, 42));

TEST(SessionCursorTest2, DualStoreRouteStreamsIdenticalRows) {
  // Deterministic Case 2: the complex subquery (bornIn/advisor) runs in
  // the graph store, the name-lookup remainder stays relational; the
  // cursor must stream exactly what the materialized call returns.
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStoreConfig cfg;
  cfg.graph_capacity_triples = ds.num_triples();
  DualStore store(&ds, cfg);
  CostMeter load;
  ASSERT_TRUE(store.MigratePartition(ds.dict().Lookup("bornIn"), &load).ok());
  ASSERT_TRUE(
      store.MigratePartition(ds.dict().Lookup("advisor"), &load).ok());

  Session session(&store);
  auto prepared = session.Prepare(
      "SELECT ?p ?f WHERE { ?p bornIn $city . ?p advisor ?a . "
      "?a bornIn $city . ?p likes ?f . }");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ASSERT_TRUE(prepared->Bind("city", "berlin").ok());

  auto exec = prepared->ExecuteAll();
  ASSERT_TRUE(exec.ok()) << exec.status();
  EXPECT_EQ(exec->route, Route::kDualStore);
  ASSERT_EQ(exec->result.NumRows(), 1u);  // bob (advisor alice) likes film1

  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor->route(), Route::kDualStore);
  auto streamed = cursor->DrainAll(1);
  ASSERT_TRUE(streamed.ok());
  EXPECT_TRUE(BindingTable::SameRows(*streamed, exec->result));
  const QueryExecution drained = cursor->Execution();
  EXPECT_DOUBLE_EQ(drained.rel_micros, exec->rel_micros);
  EXPECT_DOUBLE_EQ(drained.graph_micros, exec->graph_micros);
  EXPECT_DOUBLE_EQ(drained.migrate_micros, exec->migrate_micros);
}

TEST(SessionCursorTest2, EarlyAbandonedGraphCursorChargesLess) {
  // The graph route streams out of the resumable traversal: pulling one
  // row must not pay for the whole search space.
  workload::YagoConfig cfg;
  cfg.target_triples = 20000;
  rdf::Dataset ds = workload::GenerateYago(cfg);
  DualStoreConfig sc;
  sc.graph_capacity_triples = ds.num_triples();
  DualStore store(&ds, sc);
  CostMeter load;
  for (const char* pred : {"y:wasBornIn", "y:hasAcademicAdvisor"}) {
    ASSERT_TRUE(
        store.MigratePartition(ds.dict().Lookup(pred), &load).ok());
  }
  Session session(&store);
  auto prepared = session.Prepare(
      "SELECT ?p WHERE { ?p y:wasBornIn ?c . "
      "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?c . }");
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  auto full = prepared->ExecuteAll();
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->route, Route::kGraphOnly);
  ASSERT_GT(full->result.NumRows(), 1u);

  auto cursor = prepared->OpenCursor();
  ASSERT_TRUE(cursor.ok());
  BindingTable chunk;
  bool done = false;
  ASSERT_TRUE(cursor->Next(&chunk, 1, &done).ok());
  ASSERT_EQ(chunk.NumRows(), 1u);
  EXPECT_FALSE(done);
  EXPECT_LT(cursor->Execution().graph_micros, full->graph_micros);
}

// ---- plan-epoch invalidation ------------------------------------------------

TEST(SessionInvalidationTest, ResidencyFlipRevalidatesPlan) {
  rdf::Dataset ds = testing::SmallPeopleGraph();
  DualStoreConfig cfg;
  cfg.graph_capacity_triples = ds.num_triples();
  DualStore store(&ds, cfg);
  Session session(&store);

  auto prepared = session.Prepare(kFlagshipParam);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Bind("city", "berlin").ok());
  auto cold = prepared->ExecuteAll();
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->route, Route::kRelationalOnly);

  // Flip residency: the prepared plan's route is stale and must be
  // re-validated, not silently executed.
  CostMeter tuning;
  ASSERT_TRUE(
      store.MigratePartition(ds.dict().Lookup("bornIn"), &tuning).ok());
  ASSERT_TRUE(
      store.MigratePartition(ds.dict().Lookup("advisor"), &tuning).ok());

  auto warm = prepared->ExecuteAll();
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->route, Route::kGraphOnly);
  EXPECT_TRUE(BindingTable::SameRows(warm->result, cold->result));
  EXPECT_GE(session.stats().replans, 1u);

  // And back: eviction must downgrade the route again.
  ASSERT_TRUE(
      store.EvictPartition(ds.dict().Lookup("advisor"), &tuning).ok());
  auto after_evict = prepared->ExecuteAll();
  ASSERT_TRUE(after_evict.ok());
  EXPECT_NE(after_evict->route, Route::kGraphOnly);
  EXPECT_TRUE(BindingTable::SameRows(after_evict->result, cold->result));
}

TEST(SessionInvalidationTest, OnlineUpdatesRevalidateAndCursorsPinSnapshots) {
  rdf::Dataset initial = testing::SmallPeopleGraph();
  OnlineStore store(initial, {});
  Session session(&store);

  auto prepared = session.Prepare(kFlagshipParam);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(prepared->Bind("city", "berlin").ok());
  auto before = prepared->ExecuteAll();
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before->result.NumRows(), 1u);

  // A cursor opened now pins the pre-update snapshot for its lifetime.
  auto pinned_r = prepared->OpenCursor();
  ASSERT_TRUE(pinned_r.ok());
  std::optional<Cursor> pinned(std::move(pinned_r).ValueOrDie());

  // An update lands concurrently: eve, born in berlin, advised by alice.
  // The applier publishes immediately (readers are wait-free) but blocks
  // reclaiming the retired replica until the pinned cursor lets go — so
  // it must run on its own thread while the cursor is alive.
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Insert("eve", "bornIn", "berlin"));
  batch.ops.push_back(UpdateOp::Insert("eve", "advisor", "alice"));
  Status update_status;
  std::thread applier(
      [&] { update_status = store.ApplyUpdates(batch).status(); });

  // The pinned cursor still serves the snapshot it was opened against.
  BindingTable streamed;
  streamed.columns = pinned->columns();
  BindingTable chunk;
  bool done = false;
  while (!done) {
    ASSERT_TRUE(pinned->Next(&chunk, 2, &done).ok());
    streamed.AppendRowsFrom(chunk);
  }
  EXPECT_TRUE(BindingTable::SameRows(streamed, before->result));
  pinned.reset();  // drop the pin: the applier may reclaim and finish
  applier.join();
  ASSERT_TRUE(update_status.ok()) << update_status;

  // The prepared query re-validates transparently and sees the new row.
  auto after = prepared->ExecuteAll();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->result.NumRows(), 2u);
  EXPECT_GE(session.stats().replans, 1u);

  // Binding a term that only exists post-update works (the dictionary
  // grew; the plan epoch moved with it).
  UpdateBatch batch2;
  batch2.ops.push_back(UpdateOp::Insert("frank", "bornIn", "oslo"));
  batch2.ops.push_back(UpdateOp::Insert("gina", "bornIn", "oslo"));
  batch2.ops.push_back(UpdateOp::Insert("frank", "advisor", "gina"));
  ASSERT_TRUE(store.ApplyUpdates(batch2).ok());
  ASSERT_TRUE(prepared->Bind("city", "oslo").ok());
  auto oslo = prepared->ExecuteAll();
  ASSERT_TRUE(oslo.ok());
  EXPECT_EQ(oslo->result.NumRows(), 1u);
}

}  // namespace
}  // namespace dskg::core
