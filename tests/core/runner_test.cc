// Workload runner tests: batching, metric accumulation, tuning hooks,
// and averaged repetitions.

#include <gtest/gtest.h>

#include "core/baseline_tuners.h"
#include "core/dotil.h"
#include "core/runner.h"
#include "test_util.h"
#include "workload/generators.h"
#include "workload/templates.h"

namespace dskg::core {
namespace {

workload::Workload SmallYagoWorkload(const rdf::Dataset& ds, bool ordered) {
  workload::WorkloadBuilder builder(&ds);
  workload::WorkloadOptions opt;
  opt.ordered = ordered;
  auto w = builder.Build("yago", workload::YagoTemplates(), opt);
  EXPECT_TRUE(w.ok()) << w.status();
  return std::move(w).ValueOrDie();
}

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::YagoConfig cfg;
    cfg.target_triples = 15000;
    ds_ = workload::GenerateYago(cfg);
    DualStoreConfig scfg;
    scfg.graph_capacity_triples = ds_.num_triples() / 4;
    store_ = std::make_unique<DualStore>(&ds_, scfg);
  }

  rdf::Dataset ds_;
  std::unique_ptr<DualStore> store_;
};

TEST_F(RunnerTest, RunsAllQueriesInFiveBatches) {
  workload::Workload w = SmallYagoWorkload(ds_, /*ordered=*/true);
  ASSERT_EQ(w.queries.size(), 20u);
  WorkloadRunner runner(store_.get(), /*tuner=*/nullptr);
  auto m = runner.Run(w, 5);
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_EQ(m->batches.size(), 5u);
  size_t total = 0;
  for (const auto& b : m->batches) {
    total += b.queries.size();
    EXPECT_EQ(b.queries.size(), 4u);
    EXPECT_GT(b.tti_micros, 0.0);
    EXPECT_DOUBLE_EQ(b.tuning_micros, 0.0);  // no tuner
  }
  EXPECT_EQ(total, 20u);
  EXPECT_GT(m->TotalTtiMicros(), 0.0);
  EXPECT_DOUBLE_EQ(m->TotalTuningMicros(), 0.0);
}

TEST_F(RunnerTest, BatchMetricsDecompose) {
  workload::Workload w = SmallYagoWorkload(ds_, true);
  WorkloadRunner runner(store_.get(), nullptr);
  auto m = runner.Run(w, 5);
  ASSERT_TRUE(m.ok());
  for (const auto& b : m->batches) {
    double sum = 0;
    for (const auto& q : b.queries) sum += q.total_micros;
    EXPECT_NEAR(b.tti_micros, sum, 1e-6);
    EXPECT_NEAR(b.tti_micros,
                b.graph_micros + b.rel_micros + b.migrate_micros, 1e-6);
  }
}

TEST_F(RunnerTest, DotilTuningCostIsOffline) {
  workload::Workload w = SmallYagoWorkload(ds_, true);
  DotilTuner tuner;
  WorkloadRunner runner(store_.get(), &tuner);
  auto m = runner.Run(w, 5);
  ASSERT_TRUE(m.ok()) << m.status();
  double tuning = m->TotalTuningMicros();
  EXPECT_GT(tuning, 0.0);  // migrations + training happened
  EXPECT_GT(store_->graph().used_triples(), 0u);
}

TEST_F(RunnerTest, GraphShareGrowsAfterTuning) {
  workload::Workload w = SmallYagoWorkload(ds_, true);
  DotilTuner tuner;
  WorkloadRunner runner(store_.get(), &tuner);
  auto first = runner.Run(w, 5);
  ASSERT_TRUE(first.ok());
  // Second pass over the same workload: the store is warm, so most
  // complex queries route through the graph store.
  auto second = runner.Run(w, 5);
  ASSERT_TRUE(second.ok());
  EXPECT_LT(second->TotalTtiMicros(), first->TotalTtiMicros());
}

TEST_F(RunnerTest, OneOffTuningChargedToFirstBatch) {
  workload::Workload w = SmallYagoWorkload(ds_, true);
  OneOffTuner tuner;
  WorkloadRunner runner(store_.get(), &tuner);
  auto m = runner.Run(w, 5);
  ASSERT_TRUE(m.ok()) << m.status();
  EXPECT_GT(m->batches[0].tuning_micros, 0.0);
  for (size_t b = 1; b < m->batches.size(); ++b) {
    EXPECT_DOUBLE_EQ(m->batches[b].tuning_micros, 0.0);
  }
}

TEST_F(RunnerTest, RunAveragedValidatesArguments) {
  workload::Workload w = SmallYagoWorkload(ds_, true);
  WorkloadRunner runner(store_.get(), nullptr);
  EXPECT_TRUE(runner.RunAveraged(w, 5, /*reps=*/1, /*warmup=*/1)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(RunnerTest, RunAveragedAveragesTrailingReps) {
  workload::Workload w = SmallYagoWorkload(ds_, true);
  // Without a tuner the store is stateless across reps, so the average
  // equals a single run.
  WorkloadRunner runner(store_.get(), nullptr);
  auto single = runner.Run(w, 5);
  ASSERT_TRUE(single.ok());
  auto averaged = runner.RunAveraged(w, 5, /*reps=*/3, /*warmup=*/1);
  ASSERT_TRUE(averaged.ok());
  ASSERT_EQ(averaged->batches.size(), 5u);
  for (size_t b = 0; b < 5; ++b) {
    EXPECT_NEAR(averaged->batches[b].tti_micros,
                single->batches[b].tti_micros, 1.0);
  }
}

TEST_F(RunnerTest, UnevenBatchSplit) {
  workload::Workload w = SmallYagoWorkload(ds_, true);
  WorkloadRunner runner(store_.get(), nullptr);
  auto m = runner.Run(w, 3);  // 20 queries -> 7 + 7 + 6
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->batches.size(), 3u);
  EXPECT_EQ(m->batches[0].queries.size(), 7u);
  EXPECT_EQ(m->batches[1].queries.size(), 7u);
  EXPECT_EQ(m->batches[2].queries.size(), 6u);
}

}  // namespace
}  // namespace dskg::core
