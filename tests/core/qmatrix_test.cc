// Q-matrix tests: Equation 4 arithmetic and the state/action encoding.

#include <gtest/gtest.h>

#include "core/qmatrix.h"

namespace dskg::core {
namespace {

TEST(QMatrix, StartsZero) {
  QMatrix m;
  for (int s : {0, 1}) {
    for (int a : {0, 1}) EXPECT_DOUBLE_EQ(m.at(s, a), 0.0);
  }
  EXPECT_EQ(m.Flat(), (std::array<double, 4>{0, 0, 0, 0}));
}

TEST(QMatrix, NextStateEncoding) {
  EXPECT_EQ(QMatrix::NextState(0, 0), 0);  // keep in relational
  EXPECT_EQ(QMatrix::NextState(0, 1), 1);  // transfer
  EXPECT_EQ(QMatrix::NextState(1, 0), 1);  // keep resident
  EXPECT_EQ(QMatrix::NextState(1, 1), 0);  // evict
}

TEST(QMatrix, FirstUpdateIsAlphaTimesReward) {
  QMatrix m;
  // With all-zero future values, Q(0,1) <- alpha * r.
  m.Update(0, 1, /*reward=*/10.0, /*alpha=*/0.5, /*gamma=*/0.7);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
}

TEST(QMatrix, UpdateUsesDiscountedFuture) {
  QMatrix m;
  m.at(1, 0) = 8.0;  // future value of staying resident
  // Q(0,1): next state is 1, max future = 8.
  m.Update(0, 1, 10.0, 0.5, 0.7);
  // (1-0.5)*0 + 0.5*(10 + 0.7*8) = 7.8
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.8);
}

TEST(QMatrix, ExponentialMovingAverageConverges) {
  QMatrix m;
  // Repeated identical rewards with gamma=0 converge to the reward.
  for (int i = 0; i < 100; ++i) m.Update(1, 0, 4.0, 0.5, 0.0);
  EXPECT_NEAR(m.at(1, 0), 4.0, 1e-9);
}

TEST(QMatrix, KeepUpdatesAccumulateWithDiscount) {
  QMatrix m;
  // gamma>0 and state 1 self-loop: fixed point Q = r / (1 - gamma) when
  // Q(1,0) dominates Q(1,1).
  for (int i = 0; i < 500; ++i) m.Update(1, 0, 3.0, 0.5, 0.5);
  EXPECT_NEAR(m.at(1, 0), 3.0 / (1.0 - 0.5), 1e-6);
}

TEST(QMatrix, NegativeRewardsDriveQNegative) {
  QMatrix m;
  m.Update(0, 1, -2.0, 0.5, 0.7);
  EXPECT_LT(m.at(0, 1), 0.0);
}

TEST(QMatrix, MaxFuturePicksBestAction) {
  QMatrix m;
  m.at(1, 0) = 2.0;
  m.at(1, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m.MaxFuture(1), 5.0);
  EXPECT_DOUBLE_EQ(m.MaxFuture(0), 0.0);
}

TEST(QMatrix, ZeroAlphaFreezesValues) {
  QMatrix m;
  m.at(0, 1) = 3.0;
  m.Update(0, 1, 100.0, 0.0, 0.9);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.0);
}

TEST(QMatrix, AlphaOneReplacesValues) {
  QMatrix m;
  m.at(0, 1) = 3.0;
  m.Update(0, 1, 7.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
}

}  // namespace
}  // namespace dskg::core
