// Serving-tier tests: protocol codec roundtrips, wire results
// bit-identical to a direct core::Session oracle (inline and streamed),
// Status -> wire error mapping, admission-control overload behaviour,
// many concurrent socket clients vs a serial oracle (TSan-registered),
// shared-plan-cache invalidation under concurrent ApplyUpdates,
// graceful signal-driven shutdown with a final checkpoint, and the
// admin HTTP listener.

#include "server/server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/telemetry.h"
#include "core/online_store.h"
#include "core/session.h"
#include "core/update.h"
#include "persist/wal.h"
#include "server/client.h"
#include "server/protocol.h"
#include "test_util.h"

namespace dskg::server {
namespace {

using core::OnlineStore;
using core::Session;
using core::UpdateBatch;
using core::UpdateOp;

constexpr const char* kFlagshipParam =
    "SELECT ?p WHERE { ?p bornIn $city . "
    "?p advisor ?a . ?a bornIn $city . }";
constexpr const char* kScanAll = "SELECT ?p ?c WHERE { ?p bornIn ?c . }";

std::string ScratchDir(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("dskg_server_" + name))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

/// Wire-shaped rows (term text) from an oracle execution.
std::vector<std::vector<std::string>> WireRows(
    const sparql::BindingTable& t, const rdf::Dictionary& dict) {
  std::vector<std::vector<std::string>> rows(t.NumRows());
  for (size_t r = 0; r < t.NumRows(); ++r) {
    rows[r].resize(t.NumColumns());
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      rows[r][c] = std::string(dict.TermOf(t.At(r, c)));
    }
  }
  return rows;
}

void ExpectChargesEqual(const RowsResult& wire,
                        const core::QueryExecution& oracle) {
  EXPECT_DOUBLE_EQ(wire.rel_us, oracle.rel_micros);
  EXPECT_DOUBLE_EQ(wire.graph_us, oracle.graph_micros);
  EXPECT_DOUBLE_EQ(wire.migrate_us, oracle.migrate_micros);
  EXPECT_DOUBLE_EQ(wire.graph_io_us, oracle.graph_io_micros);
  EXPECT_DOUBLE_EQ(wire.graph_cpu_us, oracle.graph_cpu_micros);
}

// ---- protocol codec ---------------------------------------------------------

TEST(ProtocolTest, WriterReaderRoundTrip) {
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  const size_t start = w.BeginFrame(MsgType::kExecute, 42);
  w.PutU8(7);
  w.PutU16(65534);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutF64(3.25);
  w.PutString("hello $city");
  w.FinishFrame(start);

  Frame frame;
  const int64_t used = DecodeFrame(buf.data(), buf.size(), &frame);
  ASSERT_EQ(used, static_cast<int64_t>(buf.size()));
  EXPECT_EQ(frame.type, MsgType::kExecute);
  EXPECT_EQ(frame.request_id, 42u);

  WireReader r(frame.body, frame.body_size);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  double f64;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU16(&u16));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetF64(&f64));
  ASSERT_TRUE(r.GetString(&s));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 65534);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(f64, 3.25);
  EXPECT_EQ(s, "hello $city");
  EXPECT_TRUE(r.AtEnd());
  // Over-reading poisons instead of walking off the buffer.
  EXPECT_FALSE(r.GetU8(&u8));
  EXPECT_FALSE(r.ok());
}

TEST(ProtocolTest, DecodeFrameShortAndViolations) {
  std::vector<uint8_t> buf;
  WireWriter w(&buf);
  w.FinishFrame(w.BeginFrame(MsgType::kPing, 9));

  Frame frame;
  // Every proper prefix is a short read, not an error.
  for (size_t n = 0; n < buf.size(); ++n) {
    EXPECT_EQ(DecodeFrame(buf.data(), n, &frame), 0) << n;
  }
  // A runt payload length (< header) is a violation.
  std::vector<uint8_t> runt = {3, 0, 0, 0, 1, 0, 0};
  EXPECT_EQ(DecodeFrame(runt.data(), runt.size(), &frame), -1);
  // An oversized length is a violation even before the body arrives.
  std::vector<uint8_t> huge = {0xff, 0xff, 0xff, 0xff, 1};
  EXPECT_EQ(DecodeFrame(huge.data(), huge.size(), &frame), -1);
}

TEST(ProtocolTest, StatusWireMappingRoundTrips) {
  const Status statuses[] = {
      Status::InvalidArgument("a"), Status::NotFound("b"),
      Status::AlreadyExists("c"),   Status::CapacityExceeded("d"),
      Status::Cancelled("e"),       Status::FailedPrecondition("f"),
      Status::ParseError("g"),      Status::IoError("h"),
      Status::Internal("i")};
  for (const Status& s : statuses) {
    const WireError code = WireErrorFromStatus(s);
    const Status back = StatusFromWire(code, s.message());
    EXPECT_EQ(back.code(), s.code()) << WireErrorName(code);
    EXPECT_EQ(back.message(), s.message());
  }
  EXPECT_EQ(WireErrorFromStatus(Status::CapacityExceeded("x")),
            WireError::kResourceExhausted);
}

// ---- end-to-end fixture -----------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : ds_(testing::SmallPeopleGraph()) {}

  void StartServer(ServerConfig cfg = {},
                   core::DualStoreConfig store_cfg = {}) {
    store_ = std::make_unique<OnlineStore>(ds_, store_cfg);
    server_ = std::make_unique<Server>(store_.get(), std::move(cfg));
    ASSERT_TRUE(server_->Start().ok());
  }

  Client Connect() {
    auto c = Client::Connect(server_->port());
    EXPECT_TRUE(c.ok()) << c.status();
    return std::move(c).ValueOrDie();
  }

  rdf::Dataset ds_;
  std::unique_ptr<OnlineStore> store_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, PingPong) {
  StartServer();
  Client client = Connect();
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, ExecuteMatchesSessionOracleBitIdentically) {
  StartServer();
  Client client = Connect();

  auto params = client.Prepare(1, kFlagshipParam);
  ASSERT_TRUE(params.ok()) << params.status();
  EXPECT_EQ(*params, std::vector<std::string>{"city"});

  // The oracle runs the exact same store shape in-process.
  rdf::Dataset oracle_ds = testing::SmallPeopleGraph();
  OnlineStore oracle_store(oracle_ds, {});
  Session oracle(&oracle_store);
  auto oracle_prep = oracle.Prepare(kFlagshipParam);
  ASSERT_TRUE(oracle_prep.ok());

  for (const char* city : {"berlin", "paris"}) {
    auto wire = client.Execute(1, {{"city", city}});
    ASSERT_TRUE(wire.ok()) << wire.status();
    ASSERT_TRUE(oracle_prep->Bind("city", city).ok());
    auto local = oracle_prep->ExecuteAll();
    ASSERT_TRUE(local.ok());

    EXPECT_EQ(wire->route, core::RouteName(local->route));
    EXPECT_EQ(wire->columns, local->result.columns);
    // Render through the oracle STORE's dict — OnlineStore clones the
    // dataset into its own dictionary, whose ids can differ from
    // oracle_ds's.
    EXPECT_EQ(wire->rows,
              WireRows(local->result, oracle_store.Read().store().dict()));
    ExpectChargesEqual(*wire, *local);
    EXPECT_TRUE(wire->done);
    EXPECT_EQ(wire->cursor_id, 0u);
  }
}

TEST_F(ServerTest, CursorStreamsSameRowsAndCumulativeCharges) {
  StartServer();
  Client client = Connect();
  ASSERT_TRUE(client.Prepare(2, kScanAll).ok());

  auto inline_r = client.Execute(2);
  ASSERT_TRUE(inline_r.ok());
  ASSERT_GT(inline_r->rows.size(), 2u);

  auto opened = client.OpenCursor(2);
  ASSERT_TRUE(opened.ok());
  EXPECT_GT(opened->cursor_id, 0u);
  EXPECT_FALSE(opened->done);
  EXPECT_EQ(opened->columns, inline_r->columns);
  EXPECT_TRUE(opened->rows.empty());

  std::vector<std::vector<std::string>> streamed;
  RowsResult last;
  last.done = false;
  while (!last.done) {
    auto chunk = client.Fetch(opened->cursor_id, 2);
    ASSERT_TRUE(chunk.ok()) << chunk.status();
    last = std::move(chunk).ValueOrDie();
    streamed.insert(streamed.end(), last.rows.begin(), last.rows.end());
  }
  EXPECT_EQ(streamed, inline_r->rows);
  // A fully drained cursor has charged exactly what inline execution
  // charges.
  ExpectChargesEqual(last, [&] {
    core::QueryExecution ex;
    ex.rel_micros = inline_r->rel_us;
    ex.graph_micros = inline_r->graph_us;
    ex.migrate_micros = inline_r->migrate_us;
    ex.graph_io_micros = inline_r->graph_io_us;
    ex.graph_cpu_micros = inline_r->graph_cpu_us;
    return ex;
  }());
  // The drained cursor is gone server-side.
  auto again = client.Fetch(opened->cursor_id, 2);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsNotFound());
}

TEST_F(ServerTest, ErrorsMapToWireCodes) {
  StartServer();
  Client client = Connect();

  auto parse = client.Prepare(1, "SELEC nope");
  ASSERT_FALSE(parse.ok());
  EXPECT_TRUE(parse.status().IsParseError());

  auto no_stmt = client.Execute(99);
  ASSERT_FALSE(no_stmt.ok());
  EXPECT_TRUE(no_stmt.status().IsNotFound());

  ASSERT_TRUE(client.Prepare(1, kFlagshipParam).ok());
  auto unbound = client.Execute(1);
  ASSERT_FALSE(unbound.ok());
  EXPECT_TRUE(unbound.status().IsFailedPrecondition());

  auto bad_param = client.Execute(1, {{"town", "berlin"}});
  ASSERT_FALSE(bad_param.ok());
  EXPECT_TRUE(bad_param.status().IsInvalidArgument());

  auto unknown_term = client.Execute(1, {{"city", "atlantis"}});
  ASSERT_FALSE(unknown_term.ok());
  EXPECT_TRUE(unknown_term.status().IsNotFound());

  // The connection survives every one of those errors.
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServerTest, ZeroDepthQueueRejectsWithResourceExhausted) {
  ServerConfig cfg;
  cfg.max_queue_depth = 0;  // admission admits nothing, deterministically
  StartServer(cfg);
  Client client = Connect();

  auto r = client.Prepare(1, kFlagshipParam);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCapacityExceeded()) << r.status();
  // Rejection is an answer, not a stall: the connection still serves
  // PING (which bypasses the queue).
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_GE(server_->stats().requests_rejected, 1u);
  EXPECT_EQ(server_->stats().requests_admitted, 0u);
}

TEST_F(ServerTest, OverloadShedsExcessButAnswersEverything) {
  // One worker held on a gate while a pipelined client floods the
  // 4-deep queue: every request gets an answer — some ROWS, the
  // overflow RESOURCE_EXHAUSTED — and nothing hangs.
  std::atomic<bool> gate{false};
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.max_queue_depth = 4;
  cfg.test_batch_hook = [&gate] {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  StartServer(cfg);
  Client client = Connect();
  // Prepare goes through the queue too: open the gate for it, then
  // close it for the flood.
  gate.store(true);
  ASSERT_TRUE(client.Prepare(1, kScanAll).ok());
  gate.store(false);

  constexpr int kFlood = 40;
  for (int i = 0; i < kFlood; ++i) {
    ASSERT_TRUE(client.SendExecute(1000 + i, 1, {}).ok());
  }
  gate.store(true);

  int rows_ok = 0, rejected = 0;
  for (int i = 0; i < kFlood; ++i) {
    auto resp = client.Receive();
    ASSERT_TRUE(resp.ok()) << resp.status();
    if (resp->type == MsgType::kRows) {
      ++rows_ok;
    } else {
      ASSERT_EQ(resp->type, MsgType::kError);
      EXPECT_TRUE(resp->error.IsCapacityExceeded()) << resp->error;
      ++rejected;
    }
  }
  EXPECT_EQ(rows_ok + rejected, kFlood);
  EXPECT_GT(rejected, 0);  // the 4-deep queue cannot hold a 40-burst
  EXPECT_GT(rows_ok, 0);
  EXPECT_EQ(server_->stats().requests_rejected,
            static_cast<uint64_t>(rejected));
}

// TSan-registered: many real-socket client threads vs a serial
// single-Session oracle — rows and simulated charges bit-identical.
TEST_F(ServerTest, ConcurrentClientsMatchSerialOracle) {
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.max_batch = 8;
  StartServer(cfg);

  struct Expected {
    std::string text;
    std::vector<std::pair<std::string, std::string>> bindings;
    std::vector<std::vector<std::string>> rows;
    double charges[5];
  };
  const std::vector<std::pair<std::string, std::string>> cases[] = {
      {{"city", "berlin"}}, {{"city", "paris"}}, {}};
  std::vector<Expected> expected;
  {
    rdf::Dataset oracle_ds = testing::SmallPeopleGraph();
    OnlineStore oracle_store(oracle_ds, {});
    Session oracle(&oracle_store);
    for (const auto& binds : cases) {
      Expected e;
      e.text = binds.empty() ? kScanAll : kFlagshipParam;
      e.bindings = binds;
      auto prep = oracle.Prepare(e.text);
      ASSERT_TRUE(prep.ok());
      for (const auto& [n, t] : binds) ASSERT_TRUE(prep->Bind(n, t).ok());
      auto ex = prep->ExecuteAll();
      ASSERT_TRUE(ex.ok());
      e.rows = WireRows(ex->result, oracle_store.Read().store().dict());
      e.charges[0] = ex->rel_micros;
      e.charges[1] = ex->graph_micros;
      e.charges[2] = ex->migrate_micros;
      e.charges[3] = ex->graph_io_micros;
      e.charges[4] = ex->graph_cpu_micros;
      expected.push_back(std::move(e));
    }
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto client_r = Client::Connect(server_->port());
      if (!client_r.ok()) {
        ++failures;
        return;
      }
      Client client = std::move(client_r).ValueOrDie();
      for (size_t s = 0; s < expected.size(); ++s) {
        if (!client.Prepare(static_cast<uint32_t>(s + 1),
                            expected[s].text)
                 .ok()) {
          ++failures;
          return;
        }
      }
      for (int i = 0; i < kIters; ++i) {
        const Expected& e = expected[(t + i) % expected.size()];
        const uint32_t stmt =
            static_cast<uint32_t>(((t + i) % expected.size()) + 1);
        auto r = client.Execute(stmt, e.bindings);
        if (!r.ok() || r->rows != e.rows || r->rel_us != e.charges[0] ||
            r->graph_us != e.charges[1] || r->migrate_us != e.charges[2] ||
            r->graph_io_us != e.charges[3] ||
            r->graph_cpu_us != e.charges[4]) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // The shared plan cache compiled each text far fewer times than the
  // 8 x 25 executions that used it.
  const auto cache_stats = server_->plan_cache().stats();
  EXPECT_GE(cache_stats.hits, 1u);
  EXPECT_LE(cache_stats.misses, static_cast<uint64_t>(expected.size()) * 4);
}

// TSan-registered: shared-plan-cache invalidation under a concurrent
// ApplyUpdates stream — stale plan_epoch entries re-prepare
// transparently, and every wire answer equals the pre- or post-publish
// oracle, never a torn state.
TEST_F(ServerTest, PlanCacheInvalidationUnderConcurrentUpdates) {
  ServerConfig cfg;
  cfg.workers = 2;
  StartServer(cfg);

  // Oracle rows before and after each update wave. The flagship
  // berlin query grows by one row per inserted (person, advisor) pair.
  auto count_rows = [&](Client* c) -> size_t {
    auto r = c->Execute(1, {{"city", "berlin"}});
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? r->rows.size() : 0;
  };

  Client client = Connect();
  ASSERT_TRUE(client.Prepare(1, kFlagshipParam).ok());
  const size_t before = count_rows(&client);
  ASSERT_EQ(before, 1u);

  constexpr int kWaves = 6;
  std::atomic<bool> stop_readers{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      auto client_r = Client::Connect(server_->port());
      if (!client_r.ok()) {
        ++failures;
        return;
      }
      Client c = std::move(client_r).ValueOrDie();
      if (!c.Prepare(1, kFlagshipParam).ok()) {
        ++failures;
        return;
      }
      while (!stop_readers.load(std::memory_order_acquire)) {
        auto r = c.Execute(1, {{"city", "berlin"}});
        if (!r.ok()) {
          // A binding may reference a term the pinned snapshot does not
          // hold yet; that surfaces as NotFound, which is a correct
          // answer, not a torn one.
          if (!r.status().IsNotFound()) ++failures;
          continue;
        }
        // Any prefix state is legal; torn states are not.
        if (r->rows.size() < 1 || r->rows.size() > 1 + kWaves) ++failures;
      }
    });
  }

  // The single injector publishes kWaves batches while readers hammer.
  for (int wave = 0; wave < kWaves; ++wave) {
    UpdateBatch batch;
    const std::string who = "newcomer" + std::to_string(wave);
    batch.ops.push_back(UpdateOp::Insert(who, "bornIn", "berlin"));
    batch.ops.push_back(UpdateOp::Insert(who, "advisor", "alice"));
    ASSERT_TRUE(store_->ApplyUpdates(batch).ok());
  }
  stop_readers.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Post-update executes see every wave, through a re-prepared plan.
  EXPECT_EQ(count_rows(&client), 1u + kWaves);
  EXPECT_GE(server_->plan_cache().stats().invalidations, 1u);
}

TEST_F(ServerTest, SignalShutdownDrainsInFlightAndCheckpoints) {
  const std::string dir = ScratchDir("graceful");
  persist::DurabilityOptions dur;
  dur.dir = dir;

  rdf::Dataset ds = testing::SmallPeopleGraph();
  OnlineStore store(ds, {}, dur);
  ASSERT_TRUE(store.poison_status().ok());
  // An applied batch moves the durability watermark, so the shutdown
  // checkpoint writes a NEW snapshot file we can assert on.
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Insert("eve", "bornIn", "berlin"));
  ASSERT_TRUE(store.ApplyUpdates(batch).ok());
  const size_t snapshots_before = [&] {
    size_t n = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      if (e.path().filename().string().rfind("snapshot", 0) == 0) ++n;
    }
    return n;
  }();

  std::atomic<bool> gate{false};
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.checkpoint_on_shutdown = true;
  cfg.test_batch_hook = [&gate] {
    while (!gate.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  Server server(&store, cfg);
  ASSERT_TRUE(server.Start().ok());
  InstallSignalShutdown(&server);

  auto client_r = Client::Connect(server.port());
  ASSERT_TRUE(client_r.ok());
  Client client = std::move(client_r).ValueOrDie();
  gate.store(true);
  ASSERT_TRUE(client.Prepare(1, kScanAll).ok());
  gate.store(false);

  // Five requests go in while the worker is held; all must be answered
  // during the drain.
  constexpr int kInFlight = 5;
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_TRUE(client.SendExecute(500 + i, 1, {}).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_EQ(std::raise(SIGTERM), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.store(true);  // release the worker: the drain can proceed

  int answered = 0;
  for (int i = 0; i < kInFlight; ++i) {
    auto resp = client.Receive();
    if (!resp.ok()) break;  // server closed after the drain
    if (resp->type == MsgType::kRows) ++answered;
  }
  EXPECT_EQ(answered, kInFlight);

  for (int i = 0; i < 500 && !server.stopped(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(server.stopped());
  InstallSignalShutdown(nullptr);

  size_t snapshots_after = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().filename().string().rfind("snapshot", 0) == 0) {
      ++snapshots_after;
    }
  }
  EXPECT_GT(snapshots_after, snapshots_before)
      << "shutdown did not write a final checkpoint";
}

TEST_F(ServerTest, AdminListenerServesMetricsHealthAndSlowLog) {
  auto& slow = telemetry::MetricsRegistry::Global().slow_queries();
  slow.Clear();
  const double saved_threshold = slow.threshold_ms();

  ServerConfig cfg;
  cfg.slow_query_ms = 1e-6;  // everything is "slow": the log must fill
  StartServer(cfg);
  Client client = Connect();
  ASSERT_TRUE(client.Prepare(1, kScanAll).ok());
  ASSERT_TRUE(client.Execute(1).ok());

  auto health = Client::HttpGet(server_->admin_port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(*health, "ok\n");

  auto metrics = Client::HttpGet(server_->admin_port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->find("# TYPE server_requests_admitted counter"),
            std::string::npos);
  EXPECT_NE(metrics->find("server_batches"), std::string::npos);
  EXPECT_NE(metrics->find("server_request_us_count"), std::string::npos);

  // The slow-query log captured the wire-level text, tagged with the
  // tenant connection.
  auto slow_dump = Client::HttpGet(server_->admin_port(), "/debug/slow");
  ASSERT_TRUE(slow_dump.ok()) << slow_dump.status();
  EXPECT_NE(slow_dump->find("\"entries\""), std::string::npos);
  EXPECT_NE(slow_dump->find("conn="), std::string::npos);
  EXPECT_NE(slow_dump->find("bornIn"), std::string::npos);

  auto missing = Client::HttpGet(server_->admin_port(), "/nope");
  EXPECT_FALSE(missing.ok());

  slow.set_threshold_ms(saved_threshold);
  slow.Clear();
}

TEST_F(ServerTest, MalformedFrameDropsConnectionOthersSurvive) {
  StartServer();
  Client bystander = Connect();
  ASSERT_TRUE(bystander.Ping().ok());

  // Hand-craft a connection that sends an oversize length prefix — a
  // protocol violation the server answers by dropping the offender.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  const uint8_t bad[] = {0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 0};
  ASSERT_EQ(::send(fd, bad, sizeof(bad), 0),
            static_cast<ssize_t>(sizeof(bad)));
  // The server closes us: recv drains to EOF rather than hanging.
  timeval tv{2, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[64];
  ssize_t n;
  do {
    n = ::recv(fd, buf, sizeof(buf), 0);
  } while (n > 0);
  EXPECT_EQ(n, 0) << "expected clean EOF from the server";
  ::close(fd);

  // The rule-abiding neighbour is unaffected.
  EXPECT_TRUE(bystander.Ping().ok());
}

}  // namespace
}  // namespace dskg::server
