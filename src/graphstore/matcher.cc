#include "graphstore/matcher.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace dskg::graphstore {

using rdf::TermId;
using sparql::BindingTable;

namespace {

/// Assigns one dense slot per distinct variable name of the query.
class SlotLayout {
 public:
  int SlotOf(const std::string& var) {
    auto [it, inserted] = slots_.emplace(var, static_cast<int>(slots_.size()));
    (void)inserted;
    return it->second;
  }

  /// Slot of `var`, or -1 when the variable never occurs in a pattern.
  int Find(const std::string& var) const {
    auto it = slots_.find(var);
    return it == slots_.end() ? -1 : it->second;
  }

  size_t size() const { return slots_.size(); }

 private:
  std::unordered_map<std::string, int> slots_;
};

TraversalMatcher::End EncodeEnd(const sparql::PatternTerm& t,
                                const rdf::Dictionary& dict,
                                SlotLayout* layout,
                                std::vector<std::string>* param_names) {
  TraversalMatcher::End e;
  if (t.is_variable) {
    e.is_variable = true;
    e.slot = layout->SlotOf(t.text);
    return e;
  }
  if (t.is_param) {
    // An open constant: the value arrives when the cursor opens. Not
    // "missing" — bound values are validated at bind time instead.
    const auto it =
        std::find(param_names->begin(), param_names->end(), t.text);
    if (it == param_names->end()) {
      e.param = static_cast<int>(param_names->size());
      param_names->push_back(t.text);
    } else {
      e.param = static_cast<int>(it - param_names->begin());
    }
    return e;
  }
  e.constant = dict.Lookup(t.text);
  e.missing = (e.constant == rdf::kInvalidTermId);
  return e;
}

}  // namespace

Result<TraversalMatcher::Plan> TraversalMatcher::Compile(
    const sparql::Query& query) const {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }

  // ---- encode + preconditions (slot compilation happens here) -----------
  Plan plan;
  SlotLayout layout;
  std::vector<EncPat> encoded;
  encoded.reserve(query.patterns.size());
  for (const sparql::TriplePattern& tp : query.patterns) {
    if (tp.predicate.is_variable) {
      return Status::FailedPrecondition(
          "variable predicate ?" + tp.predicate.text +
          " cannot be answered by the partial graph store");
    }
    EncPat p;
    p.subject = EncodeEnd(tp.subject, *dict_, &layout, &plan.param_names);
    p.object = EncodeEnd(tp.object, *dict_, &layout, &plan.param_names);
    const TermId pred = dict_->Lookup(tp.predicate.text);
    if (pred == rdf::kInvalidTermId) {
      plan.impossible = true;  // unknown predicate term matches nothing
      p.predicate = rdf::kInvalidTermId;
    } else {
      if (!graph_->HasPredicate(pred)) {
        return Status::FailedPrecondition(
            "partition of predicate " + tp.predicate.text +
            " is not resident in the graph store");
      }
      p.predicate = pred;
    }
    if (p.subject.missing || p.object.missing) plan.impossible = true;
    encoded.push_back(std::move(p));
  }

  plan.out_vars =
      query.select_vars.empty() ? query.AllVariables() : query.select_vars;
  plan.out_slots.reserve(plan.out_vars.size());
  for (const std::string& v : plan.out_vars) {
    plan.out_slots.push_back(layout.Find(v));
  }
  plan.num_slots = layout.size();

  // ---- traversal order: smallest seed first, then stay connected --------
  // A `$param` endpoint scores exactly like the constant it will become,
  // so the compiled order is the order the bound query would get.
  std::vector<size_t> order;
  std::vector<bool> used(encoded.size(), false);
  std::vector<bool> var_bound(layout.size(), false);
  auto is_bound = [&](const End& e) {
    return !e.is_variable || var_bound[e.slot];
  };
  auto score = [&](const EncPat& p) -> uint64_t {
    // A pattern reachable from a bound vertex costs ~degree; a free
    // pattern costs its whole partition. Constant endpoints narrow it.
    uint64_t base = graph_->PartitionTriples(p.predicate);
    if (is_bound(p.subject) || is_bound(p.object)) {
      base = base / 64 + 1;  // expansion from a bound vertex
    }
    if (!p.subject.is_variable) base = base / 4 + 1;
    if (!p.object.is_variable) base = base / 4 + 1;
    return base;
  };
  for (size_t step = 0; step < encoded.size(); ++step) {
    size_t best = encoded.size();
    uint64_t best_score = std::numeric_limits<uint64_t>::max();
    bool best_connected = false;
    for (size_t i = 0; i < encoded.size(); ++i) {
      if (used[i]) continue;
      const bool connected =
          is_bound(encoded[i].subject) || is_bound(encoded[i].object);
      const uint64_t sc = score(encoded[i]);
      if (best == encoded.size() || (connected && !best_connected) ||
          (connected == best_connected && sc < best_score)) {
        best = i;
        best_score = sc;
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    if (encoded[best].subject.is_variable) {
      var_bound[encoded[best].subject.slot] = true;
    }
    if (encoded[best].object.is_variable) {
      var_bound[encoded[best].object.slot] = true;
    }
  }
  plan.patterns.reserve(order.size());
  for (size_t i : order) plan.patterns.push_back(encoded[i]);
  return plan;
}

Result<TraversalMatcher::Cursor> TraversalMatcher::OpenCursor(
    const Plan& plan, const TermId* param_values, CostMeter* meter) const {
  for (size_t i = 0; i < plan.param_names.size(); ++i) {
    if (param_values == nullptr || param_values[i] == rdf::kInvalidTermId) {
      return Status::FailedPrecondition(
          "unbound parameter $" + plan.param_names[i] +
          " (bind every parameter before executing)");
    }
  }
  Cursor c;
  c.graph_ = graph_;
  c.meter_ = meter;
  c.patterns_ = plan.patterns;
  for (EncPat& p : c.patterns_) {
    if (p.subject.param >= 0) p.subject.constant = param_values[p.subject.param];
    if (p.object.param >= 0) p.object.constant = param_values[p.object.param];
  }
  c.out_vars_ = plan.out_vars;
  c.out_slots_ = plan.out_slots;
  c.slots_.assign(plan.num_slots, rdf::kInvalidTermId);
  c.trail_.reserve(plan.num_slots);
  if (plan.impossible) c.finished_ = true;
  return c;
}

Result<BindingTable> TraversalMatcher::Match(const sparql::Query& query,
                                             CostMeter* meter) const {
  DSKG_ASSIGN_OR_RETURN(Plan plan, Compile(query));
  if (!plan.param_names.empty()) {
    return Status::FailedPrecondition(
        "query has unbound parameters; prepare and bind it instead");
  }
  return DrainSerial(plan, nullptr, meter);
}

Result<BindingTable> TraversalMatcher::DrainSerial(
    const Plan& plan, const TermId* param_values, CostMeter* meter) const {
  DSKG_ASSIGN_OR_RETURN(Cursor cursor, OpenCursor(plan, param_values, meter));
  BindingTable out;
  out.columns = plan.out_vars;
  bool done = false;
  DSKG_RETURN_NOT_OK(
      cursor.Fill(&out, std::numeric_limits<size_t>::max(), &done));
  return out;
}

Result<BindingTable> TraversalMatcher::MatchSharded(
    const Plan& plan, const TermId* param_values, CostMeter* meter,
    ThreadPool* pool, int max_shards) const {
  if (max_shards <= 0 && pool != nullptr) {
    max_shards = static_cast<int>(pool->size());
  }
  // Budgeted traversal cancels cooperatively against one running total — a
  // serial protocol, so budgeted plans always take the serial drain.
  if (pool == nullptr || max_shards <= 1 || plan.impossible ||
      meter->budget_micros() > 0.0) {
    return DrainSerial(plan, param_values, meter);
  }

  // Peek the first pattern's candidate range without charging: the root
  // endpoints are constants or params, so resolution needs no DFS state.
  DSKG_ASSIGN_OR_RETURN(Cursor proto, OpenCursor(plan, param_values, meter));
  const EncPat& p0 = proto.patterns_[0];
  const bool s_bound = !p0.subject.is_variable;
  const bool o_bound = !p0.object.is_variable;
  Cursor::Frame root;
  if (s_bound) {
    root.mode = Cursor::Frame::kOut;
    root.nbrs = graph_->OutNeighbors(p0.subject.constant, p0.predicate);
    root.has_o = o_bound;
    root.o_val = p0.object.constant;
  } else if (o_bound) {
    root.mode = Cursor::Frame::kIn;
    root.nbrs = graph_->InNeighbors(p0.object.constant, p0.predicate);
  } else {
    root.mode = Cursor::Frame::kEdges;
    root.edges = &graph_->Edges(p0.predicate);
  }
  const size_t count = root.mode == Cursor::Frame::kEdges
                           ? root.edges->size()
                           : (root.nbrs == nullptr ? 0 : root.nbrs->size());
  const size_t num_shards =
      std::min<size_t>(static_cast<size_t>(max_shards), count);
  if (num_shards <= 1) return DrainSerial(plan, param_values, meter);

  // From here on this call owns the serial path's charges: replicate the
  // root descent's node lookup exactly once on the caller's meter.
  if (s_bound || o_bound) meter->Add(Op::kNodeLookup);

  struct ShardOutcome {
    Status status;
    BindingTable table;
    CostMeter meter;
  };
  std::vector<ShardOutcome> outcomes(num_shards);
  // Shard tasks run on pool workers that have no thread-local read
  // snapshot installed: re-install the caller's so they see the same
  // graph state (null = live reads, same as the caller).
  const PropertyGraph::Snapshot* snapshot = graph_->InstalledSnapshot();
  const size_t base = count / num_shards;
  const size_t extra = count % num_shards;
  pool->ParallelFor(num_shards, [&](size_t s) {
    ShardOutcome& out = outcomes[s];
    PropertyGraph::ReadScope read_scope(snapshot);
    out.meter = CostMeter(meter->model(), meter->throttle());
    Cursor c;
    c.graph_ = graph_;
    c.meter_ = &out.meter;
    c.patterns_ = proto.patterns_;
    c.out_vars_ = proto.out_vars_;
    c.out_slots_ = proto.out_slots_;
    c.slots_ = proto.slots_;
    c.trail_.reserve(c.slots_.size());
    Cursor::Frame f = root;
    f.idx = s * base + std::min(s, extra);
    f.end_idx = (s + 1) * base + std::min(s + 1, extra);
    c.stack_.push_back(f);
    c.descend_ = false;  // resume mid-frame at the shard's first candidate
    out.table.columns = proto.out_vars_;
    bool done = false;
    out.status =
        c.Fill(&out.table, std::numeric_limits<size_t>::max(), &done);
  });

  BindingTable merged;
  merged.columns = plan.out_vars;
  for (ShardOutcome& out : outcomes) {
    DSKG_RETURN_NOT_OK(out.status);
    meter->Merge(out.meter);
    merged.AppendRowsFrom(out.table);
  }
  return merged;
}

// ---- the resumable DFS ------------------------------------------------------

bool TraversalMatcher::Cursor::Resolve(const End& e, TermId* value) const {
  if (!e.is_variable) {
    *value = e.constant;
    return true;
  }
  const TermId v = slots_[e.slot];
  if (v == rdf::kInvalidTermId) return false;
  *value = v;
  return true;
}

bool TraversalMatcher::Cursor::Bind(const End& e, TermId value) {
  if (!e.is_variable) return e.constant == value;
  TermId& cell = slots_[e.slot];
  if (cell == rdf::kInvalidTermId) {
    cell = value;
    trail_.push_back(e.slot);
    return true;
  }
  return cell == value;
}

void TraversalMatcher::Cursor::Unwind(size_t mark) {
  while (trail_.size() > mark) {
    slots_[trail_.back()] = rdf::kInvalidTermId;
    trail_.pop_back();
  }
}

Status TraversalMatcher::Cursor::EmitRow(BindingTable* out) {
  TermId* row = out->AppendRow();
  for (size_t i = 0; i < out_slots_.size(); ++i) {
    const int slot = out_slots_[i];
    const TermId v = slot >= 0 ? slots_[slot] : rdf::kInvalidTermId;
    if (v == rdf::kInvalidTermId) {
      return Fail(Status::Internal("unbound output variable ?" +
                                   out_vars_[i]));
    }
    row[i] = v;
  }
  return Status::OK();
}

Status TraversalMatcher::Cursor::Fail(Status s) {
  status_ = std::move(s);
  return status_;
}

/// The recursive backtracking search of the original matcher, run as an
/// explicit-stack machine so it can suspend between emitted rows. Charge
/// points and budget checks sit exactly where the recursion had them, so
/// a drained cursor's meter is bit-identical to the one-shot path's.
Status TraversalMatcher::Cursor::Fill(BindingTable* out, size_t max_rows,
                                      bool* done) {
  *done = false;
  if (!status_.ok()) return status_;
  if (finished_) {
    *done = true;
    return Status::OK();
  }

  size_t emitted = 0;
  while (true) {
    if (descend_) {
      // Entering Step(depth) with depth == stack_.size().
      descend_ = false;
      if (meter_->ExceededBudget()) {
        return Fail(
            Status::Cancelled("graph traversal exceeded cost budget"));
      }
      const size_t depth = stack_.size();
      if (depth == patterns_.size()) {
        DSKG_RETURN_NOT_OK(EmitRow(out));
        ++emitted;
        if (emitted >= max_rows) return Status::OK();  // suspend, stack kept
        continue;  // the child "returned OK": resume the parent frame
      }
      const EncPat& p = patterns_[depth];
      TermId s_val = rdf::kInvalidTermId;
      TermId o_val = rdf::kInvalidTermId;
      const bool s_bound = Resolve(p.subject, &s_val);
      const bool o_bound = Resolve(p.object, &o_val);
      Frame f;
      if (s_bound) {
        meter_->Add(Op::kNodeLookup);
        f.mode = Frame::kOut;
        f.nbrs = graph_->OutNeighbors(s_val, p.predicate);
        f.has_o = o_bound;
        f.o_val = o_val;
        if (f.nbrs == nullptr) continue;  // no expansion: return OK upward
      } else if (o_bound) {
        meter_->Add(Op::kNodeLookup);
        f.mode = Frame::kIn;
        f.nbrs = graph_->InNeighbors(o_val, p.predicate);
        if (f.nbrs == nullptr) continue;
      } else {
        // Both endpoints unbound: seed from the partition's edge list.
        f.mode = Frame::kEdges;
        f.edges = &graph_->Edges(p.predicate);
      }
      stack_.push_back(f);
      continue;
    }

    if (stack_.empty()) {
      finished_ = true;
      *done = true;
      return Status::OK();
    }

    Frame& f = stack_.back();
    const EncPat& p = patterns_[stack_.size() - 1];
    if (f.post_pending) {
      // The branch started last time (a descent, or a failed Bind) has
      // completed: unwind its bindings and run the post-branch budget
      // check, exactly as the recursion does after Step returns.
      f.post_pending = false;
      if (f.did_bind) Unwind(f.mark);
      if (meter_->ExceededBudget()) {
        return Fail(
            Status::Cancelled("graph traversal exceeded cost budget"));
      }
    }

    const size_t count = std::min(
        f.mode == Frame::kEdges ? f.edges->size() : f.nbrs->size(),
        f.end_idx);
    bool advanced = false;
    while (f.idx < count) {
      const size_t i = f.idx++;
      meter_->Add(Op::kAdjExpandEdge);
      if (f.mode == Frame::kOut) {
        const TermId nbr = (*f.nbrs)[i];
        if (f.has_o) {
          meter_->Add(Op::kBindCheck);
          if (nbr != f.o_val) continue;  // mismatch: next neighbor directly
          f.post_pending = true;
          f.did_bind = false;
          descend_ = true;
        } else {
          f.mark = trail_.size();
          f.post_pending = true;
          f.did_bind = true;
          if (Bind(p.object, nbr)) descend_ = true;
        }
      } else if (f.mode == Frame::kIn) {
        const TermId nbr = (*f.nbrs)[i];
        f.mark = trail_.size();
        f.post_pending = true;
        f.did_bind = true;
        if (Bind(p.subject, nbr)) descend_ = true;
      } else {
        const auto& [es, eo] = (*f.edges)[i];
        f.mark = trail_.size();
        f.post_pending = true;
        f.did_bind = true;
        if (Bind(p.subject, es) && Bind(p.object, eo)) descend_ = true;
      }
      advanced = true;
      break;
    }
    if (!advanced) stack_.pop_back();  // frame exhausted: return OK upward
  }
}

}  // namespace dskg::graphstore
