#include "graphstore/matcher.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

namespace dskg::graphstore {

using rdf::TermId;
using sparql::BindingTable;

namespace {

/// One pattern endpoint: a constant id or a variable slot. Variable names
/// are resolved to dense slot indexes at plan time ("slot compilation");
/// the traversal itself never touches a string.
struct End {
  bool is_variable = false;
  int slot = -1;  // when is_variable: index into the Dfs slot array
  TermId constant = rdf::kInvalidTermId;  // when !is_variable
  bool missing = false;  // constant absent from the dictionary
};

/// Assigns one dense slot per distinct variable name of the query.
class SlotLayout {
 public:
  int SlotOf(const std::string& var) {
    auto [it, inserted] = slots_.emplace(var, static_cast<int>(slots_.size()));
    (void)inserted;
    return it->second;
  }

  /// Slot of `var`, or -1 when the variable never occurs in a pattern.
  int Find(const std::string& var) const {
    auto it = slots_.find(var);
    return it == slots_.end() ? -1 : it->second;
  }

  size_t size() const { return slots_.size(); }

 private:
  std::unordered_map<std::string, int> slots_;
};

End EncodeEnd(const sparql::PatternTerm& t, const rdf::Dictionary& dict,
              SlotLayout* layout) {
  End e;
  if (t.is_variable) {
    e.is_variable = true;
    e.slot = layout->SlotOf(t.text);
    return e;
  }
  e.constant = dict.Lookup(t.text);
  e.missing = (e.constant == rdf::kInvalidTermId);
  return e;
}

struct EncPat {
  End subject;
  TermId predicate = rdf::kInvalidTermId;  // always constant (checked)
  End object;
};

/// Backtracking evaluator. Holds the traversal state shared across the
/// recursion so the per-call frame stays small. Bindings live in a fixed
/// `TermId` slot array (`kInvalidTermId` = unbound) with an integer
/// trail — binding, probing and unwinding are array stores, never a heap
/// allocation or a string hash.
class Dfs {
 public:
  Dfs(const PropertyGraph& graph, const std::vector<EncPat>& patterns,
      const std::vector<std::string>& out_vars,
      const std::vector<int>& out_slots, size_t num_slots, CostMeter* meter)
      : graph_(graph), patterns_(patterns), out_vars_(out_vars),
        out_slots_(out_slots), meter_(meter),
        slots_(num_slots, rdf::kInvalidTermId) {
    trail_.reserve(num_slots);
  }

  Result<BindingTable> Run() {
    BindingTable out;
    out.columns = out_vars_;
    out_ = &out;
    DSKG_RETURN_NOT_OK(Step(0));
    return out;
  }

 private:
  /// Value of `e` under current bindings, or nullopt when unbound.
  std::optional<TermId> Resolve(const End& e) const {
    if (!e.is_variable) return e.constant;
    const TermId v = slots_[e.slot];
    if (v == rdf::kInvalidTermId) return std::nullopt;
    return v;
  }

  /// Binds `e` (if a variable) to `value`; returns false on conflict with
  /// an existing binding. Appends to the trail for backtracking.
  bool Bind(const End& e, TermId value) {
    if (!e.is_variable) return e.constant == value;
    TermId& cell = slots_[e.slot];
    if (cell == rdf::kInvalidTermId) {
      cell = value;
      trail_.push_back(e.slot);
      return true;
    }
    return cell == value;
  }

  void Unwind(size_t mark) {
    while (trail_.size() > mark) {
      slots_[trail_.back()] = rdf::kInvalidTermId;
      trail_.pop_back();
    }
  }

  Status Emit() {
    TermId* row = out_->AppendRow();
    for (size_t i = 0; i < out_slots_.size(); ++i) {
      const int slot = out_slots_[i];
      const TermId v = slot >= 0 ? slots_[slot] : rdf::kInvalidTermId;
      if (v == rdf::kInvalidTermId) {
        return Status::Internal("unbound output variable ?" + out_vars_[i]);
      }
      row[i] = v;
    }
    return Status::OK();
  }

  Status Step(size_t depth) {
    if (meter_->ExceededBudget()) {
      return Status::Cancelled("graph traversal exceeded cost budget");
    }
    if (depth == patterns_.size()) return Emit();
    const EncPat& p = patterns_[depth];
    const std::optional<TermId> s = Resolve(p.subject);
    const std::optional<TermId> o = Resolve(p.object);

    if (s.has_value()) {
      meter_->Add(Op::kNodeLookup);
      const std::vector<TermId>* nbrs = graph_.OutNeighbors(*s, p.predicate);
      if (nbrs == nullptr) return Status::OK();
      for (TermId nbr : *nbrs) {
        meter_->Add(Op::kAdjExpandEdge);
        if (o.has_value()) {
          meter_->Add(Op::kBindCheck);
          if (nbr != *o) continue;
          DSKG_RETURN_NOT_OK(Step(depth + 1));
        } else {
          const size_t mark = trail_.size();
          if (Bind(p.object, nbr)) {
            DSKG_RETURN_NOT_OK(Step(depth + 1));
          }
          Unwind(mark);
        }
        if (meter_->ExceededBudget()) {
          return Status::Cancelled("graph traversal exceeded cost budget");
        }
      }
      return Status::OK();
    }

    if (o.has_value()) {
      meter_->Add(Op::kNodeLookup);
      const std::vector<TermId>* nbrs = graph_.InNeighbors(*o, p.predicate);
      if (nbrs == nullptr) return Status::OK();
      for (TermId nbr : *nbrs) {
        meter_->Add(Op::kAdjExpandEdge);
        const size_t mark = trail_.size();
        if (Bind(p.subject, nbr)) {
          DSKG_RETURN_NOT_OK(Step(depth + 1));
        }
        Unwind(mark);
        if (meter_->ExceededBudget()) {
          return Status::Cancelled("graph traversal exceeded cost budget");
        }
      }
      return Status::OK();
    }

    // Both endpoints unbound: seed from the partition's edge list.
    for (const auto& [es, eo] : graph_.Edges(p.predicate)) {
      meter_->Add(Op::kAdjExpandEdge);
      const size_t mark = trail_.size();
      if (Bind(p.subject, es) && Bind(p.object, eo)) {
        DSKG_RETURN_NOT_OK(Step(depth + 1));
      }
      Unwind(mark);
      if (meter_->ExceededBudget()) {
        return Status::Cancelled("graph traversal exceeded cost budget");
      }
    }
    return Status::OK();
  }

  const PropertyGraph& graph_;
  const std::vector<EncPat>& patterns_;
  const std::vector<std::string>& out_vars_;
  const std::vector<int>& out_slots_;
  CostMeter* meter_;
  std::vector<TermId> slots_;  // slot -> bound value, kInvalidTermId = free
  std::vector<int> trail_;     // slots bound on the current DFS path
  BindingTable* out_ = nullptr;
};

}  // namespace

Result<BindingTable> TraversalMatcher::Match(const sparql::Query& query,
                                             CostMeter* meter) const {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }

  // ---- encode + preconditions (slot compilation happens here) -----------
  SlotLayout layout;
  std::vector<EncPat> encoded;
  encoded.reserve(query.patterns.size());
  bool impossible = false;
  for (const sparql::TriplePattern& tp : query.patterns) {
    if (tp.predicate.is_variable) {
      return Status::FailedPrecondition(
          "variable predicate ?" + tp.predicate.text +
          " cannot be answered by the partial graph store");
    }
    EncPat p;
    p.subject = EncodeEnd(tp.subject, *dict_, &layout);
    p.object = EncodeEnd(tp.object, *dict_, &layout);
    const TermId pred = dict_->Lookup(tp.predicate.text);
    if (pred == rdf::kInvalidTermId) {
      impossible = true;  // unknown predicate term matches nothing
      p.predicate = rdf::kInvalidTermId;
    } else {
      if (!graph_->HasPredicate(pred)) {
        return Status::FailedPrecondition(
            "partition of predicate " + tp.predicate.text +
            " is not resident in the graph store");
      }
      p.predicate = pred;
    }
    if (p.subject.missing || p.object.missing) impossible = true;
    encoded.push_back(std::move(p));
  }

  const std::vector<std::string> out_vars =
      query.select_vars.empty() ? query.AllVariables() : query.select_vars;
  std::vector<int> out_slots;
  out_slots.reserve(out_vars.size());
  for (const std::string& v : out_vars) out_slots.push_back(layout.Find(v));

  if (impossible) {
    BindingTable empty;
    empty.columns = out_vars;
    return empty;
  }

  // ---- traversal order: smallest seed first, then stay connected --------
  std::vector<size_t> order;
  std::vector<bool> used(encoded.size(), false);
  std::vector<bool> var_bound(layout.size(), false);
  auto is_bound = [&](const End& e) {
    return !e.is_variable || var_bound[e.slot];
  };
  auto score = [&](const EncPat& p) -> uint64_t {
    // A pattern reachable from a bound vertex costs ~degree; a free
    // pattern costs its whole partition. Constant endpoints narrow it.
    uint64_t base = graph_->PartitionTriples(p.predicate);
    if (is_bound(p.subject) || is_bound(p.object)) {
      base = base / 64 + 1;  // expansion from a bound vertex
    }
    if (!p.subject.is_variable) base = base / 4 + 1;
    if (!p.object.is_variable) base = base / 4 + 1;
    return base;
  };
  for (size_t step = 0; step < encoded.size(); ++step) {
    size_t best = encoded.size();
    uint64_t best_score = std::numeric_limits<uint64_t>::max();
    bool best_connected = false;
    for (size_t i = 0; i < encoded.size(); ++i) {
      if (used[i]) continue;
      const bool connected =
          is_bound(encoded[i].subject) || is_bound(encoded[i].object);
      const uint64_t sc = score(encoded[i]);
      if (best == encoded.size() || (connected && !best_connected) ||
          (connected == best_connected && sc < best_score)) {
        best = i;
        best_score = sc;
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    if (encoded[best].subject.is_variable) {
      var_bound[encoded[best].subject.slot] = true;
    }
    if (encoded[best].object.is_variable) {
      var_bound[encoded[best].object.slot] = true;
    }
  }
  std::vector<EncPat> ordered;
  ordered.reserve(order.size());
  for (size_t i : order) ordered.push_back(encoded[i]);

  Dfs dfs(*graph_, ordered, out_vars, out_slots, layout.size(), meter);
  return dfs.Run();
}

}  // namespace dskg::graphstore
