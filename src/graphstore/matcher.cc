#include "graphstore/matcher.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

namespace dskg::graphstore {

using rdf::TermId;
using sparql::BindingTable;

namespace {

/// One pattern endpoint: a constant id or a variable name.
struct End {
  bool is_variable = false;
  std::string var;
  TermId constant = rdf::kInvalidTermId;
  bool missing = false;  // constant absent from the dictionary
};

End EncodeEnd(const sparql::PatternTerm& t, const rdf::Dictionary& dict) {
  End e;
  if (t.is_variable) {
    e.is_variable = true;
    e.var = t.text;
    return e;
  }
  e.constant = dict.Lookup(t.text);
  e.missing = (e.constant == rdf::kInvalidTermId);
  return e;
}

struct EncPat {
  End subject;
  TermId predicate = rdf::kInvalidTermId;  // always constant (checked)
  End object;
};

/// Backtracking evaluator. Holds the traversal state shared across the
/// recursion so the per-call frame stays small.
class Dfs {
 public:
  Dfs(const PropertyGraph& graph, const std::vector<EncPat>& patterns,
      const std::vector<std::string>& out_vars, CostMeter* meter)
      : graph_(graph), patterns_(patterns), out_vars_(out_vars),
        meter_(meter) {}

  Result<BindingTable> Run() {
    BindingTable out;
    out.columns = out_vars_;
    rows_ = &out.rows;
    DSKG_RETURN_NOT_OK(Step(0));
    return out;
  }

 private:
  /// Value of `e` under current bindings, or nullopt when unbound.
  std::optional<TermId> Resolve(const End& e) const {
    if (!e.is_variable) return e.constant;
    auto it = bindings_.find(e.var);
    if (it == bindings_.end()) return std::nullopt;
    return it->second;
  }

  /// Binds `e` (if a variable) to `value`; returns false on conflict with
  /// an existing binding. Appends to the trail for backtracking.
  bool Bind(const End& e, TermId value) {
    if (!e.is_variable) return e.constant == value;
    auto [it, inserted] = bindings_.emplace(e.var, value);
    if (inserted) {
      trail_.push_back(e.var);
      return true;
    }
    return it->second == value;
  }

  void Unwind(size_t mark) {
    while (trail_.size() > mark) {
      bindings_.erase(trail_.back());
      trail_.pop_back();
    }
  }

  Status Emit() {
    std::vector<TermId> row;
    row.reserve(out_vars_.size());
    for (const std::string& v : out_vars_) {
      auto it = bindings_.find(v);
      if (it == bindings_.end()) {
        return Status::Internal("unbound output variable ?" + v);
      }
      row.push_back(it->second);
    }
    rows_->push_back(std::move(row));
    return Status::OK();
  }

  Status Step(size_t depth) {
    if (meter_->ExceededBudget()) {
      return Status::Cancelled("graph traversal exceeded cost budget");
    }
    if (depth == patterns_.size()) return Emit();
    const EncPat& p = patterns_[depth];
    const std::optional<TermId> s = Resolve(p.subject);
    const std::optional<TermId> o = Resolve(p.object);

    if (s.has_value()) {
      meter_->Add(Op::kNodeLookup);
      const std::vector<TermId>* nbrs = graph_.OutNeighbors(*s, p.predicate);
      if (nbrs == nullptr) return Status::OK();
      for (TermId nbr : *nbrs) {
        meter_->Add(Op::kAdjExpandEdge);
        if (o.has_value()) {
          meter_->Add(Op::kBindCheck);
          if (nbr != *o) continue;
          DSKG_RETURN_NOT_OK(Step(depth + 1));
        } else {
          const size_t mark = trail_.size();
          if (Bind(p.object, nbr)) {
            DSKG_RETURN_NOT_OK(Step(depth + 1));
          }
          Unwind(mark);
        }
        if (meter_->ExceededBudget()) {
          return Status::Cancelled("graph traversal exceeded cost budget");
        }
      }
      return Status::OK();
    }

    if (o.has_value()) {
      meter_->Add(Op::kNodeLookup);
      const std::vector<TermId>* nbrs = graph_.InNeighbors(*o, p.predicate);
      if (nbrs == nullptr) return Status::OK();
      for (TermId nbr : *nbrs) {
        meter_->Add(Op::kAdjExpandEdge);
        const size_t mark = trail_.size();
        if (Bind(p.subject, nbr)) {
          DSKG_RETURN_NOT_OK(Step(depth + 1));
        }
        Unwind(mark);
        if (meter_->ExceededBudget()) {
          return Status::Cancelled("graph traversal exceeded cost budget");
        }
      }
      return Status::OK();
    }

    // Both endpoints unbound: seed from the partition's edge list.
    for (const auto& [es, eo] : graph_.Edges(p.predicate)) {
      meter_->Add(Op::kAdjExpandEdge);
      const size_t mark = trail_.size();
      if (Bind(p.subject, es) && Bind(p.object, eo)) {
        DSKG_RETURN_NOT_OK(Step(depth + 1));
      }
      Unwind(mark);
      if (meter_->ExceededBudget()) {
        return Status::Cancelled("graph traversal exceeded cost budget");
      }
    }
    return Status::OK();
  }

  const PropertyGraph& graph_;
  const std::vector<EncPat>& patterns_;
  const std::vector<std::string>& out_vars_;
  CostMeter* meter_;
  std::unordered_map<std::string, TermId> bindings_;
  std::vector<std::string> trail_;
  std::vector<std::vector<TermId>>* rows_ = nullptr;
};

}  // namespace

Result<BindingTable> TraversalMatcher::Match(const sparql::Query& query,
                                             CostMeter* meter) const {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }

  // ---- encode + preconditions -------------------------------------------
  std::vector<EncPat> encoded;
  encoded.reserve(query.patterns.size());
  bool impossible = false;
  for (const sparql::TriplePattern& tp : query.patterns) {
    if (tp.predicate.is_variable) {
      return Status::FailedPrecondition(
          "variable predicate ?" + tp.predicate.text +
          " cannot be answered by the partial graph store");
    }
    EncPat p;
    p.subject = EncodeEnd(tp.subject, *dict_);
    p.object = EncodeEnd(tp.object, *dict_);
    const TermId pred = dict_->Lookup(tp.predicate.text);
    if (pred == rdf::kInvalidTermId) {
      impossible = true;  // unknown predicate term matches nothing
      p.predicate = rdf::kInvalidTermId;
    } else {
      if (!graph_->HasPredicate(pred)) {
        return Status::FailedPrecondition(
            "partition of predicate " + tp.predicate.text +
            " is not resident in the graph store");
      }
      p.predicate = pred;
    }
    if (p.subject.missing || p.object.missing) impossible = true;
    encoded.push_back(std::move(p));
  }

  const std::vector<std::string> out_vars =
      query.select_vars.empty() ? query.AllVariables() : query.select_vars;

  if (impossible) {
    BindingTable empty;
    empty.columns = out_vars;
    return empty;
  }

  // ---- traversal order: smallest seed first, then stay connected --------
  std::vector<size_t> order;
  std::vector<bool> used(encoded.size(), false);
  std::vector<std::string> bound_vars;
  auto is_bound = [&](const End& e) {
    return !e.is_variable ||
           std::find(bound_vars.begin(), bound_vars.end(), e.var) !=
               bound_vars.end();
  };
  auto score = [&](const EncPat& p) -> uint64_t {
    // A pattern reachable from a bound vertex costs ~degree; a free
    // pattern costs its whole partition. Constant endpoints narrow it.
    uint64_t base = graph_->PartitionTriples(p.predicate);
    if (is_bound(p.subject) || is_bound(p.object)) {
      base = base / 64 + 1;  // expansion from a bound vertex
    }
    if (!p.subject.is_variable) base = base / 4 + 1;
    if (!p.object.is_variable) base = base / 4 + 1;
    return base;
  };
  for (size_t step = 0; step < encoded.size(); ++step) {
    size_t best = encoded.size();
    uint64_t best_score = std::numeric_limits<uint64_t>::max();
    bool best_connected = false;
    for (size_t i = 0; i < encoded.size(); ++i) {
      if (used[i]) continue;
      const bool connected =
          is_bound(encoded[i].subject) || is_bound(encoded[i].object);
      const uint64_t sc = score(encoded[i]);
      if (best == encoded.size() || (connected && !best_connected) ||
          (connected == best_connected && sc < best_score)) {
        best = i;
        best_score = sc;
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    if (encoded[best].subject.is_variable) {
      bound_vars.push_back(encoded[best].subject.var);
    }
    if (encoded[best].object.is_variable) {
      bound_vars.push_back(encoded[best].object.var);
    }
  }
  std::vector<EncPat> ordered;
  ordered.reserve(order.size());
  for (size_t i : order) ordered.push_back(encoded[i]);

  Dfs dfs(*graph_, ordered, out_vars, meter);
  return dfs.Run();
}

}  // namespace dskg::graphstore
