#ifndef DSKG_GRAPHSTORE_PROPERTY_GRAPH_H_
#define DSKG_GRAPHSTORE_PROPERTY_GRAPH_H_

/// \file property_graph.h
/// The native graph store: an index-free-adjacency property graph holding
/// a *subset* of the knowledge graph's predicate partitions.
///
/// Vertices are dictionary term ids; edges are labelled with predicate
/// ids. Each loaded partition keeps grouped out- and in-adjacency
/// (vertex -> neighbor list), so a traversal step from a bound vertex is a
/// pointer chase whose cost depends only on that vertex's degree — the
/// index-free adjacency property the paper leans on (query cost tracks the
/// traversal range, not the graph size).
///
/// Mirroring the systems the paper measured (Neo4j's cumbersome import,
/// gStore's triple limit), the store has
///   * a hard capacity in triples (`capacity_triples`), and
///   * an expensive bulk-import path (`kImportTriple` is the costliest
///     per-tuple weight in the cost model).
/// Partitions are imported and evicted whole, which is exactly the
/// granularity DOTIL tunes.

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/cost.h"
#include "common/status.h"
#include "rdf/triple.h"

namespace dskg::graphstore {

/// A capacity-bounded, partition-granular property graph.
class PropertyGraph {
 public:
  /// \param capacity_triples  maximum triples resident at once
  ///                          (0 = unlimited, for tests / Table 1).
  explicit PropertyGraph(uint64_t capacity_triples = 0)
      : capacity_triples_(capacity_triples) {}

  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;

  /// Bulk-imports the partition of `predicate`. All triples must carry
  /// that predicate. Fails with AlreadyExists if the partition is loaded
  /// and with CapacityExceeded if it does not fit. Charges one
  /// `kImportTriple` per triple.
  Status ImportPartition(rdf::TermId predicate,
                         const std::vector<rdf::Triple>& triples,
                         CostMeter* meter);

  /// Removes the partition of `predicate`. Charges one `kEvictTriple` per
  /// removed triple. NotFound if not loaded.
  Status EvictPartition(rdf::TermId predicate, CostMeter* meter);

  /// Inserts one triple into an already-loaded partition (the slow
  /// single-edge update path). CapacityExceeded / NotFound as above.
  Status InsertTriple(const rdf::Triple& t, CostMeter* meter);

  /// Removes one edge from an already-loaded partition (the online-update
  /// delete path). Charges one `kEvictTriple`. NotFound if the partition
  /// is not resident or the edge is absent. O(partition) worst case: the
  /// native store keeps no edge index, mirroring the slow single-edge
  /// maintenance the paper attributes to graph stores.
  Status RemoveTriple(const rdf::Triple& t, CostMeter* meter);

  /// True if `predicate`'s partition is resident.
  bool HasPredicate(rdf::TermId predicate) const {
    return partitions_.find(predicate) != partitions_.end();
  }

  /// Resident predicates in ascending id order (deterministic).
  std::vector<rdf::TermId> LoadedPredicates() const;

  /// Number of triples in `predicate`'s resident partition (0 if absent).
  uint64_t PartitionTriples(rdf::TermId predicate) const;

  uint64_t used_triples() const { return used_triples_; }
  uint64_t capacity_triples() const { return capacity_triples_; }
  /// Remaining capacity in triples (max value when unlimited).
  uint64_t FreeTriples() const;

  // --- adjacency access (used by the traversal matcher) -------------------

  /// Out-neighbors of `v` via `predicate`, or nullptr if none/not loaded.
  const std::vector<rdf::TermId>* OutNeighbors(rdf::TermId v,
                                               rdf::TermId predicate) const;

  /// In-neighbors of `v` via `predicate`, or nullptr if none/not loaded.
  const std::vector<rdf::TermId>* InNeighbors(rdf::TermId v,
                                              rdf::TermId predicate) const;

  /// All (subject, object) edges of `predicate`'s partition, insertion
  /// order. Empty if not loaded.
  const std::vector<std::pair<rdf::TermId, rdf::TermId>>& Edges(
      rdf::TermId predicate) const;

 private:
  struct Partition {
    std::vector<std::pair<rdf::TermId, rdf::TermId>> edges;
    std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> out;
    std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> in;
  };

  void AddEdge(Partition* part, rdf::TermId s, rdf::TermId o);

  // Ordered map keeps LoadedPredicates() deterministic.
  std::map<rdf::TermId, Partition> partitions_;
  uint64_t capacity_triples_;
  uint64_t used_triples_ = 0;
};

}  // namespace dskg::graphstore

#endif  // DSKG_GRAPHSTORE_PROPERTY_GRAPH_H_
