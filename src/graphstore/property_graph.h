#ifndef DSKG_GRAPHSTORE_PROPERTY_GRAPH_H_
#define DSKG_GRAPHSTORE_PROPERTY_GRAPH_H_

/// \file property_graph.h
/// The native graph store: an index-free-adjacency property graph holding
/// a *subset* of the knowledge graph's predicate partitions.
///
/// Vertices are dictionary term ids; edges are labelled with predicate
/// ids. Each loaded partition keeps grouped out- and in-adjacency
/// (vertex -> neighbor list), so a traversal step from a bound vertex is a
/// pointer chase whose cost depends only on that vertex's degree — the
/// index-free adjacency property the paper leans on (query cost tracks the
/// traversal range, not the graph size).
///
/// Mirroring the systems the paper measured (Neo4j's cumbersome import,
/// gStore's triple limit), the store has
///   * a hard capacity in triples (`capacity_triples`), and
///   * an expensive bulk-import path (`kImportTriple` is the costliest
///     per-tuple weight in the cost model).
/// Partitions are imported and evicted whole, which is exactly the
/// granularity DOTIL tunes.
///
/// Share-nothing sharding: partitions are split across `num_shards`
/// sub-shards by `predicate % num_shards`, each with its own partition
/// map, so the online store's per-shard appliers maintain disjoint state.
/// The triple budget stays global — an atomic reservation counter — so
/// capacity decisions (and the tuner's eviction planning against
/// `FreeTriples`) are identical at every shard count. One shard (the
/// default) is exactly the unsharded store.
///
/// Snapshot reads + copy-on-write partitions (online mode): partitions are
/// held by pointer; under `SetDeferredReclaim(true)` a mutation clones the
/// partition on the batch's first touch and retires the original, so a
/// `MakeSnapshot` taken earlier keeps serving the untouched copy. Readers
/// install a snapshot with `ReadScope`; retired partitions are destroyed
/// by `ReclaimShard` after the epoch drain.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/cost.h"
#include "common/status.h"
#include "rdf/triple.h"

namespace dskg::graphstore {

/// A capacity-bounded, partition-granular property graph.
class PropertyGraph {
  struct Partition {
    std::vector<std::pair<rdf::TermId, rdf::TermId>> edges;
    std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> out;
    std::unordered_map<rdf::TermId, std::vector<rdf::TermId>> in;
  };

 public:
  /// \param capacity_triples  maximum triples resident at once
  ///                          (0 = unlimited, for tests / Table 1).
  /// \param num_shards        share-nothing predicate sub-shards.
  explicit PropertyGraph(uint64_t capacity_triples = 0, int num_shards = 1)
      : capacity_triples_(capacity_triples),
        shards_(static_cast<size_t>(num_shards < 1 ? 1 : num_shards)) {}

  PropertyGraph(const PropertyGraph&) = delete;
  PropertyGraph& operator=(const PropertyGraph&) = delete;

  /// Number of share-nothing predicate sub-shards.
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The sub-shard owning `predicate`'s partition.
  int ShardOf(rdf::TermId predicate) const {
    return static_cast<int>(predicate % shards_.size());
  }

  /// Bulk-imports the partition of `predicate`. All triples must carry
  /// that predicate. Fails with AlreadyExists if the partition is loaded
  /// and with CapacityExceeded if it does not fit its sub-shard's slice
  /// of the budget. Charges one `kImportTriple` per triple.
  Status ImportPartition(rdf::TermId predicate,
                         const std::vector<rdf::Triple>& triples,
                         CostMeter* meter);

  /// Removes the partition of `predicate`. Charges one `kEvictTriple` per
  /// removed triple. NotFound if not loaded.
  Status EvictPartition(rdf::TermId predicate, CostMeter* meter);

  /// Inserts one triple into an already-loaded partition (the slow
  /// single-edge update path). CapacityExceeded / NotFound as above.
  Status InsertTriple(const rdf::Triple& t, CostMeter* meter);

  /// Removes one edge from an already-loaded partition (the online-update
  /// delete path). Charges one `kEvictTriple`. NotFound if the partition
  /// is not resident or the edge is absent. O(partition) worst case: the
  /// native store keeps no edge index, mirroring the slow single-edge
  /// maintenance the paper attributes to graph stores.
  Status RemoveTriple(const rdf::Triple& t, CostMeter* meter);

  /// True if `predicate`'s partition is resident.
  bool HasPredicate(rdf::TermId predicate) const {
    return Find(predicate) != nullptr;
  }

  /// Resident predicates in ascending id order (deterministic).
  std::vector<rdf::TermId> LoadedPredicates() const;

  /// Number of triples in `predicate`'s resident partition (0 if absent).
  uint64_t PartitionTriples(rdf::TermId predicate) const;

  uint64_t used_triples() const;
  uint64_t capacity_triples() const { return capacity_triples_; }
  /// Remaining capacity in triples (max value when unlimited).
  uint64_t FreeTriples() const;

  // --- adjacency access (used by the traversal matcher) -------------------

  /// Out-neighbors of `v` via `predicate`, or nullptr if none/not loaded.
  const std::vector<rdf::TermId>* OutNeighbors(rdf::TermId v,
                                               rdf::TermId predicate) const;

  /// In-neighbors of `v` via `predicate`, or nullptr if none/not loaded.
  const std::vector<rdf::TermId>* InNeighbors(rdf::TermId v,
                                              rdf::TermId predicate) const;

  /// All (subject, object) edges of `predicate`'s partition, insertion
  /// order. Empty if not loaded.
  const std::vector<std::pair<rdf::TermId, rdf::TermId>>& Edges(
      rdf::TermId predicate) const;

  // ---- snapshots (the online store's concurrent read path) --------------

  /// An immutable view: the resident partitions (by pointer — valid until
  /// `ReclaimShard` destroys the retired originals) plus usage totals.
  /// Capture at a write-quiescent point; read through `ReadScope`.
  struct Snapshot {
    const PropertyGraph* owner = nullptr;
    /// Resident partitions sorted by predicate id.
    std::vector<std::pair<rdf::TermId, const Partition*>> parts;
    uint64_t used_triples = 0;
  };

  /// Captures the current state. Quiescent only.
  Snapshot MakeSnapshot() const;

  /// Installs `snap` as this thread's read source for the owning graph
  /// (nests; restores the previous source on destruction). A null
  /// snapshot, or one owned by another graph, leaves reads live.
  class ReadScope {
   public:
    explicit ReadScope(const Snapshot* snap) : prev_(tls_snapshot_) {
      tls_snapshot_ = snap;
    }
    ReadScope(const ReadScope&) = delete;
    ReadScope& operator=(const ReadScope&) = delete;
    ~ReadScope() { tls_snapshot_ = prev_; }

   private:
    const Snapshot* prev_;
  };

  /// The snapshot this thread currently reads through (null = live reads).
  /// Parallel traversal captures it on the dispatching thread and
  /// re-installs it with `ReadScope` inside each pool task, so shards see
  /// the same graph state as the caller.
  const Snapshot* InstalledSnapshot() const { return CurrentSnapshot(); }

  // ---- copy-on-write control (the online store's write path) ------------

  /// Switches between in-place partition mutation (offline, default) and
  /// clone-on-first-touch with deferred destruction (online). Toggle only
  /// while quiescent.
  void SetDeferredReclaim(bool on) { deferred_ = on; }

  /// Starts a batch on one sub-shard: partitions mutated from now on are
  /// cloned on first touch (shard-local; called by the shard's applier).
  void BeginShardBatch(int shard) {
    shards_[static_cast<size_t>(shard)].fresh.clear();
  }

  /// Destroys one sub-shard's retired partition copies. Call after the
  /// epoch protocol proves no reader still holds a snapshot referencing
  /// them. Returns the number destroyed.
  size_t ReclaimShard(int shard) {
    Shard& sh = shards_[static_cast<size_t>(shard)];
    const size_t n = sh.retired.size();
    sh.retired.clear();
    return n;
  }

 private:
  /// One share-nothing sub-shard. Mutated only by its owning applier (or
  /// the single offline writer).
  struct Shard {
    // Ordered map keeps LoadedPredicates() deterministic.
    std::map<rdf::TermId, std::unique_ptr<Partition>> partitions;
    std::set<rdf::TermId> fresh;  ///< partitions owned by the current batch
    std::vector<std::unique_ptr<Partition>> retired;  ///< awaiting drain
  };

  static void AddEdge(Partition* part, rdf::TermId s, rdf::TermId o);

  /// Reserves `n` triples of the global budget; false when they do not
  /// fit. CAS loop: concurrent shard appliers never overshoot.
  bool TryReserve(uint64_t n) {
    if (capacity_triples_ == 0) {
      used_.fetch_add(n, std::memory_order_relaxed);
      return true;
    }
    uint64_t cur = used_.load(std::memory_order_relaxed);
    do {
      if (cur + n > capacity_triples_) return false;
    } while (!used_.compare_exchange_weak(cur, cur + n,
                                          std::memory_order_relaxed));
    return true;
  }

  /// The partition to read for `predicate`: the installed snapshot's, or
  /// the live one.
  const Partition* Find(rdf::TermId predicate) const;

  /// The partition to *write* for `predicate` in `sh` (clone-on-first-
  /// touch under deferred reclamation). Null if not resident.
  Partition* Own(Shard* sh, rdf::TermId predicate);

  /// This thread's installed snapshot if it belongs to this graph.
  const Snapshot* CurrentSnapshot() const {
    const Snapshot* s = tls_snapshot_;
    return (s != nullptr && s->owner == this) ? s : nullptr;
  }

  uint64_t capacity_triples_;
  /// Global resident-triple count (atomic: shard appliers reserve and
  /// release concurrently).
  std::atomic<uint64_t> used_{0};
  std::vector<Shard> shards_;
  bool deferred_ = false;

  inline static thread_local const Snapshot* tls_snapshot_ = nullptr;
};

}  // namespace dskg::graphstore

#endif  // DSKG_GRAPHSTORE_PROPERTY_GRAPH_H_
