#include "graphstore/property_graph.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace dskg::graphstore {

using rdf::TermId;
using rdf::Triple;

Status PropertyGraph::ImportPartition(TermId predicate,
                                      const std::vector<Triple>& triples,
                                      CostMeter* meter) {
  if (HasPredicate(predicate)) {
    return Status::AlreadyExists("partition " + std::to_string(predicate) +
                                 " already resident");
  }
  if (capacity_triples_ > 0 &&
      used_triples_ + triples.size() > capacity_triples_) {
    return Status::CapacityExceeded(
        "importing " + std::to_string(triples.size()) + " triples exceeds " +
        std::to_string(capacity_triples_) + "-triple budget (" +
        std::to_string(used_triples_) + " used)");
  }
  for (const Triple& t : triples) {
    if (t.predicate != predicate) {
      return Status::InvalidArgument(
          "triple with predicate " + std::to_string(t.predicate) +
          " in partition " + std::to_string(predicate));
    }
  }
  Partition part;
  for (const Triple& t : triples) {
    AddEdge(&part, t.subject, t.object);
    if (meter != nullptr) meter->Add(Op::kImportTriple);
  }
  used_triples_ += triples.size();
  partitions_.emplace(predicate, std::move(part));
  return Status::OK();
}

Status PropertyGraph::EvictPartition(TermId predicate, CostMeter* meter) {
  auto it = partitions_.find(predicate);
  if (it == partitions_.end()) {
    return Status::NotFound("partition " + std::to_string(predicate) +
                            " not resident");
  }
  const uint64_t n = it->second.edges.size();
  if (meter != nullptr) meter->Add(Op::kEvictTriple, n);
  used_triples_ -= n;
  partitions_.erase(it);
  return Status::OK();
}

Status PropertyGraph::InsertTriple(const Triple& t, CostMeter* meter) {
  auto it = partitions_.find(t.predicate);
  if (it == partitions_.end()) {
    return Status::NotFound("partition " + std::to_string(t.predicate) +
                            " not resident; single inserts only extend "
                            "loaded partitions");
  }
  if (capacity_triples_ > 0 && used_triples_ + 1 > capacity_triples_) {
    return Status::CapacityExceeded("graph store is full");
  }
  AddEdge(&it->second, t.subject, t.object);
  ++used_triples_;
  if (meter != nullptr) meter->Add(Op::kImportTriple);
  return Status::OK();
}

Status PropertyGraph::RemoveTriple(const Triple& t, CostMeter* meter) {
  auto it = partitions_.find(t.predicate);
  if (it == partitions_.end()) {
    return Status::NotFound("partition " + std::to_string(t.predicate) +
                            " not resident");
  }
  Partition& part = it->second;
  auto edge = std::find(part.edges.begin(), part.edges.end(),
                        std::make_pair(t.subject, t.object));
  if (edge == part.edges.end()) {
    return Status::NotFound("edge not present in partition " +
                            std::to_string(t.predicate));
  }
  part.edges.erase(edge);  // first occurrence; order preserved
  auto drop_one = [](std::unordered_map<TermId, std::vector<TermId>>* adj,
                     TermId v, TermId neighbor) {
    auto vit = adj->find(v);
    if (vit == adj->end()) return;
    auto nit = std::find(vit->second.begin(), vit->second.end(), neighbor);
    if (nit != vit->second.end()) vit->second.erase(nit);
    if (vit->second.empty()) adj->erase(vit);
  };
  drop_one(&part.out, t.subject, t.object);
  drop_one(&part.in, t.object, t.subject);
  --used_triples_;
  if (meter != nullptr) meter->Add(Op::kEvictTriple);
  return Status::OK();
}

std::vector<TermId> PropertyGraph::LoadedPredicates() const {
  std::vector<TermId> out;
  out.reserve(partitions_.size());
  for (const auto& [p, _] : partitions_) out.push_back(p);
  return out;
}

uint64_t PropertyGraph::PartitionTriples(TermId predicate) const {
  auto it = partitions_.find(predicate);
  return it == partitions_.end() ? 0 : it->second.edges.size();
}

uint64_t PropertyGraph::FreeTriples() const {
  if (capacity_triples_ == 0) {
    return std::numeric_limits<uint64_t>::max();
  }
  return capacity_triples_ - used_triples_;
}

const std::vector<TermId>* PropertyGraph::OutNeighbors(
    TermId v, TermId predicate) const {
  auto it = partitions_.find(predicate);
  if (it == partitions_.end()) return nullptr;
  auto vit = it->second.out.find(v);
  return vit == it->second.out.end() ? nullptr : &vit->second;
}

const std::vector<TermId>* PropertyGraph::InNeighbors(
    TermId v, TermId predicate) const {
  auto it = partitions_.find(predicate);
  if (it == partitions_.end()) return nullptr;
  auto vit = it->second.in.find(v);
  return vit == it->second.in.end() ? nullptr : &vit->second;
}

const std::vector<std::pair<TermId, TermId>>& PropertyGraph::Edges(
    TermId predicate) const {
  static const std::vector<std::pair<TermId, TermId>> kEmpty;
  auto it = partitions_.find(predicate);
  return it == partitions_.end() ? kEmpty : it->second.edges;
}

void PropertyGraph::AddEdge(Partition* part, TermId s, TermId o) {
  part->edges.emplace_back(s, o);
  part->out[s].push_back(o);
  part->in[o].push_back(s);
}

}  // namespace dskg::graphstore
