#include "graphstore/property_graph.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace dskg::graphstore {

using rdf::TermId;
using rdf::Triple;

Status PropertyGraph::ImportPartition(TermId predicate,
                                      const std::vector<Triple>& triples,
                                      CostMeter* meter) {
  Shard& sh = shards_[static_cast<size_t>(ShardOf(predicate))];
  if (sh.partitions.find(predicate) != sh.partitions.end()) {
    return Status::AlreadyExists("partition " + std::to_string(predicate) +
                                 " already resident");
  }
  for (const Triple& t : triples) {
    if (t.predicate != predicate) {
      return Status::InvalidArgument(
          "triple with predicate " + std::to_string(t.predicate) +
          " in partition " + std::to_string(predicate));
    }
  }
  if (!TryReserve(triples.size())) {
    return Status::CapacityExceeded(
        "importing " + std::to_string(triples.size()) + " triples exceeds " +
        std::to_string(capacity_triples_) + "-triple budget (" +
        std::to_string(used_.load(std::memory_order_relaxed)) + " used)");
  }
  auto part = std::make_unique<Partition>();
  for (const Triple& t : triples) {
    AddEdge(part.get(), t.subject, t.object);
    if (meter != nullptr) meter->Add(Op::kImportTriple);
  }
  sh.partitions.emplace(predicate, std::move(part));
  if (deferred_) sh.fresh.insert(predicate);
  return Status::OK();
}

Status PropertyGraph::EvictPartition(TermId predicate, CostMeter* meter) {
  Shard& sh = shards_[static_cast<size_t>(ShardOf(predicate))];
  auto it = sh.partitions.find(predicate);
  if (it == sh.partitions.end()) {
    return Status::NotFound("partition " + std::to_string(predicate) +
                            " not resident");
  }
  const uint64_t n = it->second->edges.size();
  if (meter != nullptr) meter->Add(Op::kEvictTriple, n);
  used_.fetch_sub(n, std::memory_order_relaxed);
  if (deferred_) {
    // A published snapshot may still traverse the partition: keep the
    // object alive until the shard's post-drain reclamation.
    sh.retired.push_back(std::move(it->second));
    sh.fresh.erase(predicate);
  }
  sh.partitions.erase(it);
  return Status::OK();
}

Status PropertyGraph::InsertTriple(const Triple& t, CostMeter* meter) {
  Shard& sh = shards_[static_cast<size_t>(ShardOf(t.predicate))];
  Partition* part = Own(&sh, t.predicate);
  if (part == nullptr) {
    return Status::NotFound("partition " + std::to_string(t.predicate) +
                            " not resident; single inserts only extend "
                            "loaded partitions");
  }
  if (!TryReserve(1)) {
    return Status::CapacityExceeded("graph store is full");
  }
  AddEdge(part, t.subject, t.object);
  if (meter != nullptr) meter->Add(Op::kImportTriple);
  return Status::OK();
}

Status PropertyGraph::RemoveTriple(const Triple& t, CostMeter* meter) {
  Shard& sh = shards_[static_cast<size_t>(ShardOf(t.predicate))];
  Partition* part = Own(&sh, t.predicate);
  if (part == nullptr) {
    return Status::NotFound("partition " + std::to_string(t.predicate) +
                            " not resident");
  }
  auto edge = std::find(part->edges.begin(), part->edges.end(),
                        std::make_pair(t.subject, t.object));
  if (edge == part->edges.end()) {
    return Status::NotFound("edge not present in partition " +
                            std::to_string(t.predicate));
  }
  part->edges.erase(edge);  // first occurrence; order preserved
  auto drop_one = [](std::unordered_map<TermId, std::vector<TermId>>* adj,
                     TermId v, TermId neighbor) {
    auto vit = adj->find(v);
    if (vit == adj->end()) return;
    auto nit = std::find(vit->second.begin(), vit->second.end(), neighbor);
    if (nit != vit->second.end()) vit->second.erase(nit);
    if (vit->second.empty()) adj->erase(vit);
  };
  drop_one(&part->out, t.subject, t.object);
  drop_one(&part->in, t.object, t.subject);
  used_.fetch_sub(1, std::memory_order_relaxed);
  if (meter != nullptr) meter->Add(Op::kEvictTriple);
  return Status::OK();
}

std::vector<TermId> PropertyGraph::LoadedPredicates() const {
  std::vector<TermId> out;
  if (const Snapshot* snap = CurrentSnapshot()) {
    out.reserve(snap->parts.size());
    for (const auto& [p, _] : snap->parts) out.push_back(p);
    return out;  // snapshot is already sorted by predicate
  }
  for (const Shard& sh : shards_) {
    for (const auto& [p, _] : sh.partitions) out.push_back(p);
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint64_t PropertyGraph::PartitionTriples(TermId predicate) const {
  const Partition* part = Find(predicate);
  return part == nullptr ? 0 : part->edges.size();
}

uint64_t PropertyGraph::used_triples() const {
  if (const Snapshot* snap = CurrentSnapshot()) return snap->used_triples;
  return used_.load(std::memory_order_relaxed);
}

uint64_t PropertyGraph::FreeTriples() const {
  if (capacity_triples_ == 0) {
    return std::numeric_limits<uint64_t>::max();
  }
  return capacity_triples_ - used_triples();
}

const std::vector<TermId>* PropertyGraph::OutNeighbors(
    TermId v, TermId predicate) const {
  const Partition* part = Find(predicate);
  if (part == nullptr) return nullptr;
  auto vit = part->out.find(v);
  return vit == part->out.end() ? nullptr : &vit->second;
}

const std::vector<TermId>* PropertyGraph::InNeighbors(
    TermId v, TermId predicate) const {
  const Partition* part = Find(predicate);
  if (part == nullptr) return nullptr;
  auto vit = part->in.find(v);
  return vit == part->in.end() ? nullptr : &vit->second;
}

const std::vector<std::pair<TermId, TermId>>& PropertyGraph::Edges(
    TermId predicate) const {
  static const std::vector<std::pair<TermId, TermId>> kEmpty;
  const Partition* part = Find(predicate);
  return part == nullptr ? kEmpty : part->edges;
}

const PropertyGraph::Partition* PropertyGraph::Find(TermId predicate) const {
  if (const Snapshot* snap = CurrentSnapshot()) {
    const auto it = std::lower_bound(
        snap->parts.begin(), snap->parts.end(), predicate,
        [](const auto& entry, TermId p) { return entry.first < p; });
    if (it == snap->parts.end() || it->first != predicate) return nullptr;
    return it->second;
  }
  const Shard& sh = shards_[static_cast<size_t>(ShardOf(predicate))];
  const auto it = sh.partitions.find(predicate);
  return it == sh.partitions.end() ? nullptr : it->second.get();
}

PropertyGraph::Partition* PropertyGraph::Own(Shard* sh, TermId predicate) {
  auto it = sh->partitions.find(predicate);
  if (it == sh->partitions.end()) return nullptr;
  if (!deferred_ || sh->fresh.count(predicate) != 0) return it->second.get();
  // Batch's first touch of a published partition: mutate a clone, retire
  // the original until the drain proves its snapshot readers finished.
  auto clone = std::make_unique<Partition>(*it->second);
  sh->retired.push_back(std::move(it->second));
  it->second = std::move(clone);
  sh->fresh.insert(predicate);
  return it->second.get();
}

PropertyGraph::Snapshot PropertyGraph::MakeSnapshot() const {
  Snapshot snap;
  snap.owner = this;
  for (const Shard& sh : shards_) {
    for (const auto& [p, part] : sh.partitions) {
      snap.parts.emplace_back(p, part.get());
    }
  }
  snap.used_triples = used_.load(std::memory_order_relaxed);
  std::sort(snap.parts.begin(), snap.parts.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

void PropertyGraph::AddEdge(Partition* part, TermId s, TermId o) {
  part->edges.emplace_back(s, o);
  part->out[s].push_back(o);
  part->in[o].push_back(s);
}

}  // namespace dskg::graphstore
