#ifndef DSKG_GRAPHSTORE_MATCHER_H_
#define DSKG_GRAPHSTORE_MATCHER_H_

/// \file matcher.h
/// BGP matching by graph traversal (the graph store's query engine).
///
/// The matcher evaluates a basic graph pattern by backtracking depth-first
/// search over the property graph's adjacency lists: patterns are ordered
/// greedily (smallest partition first, then patterns adjacent to already-
/// bound variables), and each step expands a bound vertex's neighbor list
/// — no join materialization, no intermediate tables. Per the index-free
/// adjacency argument (paper §1), the work is proportional to the number
/// of edges actually visited, not to the size of the graph.
///
/// Variable names are slot-compiled at plan time: the traversal keeps its
/// bindings in a fixed `TermId` slot array with an integer backtracking
/// trail, so binding/probing/unwinding are array stores — no per-edge
/// heap allocation or string hashing anywhere on the DFS path.
///
/// The matcher can only answer queries whose constant predicates are all
/// resident in the graph store; the dual-store query processor is
/// responsible for routing (Algorithm 3).

#include "common/cost.h"
#include "common/status.h"
#include "graphstore/property_graph.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "sparql/bindings.h"

namespace dskg::graphstore {

/// Evaluates BGP queries against a `PropertyGraph` by traversal.
class TraversalMatcher {
 public:
  /// Neither pointer is owned; both must outlive the matcher.
  TraversalMatcher(const PropertyGraph* graph, const rdf::Dictionary* dict)
      : graph_(graph), dict_(dict) {}

  /// Evaluates `query` and returns its projected bindings.
  ///
  /// Preconditions checked here (FailedPrecondition on violation):
  ///  * every constant predicate of the query is resident;
  ///  * no pattern has a variable in predicate position (the graph store
  ///    holds only a subset of partitions, so a variable predicate could
  ///    silently return partial answers — the processor must route such
  ///    queries to the relational store).
  /// Returns Cancelled if the meter's budget is exhausted.
  Result<sparql::BindingTable> Match(const sparql::Query& query,
                                     CostMeter* meter) const;

 private:
  const PropertyGraph* graph_;
  const rdf::Dictionary* dict_;
};

}  // namespace dskg::graphstore

#endif  // DSKG_GRAPHSTORE_MATCHER_H_
