#ifndef DSKG_GRAPHSTORE_MATCHER_H_
#define DSKG_GRAPHSTORE_MATCHER_H_

/// \file matcher.h
/// BGP matching by graph traversal (the graph store's query engine).
///
/// The matcher evaluates a basic graph pattern by backtracking depth-first
/// search over the property graph's adjacency lists: patterns are ordered
/// greedily (smallest partition first, then patterns adjacent to already-
/// bound variables), and each step expands a bound vertex's neighbor list
/// — no join materialization, no intermediate tables. Per the index-free
/// adjacency argument (paper §1), the work is proportional to the number
/// of edges actually visited, not to the size of the graph.
///
/// Variable names are slot-compiled at plan time: the traversal keeps its
/// bindings in a fixed `TermId` slot array with an integer backtracking
/// trail, so binding/probing/unwinding are array stores — no per-edge
/// heap allocation or string hashing anywhere on the DFS path.
///
/// The plan/execute split is explicit: `Compile` produces a reusable
/// `Plan` (encoding, precondition checks, traversal order, `$param`
/// sites) once; `OpenCursor` runs it as a *resumable* DFS that emits
/// result rows in pull-sized chunks — the traversal suspends mid-search
/// with its explicit stack intact, so a caller consuming a few rows never
/// pays for (or stores) the rest. `Match` composes the two into the
/// classic materialize-everything call.
///
/// The matcher can only answer queries whose constant predicates are all
/// resident in the graph store; the dual-store query processor is
/// responsible for routing (Algorithm 3).

#include <string>
#include <vector>

#include "common/cost.h"
#include "common/status.h"
#include "graphstore/property_graph.h"
#include "rdf/dictionary.h"
#include "sparql/ast.h"
#include "sparql/bindings.h"

namespace dskg {
class ThreadPool;
}  // namespace dskg

namespace dskg::graphstore {

/// Evaluates BGP queries against a `PropertyGraph` by traversal.
class TraversalMatcher {
 public:
  /// Neither pointer is owned; both must outlive the matcher.
  TraversalMatcher(const PropertyGraph* graph, const rdf::Dictionary* dict)
      : graph_(graph), dict_(dict) {}

  /// One pattern endpoint after slot compilation: a constant id, a
  /// variable slot, or an open `$param` site patched at cursor open.
  struct End {
    bool is_variable = false;
    int slot = -1;  // when is_variable: index into the DFS slot array
    rdf::TermId constant = rdf::kInvalidTermId;  // when !is_variable
    bool missing = false;  // constant absent from the dictionary
    int param = -1;  // >= 0: index into Plan::param_names
  };

  /// One encoded pattern; the predicate is always a constant (checked at
  /// compile time — a variable predicate cannot be answered by the
  /// partial graph store).
  struct EncPat {
    End subject;
    rdf::TermId predicate = rdf::kInvalidTermId;
    End object;
  };

  /// A slot-compiled traversal plan: patterns in traversal order, the
  /// output slot mapping, and the parameter sites left open for binding.
  /// Valid only while the partitions it was compiled against stay
  /// resident — the session layer guards this with plan epochs.
  struct Plan {
    std::vector<EncPat> patterns;  // in greedy traversal order
    std::vector<std::string> out_vars;
    std::vector<int> out_slots;  // slot of each out_var, -1 if absent
    size_t num_slots = 0;
    /// A non-parameter constant (or a predicate term) is unknown to the
    /// dictionary: the query can never match.
    bool impossible = false;
    /// Distinct parameter names in first-appearance order; `End::param`
    /// and the `param_values` array passed to `OpenCursor` align with it.
    std::vector<std::string> param_names;
  };

  /// Compiles `query` once: dictionary-encodes endpoints, checks the
  /// graph-store preconditions, fixes the traversal order.
  ///
  /// Preconditions checked here (FailedPrecondition on violation):
  ///  * every known constant predicate of the query is resident;
  ///  * no pattern has a variable predicate (the graph store holds only a
  ///    subset of partitions, so a variable predicate could silently
  ///    return partial answers — the processor must route such queries to
  ///    the relational store).
  Result<Plan> Compile(const sparql::Query& query) const;

  /// A resumable traversal: the DFS over the plan's patterns with its
  /// explicit stack, suspendable between result rows. Obtained from
  /// `OpenCursor`; borrows the matcher's graph and the caller's meter,
  /// both of which must outlive it.
  class Cursor {
   public:
    /// Runs the traversal until `max_rows` more rows have been appended
    /// to `*out` (whose columns must already be the plan's `out_vars`) or
    /// the search space is exhausted (`*done` = true). Cost is charged to
    /// the meter as the search advances, so a drained cursor has charged
    /// exactly what `Match` charges. Returns Cancelled when the meter's
    /// budget runs out; errors are sticky.
    Status Fill(sparql::BindingTable* out, size_t max_rows, bool* done);

    const std::vector<std::string>& out_vars() const { return out_vars_; }

   private:
    friend class TraversalMatcher;
    Cursor() = default;

    struct Frame {
      enum Mode { kOut, kIn, kEdges };
      Mode mode = kOut;
      const std::vector<rdf::TermId>* nbrs = nullptr;  // kOut / kIn
      const std::vector<std::pair<rdf::TermId, rdf::TermId>>* edges =
          nullptr;  // kEdges
      size_t idx = 0;
      /// Exclusive candidate bound for sharded root frames; untouched
      /// (no-op clamp) on the serial path.
      size_t end_idx = static_cast<size_t>(-1);
      bool has_o = false;            // kOut: object already resolved
      rdf::TermId o_val = rdf::kInvalidTermId;
      size_t mark = 0;               // trail mark of the in-flight branch
      bool post_pending = false;     // branch needs unwind + budget check
      bool did_bind = false;         // branch attempted a Bind
    };

    bool Resolve(const End& e, rdf::TermId* value) const;
    bool Bind(const End& e, rdf::TermId value);
    void Unwind(size_t mark);
    Status EmitRow(sparql::BindingTable* out);
    Status Fail(Status s);

    const PropertyGraph* graph_ = nullptr;
    CostMeter* meter_ = nullptr;
    std::vector<EncPat> patterns_;  // param sites already patched
    std::vector<std::string> out_vars_;
    std::vector<int> out_slots_;
    std::vector<rdf::TermId> slots_;  // slot -> value, kInvalidTermId = free
    std::vector<int> trail_;          // slots bound on the current DFS path
    std::vector<Frame> stack_;
    bool descend_ = true;   // next action: enter depth stack_.size()
    bool finished_ = false;
    Status status_;         // sticky failure
  };

  /// Opens a resumable cursor over `plan`. `param_values` supplies one
  /// term id per entry of `plan.param_names` (null allowed when the plan
  /// has none); a missing or invalid value fails with FailedPrecondition.
  /// Work is charged to `meter` incrementally as the cursor is pulled.
  Result<Cursor> OpenCursor(const Plan& plan,
                            const rdf::TermId* param_values,
                            CostMeter* meter) const;

  /// Evaluates `query` and returns its projected bindings — `Compile` +
  /// a fully drained cursor. Fails with FailedPrecondition if the query
  /// contains `$parameters` (prepare and bind it instead).
  /// Returns Cancelled if the meter's budget is exhausted.
  Result<sparql::BindingTable> Match(const sparql::Query& query,
                                     CostMeter* meter) const;

  /// Drains `plan` with the first pattern's candidate range split into up
  /// to `max_shards` contiguous shards run on `pool`. Each shard gets a
  /// clone of the DFS cursor whose root frame covers only its candidate
  /// sub-range plus its own `CostMeter`; shard tables and meters are
  /// merged in ascending range order, so rows arrive in exactly the
  /// serial DFS order and (with the integer-picosecond meter) every
  /// charge component is bit-identical to the serial drain at every
  /// thread count. Shard tasks re-install the calling thread's
  /// `PropertyGraph` read snapshot, so sharding is safe under
  /// `DualStore::SnapshotScope`.
  ///
  /// Falls back to the serial drain when `pool` is null, the range is too
  /// small to split, or the meter carries a budget (budgeted traversal
  /// cancels cooperatively mid-search — a serial protocol).
  Result<sparql::BindingTable> MatchSharded(const Plan& plan,
                                            const rdf::TermId* param_values,
                                            CostMeter* meter,
                                            ThreadPool* pool,
                                            int max_shards) const;

 private:
  /// `OpenCursor` + one exhaustive `Fill` (the serial drain).
  Result<sparql::BindingTable> DrainSerial(const Plan& plan,
                                           const rdf::TermId* param_values,
                                           CostMeter* meter) const;

  const PropertyGraph* graph_;
  const rdf::Dictionary* dict_;
};

}  // namespace dskg::graphstore

#endif  // DSKG_GRAPHSTORE_MATCHER_H_
