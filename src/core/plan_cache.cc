#include "core/plan_cache.h"

#include <utility>

#include "sparql/parser.h"

namespace dskg::core {

SharedPlanCache::SharedPlanCache(size_t capacity) : capacity_(capacity) {
  auto& reg = telemetry::MetricsRegistry::Global();
  hits_ = reg.counter("plan_cache.shared.hits")->NewCell();
  misses_ = reg.counter("plan_cache.shared.misses")->NewCell();
  parses_ = reg.counter("plan_cache.shared.parses")->NewCell();
  invalidations_ = reg.counter("plan_cache.shared.invalidations")->NewCell();
  evictions_ = reg.counter("plan_cache.shared.evictions")->NewCell();
}

Result<std::shared_ptr<const PreparedPlan>> SharedPlanCache::GetOrPrepare(
    std::string_view text, const DualStore& store,
    const sparql::Query* parsed) {
  const uint64_t epoch = store.plan_epoch();
  std::shared_ptr<const sparql::Query> query;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(std::string(text));
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      if (it->second.plan != nullptr && it->second.epoch == epoch) {
        hits_->Add();
        return it->second.plan;
      }
      query = it->second.parsed;  // reuse the parse across the epoch move
    }
  }

  // Miss: parse (if nobody has yet) and prepare outside the lock — a slow
  // compilation must not serialize unrelated lookups.
  if (query == nullptr) {
    if (parsed != nullptr) {
      query = std::make_shared<const sparql::Query>(*parsed);
    } else {
      DSKG_ASSIGN_OR_RETURN(sparql::Query q, sparql::Parser::Parse(text));
      query = std::make_shared<const sparql::Query>(std::move(q));
      parses_->Add();
    }
  }
  DSKG_ASSIGN_OR_RETURN(PreparedPlan plan, store.Prepare(*query));
  auto shared = std::make_shared<const PreparedPlan>(std::move(plan));

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(std::string(text));
  if (it == entries_.end()) {
    lru_.push_front(std::string(text));
    Entry entry;
    entry.parsed = query;
    entry.epoch = shared->plan_epoch;
    entry.plan = shared;
    entry.lru_it = lru_.begin();
    it = entries_.emplace(std::string(text), std::move(entry)).first;
    EvictOverflowLocked();
  } else if (it->second.plan == nullptr ||
             it->second.epoch <= shared->plan_epoch) {
    // Replace the stale (or absent) plan; a racing caller that installed
    // an even newer epoch wins instead.
    if (it->second.plan != nullptr && it->second.epoch < shared->plan_epoch) {
      invalidations_->Add();
    }
    it->second.epoch = shared->plan_epoch;
    it->second.plan = shared;
    it->second.parsed = query;
  }
  misses_->Add();
  return shared;
}

void SharedPlanCache::EvictOverflowLocked() {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_->Add();
  }
}

SharedPlanCache::Stats SharedPlanCache::stats() const {
  Stats s;
  s.hits = hits_->value();
  s.misses = misses_->value();
  s.parses = parses_->value();
  s.invalidations = invalidations_->value();
  s.evictions = evictions_->value();
  return s;
}

size_t SharedPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SharedPlanCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  EvictOverflowLocked();
}

void SharedPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace dskg::core
