#ifndef DSKG_CORE_SESSION_H_
#define DSKG_CORE_SESSION_H_

/// \file session.h
/// The library's public query API: a session façade with prepared
/// queries, `$parameter` binding, and streaming result cursors.
///
/// Lifecycle:
///
///   core::Session session(&store);
///   auto prepared = session.Prepare(
///       "SELECT ?p WHERE { ?p y:wasBornIn $city . "
///       "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn $city . }");
///   prepared->Bind("city", "y:city_42");
///   auto exec = prepared->ExecuteAll();              // materialized
///   auto cursor = prepared->OpenCursor();            // or streamed
///   sparql::BindingTable chunk;
///   bool done = false;
///   while (cursor->Next(&chunk, 1024, &done).ok() && !done) Consume(chunk);
///
/// `Prepare` parses, identifies the complex subquery, selects the route
/// and slot-compiles the plan **once**; plans are cached by query text,
/// so preparing the same text again is a hash lookup. `Bind` resolves a
/// parameter to a dictionary id (one probe); re-executing with new
/// bindings never re-parses, re-routes or re-encodes.
///
/// Snapshots and invalidation: every execution runs against one
/// consistent snapshot — over an `OnlineStore` each execution (and each
/// cursor, for its whole lifetime) pins the snapshot that was active when
/// it started, so concurrent `ApplyUpdates` never tear a result. Plans
/// carry the store's `plan_epoch()`; when updates or re-tuning move it
/// (graph residency, view catalog, dictionary contents), the next
/// execution transparently re-prepares against the pinned snapshot and
/// re-resolves its bindings — a stale plan is never executed.
///
/// Error handling at the API boundary is uniform `Status`/`Result`:
/// parse failures surface from `Prepare` (ParseError), unknown terms from
/// `Bind` (NotFound), unknown parameter names from `Bind`
/// (InvalidArgument), and executing with unbound parameters fails
/// (FailedPrecondition) — no path silently yields an empty table.
///
/// Threading: `Session` itself is thread-safe — the plan cache is
/// shared under a mutex taken per `Prepare`, stats counters are atomics,
/// and concurrent executions only touch a per-entry mutex for a pointer
/// compare/swap before running lock-free. A `PreparedQuery` or `Cursor`
/// instance is a single-thread object — create one per worker (they
/// share the cached plan, so this is cheap).
///
/// Cache bound: the plan cache holds at most `plan_cache_capacity`
/// entries (default `kDefaultPlanCacheCapacity`; 0 = unbounded). When a
/// `Prepare` of a new text overflows it, the least-recently-*prepared*
/// text is evicted (`stats().evictions`). Outstanding `PreparedQuery`
/// handles keep their entry alive through their shared pointer and keep
/// working; re-preparing an evicted text is a fresh parse.

#include <atomic>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/dual_store.h"
#include "core/online_store.h"
#include "core/plan_cache.h"
#include "core/query_processor.h"
#include "rdf/triple.h"
#include "sparql/ast.h"
#include "sparql/bindings.h"

namespace dskg::core {

class Session;

namespace session_internal {

/// One cached prepared query: the store-independent parse result plus the
/// epoch-stamped plan, refreshed in place when the store's physical state
/// moves. Shared by every `PreparedQuery` handle for the same text.
struct CacheEntry {
  std::string text;
  sparql::Query query;               // parsed once, may contain $params
  std::vector<std::string> params;   // distinct $param names

  std::mutex mu;                     // guards `plan`
  std::shared_ptr<const PreparedPlan> plan;  // null until first execution
};

/// A plan-cache slot: the shared entry plus its position in the session's
/// least-recently-prepared list (most recent at the front).
struct CacheSlot {
  std::shared_ptr<CacheEntry> entry;
  std::list<std::string>::iterator lru_it;
};

/// An epoch-pinned view of the session's store: for an `OnlineStore` the
/// guard keeps the published snapshot immutable and `view` points at it
/// (executions install it as the thread's read source); for a plain
/// `DualStore` it is just the store pointer and reads serve live state.
struct Snapshot {
  const DualStore* store = nullptr;
  const DualStore::Snapshot* view = nullptr;
  std::optional<OnlineStore::ReadGuard> guard;
};

}  // namespace session_internal

/// A streaming result handle: pull-based chunks over one consistent
/// snapshot of the store, pinned for the cursor's whole lifetime.
class Cursor {
 public:
  /// Replaces `*chunk` with the next `max_rows` (or fewer) rows; `*done`
  /// turns true once the result set is exhausted. Graph-route cursors
  /// traverse incrementally — abandoning the cursor early really does
  /// skip the remaining work. Each pull re-installs the cursor's pinned
  /// snapshot, so the traversal keeps reading the state it started on no
  /// matter how many batches publish in between.
  Status Next(sparql::BindingTable* chunk, size_t max_rows, bool* done);

  /// Pulls everything that remains into one table (chunked internally).
  Result<sparql::BindingTable> DrainAll(size_t chunk_rows = 4096);

  const std::vector<std::string>& columns() const { return impl_.columns(); }
  Route route() const { return impl_.route(); }

  /// Route, bound split and cost breakdown accrued so far; after a full
  /// drain the totals equal `ExecuteAll`'s for the same bindings.
  QueryExecution Execution() const { return impl_.Execution(); }

 private:
  friend class PreparedQuery;
  Cursor() = default;

  std::shared_ptr<const PreparedPlan> plan_;       // keeps the plan alive
  std::optional<OnlineStore::ReadGuard> pin_;      // keeps the snapshot alive
  const DualStore::Snapshot* view_ = nullptr;      // pinned snapshot (or null)
  ExecutionCursor impl_;
};

/// A handle to a cached prepared query plus this handle's parameter
/// bindings. Copyable (copies share the plan, not the bindings); cheap to
/// create per worker thread.
class PreparedQuery {
 public:
  const std::string& text() const { return entry_->text; }

  /// Distinct `$parameter` names, in first-appearance order.
  const std::vector<std::string>& parameters() const {
    return entry_->params;
  }

  /// Binds `$param` to the term with text `term`. InvalidArgument when no
  /// such parameter exists; NotFound when the term is not in the
  /// dictionary (nothing could ever match — surfaced instead of silently
  /// returning empty results).
  Status Bind(std::string_view param, std::string_view term);

  /// Drops all bindings of this handle.
  void ClearBindings();

  /// Executes with the current bindings and materializes the full result
  /// — semantics, rows and simulated cost charges identical to
  /// `DualStore::Process` on the equivalent bound query text.
  /// FailedPrecondition if any parameter is unbound.
  Result<QueryExecution> ExecuteAll();

  /// Executes with the current bindings, streaming: returns a cursor over
  /// an epoch-pinned snapshot. The relational pipeline's join
  /// intermediates still materialize (that is the row-store semantics the
  /// cost model charges), but the projected result is emitted chunk by
  /// chunk, and pure graph-store routes stream straight out of the
  /// resumable traversal.
  Result<Cursor> OpenCursor();

 private:
  friend class Session;
  PreparedQuery(Session* session,
                std::shared_ptr<session_internal::CacheEntry> entry);

  struct Binding {
    bool bound = false;
    std::string term;                       // bound term text
    rdf::TermId id = rdf::kInvalidTermId;   // resolved id
    uint64_t epoch = 0;                     // plan_epoch at resolve time
  };

  /// Re-validates the plan and the bound ids against `snap`, returning
  /// the per-plan-parameter value array (empty when no parameters).
  Result<std::vector<rdf::TermId>> ResolveForExecution(
      const session_internal::Snapshot& snap,
      std::shared_ptr<const PreparedPlan>* plan);

  Session* session_;
  std::shared_ptr<session_internal::CacheEntry> entry_;
  std::vector<Binding> bindings_;  // aligned with entry_->params
};

/// The session façade over a `DualStore` or an `OnlineStore`.
class Session {
 public:
  /// Default bound on cached plans. Generous for any workload's template
  /// catalog while capping an adversarial stream of distinct texts.
  static constexpr size_t kDefaultPlanCacheCapacity = 256;

  /// Neither store nor pool is owned; both must outlive the session.
  /// `pool` (optional) serves `SubmitAsync`.
  explicit Session(DualStore* store, ThreadPool* pool = nullptr)
      : dual_(store), pool_(pool) {}
  explicit Session(OnlineStore* store, ThreadPool* pool = nullptr)
      : online_(store), pool_(pool) {}

  /// Rebounds the plan cache to at most `capacity` entries (0 =
  /// unbounded), evicting least-recently-prepared entries immediately if
  /// the cache is over the new bound.
  void SetPlanCacheCapacity(size_t capacity);

  /// Attaches a cross-session shared plan cache (borrowed; must outlive
  /// the session; null detaches). With a cache attached, a plan that is
  /// missing or stale in this session's per-text entry is fetched from —
  /// and installed into — the shared cache, so N sessions preparing the
  /// same template against the same store state compile it once. The
  /// session's own cache still provides the lock-free fast path for a
  /// handle re-executing an unchanged plan.
  void set_shared_plan_cache(SharedPlanCache* cache) {
    shared_cache_ = cache;
  }
  SharedPlanCache* shared_plan_cache() const { return shared_cache_; }

  /// Cached plans currently held.
  size_t plan_cache_size() const;

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Parses, routes and slot-compiles `text` once; cached by exact text.
  /// Parse and planning failures surface here as `Status`.
  Result<PreparedQuery> Prepare(std::string_view text);

  /// One-shot convenience: `Prepare` (cache-backed) + `ExecuteAll`.
  /// Parameterized texts fail with FailedPrecondition — bind them through
  /// a `PreparedQuery` instead.
  Result<QueryExecution> Execute(std::string_view text);

  /// Schedules `Execute(text)` on the session's thread pool and returns
  /// its future. Falls back to inline execution (an already-resolved
  /// future) when the session has no pool.
  std::future<Result<QueryExecution>> SubmitAsync(std::string_view text);

  /// Schedules `prepared.ExecuteAll()` with its current bindings. The
  /// handle is copied into the task, so the caller may rebind and submit
  /// again immediately.
  std::future<Result<QueryExecution>> SubmitAsync(PreparedQuery prepared);

  /// Drops every cached plan (handles re-prepare lazily on next use).
  void ClearPlanCache();

  /// Compatibility view over this session's telemetry counter cells:
  /// same fields, same per-instance semantics as the pre-telemetry
  /// atomics. The registry counters `session.*` are the single source of
  /// truth — `stats()` reads this session's dedicated cells, the global
  /// export sums every session's cells into the process totals.
  struct Stats {
    uint64_t prepares = 0;     ///< cache misses: full parse + plan
    uint64_t cache_hits = 0;   ///< Prepare served from the cache
    uint64_t executions = 0;   ///< ExecuteAll / cursor opens
    uint64_t replans = 0;      ///< plans re-validated after an epoch move
    uint64_t evictions = 0;    ///< entries dropped by the LRU bound
  };
  Stats stats() const;

 private:
  friend class PreparedQuery;

  /// Pins the current snapshot (wait-free over an OnlineStore).
  session_internal::Snapshot Pin() const;

  /// The entry's plan, re-prepared iff its epoch differs from `store`'s.
  Result<std::shared_ptr<const PreparedPlan>> PlanFor(
      session_internal::CacheEntry* entry, const DualStore& store);

  DualStore* dual_ = nullptr;
  OnlineStore* online_ = nullptr;
  ThreadPool* pool_ = nullptr;
  SharedPlanCache* shared_cache_ = nullptr;

  /// Evicts least-recently-prepared entries until the cache fits the
  /// capacity. Caller holds `cache_mu_`.
  void EvictOverflowLocked();

  mutable std::mutex cache_mu_;
  std::unordered_map<std::string, session_internal::CacheSlot> cache_;
  /// Texts ordered by last `Prepare`, most recent first. Guarded by
  /// `cache_mu_`.
  std::list<std::string> lru_;
  size_t plan_cache_capacity_ = kDefaultPlanCacheCapacity;

  /// This session's dedicated write cells in the global `session.*`
  /// counters — lock-free increments (executions must not serialize on a
  /// stats mutex), exact per-session reads, and they roll up into the
  /// process-wide registry totals for free. Counting is unconditional:
  /// `stats()` keeps its semantics whether telemetry is enabled or not.
  struct StatCells {
    StatCells();  // allocates cells from MetricsRegistry::Global()
    telemetry::Counter::Cell* prepares;
    telemetry::Counter::Cell* cache_hits;
    telemetry::Counter::Cell* executions;
    telemetry::Counter::Cell* replans;
    telemetry::Counter::Cell* evictions;
  };
  StatCells cells_;
};

}  // namespace dskg::core

#endif  // DSKG_CORE_SESSION_H_
