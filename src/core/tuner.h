#ifndef DSKG_CORE_TUNER_H_
#define DSKG_CORE_TUNER_H_

/// \file tuner.h
/// Physical-design tuner interface.
///
/// A tuner decides which triple partitions live in the graph store (or
/// which views exist, for the RDB-views baseline). Tuning is offline: the
/// workload runner invokes the hooks between batches, exactly like the
/// paper's periodic reconfiguration window (§4.2), and all tuning work is
/// charged to a separate tuning meter so online TTI stays clean.
///
/// Hooks (all optional):
///  * `BeforeWorkload` — sees every complex subquery of the whole
///     workload up front (used by the one-off baseline);
///  * `BeforeBatch`    — sees the *next* batch's complex subqueries
///     (used by the ideal baseline);
///  * `AfterBatch`     — sees the batch that just ran (DOTIL, LRU,
///     views).

#include <string>
#include <vector>

#include "common/cost.h"
#include "common/status.h"
#include "sparql/ast.h"

namespace dskg::core {

class DualStore;

/// Interface implemented by DOTIL and the baseline tuners.
class Tuner {
 public:
  virtual ~Tuner() = default;

  /// Display name used in experiment reports ("dotil", "lru", ...).
  virtual std::string name() const = 0;

  /// Called once, before any batch, with all complex subqueries of the
  /// whole workload.
  virtual Status BeforeWorkload(DualStore* store,
                                const std::vector<sparql::Query>& all,
                                CostMeter* meter) {
    (void)store;
    (void)all;
    (void)meter;
    return Status::OK();
  }

  /// Called before each batch with that batch's complex subqueries.
  virtual Status BeforeBatch(DualStore* store,
                             const std::vector<sparql::Query>& next,
                             CostMeter* meter) {
    (void)store;
    (void)next;
    (void)meter;
    return Status::OK();
  }

  /// Called after each batch with the complex subqueries that just ran.
  virtual Status AfterBatch(DualStore* store,
                            const std::vector<sparql::Query>& finished,
                            CostMeter* meter) {
    (void)store;
    (void)finished;
    (void)meter;
    return Status::OK();
  }
};

}  // namespace dskg::core

#endif  // DSKG_CORE_TUNER_H_
