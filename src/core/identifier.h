#ifndef DSKG_CORE_IDENTIFIER_H_
#define DSKG_CORE_IDENTIFIER_H_

/// \file identifier.h
/// The complex subquery identifier (paper §3.1).
///
/// A *complex subquery* q_c of a query q is the set of q's triple patterns
/// whose subject variable and object variable each occur more than once in
/// q (Example 1). Intuitively these patterns form the join-heavy core that
/// the graph store accelerates; the remaining patterns (name lookups and
/// other one-off attributes) stay in the relational store.
///
/// Refinements needed to make the paper's definition executable:
///  * a constant endpoint qualifies trivially (it is not a variable), but
///    a pattern with *no* variable endpoint is a point lookup and is never
///    part of q_c;
///  * a pattern whose predicate is a variable is never part of q_c — the
///    graph store holds only a subset of partitions and could silently
///    return partial answers for it;
///  * q_c must contain at least two patterns ("complex query patterns
///    refer to the query patterns containing more than one predicate",
///    §1); otherwise the query has no complex subquery.
///
/// The identifier runs in O(n) in the number of pattern positions.

#include <optional>
#include <vector>

#include "sparql/ast.h"

namespace dskg::core {

/// Result of identifying a query's complex subquery.
struct IdentifiedQuery {
  /// The original query.
  sparql::Query query;
  /// The complex subquery, if any. Its select list is the set of join
  /// variables connecting it to the remainder (plus any projected
  /// variables that only q_c can bind); if the remainder is empty it is
  /// the query's own projection.
  std::optional<sparql::Query> complex;
  /// q minus q_c. Empty patterns when the whole query is complex.
  sparql::Query remainder;

  bool HasComplexSubquery() const { return complex.has_value(); }
};

/// Identifies complex subqueries.
class ComplexSubqueryIdentifier {
 public:
  /// Splits `query` into complex subquery and remainder.
  static IdentifiedQuery Identify(const sparql::Query& query);
};

}  // namespace dskg::core

#endif  // DSKG_CORE_IDENTIFIER_H_
