#ifndef DSKG_CORE_ONLINE_STORE_H_
#define DSKG_CORE_ONLINE_STORE_H_

/// \file online_store.h
/// The online-update subsystem's front door: a dual store that stays
/// queryable while a stream of knowledge mutations is applied.
///
/// Design — *share-nothing shards + copy-on-write snapshots under epoch
/// reclamation*:
///
/// An `OnlineStore` owns ONE `DualStore` whose triple table, graph store
/// and dictionary are split into `num_shards` share-nothing predicate
/// shards. Each shard has a persistent applier thread; batches flow
/// through a four-phase pipeline:
///
///   1. **Inject** (caller thread): resolve every op's term ids against
///      the dictionary in op order (id assignment is therefore identical
///      to the serial store's), then route each op to the shard owning
///      its predicate.
///   2. **Apply** (shard appliers, parallel): each shard applies its ops
///      in order to its own B+-tree slabs and graph partitions.
///      Structures a published snapshot can reach are never mutated in
///      place — the B+-trees clone root-to-leaf paths into fresh pool
///      nodes (node-level copy-on-write), graph partitions clone on the
///      batch's first touch. Appliers share no mutable state: outcomes
///      land in per-op slots, costs in per-shard meters.
///   3. **Merge** (caller thread): fold shard meters in shard order,
///      replay outcomes in op order into the dataset / pending-removal
///      bookkeeping, and invalidate stale materialized views.
///   4. **Publish + reclaim** (caller thread): capture a new immutable
///      `DualStore::Snapshot` (new tree roots, partition pointers, view
///      catalog), publish it atomically, advance the epoch, wait for the
///      previous epoch to drain, and only then free what the retired
///      snapshot could reach: retired tree nodes return to the pools,
///      cloned-over partitions and dropped views are destroyed, and
///      dictionary ids released by the batch finish their two-stage
///      reclamation.
///
/// Readers pin an epoch and traverse the published snapshot — wait-free,
/// no reader-side lock anywhere on the query path. Every query sees the
/// store exactly as of some batch boundary (snapshot-per-batch
/// consistency): results are identical to *some* serial apply-then-query
/// interleaving, which is what the randomized online equivalence tests
/// assert. Memory holds ONE copy of the store plus the current batch's
/// copy-on-write deltas — the predecessor design's left-right replica
/// pair (2x memory, every batch applied twice) is gone.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/cost.h"
#include "common/epoch.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "core/dual_store.h"
#include "core/update.h"
#include "persist/wal.h"
#include "rdf/dataset.h"

namespace dskg::core {

/// A mutable-while-queried dual store (sharded copy-on-write applier +
/// epoch-coordinated snapshot reads).
class OnlineStore {
 public:
  /// Builds the store from a clone of `initial` (the source dataset is
  /// only read during construction and is not retained). The clone's
  /// dictionary is sliced to match `config.num_shards`.
  OnlineStore(const rdf::Dataset& initial, const DualStoreConfig& config);

  /// Durable variant: same construction, plus crash safety rooted at
  /// `durability.dir`. Writes an initial snapshot (watermark 0 — the WAL
  /// alone cannot reconstruct the bulk-loaded dataset) and opens a WAL;
  /// every subsequent `ApplyUpdates` appends its batch as a checksummed
  /// record *before* any structure mutates. A failure to establish
  /// durability poisons the store (check `poison_status()`).
  OnlineStore(const rdf::Dataset& initial, const DualStoreConfig& config,
              const persist::DurabilityOptions& durability);

  ~OnlineStore();

  OnlineStore(const OnlineStore&) = delete;
  OnlineStore& operator=(const OnlineStore&) = delete;

  // ---- read path (any number of threads) ---------------------------------

  /// Epoch-pinned access to the snapshot published at pin time. The
  /// snapshot is immutable for as long as the guard lives; queries,
  /// stats reads and result decoding through it are all safe.
  class ReadGuard {
   public:
    /// The underlying store. Reads through it outside `Process` see LIVE
    /// state — safe only when no applier is running. Concurrent readers
    /// go through `Process` (or install `snapshot()` themselves).
    const DualStore& store() const { return *store_; }
    const DualStore* operator->() const { return store_; }

    /// The pinned immutable snapshot.
    const DualStore::Snapshot& snapshot() const { return *snap_; }

    /// Processes one query against the pinned snapshot.
    Result<QueryExecution> Process(const sparql::Query& query) const;
    Result<QueryExecution> Process(std::string_view text) const;

   private:
    friend class OnlineStore;
    ReadGuard(const DualStore* store, const DualStore::Snapshot* snap,
              EpochManager::Pin pin)
        : store_(store), snap_(snap), pin_(std::move(pin)) {}
    const DualStore* store_;
    const DualStore::Snapshot* snap_;
    EpochManager::Pin pin_;
  };

  /// Pins the current snapshot. Wait-free against the applier.
  ReadGuard Read() const;

  /// Convenience: pin, process one query against the snapshot, unpin.
  Result<QueryExecution> Process(const sparql::Query& query) const;
  Result<QueryExecution> Process(std::string_view text) const;

  // ---- write path (one injector thread) ----------------------------------

  /// Applies `batch` through the sharded pipeline and publishes the
  /// resulting snapshot to readers. Costs are charged to `meter` (shard
  /// meters merge in shard order; with one shard the charges are
  /// bit-identical to the serial store's). Single injector: concurrent
  /// ApplyUpdates or TuneExclusive calls must be externally serialized;
  /// concurrent `Read`/`Process` calls need no coordination at all.
  ///
  /// Failure poisons the store: a half-applied batch is never published
  /// (readers keep the last published snapshot forever), but the live
  /// structures may have diverged from it, so every further
  /// ApplyUpdates/TuneExclusive returns the original error. Rebuild the
  /// OnlineStore to resume ingestion after a poisoned batch.
  Result<UpdateResult> ApplyUpdates(const UpdateBatch& batch,
                                    CostMeter* meter = nullptr);

  /// Offline tuning window: runs `fn` against the store (graph-store
  /// migrations/evictions, view builds) and publishes the tuned state as
  /// a fresh snapshot. Caller must guarantee no queries are in flight
  /// (the online runner tunes strictly between batches, as the paper's
  /// protocol does).
  Status TuneExclusive(const std::function<Status(DualStore*)>& fn);

  // ---- durability & crash recovery (injector thread) ---------------------

  /// What `Recover` found and did.
  struct RecoveryReport {
    uint64_t snapshot_watermark = 0;  ///< batch id the loaded snapshot covers
    uint64_t replayed_batches = 0;    ///< WAL records applied past it
    bool used_fallback_snapshot = false;  ///< newest snapshot failed checksums
    bool dropped_tail = false;  ///< bytes past the valid WAL prefix discarded
    /// OK when the WAL ended cleanly (a record boundary, or a torn tail
    /// from a crash mid-append). IoError when a fully framed mid-log
    /// record failed its checksum or would not decode — recovery still
    /// returns the store at the last good prefix.
    Status wal_status = Status::OK();
    std::string snapshot_file;  ///< path of the snapshot recovery loaded
  };

  /// Rebuilds a store from `durability.dir`: loads the newest snapshot
  /// that validates end to end (falling back to older ones on checksum
  /// failure — corrupt images are never loaded), replays the contiguous
  /// WAL suffix past its watermark, then checkpoints the recovered state
  /// (fresh snapshot + rotated WAL) so the next crash replays from here.
  /// NotFound when the directory holds no snapshot at all.
  /// `config` must describe the same shard layout the snapshot was saved
  /// under (InvalidArgument otherwise).
  static Result<std::unique_ptr<OnlineStore>> Recover(
      const DualStoreConfig& config,
      const persist::DurabilityOptions& durability,
      RecoveryReport* report = nullptr);

  /// Checkpoints the current state: writes a snapshot at the current
  /// watermark (temp file + rename + directory fsync — torn saves never
  /// shadow the previous snapshot), rotates the WAL to a fresh segment,
  /// and prunes snapshots/segments made obsolete by
  /// `DurabilityOptions::keep_snapshots`. Durable stores only; call
  /// between batches (the store must be quiescent).
  Status SaveSnapshot();

  /// The id the next applied batch will be sequenced as (the durability
  /// watermark). Batches below it are acknowledged as no-ops.
  uint64_t next_batch_id() const { return next_batch_id_; }

  /// True when construction configured a durability directory.
  bool durable() const { return !durability_.dir.empty(); }

  // ---- introspection (injector thread / quiescent store only) ------------

  /// The store. Only meaningful from the injector thread or while no
  /// applier is running; readers use `Read()`.
  const DualStore& active() const { return *store_; }

  /// Batches published so far.
  uint64_t applied_batches() const {
    return applied_batches_.load(std::memory_order_relaxed);
  }

  /// Share-nothing predicate shards (= applier threads).
  int num_shards() const { return static_cast<int>(workers_.size()); }

  /// Deterministic storage-tier footprint of the online store: dataset +
  /// dictionary + index slabs of the single copy it keeps. Quiescent
  /// only.
  uint64_t StorageBytes() const {
    return dataset_.StorageBytes() + store_->table().IndexBytes();
  }

  /// OK unless a failed batch poisoned the store (see `ApplyUpdates`).
  const Status& poison_status() const { return poisoned_; }

  /// The epoch manager (exposed for tests and diagnostics).
  const EpochManager& epochs() const { return epochs_; }

 private:
  /// Restores from a snapshot instead of bulk-loading: the dataset is
  /// moved in, the triple table deserialized from its slab image, and the
  /// graph re-imports the partitions that were resident at save time.
  /// On failure `*status` is set and the appliers never start (the
  /// destructor is safe either way).
  struct RestoreTag {};
  OnlineStore(RestoreTag, rdf::Dataset&& restored,
              const DualStoreConfig& config, std::string_view table_payload,
              const std::vector<rdf::TermId>& resident_predicates,
              Status* status);

  /// Shared constructor tail: flips every component into online
  /// (copy-on-write / deferred-reclaim) mode, publishes the first
  /// snapshot, and starts the shard applier threads.
  void FinishConstruction();

  /// Best-effort cleanup of files superseded by the newest snapshots
  /// (keeps `DurabilityOptions::keep_snapshots` of them plus every WAL
  /// segment the oldest kept snapshot still needs). Failures are ignored:
  /// stale files are harmless at recovery.
  void PruneObsoleteFiles();

  /// One routed mutation: its slot in the batch plus resolved ids.
  struct ShardOp {
    uint32_t index = 0;  ///< position in the batch (outcome slot)
    bool is_insert = false;
    rdf::Triple triple;
  };

  // Outcome bits a shard applier reports per op.
  static constexpr uint8_t kOutcomeApplied = 1;
  static constexpr uint8_t kOutcomeGraphMaintained = 2;

  /// One persistent shard applier. The injector hands it a task under
  /// `mu` and waits for `done`; the worker owns its shard's table trees
  /// and graph partitions exclusively while running.
  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    bool has_work = false;  // guarded by mu
    bool done = true;       // guarded by mu
    bool stop = false;      // guarded by mu
    // Task (valid while has_work/!done):
    const std::vector<ShardOp>* ops = nullptr;
    CostMeter* meter = nullptr;
    std::vector<uint8_t>* outcomes = nullptr;
    Status status;  // task result, read by the injector after `done`
  };

  void WorkerLoop(int shard);

  /// Phase II body: applies `ops` (in order) to shard `shard`'s slabs and
  /// partitions, recording outcomes and charging `m`.
  Status ApplyShard(int shard, const std::vector<ShardOp>& ops, CostMeter* m,
                    std::vector<uint8_t>* outcomes);

  /// Phase IV: captures the live state, publishes it, waits for the
  /// previous epoch to drain, and reclaims everything only the retired
  /// snapshot could reach.
  void PublishAndReclaim();

  /// One shard's applier telemetry, resolved against the global registry
  /// at construction (`store.shard<k>.*` metrics; shared by every store
  /// with a shard k — the registry merges, per-run deltas come from
  /// snapshots).
  struct ShardMetrics {
    telemetry::Histogram* apply_us = nullptr;
    telemetry::Gauge* queue_depth = nullptr;
  };

  rdf::Dataset dataset_;
  std::unique_ptr<DualStore> store_;
  mutable EpochManager epochs_;
  /// The published snapshot; replaced (never mutated) by the injector.
  std::atomic<const DualStore::Snapshot*> snapshot_{nullptr};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<ShardMetrics> shard_metrics_;  // aligned with workers_
  std::atomic<uint64_t> applied_batches_{0};
  Status poisoned_ = Status::OK();  // injector-thread state

  // Durability (injector-thread state; empty dir = not durable).
  persist::DurabilityOptions durability_;
  std::unique_ptr<persist::WalWriter> wal_;
  /// Monotone batch sequence: the id the next batch will carry. Equals
  /// the watermark every snapshot/WAL rotation is stamped with.
  uint64_t next_batch_id_ = 0;
};

}  // namespace dskg::core

#endif  // DSKG_CORE_ONLINE_STORE_H_
