#ifndef DSKG_CORE_ONLINE_STORE_H_
#define DSKG_CORE_ONLINE_STORE_H_

/// \file online_store.h
/// The online-update subsystem's front door: a dual store that stays
/// queryable while a stream of knowledge mutations is applied.
///
/// Design — *left-right replication under epoch reclamation*:
///
/// An `OnlineStore` owns two complete `DualStore` replicas (each with its
/// own dataset + dictionary, so readers and the applier share **no**
/// mutable structure — the shared-nothing discipline KVell applies per
/// worker, applied here per role). At any instant one replica is *active*
/// (all queries read it) and one is *passive* (only the applier touches
/// it):
///
///   1. readers pin the current epoch and query the active replica —
///      wait-free, no reader-side lock anywhere on the query path;
///   2. the single applier applies a batch to the passive replica, then
///      *publishes* it by swapping the active index and advancing the
///      epoch;
///   3. the applier waits for the old epoch to drain (every reader that
///      could still be inside the retired replica has finished) and only
///      then catches the retired replica up by replaying the same batch —
///      the epoch-based reclamation step: the retired state is reclaimed
///      for writing once its last observer leaves.
///
/// Every query therefore sees the store exactly as of some batch boundary
/// (snapshot-per-batch consistency): results are identical to *some*
/// serial apply-then-query interleaving, which is what the randomized
/// online equivalence tests assert. Batches are applied twice (once per
/// replica) and memory is doubled — the classic left-right trade for a
/// read-mostly store whose query path must never block.
///
/// Replica determinism: both replicas are clones of the same initial
/// dataset and replay identical batch sequences, and the dictionary
/// recycles ids deterministically, so the two replicas assign identical
/// term ids forever. A reader may decode results against whichever
/// replica produced them (keep the `ReadGuard` alive while decoding).

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>

#include "common/cost.h"
#include "common/epoch.h"
#include "common/status.h"
#include "core/dual_store.h"
#include "core/update.h"
#include "rdf/dataset.h"

namespace dskg::core {

/// A mutable-while-queried dual store (two replicas + epoch coordination).
class OnlineStore {
 public:
  /// Builds both replicas from clones of `initial` (the source dataset is
  /// only read during construction and is not retained).
  OnlineStore(const rdf::Dataset& initial, const DualStoreConfig& config);

  OnlineStore(const OnlineStore&) = delete;
  OnlineStore& operator=(const OnlineStore&) = delete;

  // ---- read path (any number of threads) ---------------------------------

  /// Epoch-pinned access to the replica that is active at pin time. The
  /// replica is immutable for as long as the guard lives; queries, stats
  /// reads and result decoding through it are all safe.
  class ReadGuard {
   public:
    const DualStore& store() const { return *store_; }
    const DualStore* operator->() const { return store_; }

   private:
    friend class OnlineStore;
    ReadGuard(const DualStore* store, EpochManager::Pin pin)
        : store_(store), pin_(std::move(pin)) {}
    const DualStore* store_;
    EpochManager::Pin pin_;
  };

  /// Pins the current snapshot. Wait-free against the applier.
  ReadGuard Read() const;

  /// Convenience: pin, process one query, unpin.
  Result<QueryExecution> Process(const sparql::Query& query) const;
  Result<QueryExecution> Process(std::string_view text) const;

  // ---- write path (one applier thread) -----------------------------------

  /// Applies `batch` to the passive replica, publishes it to readers, and
  /// once the retired replica drains replays the batch there. Costs are
  /// charged to `meter` once (the replay is replication bookkeeping, not
  /// additional simulated work). Single applier: concurrent ApplyUpdates
  /// or TuneExclusive calls must be externally serialized; concurrent
  /// `Read`/`Process` calls need no coordination at all.
  ///
  /// Failure poisons the store: a half-applied replica is never
  /// published (readers keep a consistent snapshot forever), but the
  /// replicas can no longer be kept in lockstep, so every further
  /// ApplyUpdates/TuneExclusive returns the original error. Rebuild the
  /// OnlineStore to resume ingestion after a poisoned batch.
  Result<UpdateResult> ApplyUpdates(const UpdateBatch& batch,
                                    CostMeter* meter = nullptr);

  /// Offline tuning window: runs `fn` against the active replica (the one
  /// whose statistics reflect all published batches) and then mirrors the
  /// accelerator state `fn` changed — graph-store residency and the
  /// materialized-view catalog — onto the passive replica, so the next
  /// publish does not flip queries back to untuned physical state.
  /// Caller must guarantee no queries are in flight (the online runner
  /// tunes strictly between batches, as the paper's protocol does).
  Status TuneExclusive(const std::function<Status(DualStore*)>& fn);

  // ---- introspection (applier thread / quiescent store only) -------------

  /// The currently active replica. Only meaningful from the applier
  /// thread or while no applier is running; readers use `Read()`.
  const DualStore& active() const { return *sides_[ActiveIndex()]; }

  /// Batches published so far.
  uint64_t applied_batches() const { return applied_batches_; }

  /// OK unless a failed batch poisoned the store (see `ApplyUpdates`).
  const Status& poison_status() const { return poisoned_; }

  /// The epoch manager (exposed for tests and diagnostics).
  const EpochManager& epochs() const { return epochs_; }

 private:
  size_t ActiveIndex() const {
    return active_index_.load(std::memory_order_seq_cst);
  }

  /// Copies graph-store residency and the view catalog of `from` onto
  /// `to` (used after a tuning window; `to` has identical logical content,
  /// so partitions/views rebuild from its own relational store).
  Status SyncAccelerators(const DualStore& from, DualStore* to);

  rdf::Dataset datasets_[2];
  std::unique_ptr<DualStore> sides_[2];
  mutable EpochManager epochs_;
  std::atomic<size_t> active_index_{0};
  uint64_t applied_batches_ = 0;
  Status poisoned_ = Status::OK();  // applier-thread state
};

}  // namespace dskg::core

#endif  // DSKG_CORE_ONLINE_STORE_H_
