#include "core/identifier.h"

#include <unordered_set>

namespace dskg::core {

using sparql::Query;
using sparql::TriplePattern;

IdentifiedQuery ComplexSubqueryIdentifier::Identify(const Query& query) {
  IdentifiedQuery out;
  out.query = query;

  const auto counts = query.VariableCounts();
  auto endpoint_qualifies = [&](const sparql::PatternTerm& t) {
    if (!t.is_variable) return true;  // constants qualify trivially
    const auto it = counts.find(t.text);
    return it != counts.end() && it->second > 1;
  };

  std::vector<TriplePattern> complex_patterns;
  std::vector<TriplePattern> remainder_patterns;
  for (const TriplePattern& p : query.patterns) {
    const bool has_var_endpoint =
        p.subject.is_variable || p.object.is_variable;
    const bool qualifies = !p.predicate.is_variable && has_var_endpoint &&
                           endpoint_qualifies(p.subject) &&
                           endpoint_qualifies(p.object);
    if (qualifies) {
      complex_patterns.push_back(p);
    } else {
      remainder_patterns.push_back(p);
    }
  }

  if (complex_patterns.size() < 2) {
    // No complex subquery: the whole query is the remainder.
    out.remainder = query;
    return out;
  }

  Query qc;
  qc.patterns = complex_patterns;

  // Join variables: variables of q_c that the remainder (or the final
  // projection) needs.
  std::unordered_set<std::string> outside;
  for (const TriplePattern& p : remainder_patterns) {
    for (const std::string& v : p.Variables()) outside.insert(v);
  }
  for (const std::string& v : query.select_vars) outside.insert(v);

  if (remainder_patterns.empty()) {
    qc.select_vars = query.select_vars;  // q_c is the whole query
  } else {
    for (const std::string& v : qc.AllVariables()) {
      if (outside.count(v) > 0) qc.select_vars.push_back(v);
    }
    // If q_c shares nothing with the outside (rare), keep all its
    // variables (empty select list = SELECT *).
  }

  out.complex = std::move(qc);
  out.remainder.select_vars = query.select_vars;
  out.remainder.patterns = std::move(remainder_patterns);
  return out;
}

}  // namespace dskg::core
