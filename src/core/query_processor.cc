#include "core/query_processor.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "common/telemetry.h"

namespace dskg::core {

using graphstore::TraversalMatcher;
using rdf::TermId;
using relstore::Executor;
using sparql::BindingTable;
using sparql::Query;

namespace {

// Route/engine metrics, resolved once against the global registry.
// Indexed by `static_cast<int>(Route)`.
struct QpMetrics {
  telemetry::Counter* route_count[4];
  telemetry::Histogram* wall_us[4];
  telemetry::Histogram* sim_us[4];
  telemetry::Histogram* rel_exec_wall_us;
  telemetry::Histogram* rel_exec_sim_us;
  telemetry::Histogram* graph_match_wall_us;
  telemetry::Histogram* graph_match_sim_us;
};

const QpMetrics& Qm() {
  static const QpMetrics m = [] {
    auto& reg = telemetry::MetricsRegistry::Global();
    QpMetrics q;
    const Route routes[4] = {Route::kRelationalOnly, Route::kGraphOnly,
                             Route::kDualStore, Route::kViewAssisted};
    for (Route r : routes) {
      const std::string n = RouteName(r);
      const int i = static_cast<int>(r);
      q.route_count[i] = reg.counter("query.route." + n);
      q.wall_us[i] = reg.histogram("query.wall_us." + n);
      q.sim_us[i] = reg.histogram("query.sim_us." + n);
    }
    q.rel_exec_wall_us = reg.histogram("rel.exec_wall_us");
    q.rel_exec_sim_us = reg.histogram("rel.exec_sim_us");
    q.graph_match_wall_us = reg.histogram("graph.match_wall_us");
    q.graph_match_sim_us = reg.histogram("graph.match_sim_us");
    return q;
  }();
  return m;
}

}  // namespace

const char* RouteName(Route route) {
  switch (route) {
    case Route::kRelationalOnly: return "relational";
    case Route::kGraphOnly: return "graph";
    case Route::kDualStore: return "dual";
    case Route::kViewAssisted: return "view";
  }
  return "unknown";
}

bool QueryProcessor::GraphCovers(const Query& q) const {
  for (const sparql::TriplePattern& p : q.patterns) {
    if (p.predicate.is_variable) return false;
    const rdf::TermId id = dict_->Lookup(p.predicate.text);
    if (id == rdf::kInvalidTermId) return false;
    if (!graph_->HasPredicate(id)) return false;
  }
  return true;
}

namespace {

/// Index of `name` in `params` (the plan-level parameter order). The
/// parser guarantees every artifact parameter is a query parameter.
size_t PlanParamIndex(const std::vector<std::string>& params,
                      const std::string& name) {
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i] == name) return i;
  }
  return params.size();  // unreachable for well-formed plans
}

/// Builds the artifact-local -> plan-level parameter index map.
std::vector<size_t> ParamMap(const std::vector<std::string>& plan_params,
                             const std::vector<std::string>& local_names) {
  std::vector<size_t> map;
  map.reserve(local_names.size());
  for (const std::string& n : local_names) {
    map.push_back(PlanParamIndex(plan_params, n));
  }
  return map;
}

/// Records the `$param` sites of `q`'s patterns into `sites`.
void RecordAstSites(const Query& q, uint8_t which,
                    const std::vector<std::string>& params,
                    std::vector<PreparedPlan::AstParamSite>* sites) {
  for (size_t i = 0; i < q.patterns.size(); ++i) {
    const sparql::PatternTerm* ends[2] = {&q.patterns[i].subject,
                                          &q.patterns[i].object};
    const uint8_t pos[2] = {0, 2};
    for (int e = 0; e < 2; ++e) {
      if (!ends[e]->is_param) continue;
      sites->push_back(
          {which, static_cast<uint32_t>(i), pos[e],
           static_cast<uint32_t>(PlanParamIndex(params, ends[e]->text))});
    }
  }
}

}  // namespace

std::vector<TermId> QueryProcessor::MapParams(const std::vector<size_t>& map,
                                              const TermId* param_values) {
  std::vector<TermId> out;
  out.reserve(map.size());
  for (size_t i : map) {
    out.push_back(param_values != nullptr ? param_values[i]
                                          : rdf::kInvalidTermId);
  }
  return out;
}

Result<BindingTable> QueryProcessor::MatchAll(
    const TraversalMatcher::Plan& plan, const std::vector<size_t>& map,
    const TermId* param_values, CostMeter* meter) const {
  auto& reg = telemetry::MetricsRegistry::Global();
  const bool telem = reg.enabled();
  const double wall0 = telem ? reg.NowMicros() : 0;
  const double sim0 = telem && meter != nullptr ? meter->sim_micros() : 0;
  BindingTable out;
  out.columns = plan.out_vars;
  if (plan.impossible && plan.param_names.empty()) return out;
  const std::vector<TermId> local = MapParams(map, param_values);
  // MatchSharded splits the root candidate range across the pool when one
  // is configured and falls back to the serial drain otherwise; rows and
  // charges are bit-identical either way.
  DSKG_ASSIGN_OR_RETURN(
      out, matcher_->MatchSharded(plan,
                                  local.empty() ? nullptr : local.data(),
                                  meter, config_.exec_pool,
                                  config_.max_traversal_shards));
  if (telem) {
    // Wall vs. simulated pair for the same traversal: how the real clock
    // tracks the cost model's TTI charge.
    Qm().graph_match_wall_us->Record(reg.NowMicros() - wall0);
    if (meter != nullptr) {
      Qm().graph_match_sim_us->Record(meter->sim_micros() - sim0);
    }
  }
  return out;
}

IdentifiedQuery QueryProcessor::BindSplit(const PreparedPlan& plan,
                                          const TermId* param_values) const {
  IdentifiedQuery split = plan.split;
  for (const PreparedPlan::AstParamSite& site : plan.ast_param_sites) {
    if (param_values == nullptr) break;
    const TermId v = param_values[site.param];
    if (v == rdf::kInvalidTermId) continue;  // caught by the engines
    Query* q = site.which == 0   ? &split.query
               : site.which == 1 ? &*split.complex
                                 : &split.remainder;
    sparql::PatternTerm& term = site.pos == 0
                                    ? q->patterns[site.pattern].subject
                                    : q->patterns[site.pattern].object;
    term = sparql::PatternTerm::Const(std::string(dict_->TermOf(v)));
  }
  return split;
}

Result<PreparedPlan> QueryProcessor::Prepare(const Query& query) const {
  PreparedPlan plan;
  plan.params = query.Parameters();
  plan.split = ComplexSubqueryIdentifier::Identify(query);
  plan.out_vars =
      query.select_vars.empty() ? query.AllVariables() : query.select_vars;
  if (!plan.params.empty()) {
    RecordAstSites(plan.split.query, 0, plan.params, &plan.ast_param_sites);
    if (plan.split.HasComplexSubquery()) {
      RecordAstSites(*plan.split.complex, 1, plan.params,
                     &plan.ast_param_sites);
    }
    RecordAstSites(plan.split.remainder, 2, plan.params,
                   &plan.ast_param_sites);
  }

  // The remainder's projection: the query's own (explicit) output.
  auto remainder_with_projection = [&]() {
    Query rem = plan.split.remainder;
    rem.select_vars = plan.out_vars;
    return rem;
  };

  // ---- route selection (Algorithm 3, decided once) ----------------------
  if (config_.use_graph && plan.split.HasComplexSubquery()) {
    const Query& qc = *plan.split.complex;
    if (GraphCovers(plan.split.query)) {
      // Case 1: the whole query runs in the graph store.
      plan.route = Route::kGraphOnly;
      DSKG_ASSIGN_OR_RETURN(plan.graph_whole,
                            matcher_->Compile(plan.split.query));
      plan.graph_whole_param_map =
          ParamMap(plan.params, plan.graph_whole.param_names);
      return plan;
    }
    if (GraphCovers(qc)) {
      // Case 2: q_c in the graph store, remainder in the relational store.
      plan.route = Route::kDualStore;
      DSKG_ASSIGN_OR_RETURN(plan.graph_complex, matcher_->Compile(qc));
      plan.graph_complex_param_map =
          ParamMap(plan.params, plan.graph_complex.param_names);
      if (!plan.split.remainder.patterns.empty()) {
        plan.has_remainder = true;
        plan.remainder = executor_->Compile(remainder_with_projection());
        plan.remainder_param_map =
            ParamMap(plan.params, plan.remainder.param_names);
      }
      return plan;
    }
    // Case 3 falls through.
  }

  if (config_.use_views && views_ != nullptr &&
      plan.split.HasComplexSubquery()) {
    // RDB-views: probe the catalog per execution (the view's filters are
    // the *bound* constants), fall back to Case 3 on a miss.
    plan.try_view = true;
    if (!plan.split.remainder.patterns.empty()) {
      plan.has_remainder = true;
      plan.remainder = executor_->Compile(remainder_with_projection());
      plan.remainder_param_map =
          ParamMap(plan.params, plan.remainder.param_names);
    }
  }

  // Case 3 (and the view-miss fallback): the whole query, relational.
  plan.rel = executor_->Compile(plan.split.query);
  plan.rel_param_map = ParamMap(plan.params, plan.rel.param_names);
  return plan;
}

Result<QueryExecution> QueryProcessor::ExecutePlan(
    const PreparedPlan& plan, const TermId* param_values) const {
  auto& reg = telemetry::MetricsRegistry::Global();
  const bool telem = reg.enabled();
  const double start_us = telem ? reg.NowMicros() : 0;
  QueryExecution exec;
  exec.split = BindSplit(plan, param_values);

  CostMeter rel_meter;
  CostMeter graph_meter(&CostModel::Default(), config_.graph_throttle);
  CostMeter migrate_meter;

  auto finish = [&](BindingTable result, Route route) -> QueryExecution {
    exec.result = std::move(result);
    exec.route = route;
    exec.rel_micros = rel_meter.sim_micros();
    exec.graph_micros = graph_meter.sim_micros();
    exec.migrate_micros = migrate_meter.sim_micros();
    exec.graph_io_micros = graph_meter.io_micros();
    exec.graph_cpu_micros = graph_meter.cpu_micros();
    const int ri = static_cast<int>(route);
    Qm().route_count[ri]->Add();
    if (telem) {
      const double wall = reg.NowMicros() - start_us;
      Qm().wall_us[ri]->Record(wall);
      Qm().sim_us[ri]->Record(exec.total_micros());
      if (reg.traces().enabled()) {
        reg.traces().Record("query.execute", start_us, wall);
      }
    }
    return exec;
  };

  // Relational executions wrapped with their wall/simulated pair.
  auto run_rel = [&](const Executor::CompiledQuery& cq,
                     const std::vector<TermId>& local,
                     BindingTable* seed) -> Result<BindingTable> {
    const double wall0 = telem ? reg.NowMicros() : 0;
    const double sim0 = telem ? rel_meter.sim_micros() : 0;
    Result<BindingTable> res = executor_->ExecuteCompiled(
        cq, local.empty() ? nullptr : local.data(), seed, &rel_meter);
    if (telem && res.ok()) {
      Qm().rel_exec_wall_us->Record(reg.NowMicros() - wall0);
      Qm().rel_exec_sim_us->Record(rel_meter.sim_micros() - sim0);
    }
    return res;
  };

  if (plan.route == Route::kGraphOnly) {
    DSKG_ASSIGN_OR_RETURN(BindingTable result,
                          MatchAll(plan.graph_whole,
                                   plan.graph_whole_param_map, param_values,
                                   &graph_meter));
    return finish(std::move(result), Route::kGraphOnly);
  }

  if (plan.route == Route::kDualStore) {
    DSKG_ASSIGN_OR_RETURN(BindingTable inter,
                          MatchAll(plan.graph_complex,
                                   plan.graph_complex_param_map,
                                   param_values, &graph_meter));
    // Migrate the intermediate results into the temporary table space.
    // The matcher's columnar table is handed to the executor as-is —
    // the seed adoption is one flat-buffer copy, no per-row re-keying.
    migrate_meter.Add(Op::kMigrateResultRow, inter.NumRows());
    migrate_meter.Add(Op::kTempTableTuple, inter.NumRows());
    if (!plan.has_remainder) {
      // Defensive: with an empty remainder, Case 1 should have fired.
      return finish(std::move(inter), Route::kDualStore);
    }
    const std::vector<TermId> local =
        MapParams(plan.remainder_param_map, param_values);
    DSKG_ASSIGN_OR_RETURN(BindingTable result,
                          run_rel(plan.remainder, local, &inter));
    return finish(std::move(result), Route::kDualStore);
  }

  if (plan.try_view) {
    const Query& bound_qc = *exec.split.complex;
    std::optional<relstore::MaterializedViewManager::Answer> ans =
        views_->TryAnswer(bound_qc.patterns, &rel_meter);
    if (ans.has_value()) {
      if (!plan.has_remainder) {
        return finish(ans->bindings.Project(plan.out_vars),
                      Route::kViewAssisted);
      }
      const std::vector<TermId> local =
          MapParams(plan.remainder_param_map, param_values);
      DSKG_ASSIGN_OR_RETURN(BindingTable result,
                            run_rel(plan.remainder, local, &ans->bindings));
      return finish(std::move(result), Route::kViewAssisted);
    }
  }

  // ---- Case 3: relational store ------------------------------------------
  const std::vector<TermId> local = MapParams(plan.rel_param_map,
                                              param_values);
  DSKG_ASSIGN_OR_RETURN(BindingTable result,
                        run_rel(plan.rel, local, nullptr));
  return finish(std::move(result), Route::kRelationalOnly);
}

Result<QueryExecution> QueryProcessor::Process(const Query& query) const {
  DSKG_ASSIGN_OR_RETURN(PreparedPlan plan, Prepare(query));
  if (!plan.params.empty()) {
    return Status::FailedPrecondition(
        "query has unbound parameters; prepare and bind it instead");
  }
  return ExecutePlan(plan, nullptr);
}

// ---- streaming --------------------------------------------------------------

/// Cursor internals. Meters live here so the engine cursors can hold
/// stable pointers to them while the public object moves around.
struct ExecutionCursor::Body {
  Route route = Route::kRelationalOnly;
  IdentifiedQuery split;  // bound
  CostMeter rel_meter;
  CostMeter graph_meter;
  CostMeter migrate_meter;

  /// Graph-only route: the resumable traversal streams rows directly.
  std::optional<TraversalMatcher::Cursor> graph_cursor;
  bool graph_impossible = false;

  /// Every other route: the final (unprojected) join intermediate plus
  /// the projection column map; chunks are projected on demand.
  BindingTable joined;
  std::vector<int> out_cols;
  size_t next_row = 0;

  std::vector<std::string> columns;
  bool done = false;
};

ExecutionCursor::ExecutionCursor() = default;
ExecutionCursor::~ExecutionCursor() = default;
ExecutionCursor::ExecutionCursor(ExecutionCursor&&) noexcept = default;
ExecutionCursor& ExecutionCursor::operator=(ExecutionCursor&&) noexcept =
    default;

const std::vector<std::string>& ExecutionCursor::columns() const {
  // Default-constructed / moved-from cursors answer benignly instead of
  // dereferencing a null body.
  static const std::vector<std::string> kEmpty;
  return body_ != nullptr ? body_->columns : kEmpty;
}

Route ExecutionCursor::route() const {
  return body_ != nullptr ? body_->route : Route::kRelationalOnly;
}

QueryExecution ExecutionCursor::Execution() const {
  QueryExecution exec;
  if (body_ == nullptr) return exec;
  exec.route = body_->route;
  exec.split = body_->split;
  exec.rel_micros = body_->rel_meter.sim_micros();
  exec.graph_micros = body_->graph_meter.sim_micros();
  exec.migrate_micros = body_->migrate_meter.sim_micros();
  exec.graph_io_micros = body_->graph_meter.io_micros();
  exec.graph_cpu_micros = body_->graph_meter.cpu_micros();
  return exec;
}

Status ExecutionCursor::Next(sparql::BindingTable* chunk, size_t max_rows,
                             bool* done) {
  if (body_ == nullptr) {
    return Status::FailedPrecondition(
        "cursor is empty (default-constructed or moved from)");
  }
  Body& b = *body_;
  chunk->columns = b.columns;
  chunk->ClearRows();
  if (b.done) {
    *done = true;
    return Status::OK();
  }
  if (b.graph_cursor.has_value()) {
    DSKG_RETURN_NOT_OK(b.graph_cursor->Fill(chunk, max_rows, &b.done));
    *done = b.done;
    return Status::OK();
  }
  const size_t stride = b.out_cols.size();
  const size_t end = std::min(b.joined.NumRows(), b.next_row + max_rows);
  chunk->ReserveRows(end - b.next_row);
  for (size_t r = b.next_row; r < end; ++r) {
    const TermId* row = b.joined.RowData(r);
    TermId* out_row = chunk->AppendRow();
    for (size_t c = 0; c < stride; ++c) {
      out_row[c] = row[b.out_cols[c]];
    }
  }
  b.next_row = end;
  if (b.next_row >= b.joined.NumRows()) b.done = true;
  *done = b.done;
  return Status::OK();
}

Result<ExecutionCursor> QueryProcessor::OpenCursor(
    const PreparedPlan& plan, const TermId* param_values) const {
  ExecutionCursor cursor;
  cursor.body_ = std::make_unique<ExecutionCursor::Body>();
  ExecutionCursor::Body& b = *cursor.body_;
  b.split = BindSplit(plan, param_values);
  b.graph_meter = CostMeter(&CostModel::Default(), config_.graph_throttle);

  // Adopts a fully joined (unprojected) table: resolve the projection
  // columns once; chunks copy through them. Missing columns are legal
  // only when no rows exist (then the header is still the full
  // projection, as the materialized path normalizes it).
  auto adopt_joined = [&](BindingTable joined,
                          const std::vector<std::string>& vars,
                          bool drop_missing) -> Status {
    b.out_cols.clear();
    b.columns.clear();
    for (const std::string& v : vars) {
      const int c = joined.ColumnIndex(v);
      if (c >= 0) {
        b.out_cols.push_back(c);
        b.columns.push_back(v);
      } else if (!drop_missing) {
        if (!joined.empty()) {
          return Status::Internal("projection lost columns unexpectedly");
        }
        b.columns = vars;
        b.out_cols.clear();
        b.joined = BindingTable{};
        return Status::OK();
      }
    }
    b.joined = std::move(joined);
    return Status::OK();
  };

  if (plan.route == Route::kGraphOnly) {
    b.route = Route::kGraphOnly;
    b.columns = plan.graph_whole.out_vars;
    const std::vector<TermId> local =
        MapParams(plan.graph_whole_param_map, param_values);
    DSKG_ASSIGN_OR_RETURN(
        TraversalMatcher::Cursor gc,
        matcher_->OpenCursor(plan.graph_whole,
                             local.empty() ? nullptr : local.data(),
                             &b.graph_meter));
    b.graph_cursor = std::move(gc);
    return cursor;
  }

  if (plan.route == Route::kDualStore) {
    b.route = Route::kDualStore;
    DSKG_ASSIGN_OR_RETURN(BindingTable inter,
                          MatchAll(plan.graph_complex,
                                   plan.graph_complex_param_map,
                                   param_values, &b.graph_meter));
    b.migrate_meter.Add(Op::kMigrateResultRow, inter.NumRows());
    b.migrate_meter.Add(Op::kTempTableTuple, inter.NumRows());
    if (!plan.has_remainder) {
      // Defensive: the intermediate *is* the result, already projected.
      std::vector<std::string> vars = inter.columns;
      DSKG_RETURN_NOT_OK(adopt_joined(std::move(inter), vars, false));
      return cursor;
    }
    const std::vector<TermId> local =
        MapParams(plan.remainder_param_map, param_values);
    DSKG_ASSIGN_OR_RETURN(
        BindingTable joined,
        executor_->ExecuteCompiledJoined(
            plan.remainder, local.empty() ? nullptr : local.data(), &inter,
            &b.rel_meter));
    DSKG_RETURN_NOT_OK(
        adopt_joined(std::move(joined), plan.remainder.out_vars, false));
    return cursor;
  }

  if (plan.try_view) {
    const Query& bound_qc = *b.split.complex;
    std::optional<relstore::MaterializedViewManager::Answer> ans =
        views_->TryAnswer(bound_qc.patterns, &b.rel_meter);
    if (ans.has_value()) {
      b.route = Route::kViewAssisted;
      if (!plan.has_remainder) {
        // Project() semantics: silently drop projected variables the view
        // cannot bind (the materialized path does the same).
        DSKG_RETURN_NOT_OK(
            adopt_joined(std::move(ans->bindings), plan.out_vars, true));
        return cursor;
      }
      const std::vector<TermId> local =
          MapParams(plan.remainder_param_map, param_values);
      DSKG_ASSIGN_OR_RETURN(
          BindingTable joined,
          executor_->ExecuteCompiledJoined(
              plan.remainder, local.empty() ? nullptr : local.data(),
              &ans->bindings, &b.rel_meter));
      DSKG_RETURN_NOT_OK(
          adopt_joined(std::move(joined), plan.remainder.out_vars, false));
      return cursor;
    }
  }

  // ---- Case 3: relational store ------------------------------------------
  b.route = Route::kRelationalOnly;
  const std::vector<TermId> local = MapParams(plan.rel_param_map,
                                              param_values);
  DSKG_ASSIGN_OR_RETURN(
      BindingTable joined,
      executor_->ExecuteCompiledJoined(plan.rel,
                                       local.empty() ? nullptr : local.data(),
                                       nullptr, &b.rel_meter));
  DSKG_RETURN_NOT_OK(adopt_joined(std::move(joined), plan.rel.out_vars,
                                  false));
  return cursor;
}

}  // namespace dskg::core
