#include "core/query_processor.h"

namespace dskg::core {

using sparql::BindingTable;
using sparql::Query;

const char* RouteName(Route route) {
  switch (route) {
    case Route::kRelationalOnly: return "relational";
    case Route::kGraphOnly: return "graph";
    case Route::kDualStore: return "dual";
    case Route::kViewAssisted: return "view";
  }
  return "unknown";
}

bool QueryProcessor::GraphCovers(const Query& q) const {
  for (const sparql::TriplePattern& p : q.patterns) {
    if (p.predicate.is_variable) return false;
    const rdf::TermId id = dict_->Lookup(p.predicate.text);
    if (id == rdf::kInvalidTermId) return false;
    if (!graph_->HasPredicate(id)) return false;
  }
  return true;
}

Result<QueryExecution> QueryProcessor::Process(const Query& query) const {
  QueryExecution exec;
  exec.split = ComplexSubqueryIdentifier::Identify(query);

  CostMeter rel_meter;
  CostMeter graph_meter(&CostModel::Default(), config_.graph_throttle);
  CostMeter migrate_meter;

  auto finish = [&](BindingTable result, Route route) -> QueryExecution {
    exec.result = std::move(result);
    exec.route = route;
    exec.rel_micros = rel_meter.sim_micros();
    exec.graph_micros = graph_meter.sim_micros();
    exec.migrate_micros = migrate_meter.sim_micros();
    exec.graph_io_micros = graph_meter.io_micros();
    exec.graph_cpu_micros = graph_meter.cpu_micros();
    return exec;
  };

  // The remainder's projection: the query's own (explicit) output.
  auto remainder_with_projection = [&]() {
    Query rem = exec.split.remainder;
    rem.select_vars = query.select_vars.empty() ? query.AllVariables()
                                                : query.select_vars;
    return rem;
  };

  // ---- RDB-GDB routing (Algorithm 3) ------------------------------------
  if (config_.use_graph && exec.split.HasComplexSubquery()) {
    const Query& qc = *exec.split.complex;
    if (GraphCovers(query)) {
      // Case 1: the whole query runs in the graph store.
      DSKG_ASSIGN_OR_RETURN(BindingTable result,
                            matcher_->Match(query, &graph_meter));
      return finish(std::move(result), Route::kGraphOnly);
    }
    if (GraphCovers(qc)) {
      // Case 2: q_c in the graph store, remainder in the relational store.
      DSKG_ASSIGN_OR_RETURN(BindingTable inter,
                            matcher_->Match(qc, &graph_meter));
      // Migrate the intermediate results into the temporary table space.
      // The matcher's columnar table is handed to the executor as-is —
      // the seed adoption is one flat-buffer copy, no per-row re-keying.
      migrate_meter.Add(Op::kMigrateResultRow, inter.NumRows());
      migrate_meter.Add(Op::kTempTableTuple, inter.NumRows());
      if (exec.split.remainder.patterns.empty()) {
        // Defensive: with an empty remainder, Case 1 should have fired.
        return finish(std::move(inter), Route::kDualStore);
      }
      DSKG_ASSIGN_OR_RETURN(
          BindingTable result,
          executor_->ExecuteWithSeed(remainder_with_projection(), inter,
                                     &rel_meter));
      return finish(std::move(result), Route::kDualStore);
    }
    // Case 3 falls through.
  }

  // ---- RDB-views routing -------------------------------------------------
  if (config_.use_views && views_ != nullptr &&
      exec.split.HasComplexSubquery()) {
    const Query& qc = *exec.split.complex;
    std::optional<relstore::MaterializedViewManager::Answer> ans =
        views_->TryAnswer(qc.patterns, &rel_meter);
    if (ans.has_value()) {
      if (exec.split.remainder.patterns.empty()) {
        const std::vector<std::string> out_vars =
            query.select_vars.empty() ? query.AllVariables()
                                      : query.select_vars;
        return finish(ans->bindings.Project(out_vars),
                      Route::kViewAssisted);
      }
      DSKG_ASSIGN_OR_RETURN(
          BindingTable result,
          executor_->ExecuteWithSeed(remainder_with_projection(),
                                     ans->bindings, &rel_meter));
      return finish(std::move(result), Route::kViewAssisted);
    }
  }

  // ---- Case 3: relational store ------------------------------------------
  DSKG_ASSIGN_OR_RETURN(BindingTable result,
                        executor_->Execute(query, &rel_meter));
  return finish(std::move(result), Route::kRelationalOnly);
}

}  // namespace dskg::core
