#include "core/dual_store.h"

#include "sparql/parser.h"

namespace dskg::core {

using rdf::TermId;
using rdf::Triple;
using sparql::Query;

DualStore::DualStore(rdf::Dataset* dataset, const DualStoreConfig& config)
    : dataset_(dataset),
      config_(config),
      graph_(config.graph_capacity_triples),
      executor_(&table_, &dataset->dict()),
      matcher_(&graph_, &dataset->dict()) {
  CostMeter load_meter;
  table_.BulkLoad(dataset->triples(), &load_meter);
  load_micros_ = load_meter.sim_micros();

  if (config.use_views) {
    views_ = std::make_unique<relstore::MaterializedViewManager>(
        &executor_, &dataset->dict(), config.views_budget_rows);
  }
  QueryProcessor::Config pc;
  pc.use_graph = config.use_graph;
  pc.use_views = config.use_views;
  pc.graph_throttle = config.graph_throttle;
  processor_ = std::make_unique<QueryProcessor>(
      &executor_, &graph_, &matcher_, views_.get(), &dataset->dict(), pc);
}

Result<QueryExecution> DualStore::Process(const Query& query) const {
  return processor_->Process(query);
}

Result<QueryExecution> DualStore::Process(std::string_view text) const {
  DSKG_ASSIGN_OR_RETURN(Query query, sparql::Parser::Parse(text));
  return processor_->Process(query);
}

Status DualStore::Insert(std::string_view subject, std::string_view predicate,
                         std::string_view object, CostMeter* meter) {
  const Triple t = dataset_->Add(subject, predicate, object);
  CostMeter local;
  CostMeter* m = meter != nullptr ? meter : &local;
  table_.Insert(t, m);
  if (graph_.HasPredicate(t.predicate)) {
    // Keep the resident partition consistent (slow native-insert path).
    Status s = graph_.InsertTriple(t, m);
    if (s.IsCapacityExceeded()) {
      // The graph copy no longer fits: drop the partition rather than
      // serve stale answers. The relational store remains authoritative.
      DSKG_RETURN_NOT_OK(graph_.EvictPartition(t.predicate, m));
    } else {
      DSKG_RETURN_NOT_OK(s);
    }
  }
  return Status::OK();
}

Status DualStore::MigratePartition(TermId predicate, CostMeter* meter) {
  if (graph_.HasPredicate(predicate)) {
    return Status::AlreadyExists("partition " + std::to_string(predicate) +
                                 " already resident");
  }
  const uint64_t size = PartitionSize(predicate);
  if (size == 0) {
    return Status::NotFound("predicate " + std::to_string(predicate) +
                            " has no partition in the relational store");
  }
  if (graph_.capacity_triples() > 0 && size > graph_.FreeTriples()) {
    return Status::CapacityExceeded(
        "partition of " + std::to_string(size) +
        " triples does not fit in the graph store (free: " +
        std::to_string(graph_.FreeTriples()) + ")");
  }
  // Extract via the POS index, shipping each triple.
  std::vector<Triple> triples;
  triples.reserve(size);
  relstore::BoundPattern extent;
  extent.predicate = predicate;
  DSKG_RETURN_NOT_OK(table_.ScanPattern(extent, meter, [&](const Triple& t) {
    meter->Add(Op::kMigratePartitionTriple);
    triples.push_back(t);
    return true;
  }));
  return graph_.ImportPartition(predicate, triples, meter);
}

Status DualStore::EvictPartition(TermId predicate, CostMeter* meter) {
  return graph_.EvictPartition(predicate, meter);
}

Result<double> DualStore::GraphQueryCost(const Query& qc,
                                         CostMeter* meter) const {
  CostMeter local(&CostModel::Default(), config_.graph_throttle);
  DSKG_ASSIGN_OR_RETURN(sparql::BindingTable ignored,
                        matcher_.Match(qc, &local));
  (void)ignored;
  meter->Merge(local);
  return local.sim_micros();
}

Result<double> DualStore::RelationalQueryCostWithCutoff(
    const Query& qc, double budget_micros, CostMeter* meter) const {
  CostMeter local;
  local.set_budget_micros(budget_micros);
  Result<sparql::BindingTable> r = executor_.Execute(qc, &local);
  meter->Merge(local);
  if (!r.ok()) {
    if (r.status().IsCancelled()) return budget_micros;  // λ·c1 cutoff hit
    return r.status();
  }
  return local.sim_micros();
}

void DualStore::SetGraphThrottle(ResourceThrottle t) {
  config_.graph_throttle = t;
  processor_->set_graph_throttle(t);
}

}  // namespace dskg::core
