#include "core/dual_store.h"

#include <unordered_set>

#include "sparql/parser.h"

namespace dskg::core {

using rdf::TermId;
using rdf::Triple;
using sparql::Query;

DualStore::DualStore(rdf::Dataset* dataset, const DualStoreConfig& config)
    : dataset_(dataset),
      config_(config),
      table_(config.num_shards),
      graph_(config.graph_capacity_triples, config.num_shards),
      executor_(&table_, &dataset->dict()),
      matcher_(&graph_, &dataset->dict()) {
  CostMeter load_meter;
  table_.BulkLoad(dataset->triples(), &load_meter, config.load_pool);
  load_micros_ = load_meter.sim_micros();

  if (config.use_views) {
    views_ = std::make_unique<relstore::MaterializedViewManager>(
        &executor_, &dataset->dict(), config.views_budget_rows);
  }
  QueryProcessor::Config pc;
  pc.use_graph = config.use_graph;
  pc.use_views = config.use_views;
  pc.graph_throttle = config.graph_throttle;
  pc.exec_pool = config.exec_pool;
  processor_ = std::make_unique<QueryProcessor>(
      &executor_, &graph_, &matcher_, views_.get(), &dataset->dict(), pc);
}

DualStore::DualStore(rdf::Dataset* dataset, const DualStoreConfig& config,
                     RestoreTag)
    : dataset_(dataset),
      config_(config),
      table_(config.num_shards),
      graph_(config.graph_capacity_triples, config.num_shards),
      executor_(&table_, &dataset->dict()),
      matcher_(&graph_, &dataset->dict()) {
  if (config.use_views) {
    views_ = std::make_unique<relstore::MaterializedViewManager>(
        &executor_, &dataset->dict(), config.views_budget_rows);
  }
  QueryProcessor::Config pc;
  pc.use_graph = config.use_graph;
  pc.use_views = config.use_views;
  pc.graph_throttle = config.graph_throttle;
  pc.exec_pool = config.exec_pool;
  processor_ = std::make_unique<QueryProcessor>(
      &executor_, &graph_, &matcher_, views_.get(), &dataset->dict(), pc);
}

Result<QueryExecution> DualStore::Process(const Query& query) const {
  return processor_->Process(query);
}

Result<QueryExecution> DualStore::Process(std::string_view text) const {
  DSKG_ASSIGN_OR_RETURN(Query query, sparql::Parser::Parse(text));
  return processor_->Process(query);
}

Result<PreparedPlan> DualStore::Prepare(const Query& query) const {
  DSKG_ASSIGN_OR_RETURN(PreparedPlan plan, processor_->Prepare(query));
  plan.plan_epoch = plan_epoch();
  return plan;
}

Result<QueryExecution> DualStore::ExecutePlan(const PreparedPlan& plan,
                                              const rdf::TermId* params) const {
  return processor_->ExecutePlan(plan, params);
}

Result<ExecutionCursor> DualStore::OpenCursor(const PreparedPlan& plan,
                                              const rdf::TermId* params) const {
  return processor_->OpenCursor(plan, params);
}

void DualStore::ForcePlanEpoch(uint64_t target) {
  const uint64_t views_v = views_ != nullptr ? views_->catalog_version() : 0;
  plan_epoch_.store(target > views_v ? target - views_v : 0,
                    std::memory_order_release);
}

DualStore::Snapshot DualStore::MakeSnapshot() const {
  Snapshot snap;
  snap.owner = this;
  snap.table = table_.MakeSnapshot();
  snap.graph = graph_.MakeSnapshot();
  if (views_ != nullptr) snap.views = views_->MakeSnapshot();
  snap.plan_epoch = plan_epoch_.load(std::memory_order_acquire) +
                    (views_ != nullptr ? views_->catalog_version() : 0);
  return snap;
}

Status DualStore::Insert(std::string_view subject, std::string_view predicate,
                         std::string_view object, CostMeter* meter) {
  // A single-fact insert is a one-op batch: same consistency guarantees
  // (resident-partition maintenance, view invalidation, duplicate no-op).
  UpdateBatch batch;
  batch.ops.push_back(UpdateOp::Insert(std::string(subject),
                                       std::string(predicate),
                                       std::string(object)));
  return ApplyUpdates(batch, meter).status();
}

Result<UpdateResult> DualStore::ApplyUpdates(const UpdateBatch& batch,
                                             CostMeter* meter) {
  // Any batch may intern terms, flip residency (overflow eviction) or
  // change statistics: prepared plans must re-validate. Bumped
  // unconditionally so the epoch tracks applied batches exactly.
  plan_epoch_.fetch_add(1, std::memory_order_release);
  UpdateResult res;
  CostMeter local;
  CostMeter* m = meter != nullptr ? meter : &local;

  // Dataset removal is deferred to one stable end-of-batch sweep (O(|G|)
  // instead of O(|G|) per delete). A successful re-insert of a triple
  // deleted earlier in the same batch cancels against that pending sweep
  // instead of appending, so dataset occurrences and the table's set
  // semantics stay aligned. Deferring also delays dictionary releases to
  // the sweep, so ids stay valid for the whole batch.
  std::unordered_set<rdf::Triple, rdf::TripleHash> pending_removal;
  std::unordered_set<TermId> touched_predicates;

  for (const UpdateOp& op : batch.ops) {
    if (op.kind == UpdateOp::Kind::kInsert) {
      rdf::Dictionary& dict = dataset_->mutable_dict();
      const Triple t{dict.Intern(op.subject), dict.Intern(op.predicate),
                     dict.Intern(op.object)};
      if (!table_.Insert(t, m)) continue;  // already stored: no-op
      if (pending_removal.erase(t) == 0) dataset_->Add(t);
      ++res.inserted;
      touched_predicates.insert(t.predicate);
      if (graph_.HasPredicate(t.predicate)) {
        Status s = graph_.InsertTriple(t, m);
        if (s.IsCapacityExceeded()) {
          // The graph copy no longer fits: drop the partition rather than
          // serve stale answers (the relational store stays authoritative).
          DSKG_RETURN_NOT_OK(graph_.EvictPartition(t.predicate, m));
        } else {
          DSKG_RETURN_NOT_OK(s);
          ++res.graph_maintained;
        }
      }
    } else {
      const rdf::Dictionary& dict = dataset_->dict();
      const Triple t{dict.Lookup(op.subject), dict.Lookup(op.predicate),
                     dict.Lookup(op.object)};
      if (t.subject == rdf::kInvalidTermId ||
          t.predicate == rdf::kInvalidTermId ||
          t.object == rdf::kInvalidTermId) {
        continue;  // references an unknown term: nothing stored to delete
      }
      if (!table_.RemoveTriple(t, m)) continue;  // not stored: no-op
      pending_removal.insert(t);
      ++res.deleted;
      touched_predicates.insert(t.predicate);
      if (graph_.HasPredicate(t.predicate)) {
        Status s = graph_.RemoveTriple(t, m);
        DSKG_RETURN_NOT_OK(s);
        ++res.graph_maintained;
      }
    }
  }

  // Invalidate views BEFORE the dataset sweep: the sweep releases
  // dictionary terms, and a predicate whose last triple died this batch
  // must still resolve while the catalog is matched against
  // `touched_predicates` (a stale view would otherwise survive and keep
  // serving the deleted rows).
  if (views_ != nullptr && !touched_predicates.empty()) {
    res.views_dropped = views_->InvalidatePredicates(touched_predicates);
  }
  if (!pending_removal.empty()) {
    dataset_->RemoveBatch(pending_removal);
  }
  return res;
}

Status DualStore::MigratePartition(TermId predicate, CostMeter* meter) {
  if (graph_.HasPredicate(predicate)) {
    return Status::AlreadyExists("partition " + std::to_string(predicate) +
                                 " already resident");
  }
  const uint64_t size = PartitionSize(predicate);
  if (size == 0) {
    return Status::NotFound("predicate " + std::to_string(predicate) +
                            " has no partition in the relational store");
  }
  if (graph_.capacity_triples() > 0 && size > graph_.FreeTriples()) {
    return Status::CapacityExceeded(
        "partition of " + std::to_string(size) +
        " triples does not fit in the graph store (free: " +
        std::to_string(graph_.FreeTriples()) + ")");
  }
  // Extract via the POS index, shipping each triple.
  std::vector<Triple> triples;
  triples.reserve(size);
  relstore::BoundPattern extent;
  extent.predicate = predicate;
  DSKG_RETURN_NOT_OK(table_.ScanPattern(extent, meter, [&](const Triple& t) {
    meter->Add(Op::kMigratePartitionTriple);
    triples.push_back(t);
    return true;
  }));
  DSKG_RETURN_NOT_OK(graph_.ImportPartition(predicate, triples, meter));
  ++plan_epoch_;  // residency changed: prepared routes are stale
  return Status::OK();
}

Status DualStore::EvictPartition(TermId predicate, CostMeter* meter) {
  DSKG_RETURN_NOT_OK(graph_.EvictPartition(predicate, meter));
  ++plan_epoch_;  // residency changed: prepared routes are stale
  return Status::OK();
}

Result<double> DualStore::GraphQueryCost(const Query& qc,
                                         CostMeter* meter) const {
  CostMeter local(&CostModel::Default(), config_.graph_throttle);
  DSKG_ASSIGN_OR_RETURN(sparql::BindingTable ignored,
                        matcher_.Match(qc, &local));
  (void)ignored;
  meter->Merge(local);
  return local.sim_micros();
}

Result<double> DualStore::RelationalQueryCostWithCutoff(
    const Query& qc, double budget_micros, CostMeter* meter) const {
  CostMeter local;
  local.set_budget_micros(budget_micros);
  Result<sparql::BindingTable> r = executor_.Execute(qc, &local);
  meter->Merge(local);
  if (!r.ok()) {
    if (r.status().IsCancelled()) return budget_micros;  // λ·c1 cutoff hit
    return r.status();
  }
  return local.sim_micros();
}

void DualStore::SetGraphThrottle(ResourceThrottle t) {
  config_.graph_throttle = t;
  processor_->set_graph_throttle(t);
}

void DualStore::SetExecutionPool(ThreadPool* pool) {
  config_.exec_pool = pool;
  processor_->set_exec_pool(pool);
}

}  // namespace dskg::core
