#include "core/dotil.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/telemetry.h"
#include "common/thread_pool.h"

namespace dskg::core {

using rdf::TermId;
using sparql::Query;

namespace {

// Tuning-decision counters: how often DOTIL moves partitions around.
struct DotilMetrics {
  telemetry::Counter* migrations;
  telemetry::Counter* evictions;
};

const DotilMetrics& Dm() {
  static const DotilMetrics m = [] {
    auto& reg = telemetry::MetricsRegistry::Global();
    return DotilMetrics{reg.counter("dotil.migrations"),
                        reg.counter("dotil.evictions")};
  }();
  return m;
}

/// Cap on the decision-time counterfactual probe (simulated microseconds):
/// bounds offline tuning work while still separating heavy complex
/// subqueries from cheap ones by orders of magnitude.
constexpr double kColdProbeCapMicros = 200000.0;

/// Resolves the distinct constant predicates of `qc` to partition ids.
/// Predicates unknown to the dictionary yield an empty result (the query
/// matches nothing; there is nothing to tune).
std::vector<TermId> PartitionSetOf(const Query& qc,
                                   const rdf::Dictionary& dict) {
  std::vector<TermId> out;
  for (const std::string& p : qc.ConstantPredicates()) {
    const TermId id = dict.Lookup(p);
    if (id == rdf::kInvalidTermId) return {};
    out.push_back(id);
  }
  return out;
}

}  // namespace

Status DotilTuner::AfterBatch(DualStore* store,
                              const std::vector<Query>& finished,
                              CostMeter* meter) {
  // Phase A (optional, parallel): speculatively probe c1/c2 for every
  // subquery that is all-resident *now*. These probes are read-only and
  // independent, and the store is quiescent until the serial pass below
  // starts mutating it, so they can run concurrently. Each result is
  // valid only while the plan epoch is unchanged: the first migration or
  // eviction in the serial pass invalidates the remaining probes, which
  // then rerun serially. Discarded probes charge nothing (their private
  // meters are dropped), so total charges match the serial run exactly.
  struct Probe {
    bool valid = false;
    double c1 = 0.0, c2 = 0.0;
    CostMeter meter;
  };
  std::vector<Probe> probes(finished.size());
  const uint64_t probe_epoch = store->plan_epoch();
  if (probe_pool_ != nullptr) {
    std::vector<size_t> candidates;
    for (size_t i = 0; i < finished.size(); ++i) {
      const std::vector<TermId> tc =
          PartitionSetOf(finished[i], store->dict());
      if (tc.size() < 2) continue;
      bool all_resident = true;
      for (TermId t : tc) {
        if (!store->IsResident(t)) {
          all_resident = false;
          break;
        }
      }
      if (all_resident) candidates.push_back(i);
    }
    if (candidates.size() > 1) {
      probe_pool_->ParallelFor(candidates.size(), [&](size_t k) {
        Probe& p = probes[candidates[k]];
        p.valid = ProbeCosts(*store, finished[candidates[k]], &p.meter,
                             &p.c1, &p.c2)
                      .ok();  // a failed probe just reruns serially
      });
    }
  }

  for (size_t qi = 0; qi < finished.size(); ++qi) {
    const Query& qc = finished[qi];
    const std::vector<TermId> tc = PartitionSetOf(qc, store->dict());
    if (tc.size() < 2) continue;  // not a complex subquery we can tune

    // Lines 5-7: everything resident — reinforce keeping.
    bool all_resident = true;
    for (TermId t : tc) {
      if (!store->IsResident(t)) {
        all_resident = false;
        break;
      }
    }
    if (all_resident) {
      Probe& p = probes[qi];
      if (p.valid && store->plan_epoch() == probe_epoch) {
        meter->Merge(p.meter);
        Train(*store, qc, tc, /*state=*/1, /*action=*/0, p.c1, p.c2);
      } else {
        DSKG_RETURN_NOT_OK(LearningProc(store, qc, tc, /*state=*/1,
                                        /*action=*/0, meter));
      }
      continue;
    }

    // Lines 9-11: T_set = partitions of q_c missing from the graph store.
    std::vector<TermId> tset;
    for (TermId t : tc) {
      if (!store->IsResident(t)) tset.push_back(t);
    }

    // Lines 12-17: compare the summed Q-values of keeping vs transferring.
    double q00 = 0.0, q01 = 0.0;
    for (TermId t : tset) {
      const QMatrix m = MatrixOf(t);
      q00 += m.at(0, 0);
      q01 += m.at(0, 1);
    }
    const bool cold = (q00 == 0.0 && q01 == 0.0);
    bool transfer;
    if (cold) {
      // Cold start: both actions untried — coin flip with `prob` (§4.2.2).
      transfer = rng_.NextBool(config_.transfer_prob);
    } else {
      transfer = q01 > q00;
    }
    if (!transfer) continue;

    // Lines 18-27: plan evictions by descending Q(1,1) - Q(1,0) until
    // T_set fits. The plan is only executed if the transfer's value
    // exceeds the keep-value destroyed by eviction — DOTIL maximizes the
    // *cumulative* reward (Equation 3), so trading a partition whose
    // learned keep-value Q(1,0) is high for one of lower expected value
    // would be a net loss. Untried sets are valued optimistically at the
    // historical mean transfer value.
    uint64_t needed = 0;
    for (TermId t : tset) needed += store->PartitionSize(t);
    const uint64_t capacity = store->graph().capacity_triples();
    if (capacity > 0 && needed > capacity) continue;  // can never fit
    std::vector<TermId> eviction_plan;
    if (capacity > 0 && needed > store->graph().FreeTriples()) {
      std::unordered_set<TermId> pinned(tc.begin(), tc.end());
      std::vector<TermId> evictable;
      for (TermId t : store->graph().LoadedPredicates()) {
        if (pinned.count(t) == 0) evictable.push_back(t);
      }
      // Most evict-worthy first: ascending keep-value (Q(1,0) - Q(1,1))
      // per resident triple, so one small beneficial transfer does not
      // wipe out a large high-value partition. With uniform sizes this
      // reduces to the paper's descending Q(1,1) - Q(1,0) order.
      auto keep_density = [&](TermId t) {
        const QMatrix m = MatrixOf(t);
        const double keep = std::max(0.0, m.at(1, 0) - m.at(1, 1));
        const double size =
            static_cast<double>(std::max<uint64_t>(
                1, store->graph().PartitionTriples(t)));
        return keep / size;
      };
      std::sort(evictable.begin(), evictable.end(),
                [&](TermId a, TermId b) {
                  const double da = keep_density(a);
                  const double db = keep_density(b);
                  if (da != db) return da < db;
                  return a < b;  // deterministic tie-break
                });
      uint64_t freeable = store->graph().FreeTriples();
      double lost_value = 0.0;
      for (TermId t : evictable) {
        if (needed <= freeable) break;
        eviction_plan.push_back(t);
        freeable += store->graph().PartitionTriples(t);
        const QMatrix m = MatrixOf(t);
        lost_value += std::max(0.0, m.at(1, 0) - m.at(1, 1));
      }
      if (needed > freeable) continue;  // no room even after evictions
      double gain = q01;
      if (!config_.eviction_guard) {
        gain = std::numeric_limits<double>::infinity();  // Algorithm 1 verbatim
      } else if (cold) {
        // Untried set: estimate the transfer value with the paper's own
        // counterfactual scenario at decision time — the (budget-capped)
        // relational cost of q_c approximates c2, and c1 is negligible
        // against it for complex queries (Table 1), so the expected
        // reward is ~c2.
        DSKG_ASSIGN_OR_RETURN(
            double c2, store->RelationalQueryCostWithCutoff(
                           qc, kColdProbeCapMicros, meter));
        gain = c2 * 1e-3;  // reward units (milliseconds)
      }
      if (lost_value > gain) continue;  // eviction would be a net loss
      for (TermId t : eviction_plan) {
        DSKG_RETURN_NOT_OK(store->EvictPartition(t, meter));
        Dm().evictions->Add();
      }
    }

    // Lines 28-29: migrate T_set.
    for (TermId t : tset) {
      DSKG_RETURN_NOT_OK(store->MigratePartition(t, meter));
      Dm().migrations->Add();
    }

    // Lines 30-31: train transferred and kept partitions.
    DSKG_RETURN_NOT_OK(LearningProc(store, qc, tset, /*state=*/0,
                                    /*action=*/1, meter));
    std::vector<TermId> kept;
    for (TermId t : tc) {
      if (std::find(tset.begin(), tset.end(), t) == tset.end()) {
        kept.push_back(t);
      }
    }
    if (!kept.empty()) {
      DSKG_RETURN_NOT_OK(LearningProc(store, qc, kept, /*state=*/1,
                                      /*action=*/0, meter));
    }
  }
  return Status::OK();
}

Status DotilTuner::ProbeCosts(const DualStore& store, const Query& qc,
                              CostMeter* meter, double* c1,
                              double* c2) const {
  // Line 1: c1 — the real graph-store cost of q_c.
  DSKG_ASSIGN_OR_RETURN(*c1, store.GraphQueryCost(qc, meter));
  // Lines 2-6: c2 — the counterfactual relational cost, cut off at λ·c1.
  DSKG_ASSIGN_OR_RETURN(*c2, store.RelationalQueryCostWithCutoff(
                                  qc, config_.lambda * *c1, meter));
  return Status::OK();
}

void DotilTuner::Train(const DualStore& store, const Query& qc,
                       const std::vector<TermId>& partitions, int state,
                       int action, double c1, double c2) {
  // Lines 7-12: amortize the reward over partitions by predicate share.
  const size_t total_patterns = qc.patterns.size();
  if (total_patterns == 0) return;
  for (TermId t : partitions) {
    size_t occurrences = 0;
    for (const sparql::TriplePattern& p : qc.patterns) {
      if (p.predicate.is_variable) continue;
      if (store.dict().Lookup(p.predicate.text) == t) ++occurrences;
    }
    const double proportion =
        static_cast<double>(occurrences) / static_cast<double>(total_patterns);
    // Reward in milliseconds: keeps Q magnitudes in the range the paper
    // reports (Table 5) at bench scale.
    const double reward = (c2 - c1) * 1e-3 * proportion;
    qmatrices_[t].Update(state, action, reward, config_.alpha,
                         config_.gamma);
  }
}

Status DotilTuner::LearningProc(DualStore* store, const Query& qc,
                                const std::vector<TermId>& partitions,
                                int state, int action, CostMeter* meter) {
  double c1 = 0.0, c2 = 0.0;
  DSKG_RETURN_NOT_OK(ProbeCosts(*store, qc, meter, &c1, &c2));
  Train(*store, qc, partitions, state, action, c1, c2);
  return Status::OK();
}

double DotilTuner::OptimisticTransferValue() const {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& [_, m] : qmatrices_) {
    if (m.at(0, 1) > 0.0) {
      sum += m.at(0, 1);
      ++n;
    }
  }
  return n == 0 ? std::numeric_limits<double>::infinity() : sum / n;
}

QMatrix DotilTuner::MatrixOf(TermId predicate) const {
  auto it = qmatrices_.find(predicate);
  return it == qmatrices_.end() ? QMatrix{} : it->second;
}

std::array<double, 4> DotilTuner::QMatrixSums() const {
  std::array<double, 4> out{0, 0, 0, 0};
  for (const auto& [_, m] : qmatrices_) {
    const std::array<double, 4> f = m.Flat();
    for (int i = 0; i < 4; ++i) out[i] += f[i];
  }
  return out;
}

}  // namespace dskg::core
