#include "core/baseline_tuners.h"

#include <algorithm>

#include "relstore/views.h"

namespace dskg::core {

using rdf::TermId;
using sparql::Query;

void AccumulatePartitionCounts(const DualStore& store,
                               const std::vector<Query>& queries,
                               std::map<TermId, uint64_t>* counts) {
  for (const Query& q : queries) {
    for (const std::string& p : q.ConstantPredicates()) {
      const TermId id = store.dict().Lookup(p);
      if (id != rdf::kInvalidTermId) ++(*counts)[id];
    }
  }
}

Status ApplyFrequencyDesign(DualStore* store,
                            const std::map<TermId, uint64_t>& counts,
                            CostMeter* meter) {
  // Rank: most referenced first; smaller partitions break ties (better
  // packing); predicate id as the final deterministic tie-break.
  std::vector<std::pair<TermId, uint64_t>> ranked(counts.begin(),
                                                  counts.end());
  std::sort(ranked.begin(), ranked.end(),
            [&](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              const uint64_t sa = store->PartitionSize(a.first);
              const uint64_t sb = store->PartitionSize(b.first);
              if (sa != sb) return sa < sb;
              return a.first < b.first;
            });

  // Greedy prefix that fits the budget.
  const uint64_t capacity = store->graph().capacity_triples();
  std::vector<TermId> target;
  uint64_t planned = 0;
  for (const auto& [pred, _] : ranked) {
    const uint64_t size = store->PartitionSize(pred);
    if (size == 0) continue;
    if (capacity > 0 && planned + size > capacity) continue;
    planned += size;
    target.push_back(pred);
  }

  // Reshape: evict partitions not in the target, then load missing ones.
  std::vector<TermId> loaded = store->graph().LoadedPredicates();
  for (TermId t : loaded) {
    if (std::find(target.begin(), target.end(), t) == target.end()) {
      DSKG_RETURN_NOT_OK(store->EvictPartition(t, meter));
    }
  }
  for (TermId t : target) {
    if (!store->IsResident(t)) {
      DSKG_RETURN_NOT_OK(store->MigratePartition(t, meter));
    }
  }
  return Status::OK();
}

Status ApplySetDesign(DualStore* store, const std::vector<Query>& foreseen,
                      CostMeter* meter) {
  // Group foreseen subqueries by their partition set.
  struct SetInfo {
    std::vector<TermId> partitions;
    uint64_t size = 0;
    uint64_t count = 0;
  };
  std::map<std::string, SetInfo> sets;  // keyed for determinism
  for (const Query& q : foreseen) {
    std::vector<TermId> parts;
    bool ok = true;
    for (const std::string& p : q.ConstantPredicates()) {
      const TermId id = store->dict().Lookup(p);
      if (id == rdf::kInvalidTermId) {
        ok = false;
        break;
      }
      parts.push_back(id);
    }
    if (!ok || parts.size() < 2) continue;
    std::sort(parts.begin(), parts.end());
    parts.erase(std::unique(parts.begin(), parts.end()), parts.end());
    std::string key;
    for (TermId t : parts) key += std::to_string(t) + ",";
    SetInfo& info = sets[key];
    if (info.count == 0) {
      info.partitions = parts;
      for (TermId t : parts) info.size += store->PartitionSize(t);
    }
    ++info.count;
  }

  // Most frequent sets first; smaller sets break ties.
  std::vector<const SetInfo*> ranked;
  ranked.reserve(sets.size());
  for (const auto& [_, info] : sets) ranked.push_back(&info);
  std::sort(ranked.begin(), ranked.end(),
            [](const SetInfo* a, const SetInfo* b) {
              if (a->count != b->count) return a->count > b->count;
              if (a->size != b->size) return a->size < b->size;
              return a->partitions < b->partitions;
            });

  // Greedily take whole sets while they fit (sets may share partitions).
  const uint64_t capacity = store->graph().capacity_triples();
  std::vector<TermId> target;
  uint64_t planned = 0;
  for (const SetInfo* info : ranked) {
    uint64_t extra = 0;
    for (TermId t : info->partitions) {
      if (std::find(target.begin(), target.end(), t) == target.end()) {
        extra += store->PartitionSize(t);
      }
    }
    if (capacity > 0 && planned + extra > capacity) continue;
    for (TermId t : info->partitions) {
      if (std::find(target.begin(), target.end(), t) == target.end()) {
        target.push_back(t);
      }
    }
    planned += extra;
  }

  for (TermId t : store->graph().LoadedPredicates()) {
    if (std::find(target.begin(), target.end(), t) == target.end()) {
      DSKG_RETURN_NOT_OK(store->EvictPartition(t, meter));
    }
  }
  for (TermId t : target) {
    if (!store->IsResident(t)) {
      DSKG_RETURN_NOT_OK(store->MigratePartition(t, meter));
    }
  }
  return Status::OK();
}

Status OneOffTuner::BeforeWorkload(DualStore* store,
                                   const std::vector<Query>& all,
                                   CostMeter* meter) {
  return ApplySetDesign(store, all, meter);
}

Status LruTuner::AfterBatch(DualStore* store,
                            const std::vector<Query>& finished,
                            CostMeter* meter) {
  AccumulatePartitionCounts(*store, finished, &counts_);
  return ApplyFrequencyDesign(store, counts_, meter);
}

Status IdealTuner::BeforeBatch(DualStore* store,
                               const std::vector<Query>& next,
                               CostMeter* meter) {
  return ApplySetDesign(store, next, meter);
}

Status ViewsTuner::AfterBatch(DualStore* store,
                              const std::vector<Query>& finished,
                              CostMeter* meter) {
  relstore::MaterializedViewManager* views = store->views();
  if (views == nullptr) {
    return Status::FailedPrecondition(
        "ViewsTuner requires a store configured with use_views");
  }
  for (const Query& qc : finished) {
    SignatureInfo& info = signatures_[relstore::BgpSignature(qc.patterns)];
    if (info.count == 0) info.representative = qc;
    ++info.count;
  }
  // Rebuild the catalog for the most frequent signatures. Rebuilding from
  // scratch each phase is deliberately naive — it is the frequency-based
  // policy the paper contrasts with DOTIL, and its cost lands in the
  // offline tuning meter either way.
  views->Clear();
  std::vector<const SignatureInfo*> ranked;
  ranked.reserve(signatures_.size());
  for (const auto& [_, info] : signatures_) ranked.push_back(&info);
  std::sort(ranked.begin(), ranked.end(),
            [](const SignatureInfo* a, const SignatureInfo* b) {
              if (a->count != b->count) return a->count > b->count;
              return a->representative.ToString() <
                     b->representative.ToString();
            });
  for (const SignatureInfo* info : ranked) {
    Status s = views->CreateView(info->representative, meter);
    if (s.IsCapacityExceeded()) continue;  // skip; try smaller candidates
    DSKG_RETURN_NOT_OK(s);
  }
  return Status::OK();
}

}  // namespace dskg::core
