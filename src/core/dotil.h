#ifndef DSKG_CORE_DOTIL_H_
#define DSKG_CORE_DOTIL_H_

/// \file dotil.h
/// DOTIL — the Dual-stOre Tuner based on reInforcement Learning
/// (paper §4, Algorithms 1 and 2).
///
/// After each batch, DOTIL walks the batch's complex subqueries. For each
/// subquery q_c with partition set T_c:
///
///  * T_c already resident            -> reinforce keeping (state 1,
///                                       action 0);
///  * otherwise, for the missing set T_set, compare ΣQ(0,0) against
///    ΣQ(0,1); on a cold start (both zero) flip a coin with probability
///    `transfer_prob`. If transferring wins: evict resident partitions in
///    descending Q(1,1)−Q(1,0) order until T_set fits (never evicting
///    partitions q_c itself needs), migrate T_set, then train the
///    transferred partitions with (state 0, action 1) and the already-
///    resident ones with (state 1, action 0).
///
/// Training (Algorithm 2) measures c1 by actually running q_c in the
/// graph store and c2 by the *counterfactual scenario*: running q_c in
/// the relational store under a cost budget of λ·c1 (cut off at the
/// budget, exactly like the paper's monitored parallel thread — the
/// simulated clock makes it deterministic). The reward (c2−c1), in
/// milliseconds, is amortized over T's partitions by each predicate's
/// share of q_c's patterns, and Equation 4 updates each partition's
/// 2x2 Q-matrix.

#include <array>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/dual_store.h"
#include "core/qmatrix.h"
#include "core/tuner.h"

namespace dskg {
class ThreadPool;
}  // namespace dskg

namespace dskg::core {

/// DOTIL hyper-parameters. Defaults are the paper's tuned values
/// (Table 5 discussion): alpha=0.5, gamma=0.7, lambda=4.5, prob=0.9.
struct DotilConfig {
  double alpha = 0.5;          ///< learning rate α
  double gamma = 0.7;          ///< discount factor γ
  double lambda = 4.5;         ///< counterfactual cutoff ratio λ
  double transfer_prob = 0.9;  ///< cold-start transfer probability `prob`
  uint64_t seed = 7;           ///< seed of the cold-start coin
  /// Value-aware eviction guard (DESIGN.md refinement 3): only execute an
  /// eviction plan whose destroyed keep-value is below the transfer's
  /// (learned or probed) value. Disabled = Algorithm 1 verbatim, which
  /// thrashes when the budget is far below the working set. Exposed for
  /// the ablation benchmark.
  bool eviction_guard = true;
};

/// The reinforcement-learning dual-store tuner.
class DotilTuner : public Tuner {
 public:
  explicit DotilTuner(const DotilConfig& config = {})
      : config_(config), rng_(config.seed) {}

  std::string name() const override { return "dotil"; }

  /// Algorithm 1 over the finished batch.
  Status AfterBatch(DualStore* store,
                    const std::vector<sparql::Query>& finished,
                    CostMeter* meter) override;

  /// The Q-matrix of `predicate` (zeros if never trained).
  QMatrix MatrixOf(rdf::TermId predicate) const;

  /// Element-wise sum of all partitions' Q-matrices, flattened
  /// [Q00, Q01, Q10, Q11] — the paper's Table 5 training metric.
  std::array<double, 4> QMatrixSums() const;

  /// Number of partitions with a trained Q-matrix.
  size_t num_trained() const { return qmatrices_.size(); }

  const DotilConfig& config() const { return config_; }

  /// Runs the c1/c2 cost probes of independent all-resident subqueries
  /// concurrently on `pool` (nullptr = serial, the default). Probes are
  /// speculative: each runs against the store state at batch entry, and a
  /// probe is only consumed if no migration/eviction has changed the plan
  /// epoch since — otherwise it is discarded (its charges are never
  /// merged) and the probe reruns serially. All tuning *decisions*
  /// (Q-updates, coin flips, migrate/evict plans) stay serial, so
  /// outcomes and charges are identical at every thread count.
  void set_probe_pool(ThreadPool* pool) { probe_pool_ = pool; }

  /// Expected value of transferring an untried partition set: the mean of
  /// all positive learned Q(0,1) values (optimistic initialization), or
  /// +infinity before any transfer has been rewarded.
  double OptimisticTransferValue() const;

 private:
  /// Algorithm 2 lines 1-6: measures c1 (graph cost of `qc`) and c2 (the
  /// counterfactual relational cost, cut off at λ·c1), charging `meter`.
  /// Read-only on the store — safe to run concurrently for independent
  /// subqueries against a quiescent store.
  Status ProbeCosts(const DualStore& store, const sparql::Query& qc,
                    CostMeter* meter, double* c1, double* c2) const;

  /// Algorithm 2 lines 7-12: amortizes the (c2 - c1) reward over
  /// `partitions` by predicate share and applies Equation 4. Serial only.
  void Train(const DualStore& store, const sparql::Query& qc,
             const std::vector<rdf::TermId>& partitions, int state,
             int action, double c1, double c2);

  /// Algorithm 2 end-to-end: ProbeCosts then Train.
  Status LearningProc(DualStore* store, const sparql::Query& qc,
                      const std::vector<rdf::TermId>& partitions, int state,
                      int action, CostMeter* meter);

  DotilConfig config_;
  Rng rng_;
  ThreadPool* probe_pool_ = nullptr;
  std::unordered_map<rdf::TermId, QMatrix> qmatrices_;
};

}  // namespace dskg::core

#endif  // DSKG_CORE_DOTIL_H_
