#include "core/runner.h"

#include <algorithm>
#include <future>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/telemetry.h"
#include "core/identifier.h"
#include "core/session.h"

namespace dskg::core {

using sparql::Query;
using workload::Workload;
using workload::WorkloadQuery;

namespace {

/// Complex subqueries of a span of workload queries (identification only;
/// nothing is executed).
std::vector<Query> ComplexSubqueriesOf(const WorkloadQuery* begin,
                                       const WorkloadQuery* end) {
  std::vector<Query> out;
  for (const WorkloadQuery* wq = begin; wq != end; ++wq) {
    IdentifiedQuery split = ComplexSubqueryIdentifier::Identify(wq->query);
    if (split.HasComplexSubquery()) out.push_back(*split.complex);
  }
  return out;
}

std::vector<Query> ComplexSubqueriesOf(const std::vector<WorkloadQuery>& qs) {
  return ComplexSubqueriesOf(qs.data(), qs.data() + qs.size());
}

/// Outcome of one query, reduced to what the metrics need — the result
/// rows themselves are dropped as soon as the query finishes, so the
/// batch-parallel path holds traces, not binding tables.
struct ProcessedQuery {
  Status status;  // non-OK: the query failed
  QueryTrace trace;
  std::optional<Query> finished_complex;
};

/// Executes one workload query through the session's prepared-query
/// cache: the template text is prepared once (parse + identify + route +
/// slot-compile), every mutation is a `Bind` + execute. Results and
/// simulated charges are identical to the one-shot `Process` path, which
/// remains the fallback for legacy (AST-substituted) instantiations and
/// for bindings whose term has since been deleted from the dictionary
/// (where `Bind` refuses but the classic path's "unknown constant
/// matches nothing" semantics must hold).
Result<QueryExecution> ExecuteViaSession(Session* session,
                                         const WorkloadQuery& wq,
                                         const std::function<Result<QueryExecution>()>& fallback) {
  if (session != nullptr && !wq.prepared_text.empty()) {
    Result<PreparedQuery> prepared = session->Prepare(wq.prepared_text);
    if (!prepared.ok()) return prepared.status();
    bool vanished_term = false;
    for (const auto& [param, term] : wq.bindings) {
      const Status s = prepared->Bind(param, term);
      if (s.IsNotFound()) {
        vanished_term = true;  // deleted under an online update stream
        break;
      }
      DSKG_RETURN_NOT_OK(s);
    }
    if (!vanished_term) {
      Result<QueryExecution> r = prepared->ExecuteAll();
      // A bound term can also vanish between Bind and the execution's
      // snapshot pin; that too degrades to the classic path below.
      if (r.ok() || !r.status().IsNotFound()) return r;
    }
  }
  return fallback();
}

/// Reduces one query's execution outcome to what the metrics need.
/// Shared by the serial and parallel loops so their aggregation can never
/// drift apart.
ProcessedQuery ReduceOne(Result<QueryExecution> exec) {
  ProcessedQuery out;
  if (!exec.ok()) {
    out.status = exec.status();
    return out;
  }
  const QueryExecution& e = exec.value();
  out.trace.route = e.route;
  out.trace.total_micros = e.total_micros();
  out.trace.graph_micros = e.graph_micros;
  out.trace.rel_micros = e.rel_micros;
  out.trace.migrate_micros = e.migrate_micros;
  out.trace.graph_io_micros = e.graph_io_micros;
  out.trace.graph_cpu_micros = e.graph_cpu_micros;
  out.trace.result_rows = e.result.NumRows();
  if (e.split.HasComplexSubquery()) out.finished_complex = *e.split.complex;
  return out;
}

/// Folds one processed query into the batch aggregates, in order.
void Accumulate(ProcessedQuery&& pq, BatchMetrics* bm,
                std::vector<Query>* finished_complex) {
  bm->tti_micros += pq.trace.total_micros;
  bm->graph_micros += pq.trace.graph_micros;
  bm->rel_micros += pq.trace.rel_micros;
  bm->migrate_micros += pq.trace.migrate_micros;
  bm->queries.push_back(pq.trace);
  if (pq.finished_complex.has_value()) {
    finished_complex->push_back(*std::move(pq.finished_complex));
  }
}

}  // namespace

Result<RunMetrics> WorkloadRunner::Run(const Workload& workload,
                                       int num_batches) {
  return RunImpl(workload, num_batches, /*pool=*/nullptr);
}

Result<RunMetrics> WorkloadRunner::RunParallel(const Workload& workload,
                                               int num_batches,
                                               ThreadPool* pool) {
  return RunImpl(workload, num_batches, pool);
}

Result<RunMetrics> WorkloadRunner::RunImpl(const Workload& workload,
                                           int num_batches,
                                           ThreadPool* pool) {
  RunMetrics metrics;
  const auto batches = workload.BatchRanges(num_batches);
  const WorkloadQuery* queries = workload.queries.data();

  // The prepared-query cache for this run: one plan per template text,
  // shared by every worker, re-validated automatically when tuning
  // between batches moves the store's plan epoch.
  Session session(store_);
  auto run_query = [&](const WorkloadQuery& wq) {
    return ExecuteViaSession(&session, wq,
                             [&] { return store_->Process(wq.query); });
  };

  // One-off tuning happens before batch 0; its cost is attributed there.
  // Tuning is offline and serial in both paths.
  double pre_workload_tuning = 0;
  if (tuner_ != nullptr) {
    CostMeter meter;
    DSKG_RETURN_NOT_OK(tuner_->BeforeWorkload(
        store_, ComplexSubqueriesOf(workload.queries), &meter));
    pre_workload_tuning = meter.sim_micros();
  }

  for (const auto& [batch_begin, batch_end] : batches) {
    const size_t batch_size = batch_end - batch_begin;
    BatchMetrics bm;
    if (metrics.batches.empty()) {
      bm.tuning_micros += pre_workload_tuning;
      pre_workload_tuning = 0;
    }

    if (tuner_ != nullptr) {
      CostMeter meter;
      DSKG_RETURN_NOT_OK(tuner_->BeforeBatch(
          store_,
          ComplexSubqueriesOf(queries + batch_begin, queries + batch_end),
          &meter));
      bm.tuning_micros += meter.sim_micros();
    }

    // The store is read-only during a batch, so its queries are
    // independent. With a pool, fan them out (each worker reduces its
    // query to a trace immediately, dropping the binding table); either
    // way, aggregate by submission index so every number is identical
    // across the two paths.
    std::vector<ProcessedQuery> processed(batch_size);
    if (pool != nullptr) {
      pool->ParallelFor(batch_size, [&](size_t i) {
        processed[i] = ReduceOne(run_query(queries[batch_begin + i]));
      });
    } else {
      for (size_t i = 0; i < batch_size; ++i) {
        processed[i] = ReduceOne(run_query(queries[batch_begin + i]));
        if (!processed[i].status.ok()) break;  // serial: stop at failure
      }
    }

    std::vector<Query> finished_complex;
    for (size_t i = 0; i < batch_size; ++i) {
      DSKG_RETURN_NOT_OK(processed[i].status);
      Accumulate(std::move(processed[i]), &bm, &finished_complex);
    }

    if (tuner_ != nullptr) {
      CostMeter meter;
      DSKG_RETURN_NOT_OK(
          tuner_->AfterBatch(store_, finished_complex, &meter));
      bm.tuning_micros += meter.sim_micros();
    }
    metrics.batches.push_back(std::move(bm));
  }
  return metrics;
}

namespace {

/// Per-predicate partition sizes of the active snapshot (quiescent use).
std::unordered_map<rdf::TermId, uint64_t> PartitionSizes(
    const OnlineStore& store) {
  std::unordered_map<rdf::TermId, uint64_t> sizes;
  const relstore::TripleTable& table = store.active().table();
  for (rdf::TermId p : table.Predicates()) {
    sizes[p] = table.StatsOf(p).num_triples;
  }
  return sizes;
}

/// Largest relative partition-size change between two snapshots (a
/// predicate absent on one side counts with size 0).
double MaxDrift(const std::unordered_map<rdf::TermId, uint64_t>& then,
                const std::unordered_map<rdf::TermId, uint64_t>& now) {
  double drift = 0;
  auto fold = [&](rdf::TermId p, uint64_t now_size) {
    const auto it = then.find(p);
    const uint64_t then_size = it == then.end() ? 0 : it->second;
    const double delta = now_size > then_size
                             ? static_cast<double>(now_size - then_size)
                             : static_cast<double>(then_size - now_size);
    drift = std::max(drift, delta / std::max<uint64_t>(1, then_size));
  };
  for (const auto& [p, n] : now) fold(p, n);
  for (const auto& [p, n] : then) {
    if (now.find(p) == now.end()) fold(p, 0);
  }
  return drift;
}

}  // namespace

Result<OnlineRunMetrics> WorkloadRunner::RunOnline(
    OnlineStore* store, const Workload& workload, const UpdateLog& updates,
    const OnlineRunOptions& options, ThreadPool* pool) {
  if (store == nullptr) {
    return Status::InvalidArgument("RunOnline requires an OnlineStore");
  }
  OnlineRunMetrics metrics;
  const auto query_ranges = workload.BatchRanges(options.num_batches);
  const auto update_ranges =
      workload::EvenRanges(updates.size(), options.num_batches);
  const WorkloadQuery* queries = workload.queries.data();

  // Prepared-query cache over the online store: each execution pins the
  // snapshot active when it starts, and plans prepared before an update
  // batch or a re-tune re-validate transparently (the plan epoch moved).
  Session session(store);
  auto run_query = [&](const WorkloadQuery& wq) {
    return ExecuteViaSession(&session, wq,
                             [&] { return store->Process(wq.query); });
  };

  // One-off tuning before any window, as in the offline protocol.
  double pre_tuning = 0;
  if (tuner_ != nullptr) {
    CostMeter meter;
    DSKG_RETURN_NOT_OK(store->TuneExclusive([&](DualStore* s) {
      return tuner_->BeforeWorkload(s, ComplexSubqueriesOf(workload.queries),
                                    &meter);
    }));
    pre_tuning = meter.sim_micros();
  }
  auto last_tuned_sizes = PartitionSizes(*store);

  for (size_t b = 0; b < query_ranges.size(); ++b) {
    const auto [q_begin, q_end] = query_ranges[b];
    const size_t batch_size = q_end - q_begin;
    OnlineBatchMetrics bm;
    if (b == 0) bm.tuning_micros += pre_tuning;

    // ---- the online window: queries fan out, this thread applies ------
    // Each worker pins an epoch per query, so it reads the snapshot as of
    // whatever batch boundary was published when it started; the applier
    // never waits for the window to finish.
    std::vector<ProcessedQuery> processed(batch_size);
    std::vector<std::future<void>> futures;
    if (pool != nullptr) {
      futures.reserve(batch_size);
      for (size_t i = 0; i < batch_size; ++i) {
        futures.push_back(pool->Submit([queries, q_begin, i, &processed,
                                        &run_query] {
          processed[i] = ReduceOne(run_query(queries[q_begin + i]));
        }));
      }
    }
    // An update failure must NOT return while query futures are still
    // running (they write into `processed`, a stack local): record the
    // status, always join the window, then fail.
    CostMeter update_meter;
    Status update_status;
    if (b < update_ranges.size()) {
      for (size_t u = update_ranges[b].first; u < update_ranges[b].second;
           ++u) {
        Result<UpdateResult> r = store->ApplyUpdates(updates.at(u),
                                                     &update_meter);
        update_status = r.status();
        if (!update_status.ok()) break;
        bm.inserted += r->inserted;
        bm.deleted += r->deleted;
      }
    }
    if (pool != nullptr) {
      // Wait for *every* task before get() may rethrow: unwinding while
      // sibling tasks still write `processed` would be a use-after-free.
      for (std::future<void>& f : futures) f.wait();
      for (std::future<void>& f : futures) f.get();
    } else {
      for (size_t i = 0; i < batch_size; ++i) {
        processed[i] = ReduceOne(run_query(queries[q_begin + i]));
      }
    }
    DSKG_RETURN_NOT_OK(update_status);
    bm.update_micros = update_meter.sim_micros();

    std::vector<Query> finished_complex;
    for (size_t i = 0; i < batch_size; ++i) {
      DSKG_RETURN_NOT_OK(processed[i].status);
      bm.tti_micros += processed[i].trace.total_micros;
      bm.queries.push_back(processed[i].trace);
      if (processed[i].finished_complex.has_value()) {
        finished_complex.push_back(*std::move(processed[i].finished_complex));
      }
    }

    // ---- offline window: drift check, tuner re-trigger ----------------
    if (tuner_ != nullptr && options.drift_threshold >= 0) {
      const auto now_sizes = PartitionSizes(*store);
      bm.max_drift = MaxDrift(last_tuned_sizes, now_sizes);
      if (bm.max_drift >= options.drift_threshold) {
        CostMeter meter;
        DSKG_RETURN_NOT_OK(store->TuneExclusive([&](DualStore* s) {
          return tuner_->AfterBatch(s, finished_complex, &meter);
        }));
        bm.tuning_micros += meter.sim_micros();
        bm.retuned = true;
        last_tuned_sizes = now_sizes;
      }
    }
    {
      // Per-window simulated aggregates into the registry (these feed
      // examples/streaming_freshness's registry-sourced table; `Record`s
      // of simulated values — never wall clock — so the numbers stay
      // deterministic).
      auto& reg = telemetry::MetricsRegistry::Global();
      if (reg.enabled()) {
        static telemetry::Histogram* const tti_hist =
            reg.histogram("online.window.tti_sim_us");
        static telemetry::Histogram* const update_hist =
            reg.histogram("online.window.update_sim_us");
        static telemetry::Counter* const retunes =
            reg.counter("online.retunes");
        static telemetry::Gauge* const drift = reg.gauge("online.max_drift");
        tti_hist->Record(bm.tti_micros);
        update_hist->Record(bm.update_micros);
        if (bm.retuned) retunes->Add();
        drift->Set(bm.max_drift);
      }
    }
    metrics.batches.push_back(std::move(bm));
    if (options.after_window) options.after_window(static_cast<int>(b));
  }
  return metrics;
}

Result<RunMetrics> WorkloadRunner::RunAveraged(const Workload& workload,
                                               int num_batches, int reps,
                                               int warmup) {
  if (reps <= warmup) {
    return Status::InvalidArgument("reps must exceed warmup");
  }
  std::vector<RunMetrics> runs;
  runs.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    DSKG_ASSIGN_OR_RETURN(RunMetrics m, Run(workload, num_batches));
    runs.push_back(std::move(m));
  }
  RunMetrics avg;
  const size_t first = static_cast<size_t>(warmup);
  const double n = static_cast<double>(reps - warmup);
  avg.batches.resize(runs[first].batches.size());
  for (size_t r = first; r < runs.size(); ++r) {
    for (size_t b = 0; b < avg.batches.size() && b < runs[r].batches.size();
         ++b) {
      avg.batches[b].tti_micros += runs[r].batches[b].tti_micros / n;
      avg.batches[b].graph_micros += runs[r].batches[b].graph_micros / n;
      avg.batches[b].rel_micros += runs[r].batches[b].rel_micros / n;
      avg.batches[b].migrate_micros +=
          runs[r].batches[b].migrate_micros / n;
      avg.batches[b].tuning_micros += runs[r].batches[b].tuning_micros / n;
      // Keep the last repetition's per-query traces (steady state).
      avg.batches[b].queries = runs.back().batches[b].queries;
    }
  }
  return avg;
}

}  // namespace dskg::core
