#include "core/runner.h"

#include "core/identifier.h"

namespace dskg::core {

using sparql::Query;
using workload::Workload;
using workload::WorkloadQuery;

namespace {

/// Complex subqueries of a span of workload queries (identification only;
/// nothing is executed).
std::vector<Query> ComplexSubqueriesOf(const std::vector<WorkloadQuery>& qs) {
  std::vector<Query> out;
  for (const WorkloadQuery& wq : qs) {
    IdentifiedQuery split = ComplexSubqueryIdentifier::Identify(wq.query);
    if (split.HasComplexSubquery()) out.push_back(*split.complex);
  }
  return out;
}

}  // namespace

Result<RunMetrics> WorkloadRunner::Run(const Workload& workload,
                                       int num_batches) {
  RunMetrics metrics;
  const auto batches = workload.SplitBatches(num_batches);

  // One-off tuning happens before batch 0; its cost is attributed there.
  double pre_workload_tuning = 0;
  if (tuner_ != nullptr) {
    CostMeter meter;
    DSKG_RETURN_NOT_OK(tuner_->BeforeWorkload(
        store_, ComplexSubqueriesOf(workload.queries), &meter));
    pre_workload_tuning = meter.sim_micros();
  }

  for (const std::vector<WorkloadQuery>& batch : batches) {
    BatchMetrics bm;
    if (metrics.batches.empty()) {
      bm.tuning_micros += pre_workload_tuning;
      pre_workload_tuning = 0;
    }

    if (tuner_ != nullptr) {
      CostMeter meter;
      DSKG_RETURN_NOT_OK(
          tuner_->BeforeBatch(store_, ComplexSubqueriesOf(batch), &meter));
      bm.tuning_micros += meter.sim_micros();
    }

    std::vector<Query> finished_complex;
    for (const WorkloadQuery& wq : batch) {
      DSKG_ASSIGN_OR_RETURN(QueryExecution exec, store_->Process(wq.query));
      QueryTrace trace;
      trace.route = exec.route;
      trace.total_micros = exec.total_micros();
      trace.graph_micros = exec.graph_micros;
      trace.rel_micros = exec.rel_micros;
      trace.migrate_micros = exec.migrate_micros;
      trace.graph_io_micros = exec.graph_io_micros;
      trace.graph_cpu_micros = exec.graph_cpu_micros;
      trace.result_rows = exec.result.rows.size();
      bm.tti_micros += trace.total_micros;
      bm.graph_micros += trace.graph_micros;
      bm.rel_micros += trace.rel_micros;
      bm.migrate_micros += trace.migrate_micros;
      bm.queries.push_back(trace);
      if (exec.split.HasComplexSubquery()) {
        finished_complex.push_back(*exec.split.complex);
      }
    }

    if (tuner_ != nullptr) {
      CostMeter meter;
      DSKG_RETURN_NOT_OK(
          tuner_->AfterBatch(store_, finished_complex, &meter));
      bm.tuning_micros += meter.sim_micros();
    }
    metrics.batches.push_back(std::move(bm));
  }
  return metrics;
}

Result<RunMetrics> WorkloadRunner::RunAveraged(const Workload& workload,
                                               int num_batches, int reps,
                                               int warmup) {
  if (reps <= warmup) {
    return Status::InvalidArgument("reps must exceed warmup");
  }
  std::vector<RunMetrics> runs;
  runs.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    DSKG_ASSIGN_OR_RETURN(RunMetrics m, Run(workload, num_batches));
    runs.push_back(std::move(m));
  }
  RunMetrics avg;
  const size_t first = static_cast<size_t>(warmup);
  const double n = static_cast<double>(reps - warmup);
  avg.batches.resize(runs[first].batches.size());
  for (size_t r = first; r < runs.size(); ++r) {
    for (size_t b = 0; b < avg.batches.size() && b < runs[r].batches.size();
         ++b) {
      avg.batches[b].tti_micros += runs[r].batches[b].tti_micros / n;
      avg.batches[b].graph_micros += runs[r].batches[b].graph_micros / n;
      avg.batches[b].rel_micros += runs[r].batches[b].rel_micros / n;
      avg.batches[b].migrate_micros +=
          runs[r].batches[b].migrate_micros / n;
      avg.batches[b].tuning_micros += runs[r].batches[b].tuning_micros / n;
      // Keep the last repetition's per-query traces (steady state).
      avg.batches[b].queries = runs.back().batches[b].queries;
    }
  }
  return avg;
}

}  // namespace dskg::core
