#ifndef DSKG_CORE_BASELINE_TUNERS_H_
#define DSKG_CORE_BASELINE_TUNERS_H_

/// \file baseline_tuners.h
/// The tuning baselines the paper compares DOTIL against (§6.4), plus the
/// view-selection policy of the RDB-views store variant (§6.2).
///
///  * `NoopTuner`    — never changes the physical design (RDB-only).
///  * `OneOffTuner`  — foresees the *whole* workload and tunes once,
///                     before the first batch (static design).
///  * `LruTuner`     — after each batch, keeps the historically most
///                     frequent partitions in the graph store (the
///                     paper's "LRU policy").
///  * `IdealTuner`   — foresees the *next* batch and tunes for exactly
///                     it beforehand (DOTIL's unattainable upper bound).
///  * `ViewsTuner`   — after each batch, materializes views for the most
///                     frequent complex-subquery signatures within the
///                     view budget (frequency-based selection — the
///                     paper's contrast to DOTIL's learned benefit).
///
/// The frequency-driven tuners share one packing routine: partitions are
/// ranked by how many complex subqueries reference them (descending, ties
/// by smaller size) and greedily loaded until B_G is exhausted.

#include <map>
#include <string>
#include <vector>

#include "core/dual_store.h"
#include "core/tuner.h"

namespace dskg::core {

/// Leaves the physical design untouched (RDB-only behaviour).
class NoopTuner : public Tuner {
 public:
  std::string name() const override { return "noop"; }
};

/// Tunes once, up front, from the whole future workload.
class OneOffTuner : public Tuner {
 public:
  std::string name() const override { return "one-off"; }
  Status BeforeWorkload(DualStore* store,
                        const std::vector<sparql::Query>& all,
                        CostMeter* meter) override;
};

/// Keeps the historically most frequent partitions resident.
class LruTuner : public Tuner {
 public:
  std::string name() const override { return "lru"; }
  Status AfterBatch(DualStore* store,
                    const std::vector<sparql::Query>& finished,
                    CostMeter* meter) override;

 private:
  /// Cumulative reference counts across all batches seen so far.
  std::map<rdf::TermId, uint64_t> counts_;
};

/// Tunes for exactly the next batch (oracle).
class IdealTuner : public Tuner {
 public:
  std::string name() const override { return "ideal"; }
  Status BeforeBatch(DualStore* store,
                     const std::vector<sparql::Query>& next,
                     CostMeter* meter) override;
};

/// Frequency-based materialized-view selection (RDB-views variant).
class ViewsTuner : public Tuner {
 public:
  std::string name() const override { return "views"; }
  Status AfterBatch(DualStore* store,
                    const std::vector<sparql::Query>& finished,
                    CostMeter* meter) override;

 private:
  /// signature -> (a representative subquery, cumulative frequency).
  struct SignatureInfo {
    sparql::Query representative;
    uint64_t count = 0;
  };
  std::map<std::string, SignatureInfo> signatures_;
};

/// Shared packing policy of `LruTuner`: counts partition references in
/// `queries` (accumulated into `counts`), ranks by frequency, and
/// reshapes the graph store to the best-fitting prefix. Exposed for
/// tests.
Status ApplyFrequencyDesign(DualStore* store,
                            const std::map<rdf::TermId, uint64_t>& counts,
                            CostMeter* meter);

/// Shared packing policy of `OneOffTuner` and `IdealTuner`: ranks the
/// *complete partition sets* of the foreseen complex subqueries by
/// frequency and loads whole sets while they fit. A complex subquery only
/// runs in the graph store when every one of its partitions is resident,
/// so set granularity is what a clairvoyant version of DOTIL would pick;
/// partition granularity (LRU) can burn the whole budget without covering
/// a single subquery — exactly the weakness the paper ascribes to it.
Status ApplySetDesign(DualStore* store,
                      const std::vector<sparql::Query>& foreseen,
                      CostMeter* meter);

/// Adds each query's constant-predicate partition references to `counts`.
void AccumulatePartitionCounts(const DualStore& store,
                               const std::vector<sparql::Query>& queries,
                               std::map<rdf::TermId, uint64_t>* counts);

}  // namespace dskg::core

#endif  // DSKG_CORE_BASELINE_TUNERS_H_
