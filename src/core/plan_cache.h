#ifndef DSKG_CORE_PLAN_CACHE_H_
#define DSKG_CORE_PLAN_CACHE_H_

/// \file plan_cache.h
/// The cross-session shared plan cache: one compiled plan per
/// `(query text, plan_epoch)` for *all* tenants of a store.
///
/// A `core::Session` caches plans per session, so two tenants preparing
/// the same template each pay a full parse + route + slot compilation.
/// With thousands of connections running a catalog of a few dozen
/// templates that is pure waste: the plan depends only on the query text
/// and the store's physical state (versioned by `DualStore::
/// plan_epoch()`), never on who asked. `SharedPlanCache` hoists the
/// cache one level up:
///
///   * `GetOrPrepare(text, store)` returns the plan for
///     `(text, store.plan_epoch())`, parsing and preparing at most once
///     per key no matter how many sessions/connections race on it.
///   * Parses are cached separately per text, so an epoch move (an
///     `ApplyUpdates`, a tuning window) re-plans without re-parsing.
///   * Epochs are monotone, so a newer epoch's plan simply replaces the
///     stale one (`stats().invalidations`) — a stale entry is never
///     returned, callers transparently re-prepare.
///   * Texts are LRU-bounded (`capacity`, 0 = unbounded); plans held by
///     callers stay alive through their shared_ptr after eviction.
///
/// Attach to sessions with `Session::set_shared_plan_cache`; the server
/// tier uses it directly (its per-connection statements are plain text +
/// bindings, the plans all live here). Thread-safe; the map lock is
/// never held across a parse or prepare, so a slow compilation of one
/// text does not serialize lookups of another. Losing a prepare race
/// costs one redundant compilation; the first-installed plan wins and
/// both callers get a valid plan for their epoch.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "common/telemetry.h"
#include "core/dual_store.h"
#include "core/query_processor.h"
#include "sparql/ast.h"

namespace dskg::core {

/// A process-wide (or per-store) plan cache shared by any number of
/// sessions and server connections.
class SharedPlanCache {
 public:
  /// Default bound on cached texts. Sized for a production template
  /// catalog; an adversarial stream of distinct texts evicts LRU.
  static constexpr size_t kDefaultCapacity = 512;

  explicit SharedPlanCache(size_t capacity = kDefaultCapacity);

  SharedPlanCache(const SharedPlanCache&) = delete;
  SharedPlanCache& operator=(const SharedPlanCache&) = delete;

  /// The plan for `(text, store.plan_epoch())`. On a hit this is a map
  /// lookup; on a miss the text is parsed (unless `parsed` supplies the
  /// caller's parse, or a previous epoch's parse is cached) and prepared
  /// against `store`, and the result is installed for every other
  /// caller. Under an installed `DualStore::SnapshotScope` both the
  /// epoch and the prepared plan read the pinned snapshot.
  Result<std::shared_ptr<const PreparedPlan>> GetOrPrepare(
      std::string_view text, const DualStore& store,
      const sparql::Query* parsed = nullptr);

  /// Monotone counters since construction.
  struct Stats {
    uint64_t hits = 0;           ///< plan served from the cache
    uint64_t misses = 0;         ///< full prepare (new text or new epoch)
    uint64_t parses = 0;         ///< texts parsed (<= misses)
    uint64_t invalidations = 0;  ///< stale-epoch plans replaced
    uint64_t evictions = 0;      ///< texts dropped by the LRU bound
  };
  Stats stats() const;

  /// Distinct texts currently cached.
  size_t size() const;

  /// Rebounds the cache (0 = unbounded), evicting immediately if over.
  void set_capacity(size_t capacity);

  /// Drops every cached parse and plan.
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const sparql::Query> parsed;  // survives epoch moves
    uint64_t epoch = 0;
    std::shared_ptr<const PreparedPlan> plan;  // null until first prepare
    std::list<std::string>::iterator lru_it;
  };

  /// Caller holds `mu_`.
  void EvictOverflowLocked();

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  /// Texts, most recently used first. Guarded by `mu_`.
  std::list<std::string> lru_;
  size_t capacity_;

  /// Dedicated cells in the global `plan_cache.shared.*` counters: exact
  /// per-cache stats that also roll up into the process-wide totals.
  telemetry::Counter::Cell* hits_;
  telemetry::Counter::Cell* misses_;
  telemetry::Counter::Cell* parses_;
  telemetry::Counter::Cell* invalidations_;
  telemetry::Counter::Cell* evictions_;
};

}  // namespace dskg::core

#endif  // DSKG_CORE_PLAN_CACHE_H_
