#ifndef DSKG_CORE_DUAL_STORE_H_
#define DSKG_CORE_DUAL_STORE_H_

/// \file dual_store.h
/// The dual-store facade: the library's main entry point.
///
/// A `DualStore` owns a relational store holding the *entire* knowledge
/// graph and a capacity-bounded graph store holding the partitions chosen
/// by the tuner, wires them through the complex subquery identifier and
/// the query processor (Figure 1 of the paper), and exposes the admin
/// operations tuners use (partition migration/eviction and the two cost
/// probes of Algorithm 2).
///
/// Three store variants are expressible through the config:
///  * RDB-only  — `use_graph = use_views = false`
///  * RDB-views — `use_views = true`, `views_budget_rows > 0`
///  * RDB-GDB   — `use_graph = true`, `graph_capacity_triples > 0`
///
/// Typical use:
/// \code
///   rdf::Dataset ds = workload::GenerateYago({.target_triples = 100000});
///   core::DualStore store(&ds, {.graph_capacity_triples =
///                                   ds.num_triples() / 4});
///   auto exec = store.Process(
///       "SELECT ?p WHERE { ?p y:wasBornIn ?c . "
///       "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?c . }");
/// \endcode

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/cost.h"
#include "common/status.h"
#include "core/query_processor.h"
#include "core/update.h"
#include "graphstore/matcher.h"
#include "graphstore/property_graph.h"
#include "rdf/dataset.h"
#include "relstore/executor.h"
#include "relstore/triple_table.h"
#include "relstore/views.h"
#include "sparql/ast.h"

namespace dskg::core {

/// Configuration of a dual store.
struct DualStoreConfig {
  /// Graph-store budget B_G in triples (0 = unlimited).
  uint64_t graph_capacity_triples = 0;
  /// Route complex subqueries through the graph store (RDB-GDB).
  bool use_graph = true;
  /// Route complex subqueries through materialized views (RDB-views).
  bool use_views = false;
  /// Row budget of the view catalog (0 = unlimited); the benchmarks set
  /// it equal to `graph_capacity_triples` for a fair comparison.
  uint64_t views_budget_rows = 0;
  /// Contention applied to graph-store execution (Table 6 / Figure 7).
  ResourceThrottle graph_throttle;
  /// Share-nothing predicate shards of the triple table and graph store
  /// (the online store's applier parallelism). One shard — the default —
  /// is bit-identical to the unsharded layout.
  int num_shards = 1;
  /// Pool used by the constructor's `BulkLoad` to sort and build the three
  /// index permutations in parallel (borrowed; null = serial). Loaded
  /// state and charges are bit-identical either way.
  ThreadPool* load_pool = nullptr;
  /// Pool handed to the query processor for sharded graph traversal
  /// (borrowed; null = serial); `SetExecutionPool` can change it later.
  ThreadPool* exec_pool = nullptr;
};

/// The dual-store structure (relational + graph) for one knowledge graph.
class DualStore {
 public:
  /// Bulk-loads `dataset` into the relational store. The dataset is
  /// borrowed (it owns the term dictionary) and must outlive the store;
  /// it stays mutable because knowledge updates intern new terms.
  DualStore(rdf::Dataset* dataset, const DualStoreConfig& config);

  /// Recovery constructor (the persistence tier's entry): wires every
  /// component exactly like the bulk-load constructor but skips the bulk
  /// load, leaving the triple table empty — the caller (the online
  /// store's restore path) rebuilds `table_` in place from a snapshot
  /// slab image, O(slab bytes) instead of O(n log n) re-insertion.
  struct RestoreTag {};
  DualStore(rdf::Dataset* dataset, const DualStoreConfig& config, RestoreTag);

  DualStore(const DualStore&) = delete;
  DualStore& operator=(const DualStore&) = delete;

  // ---- online path --------------------------------------------------------

  /// Routes and executes a parsed query (Algorithm 3).
  Result<QueryExecution> Process(const sparql::Query& query) const;

  /// Parses `text` and processes it.
  Result<QueryExecution> Process(std::string_view text) const;

  // ---- prepared path ------------------------------------------------------
  // (`core::Session` is the ergonomic front door — it adds the plan
  // cache, `$param` binding by name, and epoch re-validation on top.)

  /// Plan-time half of Algorithm 3 for `query`: identification, routing,
  /// slot compilation, stamped with the current `plan_epoch()`.
  Result<PreparedPlan> Prepare(const sparql::Query& query) const;

  /// Executes a prepared plan with bound parameter values (one per
  /// `plan.params` entry; null when none). Identical results and
  /// simulated charges as `Process` on the bound query. The caller is
  /// responsible for epoch validation (`Session` does it transparently).
  Result<QueryExecution> ExecutePlan(const PreparedPlan& plan,
                                     const rdf::TermId* params) const;

  /// Streaming variant of `ExecutePlan` (see `ExecutionCursor`).
  Result<ExecutionCursor> OpenCursor(const PreparedPlan& plan,
                                     const rdf::TermId* params) const;

  /// Monotone version of everything a prepared plan depends on: graph-
  /// store residency, the view catalog, and dictionary/statistics state
  /// (bumped by MigratePartition, EvictPartition and ApplyUpdates, plus
  /// every view-catalog change). A plan whose `plan_epoch` differs from
  /// the store's must be re-prepared before use. Under an installed
  /// `SnapshotScope` this is the captured epoch, so a reader validates
  /// against the state it will actually read.
  uint64_t plan_epoch() const {
    if (const Snapshot* snap = CurrentSnapshot()) return snap->plan_epoch;
    return plan_epoch_.load(std::memory_order_acquire) +
           (views_ != nullptr ? views_->catalog_version() : 0);
  }

  /// Forces `plan_epoch()` to `target` (which must be >= the current
  /// value). Snapshot bookkeeping only: `OnlineStore` bumps the epoch
  /// after an exclusive tuning window so plans validated against the
  /// pre-window snapshot re-prepare.
  void ForcePlanEpoch(uint64_t target);

  /// Inserts a new fact. The relational store always absorbs it; if the
  /// predicate's partition is resident in the graph store, the graph copy
  /// is updated too (the slow native-store insert path). Cost is charged
  /// to `meter` when provided.
  Status Insert(std::string_view subject, std::string_view predicate,
                std::string_view object, CostMeter* meter = nullptr);

  /// Applies one update batch (inserts + deletes, in op order) to every
  /// structure of this store at once: the dataset and its dictionary
  /// usage counts, the triple table with its three index permutations and
  /// per-predicate statistics, resident graph-store partitions (edges
  /// maintained in place; a partition that overflows capacity is evicted
  /// rather than left stale), and the materialized-view catalog (views
  /// over touched predicates are dropped — the tuner rebuilds them).
  /// Inserting a stored triple and deleting an absent one are no-ops.
  ///
  /// Single-applier: must not run concurrently with queries on THIS
  /// store — `OnlineStore` layers epoch-based read/write coordination on
  /// top for that. Charges per-tuple insert/remove and graph-maintenance
  /// costs to `meter` when provided.
  Result<UpdateResult> ApplyUpdates(const UpdateBatch& batch,
                                    CostMeter* meter = nullptr);

  // ---- tuner admin API -----------------------------------------------------

  /// Migrates `predicate`'s partition from the relational store to the
  /// graph store: extracts it via the POS index (charging
  /// `kMigratePartitionTriple` per triple) and bulk-imports it (charging
  /// `kImportTriple` per triple). The relational copy is kept, per §4.1.
  Status MigratePartition(rdf::TermId predicate, CostMeter* meter);

  /// Evicts `predicate`'s partition from the graph store.
  Status EvictPartition(rdf::TermId predicate, CostMeter* meter);

  /// True if `predicate`'s partition is resident in the graph store.
  bool IsResident(rdf::TermId predicate) const {
    return graph_.HasPredicate(predicate);
  }

  /// Triple count of `predicate`'s partition (in the relational store).
  uint64_t PartitionSize(rdf::TermId predicate) const {
    return table_.StatsOf(predicate).num_triples;
  }

  /// Cost probe c1 of Algorithm 2: runs `qc` in the graph store and
  /// returns its simulated cost in microseconds. Work is charged to
  /// `meter` (offline/tuning). Fails if the graph store does not cover
  /// `qc`.
  Result<double> GraphQueryCost(const sparql::Query& qc,
                                CostMeter* meter) const;

  /// Cost probe c2 of Algorithm 2 (the counterfactual parallel thread):
  /// runs `qc` in the relational store under a cost budget of
  /// `budget_micros`; returns the actual cost, or `budget_micros` if the
  /// run was cut off (the paper's λ·c1 cutoff). Work is charged to
  /// `meter`.
  Result<double> RelationalQueryCostWithCutoff(const sparql::Query& qc,
                                               double budget_micros,
                                               CostMeter* meter) const;

  // ---- snapshots (the online store's concurrent read path) ----------------

  /// A consistent, immutable view across every component a query reads:
  /// triple-table roots, graph partitions, view catalog, and the plan
  /// epoch they correspond to. Built by the online store's applier at the
  /// end of each batch; pointered state stays valid until the store's
  /// post-drain reclamation.
  struct Snapshot {
    const DualStore* owner = nullptr;
    relstore::TripleTable::Snapshot table;
    graphstore::PropertyGraph::Snapshot graph;
    /// Owner-null (inert) when the store has no view catalog.
    relstore::MaterializedViewManager::Snapshot views;
    uint64_t plan_epoch = 0;
  };

  /// Captures the current state of every component. Quiescent only (the
  /// online store calls it from the applier between batches).
  Snapshot MakeSnapshot() const;

  /// Installs `snap` as this thread's read source: the triple table, the
  /// graph store, the view catalog and `plan_epoch()` all serve the
  /// captured state for the scope's lifetime (nests; restores previous
  /// sources on destruction). A null snapshot leaves reads live.
  class SnapshotScope {
   public:
    explicit SnapshotScope(const Snapshot* snap)
        : table_(snap != nullptr ? &snap->table : nullptr),
          graph_(snap != nullptr ? &snap->graph : nullptr),
          views_(snap != nullptr ? &snap->views : nullptr),
          prev_(tls_snapshot_) {
      tls_snapshot_ = snap;
    }
    SnapshotScope(const SnapshotScope&) = delete;
    SnapshotScope& operator=(const SnapshotScope&) = delete;
    ~SnapshotScope() { tls_snapshot_ = prev_; }

   private:
    relstore::TripleTable::ReadScope table_;
    graphstore::PropertyGraph::ReadScope graph_;
    relstore::MaterializedViewManager::ReadScope views_;
    const Snapshot* prev_;
  };

  // ---- component access ----------------------------------------------------

  const rdf::Dictionary& dict() const { return dataset_->dict(); }
  const rdf::Dataset& dataset() const { return *dataset_; }
  const relstore::TripleTable& table() const { return table_; }
  const graphstore::PropertyGraph& graph() const { return graph_; }
  const relstore::Executor& executor() const { return executor_; }
  const graphstore::TraversalMatcher& matcher() const { return matcher_; }
  const QueryProcessor& processor() const { return *processor_; }
  relstore::MaterializedViewManager* views() { return views_.get(); }
  const relstore::MaterializedViewManager* views() const {
    return views_.get();
  }
  const DualStoreConfig& config() const { return config_; }

  /// Share-nothing predicate shards (1 = unsharded).
  int num_shards() const { return table_.num_shards(); }

  /// Simulated cost of the initial bulk load into the relational store.
  double load_micros() const { return load_micros_; }

  /// Updates the graph-store contention model (Table 6 sweeps).
  void SetGraphThrottle(ResourceThrottle t);

  /// Enables (null: disables) sharded graph traversal for every query
  /// routed through this store's processor — sessions inherit it, since
  /// they execute via the store. Set while no query is executing.
  void SetExecutionPool(ThreadPool* pool);

 private:
  /// The online store drives this store's sharded write pipeline (per-
  /// shard appliers, snapshot publication, deferred reclamation) through
  /// the private component state.
  friend class OnlineStore;

  /// This thread's installed snapshot if it belongs to this store.
  const Snapshot* CurrentSnapshot() const {
    const Snapshot* s = tls_snapshot_;
    return (s != nullptr && s->owner == this) ? s : nullptr;
  }

  rdf::Dataset* dataset_;
  DualStoreConfig config_;
  relstore::TripleTable table_;
  graphstore::PropertyGraph graph_;
  relstore::Executor executor_;
  graphstore::TraversalMatcher matcher_;
  std::unique_ptr<relstore::MaterializedViewManager> views_;
  std::unique_ptr<QueryProcessor> processor_;
  double load_micros_ = 0;
  /// Structural share of `plan_epoch()` (residency + content changes).
  /// Atomic: the online injector bumps it while prepared sessions poll.
  std::atomic<uint64_t> plan_epoch_{0};

  inline static thread_local const Snapshot* tls_snapshot_ = nullptr;
};

}  // namespace dskg::core

#endif  // DSKG_CORE_DUAL_STORE_H_
