#ifndef DSKG_CORE_QMATRIX_H_
#define DSKG_CORE_QMATRIX_H_

/// \file qmatrix.h
/// The per-partition 2x2 Q-matrix of DOTIL's decomposed state space
/// (paper §4.2.1).
///
/// Instead of learning over the joint 2^n state space of all partitions,
/// DOTIL keeps one tiny Q-matrix per triple partition T_i:
///
///   state  0 = T_i lives only in the relational store
///          1 = T_i is resident in the graph store
///   action 0 = keep, 1 = transfer (from state 0) / evict (from state 1)
///
/// Per the paper, R(0,0) and R(1,1) are kept at zero, so only Q(0,1)
/// (benefit of transferring) and Q(1,0) (accumulated benefit of keeping
/// resident) are ever updated — matching the [0, x, y, 0] rows of
/// Table 5.

#include <algorithm>
#include <array>

namespace dskg::core {

/// One partition's 2x2 Q-matrix.
struct QMatrix {
  /// q[state][action]; see file comment for the encoding.
  double q[2][2] = {{0.0, 0.0}, {0.0, 0.0}};

  double& at(int s, int a) { return q[s][a]; }
  double at(int s, int a) const { return q[s][a]; }

  /// Best attainable Q-value from `state` (the max_a Q(s', a) term of
  /// Equation 4).
  double MaxFuture(int state) const {
    return std::max(q[state][0], q[state][1]);
  }

  /// Successor state of taking `action` in `state`: action 1 flips the
  /// residency bit, action 0 keeps it.
  static int NextState(int state, int action) {
    return action == 1 ? 1 - state : state;
  }

  /// Applies Equation 4:
  ///   Q(s,a) <- (1-alpha) Q(s,a) + alpha (r + gamma max_a' Q(s',a')).
  void Update(int state, int action, double reward, double alpha,
              double gamma) {
    const int next = NextState(state, action);
    const double learned = reward + gamma * MaxFuture(next);
    q[state][action] = (1.0 - alpha) * q[state][action] + alpha * learned;
  }

  /// Flattened [Q00, Q01, Q10, Q11] (the layout Table 5 reports).
  std::array<double, 4> Flat() const {
    return {q[0][0], q[0][1], q[1][0], q[1][1]};
  }
};

}  // namespace dskg::core

#endif  // DSKG_CORE_QMATRIX_H_
