#ifndef DSKG_CORE_RUNNER_H_
#define DSKG_CORE_RUNNER_H_

/// \file runner.h
/// Batch-oriented workload driver implementing the paper's experimental
/// protocol (§6.1):
///
///   * the workload is consumed in batches (the paper uses 5);
///   * between batches the store is taken offline and the tuner runs
///     (its cost is recorded separately from online TTI);
///   * the primary metric is TTI — total elapsed (simulated) time from
///     batch submission to completion;
///   * `RunAveraged` repeats the run and averages the trailing
///     repetitions (the paper runs 6 times and averages the last 5 to
///     warm the accelerator).

#include <functional>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/dual_store.h"
#include "core/online_store.h"
#include "core/tuner.h"
#include "core/update.h"
#include "workload/workload.h"

namespace dskg::core {

/// Per-query record (feeds Figures 6 and 7).
struct QueryTrace {
  Route route = Route::kRelationalOnly;
  double total_micros = 0;
  double graph_micros = 0;
  double rel_micros = 0;
  double migrate_micros = 0;
  double graph_io_micros = 0;
  double graph_cpu_micros = 0;
  size_t result_rows = 0;
};

/// Aggregates for one batch.
struct BatchMetrics {
  /// Online time-to-insight of the batch (simulated microseconds).
  double tti_micros = 0;
  double graph_micros = 0;
  double rel_micros = 0;
  double migrate_micros = 0;
  /// Offline tuning cost after (or before) this batch.
  double tuning_micros = 0;
  std::vector<QueryTrace> queries;

  /// Fraction of online cost spent in the graph store (Figure 6).
  double GraphCostProportion() const {
    return tti_micros > 0 ? graph_micros / tti_micros : 0.0;
  }
};

/// Aggregates for one online window (a query batch plus the update
/// batches applied concurrently with it).
struct OnlineBatchMetrics {
  /// Online time-to-insight of the window's queries (simulated us).
  double tti_micros = 0;
  /// Simulated cost of applying this window's update batches.
  double update_micros = 0;
  /// Offline tuning cost charged to this window (drift-triggered).
  double tuning_micros = 0;
  uint64_t inserted = 0;  ///< triples absorbed by this window's updates
  uint64_t deleted = 0;   ///< triples removed by this window's updates
  /// Largest relative per-predicate partition-size drift observed since
  /// the last tuning window, and whether it re-triggered tuning.
  double max_drift = 0;
  bool retuned = false;
  std::vector<QueryTrace> queries;
};

/// Aggregates for a whole online run.
struct OnlineRunMetrics {
  std::vector<OnlineBatchMetrics> batches;

  double TotalTtiMicros() const {
    double t = 0;
    for (const OnlineBatchMetrics& b : batches) t += b.tti_micros;
    return t;
  }
  double TotalUpdateMicros() const {
    double t = 0;
    for (const OnlineBatchMetrics& b : batches) t += b.update_micros;
    return t;
  }
  double TotalTuningMicros() const {
    double t = 0;
    for (const OnlineBatchMetrics& b : batches) t += b.tuning_micros;
    return t;
  }
  uint64_t TotalInserted() const {
    uint64_t n = 0;
    for (const OnlineBatchMetrics& b : batches) n += b.inserted;
    return n;
  }
  uint64_t TotalDeleted() const {
    uint64_t n = 0;
    for (const OnlineBatchMetrics& b : batches) n += b.deleted;
    return n;
  }
  int Retunes() const {
    int n = 0;
    for (const OnlineBatchMetrics& b : batches) n += b.retuned ? 1 : 0;
    return n;
  }
};

/// Options of `WorkloadRunner::RunOnline`.
struct OnlineRunOptions {
  /// Query batches (the update log is spread evenly across them).
  int num_batches = 5;
  /// Re-trigger tuning when any predicate partition's triple count has
  /// drifted by more than this fraction since the last tuning window
  /// (0 = re-tune after every window; < 0 = never re-tune).
  double drift_threshold = 0.25;
  /// Called after each window completes (post drift check / re-tune),
  /// with the window index, while the store is quiesced — e.g. to
  /// snapshot the telemetry registry per window. Null = no callback.
  std::function<void(int window)> after_window;
};

/// Aggregates for a whole workload run.
struct RunMetrics {
  std::vector<BatchMetrics> batches;

  double TotalTtiMicros() const {
    double t = 0;
    for (const BatchMetrics& b : batches) t += b.tti_micros;
    return t;
  }
  double TotalTuningMicros() const {
    double t = 0;
    for (const BatchMetrics& b : batches) t += b.tuning_micros;
    return t;
  }
};

/// Drives a workload through a store + tuner pair.
class WorkloadRunner {
 public:
  /// `store` is borrowed; `tuner` may be null (no tuning — RDB-only and
  /// the static Table 1 comparisons).
  WorkloadRunner(DualStore* store, Tuner* tuner)
      : store_(store), tuner_(tuner) {}

  /// Runs `workload` in `num_batches` batches with tuning in between.
  Result<RunMetrics> Run(const workload::Workload& workload,
                         int num_batches = 5);

  /// Batch-parallel variant of `Run`: the independent queries of each
  /// batch execute concurrently on `pool` (each query serial on one
  /// worker, with its own meters), while tuning stays strictly *between*
  /// batches — offline, serial, deterministic, exactly as in `Run`.
  /// Per-query traces are collected by submission index, so the returned
  /// metrics — per-query traces, simulated costs, batch aggregates — are
  /// bit-identical to `Run`'s regardless of thread scheduling or pool
  /// size, and each query's result rows are the same as a serial
  /// `Process` would return (the equivalence tests enforce both; the
  /// metrics keep result *counts*, not the binding tables themselves).
  /// A null `pool` degrades to the serial path.
  Result<RunMetrics> RunParallel(const workload::Workload& workload,
                                 int num_batches, ThreadPool* pool);

  /// Runs `reps` times on the same (warming) store and returns metrics
  /// averaged over the last `reps - warmup` repetitions.
  Result<RunMetrics> RunAveraged(const workload::Workload& workload,
                                 int num_batches, int reps, int warmup);

  /// Online protocol: each query batch fans out on `pool` while this
  /// thread — the injector — concurrently publishes the window's share
  /// of `updates` through `store` (the shard appliers build the next
  /// copy-on-write snapshot; queries never block on updates, each sees
  /// some batch-boundary snapshot). Between windows the store is
  /// quiesced and, when per-predicate statistics have drifted past
  /// `options.drift_threshold` since the last tuning window, the tuner's
  /// `AfterBatch` re-runs over the finished window's complex subqueries
  /// (DOTIL re-tunes against the drifted partition sizes). The
  /// constructor's `DualStore` is not used by this path; `tuner_` may be
  /// null.
  /// A null `pool` degrades to serial interleaving (updates first).
  Result<OnlineRunMetrics> RunOnline(OnlineStore* store,
                                     const workload::Workload& workload,
                                     const UpdateLog& updates,
                                     const OnlineRunOptions& options,
                                     ThreadPool* pool);

 private:
  /// Shared batch scaffolding (tuning hooks, trace aggregation) for the
  /// serial and parallel paths; `pool == nullptr` executes inline. One
  /// body guarantees the two paths' metrics can never drift apart.
  Result<RunMetrics> RunImpl(const workload::Workload& workload,
                             int num_batches, ThreadPool* pool);

  DualStore* store_;
  Tuner* tuner_;
};

}  // namespace dskg::core

#endif  // DSKG_CORE_RUNNER_H_
