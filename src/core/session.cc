#include "core/session.h"

#include <utility>

#include "sparql/parser.h"

namespace dskg::core {

using session_internal::CacheEntry;
using session_internal::Snapshot;

namespace {

// Session-layer span histograms, resolved once against the global
// registry (the lookup takes a lock; the pointers are stable).
struct SessionHists {
  telemetry::Histogram* prepare_us;
  telemetry::Histogram* bind_us;
  telemetry::Histogram* execute_us;
  telemetry::Histogram* cursor_next_us;
};

const SessionHists& Hists() {
  static const SessionHists h = [] {
    auto& reg = telemetry::MetricsRegistry::Global();
    return SessionHists{reg.histogram("session.prepare_us"),
                        reg.histogram("session.bind_us"),
                        reg.histogram("session.execute_us"),
                        reg.histogram("session.cursor_next_us")};
  }();
  return h;
}

}  // namespace

Session::StatCells::StatCells() {
  auto& reg = telemetry::MetricsRegistry::Global();
  prepares = reg.counter("session.prepares")->NewCell();
  cache_hits = reg.counter("session.cache_hits")->NewCell();
  executions = reg.counter("session.executions")->NewCell();
  replans = reg.counter("session.replans")->NewCell();
  evictions = reg.counter("session.evictions")->NewCell();
}

// ---- Cursor -----------------------------------------------------------------

Status Cursor::Next(sparql::BindingTable* chunk, size_t max_rows,
                    bool* done) {
  telemetry::TraceScope span(Hists().cursor_next_us, "session.cursor_next");
  DualStore::SnapshotScope scope(view_);
  return impl_.Next(chunk, max_rows, done);
}

Result<sparql::BindingTable> Cursor::DrainAll(size_t chunk_rows) {
  sparql::BindingTable all;
  all.columns = columns();
  sparql::BindingTable chunk;
  bool done = false;
  while (!done) {
    DSKG_RETURN_NOT_OK(Next(&chunk, chunk_rows, &done));
    all.AppendRowsFrom(chunk);
  }
  return all;
}

// ---- PreparedQuery ----------------------------------------------------------

PreparedQuery::PreparedQuery(Session* session,
                             std::shared_ptr<CacheEntry> entry)
    : session_(session), entry_(std::move(entry)),
      bindings_(entry_->params.size()) {}

Status PreparedQuery::Bind(std::string_view param, std::string_view term) {
  telemetry::TraceScope span(Hists().bind_us, "session.bind");
  size_t idx = entry_->params.size();
  for (size_t i = 0; i < entry_->params.size(); ++i) {
    if (entry_->params[i] == param) {
      idx = i;
      break;
    }
  }
  if (idx == entry_->params.size()) {
    return Status::InvalidArgument(
        "no parameter $" + std::string(param) + " in query \"" +
        entry_->text + "\"");
  }
  const Snapshot snap = session_->Pin();
  DualStore::SnapshotScope scope(snap.view);
  const rdf::TermId id = snap.store->dict().Lookup(term);
  if (id == rdf::kInvalidTermId) {
    return Status::NotFound("term " + std::string(term) +
                            " is not in the dictionary; binding it to $" +
                            std::string(param) + " could never match");
  }
  bindings_[idx] = {true, std::string(term), id, snap.store->plan_epoch()};
  return Status::OK();
}

void PreparedQuery::ClearBindings() {
  bindings_.assign(entry_->params.size(), Binding{});
}

Result<std::vector<rdf::TermId>> PreparedQuery::ResolveForExecution(
    const Snapshot& snap, std::shared_ptr<const PreparedPlan>* plan) {
  DSKG_ASSIGN_OR_RETURN(*plan, session_->PlanFor(entry_.get(), *snap.store));
  const uint64_t epoch = (*plan)->plan_epoch;
  std::vector<rdf::TermId> values;
  values.reserve(bindings_.size());
  for (size_t i = 0; i < bindings_.size(); ++i) {
    Binding& b = bindings_[i];
    if (!b.bound) {
      return Status::FailedPrecondition(
          "parameter $" + entry_->params[i] + " is unbound in query \"" +
          entry_->text + "\"");
    }
    if (b.epoch != epoch) {
      // The dictionary may have changed (ids are recycled
      // deterministically): re-resolve the bound text against the pinned
      // snapshot rather than trusting a possibly re-assigned id.
      b.id = snap.store->dict().Lookup(b.term);
      b.epoch = epoch;
      if (b.id == rdf::kInvalidTermId) {
        return Status::NotFound("bound term " + b.term +
                                " is no longer in the dictionary");
      }
    }
    values.push_back(b.id);
  }
  return values;
}

Result<QueryExecution> PreparedQuery::ExecuteAll() {
  auto& reg = telemetry::MetricsRegistry::Global();
  const bool telem = reg.enabled();
  const double start_us = telem ? reg.NowMicros() : 0;
  Snapshot snap = session_->Pin();
  // Everything from plan validation to the last row reads the pinned
  // snapshot: over an OnlineStore the execution is wait-free against the
  // applier and never sees a half-applied batch.
  DualStore::SnapshotScope scope(snap.view);
  std::shared_ptr<const PreparedPlan> plan;
  DSKG_ASSIGN_OR_RETURN(std::vector<rdf::TermId> values,
                        ResolveForExecution(snap, &plan));
  Result<QueryExecution> result = snap.store->ExecutePlan(
      *plan, values.empty() ? nullptr : values.data());
  if (telem) {
    const double dur_us = reg.NowMicros() - start_us;
    Hists().execute_us->Record(dur_us);
    if (reg.traces().enabled()) {
      reg.traces().Record("session.execute", start_us, dur_us);
    }
    if (result.ok() && reg.slow_queries().enabled()) {
      reg.slow_queries().MaybeRecord(entry_->text, RouteName(result->route),
                                     dur_us / 1000.0);
    }
  }
  return result;
}

Result<Cursor> PreparedQuery::OpenCursor() {
  Snapshot snap = session_->Pin();
  DualStore::SnapshotScope scope(snap.view);
  std::shared_ptr<const PreparedPlan> plan;
  DSKG_ASSIGN_OR_RETURN(std::vector<rdf::TermId> values,
                        ResolveForExecution(snap, &plan));
  Cursor cursor;
  DSKG_ASSIGN_OR_RETURN(
      cursor.impl_,
      snap.store->OpenCursor(*plan,
                             values.empty() ? nullptr : values.data()));
  cursor.plan_ = std::move(plan);
  // The cursor owns the snapshot pin from here: over an OnlineStore the
  // pinned snapshot stays immutable (and re-installed per Next) until
  // the cursor is destroyed.
  cursor.view_ = snap.view;
  cursor.pin_ = std::move(snap.guard);
  return cursor;
}

// ---- Session ----------------------------------------------------------------

Snapshot Session::Pin() const {
  Snapshot snap;
  if (online_ != nullptr) {
    snap.guard = online_->Read();
    snap.store = &snap.guard->store();
    snap.view = &snap.guard->snapshot();
  } else {
    snap.store = dual_;
  }
  return snap;
}

Result<PreparedQuery> Session::Prepare(std::string_view text) {
  telemetry::TraceScope span(Hists().prepare_us, "session.prepare");
  std::shared_ptr<CacheEntry> entry;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(std::string(text));
    if (it != cache_.end()) {
      entry = it->second.entry;
      // Most-recently-prepared: move to the front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    }
  }
  if (entry != nullptr) {
    cells_.cache_hits->Add();
    return PreparedQuery(this, std::move(entry));
  }

  DSKG_ASSIGN_OR_RETURN(sparql::Query query, sparql::Parser::Parse(text));
  entry = std::make_shared<CacheEntry>();
  entry->text = std::string(text);
  entry->query = std::move(query);
  entry->params = entry->query.Parameters();
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(entry->text);
    if (it != cache_.end()) {
      entry = it->second.entry;  // lost a race: share the winner's
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    } else {
      lru_.push_front(entry->text);
      cache_.emplace(entry->text,
                     session_internal::CacheSlot{entry, lru_.begin()});
      EvictOverflowLocked();
    }
  }
  cells_.prepares->Add();
  return PreparedQuery(this, std::move(entry));
}

void Session::EvictOverflowLocked() {
  if (plan_cache_capacity_ == 0) return;
  while (cache_.size() > plan_cache_capacity_) {
    cache_.erase(lru_.back());
    lru_.pop_back();
    cells_.evictions->Add();
  }
}

void Session::SetPlanCacheCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(cache_mu_);
  plan_cache_capacity_ = capacity;
  EvictOverflowLocked();
}

size_t Session::plan_cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.size();
}

Result<std::shared_ptr<const PreparedPlan>> Session::PlanFor(
    CacheEntry* entry, const DualStore& store) {
  const uint64_t epoch = store.plan_epoch();
  bool replanned = false;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (entry->plan != nullptr && entry->plan->plan_epoch == epoch) {
      cells_.executions->Add();
      return entry->plan;
    }
    replanned = entry->plan != nullptr;
  }
  std::shared_ptr<const PreparedPlan> shared;
  if (shared_cache_ != nullptr) {
    // Cross-session path: N sessions sharing the cache compile this
    // (text, epoch) once. The cached parse in `entry` skips a re-parse.
    DSKG_ASSIGN_OR_RETURN(
        shared, shared_cache_->GetOrPrepare(entry->text, store, &entry->query));
  } else {
    DSKG_ASSIGN_OR_RETURN(PreparedPlan plan, store.Prepare(entry->query));
    shared = std::make_shared<const PreparedPlan>(std::move(plan));
  }
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    entry->plan = shared;
  }
  cells_.executions->Add();
  if (replanned) cells_.replans->Add();
  return shared;
}

Result<QueryExecution> Session::Execute(std::string_view text) {
  DSKG_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(text));
  return prepared.ExecuteAll();
}

std::future<Result<QueryExecution>> Session::SubmitAsync(
    std::string_view text) {
  std::string owned(text);
  if (pool_ == nullptr) {
    std::promise<Result<QueryExecution>> promise;
    promise.set_value(Execute(owned));
    return promise.get_future();
  }
  return pool_->Submit(
      [this, owned = std::move(owned)] { return Execute(owned); });
}

std::future<Result<QueryExecution>> Session::SubmitAsync(
    PreparedQuery prepared) {
  if (pool_ == nullptr) {
    std::promise<Result<QueryExecution>> promise;
    promise.set_value(prepared.ExecuteAll());
    return promise.get_future();
  }
  return pool_->Submit(
      [prepared = std::move(prepared)]() mutable {
        return prepared.ExecuteAll();
      });
}

void Session::ClearPlanCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
  lru_.clear();
}

Session::Stats Session::stats() const {
  Stats s;
  s.prepares = cells_.prepares->value();
  s.cache_hits = cells_.cache_hits->value();
  s.executions = cells_.executions->value();
  s.replans = cells_.replans->value();
  s.evictions = cells_.evictions->value();
  return s;
}

}  // namespace dskg::core
