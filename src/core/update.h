#ifndef DSKG_CORE_UPDATE_H_
#define DSKG_CORE_UPDATE_H_

/// \file update.h
/// The streaming-update vocabulary: single triple mutations, batches, and
/// the append-only log the online subsystem publishes them through.
///
/// Updates carry term *strings*, not ids — an insert may introduce terms
/// no store has interned yet, and keeping the log id-free lets the same
/// batch be replayed against independently-encoded stores (the sharded
/// `OnlineStore` resolves ids in op order at injection, so a log recorded
/// under one shard count replays identically under any other).
///
/// A batch is the atomicity and visibility unit: `DualStore::ApplyUpdates`
/// applies one batch to every structure of one store (triple table, all
/// three index permutations, per-predicate statistics, resident graph
/// partitions, the materialized-view catalog, the dictionary's usage
/// counts), and `OnlineStore` publishes whole batches to readers — a query
/// observes a batch entirely or not at all (snapshot-per-batch
/// consistency).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace dskg::core {

/// `UpdateBatch::batch_id` value meaning "not yet sequenced". The store
/// assigns the next id on apply; `UpdateLog::Append` stamps the sequence
/// number.
inline constexpr uint64_t kUnassignedBatchId = ~0ULL;

/// One knowledge-graph mutation.
struct UpdateOp {
  enum class Kind { kInsert, kDelete };

  Kind kind = Kind::kInsert;
  std::string subject;
  std::string predicate;
  std::string object;

  static UpdateOp Insert(std::string s, std::string p, std::string o) {
    return {Kind::kInsert, std::move(s), std::move(p), std::move(o)};
  }
  static UpdateOp Delete(std::string s, std::string p, std::string o) {
    return {Kind::kDelete, std::move(s), std::move(p), std::move(o)};
  }
};

/// One atomically-visible group of mutations.
struct UpdateBatch {
  std::vector<UpdateOp> ops;
  /// Monotone batch identity: assigned by `UpdateLog::Append` (the dense
  /// log position) or by the store at apply time when unassigned. The WAL
  /// watermark, recovery replay, and telemetry windows all key off it.
  uint64_t batch_id = kUnassignedBatchId;

  size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }
};

/// What `DualStore::ApplyUpdates` did with one batch.
struct UpdateResult {
  uint64_t inserted = 0;        ///< new triples absorbed (duplicates skip)
  uint64_t deleted = 0;         ///< stored triples removed (misses skip)
  uint64_t views_dropped = 0;   ///< stale materialized views invalidated
  uint64_t graph_maintained = 0;  ///< edges maintained in resident partitions
  /// The batch id this result belongs to (the effective id the store
  /// sequenced the batch under).
  uint64_t batch_id = kUnassignedBatchId;
  /// True when `OnlineStore::ApplyUpdates` recognized an already-applied
  /// batch id (recovery replay idempotence) and did nothing.
  bool already_applied = false;
};

// ---- binary batch codec (the WAL record payload) ---------------------------

/// Appends `batch` in the durable wire format under an explicit id: u64
/// batch_id, u32 op count, then per op a kind byte and three
/// length-prefixed term strings. Fixed-width little-endian throughout
/// (see common/bytes.h); framing and checksumming are the WAL layer's
/// job.
inline void EncodeUpdateBatch(const UpdateBatch& batch, uint64_t batch_id,
                              std::string* out) {
  PutU64(out, batch_id);
  PutU32(out, static_cast<uint32_t>(batch.ops.size()));
  for (const UpdateOp& op : batch.ops) {
    PutU8(out, op.kind == UpdateOp::Kind::kInsert ? 0 : 1);
    PutString(out, op.subject);
    PutString(out, op.predicate);
    PutString(out, op.object);
  }
}

/// Convenience overload: encodes under the batch's own id.
inline void EncodeUpdateBatch(const UpdateBatch& batch, std::string* out) {
  EncodeUpdateBatch(batch, batch.batch_id, out);
}

/// Decodes one batch written by `EncodeUpdateBatch`. Truncated or
/// malformed input returns an error without reading out of bounds.
inline Status DecodeUpdateBatch(ByteReader* in, UpdateBatch* out) {
  out->ops.clear();
  DSKG_RETURN_NOT_OK(in->ReadU64(&out->batch_id));
  uint32_t num_ops = 0;
  DSKG_RETURN_NOT_OK(in->ReadU32(&num_ops));
  // Each op occupies >= 13 bytes (kind + three length prefixes): a count
  // the remaining bytes cannot hold is malformed, not an allocation size.
  if (static_cast<uint64_t>(num_ops) * 13 > in->remaining()) {
    return Status::IoError("batch op count " + std::to_string(num_ops) +
                           " exceeds remaining payload");
  }
  out->ops.reserve(num_ops);
  for (uint32_t i = 0; i < num_ops; ++i) {
    UpdateOp op;
    uint8_t kind = 0;
    DSKG_RETURN_NOT_OK(in->ReadU8(&kind));
    if (kind > 1) {
      return Status::IoError("bad op kind " + std::to_string(kind));
    }
    op.kind = kind == 0 ? UpdateOp::Kind::kInsert : UpdateOp::Kind::kDelete;
    DSKG_RETURN_NOT_OK(in->ReadString(&op.subject));
    DSKG_RETURN_NOT_OK(in->ReadString(&op.predicate));
    DSKG_RETURN_NOT_OK(in->ReadString(&op.object));
    out->ops.push_back(std::move(op));
  }
  return Status::OK();
}

/// An append-only sequence of batches with dense sequence numbers.
/// The producer (update-stream generator, ingest frontend) appends; the
/// single applier consumes batches in order. Not itself thread-safe: the
/// online runner hands batches across threads by index, never sharing the
/// log mutably.
class UpdateLog {
 public:
  /// Appends `batch` and returns its sequence number (0-based). The
  /// batch's `batch_id` is stamped with that sequence number, so a log
  /// replayed in order carries dense, monotone batch identities.
  uint64_t Append(UpdateBatch batch) {
    batch.batch_id = batches_.size();
    batches_.push_back(std::move(batch));
    return batches_.size() - 1;
  }

  const UpdateBatch& at(uint64_t seq) const { return batches_.at(seq); }
  uint64_t size() const { return batches_.size(); }
  bool empty() const { return batches_.empty(); }

  /// Total mutations across all batches.
  uint64_t TotalOps() const {
    uint64_t n = 0;
    for (const UpdateBatch& b : batches_) n += b.size();
    return n;
  }

 private:
  std::vector<UpdateBatch> batches_;
};

}  // namespace dskg::core

#endif  // DSKG_CORE_UPDATE_H_
