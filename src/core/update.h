#ifndef DSKG_CORE_UPDATE_H_
#define DSKG_CORE_UPDATE_H_

/// \file update.h
/// The streaming-update vocabulary: single triple mutations, batches, and
/// the append-only log the online subsystem publishes them through.
///
/// Updates carry term *strings*, not ids — an insert may introduce terms
/// no store has interned yet, and keeping the log id-free lets the same
/// batch be replayed against independently-encoded stores (the sharded
/// `OnlineStore` resolves ids in op order at injection, so a log recorded
/// under one shard count replays identically under any other).
///
/// A batch is the atomicity and visibility unit: `DualStore::ApplyUpdates`
/// applies one batch to every structure of one store (triple table, all
/// three index permutations, per-predicate statistics, resident graph
/// partitions, the materialized-view catalog, the dictionary's usage
/// counts), and `OnlineStore` publishes whole batches to readers — a query
/// observes a batch entirely or not at all (snapshot-per-batch
/// consistency).

#include <cstdint>
#include <string>
#include <vector>

namespace dskg::core {

/// One knowledge-graph mutation.
struct UpdateOp {
  enum class Kind { kInsert, kDelete };

  Kind kind = Kind::kInsert;
  std::string subject;
  std::string predicate;
  std::string object;

  static UpdateOp Insert(std::string s, std::string p, std::string o) {
    return {Kind::kInsert, std::move(s), std::move(p), std::move(o)};
  }
  static UpdateOp Delete(std::string s, std::string p, std::string o) {
    return {Kind::kDelete, std::move(s), std::move(p), std::move(o)};
  }
};

/// One atomically-visible group of mutations.
struct UpdateBatch {
  std::vector<UpdateOp> ops;

  size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }
};

/// What `DualStore::ApplyUpdates` did with one batch.
struct UpdateResult {
  uint64_t inserted = 0;        ///< new triples absorbed (duplicates skip)
  uint64_t deleted = 0;         ///< stored triples removed (misses skip)
  uint64_t views_dropped = 0;   ///< stale materialized views invalidated
  uint64_t graph_maintained = 0;  ///< edges maintained in resident partitions
};

/// An append-only sequence of batches with dense sequence numbers.
/// The producer (update-stream generator, ingest frontend) appends; the
/// single applier consumes batches in order. Not itself thread-safe: the
/// online runner hands batches across threads by index, never sharing the
/// log mutably.
class UpdateLog {
 public:
  /// Appends `batch` and returns its sequence number (0-based).
  uint64_t Append(UpdateBatch batch) {
    batches_.push_back(std::move(batch));
    return batches_.size() - 1;
  }

  const UpdateBatch& at(uint64_t seq) const { return batches_.at(seq); }
  uint64_t size() const { return batches_.size(); }
  bool empty() const { return batches_.empty(); }

  /// Total mutations across all batches.
  uint64_t TotalOps() const {
    uint64_t n = 0;
    for (const UpdateBatch& b : batches_) n += b.size();
    return n;
  }

 private:
  std::vector<UpdateBatch> batches_;
};

}  // namespace dskg::core

#endif  // DSKG_CORE_UPDATE_H_
