#include "core/online_store.h"

#include <algorithm>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "persist/snapshot.h"

namespace dskg::core {

using rdf::TermId;
using rdf::Triple;

namespace {

// Store-level pipeline metrics, resolved once against the global
// registry (per-shard metrics live in OnlineStore::shard_metrics_).
struct StoreMetrics {
  telemetry::Counter* batches_applied;
  telemetry::Counter* triples_inserted;
  telemetry::Counter* triples_deleted;
  telemetry::Counter* cow_nodes_cloned;
  telemetry::Counter* cow_nodes_retired;
  telemetry::Counter* cow_nodes_reclaimed;
  telemetry::Gauge* cow_pending_nodes;
  telemetry::Histogram* inject_route_us;
  telemetry::Histogram* merge_barrier_us;
  telemetry::Histogram* epoch_drain_us;
};

const StoreMetrics& Sm() {
  static const StoreMetrics m = [] {
    auto& reg = telemetry::MetricsRegistry::Global();
    return StoreMetrics{reg.counter("store.batches_applied"),
                        reg.counter("store.triples_inserted"),
                        reg.counter("store.triples_deleted"),
                        reg.counter("store.cow.nodes_cloned"),
                        reg.counter("store.cow.nodes_retired"),
                        reg.counter("store.cow.nodes_reclaimed"),
                        reg.gauge("store.cow.pending_nodes"),
                        reg.histogram("store.inject_route_us"),
                        reg.histogram("store.merge_barrier_us"),
                        reg.histogram("store.epoch_drain_us")};
  }();
  return m;
}

}  // namespace

OnlineStore::OnlineStore(const rdf::Dataset& initial,
                         const DualStoreConfig& config)
    : dataset_(initial.Clone(std::max(1, config.num_shards))) {
  store_ = std::make_unique<DualStore>(&dataset_, config);
  FinishConstruction();
}

OnlineStore::OnlineStore(const rdf::Dataset& initial,
                         const DualStoreConfig& config,
                         const persist::DurabilityOptions& durability)
    : OnlineStore(initial, config) {
  durability_ = durability;
  Status s = persist::CreateDirIfMissing(durability_.dir);
  // The initial snapshot at watermark 0 is recovery's base image: the WAL
  // alone cannot reconstruct the bulk-loaded dataset. SaveSnapshot also
  // opens the first WAL segment.
  if (s.ok()) s = SaveSnapshot();
  if (!s.ok()) poisoned_ = std::move(s);
}

OnlineStore::OnlineStore(RestoreTag, rdf::Dataset&& restored,
                         const DualStoreConfig& config,
                         std::string_view table_payload,
                         const std::vector<rdf::TermId>& resident_predicates,
                         Status* status)
    : dataset_(std::move(restored)) {
  store_ = std::make_unique<DualStore>(&dataset_, config,
                                       DualStore::RestoreTag{});
  ByteReader reader(table_payload);
  *status = store_->table_.DeserializeFrom(&reader);
  if (status->ok() && !reader.AtEnd()) {
    *status = Status::IoError("trailing bytes in snapshot table section");
  }
  if (!status->ok()) return;  // appliers never started; destructor is safe
  // Re-import the partitions that were graph-resident at save time. The
  // graph copy is derived state, so this is a rebuild, not a replay — the
  // charges go to a throwaway meter (recovery work is not part of any
  // measured run). A partition that no longer fits or vanished is simply
  // left relational, exactly as the online overflow path would leave it.
  CostMeter rebuild_meter;
  for (const rdf::TermId p : resident_predicates) {
    Status s = store_->MigratePartition(p, &rebuild_meter);
    if (s.ok() || s.IsNotFound() || s.IsCapacityExceeded() ||
        s.IsAlreadyExists()) {
      continue;
    }
    *status = std::move(s);
    return;
  }
  FinishConstruction();
}

void OnlineStore::FinishConstruction() {
  // Flip every component into online mode: tree writes copy root-to-leaf
  // paths instead of mutating shared nodes, graph partitions clone on
  // first touch, dropped views and released dictionary ids are retired
  // until the epoch drain instead of destroyed.
  store_->table_.SetCopyOnWrite(true);
  store_->graph_.SetDeferredReclaim(true);
  if (store_->views_ != nullptr) store_->views_->SetDeferredReclaim(true);
  dataset_.mutable_dict().SetDeferredReclaim(true);

  snapshot_.store(new DualStore::Snapshot(store_->MakeSnapshot()),
                  std::memory_order_seq_cst);

  const int n = store_->num_shards();
  workers_.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) workers_.push_back(std::make_unique<Worker>());
  auto& reg = telemetry::MetricsRegistry::Global();
  shard_metrics_.resize(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    const std::string prefix = "store.shard" + std::to_string(s);
    shard_metrics_[static_cast<size_t>(s)] = {
        reg.histogram(prefix + ".apply_us"),
        reg.gauge(prefix + ".queue_depth")};
  }
  for (int s = 0; s < n; ++s) {
    workers_[static_cast<size_t>(s)]->thread =
        std::thread(&OnlineStore::WorkerLoop, this, s);
  }
}

OnlineStore::~OnlineStore() {
  for (const std::unique_ptr<Worker>& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->stop = true;
    }
    w->cv.notify_all();
  }
  for (const std::unique_ptr<Worker>& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  delete snapshot_.load(std::memory_order_seq_cst);
}

OnlineStore::ReadGuard OnlineStore::Read() const {
  // Pin first, then resolve the published snapshot: the writer's publish
  // (pointer exchange) precedes its epoch advance, so a pin at the
  // advanced epoch is guaranteed to resolve the *new* snapshot, and a pin
  // at the old epoch is drained before anything the old snapshot reaches
  // is reclaimed. Either way the resolved snapshot stays immutable for
  // the guard's lifetime.
  EpochManager::Pin pin = epochs_.Enter();
  const DualStore::Snapshot* snap = snapshot_.load(std::memory_order_seq_cst);
  return ReadGuard(store_.get(), snap, std::move(pin));
}

Result<QueryExecution> OnlineStore::ReadGuard::Process(
    const sparql::Query& query) const {
  DualStore::SnapshotScope scope(snap_);
  return store_->Process(query);
}

Result<QueryExecution> OnlineStore::ReadGuard::Process(
    std::string_view text) const {
  DualStore::SnapshotScope scope(snap_);
  return store_->Process(text);
}

Result<QueryExecution> OnlineStore::Process(const sparql::Query& query) const {
  return Read().Process(query);
}

Result<QueryExecution> OnlineStore::Process(std::string_view text) const {
  return Read().Process(text);
}

Result<UpdateResult> OnlineStore::ApplyUpdates(const UpdateBatch& batch,
                                               CostMeter* meter) {
  DSKG_RETURN_NOT_OK(poisoned_);
  // Sequence the batch. A pre-assigned id below the watermark means the
  // batch is already folded into this store's state (a recovery replay or
  // a client retry) — acknowledge it as an idempotent no-op before
  // anything, including the WAL, sees it.
  const uint64_t batch_id =
      batch.batch_id == kUnassignedBatchId ? next_batch_id_ : batch.batch_id;
  if (batch_id < next_batch_id_) {
    UpdateResult replayed;
    replayed.batch_id = batch_id;
    replayed.already_applied = true;
    return replayed;
  }
  if (durable()) {
    if (wal_ == nullptr) {
      // A failed rotation left no open segment; nothing applied since is
      // durable, so refuse new batches rather than silently lose them.
      return Status::IoError(
          "WAL unavailable (a previous snapshot rotation failed); "
          "call SaveSnapshot() to re-establish durability");
    }
    // WAL-before-apply: the record must be on its way to disk before any
    // structure mutates. On failure nothing has changed — the store stays
    // healthy (NOT poisoned), the batch is simply not applied.
    DSKG_RETURN_NOT_OK(wal_->Append(batch, batch_id));
  }
  // Any batch may intern terms, flip residency (overflow eviction) or
  // change statistics: prepared plans must re-validate.
  store_->plan_epoch_.fetch_add(1, std::memory_order_release);

  auto& reg = telemetry::MetricsRegistry::Global();
  const bool telem = reg.enabled();

  UpdateResult res;
  CostMeter local;
  CostMeter* m = meter != nullptr ? meter : &local;
  const int n = num_shards();
  const size_t num_ops = batch.ops.size();

  // ---- Phase I (inject): resolve ids in op order, route by predicate.
  // Interning happens here, on one thread, in exactly the serial store's
  // order — id assignment is independent of the shard count's timing.
  const double inject0 = telem ? reg.NowMicros() : 0;
  rdf::Dictionary& dict = dataset_.mutable_dict();
  std::vector<Triple> triples(num_ops);
  std::vector<uint8_t> outcomes(num_ops, 0);  // 0 = skipped no-op
  std::vector<std::vector<ShardOp>> shard_ops(static_cast<size_t>(n));
  for (size_t i = 0; i < num_ops; ++i) {
    const UpdateOp& op = batch.ops[i];
    if (op.kind == UpdateOp::Kind::kInsert) {
      const Triple t{dict.Intern(op.subject), dict.Intern(op.predicate),
                     dict.Intern(op.object)};
      triples[i] = t;
      shard_ops[static_cast<size_t>(store_->table_.ShardOf(t.predicate))]
          .push_back({static_cast<uint32_t>(i), true, t});
    } else {
      const Triple t{dict.Lookup(op.subject), dict.Lookup(op.predicate),
                     dict.Lookup(op.object)};
      if (t.subject == rdf::kInvalidTermId ||
          t.predicate == rdf::kInvalidTermId ||
          t.object == rdf::kInvalidTermId) {
        continue;  // references an unknown term: nothing stored to delete
      }
      triples[i] = t;
      shard_ops[static_cast<size_t>(store_->table_.ShardOf(t.predicate))]
          .push_back({static_cast<uint32_t>(i), false, t});
    }
  }

  if (telem) {
    Sm().inject_route_us->Record(reg.NowMicros() - inject0);
    // Routed queue depth per shard: how skewed this batch's predicate
    // distribution is (the rebalancing follow-on's input signal).
    for (int s = 0; s < n; ++s) {
      shard_metrics_[static_cast<size_t>(s)].queue_depth->Set(
          static_cast<double>(shard_ops[static_cast<size_t>(s)].size()));
    }
  }

  // ---- Phase II (apply): fan out to the shard appliers. Each charges
  // its own meter; with one shard the caller's meter is charged directly,
  // so the serial charge sequence is reproduced bit for bit.
  std::vector<CostMeter> shard_meters;
  if (n > 1) {
    shard_meters.reserve(static_cast<size_t>(n));
    for (int s = 0; s < n; ++s) {
      shard_meters.emplace_back(m->model(), m->throttle());
    }
  }
  for (int s = 0; s < n; ++s) {
    if (shard_ops[static_cast<size_t>(s)].empty()) continue;
    Worker& w = *workers_[static_cast<size_t>(s)];
    {
      std::lock_guard<std::mutex> lock(w.mu);
      w.ops = &shard_ops[static_cast<size_t>(s)];
      w.meter = n > 1 ? &shard_meters[static_cast<size_t>(s)] : m;
      w.outcomes = &outcomes;
      w.has_work = true;
      w.done = false;
    }
    w.cv.notify_all();
  }
  // Merge barrier: the injector blocks here until every shard applier
  // reports done (the overlapped-injection follow-on wants this wait
  // small; now it is measured).
  const double barrier0 = telem ? reg.NowMicros() : 0;
  Status apply_status = Status::OK();
  for (int s = 0; s < n; ++s) {
    if (shard_ops[static_cast<size_t>(s)].empty()) continue;
    Worker& w = *workers_[static_cast<size_t>(s)];
    std::unique_lock<std::mutex> lock(w.mu);
    w.cv.wait(lock, [&w] { return w.done; });
    if (!w.status.ok() && apply_status.ok()) apply_status = w.status;
  }
  if (telem) Sm().merge_barrier_us->Record(reg.NowMicros() - barrier0);
  if (!apply_status.ok()) {
    // Never published: readers keep the last consistent snapshot, but the
    // live shards may have half-applied the batch — poison.
    poisoned_ = apply_status;
    return poisoned_;
  }

  // ---- Phase III (merge): fold shard meters in shard order, replay
  // outcomes in op order into the op-order-dependent bookkeeping.
  if (n > 1) {
    for (int s = 0; s < n; ++s) {
      if (shard_ops[static_cast<size_t>(s)].empty()) continue;
      m->Merge(shard_meters[static_cast<size_t>(s)]);
    }
  }
  // Dataset removal is deferred to one stable end-of-batch sweep; a
  // successful re-insert of a triple deleted earlier in the same batch
  // cancels against the pending sweep (see DualStore::ApplyUpdates, the
  // serial reference for this bookkeeping).
  std::unordered_set<Triple, rdf::TripleHash> pending_removal;
  std::unordered_set<TermId> touched_predicates;
  for (size_t i = 0; i < num_ops; ++i) {
    if ((outcomes[i] & kOutcomeApplied) == 0) continue;
    const Triple& t = triples[i];
    if (batch.ops[i].kind == UpdateOp::Kind::kInsert) {
      if (pending_removal.erase(t) == 0) dataset_.Add(t);
      ++res.inserted;
    } else {
      pending_removal.insert(t);
      ++res.deleted;
    }
    touched_predicates.insert(t.predicate);
    if ((outcomes[i] & kOutcomeGraphMaintained) != 0) ++res.graph_maintained;
  }
  // Invalidate views BEFORE the dataset sweep: invalidation resolves
  // predicate text against the dictionary, and a predicate whose last
  // triple died this batch must still resolve.
  if (store_->views_ != nullptr && !touched_predicates.empty()) {
    res.views_dropped =
        store_->views_->InvalidatePredicates(touched_predicates);
  }
  if (!pending_removal.empty()) {
    dataset_.RemoveBatch(pending_removal);
  }

  Sm().triples_inserted->Add(res.inserted);
  Sm().triples_deleted->Add(res.deleted);

  // ---- Phase IV: publish the new snapshot, then reclaim the old one's
  // reachable state once its last reader leaves.
  PublishAndReclaim();
  applied_batches_.fetch_add(1, std::memory_order_relaxed);
  Sm().batches_applied->Add();
  res.batch_id = batch_id;
  next_batch_id_ = batch_id + 1;
  return res;
}

void OnlineStore::WorkerLoop(int shard) {
  Worker& w = *workers_[static_cast<size_t>(shard)];
  std::unique_lock<std::mutex> lock(w.mu);
  for (;;) {
    w.cv.wait(lock, [&w] { return w.has_work || w.stop; });
    if (w.stop) return;
    const std::vector<ShardOp>* ops = w.ops;
    CostMeter* m = w.meter;
    std::vector<uint8_t>* outcomes = w.outcomes;
    lock.unlock();
    Status status = ApplyShard(shard, *ops, m, outcomes);
    lock.lock();
    w.status = std::move(status);
    w.has_work = false;
    w.done = true;
    w.cv.notify_all();
  }
}

Status OnlineStore::ApplyShard(int shard, const std::vector<ShardOp>& ops,
                               CostMeter* m,
                               std::vector<uint8_t>* outcomes) {
  auto& reg = telemetry::MetricsRegistry::Global();
  const bool telem = reg.enabled();
  relstore::TripleTable& table = store_->table_;
  graphstore::PropertyGraph& graph = store_->graph_;
  // COW churn is a before/after delta of the shard's own tree counters:
  // this applier is the only mutator, so the reads are exact.
  const double wall0 = telem ? reg.NowMicros() : 0;
  const uint64_t clones0 = telem ? table.CowClonesOf(shard) : 0;
  const uint64_t pending0 = telem ? table.PendingNodesOf(shard) : 0;
  // New copy-on-write batch: the first touch of any tree node or graph
  // partition reachable from the published snapshot clones it.
  table.BeginShardBatch(shard);
  graph.BeginShardBatch(shard);
  for (const ShardOp& op : ops) {
    if (op.is_insert) {
      if (!table.Insert(op.triple, m)) continue;  // already stored: no-op
      uint8_t bits = kOutcomeApplied;
      if (graph.HasPredicate(op.triple.predicate)) {
        Status s = graph.InsertTriple(op.triple, m);
        if (s.IsCapacityExceeded()) {
          // The graph copy no longer fits: drop the partition rather than
          // serve stale answers (the relational store stays
          // authoritative).
          DSKG_RETURN_NOT_OK(
              graph.EvictPartition(op.triple.predicate, m));
        } else {
          DSKG_RETURN_NOT_OK(s);
          bits |= kOutcomeGraphMaintained;
        }
      }
      (*outcomes)[op.index] = bits;
    } else {
      if (!table.RemoveTriple(op.triple, m)) continue;  // not stored: no-op
      uint8_t bits = kOutcomeApplied;
      if (graph.HasPredicate(op.triple.predicate)) {
        DSKG_RETURN_NOT_OK(graph.RemoveTriple(op.triple, m));
        bits |= kOutcomeGraphMaintained;
      }
      (*outcomes)[op.index] = bits;
    }
  }
  if (telem) {
    shard_metrics_[static_cast<size_t>(shard)].apply_us->Record(
        reg.NowMicros() - wall0);
    Sm().cow_nodes_cloned->Add(table.CowClonesOf(shard) - clones0);
    Sm().cow_nodes_retired->Add(table.PendingNodesOf(shard) - pending0);
  }
  return Status::OK();
}

void OnlineStore::PublishAndReclaim() {
  auto& reg = telemetry::MetricsRegistry::Global();
  const bool telem = reg.enabled();
  const DualStore::Snapshot* fresh =
      new DualStore::Snapshot(store_->MakeSnapshot());
  const DualStore::Snapshot* old =
      snapshot_.exchange(fresh, std::memory_order_seq_cst);
  const uint64_t retired_epoch = epochs_.Advance();
  // Wait for every reader that may still observe the retired snapshot,
  // then free what only it could reach: the snapshot object itself,
  // copied-over tree nodes, cloned-over graph partitions, dropped views,
  // and dictionary ids released by the batch (their two-stage
  // reclamation keeps ids resolvable for exactly one more snapshot).
  const double drain0 = telem ? reg.NowMicros() : 0;
  epochs_.WaitUntilDrained(retired_epoch);
  if (telem) Sm().epoch_drain_us->Record(reg.NowMicros() - drain0);
  delete old;
  size_t reclaimed = 0;
  for (int s = 0; s < num_shards(); ++s) {
    reclaimed += store_->table_.ReclaimShard(s);
    store_->graph_.ReclaimShard(s);
  }
  if (store_->views_ != nullptr) store_->views_->CollectRetired();
  dataset_.mutable_dict().ReclaimDeferred();
  if (telem) {
    Sm().cow_nodes_reclaimed->Add(reclaimed);
    Sm().cow_pending_nodes->Set(
        static_cast<double>(store_->table_.PendingNodes()));
  }
}

Status OnlineStore::SaveSnapshot() {
  DSKG_RETURN_NOT_OK(poisoned_);
  if (!durable()) {
    return Status::FailedPrecondition(
        "SaveSnapshot on a store with no durability directory");
  }
  const uint64_t watermark = next_batch_id_;
  const std::string final_path =
      durability_.dir + "/" + persist::SnapshotFileName(watermark);
  // Temp file + rename + directory fsync: a torn save never shadows the
  // previous snapshot — readers of the directory only ever see images
  // whose footer committed.
  const std::string tmp_path = final_path + ".tmp";
  DSKG_RETURN_NOT_OK(persist::SaveStoreSnapshot(*store_, watermark, tmp_path,
                                                durability_.wrap_writable));
  DSKG_RETURN_NOT_OK(persist::RenameFile(tmp_path, final_path));
  DSKG_RETURN_NOT_OK(persist::SyncDir(durability_.dir));
  // Read-back validation BEFORE anything rotates or prunes: a disk that
  // silently dropped the snapshot's bytes (torn write) must not retire
  // the older snapshot + WAL chain that still holds the only good copy.
  {
    Result<persist::RawSnapshot> check = persist::ReadSnapshotFile(final_path);
    if (!check.ok()) return check.status();
  }
  // Rotate: every record in the outgoing segment is below the new
  // watermark, so its close outcome no longer affects durability.
  if (wal_ != nullptr) {
    (void)wal_->Close();
    wal_.reset();
  }
  DSKG_ASSIGN_OR_RETURN(wal_, persist::WalWriter::Open(durability_, watermark));
  PruneObsoleteFiles();
  return Status::OK();
}

void OnlineStore::PruneObsoleteFiles() {
  // Best effort throughout: a file that fails to delete is harmless (it
  // is either ignored or superseded at recovery), so errors are dropped.
  Result<std::vector<std::string>> listing = persist::ListDir(durability_.dir);
  if (!listing.ok()) return;
  std::vector<uint64_t> snaps;
  std::vector<uint64_t> segments;
  for (const std::string& name : *listing) {
    uint64_t v = 0;
    if (persist::ParseSnapshotFileName(name, &v)) {
      snaps.push_back(v);
    } else if (persist::ParseWalSegmentName(name, &v)) {
      segments.push_back(v);
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      // A torn save that never committed.
      (void)persist::RemoveFile(durability_.dir + "/" + name);
    }
  }
  std::sort(snaps.begin(), snaps.end());
  std::sort(segments.begin(), segments.end());
  const size_t keep =
      durability_.keep_snapshots < 1
          ? 1
          : static_cast<size_t>(durability_.keep_snapshots);
  if (snaps.empty()) return;
  const uint64_t oldest_kept =
      snaps.size() > keep ? snaps[snaps.size() - keep] : snaps.front();
  for (const uint64_t wm : snaps) {
    if (wm < oldest_kept) {
      (void)persist::RemoveFile(durability_.dir + "/" +
                                persist::SnapshotFileName(wm));
    }
  }
  // Segment i is dead once the NEXT segment starts at or below the oldest
  // kept watermark: every record it holds is then covered by a snapshot
  // recovery could still pick. The open (last) segment always survives.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1] <= oldest_kept) {
      (void)persist::RemoveFile(durability_.dir + "/" +
                                persist::WalSegmentName(segments[i]));
    }
  }
}

Result<std::unique_ptr<OnlineStore>> OnlineStore::Recover(
    const DualStoreConfig& config,
    const persist::DurabilityOptions& durability, RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;
  rep = RecoveryReport{};
  if (!persist::FileExists(durability.dir)) {
    return Status::NotFound("no durability directory at " + durability.dir);
  }
  DSKG_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        persist::ListDir(durability.dir));
  std::vector<uint64_t> snaps;
  std::vector<uint64_t> segments;
  for (const std::string& name : names) {
    uint64_t v = 0;
    if (persist::ParseSnapshotFileName(name, &v)) snaps.push_back(v);
    if (persist::ParseWalSegmentName(name, &v)) segments.push_back(v);
  }
  if (snaps.empty()) {
    return Status::NotFound("no snapshot in " + durability.dir);
  }
  std::sort(snaps.begin(), snaps.end());
  std::sort(segments.begin(), segments.end());

  // The newest snapshot that validates end to end wins; older ones are
  // the fallback when it is torn or bit-flipped. Corrupt images are
  // rejected wholesale by the reader — never partially loaded.
  persist::LoadedSnapshot loaded;
  Status last_error = Status::OK();
  bool have_snapshot = false;
  for (size_t i = snaps.size(); i-- > 0;) {
    const std::string path =
        durability.dir + "/" + persist::SnapshotFileName(snaps[i]);
    Result<persist::LoadedSnapshot> r = persist::LoadStoreSnapshot(path);
    if (r.ok()) {
      loaded = std::move(*r);
      have_snapshot = true;
      rep.used_fallback_snapshot = i + 1 != snaps.size();
      rep.snapshot_file = path;
      break;
    }
    last_error = r.status();
  }
  if (!have_snapshot) {
    return Status::IoError("every snapshot in " + durability.dir +
                           " failed validation; newest error: " +
                           last_error.message());
  }
  if (loaded.num_shards != std::max(1, config.num_shards)) {
    return Status::InvalidArgument(
        "snapshot was saved with " + std::to_string(loaded.num_shards) +
        " shards but recovery requested " +
        std::to_string(std::max(1, config.num_shards)));
  }
  rep.snapshot_watermark = loaded.watermark;

  Status restore_status = Status::OK();
  std::unique_ptr<OnlineStore> store(new OnlineStore(
      RestoreTag{}, std::move(loaded.dataset), config, loaded.table_payload,
      loaded.resident_predicates, &restore_status));
  DSKG_RETURN_NOT_OK(restore_status);
  store->next_batch_id_ = loaded.watermark;

  // Replay the contiguous WAL suffix past the watermark, oldest segment
  // first. Replay is plain ApplyUpdates (the store is not yet durable, so
  // nothing is re-logged); ids below the watermark acknowledge as
  // idempotent no-ops. A gap or a corrupt mid-log record ends replay at
  // the last good prefix — everything before it stays usable.
  uint64_t expect = loaded.watermark;
  bool stop = false;
  for (size_t i = 0; i < segments.size() && !stop; ++i) {
    if (i + 1 < segments.size() && segments[i + 1] <= loaded.watermark) {
      continue;  // wholly covered: the next segment starts at/below the mark
    }
    const std::string path =
        durability.dir + "/" + persist::WalSegmentName(segments[i]);
    Result<persist::WalScanResult> scan = persist::ScanWalFile(path);
    if (!scan.ok()) {
      rep.wal_status = scan.status();
      break;
    }
    for (UpdateBatch& b : scan->batches) {
      if (b.batch_id < expect) continue;  // covered by the snapshot
      if (b.batch_id != expect) {
        rep.wal_status = Status::IoError(
            path + ": WAL gap (expected batch " + std::to_string(expect) +
            ", found " + std::to_string(b.batch_id) + ")");
        stop = true;
        break;
      }
      Result<UpdateResult> applied = store->ApplyUpdates(b);
      if (!applied.ok()) return applied.status();
      ++rep.replayed_batches;
      ++expect;
    }
    if (scan->dropped_tail) {
      rep.dropped_tail = true;
      if (!scan->tail_status.ok()) rep.wal_status = scan->tail_status;
      stop = true;  // nothing after a bad tail is trustworthy
    }
  }

  // Checkpoint the recovered state: the replayed batches become durable
  // again under a fresh snapshot, and a new WAL segment opens at the new
  // watermark (so the next crash replays from here, not from the old,
  // possibly damaged log).
  store->durability_ = durability;
  DSKG_RETURN_NOT_OK(store->SaveSnapshot());

  auto& reg = telemetry::MetricsRegistry::Global();
  if (reg.enabled()) {
    reg.counter("persist.recovery.replayed_batches")
        ->Add(rep.replayed_batches);
  }
  return store;
}

Status OnlineStore::TuneExclusive(const std::function<Status(DualStore*)>& fn) {
  DSKG_RETURN_NOT_OK(poisoned_);
  Status s = fn(store_.get());
  if (!s.ok()) {
    // A half-applied tuning window leaves the live accelerator state
    // divergent from the published snapshot; poison, exactly as a failed
    // batch does.
    poisoned_ = s;
    return s;
  }
  // Strictly above the pre-tune epoch, so every pre-tune plan
  // re-validates even when the window was a no-op.
  store_->ForcePlanEpoch(store_->plan_epoch() + 1);
  PublishAndReclaim();
  return Status::OK();
}

}  // namespace dskg::core
