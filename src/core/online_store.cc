#include "core/online_store.h"

#include <algorithm>
#include <string>
#include <vector>

namespace dskg::core {

OnlineStore::OnlineStore(const rdf::Dataset& initial,
                         const DualStoreConfig& config)
    : datasets_{initial.Clone(), initial.Clone()} {
  sides_[0] = std::make_unique<DualStore>(&datasets_[0], config);
  sides_[1] = std::make_unique<DualStore>(&datasets_[1], config);
}

OnlineStore::ReadGuard OnlineStore::Read() const {
  // Pin first, then resolve the active replica: the writer's publish
  // (index store) precedes its epoch advance, so a pin at the advanced
  // epoch is guaranteed to resolve the *new* index, and a pin at the old
  // epoch is drained before the old replica is touched. Either way the
  // resolved replica stays immutable for the guard's lifetime.
  EpochManager::Pin pin = epochs_.Enter();
  const DualStore* store = sides_[ActiveIndex()].get();
  return ReadGuard(store, std::move(pin));
}

Result<QueryExecution> OnlineStore::Process(const sparql::Query& query) const {
  ReadGuard guard = Read();
  return guard.store().Process(query);
}

Result<QueryExecution> OnlineStore::Process(std::string_view text) const {
  ReadGuard guard = Read();
  return guard.store().Process(text);
}

Result<UpdateResult> OnlineStore::ApplyUpdates(const UpdateBatch& batch,
                                               CostMeter* meter) {
  DSKG_RETURN_NOT_OK(poisoned_);
  const size_t active = ActiveIndex();
  const size_t passive = 1 - active;

  // 1. Mutate the passive replica — no reader can be inside it (it was
  //    drained before its previous retirement ended). On failure the
  //    half-applied replica is never published: readers keep the intact
  //    active one, and the store poisons itself (replicas would diverge
  //    from here on, so further applies refuse).
  Result<UpdateResult> applied = sides_[passive]->ApplyUpdates(batch, meter);
  if (!applied.ok()) {
    poisoned_ = applied.status();
    return poisoned_;
  }

  // 2. Publish: queries pinning from here on read the updated replica.
  active_index_.store(passive, std::memory_order_seq_cst);
  const uint64_t retired_epoch = epochs_.Advance();

  // 3. Reclaim: wait for every reader that may still observe the retired
  //    replica, then replay the batch there so the replicas stay
  //    identical. The replay charges a scratch meter — it is replication
  //    overhead, not additional simulated work. A replay failure also
  //    poisons: the published replica stays fully consistent for
  //    readers, but the pair can no longer be kept in lockstep.
  epochs_.WaitUntilDrained(retired_epoch);
  CostMeter scratch;
  Status replay = sides_[active]->ApplyUpdates(batch, &scratch).status();
  if (!replay.ok()) {
    poisoned_ = replay;
    return poisoned_;
  }

  ++applied_batches_;
  return std::move(applied).ValueOrDie();
}

Status OnlineStore::TuneExclusive(const std::function<Status(DualStore*)>& fn) {
  DSKG_RETURN_NOT_OK(poisoned_);
  const size_t active = ActiveIndex();
  Status s = fn(sides_[active].get());
  if (s.ok()) {
    s = SyncAccelerators(*sides_[active], sides_[1 - active].get());
  }
  if (s.ok()) {
    // Align the replicas' plan epochs: the tuner's op count on the active
    // side rarely equals the sync's net op count on the passive side, but
    // after the mirror both are logically identical — so a prepared plan
    // must be exactly as (in)valid against either. Strictly above both
    // old values, so every pre-tune plan re-validates.
    const uint64_t target = std::max(sides_[0]->plan_epoch(),
                                     sides_[1]->plan_epoch()) + 1;
    sides_[0]->ForcePlanEpoch(target);
    sides_[1]->ForcePlanEpoch(target);
  }
  if (!s.ok()) {
    // A half-applied tuning window leaves the replicas' accelerator
    // state divergent; poison, exactly as a failed batch does.
    poisoned_ = s;
  }
  return s;
}

Status OnlineStore::SyncAccelerators(const DualStore& from, DualStore* to) {
  CostMeter scratch;  // mirroring is bookkeeping, like the batch replay

  // Graph-store residency: evict partitions the tuner dropped, migrate
  // the ones it loaded. Content comes from `to`'s own relational store,
  // which is logically identical to `from`'s.
  for (rdf::TermId p : to->graph().LoadedPredicates()) {
    if (!from.graph().HasPredicate(p)) {
      DSKG_RETURN_NOT_OK(to->EvictPartition(p, &scratch));
    }
  }
  for (rdf::TermId p : from.graph().LoadedPredicates()) {
    if (!to->graph().HasPredicate(p)) {
      DSKG_RETURN_NOT_OK(to->MigratePartition(p, &scratch));
    }
  }

  // Materialized-view catalog: drop views the tuner dropped, materialize
  // the ones it created (definitions are already generalized, so
  // re-creating from them reproduces the same signature).
  relstore::MaterializedViewManager* to_views = to->views();
  const relstore::MaterializedViewManager* from_views = from.views();
  if (to_views != nullptr && from_views != nullptr) {
    for (const std::string& sig : to_views->Signatures()) {
      if (!from_views->HasSignature(sig)) {
        DSKG_RETURN_NOT_OK(to_views->DropView(sig));
      }
    }
    for (const std::string& sig : from_views->Signatures()) {
      if (!to_views->HasSignature(sig)) {
        Status s = to_views->CreateView(*from_views->DefinitionOf(sig),
                                        &scratch);
        if (!s.ok() && !s.IsAlreadyExists()) return s;
      }
    }
  }
  return Status::OK();
}

}  // namespace dskg::core
