#ifndef DSKG_CORE_QUERY_PROCESSOR_H_
#define DSKG_CORE_QUERY_PROCESSOR_H_

/// \file query_processor.h
/// The dual-store query processor (paper §5, Algorithm 3).
///
/// Routing of a query q with complex subquery q_c against the resident
/// complex subgraphs G_c:
///
///   Case 1  predicates(q)   ⊆ predicates(G_c)  -> run q in the graph store
///   Case 2  predicates(q_c) ⊆ predicates(G_c)  -> run q_c in the graph
///           store, migrate its intermediate results into the relational
///           store's temporary table space, finish q's remainder there
///   Case 3  otherwise                          -> run q in the relational
///           store
///
/// The RDB-views variant replaces the graph store with the materialized
/// view catalog: if a view matches q_c, its (filtered) rows seed the
/// remainder. RDB-only always takes Case 3.

#include <optional>

#include "common/cost.h"
#include "common/status.h"
#include "core/identifier.h"
#include "graphstore/matcher.h"
#include "graphstore/property_graph.h"
#include "rdf/dictionary.h"
#include "relstore/executor.h"
#include "relstore/views.h"
#include "sparql/ast.h"
#include "sparql/bindings.h"

namespace dskg::core {

/// How a query was executed.
enum class Route {
  kRelationalOnly,  ///< Case 3 (or no complex subquery)
  kGraphOnly,       ///< Case 1
  kDualStore,       ///< Case 2
  kViewAssisted,    ///< RDB-views: view seeded the remainder
};

/// Short name of `route` ("relational", "graph", "dual", "view").
const char* RouteName(Route route);

/// Outcome of processing one query, with the cost breakdown the
/// experiments report.
struct QueryExecution {
  sparql::BindingTable result;
  Route route = Route::kRelationalOnly;
  /// The identifier's split (kept for the tuner's training data).
  IdentifiedQuery split;

  // Simulated time, microseconds.
  double graph_micros = 0;    ///< spent in the graph store
  double rel_micros = 0;      ///< spent in the relational store
  double migrate_micros = 0;  ///< spent shipping intermediate results
  /// IO/CPU split of the graph-store share (for the Figure 7 trace).
  double graph_io_micros = 0;
  double graph_cpu_micros = 0;

  double total_micros() const {
    return graph_micros + rel_micros + migrate_micros;
  }
};

/// Routes and executes queries against the current dual-store state.
class QueryProcessor {
 public:
  struct Config {
    /// Use the graph store as accelerator (RDB-GDB).
    bool use_graph = true;
    /// Use materialized views as accelerator (RDB-views).
    bool use_views = false;
    /// Contention applied to graph-store execution (Table 6 / Figure 7).
    ResourceThrottle graph_throttle;
  };

  /// All pointers are borrowed and must outlive the processor. `views`
  /// may be null when `config.use_views` is false.
  QueryProcessor(const relstore::Executor* executor,
                 const graphstore::PropertyGraph* graph,
                 const graphstore::TraversalMatcher* matcher,
                 const relstore::MaterializedViewManager* views,
                 const rdf::Dictionary* dict, Config config)
      : executor_(executor), graph_(graph), matcher_(matcher), views_(views),
        dict_(dict), config_(config) {}

  /// Processes `query` end to end per Algorithm 3.
  Result<QueryExecution> Process(const sparql::Query& query) const;

  const Config& config() const { return config_; }
  void set_graph_throttle(ResourceThrottle t) { config_.graph_throttle = t; }

 private:
  /// True if every pattern of `q` has a constant predicate whose partition
  /// is resident in the graph store.
  bool GraphCovers(const sparql::Query& q) const;

  const relstore::Executor* executor_;
  const graphstore::PropertyGraph* graph_;
  const graphstore::TraversalMatcher* matcher_;
  const relstore::MaterializedViewManager* views_;
  const rdf::Dictionary* dict_;
  Config config_;
};

}  // namespace dskg::core

#endif  // DSKG_CORE_QUERY_PROCESSOR_H_
