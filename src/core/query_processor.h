#ifndef DSKG_CORE_QUERY_PROCESSOR_H_
#define DSKG_CORE_QUERY_PROCESSOR_H_

/// \file query_processor.h
/// The dual-store query processor (paper §5, Algorithm 3), split into an
/// explicit prepare/execute pipeline.
///
/// Routing of a query q with complex subquery q_c against the resident
/// complex subgraphs G_c:
///
///   Case 1  predicates(q)   ⊆ predicates(G_c)  -> run q in the graph store
///   Case 2  predicates(q_c) ⊆ predicates(G_c)  -> run q_c in the graph
///           store, migrate its intermediate results into the relational
///           store's temporary table space, finish q's remainder there
///   Case 3  otherwise                          -> run q in the relational
///           store
///
/// The RDB-views variant replaces the graph store with the materialized
/// view catalog: if a view matches q_c, its (filtered) rows seed the
/// remainder. RDB-only always takes Case 3.
///
/// `Prepare` runs everything that does not depend on bound parameter
/// values — complex-subquery identification, route selection, dictionary
/// encoding and slot compilation for every store the route touches — and
/// returns a `PreparedPlan` that `ExecutePlan`/`OpenCursor` re-run any
/// number of times with different `$parameter` bindings. `Process` is the
/// classic one-shot composition of the two and behaves (and charges)
/// exactly as before the split.
///
/// A plan is valid only against the physical state it was prepared for
/// (graph residency, view catalog, dictionary contents); `DualStore::
/// plan_epoch()` versions that state and `Session` re-prepares stale
/// plans transparently.

#include <memory>
#include <optional>
#include <vector>

#include "common/cost.h"
#include "common/status.h"
#include "core/identifier.h"
#include "graphstore/matcher.h"
#include "graphstore/property_graph.h"
#include "rdf/dictionary.h"
#include "relstore/executor.h"
#include "relstore/views.h"
#include "sparql/ast.h"
#include "sparql/bindings.h"

namespace dskg::core {

/// How a query was executed.
enum class Route {
  kRelationalOnly,  ///< Case 3 (or no complex subquery)
  kGraphOnly,       ///< Case 1
  kDualStore,       ///< Case 2
  kViewAssisted,    ///< RDB-views: view seeded the remainder
};

/// Short name of `route` ("relational", "graph", "dual", "view").
const char* RouteName(Route route);

/// Outcome of processing one query, with the cost breakdown the
/// experiments report.
struct QueryExecution {
  sparql::BindingTable result;
  Route route = Route::kRelationalOnly;
  /// The identifier's split (kept for the tuner's training data), with
  /// parameter values substituted in.
  IdentifiedQuery split;

  // Simulated time, microseconds.
  double graph_micros = 0;    ///< spent in the graph store
  double rel_micros = 0;      ///< spent in the relational store
  double migrate_micros = 0;  ///< spent shipping intermediate results
  /// IO/CPU split of the graph-store share (for the Figure 7 trace).
  double graph_io_micros = 0;
  double graph_cpu_micros = 0;

  double total_micros() const {
    return graph_micros + rel_micros + migrate_micros;
  }
};

/// Everything plan-time about one query: the identifier's split, the
/// chosen route, and the slot-compiled artifact for each engine the route
/// touches. Parameter values are *not* part of the plan — they are
/// supplied per execution, so one plan serves every mutation of a query
/// template.
struct PreparedPlan {
  /// The split of the (possibly parameterized) query.
  IdentifiedQuery split;
  /// Distinct `$parameter` names in first-appearance order; the
  /// `param_values` arrays passed to ExecutePlan/OpenCursor align with it.
  std::vector<std::string> params;

  /// The route selected at prepare time. `kViewAssisted` is never planned
  /// directly — `try_view` marks plans that probe the view catalog per
  /// execution and fall back to `kRelationalOnly` on a miss, exactly as
  /// the one-shot processor does.
  Route route = Route::kRelationalOnly;
  bool try_view = false;

  /// The query's output header (select list, or all variables).
  std::vector<std::string> out_vars;

  /// Compiled artifacts; only the ones the route needs are populated.
  relstore::Executor::CompiledQuery rel;        // Case 3 / view fallback
  relstore::Executor::CompiledQuery remainder;  // Case 2 / view remainder
  bool has_remainder = false;
  graphstore::TraversalMatcher::Plan graph_whole;    // Case 1
  graphstore::TraversalMatcher::Plan graph_complex;  // Case 2 q_c

  /// Parameter index mapping from each artifact's local parameter order
  /// to `params` (artifacts see only the parameters in their patterns).
  std::vector<size_t> rel_param_map;
  std::vector<size_t> remainder_param_map;
  std::vector<size_t> graph_whole_param_map;
  std::vector<size_t> graph_complex_param_map;

  /// `$param` occurrences in the split's ASTs, so executions can
  /// materialize the bound split (tuners train on it) and the view path
  /// can filter on bound constants.
  struct AstParamSite {
    uint8_t which;     // 0 = split.query, 1 = split.complex, 2 = remainder
    uint32_t pattern;  // pattern index within that query
    uint8_t pos;       // 0 = subject, 2 = object
    uint32_t param;    // index into `params`
  };
  std::vector<AstParamSite> ast_param_sites;

  /// `DualStore::plan_epoch()` at prepare time (stamped by the store;
  /// 0 when the plan was prepared through a bare QueryProcessor).
  uint64_t plan_epoch = 0;
};

/// A pull-based streaming result: chunks of rows on demand instead of one
/// materialized `BindingTable`. Obtained from `QueryProcessor::OpenCursor`
/// (or `Session::PreparedQuery::OpenCursor` at the public API). The
/// relational pipeline still materializes its join intermediates — that
/// is the row-store semantics the cost model charges for — but the final
/// projected result is emitted chunk by chunk, and a pure graph-store
/// route streams straight out of the resumable traversal with no
/// materialization at all.
class ExecutionCursor {
 public:
  ExecutionCursor();
  ~ExecutionCursor();
  ExecutionCursor(ExecutionCursor&&) noexcept;
  ExecutionCursor& operator=(ExecutionCursor&&) noexcept;

  /// Replaces `*chunk` with the next `max_rows` (or fewer) result rows.
  /// `*done` turns true once the result set is exhausted (a call after
  /// that yields an empty chunk). Graph-route cursors charge traversal
  /// cost as they advance; a fully drained cursor has charged exactly
  /// what `ExecutePlan` charges.
  Status Next(sparql::BindingTable* chunk, size_t max_rows, bool* done);

  /// Output column names of every chunk.
  const std::vector<std::string>& columns() const;

  Route route() const;

  /// Execution record so far: route, bound split, and the cost breakdown
  /// accrued to date (`result` left empty). After a full drain the totals
  /// equal `ExecutePlan`'s for the same bindings.
  QueryExecution Execution() const;

 private:
  friend class QueryProcessor;
  struct Body;
  std::unique_ptr<Body> body_;
};

/// Routes and executes queries against the current dual-store state.
class QueryProcessor {
 public:
  struct Config {
    /// Use the graph store as accelerator (RDB-GDB).
    bool use_graph = true;
    /// Use materialized views as accelerator (RDB-views).
    bool use_views = false;
    /// Contention applied to graph-store execution (Table 6 / Figure 7).
    ResourceThrottle graph_throttle;
    /// Pool for sharded graph traversal (borrowed, not owned; null =
    /// serial). Sharded and serial traversal produce bit-identical rows
    /// and charges, so this is purely a wall-clock knob.
    ThreadPool* exec_pool = nullptr;
    /// Max traversal shards per query (<= 0: the pool's size).
    int max_traversal_shards = 0;
  };

  /// All pointers are borrowed and must outlive the processor. `views`
  /// may be null when `config.use_views` is false.
  QueryProcessor(const relstore::Executor* executor,
                 const graphstore::PropertyGraph* graph,
                 const graphstore::TraversalMatcher* matcher,
                 const relstore::MaterializedViewManager* views,
                 const rdf::Dictionary* dict, Config config)
      : executor_(executor), graph_(graph), matcher_(matcher), views_(views),
        dict_(dict), config_(config) {}

  /// Plan-time half of Algorithm 3: identification, routing, slot
  /// compilation — everything reusable across executions.
  Result<PreparedPlan> Prepare(const sparql::Query& query) const;

  /// Executes a prepared plan with `param_values` bound (one id per entry
  /// of `plan.params`; null allowed when the plan has none). Results and
  /// simulated charges are identical to `Process` on the equivalent bound
  /// query. An unbound or invalid parameter fails with
  /// FailedPrecondition.
  Result<QueryExecution> ExecutePlan(const PreparedPlan& plan,
                                     const rdf::TermId* param_values) const;

  /// Streaming variant of `ExecutePlan`; see `ExecutionCursor`.
  Result<ExecutionCursor> OpenCursor(const PreparedPlan& plan,
                                     const rdf::TermId* param_values) const;

  /// Processes `query` end to end per Algorithm 3 (`Prepare` +
  /// `ExecutePlan`, kept as the one-shot convenience).
  Result<QueryExecution> Process(const sparql::Query& query) const;

  const Config& config() const { return config_; }
  void set_graph_throttle(ResourceThrottle t) { config_.graph_throttle = t; }
  /// Enables (or, with null, disables) sharded graph traversal. Not
  /// synchronized: set while no query is executing.
  void set_exec_pool(ThreadPool* pool) { config_.exec_pool = pool; }

 private:
  /// True if every pattern of `q` has a constant predicate whose partition
  /// is resident in the graph store.
  bool GraphCovers(const sparql::Query& q) const;

  /// The split with `param_values` substituted for its `$param` sites.
  IdentifiedQuery BindSplit(const PreparedPlan& plan,
                            const rdf::TermId* param_values) const;

  /// Drains one compiled traversal into a table (shared by the
  /// materialized and streaming paths so they can never diverge).
  Result<sparql::BindingTable> MatchAll(
      const graphstore::TraversalMatcher::Plan& plan,
      const std::vector<size_t>& map, const rdf::TermId* param_values,
      CostMeter* meter) const;

  /// Gathers an artifact's local parameter values from the plan-level
  /// array via its index map.
  static std::vector<rdf::TermId> MapParams(
      const std::vector<size_t>& map, const rdf::TermId* param_values);

  const relstore::Executor* executor_;
  const graphstore::PropertyGraph* graph_;
  const graphstore::TraversalMatcher* matcher_;
  const relstore::MaterializedViewManager* views_;
  const rdf::Dictionary* dict_;
  Config config_;
};

}  // namespace dskg::core

#endif  // DSKG_CORE_QUERY_PROCESSOR_H_
