#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <utility>

#include "core/dual_store.h"
#include "core/query_processor.h"
#include "rdf/dictionary.h"
#include "sparql/bindings.h"
#include "sparql/parser.h"

namespace dskg::server {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Binds a loopback listener on `port` (0 = ephemeral) and reports the
/// bound port back through `*bound`.
Result<int> Listen(uint16_t port, uint16_t* bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket(): " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status s = Status::IoError("bind(port " + std::to_string(port) +
                                     "): " + strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 128) != 0) {
    const Status s = Status::IoError("listen(): " + std::string(strerror(errno)));
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  *bound = ntohs(addr.sin_port);
  SetNonBlocking(fd);
  return fd;
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

/// Encodes a ROWS response. `rows` may be null (cursor-open ack: header
/// only, zero rows).
void EncodeRows(std::vector<uint8_t>* out, uint32_t request_id,
                uint32_t cursor_id, bool done, core::Route route,
                const core::QueryExecution& ex,
                const std::vector<std::string>& columns,
                const sparql::BindingTable* rows,
                const rdf::Dictionary& dict) {
  WireWriter w(out);
  const size_t start = w.BeginFrame(MsgType::kRows, request_id);
  w.PutU32(cursor_id);
  w.PutU8(done ? 1 : 0);
  w.PutString(core::RouteName(route));
  w.PutF64(ex.rel_micros);
  w.PutF64(ex.graph_micros);
  w.PutF64(ex.migrate_micros);
  w.PutF64(ex.graph_io_micros);
  w.PutF64(ex.graph_cpu_micros);
  w.PutU16(static_cast<uint16_t>(columns.size()));
  for (const std::string& c : columns) w.PutString(c);
  const size_t n_rows = rows != nullptr ? rows->NumRows() : 0;
  w.PutU32(static_cast<uint32_t>(n_rows));
  for (size_t r = 0; r < n_rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      w.PutString(dict.TermOf(rows->At(r, c)));
    }
  }
  w.FinishFrame(start);
}

}  // namespace

// ---- connection & work-item state -------------------------------------------

struct Server::StmtState {
  std::string text;
  std::shared_ptr<const sparql::Query> parsed;
};

struct Server::CursorState {
  std::shared_ptr<const core::PreparedPlan> plan;
  core::OnlineStore::ReadGuard pin;  ///< the cursor's own epoch pin
  core::ExecutionCursor cursor;

  CursorState(std::shared_ptr<const core::PreparedPlan> p,
              core::OnlineStore::ReadGuard g, core::ExecutionCursor c)
      : plan(std::move(p)), pin(std::move(g)), cursor(std::move(c)) {}
};

struct Server::Connection {
  int fd = -1;
  uint64_t id = 0;
  std::vector<uint8_t> rbuf;
  std::atomic<bool> dead{false};

  /// The fd closes only when the LAST reference drops. Disconnection
  /// (`CloseConnection`) merely shuts the socket down: a worker mid-send
  /// on a queued shared_ptr keeps holding the same fd number — its
  /// writes fail with EPIPE instead of landing on a recycled descriptor
  /// belonging to a newly accepted client.
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  std::mutex write_mu;  ///< serializes response frames onto the socket

  /// Per-tenant session state: statements are client-numbered, cursors
  /// server-numbered. Guarded by `state_mu` (workers race on EXECUTE vs
  /// FETCH vs CLOSE for one connection).
  std::mutex state_mu;
  std::unordered_map<uint32_t, StmtState> stmts;
  std::unordered_map<uint32_t, std::unique_ptr<CursorState>> cursors;
  uint32_t next_cursor_id = 1;
};

struct Server::WorkItem {
  std::shared_ptr<Connection> conn;
  MsgType type = MsgType::kPing;
  uint32_t request_id = 0;
  std::vector<uint8_t> body;
  double enqueue_us = 0;
};

// ---- construction -----------------------------------------------------------

Server::Server(core::OnlineStore* store, ServerConfig config)
    : store_(store), cfg_(std::move(config)) {
  auto& reg = telemetry::MetricsRegistry::Global();
  cells_.accepted = reg.counter("server.connections.accepted")->NewCell();
  cells_.admitted = reg.counter("server.requests.admitted")->NewCell();
  cells_.rejected = reg.counter("server.requests.rejected")->NewCell();
  cells_.responses = reg.counter("server.responses")->NewCell();
  cells_.errors = reg.counter("server.errors")->NewCell();
  cells_.batches = reg.counter("server.batches")->NewCell();
  cells_.open_connections = reg.gauge("server.connections.open");
  cells_.queue_depth = reg.gauge("server.queue.depth");
  cells_.request_us = reg.histogram("server.request_us");
  cells_.batch_size = reg.histogram("server.batch_size");
}

Server::~Server() {
  if (started()) Stop();
}

Status Server::Start() {
  if (started()) return Status::FailedPrecondition("server already started");
  if (cfg_.slow_query_ms > 0) {
    telemetry::MetricsRegistry::Global().slow_queries().set_threshold_ms(
        cfg_.slow_query_ms);
  }
  if (::pipe(wake_pipe_) != 0) {
    return Status::IoError("pipe(): " + std::string(strerror(errno)));
  }
  SetNonBlocking(wake_pipe_[0]);
  DSKG_ASSIGN_OR_RETURN(listen_fd_, Listen(cfg_.port, &port_));
  if (cfg_.enable_admin) {
    DSKG_ASSIGN_OR_RETURN(admin_fd_, Listen(cfg_.admin_port, &admin_port_));
  }
  const int workers = std::max(1, cfg_.workers);
  pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(workers));
  worker_done_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    worker_done_.push_back(pool_->Submit([this] { WorkerLoop(); }));
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  if (cfg_.enable_admin) {
    admin_thread_ = std::thread([this] { AdminLoop(); });
  }
  started_.store(true, std::memory_order_release);
  return Status::OK();
}

void Server::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // Second caller (e.g. the signal watcher racing an explicit Stop):
    // wait for the first to finish.
    while (!stopped()) std::this_thread::yield();
    return;
  }
  // Wake poll()ers: the IO thread stops accepting and reading, the
  // admin thread exits after its current exchange.
  char byte = 1;
  (void)!::write(wake_pipe_[1], &byte, 1);
  if (io_thread_.joinable()) io_thread_.join();

  // Drain: everything admitted before the listener closed gets its
  // response. New arrivals are impossible (no reader).
  {
    std::unique_lock<std::mutex> lk(queue_mu_);
    drain_cv_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
  }
  queue_cv_.notify_all();  // workers observe stopping_ + empty and exit
  for (std::future<void>& f : worker_done_) f.get();
  worker_done_.clear();
  pool_.reset();

  // Tear down connections (destroys cursors, releasing their pins; each
  // fd closes when its Connection's last reference drops).
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& [fd, conn] : conns_) AbortConnection(conn);
    conns_.clear();
  }
  cells_.open_connections->Set(0);

  if (admin_thread_.joinable()) {
    (void)!::write(wake_pipe_[1], &byte, 1);
    admin_thread_.join();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (admin_fd_ >= 0) ::close(admin_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
  listen_fd_ = admin_fd_ = wake_pipe_[0] = wake_pipe_[1] = -1;

  if (cfg_.checkpoint_on_shutdown && store_->durable()) {
    const Status s = store_->SaveSnapshot();
    if (!s.ok()) {
      std::fprintf(stderr, "dskg_server: final checkpoint failed: %s\n",
                   s.message().c_str());
    }
  }
  stopped_.store(true, std::memory_order_release);
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections_accepted = cells_.accepted->value();
  s.requests_admitted = cells_.admitted->value();
  s.requests_rejected = cells_.rejected->value();
  s.responses_sent = cells_.responses->value();
  s.errors_sent = cells_.errors->value();
  s.batches = cells_.batches->value();
  return s;
}

// ---- IO thread --------------------------------------------------------------

void Server::IoLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Connection>> polled;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fds.push_back({listen_fd_, POLLIN, 0});
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      polled.reserve(conns_.size());
      for (auto& [fd, conn] : conns_) {
        fds.push_back({fd, POLLIN, 0});
        polled.push_back(conn);
      }
    }
    const int n = ::poll(fds.data(), fds.size(), /*timeout_ms=*/200);
    if (n < 0 && errno != EINTR) break;
    if (stopping_.load(std::memory_order_acquire)) break;
    if (n <= 0) continue;
    if (fds[0].revents & POLLIN) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {
      }
    }
    if (fds[1].revents & POLLIN) AcceptOne();
    for (size_t i = 2; i < fds.size(); ++i) {
      if (fds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
        ReadFrom(polled[i - 2]);
      }
    }
  }
}

void Server::AcceptOne() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (drained) or transient error
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      conns_.emplace(fd, std::move(conn));
      cells_.open_connections->Set(static_cast<int64_t>(conns_.size()));
    }
    cells_.accepted->Add();
  }
}

void Server::ReadFrom(const std::shared_ptr<Connection>& conn) {
  uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn->rbuf.insert(conn->rbuf.end(), buf, buf + n);
      if (static_cast<ssize_t>(sizeof buf) > n) break;  // drained
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn);  // orderly close or hard error
    return;
  }
  // Decode every complete frame in the buffer.
  size_t off = 0;
  for (;;) {
    Frame frame;
    const int64_t used =
        DecodeFrame(conn->rbuf.data() + off, conn->rbuf.size() - off, &frame);
    if (used == 0) break;
    if (used < 0) {  // protocol violation: drop the peer
      CloseConnection(conn);
      return;
    }
    DispatchFrame(conn, frame);
    off += static_cast<size_t>(used);
  }
  if (off > 0) {
    conn->rbuf.erase(conn->rbuf.begin(),
                     conn->rbuf.begin() + static_cast<ptrdiff_t>(off));
  }
}

void Server::DispatchFrame(const std::shared_ptr<Connection>& conn,
                           const Frame& frame) {
  if (frame.type == MsgType::kPing) {  // answered inline, never queued
    std::vector<uint8_t> out;
    WireWriter w(&out);
    w.FinishFrame(w.BeginFrame(MsgType::kPong, frame.request_id));
    SendBytes(conn, out, /*may_block=*/false);
    return;
  }
  switch (frame.type) {
    case MsgType::kPrepare:
    case MsgType::kExecute:
    case MsgType::kFetch:
    case MsgType::kCloseStmt:
    case MsgType::kCloseCursor:
      break;
    default:
      SendError(conn, frame.request_id,
                Status::InvalidArgument(
                    "unknown request type " +
                    std::to_string(static_cast<int>(frame.type))),
                /*may_block=*/false);
      return;
  }
  WorkItem item;
  item.conn = conn;
  item.type = frame.type;
  item.request_id = frame.request_id;
  item.body.assign(frame.body, frame.body + frame.body_size);
  item.enqueue_us = telemetry::MetricsRegistry::Global().NowMicros();
  {
    std::unique_lock<std::mutex> lk(queue_mu_);
    if (queue_.size() >= cfg_.max_queue_depth) {
      lk.unlock();
      cells_.rejected->Add();
      SendError(conn, frame.request_id,
                Status::CapacityExceeded(
                    "server overloaded: request queue full (depth " +
                    std::to_string(cfg_.max_queue_depth) + ")"),
                /*may_block=*/false);
      return;
    }
    queue_.push_back(std::move(item));
    cells_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
  }
  cells_.admitted->Add();
  queue_cv_.notify_one();
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  AbortConnection(conn);
  std::lock_guard<std::mutex> lk(conns_mu_);
  conns_.erase(conn->fd);
  cells_.open_connections->Set(static_cast<int64_t>(conns_.size()));
}

void Server::AbortConnection(const std::shared_ptr<Connection>& conn) {
  conn->dead.store(true, std::memory_order_relaxed);
  // Shut down rather than close: the fd number stays reserved until the
  // last shared_ptr drops (~Connection), so a worker mid-send can never
  // write into a recycled descriptor. The shutdown also makes the IO
  // thread's next recv() return 0, reaping the connection table entry.
  ::shutdown(conn->fd, SHUT_RDWR);
}

// ---- workers ----------------------------------------------------------------

void Server::WorkerLoop() {
  for (;;) {
    std::vector<WorkItem> batch;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] {
        return stopping_.load(std::memory_order_acquire) || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      const size_t n = std::min(std::max<size_t>(cfg_.max_batch, 1),
                                queue_.size());
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ += n;
      cells_.queue_depth->Set(static_cast<int64_t>(queue_.size()));
    }
    if (cfg_.test_batch_hook) cfg_.test_batch_hook();
    ExecuteBatch(&batch);
    {
      std::lock_guard<std::mutex> lk(queue_mu_);
      in_flight_ -= batch.size();
      if (queue_.empty() && in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

void Server::ExecuteBatch(std::vector<WorkItem>* batch) {
  cells_.batches->Add();
  auto& reg = telemetry::MetricsRegistry::Global();
  if (reg.enabled()) {
    cells_.batch_size->Record(static_cast<double>(batch->size()));
  }
  // ONE epoch pin and ONE installed snapshot for the whole batch: every
  // same-epoch execution in it amortizes the pin and reads one state.
  const core::OnlineStore::ReadGuard guard = store_->Read();
  core::DualStore::SnapshotScope scope(&guard.snapshot());
  for (const WorkItem& item : *batch) HandleItem(item, guard);
}

void Server::HandleItem(const WorkItem& item,
                        const core::OnlineStore::ReadGuard& g) {
  if (item.conn->dead.load(std::memory_order_relaxed)) return;
  Status s;
  switch (item.type) {
    case MsgType::kPrepare: s = HandlePrepare(item, g); break;
    case MsgType::kExecute: s = HandleExecute(item, g); break;
    case MsgType::kFetch: s = HandleFetch(item); break;
    case MsgType::kCloseStmt: s = HandleClose(item, /*cursor=*/false); break;
    case MsgType::kCloseCursor: s = HandleClose(item, /*cursor=*/true); break;
    default: s = Status::Internal("unreachable request type");
  }
  if (!s.ok()) SendError(item.conn, item.request_id, s);
  auto& reg = telemetry::MetricsRegistry::Global();
  if (reg.enabled()) {
    cells_.request_us->Record(reg.NowMicros() - item.enqueue_us);
  }
}

Status Server::HandlePrepare(const WorkItem& item,
                             const core::OnlineStore::ReadGuard& g) {
  WireReader r(item.body.data(), item.body.size());
  uint32_t stmt_id = 0;
  std::string text;
  if (!r.GetU32(&stmt_id) || !r.GetString(&text) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed PREPARE frame");
  }
  DSKG_ASSIGN_OR_RETURN(sparql::Query parsed, sparql::Parser::Parse(text));
  DSKG_ASSIGN_OR_RETURN(std::shared_ptr<const core::PreparedPlan> plan,
                        plan_cache_.GetOrPrepare(text, g.store(), &parsed));
  {
    std::lock_guard<std::mutex> lk(item.conn->state_mu);
    StmtState& stmt = item.conn->stmts[stmt_id];  // re-PREPARE overwrites
    stmt.text = std::move(text);
    stmt.parsed = std::make_shared<const sparql::Query>(std::move(parsed));
  }
  std::vector<uint8_t> out;
  WireWriter w(&out);
  const size_t start = w.BeginFrame(MsgType::kPrepared, item.request_id);
  w.PutU32(stmt_id);
  w.PutU16(static_cast<uint16_t>(plan->params.size()));
  for (const std::string& p : plan->params) w.PutString(p);
  w.FinishFrame(start);
  SendBytes(item.conn, out);
  return Status::OK();
}

Status Server::HandleExecute(const WorkItem& item,
                             const core::OnlineStore::ReadGuard& g) {
  WireReader r(item.body.data(), item.body.size());
  uint32_t stmt_id = 0;
  uint8_t open_cursor = 0;
  uint16_t n_bindings = 0;
  if (!r.GetU32(&stmt_id) || !r.GetU8(&open_cursor) ||
      !r.GetU16(&n_bindings)) {
    return Status::InvalidArgument("malformed EXECUTE frame");
  }
  std::vector<std::pair<std::string, std::string>> bindings(n_bindings);
  for (auto& [name, term] : bindings) {
    if (!r.GetString(&name) || !r.GetString(&term)) {
      return Status::InvalidArgument("malformed EXECUTE frame");
    }
  }
  if (!r.AtEnd()) return Status::InvalidArgument("malformed EXECUTE frame");

  StmtState stmt;
  {
    std::lock_guard<std::mutex> lk(item.conn->state_mu);
    auto it = item.conn->stmts.find(stmt_id);
    if (it == item.conn->stmts.end()) {
      return Status::NotFound("no statement with id " +
                              std::to_string(stmt_id));
    }
    stmt = it->second;  // copies text + shares the parse
  }

  // Resolve the plan through the shared cache (one compile per (text,
  // epoch) process-wide) and the bindings against the pinned dictionary.
  DSKG_ASSIGN_OR_RETURN(
      std::shared_ptr<const core::PreparedPlan> plan,
      plan_cache_.GetOrPrepare(stmt.text, g.store(), stmt.parsed.get()));
  auto resolve = [&stmt](const core::PreparedPlan& p, const rdf::Dictionary& d,
                         const std::vector<std::pair<std::string,
                                                     std::string>>& binds)
      -> Result<std::vector<rdf::TermId>> {
    std::vector<rdf::TermId> values(p.params.size(), rdf::kInvalidTermId);
    for (const auto& [name, term] : binds) {
      size_t idx = p.params.size();
      for (size_t i = 0; i < p.params.size(); ++i) {
        if (p.params[i] == name) { idx = i; break; }
      }
      if (idx == p.params.size()) {
        return Status::InvalidArgument("no parameter $" + name +
                                       " in query \"" + stmt.text + "\"");
      }
      values[idx] = d.Lookup(term);
      if (values[idx] == rdf::kInvalidTermId) {
        return Status::NotFound("term " + term +
                                " is not in the dictionary; binding it to $" +
                                name + " could never match");
      }
    }
    for (size_t i = 0; i < p.params.size(); ++i) {
      if (values[i] == rdf::kInvalidTermId) {
        return Status::FailedPrecondition("parameter $" + p.params[i] +
                                          " is unbound in query \"" +
                                          stmt.text + "\"");
      }
    }
    return values;
  };

  if (open_cursor != 0) {
    // A cursor outlives the batch, so it gets its OWN pin; plan and
    // bindings re-resolve for that pin's (possibly newer) epoch.
    core::OnlineStore::ReadGuard pin = store_->Read();
    core::DualStore::SnapshotScope scope(&pin.snapshot());
    DSKG_ASSIGN_OR_RETURN(
        plan, plan_cache_.GetOrPrepare(stmt.text, pin.store(),
                                       stmt.parsed.get()));
    DSKG_ASSIGN_OR_RETURN(std::vector<rdf::TermId> values,
                          resolve(*plan, pin.store().dict(), bindings));
    DSKG_ASSIGN_OR_RETURN(
        core::ExecutionCursor cursor,
        pin.store().OpenCursor(*plan,
                               values.empty() ? nullptr : values.data()));
    const core::Route route = cursor.route();
    const std::vector<std::string> columns = cursor.columns();
    auto state = std::make_unique<CursorState>(plan, std::move(pin),
                                               std::move(cursor));
    uint32_t cursor_id = 0;
    {
      std::lock_guard<std::mutex> lk(item.conn->state_mu);
      cursor_id = item.conn->next_cursor_id++;
      item.conn->cursors.emplace(cursor_id, std::move(state));
    }
    // Ack with the cursor id and the header; rows (and charges, which
    // accrue as the cursor advances) arrive via FETCH.
    std::vector<uint8_t> out;
    EncodeRows(&out, item.request_id, cursor_id, /*done=*/false, route,
               core::QueryExecution{}, columns, /*rows=*/nullptr,
               g.store().dict());
    SendBytes(item.conn, out);
    return Status::OK();
  }

  DSKG_ASSIGN_OR_RETURN(std::vector<rdf::TermId> values,
                        resolve(*plan, g.store().dict(), bindings));
  auto& reg = telemetry::MetricsRegistry::Global();
  const bool timed = reg.enabled() && reg.slow_queries().enabled();
  const double start_us = timed ? reg.NowMicros() : 0;
  DSKG_ASSIGN_OR_RETURN(
      core::QueryExecution exec,
      g.store().ExecutePlan(*plan, values.empty() ? nullptr : values.data()));
  if (timed) {
    // Tag the wire-level text with the tenant so /debug/slow attributes
    // slow templates to a connection.
    reg.slow_queries().MaybeRecord(
        "conn=" + std::to_string(item.conn->id) + " " + stmt.text,
        core::RouteName(exec.route),
        (reg.NowMicros() - start_us) / 1000.0);
  }
  std::vector<uint8_t> out;
  EncodeRows(&out, item.request_id, /*cursor_id=*/0, /*done=*/true,
             exec.route, exec, exec.result.columns, &exec.result,
             g.store().dict());
  // A frame past kMaxFrameBytes is a protocol violation the client's
  // decoder rightly drops the connection over — reject it here instead
  // and point at the streaming path.
  if (out.size() - sizeof(uint32_t) > kMaxFrameBytes) {  // len prefix excluded
    return Status::CapacityExceeded(
        "result encodes to " + std::to_string(out.size()) +
        " bytes, past the " + std::to_string(kMaxFrameBytes) +
        "-byte frame bound; re-EXECUTE with open_cursor=1 and stream it "
        "with FETCH");
  }
  SendBytes(item.conn, out);
  return Status::OK();
}

Status Server::HandleFetch(const WorkItem& item) {
  WireReader r(item.body.data(), item.body.size());
  uint32_t cursor_id = 0, max_rows = 0;
  if (!r.GetU32(&cursor_id) || !r.GetU32(&max_rows) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed FETCH frame");
  }
  if (max_rows == 0) max_rows = 1024;
  // Check the cursor OUT of the table (a null entry marks it busy) so
  // state_mu is never held across Next(), encoding, or a flow-controlled
  // send — a slow-reading peer must not block the connection's other
  // PREPARE/EXECUTE/CLOSE requests. A cursor is single-consumer by
  // construction; a concurrent FETCH on the same id is a client error.
  std::unique_ptr<CursorState> cur;
  {
    std::lock_guard<std::mutex> lk(item.conn->state_mu);
    auto it = item.conn->cursors.find(cursor_id);
    if (it == item.conn->cursors.end()) {
      return Status::NotFound("no cursor with id " + std::to_string(cursor_id));
    }
    if (it->second == nullptr) {
      return Status::FailedPrecondition("cursor " + std::to_string(cursor_id) +
                                        " is busy in a concurrent FETCH");
    }
    cur = std::move(it->second);
  }
  Status status;
  bool done = false;
  std::vector<uint8_t> out;
  {
    // Each pull re-installs the cursor's pinned snapshot: it keeps
    // streaming the state it was opened on regardless of later publishes.
    core::DualStore::SnapshotScope scope(&cur->pin.snapshot());
    sparql::BindingTable chunk;
    status = cur->cursor.Next(&chunk, max_rows, &done);
    if (status.ok()) {
      const core::QueryExecution ex = cur->cursor.Execution();  // cumulative
      EncodeRows(&out, item.request_id, cursor_id, done, cur->cursor.route(),
                 ex, cur->cursor.columns(), &chunk, cur->pin.store().dict());
      if (out.size() - sizeof(uint32_t) > kMaxFrameBytes) {
        status = Status::CapacityExceeded(
            "chunk of " + std::to_string(max_rows) + " rows encodes to " +
            std::to_string(out.size()) + " bytes, past the " +
            std::to_string(kMaxFrameBytes) +
            "-byte frame bound; FETCH fewer rows");
      }
    }
  }
  {
    // Check the cursor back in — unless it finished, or a concurrent
    // CLOSE_CURSOR erased the busy marker (then it dies here).
    std::lock_guard<std::mutex> lk(item.conn->state_mu);
    auto it = item.conn->cursors.find(cursor_id);
    if (it != item.conn->cursors.end() && it->second == nullptr) {
      if (status.ok() && done) {
        item.conn->cursors.erase(it);
      } else {
        it->second = std::move(cur);
      }
    }
  }
  DSKG_RETURN_NOT_OK(status);
  SendBytes(item.conn, out);
  return Status::OK();
}

Status Server::HandleClose(const WorkItem& item, bool cursor) {
  WireReader r(item.body.data(), item.body.size());
  uint32_t id = 0;
  if (!r.GetU32(&id) || !r.AtEnd()) {
    return Status::InvalidArgument("malformed CLOSE frame");
  }
  {
    std::lock_guard<std::mutex> lk(item.conn->state_mu);
    if (cursor) {
      item.conn->cursors.erase(id);
    } else {
      item.conn->stmts.erase(id);
    }
  }
  std::vector<uint8_t> out;
  WireWriter w(&out);
  w.FinishFrame(w.BeginFrame(MsgType::kPong, item.request_id));
  SendBytes(item.conn, out);
  return Status::OK();
}

// ---- response plumbing ------------------------------------------------------

void Server::SendBytes(const std::shared_ptr<Connection>& conn,
                       const std::vector<uint8_t>& bytes, bool may_block) {
  if (conn->dead.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lk(conn->write_mu);
  if (conn->dead.load(std::memory_order_relaxed)) return;
  size_t off = 0;
  int stalled_ms = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(conn->fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      stalled_ms = 0;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Flow control: the peer is slow. A worker waits for writability,
      // bounded, so a peer that never reads cannot wedge it forever. The
      // IO thread NEVER waits (may_block=false — its replies are tiny,
      // and one backed-up peer must not stall accepts and reads for
      // every other connection): a would-block there drops the peer.
      if (!may_block || stalled_ms >= 5000) {
        AbortConnection(conn);
        return;
      }
      pollfd p{conn->fd, POLLOUT, 0};
      (void)::poll(&p, 1, 50);
      stalled_ms += 50;
      continue;
    }
    AbortConnection(conn);
    return;
  }
  cells_.responses->Add();
}

void Server::SendError(const std::shared_ptr<Connection>& conn,
                       uint32_t request_id, const Status& status,
                       bool may_block) {
  cells_.errors->Add();
  // Error text can embed client-supplied query text; cap it so the
  // ERROR frame itself can never breach kMaxFrameBytes.
  constexpr size_t kMaxErrorText = 4096;
  std::vector<uint8_t> out;
  if (status.message().size() > kMaxErrorText) {
    EncodeError(&out, request_id,
                Status(status.code(),
                       status.message().substr(0, kMaxErrorText) + "..."));
  } else {
    EncodeError(&out, request_id, status);
  }
  SendBytes(conn, out, may_block);
}

// ---- admin listener ---------------------------------------------------------

std::string Server::AdminRespond(const std::string& path) const {
  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  std::string code = "200 OK";
  auto& reg = telemetry::MetricsRegistry::Global();
  if (path == "/healthz") {
    body = "ok\n";
  } else if (path == "/metrics") {
    body = reg.DumpText();
    content_type = "text/plain; version=0.0.4; charset=utf-8";
  } else if (path == "/debug/slow") {
    content_type = "application/json";
    body = "{\"threshold_ms\": " +
           std::to_string(reg.slow_queries().threshold_ms()) +
           ", \"total\": " + std::to_string(reg.slow_queries().total()) +
           ", \"entries\": [";
    bool first = true;
    for (const telemetry::SlowQueryLog::Entry& e :
         reg.slow_queries().Snapshot()) {
      if (!first) body += ", ";
      first = false;
      body += "{\"seq\": " + std::to_string(e.seq) +
              ", \"wall_ms\": " + std::to_string(e.wall_ms) + ", \"route\": \"";
      AppendJsonEscaped(&body, e.route);
      body += "\", \"text\": \"";
      AppendJsonEscaped(&body, e.text);
      body += "\"}";
    }
    body += "]}\n";
  } else {
    code = "404 Not Found";
    body = "not found\n";
  }
  return "HTTP/1.0 " + code + "\r\nContent-Type: " + content_type +
         "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n\r\n" + body;
}

void Server::AdminLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{wake_pipe_[0], POLLIN, 0}, {admin_fd_, POLLIN, 0}};
    const int n = ::poll(fds, 2, 200);
    if (stopping_.load(std::memory_order_acquire)) return;
    if (n <= 0 || !(fds[1].revents & POLLIN)) continue;
    const int fd = ::accept(admin_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // One short-lived blocking exchange per scrape connection.
    timeval tv{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    std::string req;
    char buf[4096];
    while (req.find("\r\n\r\n") == std::string::npos && req.size() < 16384) {
      const ssize_t got = ::recv(fd, buf, sizeof buf, 0);
      if (got <= 0) break;
      req.append(buf, static_cast<size_t>(got));
    }
    // "GET <path> HTTP/1.x"
    std::string path = "/";
    if (req.rfind("GET ", 0) == 0) {
      const size_t end = req.find(' ', 4);
      if (end != std::string::npos) path = req.substr(4, end - 4);
    }
    const std::string resp = AdminRespond(path);
    size_t off = 0;
    while (off < resp.size()) {
      const ssize_t w =
          ::send(fd, resp.data() + off, resp.size() - off, MSG_NOSIGNAL);
      if (w <= 0) break;
      off += static_cast<size_t>(w);
    }
    ::close(fd);
  }
}

// ---- signal-driven shutdown -------------------------------------------------

namespace {

std::atomic<Server*> g_signal_server{nullptr};
int g_signal_pipe[2] = {-1, -1};

/// Holds the watcher thread. A joinable std::thread with static storage
/// would std::terminate at exit when the program forgets
/// InstallSignalShutdown(nullptr); this wrapper's destructor quits and
/// joins it instead. (Declared after g_signal_pipe, so the pipe fds are
/// still valid when the destructor writes the quit byte.)
struct SignalWatcher {
  std::thread thread;

  ~SignalWatcher() { StopAndJoin(); }

  void StopAndJoin() {
    if (!thread.joinable()) return;
    const char byte = 'q';
    (void)!::write(g_signal_pipe[1], &byte, 1);
    thread.join();
  }
};
SignalWatcher g_signal_watcher;

extern "C" void DskgSignalHandler(int /*signo*/) {
  // Async-signal-safe: one byte through the pipe, nothing else.
  const char byte = 's';
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

void InstallSignalShutdown(Server* server) {
  if (server == nullptr) {
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_signal_server.store(nullptr, std::memory_order_release);
    if (g_signal_watcher.thread.joinable()) {
      g_signal_watcher.StopAndJoin();
      ::close(g_signal_pipe[0]);
      ::close(g_signal_pipe[1]);
      g_signal_pipe[0] = g_signal_pipe[1] = -1;
    }
    return;
  }
  if (g_signal_pipe[0] < 0 && ::pipe(g_signal_pipe) != 0) return;
  g_signal_server.store(server, std::memory_order_release);
  if (!g_signal_watcher.thread.joinable()) {
    g_signal_watcher.thread = std::thread([] {
      for (;;) {
        char byte = 0;
        const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0 || byte == 'q') return;
        if (Server* s = g_signal_server.load(std::memory_order_acquire)) {
          s->Stop();
        }
      }
    });
  }
  std::signal(SIGINT, DskgSignalHandler);
  std::signal(SIGTERM, DskgSignalHandler);
}

}  // namespace dskg::server
