#include "server/protocol.h"

namespace dskg::server {

// The cast in both directions below relies on the enums being mirrors.
static_assert(static_cast<int>(WireError::kResourceExhausted) ==
              static_cast<int>(StatusCode::kCapacityExceeded));
static_assert(static_cast<int>(WireError::kParseError) ==
              static_cast<int>(StatusCode::kParseError));
static_assert(static_cast<int>(WireError::kInternal) ==
              static_cast<int>(StatusCode::kInternal));

WireError WireErrorFromStatus(const Status& s) {
  return static_cast<WireError>(static_cast<int>(s.code()));
}

Status StatusFromWire(WireError code, std::string message) {
  const int c = static_cast<int>(code);
  if (c <= 0 || c > static_cast<int>(StatusCode::kInternal)) {
    return Status::Internal("unknown wire error code " + std::to_string(c) +
                            ": " + message);
  }
  return Status(static_cast<StatusCode>(c), std::move(message));
}

const char* WireErrorName(WireError code) {
  switch (code) {
    case WireError::kOk: return "OK";
    case WireError::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireError::kNotFound: return "NOT_FOUND";
    case WireError::kAlreadyExists: return "ALREADY_EXISTS";
    case WireError::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case WireError::kCancelled: return "CANCELLED";
    case WireError::kFailedPrecondition: return "FAILED_PRECONDITION";
    case WireError::kParseError: return "PARSE_ERROR";
    case WireError::kIoError: return "IO_ERROR";
    case WireError::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

size_t WireWriter::BeginFrame(MsgType type, uint32_t request_id) {
  const size_t frame_start = out_->size();
  PutU32(0);  // length slot, patched by FinishFrame
  PutU8(static_cast<uint8_t>(type));
  PutU32(request_id);
  return frame_start;
}

void WireWriter::FinishFrame(size_t frame_start) {
  const uint32_t payload =
      static_cast<uint32_t>(out_->size() - frame_start - 4);
  for (size_t i = 0; i < 4; ++i) {
    (*out_)[frame_start + i] = static_cast<uint8_t>(payload >> (8 * i));
  }
}

bool WireReader::GetString(std::string* s) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  if (static_cast<size_t>(end_ - p_) < len) {
    ok_ = false;
    return false;
  }
  s->assign(reinterpret_cast<const char*>(p_), len);
  p_ += len;
  return true;
}

int64_t DecodeFrame(const uint8_t* buf, size_t size, Frame* frame) {
  if (size < 4) return 0;
  uint32_t payload = 0;
  for (size_t i = 0; i < 4; ++i) {
    payload |= static_cast<uint32_t>(buf[i]) << (8 * i);
  }
  // type (1) + request_id (4) is the minimum payload; anything shorter
  // or over the frame bound is a protocol violation, not a short read.
  if (payload < 5 || payload > kMaxFrameBytes) return -1;
  if (size < 4 + static_cast<size_t>(payload)) return 0;
  frame->type = static_cast<MsgType>(buf[4]);
  frame->request_id = 0;
  for (size_t i = 0; i < 4; ++i) {
    frame->request_id |= static_cast<uint32_t>(buf[5 + i]) << (8 * i);
  }
  frame->body = buf + 9;
  frame->body_size = payload - 5;
  return 4 + static_cast<int64_t>(payload);
}

void EncodeError(std::vector<uint8_t>* out, uint32_t request_id,
                 const Status& status) {
  WireWriter w(out);
  const size_t start = w.BeginFrame(MsgType::kError, request_id);
  w.PutU16(static_cast<uint16_t>(WireErrorFromStatus(status)));
  w.PutString(status.message());
  w.FinishFrame(start);
}

}  // namespace dskg::server
