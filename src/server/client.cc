#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace dskg::server {

namespace {

Result<int> DialLoopback(uint16_t port, const std::string& host) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(): " + std::string(strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status s = Status::IoError("connect(" + host + ":" +
                                     std::to_string(port) +
                                     "): " + strerror(errno));
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

Status WriteAll(int fd, const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, p + off, size - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IoError("send(): " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Status ReadAll(int fd, void* data, size_t size) {
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, p + off, size - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) return Status::IoError("connection closed by server");
    return Status::IoError("recv(): " + std::string(strerror(errno)));
  }
  return Status::OK();
}

Result<RowsResult> DecodeRows(WireReader* r) {
  RowsResult rows;
  uint8_t done = 0;
  uint16_t n_cols = 0;
  uint32_t n_rows = 0;
  if (!r->GetU32(&rows.cursor_id) || !r->GetU8(&done) ||
      !r->GetString(&rows.route) || !r->GetF64(&rows.rel_us) ||
      !r->GetF64(&rows.graph_us) || !r->GetF64(&rows.migrate_us) ||
      !r->GetF64(&rows.graph_io_us) || !r->GetF64(&rows.graph_cpu_us) ||
      !r->GetU16(&n_cols)) {
    return Status::Internal("malformed ROWS frame from server");
  }
  rows.done = done != 0;
  rows.columns.resize(n_cols);
  for (std::string& c : rows.columns) {
    if (!r->GetString(&c)) {
      return Status::Internal("malformed ROWS frame from server");
    }
  }
  if (!r->GetU32(&n_rows)) {
    return Status::Internal("malformed ROWS frame from server");
  }
  rows.rows.resize(n_rows);
  for (auto& row : rows.rows) {
    row.resize(n_cols);
    for (std::string& cell : row) {
      if (!r->GetString(&cell)) {
        return Status::Internal("malformed ROWS frame from server");
      }
    }
  }
  return rows;
}

void EncodeExecute(
    std::vector<uint8_t>* out, uint32_t request_id, uint32_t stmt_id,
    bool open_cursor,
    const std::vector<std::pair<std::string, std::string>>& bindings) {
  WireWriter w(out);
  const size_t start = w.BeginFrame(MsgType::kExecute, request_id);
  w.PutU32(stmt_id);
  w.PutU8(open_cursor ? 1 : 0);
  w.PutU16(static_cast<uint16_t>(bindings.size()));
  for (const auto& [name, term] : bindings) {
    w.PutString(name);
    w.PutString(term);
  }
  w.FinishFrame(start);
}

}  // namespace

Result<Client> Client::Connect(uint16_t port, const std::string& host) {
  DSKG_ASSIGN_OR_RETURN(int fd, DialLoopback(port, host));
  return Client(fd);
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::SendFrame(const std::vector<uint8_t>& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  return WriteAll(fd_, bytes.data(), bytes.size());
}

Status Client::ReadFrame(std::vector<uint8_t>* payload) {
  uint8_t len_buf[4];
  DSKG_RETURN_NOT_OK(ReadAll(fd_, len_buf, sizeof len_buf));
  uint32_t len = 0;
  for (size_t i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(len_buf[i]) << (8 * i);
  }
  if (len < 5 || len > kMaxFrameBytes) {
    return Status::Internal("protocol violation: frame length " +
                            std::to_string(len));
  }
  payload->resize(len);
  return ReadAll(fd_, payload->data(), len);
}

Result<Response> Client::Receive() {
  std::vector<uint8_t> payload;
  DSKG_RETURN_NOT_OK(ReadFrame(&payload));
  Response resp;
  resp.type = static_cast<MsgType>(payload[0]);
  for (size_t i = 0; i < 4; ++i) {
    resp.request_id |= static_cast<uint32_t>(payload[1 + i]) << (8 * i);
  }
  WireReader r(payload.data() + 5, payload.size() - 5);
  switch (resp.type) {
    case MsgType::kPong:
      break;
    case MsgType::kError: {
      uint16_t code = 0;
      std::string message;
      if (!r.GetU16(&code) || !r.GetString(&message)) {
        return Status::Internal("malformed ERROR frame from server");
      }
      resp.error = StatusFromWire(static_cast<WireError>(code),
                                  std::move(message));
      break;
    }
    case MsgType::kPrepared: {
      uint16_t n_params = 0;
      if (!r.GetU32(&resp.stmt_id) || !r.GetU16(&n_params)) {
        return Status::Internal("malformed PREPARED frame from server");
      }
      resp.params.resize(n_params);
      for (std::string& p : resp.params) {
        if (!r.GetString(&p)) {
          return Status::Internal("malformed PREPARED frame from server");
        }
      }
      break;
    }
    case MsgType::kRows: {
      DSKG_ASSIGN_OR_RETURN(resp.rows, DecodeRows(&r));
      break;
    }
    default:
      return Status::Internal("unexpected frame type " +
                              std::to_string(static_cast<int>(resp.type)));
  }
  return resp;
}

Result<Response> Client::RoundTrip(const std::vector<uint8_t>& frame) {
  DSKG_RETURN_NOT_OK(SendFrame(frame));
  DSKG_ASSIGN_OR_RETURN(Response resp, Receive());
  if (resp.type == MsgType::kError) return resp.error;
  return resp;
}

Result<std::vector<std::string>> Client::Prepare(uint32_t stmt_id,
                                                 std::string_view text) {
  std::vector<uint8_t> out;
  WireWriter w(&out);
  const size_t start = w.BeginFrame(MsgType::kPrepare, next_request_id_++);
  w.PutU32(stmt_id);
  w.PutString(text);
  w.FinishFrame(start);
  DSKG_ASSIGN_OR_RETURN(Response resp, RoundTrip(out));
  if (resp.type != MsgType::kPrepared) {
    return Status::Internal("expected PREPARED, got frame type " +
                            std::to_string(static_cast<int>(resp.type)));
  }
  return std::move(resp.params);
}

Result<RowsResult> Client::Execute(
    uint32_t stmt_id,
    const std::vector<std::pair<std::string, std::string>>& bindings) {
  std::vector<uint8_t> out;
  EncodeExecute(&out, next_request_id_++, stmt_id, /*open_cursor=*/false,
                bindings);
  DSKG_ASSIGN_OR_RETURN(Response resp, RoundTrip(out));
  if (resp.type != MsgType::kRows) {
    return Status::Internal("expected ROWS, got frame type " +
                            std::to_string(static_cast<int>(resp.type)));
  }
  return std::move(resp.rows);
}

Result<RowsResult> Client::OpenCursor(
    uint32_t stmt_id,
    const std::vector<std::pair<std::string, std::string>>& bindings) {
  std::vector<uint8_t> out;
  EncodeExecute(&out, next_request_id_++, stmt_id, /*open_cursor=*/true,
                bindings);
  DSKG_ASSIGN_OR_RETURN(Response resp, RoundTrip(out));
  if (resp.type != MsgType::kRows) {
    return Status::Internal("expected ROWS, got frame type " +
                            std::to_string(static_cast<int>(resp.type)));
  }
  return std::move(resp.rows);
}

Result<RowsResult> Client::Fetch(uint32_t cursor_id, uint32_t max_rows) {
  std::vector<uint8_t> out;
  WireWriter w(&out);
  const size_t start = w.BeginFrame(MsgType::kFetch, next_request_id_++);
  w.PutU32(cursor_id);
  w.PutU32(max_rows);
  w.FinishFrame(start);
  DSKG_ASSIGN_OR_RETURN(Response resp, RoundTrip(out));
  if (resp.type != MsgType::kRows) {
    return Status::Internal("expected ROWS, got frame type " +
                            std::to_string(static_cast<int>(resp.type)));
  }
  return std::move(resp.rows);
}

Status Client::CloseStmt(uint32_t stmt_id) {
  std::vector<uint8_t> out;
  WireWriter w(&out);
  const size_t start = w.BeginFrame(MsgType::kCloseStmt, next_request_id_++);
  w.PutU32(stmt_id);
  w.FinishFrame(start);
  return RoundTrip(out).status();
}

Status Client::CloseCursor(uint32_t cursor_id) {
  std::vector<uint8_t> out;
  WireWriter w(&out);
  const size_t start = w.BeginFrame(MsgType::kCloseCursor, next_request_id_++);
  w.PutU32(cursor_id);
  w.FinishFrame(start);
  return RoundTrip(out).status();
}

Status Client::Ping() {
  std::vector<uint8_t> out;
  WireWriter w(&out);
  w.FinishFrame(w.BeginFrame(MsgType::kPing, next_request_id_++));
  DSKG_ASSIGN_OR_RETURN(Response resp, RoundTrip(out));
  if (resp.type != MsgType::kPong) {
    return Status::Internal("expected PONG, got frame type " +
                            std::to_string(static_cast<int>(resp.type)));
  }
  return Status::OK();
}

Status Client::SendExecute(
    uint32_t request_id, uint32_t stmt_id,
    const std::vector<std::pair<std::string, std::string>>& bindings) {
  std::vector<uint8_t> out;
  EncodeExecute(&out, request_id, stmt_id, /*open_cursor=*/false, bindings);
  return SendFrame(out);
}

Result<std::string> Client::HttpGet(uint16_t port, const std::string& path,
                                    const std::string& host) {
  DSKG_ASSIGN_OR_RETURN(int fd, DialLoopback(port, host));
  const std::string req = "GET " + path + " HTTP/1.0\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  Status s = WriteAll(fd, req.data(), req.size());
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      resp.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // orderly close (or error with partial data)
  }
  ::close(fd);
  const size_t header_end = resp.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("malformed HTTP response from admin listener");
  }
  if (resp.find("200") == std::string::npos ||
      resp.find("200") > resp.find("\r\n")) {
    const std::string status_line = resp.substr(0, resp.find("\r\n"));
    return Status::NotFound("admin listener: " + status_line);
  }
  return resp.substr(header_end + 4);
}

}  // namespace dskg::server
