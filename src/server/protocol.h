#ifndef DSKG_SERVER_PROTOCOL_H_
#define DSKG_SERVER_PROTOCOL_H_

/// \file protocol.h
/// The DSKG wire protocol: length-prefixed binary frames.
///
/// Every message — request or response — is one frame:
///
///     +----------------+---------+----------------+----------------+
///     | u32 payload_len| u8 type | u32 request_id | body ...       |
///     +----------------+---------+----------------+----------------+
///       little-endian    MsgType    client-chosen    type-specific
///
/// `payload_len` counts everything after itself (type + request_id +
/// body) and is bounded by `kMaxFrameBytes`, so a malformed or hostile
/// peer cannot make the server buffer unbounded input. `request_id` is
/// chosen by the client and echoed verbatim on the response; because
/// batched executions may complete out of order relative to other
/// requests on the same connection, the id — not arrival order — is the
/// correlation key. All integers are little-endian fixed-width; strings
/// are `u32 len + bytes` (no terminator); doubles are IEEE-754 bit
/// patterns moved via `memcpy`.
///
/// Request bodies:
///   PREPARE      u32 stmt_id | str text
///   EXECUTE      u32 stmt_id | u8 open_cursor | u16 n | n x (str, str)
///                  (name/term binding pairs; open_cursor != 0 returns a
///                   cursor_id for FETCH instead of inline rows)
///   FETCH        u32 cursor_id | u32 max_rows
///   CLOSE_STMT   u32 stmt_id
///   CLOSE_CURSOR u32 cursor_id
///   PING         (empty)
///
/// Response bodies:
///   PREPARED     u32 stmt_id | u16 n_params | n x str
///   ROWS         u32 cursor_id (0 = none) | u8 done | str route |
///                f64 rel_us | f64 graph_us | f64 migrate_us |
///                f64 graph_io_us | f64 graph_cpu_us |
///                u16 n_cols | n x str | u32 n_rows | rows x cols str
///                  (cells are dictionary term text, resolved against
///                   the same pinned snapshot that produced the rows)
///   ERROR        u16 wire_code | str message
///   PONG         (empty)
///
/// Error codes mirror `StatusCode` one-for-one so a client can recover
/// the exact server-side `Status`; the overload signal is
/// `WireError::kResourceExhausted` (admission queue full — retry with
/// backoff, the connection stays healthy).

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dskg::server {

/// Hard bound on one frame's payload (16 MiB): past this the peer is
/// protocol-broken and the connection is dropped.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Frame types. Requests are < 128, responses have the high bit set.
enum class MsgType : uint8_t {
  // Requests.
  kPrepare = 1,
  kExecute = 2,
  kFetch = 3,
  kCloseStmt = 4,
  kCloseCursor = 5,
  kPing = 6,
  // Responses.
  kPrepared = 129,
  kRows = 130,
  kError = 131,
  kPong = 132,
};

/// Wire error codes; numerically identical to `StatusCode` (asserted in
/// protocol.cc) so the mapping is a cast, and additions to one enum
/// break the build until mirrored in the other.
enum class WireError : uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,  ///< admission control: bounded queue full
  kCancelled = 5,
  kFailedPrecondition = 6,
  kParseError = 7,
  kIoError = 8,
  kInternal = 9,
};

WireError WireErrorFromStatus(const Status& s);
Status StatusFromWire(WireError code, std::string message);
const char* WireErrorName(WireError code);

/// Appends little-endian scalars / length-prefixed strings to a byte
/// buffer. The writer owns no framing: `FinishFrame` retro-fills the
/// length prefix reserved by `BeginFrame`.
class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}

  /// Reserves the u32 length slot and writes the header; returns the
  /// offset to hand back to `FinishFrame`.
  size_t BeginFrame(MsgType type, uint32_t request_id);
  void FinishFrame(size_t frame_start);

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutLE(v); }
  void PutU32(uint32_t v) { PutLE(v); }
  void PutU64(uint64_t v) { PutLE(v); }
  void PutF64(double v) {
    uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    PutU64(bits);
  }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->insert(out_->end(), s.begin(), s.end());
  }

 private:
  template <typename T>
  void PutLE(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<uint8_t>* out_;
};

/// Reads scalars / strings from one frame's payload with explicit bounds
/// checks — every getter returns false (and poisons the reader) on
/// truncated input, so decoding malformed frames is loss-free and
/// crash-free.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}
  explicit WireReader(const std::vector<uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  bool GetU8(uint8_t* v) { return GetLE(v); }
  bool GetU16(uint16_t* v) { return GetLE(v); }
  bool GetU32(uint32_t* v) { return GetLE(v); }
  bool GetU64(uint64_t* v) { return GetLE(v); }
  bool GetF64(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof bits);
    return true;
  }
  bool GetString(std::string* s);

  bool ok() const { return ok_; }
  /// True when the payload is fully consumed (trailing bytes mean a
  /// mis-encoded frame).
  bool AtEnd() const { return ok_ && p_ == end_; }

 private:
  template <typename T>
  bool GetLE(T* v) {
    if (!ok_ || static_cast<size_t>(end_ - p_) < sizeof(T)) {
      ok_ = false;
      return false;
    }
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(p_[i]) << (8 * i);
    }
    p_ += sizeof(T);
    *v = out;
    return true;
  }
  const uint8_t* p_;
  const uint8_t* end_;
  bool ok_ = true;
};

/// One decoded frame header + payload view (valid while the input
/// buffer is).
struct Frame {
  MsgType type = MsgType::kPing;
  uint32_t request_id = 0;
  const uint8_t* body = nullptr;
  size_t body_size = 0;
};

/// Tries to decode one frame from `buf[offset..]`. Returns:
///   +n  — frame decoded, consumed n bytes total
///    0  — need more bytes
///   -1  — protocol violation (oversized or runt frame): drop the peer
int64_t DecodeFrame(const uint8_t* buf, size_t size, Frame* frame);

/// Encodes an ERROR response frame for `request_id`.
void EncodeError(std::vector<uint8_t>* out, uint32_t request_id,
                 const Status& status);

}  // namespace dskg::server

#endif  // DSKG_SERVER_PROTOCOL_H_
