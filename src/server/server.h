#ifndef DSKG_SERVER_SERVER_H_
#define DSKG_SERVER_SERVER_H_

/// \file server.h
/// The network serving tier: a TCP front end over the online store.
///
/// Shape (KVell's injector/worker split, applied to the read path):
///
///     clients ──▶ acceptor/IO thread ──▶ bounded request queue ──▶
///                 (poll, frame decode,    (admission control)
///                  cheap rejects)
///                                         worker threads on a
///                                         ThreadPool, popping
///                                         BATCHES of requests
///                                         executed under ONE
///                                         epoch pin
///
/// * **Connection handling is cheap.** A single IO thread accepts,
///   reads, and decodes frames (`server/protocol.h`); it never parses,
///   plans, or executes. Malformed frames drop the connection; a PING
///   is answered inline.
/// * **Admission control.** Decoded requests enter a bounded queue
///   (`max_queue_depth`). When the queue is full the IO thread answers
///   RESOURCE_EXHAUSTED *immediately* — overload degrades into cheap,
///   explicit rejections the client can back off on, never into an
///   unbounded queue or a stalled socket.
/// * **Request batching.** A worker pops up to `max_batch` requests and
///   executes them under one `OnlineStore::Read()` pin and one
///   installed `DualStore::SnapshotScope`: one epoch pin and one
///   shared-plan-cache lookup per (text, batch) amortize across every
///   request in the batch, and all of them observe the same snapshot.
/// * **Multi-tenant sessions.** Each connection carries its own
///   statement and cursor tables (ids are per-connection); plans live
///   in the process-wide `core::SharedPlanCache`, so N tenants
///   preparing the same template compile it once per plan epoch.
///   Cursors own a dedicated epoch pin: FETCH streams the snapshot the
///   cursor was opened on no matter how many updates publish meanwhile.
/// * **Responses may interleave.** Workers complete out of order;
///   responses carry the request's id. Writes to one connection are
///   serialized by a per-connection mutex.
///
/// A side admin listener speaks just enough HTTP/1.0 for scraping:
/// `GET /metrics` (Prometheus `MetricsRegistry::DumpText()`),
/// `GET /healthz`, and `GET /debug/slow` (the slow-query log as JSON;
/// entries are tagged `conn=<id>` so slow templates attribute to a
/// tenant).
///
/// Graceful shutdown (`Stop()`, or SIGINT/SIGTERM after
/// `InstallSignalShutdown`): stop accepting, drain the queue and every
/// in-flight request, answer what was admitted, close connections, and
/// — when the store is durable and `checkpoint_on_shutdown` is set —
/// take a final checkpoint so restart replays nothing.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/online_store.h"
#include "core/plan_cache.h"
#include "server/protocol.h"

namespace dskg::server {

struct ServerConfig {
  /// TCP port for the query listener; 0 picks an ephemeral port (read
  /// it back from `port()` after `Start`).
  uint16_t port = 0;

  /// Port for the admin HTTP listener (/metrics, /healthz,
  /// /debug/slow); 0 picks an ephemeral port.
  uint16_t admin_port = 0;

  /// Disables the admin listener entirely.
  bool enable_admin = true;

  /// Worker threads executing request batches.
  int workers = 4;

  /// Admission bound: decoded requests waiting for a worker. A full
  /// queue answers RESOURCE_EXHAUSTED instead of queueing. 0 rejects
  /// every request (useful in tests; a real deployment wants >= the
  /// expected burst).
  size_t max_queue_depth = 256;

  /// Requests one worker executes under a single epoch pin.
  size_t max_batch = 16;

  /// Slow-query threshold wired into the global registry at Start();
  /// <= 0 leaves the registry's current threshold alone.
  double slow_query_ms = 0;

  /// Take a final `OnlineStore::SaveSnapshot()` checkpoint during
  /// `Stop()` (durable stores only).
  bool checkpoint_on_shutdown = false;

  /// Test hook: when set, workers invoke this once per popped batch
  /// *before* executing it (lets tests hold workers to fill the queue
  /// deterministically). Never set in production.
  std::function<void()> test_batch_hook;
};

/// The serving front end. One instance serves one `OnlineStore`.
/// Thread-safe to the extent the store is: any number of concurrent
/// client connections; updates keep going through the store's single
/// injector elsewhere in the process.
class Server {
 public:
  Server(core::OnlineStore* store, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds both listeners and starts the IO thread, the worker pool and
  /// the admin thread. IoError when a port cannot be bound.
  Status Start();

  /// Graceful shutdown: stops accepting, drains admitted requests,
  /// closes every connection, joins all threads, and (when configured)
  /// checkpoints the store. Idempotent.
  void Stop();

  bool started() const { return started_.load(std::memory_order_acquire); }
  bool stopped() const { return stopped_.load(std::memory_order_acquire); }

  /// Bound ports (valid after a successful Start()).
  uint16_t port() const { return port_; }
  uint16_t admin_port() const { return admin_port_; }

  /// The cross-session shared plan cache (all connections plan through
  /// it; exposed for tests and for in-process sessions that want to
  /// share it).
  core::SharedPlanCache& plan_cache() { return plan_cache_; }

  /// Monotone serving counters (exact; mirrored as `server.*` metrics).
  struct Stats {
    uint64_t connections_accepted = 0;
    uint64_t requests_admitted = 0;
    uint64_t requests_rejected = 0;  ///< admission-control rejections
    uint64_t responses_sent = 0;
    uint64_t errors_sent = 0;  ///< ERROR frames (includes rejections)
    uint64_t batches = 0;      ///< worker batches executed
  };
  Stats stats() const;

 private:
  struct Connection;
  struct StmtState;
  struct CursorState;
  struct WorkItem;

  // IO-thread side.
  void IoLoop();
  void AcceptOne();
  void ReadFrom(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn,
                     const Frame& frame);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Marks the connection dead and shuts the socket down (any thread).
  /// The fd itself stays open until the last shared_ptr drops, so
  /// concurrent senders can never hit a recycled descriptor.
  void AbortConnection(const std::shared_ptr<Connection>& conn);

  // Worker side.
  void WorkerLoop();
  void ExecuteBatch(std::vector<WorkItem>* batch);
  void HandleItem(const WorkItem& item, const core::OnlineStore::ReadGuard& g);
  Status HandlePrepare(const WorkItem& item,
                       const core::OnlineStore::ReadGuard& g);
  Status HandleExecute(const WorkItem& item,
                       const core::OnlineStore::ReadGuard& g);
  Status HandleFetch(const WorkItem& item);
  Status HandleClose(const WorkItem& item, bool cursor);

  // Response plumbing. Workers send with may_block=true (bounded
  // flow-control waits); the IO thread sends with may_block=false — it
  // must never stall on one peer's full socket buffer, so a would-block
  // there drops the connection instead.
  void SendBytes(const std::shared_ptr<Connection>& conn,
                 const std::vector<uint8_t>& bytes, bool may_block = true);
  void SendError(const std::shared_ptr<Connection>& conn, uint32_t request_id,
                 const Status& status, bool may_block = true);

  // Admin listener.
  void AdminLoop();
  std::string AdminRespond(const std::string& path) const;

  core::OnlineStore* store_;
  ServerConfig cfg_;
  core::SharedPlanCache plan_cache_;

  int listen_fd_ = -1;
  int admin_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< self-pipe: wakes poll() on Stop()
  uint16_t port_ = 0;
  uint16_t admin_port_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  std::thread io_thread_;
  std::thread admin_thread_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> worker_done_;

  // Connections are owned by the IO thread's table; workers hold
  // shared_ptrs through queued items, so a connection that drops mid-
  // request stays valid until drained. Disconnecting shuts the socket
  // down but closes the fd only in ~Connection (last reference): an
  // in-flight send fails with EPIPE rather than racing a close() and
  // writing into a recycled descriptor owned by a newer client.
  std::mutex conns_mu_;
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  std::atomic<uint64_t> next_conn_id_{1};

  // The bounded request queue (admission control) and drain tracking.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;   ///< signals workers: work or stop
  std::condition_variable drain_cv_;   ///< signals Stop(): all drained
  std::deque<WorkItem> queue_;
  size_t in_flight_ = 0;  ///< popped but not yet answered

  // Telemetry (dedicated cells; registered as server.* metrics).
  struct Cells {
    telemetry::Counter::Cell* accepted;
    telemetry::Counter::Cell* admitted;
    telemetry::Counter::Cell* rejected;
    telemetry::Counter::Cell* responses;
    telemetry::Counter::Cell* errors;
    telemetry::Counter::Cell* batches;
    telemetry::Gauge* open_connections;
    telemetry::Gauge* queue_depth;
    telemetry::Histogram* request_us;
    telemetry::Histogram* batch_size;
  };
  Cells cells_;
};

/// Routes SIGINT/SIGTERM to `server->Stop()` via a self-pipe and a
/// watcher thread (`Stop` is nowhere near async-signal-safe, so the
/// handler only writes one byte). The watcher exits when the server
/// stops. Install at most one server at a time; passing nullptr
/// restores the default disposition.
void InstallSignalShutdown(Server* server);

}  // namespace dskg::server

#endif  // DSKG_SERVER_SERVER_H_
