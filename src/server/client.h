#ifndef DSKG_SERVER_CLIENT_H_
#define DSKG_SERVER_CLIENT_H_

/// \file client.h
/// A small blocking client for the DSKG wire protocol — the reference
/// consumer used by tests, the serving bench, and `examples/
/// dskg_client.cpp`.
///
/// Two usage levels:
///   * Synchronous calls (`Prepare`/`Execute`/`OpenCursor`/`Fetch`/
///     `Close*`/`Ping`): send one request, block for its response.
///     Server-side errors come back as the equivalent `Status` — an
///     admission rejection surfaces as `IsCapacityExceeded()`.
///   * Pipelined sends (`SendExecute` + `Receive`): the open-loop bench
///     keeps many requests in flight on one connection and matches
///     responses by `request_id`.
///
/// `HttpGet` speaks just enough HTTP/1.0 to scrape the admin listener
/// (`/metrics`, `/healthz`, `/debug/slow`).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "server/protocol.h"

namespace dskg::server {

/// One EXECUTE/FETCH result decoded from a ROWS frame. Charges are the
/// server's simulated-cost doubles, bit-identical to a direct
/// `core::Session` execution of the same query.
struct RowsResult {
  uint32_t cursor_id = 0;  ///< non-zero: FETCH from this cursor
  bool done = true;
  std::string route;
  double rel_us = 0;
  double graph_us = 0;
  double migrate_us = 0;
  double graph_io_us = 0;
  double graph_cpu_us = 0;
  std::vector<std::string> columns;
  /// Row-major cells as dictionary term text.
  std::vector<std::vector<std::string>> rows;
};

/// Any decoded response frame (pipelined mode).
struct Response {
  uint32_t request_id = 0;
  MsgType type = MsgType::kPong;
  Status error = Status::OK();       ///< set when type == kError
  RowsResult rows;                   ///< set when type == kRows
  uint32_t stmt_id = 0;              ///< set when type == kPrepared
  std::vector<std::string> params;   ///< set when type == kPrepared
};

/// A blocking connection to a `dskg::server::Server`. Not thread-safe;
/// one client per thread (connections are cheap).
class Client {
 public:
  static Result<Client> Connect(uint16_t port,
                                const std::string& host = "127.0.0.1");
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Registers `text` under the client-chosen `stmt_id`; returns the
  /// statement's `$parameter` names.
  Result<std::vector<std::string>> Prepare(uint32_t stmt_id,
                                           std::string_view text);

  /// Executes a prepared statement with `(name, term)` bindings and
  /// returns all rows inline.
  Result<RowsResult> Execute(
      uint32_t stmt_id,
      const std::vector<std::pair<std::string, std::string>>& bindings = {});

  /// Opens a server-side streaming cursor; the result carries the
  /// cursor_id and header but no rows — pull them with `Fetch`.
  Result<RowsResult> OpenCursor(
      uint32_t stmt_id,
      const std::vector<std::pair<std::string, std::string>>& bindings = {});

  /// Next chunk (<= max_rows) from a cursor. `done` set on the final
  /// chunk; charges are cumulative for the cursor so far.
  Result<RowsResult> Fetch(uint32_t cursor_id, uint32_t max_rows);

  Status CloseStmt(uint32_t stmt_id);
  Status CloseCursor(uint32_t cursor_id);
  Status Ping();

  // -- pipelined mode --------------------------------------------------------

  /// Fire-and-forget EXECUTE with an explicit request id; match the
  /// response by id via `Receive`.
  Status SendExecute(
      uint32_t request_id, uint32_t stmt_id,
      const std::vector<std::pair<std::string, std::string>>& bindings);

  /// Blocks for the next response frame (any request id).
  Result<Response> Receive();

  // -- admin listener --------------------------------------------------------

  /// Blocking one-shot HTTP GET against the admin listener; returns the
  /// response body (Status error on non-200).
  static Result<std::string> HttpGet(uint16_t port, const std::string& path,
                                     const std::string& host = "127.0.0.1");

 private:
  explicit Client(int fd) : fd_(fd) {}

  Status SendFrame(const std::vector<uint8_t>& bytes);
  /// Reads exactly one frame (length prefix + payload) into `*payload`.
  Status ReadFrame(std::vector<uint8_t>* payload);
  /// Sends one request and decodes its (sequential) response.
  Result<Response> RoundTrip(const std::vector<uint8_t>& frame);

  uint32_t next_request_id_ = 1;
  int fd_ = -1;
};

}  // namespace dskg::server

#endif  // DSKG_SERVER_CLIENT_H_
