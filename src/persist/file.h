#ifndef DSKG_PERSIST_FILE_H_
#define DSKG_PERSIST_FILE_H_

/// \file file.h
/// The persistence tier's file abstraction: a minimal POSIX-backed
/// `WritableFile` (append / sync / close), whole-file reads, and the
/// directory helpers the WAL and snapshot managers need (atomic
/// temp+rename publication, listing, deletion).
///
/// Every write path goes through the `WritableFile` interface so the
/// fault-injection harness can interpose: `FaultInjector` wraps files and
/// deterministically fails, shortens, tears or corrupts the Nth I/O of a
/// run — the crash matrix in tests/persist/recovery_test.cc drives
/// recovery through every such failure point and asserts the store always
/// comes back as a valid batch-prefix, never corrupt.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dskg::persist {

/// Append-only output file. Not thread-safe (single writer).
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Forces written data to stable storage (fdatasync).
  virtual Status Sync() = 0;

  /// Closes the descriptor. Idempotent; the destructor closes too (but
  /// swallows errors — call Close to observe them).
  virtual Status Close() = 0;

  /// Bytes appended so far through this handle.
  virtual uint64_t offset() const = 0;
};

/// Wraps a freshly opened writable file; the persistence managers route
/// every file they open through the configured wrapper so tests can
/// substitute a `FaultInjector`-controlled file. Identity when null.
using WritableWrapper = std::function<std::unique_ptr<WritableFile>(
    std::unique_ptr<WritableFile> inner, const std::string& path)>;

/// Opens `path` for appending. `truncate` discards existing contents;
/// otherwise appends at the current end (the WAL-reopen path).
Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                   bool truncate);

/// Reads the whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

Status CreateDirIfMissing(const std::string& dir);
Result<std::vector<std::string>> ListDir(const std::string& dir);
bool FileExists(const std::string& path);
Result<uint64_t> FileSize(const std::string& path);
Status RemoveFile(const std::string& path);
Status RenameFile(const std::string& from, const std::string& to);
Status TruncateFile(const std::string& path, uint64_t size);

/// Fsyncs the directory entry itself so renames/creates/unlinks in it are
/// durable (a rename without it can vanish on power loss).
Status SyncDir(const std::string& dir);

// ---- fault injection --------------------------------------------------------

/// What to do to the Nth I/O of a run.
enum class FaultKind {
  kNone,        ///< passthrough
  kFailWrite,   ///< the write fails cleanly: no bytes land, error returned
  kShortWrite,  ///< a prefix lands, then an error (interrupted write)
  kTornWrite,   ///< a prefix lands but the write *claims success*; every
                ///< later I/O is silently swallowed (power loss with data
                ///< stuck in the page cache)
  kFlipByte,    ///< one byte of the write is corrupted silently; the run
                ///< continues (bit rot / firmware bug)
  kFailSync,    ///< the first sync at or after the Nth I/O fails
};

struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  /// 0-based index of the I/O operation (appends and syncs both count,
  /// across every file the injector wraps) at which the fault fires.
  uint64_t at_io = 0;
  /// Drives the deterministic choice of prefix length / flipped byte.
  uint64_t seed = 0;
};

/// Shared fault state for one simulated process run: counts I/Os across
/// every file opened through `Wrapper()` so "the Nth I/O of the run" is
/// well defined no matter which file it lands on. After a crash-class
/// fault (fail/short/torn) fires, the injector is *dead*: every later
/// write on every wrapped file fails (or, for torn writes, silently
/// disappears) — the process is considered gone and the test recovers
/// from whatever reached the disk.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// The wrapper to install in `DurabilityOptions::wrap_writable`.
  WritableWrapper Wrapper();

  /// True once the fault has fired.
  bool triggered() const { return triggered_; }

  /// I/O operations observed so far.
  uint64_t io_count() const { return io_count_; }

 private:
  friend class FaultInjectingFile;
  FaultPlan plan_;
  uint64_t io_count_ = 0;
  bool triggered_ = false;
  bool dead_ = false;        ///< crash-class fault fired: writes fail
  bool silent_dead_ = false; ///< torn write: writes vanish but "succeed"
};

/// A `WritableFile` under `FaultInjector` control (see `FaultKind`).
class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(std::unique_ptr<WritableFile> inner,
                     FaultInjector* injector)
      : inner_(std::move(inner)), injector_(injector) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override { return inner_->Close(); }
  uint64_t offset() const override { return inner_->offset(); }

 private:
  std::unique_ptr<WritableFile> inner_;
  FaultInjector* injector_;
};

}  // namespace dskg::persist

#endif  // DSKG_PERSIST_FILE_H_
