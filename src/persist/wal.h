#ifndef DSKG_PERSIST_WAL_H_
#define DSKG_PERSIST_WAL_H_

/// \file wal.h
/// Write-ahead log for the online store's update batches.
///
/// Record format (little-endian):
///
///   +-----------+-----------+----------------------+
///   | u32 crc32c| u32 len   | payload (len bytes)  |
///   +-----------+-----------+----------------------+
///
/// `crc` covers the payload (an `EncodeUpdateBatch` image carrying its
/// batch id). A record is valid iff it is fully framed and its checksum
/// matches; a partial tail (crash mid-append) is dropped cleanly, and a
/// checksum failure on a fully framed record is *corruption*, reported
/// via `Status` with every earlier record still usable.
///
/// Segments: one WAL file per snapshot interval, named
/// `wal-<first_batch_id>.log`. After a snapshot at watermark W commits,
/// the writer rotates to `wal-W.log`; segments whose entire id range is
/// below the oldest retained snapshot's watermark are deleted.
///
/// Sync policy: every batch (durable once `Append` returns), every N
/// batches, or on a wall-clock timer — the classic durability/throughput
/// dial, measured by the `persist.wal.append_us` / `persist.fsync_us`
/// histograms and swept by bench/bench_persistence.cc.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/update.h"
#include "persist/file.h"

namespace dskg::persist {

enum class SyncPolicy {
  kEveryBatch,  ///< fsync after every record (full durability)
  kEveryN,      ///< fsync after every `sync_every_n` records
  kInterval,    ///< fsync when `sync_interval_ms` elapsed since the last
  kNever,       ///< rely on the OS (rotation/close still sync)
};

/// Durability configuration for an `OnlineStore` (and the recovery entry
/// point's input). `dir` holds snapshots and WAL segments side by side.
struct DurabilityOptions {
  std::string dir;
  SyncPolicy sync_policy = SyncPolicy::kEveryBatch;
  uint64_t sync_every_n = 8;
  double sync_interval_ms = 50.0;
  /// Newest snapshots kept on disk; older ones (and the WAL segments
  /// only they need) are pruned after each successful snapshot. Keeping
  /// >= 2 lets recovery fall back to the previous snapshot when the
  /// newest fails its checksum.
  int keep_snapshots = 2;
  /// Test seam: every file the persistence tier opens for writing is
  /// routed through this wrapper (see `FaultInjector`). Null = identity.
  WritableWrapper wrap_writable;
};

/// File names. Batch ids are zero-padded so lexicographic = numeric order.
std::string WalSegmentName(uint64_t first_batch_id);
std::string SnapshotFileName(uint64_t watermark);
/// Parses `wal-<id>.log` / `snapshot-<id>.dskg`; false when `name` is not
/// of that form.
bool ParseWalSegmentName(const std::string& name, uint64_t* first_batch_id);
bool ParseSnapshotFileName(const std::string& name, uint64_t* watermark);

/// Appends checksummed batch records to one WAL segment.
class WalWriter {
 public:
  /// Opens (creates/truncates) segment `wal-<first_batch_id>.log` in
  /// `opts.dir`, routed through `opts.wrap_writable`.
  static Result<std::unique_ptr<WalWriter>> Open(const DurabilityOptions& opts,
                                                 uint64_t first_batch_id);

  /// Appends one record under `batch_id` (the id the store sequences the
  /// batch as, which may differ from `batch.batch_id` when the caller
  /// assigns ids at apply time) and applies the sync policy. An error
  /// means the record may be torn on disk — recovery drops invalid tails,
  /// so the caller treats the batch as not durable and must not apply it.
  Status Append(const core::UpdateBatch& batch, uint64_t batch_id);

  /// Forces an fsync regardless of policy.
  Status Sync();

  /// Syncs and closes the segment.
  Status Close();

  uint64_t first_batch_id() const { return first_batch_id_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::unique_ptr<WritableFile> file, std::string path,
            uint64_t first_batch_id, const DurabilityOptions& opts);

  std::unique_ptr<WritableFile> file_;
  std::string path_;
  uint64_t first_batch_id_;
  SyncPolicy policy_;
  uint64_t sync_every_n_;
  double sync_interval_ms_;
  uint64_t unsynced_records_ = 0;
  double last_sync_ms_ = 0;  // steady-clock ms of the last sync
};

/// Result of scanning one WAL segment.
struct WalScanResult {
  /// Every valid record in file order, batch ids decoded.
  std::vector<core::UpdateBatch> batches;
  /// File offset one past the last valid record (the truncation point a
  /// re-opened writer appends at).
  uint64_t valid_bytes = 0;
  /// OK when the file ends exactly at a record boundary or with a bare
  /// partial tail (the expected crash shape). A checksum/decode failure
  /// on a fully framed record reports IoError here — the records
  /// *before* it are still returned and usable (graceful degradation).
  Status tail_status = Status::OK();
  /// True when bytes past `valid_bytes` were dropped (either shape).
  bool dropped_tail = false;
};

/// Scans segment file `path` (absent file = empty result, not an error).
Result<WalScanResult> ScanWalFile(const std::string& path);

}  // namespace dskg::persist

#endif  // DSKG_PERSIST_WAL_H_
