#include "persist/file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace dskg::persist {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " " + path + ": " + std::strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path, uint64_t offset)
      : fd_(fd), path_(std::move(path)), offset_(offset) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
      offset_ += static_cast<uint64_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fdatasync(fd_) != 0) return Errno("fdatasync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close", path_);
    return Status::OK();
  }

  uint64_t offset() const override { return offset_; }

 private:
  int fd_;
  std::string path_;
  uint64_t offset_;
};

}  // namespace

Result<std::unique_ptr<WritableFile>> OpenWritable(const std::string& path,
                                                   bool truncate) {
  const int flags =
      O_WRONLY | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : O_APPEND);
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return Errno("open", path);
  uint64_t offset = 0;
  if (!truncate) {
    const off_t end = ::lseek(fd, 0, SEEK_END);
    if (end < 0) {
      ::close(fd);
      return Errno("lseek", path);
    }
    offset = static_cast<uint64_t>(end);
  }
  return std::unique_ptr<WritableFile>(
      new PosixWritableFile(fd, path, offset));
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Errno("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status CreateDirIfMissing(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::OK();
  }
  return Errno("mkdir", dir);
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> out;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name == "." || name == "..") continue;
    out.push_back(name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return Errno("unlink", path);
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return Status::OK();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync", dir);
  return Status::OK();
}

// ---- fault injection --------------------------------------------------------

WritableWrapper FaultInjector::Wrapper() {
  return [this](std::unique_ptr<WritableFile> inner, const std::string&) {
    return std::unique_ptr<WritableFile>(
        new FaultInjectingFile(std::move(inner), this));
  };
}

Status FaultInjectingFile::Append(std::string_view data) {
  FaultInjector& inj = *injector_;
  if (inj.silent_dead_) return Status::OK();  // torn: bytes vanish silently
  if (inj.dead_) return Status::IoError("injected: process crashed");
  const uint64_t io = inj.io_count_++;
  const bool fire = !inj.triggered_ && inj.plan_.kind != FaultKind::kNone &&
                    inj.plan_.kind != FaultKind::kFailSync &&
                    io >= inj.plan_.at_io;
  if (!fire) return inner_->Append(data);
  inj.triggered_ = true;
  // Deterministic split point / corrupt byte from the seed and the io
  // index (xorshift so nearby seeds diverge).
  uint64_t h = inj.plan_.seed ^ (io * 0x9E3779B97F4A7C15ull);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 29;
  switch (inj.plan_.kind) {
    case FaultKind::kFailWrite:
      inj.dead_ = true;
      return Status::IoError("injected: write failed");
    case FaultKind::kShortWrite: {
      const size_t keep = data.empty() ? 0 : h % data.size();
      inj.dead_ = true;
      if (keep > 0) (void)inner_->Append(data.substr(0, keep));
      return Status::IoError("injected: short write (" +
                             std::to_string(keep) + "/" +
                             std::to_string(data.size()) + " bytes)");
    }
    case FaultKind::kTornWrite: {
      const size_t keep = data.empty() ? 0 : h % data.size();
      inj.silent_dead_ = true;
      if (keep > 0) (void)inner_->Append(data.substr(0, keep));
      return Status::OK();  // lies: claims the full write landed
    }
    case FaultKind::kFlipByte: {
      std::string corrupt(data);
      if (!corrupt.empty()) {
        const size_t pos = h % corrupt.size();
        corrupt[pos] = static_cast<char>(
            corrupt[pos] ^ static_cast<char>(1 + ((h >> 32) & 0xFF) % 255));
      }
      return inner_->Append(corrupt);  // run continues; corruption latent
    }
    case FaultKind::kNone:
    case FaultKind::kFailSync:
      break;  // unreachable (filtered by `fire`)
  }
  return inner_->Append(data);
}

Status FaultInjectingFile::Sync() {
  FaultInjector& inj = *injector_;
  if (inj.silent_dead_) return Status::OK();
  if (inj.dead_) return Status::IoError("injected: process crashed");
  const uint64_t io = inj.io_count_++;
  if (!inj.triggered_ && inj.plan_.kind == FaultKind::kFailSync &&
      io >= inj.plan_.at_io) {
    inj.triggered_ = true;
    inj.dead_ = true;
    return Status::IoError("injected: fsync failed");
  }
  return inner_->Sync();
}

}  // namespace dskg::persist
