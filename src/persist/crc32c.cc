#include "persist/crc32c.h"

namespace dskg::persist {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  uint32_t t[4][256];
  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? (c >> 1) ^ kPoly : c >> 1;
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = T();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  // Slicing-by-4: fold four bytes per step through the four tables.
  while (n >= 4) {
    c ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
    c = tb.t[3][c & 0xFF] ^ tb.t[2][(c >> 8) & 0xFF] ^
        tb.t[1][(c >> 16) & 0xFF] ^ tb.t[0][(c >> 24) & 0xFF];
    p += 4;
    n -= 4;
  }
  while (n-- > 0) {
    c = (c >> 8) ^ tb.t[0][(c ^ *p++) & 0xFF];
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace dskg::persist
