#ifndef DSKG_PERSIST_SNAPSHOT_H_
#define DSKG_PERSIST_SNAPSHOT_H_

/// \file snapshot.h
/// Checksummed, section-framed store snapshots with footer commit.
///
/// File layout (little-endian):
///
///   +----------------------+  "DSKGSNP1" magic + u32 version
///   | header               |
///   +----------------------+  repeated num_sections times:
///   | section              |  u32 section_id | u32 crc32c(payload) |
///   |                      |  u64 len | payload
///   +----------------------+
///   | footer               |  u64 watermark |
///   |                      |  num_sections x (u32 id | u32 crc) |
///   |                      |  u32 num_sections | u32 crc32c(footer) |
///   |                      |  "DSKGEND1" magic
///   +----------------------+
///
/// The footer is written, synced and published (temp file + rename +
/// directory fsync) *after* every section, so a torn snapshot simply has
/// no valid footer and is never loaded; the per-section CRCs (stored both
/// inline and in the footer, which carries its own CRC) catch every
/// bit flip. Recovery falls back to the next-older snapshot when the
/// newest fails validation — `DurabilityOptions::keep_snapshots` keeps
/// that fallback on disk.
///
/// Sections (ids are part of the format; unknown ids are an error):
///   1 config    — shard/slice layout the image depends on
///   2 dataset   — triples + partition stats + full dictionary image
///   3 table     — triple table slab images (all three permutation trees)
///   4 residency — predicate ids resident in the graph store

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/dual_store.h"
#include "persist/file.h"
#include "rdf/dataset.h"

namespace dskg::persist {

inline constexpr uint32_t kSnapshotVersion = 1;

inline constexpr uint32_t kSectionConfig = 1;
inline constexpr uint32_t kSectionDataset = 2;
inline constexpr uint32_t kSectionTable = 3;
inline constexpr uint32_t kSectionResidency = 4;

/// Streams sections into one snapshot file. `Finish` commits: a file
/// without its footer (crash before `Finish` returned) never validates.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::unique_ptr<WritableFile> file);

  /// Appends one checksummed section (the header goes out first).
  Status AddSection(uint32_t section_id, std::string_view payload);

  /// Writes the footer for watermark `watermark`, syncs and closes.
  Status Finish(uint64_t watermark);

 private:
  std::unique_ptr<WritableFile> file_;
  std::vector<std::pair<uint32_t, uint32_t>> section_crcs_;
  bool wrote_header_ = false;
};

/// A parsed, fully checksum-verified snapshot file.
struct RawSnapshot {
  uint32_t version = 0;
  uint64_t watermark = 0;
  std::vector<std::pair<uint32_t, std::string>> sections;  // (id, payload)

  const std::string* Section(uint32_t id) const {
    for (const auto& [sid, payload] : sections) {
      if (sid == id) return &payload;
    }
    return nullptr;
  }
};

/// Reads and validates `path` end to end: header magic/version, footer
/// commit, footer CRC, and every section CRC against both the inline and
/// the footer copy. Any mismatch is an IoError — corrupt or torn
/// snapshots are never partially loaded.
Result<RawSnapshot> ReadSnapshotFile(const std::string& path);

// ---- store-level save/load --------------------------------------------------

/// Serializes `store` (dataset + dictionary, triple table slabs, graph
/// residency, layout config) at WAL watermark `watermark` into `path`,
/// routed through `wrap` (null = identity). The caller publishes the file
/// atomically (temp + rename). Quiescent only: call between batches,
/// after reclamation. Records `persist.snapshot.save_us` and
/// `persist.snapshot.bytes`.
Status SaveStoreSnapshot(const core::DualStore& store, uint64_t watermark,
                         const std::string& path, const WritableWrapper& wrap);

/// Everything `LoadStoreSnapshot` recovers from one file. The dataset is
/// fully rebuilt; the table section stays an opaque payload the store
/// restore path deserializes into its own freshly constructed table.
struct LoadedSnapshot {
  uint64_t watermark = 0;
  /// Layout the image was saved under; recovery must match it.
  int num_shards = 1;
  int dict_slices = 1;
  rdf::Dataset dataset;
  std::string table_payload;
  std::vector<rdf::TermId> resident_predicates;
};

/// Loads and validates `path` into a `LoadedSnapshot`. Records
/// `persist.snapshot.load_us`.
Result<LoadedSnapshot> LoadStoreSnapshot(const std::string& path);

}  // namespace dskg::persist

#endif  // DSKG_PERSIST_SNAPSHOT_H_
