#ifndef DSKG_PERSIST_CRC32C_H_
#define DSKG_PERSIST_CRC32C_H_

/// \file crc32c.h
/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
/// checksum guarding every WAL record and snapshot section. Software
/// slicing-by-4 implementation; no hardware intrinsics so the value is
/// identical on every build. Known vector: Crc32c("123456789", 9) ==
/// 0xE3069283 (the iSCSI test vector), pinned by tests/persist/codec_test.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dskg::persist {

/// Extends `crc` (state from a previous call, 0 to start) over `n` bytes.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

inline uint32_t Crc32c(std::string_view s) {
  return Crc32cExtend(0, s.data(), s.size());
}

}  // namespace dskg::persist

#endif  // DSKG_PERSIST_CRC32C_H_
