#include "persist/wal.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "common/bytes.h"
#include "common/telemetry.h"
#include "persist/crc32c.h"

namespace dskg::persist {

namespace {

constexpr size_t kRecordHeader = 8;  // u32 crc + u32 len
// A single batch record larger than this is malformed (the generator's
// batches are a few hundred KiB at most); bounds a corrupt length prefix.
constexpr uint32_t kMaxRecordLen = 1u << 30;

double SteadyMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct WalMetrics {
  telemetry::Histogram* append_us;
  telemetry::Histogram* fsync_us;
  telemetry::Counter* records;
  telemetry::Counter* bytes;
};

const WalMetrics& Wm() {
  static const WalMetrics m = [] {
    auto& reg = telemetry::MetricsRegistry::Global();
    return WalMetrics{reg.histogram("persist.wal.append_us"),
                      reg.histogram("persist.fsync_us"),
                      reg.counter("persist.wal.records"),
                      reg.counter("persist.wal.bytes")};
  }();
  return m;
}

std::string NumberedName(const char* prefix, uint64_t n, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%020" PRIu64 "%s", prefix, n, suffix);
  return buf;
}

bool ParseNumberedName(const std::string& name, const std::string& prefix,
                       const std::string& suffix, uint64_t* n) {
  if (name.size() != prefix.size() + 20 + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    v = v * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *n = v;
  return true;
}

}  // namespace

std::string WalSegmentName(uint64_t first_batch_id) {
  return NumberedName("wal-", first_batch_id, ".log");
}

std::string SnapshotFileName(uint64_t watermark) {
  return NumberedName("snapshot-", watermark, ".dskg");
}

bool ParseWalSegmentName(const std::string& name, uint64_t* first_batch_id) {
  return ParseNumberedName(name, "wal-", ".log", first_batch_id);
}

bool ParseSnapshotFileName(const std::string& name, uint64_t* watermark) {
  return ParseNumberedName(name, "snapshot-", ".dskg", watermark);
}

WalWriter::WalWriter(std::unique_ptr<WritableFile> file, std::string path,
                     uint64_t first_batch_id, const DurabilityOptions& opts)
    : file_(std::move(file)),
      path_(std::move(path)),
      first_batch_id_(first_batch_id),
      policy_(opts.sync_policy),
      sync_every_n_(opts.sync_every_n == 0 ? 1 : opts.sync_every_n),
      sync_interval_ms_(opts.sync_interval_ms),
      last_sync_ms_(SteadyMs()) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const DurabilityOptions& opts, uint64_t first_batch_id) {
  const std::string path = opts.dir + "/" + WalSegmentName(first_batch_id);
  DSKG_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        OpenWritable(path, /*truncate=*/true));
  if (opts.wrap_writable) file = opts.wrap_writable(std::move(file), path);
  return std::unique_ptr<WalWriter>(
      new WalWriter(std::move(file), path, first_batch_id, opts));
}

Status WalWriter::Append(const core::UpdateBatch& batch, uint64_t batch_id) {
  auto& reg = telemetry::MetricsRegistry::Global();
  const bool telem = reg.enabled();
  const double t0 = telem ? reg.NowMicros() : 0;

  std::string payload;
  EncodeUpdateBatch(batch, batch_id, &payload);
  std::string frame;
  frame.reserve(kRecordHeader + payload.size());
  PutU32(&frame, Crc32c(payload));
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  DSKG_RETURN_NOT_OK(file_->Append(frame));
  ++unsynced_records_;

  bool want_sync = false;
  switch (policy_) {
    case SyncPolicy::kEveryBatch:
      want_sync = true;
      break;
    case SyncPolicy::kEveryN:
      want_sync = unsynced_records_ >= sync_every_n_;
      break;
    case SyncPolicy::kInterval:
      want_sync = SteadyMs() - last_sync_ms_ >= sync_interval_ms_;
      break;
    case SyncPolicy::kNever:
      break;
  }
  if (want_sync) DSKG_RETURN_NOT_OK(Sync());

  if (telem) {
    Wm().append_us->Record(reg.NowMicros() - t0);
    Wm().records->Add();
    Wm().bytes->Add(frame.size());
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  auto& reg = telemetry::MetricsRegistry::Global();
  const bool telem = reg.enabled();
  const double t0 = telem ? reg.NowMicros() : 0;
  DSKG_RETURN_NOT_OK(file_->Sync());
  if (telem) Wm().fsync_us->Record(reg.NowMicros() - t0);
  unsynced_records_ = 0;
  last_sync_ms_ = SteadyMs();
  return Status::OK();
}

Status WalWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status s = file_->Sync();
  Status c = file_->Close();
  file_.reset();
  DSKG_RETURN_NOT_OK(s);
  return c;
}

Result<WalScanResult> ScanWalFile(const std::string& path) {
  WalScanResult out;
  if (!FileExists(path)) return out;
  DSKG_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  size_t pos = 0;
  while (pos < data.size()) {
    if (data.size() - pos < kRecordHeader) {
      out.dropped_tail = true;  // bare partial header: clean crash tail
      break;
    }
    ByteReader header(std::string_view(data).substr(pos, kRecordHeader));
    uint32_t crc = 0, len = 0;
    (void)header.ReadU32(&crc);
    (void)header.ReadU32(&len);
    if (len > kMaxRecordLen) {
      out.dropped_tail = true;
      out.tail_status = Status::IoError(
          path + ": implausible record length " + std::to_string(len) +
          " at offset " + std::to_string(pos) + " (corrupt header)");
      break;
    }
    if (data.size() - pos - kRecordHeader < len) {
      out.dropped_tail = true;  // payload ran past EOF: clean crash tail
      break;
    }
    const std::string_view payload =
        std::string_view(data).substr(pos + kRecordHeader, len);
    if (Crc32c(payload) != crc) {
      out.dropped_tail = true;
      out.tail_status = Status::IoError(path + ": checksum mismatch at offset " +
                                        std::to_string(pos));
      break;
    }
    core::UpdateBatch batch;
    ByteReader body(payload);
    Status decoded = DecodeUpdateBatch(&body, &batch);
    if (!decoded.ok() || !body.AtEnd()) {
      out.dropped_tail = true;
      out.tail_status = Status::IoError(
          path + ": undecodable record at offset " + std::to_string(pos) +
          (decoded.ok() ? " (trailing payload bytes)"
                        : ": " + decoded.ToString()));
      break;
    }
    out.batches.push_back(std::move(batch));
    pos += kRecordHeader + len;
    out.valid_bytes = pos;
  }
  return out;
}

}  // namespace dskg::persist
