#include "persist/snapshot.h"

#include <utility>

#include "common/bytes.h"
#include "common/telemetry.h"
#include "persist/crc32c.h"

namespace dskg::persist {

namespace {

constexpr char kHeaderMagic[8] = {'D', 'S', 'K', 'G', 'S', 'N', 'P', '1'};
constexpr char kFooterMagic[8] = {'D', 'S', 'K', 'G', 'E', 'N', 'D', '1'};
constexpr size_t kHeaderSize = 8 + 4;           // magic + version
constexpr size_t kFooterFixedSize = 8 + 4 + 4 + 8;  // wm + n + crc + magic
constexpr size_t kSectionHeader = 4 + 4 + 8;    // id + crc + len

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IoError(path + ": " + what);
}

}  // namespace

SnapshotWriter::SnapshotWriter(std::unique_ptr<WritableFile> file)
    : file_(std::move(file)) {}

Status SnapshotWriter::AddSection(uint32_t section_id,
                                  std::string_view payload) {
  if (!wrote_header_) {
    std::string header(kHeaderMagic, sizeof(kHeaderMagic));
    PutU32(&header, kSnapshotVersion);
    DSKG_RETURN_NOT_OK(file_->Append(header));
    wrote_header_ = true;
  }
  const uint32_t crc = Crc32c(payload);
  std::string frame;
  frame.reserve(kSectionHeader + payload.size());
  PutU32(&frame, section_id);
  PutU32(&frame, crc);
  PutU64(&frame, payload.size());
  frame.append(payload);
  DSKG_RETURN_NOT_OK(file_->Append(frame));
  section_crcs_.emplace_back(section_id, crc);
  return Status::OK();
}

Status SnapshotWriter::Finish(uint64_t watermark) {
  if (!wrote_header_) {
    std::string header(kHeaderMagic, sizeof(kHeaderMagic));
    PutU32(&header, kSnapshotVersion);
    DSKG_RETURN_NOT_OK(file_->Append(header));
    wrote_header_ = true;
  }
  std::string footer;
  PutU64(&footer, watermark);
  for (const auto& [id, crc] : section_crcs_) {
    PutU32(&footer, id);
    PutU32(&footer, crc);
  }
  PutU32(&footer, static_cast<uint32_t>(section_crcs_.size()));
  PutU32(&footer, Crc32c(footer));
  footer.append(kFooterMagic, sizeof(kFooterMagic));
  DSKG_RETURN_NOT_OK(file_->Append(footer));
  DSKG_RETURN_NOT_OK(file_->Sync());
  return file_->Close();
}

Result<RawSnapshot> ReadSnapshotFile(const std::string& path) {
  DSKG_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  if (data.size() < kHeaderSize + kFooterFixedSize) {
    return Corrupt(path, "snapshot too short (no footer commit)");
  }
  if (data.compare(0, sizeof(kHeaderMagic), kHeaderMagic,
                   sizeof(kHeaderMagic)) != 0) {
    return Corrupt(path, "bad snapshot magic");
  }
  RawSnapshot out;
  {
    ByteReader version(std::string_view(data).substr(8, 4));
    (void)version.ReadU32(&out.version);
  }
  if (out.version != kSnapshotVersion) {
    return Corrupt(path, "unsupported snapshot version " +
                             std::to_string(out.version));
  }
  if (data.compare(data.size() - sizeof(kFooterMagic), sizeof(kFooterMagic),
                   kFooterMagic, sizeof(kFooterMagic)) != 0) {
    return Corrupt(path, "missing footer magic (torn snapshot)");
  }
  uint32_t num_sections = 0, footer_crc = 0;
  {
    ByteReader tail(std::string_view(data).substr(data.size() - 16, 8));
    (void)tail.ReadU32(&num_sections);
    (void)tail.ReadU32(&footer_crc);
  }
  // Footer payload = watermark + per-section entries + the count itself.
  const uint64_t footer_payload = 8 + uint64_t{num_sections} * 8 + 4;
  if (footer_payload + 12 + kHeaderSize > data.size()) {
    return Corrupt(path, "footer section count out of range");
  }
  const size_t footer_start = data.size() - 12 - footer_payload;
  const std::string_view footer =
      std::string_view(data).substr(footer_start, footer_payload);
  if (Crc32c(footer) != footer_crc) {
    return Corrupt(path, "footer checksum mismatch");
  }
  ByteReader fr(footer);
  (void)fr.ReadU64(&out.watermark);
  std::vector<std::pair<uint32_t, uint32_t>> expected(num_sections);
  for (auto& [id, crc] : expected) {
    (void)fr.ReadU32(&id);
    (void)fr.ReadU32(&crc);
  }
  // Walk the sections; every one must match its footer entry exactly.
  size_t pos = kHeaderSize;
  out.sections.reserve(num_sections);
  for (uint32_t i = 0; i < num_sections; ++i) {
    if (footer_start - pos < kSectionHeader) {
      return Corrupt(path, "section " + std::to_string(i) + " truncated");
    }
    ByteReader sh(std::string_view(data).substr(pos, kSectionHeader));
    uint32_t id = 0, crc = 0;
    uint64_t len = 0;
    (void)sh.ReadU32(&id);
    (void)sh.ReadU32(&crc);
    (void)sh.ReadU64(&len);
    if (len > footer_start - pos - kSectionHeader) {
      return Corrupt(path, "section " + std::to_string(i) + " overruns file");
    }
    const std::string_view payload =
        std::string_view(data).substr(pos + kSectionHeader, len);
    if (id != expected[i].first || crc != expected[i].second) {
      return Corrupt(path,
                     "section " + std::to_string(i) + " disagrees with footer");
    }
    if (Crc32c(payload) != crc) {
      return Corrupt(path, "section " + std::to_string(i) +
                               " (id " + std::to_string(id) +
                               ") checksum mismatch");
    }
    out.sections.emplace_back(id, std::string(payload));
    pos += kSectionHeader + len;
  }
  if (pos != footer_start) {
    return Corrupt(path, "trailing bytes between sections and footer");
  }
  return out;
}

// ---- store-level save/load --------------------------------------------------

Status SaveStoreSnapshot(const core::DualStore& store, uint64_t watermark,
                         const std::string& path,
                         const WritableWrapper& wrap) {
  auto& reg = telemetry::MetricsRegistry::Global();
  const bool telem = reg.enabled();
  const double t0 = telem ? reg.NowMicros() : 0;

  DSKG_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                        OpenWritable(path, /*truncate=*/true));
  if (wrap) file = wrap(std::move(file), path);
  SnapshotWriter writer(std::move(file));

  std::string config;
  const core::DualStoreConfig& cfg = store.config();
  PutU32(&config, static_cast<uint32_t>(store.table().num_shards()));
  PutU32(&config, static_cast<uint32_t>(store.dataset().dict().num_slices()));
  PutU8(&config, cfg.use_graph ? 1 : 0);
  PutU8(&config, cfg.use_views ? 1 : 0);
  PutU64(&config, cfg.graph_capacity_triples);
  PutU64(&config, cfg.views_budget_rows);
  DSKG_RETURN_NOT_OK(writer.AddSection(kSectionConfig, config));

  std::string dataset;
  DSKG_RETURN_NOT_OK(store.dataset().SerializeTo(&dataset));
  DSKG_RETURN_NOT_OK(writer.AddSection(kSectionDataset, dataset));

  std::string table;
  DSKG_RETURN_NOT_OK(store.table().SerializeTo(&table));
  DSKG_RETURN_NOT_OK(writer.AddSection(kSectionTable, table));

  std::string residency;
  const std::vector<rdf::TermId> resident = store.graph().LoadedPredicates();
  PutU64(&residency, resident.size());
  for (const rdf::TermId p : resident) PutU64(&residency, p);
  DSKG_RETURN_NOT_OK(writer.AddSection(kSectionResidency, residency));

  DSKG_RETURN_NOT_OK(writer.Finish(watermark));

  if (telem) {
    reg.histogram("persist.snapshot.save_us")->Record(reg.NowMicros() - t0);
    reg.gauge("persist.snapshot.bytes")
        ->Set(static_cast<double>(config.size() + dataset.size() +
                                  table.size() + residency.size()));
  }
  return Status::OK();
}

Result<LoadedSnapshot> LoadStoreSnapshot(const std::string& path) {
  auto& reg = telemetry::MetricsRegistry::Global();
  const bool telem = reg.enabled();
  const double t0 = telem ? reg.NowMicros() : 0;

  DSKG_ASSIGN_OR_RETURN(RawSnapshot raw, ReadSnapshotFile(path));
  const std::string* config = raw.Section(kSectionConfig);
  const std::string* dataset = raw.Section(kSectionDataset);
  const std::string* residency = raw.Section(kSectionResidency);
  std::string* table = nullptr;
  for (auto& [id, payload] : raw.sections) {
    if (id == kSectionTable) table = &payload;
  }
  if (config == nullptr || dataset == nullptr || table == nullptr ||
      residency == nullptr) {
    return Corrupt(path, "missing snapshot section");
  }

  LoadedSnapshot out;
  out.watermark = raw.watermark;
  ByteReader cr(*config);
  uint32_t num_shards = 0, dict_slices = 0;
  DSKG_RETURN_NOT_OK(cr.ReadU32(&num_shards));
  DSKG_RETURN_NOT_OK(cr.ReadU32(&dict_slices));
  if (num_shards < 1 || num_shards > 4096 || dict_slices < 1 ||
      dict_slices > 4096) {
    return Corrupt(path, "implausible shard/slice layout");
  }
  out.num_shards = static_cast<int>(num_shards);
  out.dict_slices = static_cast<int>(dict_slices);

  out.dataset = rdf::Dataset(out.dict_slices);
  ByteReader dr(*dataset);
  DSKG_RETURN_NOT_OK(out.dataset.DeserializeFrom(&dr));
  if (!dr.AtEnd()) return Corrupt(path, "trailing bytes in dataset section");

  out.table_payload = std::move(*table);

  ByteReader rr(*residency);
  uint64_t num_resident = 0;
  DSKG_RETURN_NOT_OK(rr.ReadU64(&num_resident));
  if (num_resident * 8 > rr.remaining()) {
    return Corrupt(path, "residency section count overflow");
  }
  out.resident_predicates.reserve(num_resident);
  for (uint64_t i = 0; i < num_resident; ++i) {
    rdf::TermId p = rdf::kInvalidTermId;
    DSKG_RETURN_NOT_OK(rr.ReadU64(&p));
    out.resident_predicates.push_back(p);
  }

  if (telem) {
    reg.histogram("persist.snapshot.load_us")->Record(reg.NowMicros() - t0);
  }
  return out;
}

}  // namespace dskg::persist
