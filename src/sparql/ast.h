#ifndef DSKG_SPARQL_AST_H_
#define DSKG_SPARQL_AST_H_

/// \file ast.h
/// Abstract syntax for the SPARQL fragment used by the paper.
///
/// Every query in the paper's evaluation is a SELECT over one basic graph
/// pattern (BGP): `SELECT ?v... WHERE { s p o . s p o . ... }`. Terms are
/// either variables (`?name`) or constants (IRIs / prefixed names /
/// literals), kept as strings until an engine binds them to dictionary
/// ids.

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace dskg::sparql {

/// One position of a triple pattern: a variable, a constant term, or a
/// `$name` parameter placeholder (a constant whose value is supplied at
/// execution time via `PreparedQuery::Bind`). A parameter is *not* a
/// variable: it never joins, is never projected, and a query containing
/// unbound parameters cannot be executed directly.
struct PatternTerm {
  bool is_variable = false;
  bool is_param = false;
  /// Variable/parameter name without the leading '?'/'$', or the
  /// constant's text.
  std::string text;

  static PatternTerm Var(std::string name) {
    return PatternTerm{true, false, std::move(name)};
  }
  static PatternTerm Const(std::string term) {
    return PatternTerm{false, false, std::move(term)};
  }
  static PatternTerm Param(std::string name) {
    return PatternTerm{false, true, std::move(name)};
  }

  friend bool operator==(const PatternTerm&, const PatternTerm&) = default;
};

/// One `subject predicate object` pattern of a BGP.
struct TriplePattern {
  PatternTerm subject;
  PatternTerm predicate;
  PatternTerm object;

  friend bool operator==(const TriplePattern&, const TriplePattern&) =
      default;

  /// Variables appearing in this pattern (subject/predicate/object order,
  /// duplicates preserved).
  std::vector<std::string> Variables() const;
};

/// A parsed SELECT query over one basic graph pattern.
struct Query {
  /// Projected variable names, without '?'. Empty means `SELECT *`.
  std::vector<std::string> select_vars;
  std::vector<TriplePattern> patterns;

  friend bool operator==(const Query&, const Query&) = default;

  bool empty() const { return patterns.empty(); }

  /// All distinct variables of the BGP, in first-appearance order.
  std::vector<std::string> AllVariables() const;

  /// Occurrence count of each variable across all pattern positions.
  std::unordered_map<std::string, int> VariableCounts() const;

  /// Distinct constant predicates of the BGP, in first-appearance order.
  /// Patterns with variable predicates contribute nothing.
  std::vector<std::string> ConstantPredicates() const;

  /// Distinct `$parameter` names of the BGP, in first-appearance order
  /// (subject before object within a pattern). Empty for ordinary queries.
  std::vector<std::string> Parameters() const;

  /// Serializes back to query text (canonical whitespace).
  std::string ToString() const;
};

}  // namespace dskg::sparql

#endif  // DSKG_SPARQL_AST_H_
