#ifndef DSKG_SPARQL_BINDINGS_H_
#define DSKG_SPARQL_BINDINGS_H_

/// \file bindings.h
/// Query results: tables of variable bindings.
///
/// Both engines (relational executor and graph traversal matcher) produce
/// `BindingTable`s — a header of variable names plus rows of dictionary
/// ids. The query processor also uses them as the migrated intermediate
/// results that flow from the graph store into the relational store's
/// temporary table space (paper §5).

#include <algorithm>
#include <string>
#include <vector>

#include "rdf/triple.h"

namespace dskg::sparql {

/// A relation over query variables: column names + rows of term ids.
struct BindingTable {
  /// Variable names (no '?'), one per column.
  std::vector<std::string> columns;
  /// Rows; every row has exactly `columns.size()` entries.
  std::vector<std::vector<rdf::TermId>> rows;

  /// Index of `var` in `columns`, or -1.
  int ColumnIndex(const std::string& var) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == var) return static_cast<int>(i);
    }
    return -1;
  }

  bool HasColumn(const std::string& var) const {
    return ColumnIndex(var) >= 0;
  }

  size_t NumRows() const { return rows.size(); }
  size_t NumColumns() const { return columns.size(); }
  bool empty() const { return rows.empty(); }

  /// Returns a copy restricted to `vars` (in the given order). Variables
  /// not present are skipped. Duplicate rows are preserved.
  BindingTable Project(const std::vector<std::string>& vars) const {
    BindingTable out;
    std::vector<int> idx;
    for (const std::string& v : vars) {
      const int i = ColumnIndex(v);
      if (i >= 0) {
        out.columns.push_back(v);
        idx.push_back(i);
      }
    }
    out.rows.reserve(rows.size());
    for (const auto& row : rows) {
      std::vector<rdf::TermId> r;
      r.reserve(idx.size());
      for (int i : idx) r.push_back(row[static_cast<size_t>(i)]);
      out.rows.push_back(std::move(r));
    }
    return out;
  }

  /// Sorts rows lexicographically — canonical form for test comparisons.
  void Canonicalize() { std::sort(rows.begin(), rows.end()); }

  /// Canonicalized equality: same columns (same order) and same multiset
  /// of rows.
  static bool SameRows(BindingTable a, BindingTable b) {
    if (a.columns != b.columns) return false;
    a.Canonicalize();
    b.Canonicalize();
    return a.rows == b.rows;
  }
};

}  // namespace dskg::sparql

#endif  // DSKG_SPARQL_BINDINGS_H_
