#ifndef DSKG_SPARQL_BINDINGS_H_
#define DSKG_SPARQL_BINDINGS_H_

/// \file bindings.h
/// Query results: tables of variable bindings.
///
/// Both engines (relational executor and graph traversal matcher) produce
/// `BindingTable`s — a header of variable names plus rows of dictionary
/// ids. The query processor also uses them as the migrated intermediate
/// results that flow from the graph store into the relational store's
/// temporary table space (paper §5).
///
/// Storage is columnar-flat: one contiguous `TermId` buffer in row-major
/// order with stride `NumColumns()`, not a vector per row. Appending a
/// row is a bump of the flat buffer (amortized zero allocations), copying
/// a row is a `memcpy`-able span copy, and the whole table hands over to
/// another engine as a single buffer. Variable names exist only in the
/// header; the per-row hot path works purely on column indexes ("slots")
/// that callers resolve once at plan time.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "rdf/triple.h"

namespace dskg::sparql {

/// A relation over query variables: column names + rows of term ids in
/// one flat row-major buffer.
///
/// Protocol: set `columns` first (the stride), then append rows. The row
/// count is tracked explicitly so zero-column tables (all-constant
/// patterns) still count their matches.
struct BindingTable {
  /// Variable names (no '?'), one per column. Set before appending rows.
  std::vector<std::string> columns;

  /// Index of `var` in `columns`, or -1. Plan-time only — never call on
  /// a per-row path; resolve to an int slot once and index with it.
  int ColumnIndex(const std::string& var) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == var) return static_cast<int>(i);
    }
    return -1;
  }

  bool HasColumn(const std::string& var) const {
    return ColumnIndex(var) >= 0;
  }

  size_t NumRows() const { return num_rows_; }
  size_t NumColumns() const { return columns.size(); }
  bool empty() const { return num_rows_ == 0; }

  /// The flat row-major buffer (`NumRows() * NumColumns()` ids).
  const std::vector<rdf::TermId>& flat() const { return data_; }

  /// First cell of row `r` (valid for `NumColumns()` entries).
  const rdf::TermId* RowData(size_t r) const {
    return data_.data() + r * columns.size();
  }

  /// Cell at row `r`, column `c`.
  rdf::TermId At(size_t r, size_t c) const {
    return data_[r * columns.size() + c];
  }

  /// Lightweight non-owning view of one row, iterable and indexable.
  struct RowView {
    const rdf::TermId* ptr = nullptr;
    size_t n = 0;
    size_t size() const { return n; }
    const rdf::TermId& operator[](size_t i) const { return ptr[i]; }
    const rdf::TermId* begin() const { return ptr; }
    const rdf::TermId* end() const { return ptr + n; }
  };

  RowView Row(size_t r) const { return RowView{RowData(r), columns.size()}; }

  /// Range over all rows: `for (BindingTable::RowView row : t.Rows())`.
  struct RowRange {
    const BindingTable* table;
    struct Iterator {
      const BindingTable* table;
      size_t r;
      RowView operator*() const { return table->Row(r); }
      Iterator& operator++() {
        ++r;
        return *this;
      }
      bool operator!=(const Iterator& o) const { return r != o.r; }
    };
    Iterator begin() const { return {table, 0}; }
    Iterator end() const { return {table, table->NumRows()}; }
  };

  RowRange Rows() const { return RowRange{this}; }

  /// Pre-sizes the flat buffer for `n` additional rows.
  void ReserveRows(size_t n) { data_.reserve(data_.size() + n * columns.size()); }

  /// Appends one row and returns its cell span to be filled in place —
  /// the zero-copy emission path (a `resize` bump, no per-row vector).
  rdf::TermId* AppendRow() {
    data_.resize(data_.size() + columns.size());
    ++num_rows_;
    return data_.data() + data_.size() - columns.size();
  }

  /// Appends a copy of `vals[0 .. NumColumns())`.
  void AppendRow(const rdf::TermId* vals) {
    data_.insert(data_.end(), vals, vals + columns.size());
    ++num_rows_;
  }

  /// Appends a row from an explicit list (tests, small seeds). The list
  /// must have exactly `NumColumns()` entries — a wrong length would
  /// silently shear every later row in the flat layout.
  void AppendRow(std::initializer_list<rdf::TermId> vals) {
    assert(vals.size() == columns.size());
    data_.insert(data_.end(), vals.begin(), vals.end());
    ++num_rows_;
  }

  /// Appends every row of `other`, which must have the same column count.
  /// Bulk buffer splice — the sharded-merge fast path.
  void AppendRowsFrom(const BindingTable& other) {
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    num_rows_ += other.num_rows_;
  }

  /// Drops all rows, keeping the header.
  void ClearRows() {
    data_.clear();
    num_rows_ = 0;
  }

  /// Returns a copy restricted to `vars` (in the given order). Variables
  /// not present are skipped. Duplicate rows are preserved.
  BindingTable Project(const std::vector<std::string>& vars) const {
    BindingTable out;
    std::vector<size_t> idx;
    for (const std::string& v : vars) {
      const int i = ColumnIndex(v);
      if (i >= 0) {
        out.columns.push_back(v);
        idx.push_back(static_cast<size_t>(i));
      }
    }
    out.data_.reserve(num_rows_ * idx.size());
    const size_t stride = columns.size();
    for (size_t r = 0; r < num_rows_; ++r) {
      const rdf::TermId* row = data_.data() + r * stride;
      for (size_t i : idx) out.data_.push_back(row[i]);
    }
    out.num_rows_ = num_rows_;
    return out;
  }

  /// Sorts rows lexicographically — canonical form for test comparisons.
  void Canonicalize() {
    const size_t stride = columns.size();
    if (stride == 0 || num_rows_ < 2) return;
    std::vector<size_t> order(num_rows_);
    std::iota(order.begin(), order.end(), size_t{0});
    const rdf::TermId* base = data_.data();
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return std::lexicographical_compare(
          base + a * stride, base + (a + 1) * stride, base + b * stride,
          base + (b + 1) * stride);
    });
    std::vector<rdf::TermId> sorted;
    sorted.reserve(data_.size());
    for (size_t r : order) {
      sorted.insert(sorted.end(), base + r * stride, base + (r + 1) * stride);
    }
    data_ = std::move(sorted);
  }

  /// Canonicalized equality: same columns (same order) and same multiset
  /// of rows.
  static bool SameRows(BindingTable a, BindingTable b) {
    if (a.columns != b.columns) return false;
    if (a.num_rows_ != b.num_rows_) return false;
    a.Canonicalize();
    b.Canonicalize();
    return a.data_ == b.data_;
  }

 private:
  std::vector<rdf::TermId> data_;
  size_t num_rows_ = 0;
};

}  // namespace dskg::sparql

#endif  // DSKG_SPARQL_BINDINGS_H_
