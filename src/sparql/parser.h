#ifndef DSKG_SPARQL_PARSER_H_
#define DSKG_SPARQL_PARSER_H_

/// \file parser.h
/// Recursive-descent parser for the SPARQL fragment of ast.h.
///
/// Grammar (case-insensitive keywords):
///
///   query    := SELECT projection WHERE '{' pattern* '}'
///   projection := '*' | VAR+
///   pattern  := term term term '.'?          (final '.' optional)
///   term     := VAR | IRIREF | PNAME | LITERAL
///   VAR      := '?' name
///   IRIREF   := '<' ... '>'
///   PNAME    := prefixed or plain name, e.g. y:wasBornIn
///   LITERAL  := '"' ... '"'
///
/// This covers every query that appears in the paper (all are BGPs).

#include <string_view>

#include "common/status.h"
#include "sparql/ast.h"

namespace dskg::sparql {

/// Parses SPARQL text into a `Query`.
class Parser {
 public:
  /// Parses `text`; returns the query or a ParseError with position info.
  static Result<Query> Parse(std::string_view text);
};

}  // namespace dskg::sparql

#endif  // DSKG_SPARQL_PARSER_H_
