#include "sparql/ast.h"

#include <unordered_set>

namespace dskg::sparql {

std::vector<std::string> TriplePattern::Variables() const {
  std::vector<std::string> out;
  if (subject.is_variable) out.push_back(subject.text);
  if (predicate.is_variable) out.push_back(predicate.text);
  if (object.is_variable) out.push_back(object.text);
  return out;
}

std::vector<std::string> Query::AllVariables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const TriplePattern& p : patterns) {
    for (std::string& v : p.Variables()) {
      if (seen.insert(v).second) out.push_back(std::move(v));
    }
  }
  return out;
}

std::unordered_map<std::string, int> Query::VariableCounts() const {
  std::unordered_map<std::string, int> counts;
  for (const TriplePattern& p : patterns) {
    for (const std::string& v : p.Variables()) ++counts[v];
  }
  return counts;
}

std::vector<std::string> Query::ConstantPredicates() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const TriplePattern& p : patterns) {
    if (!p.predicate.is_variable && seen.insert(p.predicate.text).second) {
      out.push_back(p.predicate.text);
    }
  }
  return out;
}

std::vector<std::string> Query::Parameters() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (const TriplePattern& p : patterns) {
    for (const PatternTerm* t : {&p.subject, &p.predicate, &p.object}) {
      if (t->is_param && seen.insert(t->text).second) out.push_back(t->text);
    }
  }
  return out;
}

namespace {
void AppendTerm(const PatternTerm& t, std::string* out) {
  if (t.is_variable) out->push_back('?');
  if (t.is_param) out->push_back('$');
  out->append(t.text);
}
}  // namespace

std::string Query::ToString() const {
  std::string out = "SELECT";
  if (select_vars.empty()) {
    out += " *";
  } else {
    for (const std::string& v : select_vars) {
      out += " ?";
      out += v;
    }
  }
  out += " WHERE { ";
  for (const TriplePattern& p : patterns) {
    AppendTerm(p.subject, &out);
    out.push_back(' ');
    AppendTerm(p.predicate, &out);
    out.push_back(' ');
    AppendTerm(p.object, &out);
    out += " . ";
  }
  out += "}";
  return out;
}

}  // namespace dskg::sparql
