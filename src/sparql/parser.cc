#include "sparql/parser.h"

#include <cctype>

#include "common/str_util.h"

namespace dskg::sparql {

namespace {

enum class TokKind { kVar, kParam, kTerm, kLBrace, kRBrace, kDot, kStar, kEnd };

struct Token {
  TokKind kind;
  std::string text;  // variable name (no '?') or term text
  size_t pos = 0;    // byte offset in the input, for error messages
};

/// Splits query text into tokens. `{`, `}` are always their own tokens; a
/// bare `.` is a pattern separator, but dots inside IRIs/names/literals
/// are preserved.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<Token> Next() {
    SkipSpace();
    if (pos_ >= text_.size()) return Token{TokKind::kEnd, "", pos_};
    const size_t start = pos_;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      return Token{TokKind::kLBrace, "{", start};
    }
    if (c == '}') {
      ++pos_;
      return Token{TokKind::kRBrace, "}", start};
    }
    if (c == '*') {
      ++pos_;
      return Token{TokKind::kStar, "*", start};
    }
    if (c == '.' && IsBareDot()) {
      ++pos_;
      return Token{TokKind::kDot, ".", start};
    }
    if (c == '?' || c == '$') {
      // `?name` is a variable; `$name` is a parameter placeholder bound at
      // execution time (PreparedQuery::Bind).
      ++pos_;
      std::string name;
      while (pos_ < text_.size() && IsNameChar(text_[pos_])) {
        name.push_back(text_[pos_++]);
      }
      if (name.empty()) {
        return Status::ParseError(std::string("empty ") +
                                  (c == '$' ? "parameter" : "variable") +
                                  " name at offset " + std::to_string(start));
      }
      return Token{c == '$' ? TokKind::kParam : TokKind::kVar,
                   std::move(name), start};
    }
    if (c == '<') {
      // IRIREF: consume through '>'.
      std::string term;
      term.push_back(text_[pos_++]);
      while (pos_ < text_.size() && text_[pos_] != '>') {
        term.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated IRI at offset " +
                                  std::to_string(start));
      }
      term.push_back(text_[pos_++]);  // '>'
      return Token{TokKind::kTerm, std::move(term), start};
    }
    if (c == '"') {
      // LITERAL: consume through the closing quote (no escapes needed for
      // the paper's workloads, but backslash-escape is honored).
      std::string term;
      term.push_back(text_[pos_++]);
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
          term.push_back(text_[pos_++]);
        }
        term.push_back(text_[pos_++]);
      }
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated literal at offset " +
                                  std::to_string(start));
      }
      term.push_back(text_[pos_++]);  // '"'
      return Token{TokKind::kTerm, std::move(term), start};
    }
    // PNAME / keyword: run of name characters (which may include ':' and
    // interior dots).
    std::string term;
    while (pos_ < text_.size() && IsTermChar(text_[pos_])) {
      term.push_back(text_[pos_++]);
    }
    if (term.empty()) {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(start));
    }
    // A trailing dot belongs to the pattern separator, not the name
    // ("...?city.}" style input).
    while (!term.empty() && term.back() == '.') {
      term.pop_back();
      --pos_;
    }
    if (term.empty()) {
      ++pos_;
      return Token{TokKind::kDot, ".", start};
    }
    return Token{TokKind::kTerm, std::move(term), start};
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  /// A dot is "bare" (a separator) when not embedded inside a name run.
  bool IsBareDot() const {
    const bool prev_name =
        pos_ > 0 && IsTermChar(text_[pos_ - 1]) && text_[pos_ - 1] != '.';
    const bool next_name =
        pos_ + 1 < text_.size() && IsTermChar(text_[pos_ + 1]);
    return !(prev_name && next_name);
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }
  static bool IsTermChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '.' || c == '-' || c == '/' || c == '#';
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool KeywordIs(const Token& tok, std::string_view kw) {
  return tok.kind == TokKind::kTerm && AsciiToLower(tok.text) == kw;
}

}  // namespace

Result<Query> Parser::Parse(std::string_view text) {
  Lexer lexer(text);
  Query query;

  DSKG_ASSIGN_OR_RETURN(Token tok, lexer.Next());
  if (!KeywordIs(tok, "select")) {
    return Status::ParseError("expected SELECT at offset " +
                              std::to_string(tok.pos));
  }

  // Projection: '*' or one or more variables.
  DSKG_ASSIGN_OR_RETURN(tok, lexer.Next());
  if (tok.kind == TokKind::kStar) {
    DSKG_ASSIGN_OR_RETURN(tok, lexer.Next());
  } else {
    while (tok.kind == TokKind::kVar) {
      query.select_vars.push_back(tok.text);
      DSKG_ASSIGN_OR_RETURN(tok, lexer.Next());
    }
    if (tok.kind == TokKind::kParam) {
      return Status::ParseError("parameter $" + tok.text +
                                " cannot be projected");
    }
    if (query.select_vars.empty()) {
      return Status::ParseError("expected '*' or variables after SELECT");
    }
  }

  if (!KeywordIs(tok, "where")) {
    return Status::ParseError("expected WHERE at offset " +
                              std::to_string(tok.pos));
  }
  DSKG_ASSIGN_OR_RETURN(tok, lexer.Next());
  if (tok.kind != TokKind::kLBrace) {
    return Status::ParseError("expected '{' at offset " +
                              std::to_string(tok.pos));
  }

  // Patterns until '}'.
  DSKG_ASSIGN_OR_RETURN(tok, lexer.Next());
  while (tok.kind != TokKind::kRBrace) {
    TriplePattern pattern;
    PatternTerm* slots[3] = {&pattern.subject, &pattern.predicate,
                             &pattern.object};
    for (int pos = 0; pos < 3; ++pos) {
      PatternTerm* slot = slots[pos];
      if (tok.kind == TokKind::kVar) {
        *slot = PatternTerm::Var(tok.text);
      } else if (tok.kind == TokKind::kParam) {
        // Parameters are constants-to-be: they may stand for subjects or
        // objects, but not predicates — routing (graph-store coverage,
        // complex-subquery structure) must be decidable at prepare time,
        // before any value is bound.
        if (pos == 1) {
          return Status::ParseError(
              "parameter $" + tok.text +
              " cannot appear in predicate position (offset " +
              std::to_string(tok.pos) + ")");
        }
        *slot = PatternTerm::Param(tok.text);
      } else if (tok.kind == TokKind::kTerm) {
        *slot = PatternTerm::Const(tok.text);
      } else {
        return Status::ParseError("expected term or variable at offset " +
                                  std::to_string(tok.pos));
      }
      DSKG_ASSIGN_OR_RETURN(tok, lexer.Next());
    }
    query.patterns.push_back(std::move(pattern));
    if (tok.kind == TokKind::kDot) {
      DSKG_ASSIGN_OR_RETURN(tok, lexer.Next());
    }
    if (tok.kind == TokKind::kEnd) {
      return Status::ParseError("unterminated WHERE block");
    }
  }

  if (query.patterns.empty()) {
    return Status::ParseError("empty WHERE block");
  }

  // Projected variables must appear in the BGP.
  auto counts = query.VariableCounts();
  for (const std::string& v : query.select_vars) {
    if (counts.find(v) == counts.end()) {
      return Status::ParseError("projected variable ?" + v +
                                " does not appear in WHERE block");
    }
  }
  // A name may be a variable or a parameter, never both — `?x` joins while
  // `$x` is a bound constant, and letting them alias would silently change
  // the join structure between prepare and bind.
  for (const std::string& p : query.Parameters()) {
    if (counts.find(p) != counts.end()) {
      return Status::ParseError("name " + p +
                                " is used both as variable ?" + p +
                                " and parameter $" + p);
    }
  }
  return query;
}

}  // namespace dskg::sparql
