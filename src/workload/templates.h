#ifndef DSKG_WORKLOAD_TEMPLATES_H_
#define DSKG_WORKLOAD_TEMPLATES_H_

/// \file templates.h
/// Query-template catalogs matching the paper's workloads (§6.1):
///
///   * YAGO       — 4 templates x 5 versions = 20 queries
///   * WatDiv-L   — 7 templates x 5          = 35 queries (linear)
///   * WatDiv-S   — 5 templates x 5          = 25 queries (star)
///   * WatDiv-F   — 5 templates x 5          = 25 queries (snowflake)
///   * WatDiv-C   — 3 templates x 5          = 15 queries (complex)
///   * Bio2RDF    — 5 templates x 5          = 25 queries
///
/// Templates reference only predicates emitted by the corresponding
/// generator (generators.h). Slots mark the positions mutations rebind.

#include <vector>

#include "workload/workload.h"

namespace dskg::workload {

/// YAGO templates; the first is the paper's flagship advisor-born-in-the-
/// same-city query (Example 1 / Table 1).
std::vector<QueryTemplate> YagoTemplates();

/// WatDiv linear (path-shaped) templates.
std::vector<QueryTemplate> WatDivLinearTemplates();

/// WatDiv star (single-subject fan-out) templates.
std::vector<QueryTemplate> WatDivStarTemplates();

/// WatDiv snowflake (joined stars) templates.
std::vector<QueryTemplate> WatDivSnowflakeTemplates();

/// WatDiv complex (large multi-join) templates.
std::vector<QueryTemplate> WatDivComplexTemplates();

/// Bio2RDF templates (interaction / literature traversals).
std::vector<QueryTemplate> Bio2RdfTemplates();

}  // namespace dskg::workload

#endif  // DSKG_WORKLOAD_TEMPLATES_H_
