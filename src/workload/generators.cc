#include "workload/generators.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"

namespace dskg::workload {

using rdf::Dataset;

namespace {

std::string Name(const char* prefix, uint64_t i) {
  return std::string(prefix) + std::to_string(i);
}

/// Decorrelates Zipf ranks across predicates: each predicate views the
/// entity popularity ranking rotated by its own salt, so the entity that
/// is most popular under one predicate is not automatically the most
/// popular under every other. Without this, cross-predicate joins on the
/// shared top entities produce intermediate results quadratic or cubic in
/// the hot-entity degree — a pathology real datasets exhibit far more
/// weakly than perfectly rank-aligned synthetic ones.
uint64_t SaltedRank(size_t rank, uint64_t salt, size_t n) {
  return (static_cast<uint64_t>(rank) + salt) % static_cast<uint64_t>(n);
}

}  // namespace

// ---------------------------------------------------------------------------
// YAGO-like generator
// ---------------------------------------------------------------------------
//
// Entity classes: persons, cities, countries, universities, companies,
// movies, prizes, genres. 39 predicates. Person facts dominate, cities are
// Zipf-popular, and advisor/spouse edges are correlated with birth city so
// the paper's flagship query ("person born in the same city as their
// advisor") has non-trivial, size-dependent answers.
Dataset GenerateYago(const YagoConfig& config) {
  Dataset ds;
  Rng rng(config.seed);

  // Entity counts derived from the triple target: each person contributes
  // ~8 facts on average, plus secondary-entity facts (~12% overhead).
  const uint64_t persons =
      std::max<uint64_t>(50, config.target_triples / 9);
  const uint64_t cities = std::max<uint64_t>(40, persons / 80);
  const uint64_t countries = std::max<uint64_t>(20, cities / 12);
  const uint64_t universities = std::max<uint64_t>(15, persons / 200);
  const uint64_t companies = std::max<uint64_t>(15, persons / 120);
  const uint64_t movies = std::max<uint64_t>(30, persons / 6);
  const uint64_t prizes = std::max<uint64_t>(12, persons / 600);
  const uint64_t genres = 18;
  const uint64_t given_names = std::max<uint64_t>(40, persons / 40);
  const uint64_t family_names = std::max<uint64_t>(60, persons / 25);

  ZipfSampler city_zipf(cities, config.skew);
  ZipfSampler movie_zipf(movies, config.skew);
  ZipfSampler prize_zipf(prizes, config.skew);
  ZipfSampler country_zipf(countries, config.skew);

  // Birth city of each person, and persons grouped by birth city, so
  // advisor/spouse edges can be correlated with co-birth.
  std::vector<uint64_t> born_city(persons);
  std::vector<std::vector<uint64_t>> persons_in_city(cities);

  for (uint64_t i = 0; i < persons; ++i) {
    const std::string p = Name("y:person_", i);
    ds.Add(p, "y:hasGivenName",
           Name("y:givenName_", rng.NextBounded(given_names)));
    ds.Add(p, "y:hasFamilyName",
           Name("y:familyName_", rng.NextBounded(family_names)));
    const uint64_t city = city_zipf.Sample(&rng);
    born_city[i] = city;
    ds.Add(p, "y:wasBornIn", Name("y:city_", city));
    ds.Add(p, "y:hasGender", rng.NextBool(0.5) ? "y:male" : "y:female");
    ds.Add(p, "y:isCitizenOf",
           Name("y:country_", country_zipf.Sample(&rng)));
    if (rng.NextBool(0.55)) {
      ds.Add(p, "y:livesIn", Name("y:city_", city_zipf.Sample(&rng)));
    }
    if (rng.NextBool(0.45)) {
      ds.Add(p, "y:graduatedFrom",
             Name("y:university_", rng.NextBounded(universities)));
    }
    if (rng.NextBool(0.40)) {
      ds.Add(p, "y:worksAt", Name("y:company_", rng.NextBounded(companies)));
    }
    // Advisor: an earlier person; with probability advisor_same_city_prob,
    // one born in the same city (if any exists).
    if (i > 0 && rng.NextBool(0.42)) {
      uint64_t advisor;
      const auto& same_city = persons_in_city[city];
      if (!same_city.empty() && rng.NextBool(config.advisor_same_city_prob)) {
        advisor = same_city[rng.NextIndex(same_city.size())];
      } else {
        advisor = rng.NextBounded(i);
      }
      ds.Add(p, "y:hasAcademicAdvisor", Name("y:person_", advisor));
    }
    // Spouse: similar co-birth correlation.
    if (i > 0 && rng.NextBool(0.35)) {
      uint64_t spouse;
      const auto& same_city = persons_in_city[city];
      if (!same_city.empty() && rng.NextBool(0.30)) {
        spouse = same_city[rng.NextIndex(same_city.size())];
      } else {
        spouse = rng.NextBounded(i);
      }
      ds.Add(p, "y:isMarriedTo", Name("y:person_", spouse));
    }
    if (i > 0 && rng.NextBool(0.30)) {
      ds.Add(p, "y:hasChild", Name("y:person_", rng.NextBounded(i)));
    }
    if (i > 0 && rng.NextBool(0.25)) {
      ds.Add(p, "y:knows", Name("y:person_", rng.NextBounded(i)));
    }
    if (i > 0 && rng.NextBool(0.08)) {
      ds.Add(p, "y:influences", Name("y:person_", rng.NextBounded(i)));
    }
    if (rng.NextBool(0.20)) {
      ds.Add(p, "y:actedIn", Name("y:movie_", movie_zipf.Sample(&rng)));
    }
    if (rng.NextBool(0.05)) {
      ds.Add(p, "y:directed", Name("y:movie_", movie_zipf.Sample(&rng)));
    }
    if (rng.NextBool(0.06)) {
      ds.Add(p, "y:wrote", Name("y:movie_", movie_zipf.Sample(&rng)));
    }
    if (rng.NextBool(0.09)) {
      ds.Add(p, "y:wonPrize", Name("y:prize_", prize_zipf.Sample(&rng)));
    }
    if (rng.NextBool(0.12)) {
      ds.Add(p, "y:hasWebsite", Name("y:website_", i));
    }
    if (rng.NextBool(0.30)) {
      ds.Add(p, "y:hasAge",
             Name("y:age_", 18 + rng.NextBounded(80)));
    }
    if (rng.NextBool(0.10)) {
      ds.Add(p, "y:diedIn", Name("y:city_", city_zipf.Sample(&rng)));
    }
    persons_in_city[city].push_back(i);
  }

  // Secondary entity facts.
  for (uint64_t c = 0; c < cities; ++c) {
    const std::string city = Name("y:city_", c);
    ds.Add(city, "y:isLocatedIn",
           Name("y:country_", country_zipf.Sample(&rng)));
    ds.Add(city, "y:hasPopulation", Name("y:pop_", rng.NextBounded(1000)));
    if (rng.NextBool(0.5)) {
      ds.Add(city, "y:hasMayor",
             Name("y:person_", rng.NextBounded(persons)));
    }
  }
  for (uint64_t u = 0; u < universities; ++u) {
    const std::string univ = Name("y:university_", u);
    ds.Add(univ, "y:establishedIn", Name("y:year_", 1200 + rng.NextBounded(800)));
    ds.Add(univ, "y:locatedInCity", Name("y:city_", city_zipf.Sample(&rng)));
  }
  for (uint64_t k = 0; k < companies; ++k) {
    const std::string company = Name("y:company_", k);
    ds.Add(company, "y:headquarteredIn",
           Name("y:city_", city_zipf.Sample(&rng)));
    ds.Add(company, "y:foundedIn", Name("y:year_", 1800 + rng.NextBounded(220)));
    if (rng.NextBool(0.3)) {
      ds.Add(company, "y:ownedBy",
             Name("y:person_", rng.NextBounded(persons)));
    }
  }
  for (uint64_t m = 0; m < movies; ++m) {
    const std::string movie = Name("y:movie_", m);
    ds.Add(movie, "y:hasGenre", Name("y:genre_", rng.NextBounded(genres)));
    ds.Add(movie, "y:releasedIn", Name("y:year_", 1930 + rng.NextBounded(95)));
    if (rng.NextBool(0.4)) {
      ds.Add(movie, "y:producedBy",
             Name("y:company_", rng.NextBounded(companies)));
    }
    if (rng.NextBool(0.2)) {
      ds.Add(movie, "y:hasBudget", Name("y:budget_", rng.NextBounded(500)));
    }
    if (rng.NextBool(0.3)) {
      ds.Add(movie, "y:hasDuration", Name("y:minutes_", 60 + rng.NextBounded(140)));
    }
  }
  for (uint64_t p = 0; p < prizes; ++p) {
    const std::string prize = Name("y:prize_", p);
    ds.Add(prize, "y:awardedBy",
           Name("y:company_", rng.NextBounded(companies)));
    ds.Add(prize, "y:namedAfter", Name("y:person_", rng.NextBounded(persons)));
  }
  for (uint64_t c = 0; c < countries; ++c) {
    const std::string country = Name("y:country_", c);
    ds.Add(country, "y:hasMotto", Name("y:motto_", c));
    ds.Add(country, "y:hasOfficialLanguage",
           Name("y:language_", rng.NextBounded(40)));
    ds.Add(country, "y:hasCurrency", Name("y:currency_", rng.NextBounded(30)));
    ds.Add(country, "y:hasArea", Name("y:area_", rng.NextBounded(2000)));
  }

  return ds;
}

// ---------------------------------------------------------------------------
// WatDiv-like generator
// ---------------------------------------------------------------------------
//
// E-commerce schema: users, products, retailers, reviews, genres, cities.
// 86 predicates: a social/commercial core plus WatDiv-style numbered
// property groups (productProperty_*, userProperty_*), matching WatDiv's
// pgroup design and reaching the paper's #-P = 86.
Dataset GenerateWatDiv(const WatDivConfig& config) {
  Dataset ds;
  Rng rng(config.seed);

  const uint64_t users = std::max<uint64_t>(60, config.target_triples / 11);
  const uint64_t products = std::max<uint64_t>(40, users / 2);
  const uint64_t retailers = std::max<uint64_t>(10, users / 60);
  const uint64_t reviews = std::max<uint64_t>(40, products);
  const uint64_t genres = 24;
  const uint64_t cities = std::max<uint64_t>(30, users / 90);
  const uint64_t countries = 25;
  constexpr int kProductProps = 30;
  constexpr int kUserProps = 30;

  ZipfSampler product_zipf(products, config.skew);
  ZipfSampler user_zipf(users, config.skew);
  ZipfSampler genre_zipf(genres, 0.7);
  ZipfSampler city_zipf(cities, config.skew);

  for (uint64_t i = 0; i < users; ++i) {
    const std::string u = Name("wsdbm:user_", i);
    ds.Add(u, "rdf:type", "wsdbm:User");
    ds.Add(u, "wsdbm:userId", Name("wsdbm:id_", i));
    ds.Add(u, "wsdbm:location", Name("wsdbm:city_", city_zipf.Sample(&rng)));
    if (rng.NextBool(0.6)) {
      ds.Add(u, "wsdbm:gender", rng.NextBool(0.5) ? "wsdbm:male" : "wsdbm:female");
    }
    if (rng.NextBool(0.5)) {
      ds.Add(u, "wsdbm:birthDate", Name("wsdbm:year_", 1940 + rng.NextBounded(70)));
    }
    // Social edges (heavy, Zipf-skewed in-degree). Average out-degree 1:
    // keeps the complex templates' partition sets within the 25% budget,
    // as in the paper's setups where whole sets are transferable.
    const uint64_t follows = rng.NextBounded(3);
    for (uint64_t f = 0; f < follows; ++f) {
      ds.Add(u, "wsdbm:follows", Name("wsdbm:user_", user_zipf.Sample(&rng)));
    }
    if (rng.NextBool(0.5)) {
      ds.Add(u, "wsdbm:friendOf",
             Name("wsdbm:user_", SaltedRank(user_zipf.Sample(&rng), 617, users)));
    }
    const uint64_t purchases = rng.NextBounded(3);
    for (uint64_t k = 0; k < purchases; ++k) {
      ds.Add(u, "wsdbm:purchases",
             Name("wsdbm:product_",
                  SaltedRank(product_zipf.Sample(&rng), 101, products)));
    }
    if (rng.NextBool(0.45)) {
      ds.Add(u, "wsdbm:likes",
             Name("wsdbm:product_",
                  SaltedRank(product_zipf.Sample(&rng), 211, products)));
    }
    if (rng.NextBool(0.10)) {
      ds.Add(u, "wsdbm:dislikes",
             Name("wsdbm:product_",
                  SaltedRank(product_zipf.Sample(&rng), 307, products)));
    }
    if (rng.NextBool(0.25)) {
      ds.Add(u, "wsdbm:subscribes",
             Name("wsdbm:website_", rng.NextBounded(retailers + 5)));
    }
    if (rng.NextBool(0.30)) {
      ds.Add(u, Name("wsdbm:userProperty_", rng.NextBounded(kUserProps)),
             Name("wsdbm:value_", rng.NextBounded(500)));
    }
  }

  for (uint64_t i = 0; i < products; ++i) {
    const std::string p = Name("wsdbm:product_", i);
    ds.Add(p, "rdf:type", "wsdbm:Product");
    ds.Add(p, "sorg:caption", Name("wsdbm:caption_", i));
    ds.Add(p, "wsdbm:hasGenre", Name("wsdbm:genre_", genre_zipf.Sample(&rng)));
    ds.Add(p, "sorg:price", Name("wsdbm:price_", rng.NextBounded(1000)));
    if (rng.NextBool(0.5)) {
      ds.Add(p, "sorg:description", Name("wsdbm:text_", i));
    }
    if (rng.NextBool(0.4)) {
      ds.Add(p, "wsdbm:producedBy",
             Name("wsdbm:retailer_", rng.NextBounded(retailers)));
    }
    if (rng.NextBool(0.35)) {
      ds.Add(p, Name("wsdbm:productProperty_", rng.NextBounded(kProductProps)),
             Name("wsdbm:value_", rng.NextBounded(500)));
    }
  }

  for (uint64_t i = 0; i < reviews; ++i) {
    const std::string r = Name("wsdbm:review_", i);
    ds.Add(r, "rdf:type", "wsdbm:Review");
    ds.Add(r, "rev:reviewFor",
           Name("wsdbm:product_",
                SaltedRank(product_zipf.Sample(&rng), 401, products)));
    ds.Add(r, "rev:reviewer",
           Name("wsdbm:user_", SaltedRank(user_zipf.Sample(&rng), 701, users)));
    ds.Add(r, "rev:rating", Name("wsdbm:rating_", 1 + rng.NextBounded(5)));
    if (rng.NextBool(0.6)) {
      ds.Add(r, "rev:title", Name("wsdbm:title_", i));
    }
    if (rng.NextBool(0.4)) {
      ds.Add(r, "rev:text", Name("wsdbm:text_", i));
    }
  }

  for (uint64_t i = 0; i < retailers; ++i) {
    const std::string rt = Name("wsdbm:retailer_", i);
    ds.Add(rt, "rdf:type", "wsdbm:Retailer");
    ds.Add(rt, "sorg:legalName", Name("wsdbm:name_", i));
    ds.Add(rt, "sorg:homepage", Name("wsdbm:website_", i));
    const uint64_t sells = 1 + rng.NextBounded(6);
    for (uint64_t k = 0; k < sells; ++k) {
      ds.Add(rt, "wsdbm:sells",
             Name("wsdbm:product_",
                  SaltedRank(product_zipf.Sample(&rng), 503, products)));
    }
  }

  for (uint64_t c = 0; c < cities; ++c) {
    ds.Add(Name("wsdbm:city_", c), "gn:parentCountry",
           Name("wsdbm:country_", rng.NextBounded(countries)));
  }
  for (uint64_t c = 0; c < countries; ++c) {
    ds.Add(Name("wsdbm:country_", c), "sorg:population",
           Name("wsdbm:pop_", rng.NextBounded(5000)));
  }

  // Make sure every numbered property-group predicate exists (WatDiv's
  // #-P is fixed at 86 regardless of scale).
  for (int k = 0; k < kProductProps; ++k) {
    ds.Add("wsdbm:product_0", Name("wsdbm:productProperty_", k),
           Name("wsdbm:value_", k));
  }
  for (int k = 0; k < kUserProps; ++k) {
    ds.Add("wsdbm:user_0", Name("wsdbm:userProperty_", k),
           Name("wsdbm:value_", k));
  }

  return ds;
}

// ---------------------------------------------------------------------------
// Bio2RDF-like generator
// ---------------------------------------------------------------------------
//
// Biomedical schema: genes, proteins, drugs, diseases, articles, journals.
// 161 predicates: an interaction/annotation core (protein interactions are
// the dominant partition, as in iRefIndex) plus numbered low-frequency
// annotation predicates reaching the paper's #-P = 161.
Dataset GenerateBio2Rdf(const Bio2RdfConfig& config) {
  Dataset ds;
  Rng rng(config.seed);

  const uint64_t genes = std::max<uint64_t>(50, config.target_triples / 30);
  const uint64_t proteins = genes;
  const uint64_t drugs = std::max<uint64_t>(25, genes / 4);
  const uint64_t diseases = std::max<uint64_t>(20, genes / 8);
  const uint64_t articles =
      std::max<uint64_t>(60, config.target_triples / 7);
  const uint64_t journals = std::max<uint64_t>(15, articles / 150);
  const uint64_t authors = std::max<uint64_t>(40, articles / 4);
  constexpr int kAnnotationProps = 130;

  ZipfSampler protein_zipf(proteins, config.skew);
  ZipfSampler gene_zipf(genes, config.skew);
  ZipfSampler disease_zipf(diseases, 0.8);
  ZipfSampler article_zipf(articles, config.skew);

  for (uint64_t i = 0; i < genes; ++i) {
    const std::string g = Name("b2r:gene_", i);
    ds.Add(g, "b2r:encodes", Name("b2r:protein_", i));
    if (rng.NextBool(0.15)) {
      ds.Add(g, "b2r:hasTaxon", Name("b2r:taxon_", rng.NextBounded(25)));
    }
    ds.Add(g, "b2r:hasSymbol", Name("b2r:symbol_", i));
    ds.Add(g, "b2r:locatedOnChromosome",
           Name("b2r:chromosome_", rng.NextBounded(24)));
    if (rng.NextBool(0.4)) {
      ds.Add(g, "b2r:associatedWithDisease",
             Name("b2r:disease_", disease_zipf.Sample(&rng)));
    }
    if (rng.NextBool(0.25)) {
      ds.Add(g, "b2r:hasOrtholog", Name("b2r:gene_", gene_zipf.Sample(&rng)));
    }
    if (rng.NextBool(0.30)) {
      ds.Add(g, "b2r:expressedIn", Name("b2r:tissue_", rng.NextBounded(60)));
    }
  }

  for (uint64_t i = 0; i < proteins; ++i) {
    const std::string p = Name("b2r:protein_", i);
    // Protein-protein interactions: a dominant but budget-compatible
    // partition (several complex-subquery partition sets must be able to
    // coexist under the 25% graph-store budget).
    const uint64_t interactions = 1 + rng.NextBounded(2);
    for (uint64_t k = 0; k < interactions; ++k) {
      ds.Add(p, "b2r:interactsWith",
             Name("b2r:protein_", protein_zipf.Sample(&rng)));
    }
    ds.Add(p, "b2r:hasFunction", Name("b2r:function_", rng.NextBounded(200)));
    if (rng.NextBool(0.5)) {
      ds.Add(p, "b2r:memberOfFamily",
             Name("b2r:family_", rng.NextBounded(80)));
    }
    if (rng.NextBool(0.3)) {
      ds.Add(p, "b2r:hasDomain", Name("b2r:domain_", rng.NextBounded(120)));
    }
    if (rng.NextBool(0.2)) {
      ds.Add(p, "b2r:localizedIn",
             Name("b2r:compartment_", rng.NextBounded(30)));
    }
    if (rng.NextBool(0.2)) {
      ds.Add(p, "b2r:hasSequenceLength",
             Name("b2r:length_", 50 + rng.NextBounded(3000)));
    }
  }

  for (uint64_t i = 0; i < drugs; ++i) {
    const std::string d = Name("b2r:drug_", i);
    const uint64_t targets = 1 + rng.NextBounded(3);
    for (uint64_t k = 0; k < targets; ++k) {
      ds.Add(d, "b2r:targets",
             Name("b2r:protein_",
                  SaltedRank(protein_zipf.Sample(&rng), 131, proteins)));
    }
    if (rng.NextBool(0.6)) {
      ds.Add(d, "b2r:treatsDisease",
             Name("b2r:disease_", disease_zipf.Sample(&rng)));
    }
    if (rng.NextBool(0.4)) {
      ds.Add(d, "b2r:hasSideEffect",
             Name("b2r:sideEffect_", rng.NextBounded(150)));
    }
    if (rng.NextBool(0.25)) {
      ds.Add(d, "b2r:interactsWithDrug",
             Name("b2r:drug_", rng.NextBounded(drugs)));
    }
    ds.Add(d, "b2r:hasFormula", Name("b2r:formula_", i));
    if (rng.NextBool(0.3)) {
      ds.Add(d, "b2r:approvedBy", Name("b2r:agency_", rng.NextBounded(6)));
    }
    if (rng.NextBool(0.3)) {
      ds.Add(d, "b2r:hasDosage", Name("b2r:dosage_", rng.NextBounded(40)));
    }
  }

  for (uint64_t i = 0; i < diseases; ++i) {
    const std::string d = Name("b2r:disease_", i);
    ds.Add(d, "b2r:hasSymptom", Name("b2r:symptom_", rng.NextBounded(100)));
    if (rng.NextBool(0.5)) {
      ds.Add(d, "b2r:affectsOrgan", Name("b2r:organ_", rng.NextBounded(40)));
    }
    if (rng.NextBool(0.3)) {
      ds.Add(d, "b2r:hasPrevalence",
             Name("b2r:prevalence_", rng.NextBounded(20)));
    }
  }

  for (uint64_t i = 0; i < articles; ++i) {
    const std::string a = Name("b2r:article_", i);
    ds.Add(a, "b2r:publishedIn", Name("b2r:journal_", rng.NextBounded(journals)));
    ds.Add(a, "b2r:hasAuthor", Name("b2r:author_", rng.NextBounded(authors)));
    if (rng.NextBool(0.30)) {
      ds.Add(a, "b2r:mentionsGene",
             Name("b2r:gene_", SaltedRank(gene_zipf.Sample(&rng), 233, genes)));
    }
    if (rng.NextBool(0.30)) {
      ds.Add(a, "b2r:mentionsDrug", Name("b2r:drug_", rng.NextBounded(drugs)));
    }
    if (i > 0 && rng.NextBool(0.5)) {
      ds.Add(a, "b2r:cites", Name("b2r:article_", article_zipf.Sample(&rng) % i));
    }
    if (rng.NextBool(0.4)) {
      ds.Add(a, "b2r:publishedInYear",
             Name("b2r:year_", 1970 + rng.NextBounded(55)));
    }
    if (rng.NextBool(0.15)) {
      ds.Add(a, Name("b2r:annotation_", rng.NextBounded(kAnnotationProps)),
             Name("b2r:term_", rng.NextBounded(400)));
    }
  }

  for (uint64_t j = 0; j < journals; ++j) {
    ds.Add(Name("b2r:journal_", j), "b2r:hasISSN", Name("b2r:issn_", j));
  }
  for (uint64_t a = 0; a < authors; ++a) {
    if (rng.NextBool(0.5)) {
      ds.Add(Name("b2r:author_", a), "b2r:affiliatedWith",
             Name("b2r:institute_", rng.NextBounded(50)));
    }
  }

  // Pin the predicate count at 161 regardless of scale: core (~31) +
  // 130 annotation predicates.
  for (int k = 0; k < kAnnotationProps; ++k) {
    ds.Add("b2r:article_0", Name("b2r:annotation_", k), Name("b2r:term_", k));
  }

  return ds;
}

}  // namespace dskg::workload
