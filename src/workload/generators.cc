#include "workload/generators.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace dskg::workload {

using rdf::Dataset;

namespace {

std::string Name(const char* prefix, uint64_t i) {
  return std::string(prefix) + std::to_string(i);
}

/// Decorrelates Zipf ranks across predicates: each predicate views the
/// entity popularity ranking rotated by its own salt, so the entity that
/// is most popular under one predicate is not automatically the most
/// popular under every other. Without this, cross-predicate joins on the
/// shared top entities produce intermediate results quadratic or cubic in
/// the hot-entity degree — a pathology real datasets exhibit far more
/// weakly than perfectly rank-aligned synthetic ones.
uint64_t SaltedRank(size_t rank, uint64_t salt, size_t n) {
  return (static_cast<uint64_t>(rank) + salt) % static_cast<uint64_t>(n);
}

// ---- block-parallel generation scaffolding --------------------------------
//
// Every entity loop is decomposed into fixed-size blocks of kGenBlock
// entities. Each block draws from its own RNG stream — seeded by the
// generator seed, a per-loop salt, and the block id — and appends its
// triples to a private buffer; buffers are interned into the dataset in
// block order. The decomposition depends only on the entity count, never
// on the worker count, so serial and parallel generation produce the
// same dataset byte for byte (same triples, same term-id assignment).
// Blocks are processed in bounded waves so peak buffer memory stays
// O(kGenWave * kGenBlock) regardless of scale.

constexpr uint64_t kGenBlock = 8192;  ///< entities per block
constexpr uint64_t kGenWave = 64;     ///< blocks buffered per wave

/// One generated triple, still in term-string form.
struct TripleText {
  std::string s, p, o;
};
using Block = std::vector<TripleText>;

/// SplitMix64 finalizer: disperses structured (seed, salt, block) inputs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed of the RNG stream for block `block` of the loop tagged `salt`.
uint64_t StreamSeed(uint64_t seed, uint64_t salt, uint64_t block) {
  return Mix64(Mix64(seed ^ (0x9e3779b97f4a7c15ULL * (salt + 1))) ^
               (0xbf58476d1ce4e5b9ULL * (block + 1)));
}

/// Runs `fn(begin, end, &rng)` for every block of [0, n) — on the pool
/// when one is given, inline otherwise. `fn` must only write state owned
/// by its own index range.
template <typename Fn>
void ForBlocks(ThreadPool* pool, uint64_t n, uint64_t seed, uint64_t salt,
               const Fn& fn) {
  if (n == 0) return;
  const uint64_t num_blocks = (n + kGenBlock - 1) / kGenBlock;
  const auto run = [&](size_t block) {
    Rng rng(StreamSeed(seed, salt, block));
    const uint64_t lo = static_cast<uint64_t>(block) * kGenBlock;
    const uint64_t hi = std::min<uint64_t>(n, lo + kGenBlock);
    fn(lo, hi, &rng);
  };
  if (pool != nullptr) {
    pool->ParallelFor(static_cast<size_t>(num_blocks), run);
  } else {
    for (uint64_t b = 0; b < num_blocks; ++b) run(static_cast<size_t>(b));
  }
}

/// Generates entity blocks with `fn(begin, end, &rng, &out)` and interns
/// them into `ds` in block order, wave by wave.
template <typename Fn>
void EmitBlocks(Dataset* ds, ThreadPool* pool, uint64_t n, uint64_t seed,
                uint64_t salt, const Fn& fn) {
  if (n == 0) return;
  const uint64_t num_blocks = (n + kGenBlock - 1) / kGenBlock;
  std::vector<Block> blocks;
  for (uint64_t wave = 0; wave < num_blocks; wave += kGenWave) {
    const uint64_t wave_blocks = std::min(kGenWave, num_blocks - wave);
    blocks.assign(static_cast<size_t>(wave_blocks), Block{});
    const auto run = [&](size_t b) {
      const uint64_t block = wave + b;
      Rng rng(StreamSeed(seed, salt, block));
      const uint64_t lo = block * kGenBlock;
      const uint64_t hi = std::min<uint64_t>(n, lo + kGenBlock);
      fn(lo, hi, &rng, &blocks[b]);
    };
    if (pool != nullptr) {
      pool->ParallelFor(static_cast<size_t>(wave_blocks), run);
    } else {
      for (uint64_t b = 0; b < wave_blocks; ++b) run(static_cast<size_t>(b));
    }
    for (Block& block : blocks) {
      for (const TripleText& t : block) ds->Add(t.s, t.p, t.o);
      Block().swap(block);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// YAGO-like generator
// ---------------------------------------------------------------------------
//
// Entity classes: persons, cities, countries, universities, companies,
// movies, prizes, genres. 39 predicates. Person facts dominate, cities are
// Zipf-popular, and advisor/spouse edges are correlated with birth city so
// the paper's flagship query ("person born in the same city as their
// advisor") has non-trivial, size-dependent answers.
//
// Birth cities are drawn in a dedicated pass before the person-fact pass:
// advisor/spouse candidates of person i are the earlier persons born in
// i's city, which pass 0 precomputes as per-city ascending person lists
// plus each person's rank in their city's list. With that, pass 1's block
// for person i depends only on read-shared state — no prefix carry — yet
// keeps the original "co-born earlier person" semantics.
Dataset GenerateYago(const YagoConfig& config, ThreadPool* pool) {
  Dataset ds;

  // Entity counts derived from the triple target: each person contributes
  // ~8 facts on average, plus secondary-entity facts (~12% overhead).
  const uint64_t persons =
      std::max<uint64_t>(50, config.target_triples / 9);
  const uint64_t cities = std::max<uint64_t>(40, persons / 80);
  const uint64_t countries = std::max<uint64_t>(20, cities / 12);
  const uint64_t universities = std::max<uint64_t>(15, persons / 200);
  const uint64_t companies = std::max<uint64_t>(15, persons / 120);
  const uint64_t movies = std::max<uint64_t>(30, persons / 6);
  const uint64_t prizes = std::max<uint64_t>(12, persons / 600);
  const uint64_t genres = 18;
  const uint64_t given_names = std::max<uint64_t>(40, persons / 40);
  const uint64_t family_names = std::max<uint64_t>(60, persons / 25);

  ZipfSampler city_zipf(cities, config.skew);
  ZipfSampler movie_zipf(movies, config.skew);
  ZipfSampler prize_zipf(prizes, config.skew);
  ZipfSampler country_zipf(countries, config.skew);

  // Pass 0: birth city of each person (its own RNG stream), and persons
  // grouped by birth city, so advisor/spouse edges can be correlated with
  // co-birth without a cross-person carry in the fact pass.
  std::vector<uint64_t> born_city(persons);
  ForBlocks(pool, persons, config.seed, /*salt=*/1,
            [&](uint64_t begin, uint64_t end, Rng* rng) {
              for (uint64_t i = begin; i < end; ++i) {
                born_city[i] = city_zipf.Sample(rng);
              }
            });
  std::vector<std::vector<uint64_t>> persons_in_city(cities);
  std::vector<uint64_t> rank_in_city(persons);
  for (uint64_t i = 0; i < persons; ++i) {
    rank_in_city[i] = persons_in_city[born_city[i]].size();
    persons_in_city[born_city[i]].push_back(i);
  }

  // Pass 1: person facts.
  EmitBlocks(&ds, pool, persons, config.seed, /*salt=*/2, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t i = begin; i < end; ++i) {
      const std::string p = Name("y:person_", i);
      out->push_back({p, "y:hasGivenName",
                      Name("y:givenName_", rng.NextBounded(given_names))});
      out->push_back({p, "y:hasFamilyName",
                      Name("y:familyName_", rng.NextBounded(family_names))});
      const uint64_t city = born_city[i];
      out->push_back({p, "y:wasBornIn", Name("y:city_", city)});
      out->push_back(
          {p, "y:hasGender", rng.NextBool(0.5) ? "y:male" : "y:female"});
      out->push_back({p, "y:isCitizenOf",
                      Name("y:country_", country_zipf.Sample(&rng))});
      if (rng.NextBool(0.55)) {
        out->push_back(
            {p, "y:livesIn", Name("y:city_", city_zipf.Sample(&rng))});
      }
      if (rng.NextBool(0.45)) {
        out->push_back({p, "y:graduatedFrom",
                        Name("y:university_", rng.NextBounded(universities))});
      }
      if (rng.NextBool(0.40)) {
        out->push_back(
            {p, "y:worksAt", Name("y:company_", rng.NextBounded(companies))});
      }
      // Advisor: an earlier person; with probability
      // advisor_same_city_prob, one born in the same city (if any exists).
      // The first `rank_in_city[i]` entries of the city's person list are
      // exactly the earlier co-born persons.
      const uint64_t rank = rank_in_city[i];
      if (i > 0 && rng.NextBool(0.42)) {
        uint64_t advisor;
        if (rank > 0 && rng.NextBool(config.advisor_same_city_prob)) {
          advisor = persons_in_city[city][rng.NextIndex(rank)];
        } else {
          advisor = rng.NextBounded(i);
        }
        out->push_back(
            {p, "y:hasAcademicAdvisor", Name("y:person_", advisor)});
      }
      // Spouse: similar co-birth correlation.
      if (i > 0 && rng.NextBool(0.35)) {
        uint64_t spouse;
        if (rank > 0 && rng.NextBool(0.30)) {
          spouse = persons_in_city[city][rng.NextIndex(rank)];
        } else {
          spouse = rng.NextBounded(i);
        }
        out->push_back({p, "y:isMarriedTo", Name("y:person_", spouse)});
      }
      if (i > 0 && rng.NextBool(0.30)) {
        out->push_back(
            {p, "y:hasChild", Name("y:person_", rng.NextBounded(i))});
      }
      if (i > 0 && rng.NextBool(0.25)) {
        out->push_back({p, "y:knows", Name("y:person_", rng.NextBounded(i))});
      }
      if (i > 0 && rng.NextBool(0.08)) {
        out->push_back(
            {p, "y:influences", Name("y:person_", rng.NextBounded(i))});
      }
      if (rng.NextBool(0.20)) {
        out->push_back(
            {p, "y:actedIn", Name("y:movie_", movie_zipf.Sample(&rng))});
      }
      if (rng.NextBool(0.05)) {
        out->push_back(
            {p, "y:directed", Name("y:movie_", movie_zipf.Sample(&rng))});
      }
      if (rng.NextBool(0.06)) {
        out->push_back(
            {p, "y:wrote", Name("y:movie_", movie_zipf.Sample(&rng))});
      }
      if (rng.NextBool(0.09)) {
        out->push_back(
            {p, "y:wonPrize", Name("y:prize_", prize_zipf.Sample(&rng))});
      }
      if (rng.NextBool(0.12)) {
        out->push_back({p, "y:hasWebsite", Name("y:website_", i)});
      }
      if (rng.NextBool(0.30)) {
        out->push_back(
            {p, "y:hasAge", Name("y:age_", 18 + rng.NextBounded(80))});
      }
      if (rng.NextBool(0.10)) {
        out->push_back(
            {p, "y:diedIn", Name("y:city_", city_zipf.Sample(&rng))});
      }
    }
  });

  // Secondary entity facts.
  EmitBlocks(&ds, pool, cities, config.seed, /*salt=*/3, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t c = begin; c < end; ++c) {
      const std::string city = Name("y:city_", c);
      out->push_back({city, "y:isLocatedIn",
                      Name("y:country_", country_zipf.Sample(&rng))});
      out->push_back(
          {city, "y:hasPopulation", Name("y:pop_", rng.NextBounded(1000))});
      if (rng.NextBool(0.5)) {
        out->push_back(
            {city, "y:hasMayor", Name("y:person_", rng.NextBounded(persons))});
      }
    }
  });
  EmitBlocks(&ds, pool, universities, config.seed, /*salt=*/4, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t u = begin; u < end; ++u) {
      const std::string univ = Name("y:university_", u);
      out->push_back({univ, "y:establishedIn",
                      Name("y:year_", 1200 + rng.NextBounded(800))});
      out->push_back({univ, "y:locatedInCity",
                      Name("y:city_", city_zipf.Sample(&rng))});
    }
  });
  EmitBlocks(&ds, pool, companies, config.seed, /*salt=*/5, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t k = begin; k < end; ++k) {
      const std::string company = Name("y:company_", k);
      out->push_back({company, "y:headquarteredIn",
                      Name("y:city_", city_zipf.Sample(&rng))});
      out->push_back({company, "y:foundedIn",
                      Name("y:year_", 1800 + rng.NextBounded(220))});
      if (rng.NextBool(0.3)) {
        out->push_back({company, "y:ownedBy",
                        Name("y:person_", rng.NextBounded(persons))});
      }
    }
  });
  EmitBlocks(&ds, pool, movies, config.seed, /*salt=*/6, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t m = begin; m < end; ++m) {
      const std::string movie = Name("y:movie_", m);
      out->push_back(
          {movie, "y:hasGenre", Name("y:genre_", rng.NextBounded(genres))});
      out->push_back({movie, "y:releasedIn",
                      Name("y:year_", 1930 + rng.NextBounded(95))});
      if (rng.NextBool(0.4)) {
        out->push_back({movie, "y:producedBy",
                        Name("y:company_", rng.NextBounded(companies))});
      }
      if (rng.NextBool(0.2)) {
        out->push_back(
            {movie, "y:hasBudget", Name("y:budget_", rng.NextBounded(500))});
      }
      if (rng.NextBool(0.3)) {
        out->push_back({movie, "y:hasDuration",
                        Name("y:minutes_", 60 + rng.NextBounded(140))});
      }
    }
  });
  EmitBlocks(&ds, pool, prizes, config.seed, /*salt=*/7, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t p = begin; p < end; ++p) {
      const std::string prize = Name("y:prize_", p);
      out->push_back({prize, "y:awardedBy",
                      Name("y:company_", rng.NextBounded(companies))});
      out->push_back({prize, "y:namedAfter",
                      Name("y:person_", rng.NextBounded(persons))});
    }
  });
  EmitBlocks(&ds, pool, countries, config.seed, /*salt=*/8, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t c = begin; c < end; ++c) {
      const std::string country = Name("y:country_", c);
      out->push_back({country, "y:hasMotto", Name("y:motto_", c)});
      out->push_back({country, "y:hasOfficialLanguage",
                      Name("y:language_", rng.NextBounded(40))});
      out->push_back({country, "y:hasCurrency",
                      Name("y:currency_", rng.NextBounded(30))});
      out->push_back(
          {country, "y:hasArea", Name("y:area_", rng.NextBounded(2000))});
    }
  });

  return ds;
}

// ---------------------------------------------------------------------------
// WatDiv-like generator
// ---------------------------------------------------------------------------
//
// E-commerce schema: users, products, retailers, reviews, genres, cities.
// 86 predicates: a social/commercial core plus WatDiv-style numbered
// property groups (productProperty_*, userProperty_*), matching WatDiv's
// pgroup design and reaching the paper's #-P = 86.
Dataset GenerateWatDiv(const WatDivConfig& config, ThreadPool* pool) {
  Dataset ds;

  const uint64_t users = std::max<uint64_t>(60, config.target_triples / 11);
  const uint64_t products = std::max<uint64_t>(40, users / 2);
  const uint64_t retailers = std::max<uint64_t>(10, users / 60);
  const uint64_t reviews = std::max<uint64_t>(40, products);
  const uint64_t genres = 24;
  const uint64_t cities = std::max<uint64_t>(30, users / 90);
  const uint64_t countries = 25;
  constexpr int kProductProps = 30;
  constexpr int kUserProps = 30;

  ZipfSampler product_zipf(products, config.skew);
  ZipfSampler user_zipf(users, config.skew);
  ZipfSampler genre_zipf(genres, 0.7);
  ZipfSampler city_zipf(cities, config.skew);

  EmitBlocks(&ds, pool, users, config.seed, /*salt=*/1, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t i = begin; i < end; ++i) {
      const std::string u = Name("wsdbm:user_", i);
      out->push_back({u, "rdf:type", "wsdbm:User"});
      out->push_back({u, "wsdbm:userId", Name("wsdbm:id_", i)});
      out->push_back({u, "wsdbm:location",
                      Name("wsdbm:city_", city_zipf.Sample(&rng))});
      if (rng.NextBool(0.6)) {
        out->push_back({u, "wsdbm:gender",
                        rng.NextBool(0.5) ? "wsdbm:male" : "wsdbm:female"});
      }
      if (rng.NextBool(0.5)) {
        out->push_back({u, "wsdbm:birthDate",
                        Name("wsdbm:year_", 1940 + rng.NextBounded(70))});
      }
      // Social edges (heavy, Zipf-skewed in-degree). Average out-degree 1:
      // keeps the complex templates' partition sets within the 25% budget,
      // as in the paper's setups where whole sets are transferable.
      const uint64_t follows = rng.NextBounded(3);
      for (uint64_t f = 0; f < follows; ++f) {
        out->push_back({u, "wsdbm:follows",
                        Name("wsdbm:user_", user_zipf.Sample(&rng))});
      }
      if (rng.NextBool(0.5)) {
        out->push_back(
            {u, "wsdbm:friendOf",
             Name("wsdbm:user_",
                  SaltedRank(user_zipf.Sample(&rng), 617, users))});
      }
      const uint64_t purchases = rng.NextBounded(3);
      for (uint64_t k = 0; k < purchases; ++k) {
        out->push_back(
            {u, "wsdbm:purchases",
             Name("wsdbm:product_",
                  SaltedRank(product_zipf.Sample(&rng), 101, products))});
      }
      if (rng.NextBool(0.45)) {
        out->push_back(
            {u, "wsdbm:likes",
             Name("wsdbm:product_",
                  SaltedRank(product_zipf.Sample(&rng), 211, products))});
      }
      if (rng.NextBool(0.10)) {
        out->push_back(
            {u, "wsdbm:dislikes",
             Name("wsdbm:product_",
                  SaltedRank(product_zipf.Sample(&rng), 307, products))});
      }
      if (rng.NextBool(0.25)) {
        out->push_back({u, "wsdbm:subscribes",
                        Name("wsdbm:website_", rng.NextBounded(retailers + 5))});
      }
      if (rng.NextBool(0.30)) {
        out->push_back(
            {u, Name("wsdbm:userProperty_", rng.NextBounded(kUserProps)),
             Name("wsdbm:value_", rng.NextBounded(500))});
      }
    }
  });

  EmitBlocks(&ds, pool, products, config.seed, /*salt=*/2, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t i = begin; i < end; ++i) {
      const std::string p = Name("wsdbm:product_", i);
      out->push_back({p, "rdf:type", "wsdbm:Product"});
      out->push_back({p, "sorg:caption", Name("wsdbm:caption_", i)});
      out->push_back({p, "wsdbm:hasGenre",
                      Name("wsdbm:genre_", genre_zipf.Sample(&rng))});
      out->push_back(
          {p, "sorg:price", Name("wsdbm:price_", rng.NextBounded(1000))});
      if (rng.NextBool(0.5)) {
        out->push_back({p, "sorg:description", Name("wsdbm:text_", i)});
      }
      if (rng.NextBool(0.4)) {
        out->push_back({p, "wsdbm:producedBy",
                        Name("wsdbm:retailer_", rng.NextBounded(retailers))});
      }
      if (rng.NextBool(0.35)) {
        out->push_back(
            {p, Name("wsdbm:productProperty_", rng.NextBounded(kProductProps)),
             Name("wsdbm:value_", rng.NextBounded(500))});
      }
    }
  });

  EmitBlocks(&ds, pool, reviews, config.seed, /*salt=*/3, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t i = begin; i < end; ++i) {
      const std::string r = Name("wsdbm:review_", i);
      out->push_back({r, "rdf:type", "wsdbm:Review"});
      out->push_back(
          {r, "rev:reviewFor",
           Name("wsdbm:product_",
                SaltedRank(product_zipf.Sample(&rng), 401, products))});
      out->push_back(
          {r, "rev:reviewer",
           Name("wsdbm:user_", SaltedRank(user_zipf.Sample(&rng), 701, users))});
      out->push_back(
          {r, "rev:rating", Name("wsdbm:rating_", 1 + rng.NextBounded(5))});
      if (rng.NextBool(0.6)) {
        out->push_back({r, "rev:title", Name("wsdbm:title_", i)});
      }
      if (rng.NextBool(0.4)) {
        out->push_back({r, "rev:text", Name("wsdbm:text_", i)});
      }
    }
  });

  EmitBlocks(&ds, pool, retailers, config.seed, /*salt=*/4, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t i = begin; i < end; ++i) {
      const std::string rt = Name("wsdbm:retailer_", i);
      out->push_back({rt, "rdf:type", "wsdbm:Retailer"});
      out->push_back({rt, "sorg:legalName", Name("wsdbm:name_", i)});
      out->push_back({rt, "sorg:homepage", Name("wsdbm:website_", i)});
      const uint64_t sells = 1 + rng.NextBounded(6);
      for (uint64_t k = 0; k < sells; ++k) {
        out->push_back(
            {rt, "wsdbm:sells",
             Name("wsdbm:product_",
                  SaltedRank(product_zipf.Sample(&rng), 503, products))});
      }
    }
  });

  EmitBlocks(&ds, pool, cities, config.seed, /*salt=*/5, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t c = begin; c < end; ++c) {
      out->push_back({Name("wsdbm:city_", c), "gn:parentCountry",
                      Name("wsdbm:country_", rng.NextBounded(countries))});
    }
  });
  EmitBlocks(&ds, pool, countries, config.seed, /*salt=*/6, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t c = begin; c < end; ++c) {
      out->push_back({Name("wsdbm:country_", c), "sorg:population",
                      Name("wsdbm:pop_", rng.NextBounded(5000))});
    }
  });

  // Make sure every numbered property-group predicate exists (WatDiv's
  // #-P is fixed at 86 regardless of scale).
  for (int k = 0; k < kProductProps; ++k) {
    ds.Add("wsdbm:product_0", Name("wsdbm:productProperty_", k),
           Name("wsdbm:value_", k));
  }
  for (int k = 0; k < kUserProps; ++k) {
    ds.Add("wsdbm:user_0", Name("wsdbm:userProperty_", k),
           Name("wsdbm:value_", k));
  }

  return ds;
}

// ---------------------------------------------------------------------------
// Bio2RDF-like generator
// ---------------------------------------------------------------------------
//
// Biomedical schema: genes, proteins, drugs, diseases, articles, journals.
// 161 predicates: an interaction/annotation core (protein interactions are
// the dominant partition, as in iRefIndex) plus numbered low-frequency
// annotation predicates reaching the paper's #-P = 161.
Dataset GenerateBio2Rdf(const Bio2RdfConfig& config, ThreadPool* pool) {
  Dataset ds;

  const uint64_t genes = std::max<uint64_t>(50, config.target_triples / 30);
  const uint64_t proteins = genes;
  const uint64_t drugs = std::max<uint64_t>(25, genes / 4);
  const uint64_t diseases = std::max<uint64_t>(20, genes / 8);
  const uint64_t articles =
      std::max<uint64_t>(60, config.target_triples / 7);
  const uint64_t journals = std::max<uint64_t>(15, articles / 150);
  const uint64_t authors = std::max<uint64_t>(40, articles / 4);
  constexpr int kAnnotationProps = 130;

  ZipfSampler protein_zipf(proteins, config.skew);
  ZipfSampler gene_zipf(genes, config.skew);
  ZipfSampler disease_zipf(diseases, 0.8);
  ZipfSampler article_zipf(articles, config.skew);

  EmitBlocks(&ds, pool, genes, config.seed, /*salt=*/1, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t i = begin; i < end; ++i) {
      const std::string g = Name("b2r:gene_", i);
      out->push_back({g, "b2r:encodes", Name("b2r:protein_", i)});
      if (rng.NextBool(0.15)) {
        out->push_back(
            {g, "b2r:hasTaxon", Name("b2r:taxon_", rng.NextBounded(25))});
      }
      out->push_back({g, "b2r:hasSymbol", Name("b2r:symbol_", i)});
      out->push_back({g, "b2r:locatedOnChromosome",
                      Name("b2r:chromosome_", rng.NextBounded(24))});
      if (rng.NextBool(0.4)) {
        out->push_back({g, "b2r:associatedWithDisease",
                        Name("b2r:disease_", disease_zipf.Sample(&rng))});
      }
      if (rng.NextBool(0.25)) {
        out->push_back(
            {g, "b2r:hasOrtholog", Name("b2r:gene_", gene_zipf.Sample(&rng))});
      }
      if (rng.NextBool(0.30)) {
        out->push_back(
            {g, "b2r:expressedIn", Name("b2r:tissue_", rng.NextBounded(60))});
      }
    }
  });

  EmitBlocks(&ds, pool, proteins, config.seed, /*salt=*/2, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t i = begin; i < end; ++i) {
      const std::string p = Name("b2r:protein_", i);
      // Protein-protein interactions: a dominant but budget-compatible
      // partition (several complex-subquery partition sets must be able to
      // coexist under the 25% graph-store budget).
      const uint64_t interactions = 1 + rng.NextBounded(2);
      for (uint64_t k = 0; k < interactions; ++k) {
        out->push_back({p, "b2r:interactsWith",
                        Name("b2r:protein_", protein_zipf.Sample(&rng))});
      }
      out->push_back(
          {p, "b2r:hasFunction", Name("b2r:function_", rng.NextBounded(200))});
      if (rng.NextBool(0.5)) {
        out->push_back({p, "b2r:memberOfFamily",
                        Name("b2r:family_", rng.NextBounded(80))});
      }
      if (rng.NextBool(0.3)) {
        out->push_back(
            {p, "b2r:hasDomain", Name("b2r:domain_", rng.NextBounded(120))});
      }
      if (rng.NextBool(0.2)) {
        out->push_back({p, "b2r:localizedIn",
                        Name("b2r:compartment_", rng.NextBounded(30))});
      }
      if (rng.NextBool(0.2)) {
        out->push_back({p, "b2r:hasSequenceLength",
                        Name("b2r:length_", 50 + rng.NextBounded(3000))});
      }
    }
  });

  EmitBlocks(&ds, pool, drugs, config.seed, /*salt=*/3, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t i = begin; i < end; ++i) {
      const std::string d = Name("b2r:drug_", i);
      const uint64_t targets = 1 + rng.NextBounded(3);
      for (uint64_t k = 0; k < targets; ++k) {
        out->push_back(
            {d, "b2r:targets",
             Name("b2r:protein_",
                  SaltedRank(protein_zipf.Sample(&rng), 131, proteins))});
      }
      if (rng.NextBool(0.6)) {
        out->push_back({d, "b2r:treatsDisease",
                        Name("b2r:disease_", disease_zipf.Sample(&rng))});
      }
      if (rng.NextBool(0.4)) {
        out->push_back({d, "b2r:hasSideEffect",
                        Name("b2r:sideEffect_", rng.NextBounded(150))});
      }
      if (rng.NextBool(0.25)) {
        out->push_back({d, "b2r:interactsWithDrug",
                        Name("b2r:drug_", rng.NextBounded(drugs))});
      }
      out->push_back({d, "b2r:hasFormula", Name("b2r:formula_", i)});
      if (rng.NextBool(0.3)) {
        out->push_back(
            {d, "b2r:approvedBy", Name("b2r:agency_", rng.NextBounded(6))});
      }
      if (rng.NextBool(0.3)) {
        out->push_back(
            {d, "b2r:hasDosage", Name("b2r:dosage_", rng.NextBounded(40))});
      }
    }
  });

  EmitBlocks(&ds, pool, diseases, config.seed, /*salt=*/4, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t i = begin; i < end; ++i) {
      const std::string d = Name("b2r:disease_", i);
      out->push_back(
          {d, "b2r:hasSymptom", Name("b2r:symptom_", rng.NextBounded(100))});
      if (rng.NextBool(0.5)) {
        out->push_back(
            {d, "b2r:affectsOrgan", Name("b2r:organ_", rng.NextBounded(40))});
      }
      if (rng.NextBool(0.3)) {
        out->push_back({d, "b2r:hasPrevalence",
                        Name("b2r:prevalence_", rng.NextBounded(20))});
      }
    }
  });

  EmitBlocks(&ds, pool, articles, config.seed, /*salt=*/5, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t i = begin; i < end; ++i) {
      const std::string a = Name("b2r:article_", i);
      out->push_back({a, "b2r:publishedIn",
                      Name("b2r:journal_", rng.NextBounded(journals))});
      out->push_back(
          {a, "b2r:hasAuthor", Name("b2r:author_", rng.NextBounded(authors))});
      if (rng.NextBool(0.30)) {
        out->push_back(
            {a, "b2r:mentionsGene",
             Name("b2r:gene_", SaltedRank(gene_zipf.Sample(&rng), 233, genes))});
      }
      if (rng.NextBool(0.30)) {
        out->push_back(
            {a, "b2r:mentionsDrug", Name("b2r:drug_", rng.NextBounded(drugs))});
      }
      if (i > 0 && rng.NextBool(0.5)) {
        out->push_back({a, "b2r:cites",
                        Name("b2r:article_", article_zipf.Sample(&rng) % i)});
      }
      if (rng.NextBool(0.4)) {
        out->push_back({a, "b2r:publishedInYear",
                        Name("b2r:year_", 1970 + rng.NextBounded(55))});
      }
      if (rng.NextBool(0.15)) {
        out->push_back(
            {a, Name("b2r:annotation_", rng.NextBounded(kAnnotationProps)),
             Name("b2r:term_", rng.NextBounded(400))});
      }
    }
  });

  EmitBlocks(&ds, pool, journals, config.seed, /*salt=*/6, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    (void)rng_p;
    for (uint64_t j = begin; j < end; ++j) {
      out->push_back(
          {Name("b2r:journal_", j), "b2r:hasISSN", Name("b2r:issn_", j)});
    }
  });
  EmitBlocks(&ds, pool, authors, config.seed, /*salt=*/7, [&](
      uint64_t begin, uint64_t end, Rng* rng_p, Block* out) {
    Rng& rng = *rng_p;
    for (uint64_t a = begin; a < end; ++a) {
      if (rng.NextBool(0.5)) {
        out->push_back({Name("b2r:author_", a), "b2r:affiliatedWith",
                        Name("b2r:institute_", rng.NextBounded(50))});
      }
    }
  });

  // Pin the predicate count at 161 regardless of scale: core (~31) +
  // 130 annotation predicates.
  for (int k = 0; k < kAnnotationProps; ++k) {
    ds.Add("b2r:article_0", Name("b2r:annotation_", k), Name("b2r:term_", k));
  }

  return ds;
}

}  // namespace dskg::workload
