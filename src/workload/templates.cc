#include "workload/templates.h"

namespace dskg::workload {

std::vector<QueryTemplate> YagoTemplates() {
  std::vector<QueryTemplate> out;
  // Y1 — the paper's Example 1: given/family names of people born in the
  // same city as their academic advisor, married to someone also born
  // there; the won prize is the mutation anchor.
  out.push_back(QueryTemplate{
      "yago-advisor-city",
      "SELECT ?GivenName ?FamilyName WHERE { "
      "?p y:hasGivenName ?GivenName . "
      "?p y:hasFamilyName ?FamilyName . "
      "?p y:wasBornIn ?city . "
      "?p y:hasAcademicAdvisor ?a . "
      "?a y:wasBornIn ?city . "
      "?p y:isMarriedTo ?p2 . "
      "?p2 y:wasBornIn ?city . "
      "?p y:wonPrize $prize . }",
      {{"prize", "y:wonPrize", true}}});
  // Y2 — co-actors (in movies of a given genre) born in the same city.
  out.push_back(QueryTemplate{
      "yago-coactors",
      "SELECT ?p1 ?p2 WHERE { "
      "?p1 y:actedIn ?m . "
      "?p2 y:actedIn ?m . "
      "?m y:hasGenre $g . "
      "?p1 y:wasBornIn ?c . "
      "?p2 y:wasBornIn ?c . }",
      {{"g", "y:hasGenre", true}}});
  // Y3 — couples born in the same city, one working at a given company.
  out.push_back(QueryTemplate{
      "yago-married-samecity",
      "SELECT ?p ?p2 WHERE { "
      "?p y:isMarriedTo ?p2 . "
      "?p y:wasBornIn ?c . "
      "?p2 y:wasBornIn ?c . "
      "?p y:worksAt $comp . }",
      {{"comp", "y:worksAt", true}}});
  // Y4 — winners of a given prize and where their university is located.
  out.push_back(QueryTemplate{
      "yago-prize-university",
      "SELECT ?p ?c WHERE { "
      "?p y:wonPrize $prize . "
      "?p y:graduatedFrom ?u . "
      "?u y:locatedInCity ?c . }",
      {{"prize", "y:wonPrize", true}}});
  return out;
}

std::vector<QueryTemplate> WatDivLinearTemplates() {
  // A mix of 3-hop paths (whose tail two hops form a complex subquery)
  // and plain 2-hop paths with no complex subquery — linear workloads are
  // the least accelerable group, as in the paper's Figure 3b.
  std::vector<QueryTemplate> out;
  out.push_back(QueryTemplate{
      "watdiv-l1",
      "SELECT ?u ?v WHERE { "
      "?u wsdbm:follows ?v . "
      "?v wsdbm:likes ?p . "
      "?p wsdbm:hasGenre $g . }",
      {{"g", "wsdbm:hasGenre", true}}});
  out.push_back(QueryTemplate{
      "watdiv-l2",
      "SELECT ?r ?p WHERE { "
      "?r rev:reviewFor ?p . "
      "?p wsdbm:producedBy ?rt . "
      "?rt sorg:homepage $hp . }",
      {{"hp", "sorg:homepage", true}}});
  out.push_back(QueryTemplate{
      "watdiv-l3",
      "SELECT ?u WHERE { "
      "?u wsdbm:location ?c . "
      "?c gn:parentCountry $co . }",
      {{"co", "gn:parentCountry", true}}});
  out.push_back(QueryTemplate{
      "watdiv-l4",
      "SELECT ?u ?v WHERE { "
      "?u wsdbm:follows ?v . "
      "?v wsdbm:purchases ?p . "
      "?p wsdbm:hasGenre $g . }",
      {{"g", "wsdbm:hasGenre", true}}});
  out.push_back(QueryTemplate{
      "watdiv-l5",
      "SELECT ?u ?v WHERE { "
      "?u wsdbm:friendOf ?v . "
      "?v wsdbm:location $c . }",
      {{"c", "wsdbm:location", true}}});
  out.push_back(QueryTemplate{
      "watdiv-l6",
      "SELECT ?r ?u WHERE { "
      "?r rev:reviewer ?u . "
      "?u wsdbm:location ?c . "
      "?c gn:parentCountry $co . }",
      {{"co", "gn:parentCountry", true}}});
  out.push_back(QueryTemplate{
      "watdiv-l7",
      "SELECT ?p WHERE { "
      "?u wsdbm:subscribes $w . "
      "?u wsdbm:likes ?p . }",
      {{"w", "wsdbm:subscribes", true}}});
  return out;
}

std::vector<QueryTemplate> WatDivStarTemplates() {
  std::vector<QueryTemplate> out;
  out.push_back(QueryTemplate{
      "watdiv-s1",
      "SELECT ?p ?cap ?price WHERE { "
      "?p sorg:caption ?cap . "
      "?p sorg:price ?price . "
      "?p wsdbm:hasGenre $g . "
      "?p wsdbm:producedBy $rt . }",
      {{"g", "wsdbm:hasGenre", true}, {"rt", "wsdbm:producedBy", true}}});
  out.push_back(QueryTemplate{
      "watdiv-s2",
      "SELECT ?u ?c WHERE { "
      "?u wsdbm:location ?c . "
      "?u wsdbm:gender $gen . "
      "?u wsdbm:birthDate ?b . "
      "?u wsdbm:likes $prod . }",
      {{"gen", "wsdbm:gender", true}, {"prod", "wsdbm:likes", true}}});
  out.push_back(QueryTemplate{
      "watdiv-s3",
      "SELECT ?r ?rating WHERE { "
      "?r rev:reviewFor $p . "
      "?r rev:rating ?rating . "
      "?r rev:reviewer ?u . "
      "?u wsdbm:location ?c . }",
      {{"p", "rev:reviewFor", true}}});
  out.push_back(QueryTemplate{
      "watdiv-s4",
      "SELECT ?rt ?name WHERE { "
      "?rt sorg:legalName ?name . "
      "?rt wsdbm:sells ?p . "
      "?p wsdbm:hasGenre $g . }",
      {{"g", "wsdbm:hasGenre", true}}});
  out.push_back(QueryTemplate{
      "watdiv-s5",
      "SELECT ?p ?d WHERE { "
      "?p sorg:description ?d . "
      "?p sorg:price ?price . "
      "?p wsdbm:hasGenre $g . "
      "?p wsdbm:producedBy $rt . }",
      {{"g", "wsdbm:hasGenre", true}, {"rt", "wsdbm:producedBy", true}}});
  return out;
}

std::vector<QueryTemplate> WatDivSnowflakeTemplates() {
  std::vector<QueryTemplate> out;
  out.push_back(QueryTemplate{
      "watdiv-f1",
      "SELECT ?u ?p ?r WHERE { "
      "?u wsdbm:purchases ?p . "
      "?p wsdbm:hasGenre $g . "
      "?r rev:reviewFor ?p . "
      "?r rev:rating ?rating . "
      "?u wsdbm:location $c . }",
      {{"g", "wsdbm:hasGenre", true}, {"c", "wsdbm:location", true}}});
  out.push_back(QueryTemplate{
      "watdiv-f2",
      "SELECT ?rt ?p ?r WHERE { "
      "?rt wsdbm:sells ?p . "
      "?rt sorg:legalName ?name . "
      "?r rev:reviewFor ?p . "
      "?r rev:reviewer ?u . "
      "?u wsdbm:location $c . }",
      {{"c", "wsdbm:location", true}}});
  out.push_back(QueryTemplate{
      "watdiv-f3",
      "SELECT ?u ?v ?p WHERE { "
      "?u wsdbm:follows ?v . "
      "?v wsdbm:purchases ?p . "
      "?p wsdbm:hasGenre $g . "
      "?p wsdbm:producedBy ?rt . }",
      {{"g", "wsdbm:hasGenre", true}}});
  out.push_back(QueryTemplate{
      "watdiv-f4",
      "SELECT ?p ?r1 ?r2 WHERE { "
      "?r1 rev:reviewFor ?p . "
      "?r2 rev:reviewFor ?p . "
      "?r1 rev:rating ?rating1 . "
      "?r2 rev:rating ?rating2 . "
      "?p wsdbm:hasGenre $g . }",
      {{"g", "wsdbm:hasGenre", true}}});
  out.push_back(QueryTemplate{
      "watdiv-f5",
      "SELECT ?u1 ?u2 ?p WHERE { "
      "?u1 wsdbm:likes ?p . "
      "?u2 wsdbm:likes ?p . "
      "?u1 wsdbm:location ?c . "
      "?u2 wsdbm:location ?c . }",
      {}});
  return out;
}

std::vector<QueryTemplate> WatDivComplexTemplates() {
  std::vector<QueryTemplate> out;
  out.push_back(QueryTemplate{
      "watdiv-c1",
      "SELECT ?u ?v ?p ?r WHERE { "
      "?u wsdbm:follows ?v . "
      "?u wsdbm:likes ?p . "
      "?v wsdbm:likes ?p . "
      "?r rev:reviewFor ?p . "
      "?r rev:rating ?rating . "
      "?p wsdbm:hasGenre $g . }",
      {{"g", "wsdbm:hasGenre", true}}});
  out.push_back(QueryTemplate{
      "watdiv-c2",
      "SELECT ?u1 ?u2 WHERE { "
      "?u1 wsdbm:friendOf ?u2 . "
      "?u1 wsdbm:location ?c . "
      "?u2 wsdbm:location ?c . "
      "?u1 wsdbm:purchases ?p . "
      "?u2 wsdbm:purchases ?p . }",
      {}});
  out.push_back(QueryTemplate{
      "watdiv-c3",
      "SELECT ?rt ?u ?p WHERE { "
      "?rt wsdbm:sells ?p . "
      "?u wsdbm:purchases ?p . "
      "?u wsdbm:follows ?v . "
      "?v wsdbm:likes ?p . "
      "?rt sorg:legalName ?name . }",
      {}});
  return out;
}

std::vector<QueryTemplate> Bio2RdfTemplates() {
  std::vector<QueryTemplate> out;
  out.push_back(QueryTemplate{
      "bio2rdf-b1",
      "SELECT ?drug ?gene WHERE { "
      "?drug b2r:targets ?prot . "
      "?prot b2r:interactsWith ?prot2 . "
      "?gene b2r:encodes ?prot2 . "
      "?gene b2r:associatedWithDisease $dis . }",
      {{"dis", "b2r:associatedWithDisease", true}}});
  out.push_back(QueryTemplate{
      "bio2rdf-b2",
      "SELECT ?a ?g WHERE { "
      "?a b2r:mentionsGene ?g . "
      "?g b2r:encodes ?p . "
      "?p b2r:memberOfFamily $fam . }",
      {{"fam", "b2r:memberOfFamily", true}}});
  out.push_back(QueryTemplate{
      "bio2rdf-b3",
      "SELECT ?d ?pr WHERE { "
      "?d b2r:treatsDisease ?dis . "
      "?dis b2r:hasSymptom $sym . "
      "?d b2r:targets ?pr . }",
      {{"sym", "b2r:hasSymptom", true}}});
  out.push_back(QueryTemplate{
      "bio2rdf-b4",
      "SELECT ?a ?b WHERE { "
      "?a b2r:cites ?b . "
      "?b b2r:mentionsGene ?g . "
      "?g b2r:locatedOnChromosome $chr . }",
      {{"chr", "b2r:locatedOnChromosome", true}}});
  out.push_back(QueryTemplate{
      "bio2rdf-b5",
      "SELECT ?p1 ?p3 WHERE { "
      "?p1 b2r:interactsWith ?p2 . "
      "?p2 b2r:interactsWith ?p3 . "
      "?p1 b2r:hasFunction $f . }",
      {{"f", "b2r:hasFunction", true}}});
  return out;
}

}  // namespace dskg::workload
