#include "workload/update_stream.h"

#include <algorithm>
#include <array>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace dskg::workload {

using core::UpdateBatch;
using core::UpdateLog;
using core::UpdateOp;
using rdf::TermId;

namespace {

/// Decoded sampling pools of one predicate.
struct PredicatePool {
  std::string name;
  std::vector<TermId> subjects;
  std::vector<TermId> objects;
  uint64_t size = 0;
};

}  // namespace

uint32_t UpdateStreamShardOf(std::string_view predicate, int num_shards) {
  if (num_shards <= 1) return 0;
  // Seeded FNV-1a: stable across platforms and standard-library
  // implementations, unlike std::hash.
  uint64_t h = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;
  for (char c : predicate) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return static_cast<uint32_t>(h % static_cast<uint64_t>(num_shards));
}

UpdateLog GenerateUpdateStream(const rdf::Dataset& dataset,
                               const UpdateStreamConfig& config) {
  UpdateLog log;
  if (config.num_batches <= 0 || config.ops_per_batch <= 0 ||
      dataset.num_triples() == 0) {
    return log;
  }
  const rdf::Dictionary& dict = dataset.dict();
  Rng rng(config.seed);

  // Per-predicate pools, ordered by descending partition size (then id)
  // so Zipf rank 0 is the heaviest partition, deterministically.
  std::unordered_map<TermId, size_t> pool_index;
  std::vector<PredicatePool> pools;
  for (const rdf::Triple& t : dataset.triples()) {
    auto [it, inserted] = pool_index.emplace(t.predicate, pools.size());
    if (inserted) {
      pools.emplace_back();
      pools.back().name = dict.TermOf(t.predicate);
    }
    PredicatePool& pool = pools[it->second];
    pool.subjects.push_back(t.subject);
    pool.objects.push_back(t.object);
    pool.size += 1;
  }
  std::sort(pools.begin(), pools.end(),
            [](const PredicatePool& a, const PredicatePool& b) {
              if (a.size != b.size) return a.size > b.size;
              return a.name < b.name;
            });
  const ZipfSampler predicate_rank(pools.size(), config.skew);

  // The live set: initial triples plus inserts minus deletes, as term
  // strings (the log must be replayable against any store). Sampled
  // uniformly with swap-pop removal. `membership` dedupes it — the
  // stores have set semantics, so a fact must appear at most once here
  // or a delete of the extra copy would be a guaranteed no-op miss.
  std::vector<std::array<std::string, 3>> live;
  std::unordered_set<std::string> membership;
  auto fact_key = [](const std::array<std::string, 3>& f) {
    return f[0] + '\x1f' + f[1] + '\x1f' + f[2];
  };
  live.reserve(dataset.num_triples());
  for (const rdf::Triple& t : dataset.triples()) {
    std::array<std::string, 3> fact{std::string(dict.TermOf(t.subject)),
                                    std::string(dict.TermOf(t.predicate)),
                                    std::string(dict.TermOf(t.object))};
    if (membership.insert(fact_key(fact)).second) {
      live.push_back(std::move(fact));
    }
  }

  uint64_t fresh_entities = 0;
  for (int b = 0; b < config.num_batches; ++b) {
    UpdateBatch batch;
    batch.ops.reserve(static_cast<size_t>(config.ops_per_batch));
    for (int i = 0; i < config.ops_per_batch; ++i) {
      const bool insert = live.empty() || rng.NextBool(config.insert_fraction);
      if (insert) {
        const PredicatePool& pool = pools[predicate_rank.Sample(&rng)];
        std::string subject;
        if (rng.NextBool(config.fresh_entity_prob)) {
          subject = "upd:entity_" + std::to_string(fresh_entities++);
        } else {
          subject =
              dict.TermOf(pool.subjects[rng.NextIndex(pool.subjects.size())]);
        }
        std::string object(
            dict.TermOf(pool.objects[rng.NextIndex(pool.objects.size())]));
        std::array<std::string, 3> fact{subject, pool.name, object};
        if (membership.insert(fact_key(fact)).second) {
          live.push_back(std::move(fact));
        }  // else: the store will no-op this duplicate; keep `live` exact
        batch.ops.push_back(UpdateOp::Insert(std::move(subject), pool.name,
                                             std::move(object)));
      } else {
        const size_t idx = rng.NextIndex(live.size());
        std::array<std::string, 3> victim = std::move(live[idx]);
        live[idx] = std::move(live.back());
        live.pop_back();
        membership.erase(fact_key(victim));
        batch.ops.push_back(UpdateOp::Delete(
            std::move(victim[0]), std::move(victim[1]), std::move(victim[2])));
      }
    }
    // Split mode: the full batch above is generated from the same RNG
    // state regardless of the split, so each shard's slice is a pure
    // order-preserving filter of the num_shards == 1 batch.
    if (config.num_shards > 1) {
      UpdateBatch slice;
      for (UpdateOp& op : batch.ops) {
        if (UpdateStreamShardOf(op.predicate, config.num_shards) ==
            static_cast<uint32_t>(config.shard_index)) {
          slice.ops.push_back(std::move(op));
        }
      }
      log.Append(std::move(slice));
    } else {
      log.Append(std::move(batch));
    }
  }
  return log;
}

}  // namespace dskg::workload
