#include "workload/workload.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>

#include "sparql/parser.h"

namespace dskg::workload {

using rdf::TermId;

std::vector<std::pair<size_t, size_t>> EvenRanges(size_t total, int n) {
  std::vector<std::pair<size_t, size_t>> out;
  if (n <= 0) return out;
  const size_t base = total / static_cast<size_t>(n);
  size_t remainder = total % static_cast<size_t>(n);
  size_t pos = 0;
  for (int b = 0; b < n; ++b) {
    size_t take = base + (remainder > 0 ? 1 : 0);
    if (remainder > 0) --remainder;
    take = std::min(take, total - pos);
    out.emplace_back(pos, pos + take);
    pos += take;
  }
  return out;
}

std::vector<std::pair<size_t, size_t>> Workload::BatchRanges(int n) const {
  return EvenRanges(queries.size(), n);
}

std::vector<std::vector<WorkloadQuery>> Workload::SplitBatches(int n) const {
  std::vector<std::vector<WorkloadQuery>> out;
  for (const auto& [begin, end] : BatchRanges(n)) {
    out.emplace_back(queries.begin() + static_cast<ptrdiff_t>(begin),
                     queries.begin() + static_cast<ptrdiff_t>(end));
  }
  return out;
}

WorkloadBuilder::WorkloadBuilder(const rdf::Dataset* dataset)
    : dataset_(dataset) {}

Result<std::string> WorkloadBuilder::SampleTerm(const std::string& predicate,
                                                bool sample_object,
                                                Rng* rng) const {
  const rdf::Dictionary& dict = dataset_->dict();
  const TermId pred = dict.Lookup(predicate);
  if (pred == rdf::kInvalidTermId) {
    return Status::InvalidArgument("template predicate " + predicate +
                                   " not present in dataset");
  }
  // Reservoir-free frequency-weighted sampling: pick a uniformly random
  // triple of the predicate by a single pass with rejection on a
  // precomputed per-predicate extent would need an index; the dataset's
  // triple list is scanned once per Build() via the cache below.
  auto it = pools_.find(pred);
  if (it == pools_.end()) {
    Pool pool;
    for (const rdf::Triple& t : dataset_->triples()) {
      if (t.predicate != pred) continue;
      pool.subjects.push_back(t.subject);
      pool.objects.push_back(t.object);
    }
    it = pools_.emplace(pred, std::move(pool)).first;
  }
  const Pool& pool = it->second;
  const std::vector<TermId>& side =
      sample_object ? pool.objects : pool.subjects;
  if (side.empty()) {
    return Status::InvalidArgument("predicate " + predicate +
                                   " has no triples to sample from");
  }
  return std::string(dict.TermOf(side[rng->NextIndex(side.size())]));
}

Result<Workload> WorkloadBuilder::Build(
    const std::string& name, const std::vector<QueryTemplate>& templates,
    const WorkloadOptions& options) const {
  Workload out;
  out.name = name;
  Rng rng(options.seed);

  for (size_t ti = 0; ti < templates.size(); ++ti) {
    const QueryTemplate& tmpl = templates[ti];
    DSKG_ASSIGN_OR_RETURN(sparql::Query skeleton,
                          sparql::Parser::Parse(tmpl.text));
    // Validate slots against the skeleton: each is a `$param` (canonical)
    // or a variable (legacy AST substitution).
    const auto counts = skeleton.VariableCounts();
    const std::vector<std::string> params = skeleton.Parameters();
    bool all_param_slots = true;
    for (const QueryTemplate::Slot& slot : tmpl.slots) {
      const bool is_param =
          std::find(params.begin(), params.end(), slot.variable) !=
          params.end();
      if (!is_param) {
        all_param_slots = false;
        if (counts.find(slot.variable) == counts.end()) {
          return Status::InvalidArgument("template " + tmpl.name +
                                         ": slot variable ?" + slot.variable +
                                         " not in skeleton");
        }
        for (const std::string& sv : skeleton.select_vars) {
          if (sv == slot.variable) {
            return Status::InvalidArgument("template " + tmpl.name +
                                           ": slot variable ?" +
                                           slot.variable + " is projected");
          }
        }
      }
    }
    // Every skeleton parameter must be covered by a slot, or executions
    // would always fail with an unbound parameter.
    for (const std::string& p : params) {
      const bool covered =
          std::any_of(tmpl.slots.begin(), tmpl.slots.end(),
                      [&](const QueryTemplate::Slot& s) {
                        return s.variable == p;
                      });
      if (!covered) {
        return Status::InvalidArgument("template " + tmpl.name +
                                       ": parameter $" + p +
                                       " has no sampling slot");
      }
    }

    const int versions = 1 + options.mutations_per_template;
    for (int m = 0; m < versions; ++m) {
      sparql::Query q = skeleton;
      WorkloadQuery wq;
      for (const QueryTemplate::Slot& slot : tmpl.slots) {
        DSKG_ASSIGN_OR_RETURN(
            std::string value,
            SampleTerm(slot.predicate, slot.sample_object, &rng));
        const sparql::PatternTerm replacement =
            sparql::PatternTerm::Const(value);
        for (sparql::TriplePattern& p : q.patterns) {
          for (sparql::PatternTerm* end : {&p.subject, &p.object}) {
            const bool hits = (end->is_variable || end->is_param) &&
                              end->text == slot.variable;
            if (hits) *end = replacement;
          }
        }
        wq.bindings.emplace_back(slot.variable, std::move(value));
      }
      wq.query = std::move(q);
      wq.template_index = static_cast<int>(ti);
      wq.mutation = m;
      if (all_param_slots) wq.prepared_text = tmpl.text;
      out.queries.push_back(std::move(wq));
    }
  }

  if (!options.ordered) {
    rng.Shuffle(&out.queries);
  }
  return out;
}

}  // namespace dskg::workload
