#ifndef DSKG_WORKLOAD_UPDATE_STREAM_H_
#define DSKG_WORKLOAD_UPDATE_STREAM_H_

/// \file update_stream.h
/// Synthetic streaming-update generator for the online-update subsystem.
///
/// Produces a deterministic `core::UpdateLog` of insert/delete batches
/// shaped like real knowledge-graph ingestion against an existing dataset:
///
///   * updates are Zipf-skewed across predicates (heavy partitions churn
///     the most, which is also what stresses DOTIL's drift re-tuning);
///   * inserts attach either fresh entities (breaking news about unseen
///     subjects) or existing ones (densification), with objects sampled
///     from the predicate's existing object pool so inserted facts join
///     with the query workload;
///   * deletes pick uniformly from the *live* set — initial triples plus
///     prior inserts minus prior deletes — so sustained streams keep
///     deleting meaningful facts instead of missing.
///
/// Everything is a pure function of (dataset, config): the same seed
/// yields the same log on every platform, keeping online benchmarks and
/// the randomized equivalence tests reproducible.

#include <cstdint>
#include <string_view>

#include "core/update.h"
#include "rdf/dataset.h"

namespace dskg::workload {

/// Shape of a generated update stream.
struct UpdateStreamConfig {
  uint64_t seed = 11;
  /// Number of batches in the log.
  int num_batches = 5;
  /// Mutations per batch.
  int ops_per_batch = 1000;
  /// Fraction of ops that are inserts (the rest are deletes).
  double insert_fraction = 0.7;
  /// Zipf skew of inserts across predicates (0 = uniform).
  double skew = 0.8;
  /// Probability that an insert's subject is a brand-new entity (interns
  /// fresh dictionary terms, exercising id assignment under updates).
  double fresh_entity_prob = 0.5;

  /// Per-shard split mode. With `num_shards > 1` the generator first
  /// produces the full (`num_shards == 1`) log from the same seed, then
  /// keeps only the ops whose predicate hashes to `shard_index` —
  /// batch structure and within-batch op order preserved. The N per-shard
  /// logs therefore partition the full log exactly: concatenating any
  /// batch's per-shard slices in shard order and stable-sorting by the
  /// original op position reproduces the unsharded batch (the workload
  /// test asserts the partition property directly).
  int num_shards = 1;
  /// Which shard's slice to emit; must be in [0, num_shards).
  int shard_index = 0;
};

/// The split-mode shard owning `predicate`: a seeded, platform-stable
/// hash of the predicate text modulo `num_shards`. Exposed so injectors
/// and tests agree with the generator about stream routing.
uint32_t UpdateStreamShardOf(std::string_view predicate, int num_shards);

/// Generates an update log against `dataset` (borrowed for reading only).
core::UpdateLog GenerateUpdateStream(const rdf::Dataset& dataset,
                                     const UpdateStreamConfig& config);

}  // namespace dskg::workload

#endif  // DSKG_WORKLOAD_UPDATE_STREAM_H_
