#ifndef DSKG_WORKLOAD_WORKLOAD_H_
#define DSKG_WORKLOAD_WORKLOAD_H_

/// \file workload.h
/// Query workload construction: templates + mutations, ordered/random
/// versions, and batch splitting.
///
/// Following the paper's methodology (§6.1): each workload consists of
/// query templates plus four *mutations* of each template — same BGP
/// structure, different constants sampled from the dataset. The *ordered*
/// version clusters each template with its mutations; the *random* version
/// shuffles all queries. Experiments consume the workload in batches of
/// one fifth.

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "rdf/dataset.h"
#include "sparql/ast.h"

namespace dskg::workload {

/// Splits [0, total) into `n` consecutive half-open ranges of near-equal
/// size, earlier ranges taking the remainder. The single splitting rule
/// behind `Workload::BatchRanges` and the online runner's update-log
/// spreading — shared so the two can never disagree.
std::vector<std::pair<size_t, size_t>> EvenRanges(size_t total, int n);

/// A query template: a BGP skeleton plus slots that mutations fill with
/// constants sampled from the dataset.
///
/// Canonical templates mark their slots as `$parameters` in the text
/// ("?p y:wonPrize $prize"), so one skeleton is prepared once and every
/// mutation is a `Bind` — the runners route these through the session's
/// prepared-query cache. Legacy `?variable` slots are still accepted and
/// instantiated by AST substitution (those queries re-plan per
/// execution).
struct QueryTemplate {
  /// Identifier used in reports ("yago-advisor-city").
  std::string name;
  /// SPARQL text of the skeleton; slot positions are `$params` (or, for
  /// legacy templates, variables).
  std::string text;

  /// One mutable position of the skeleton.
  struct Slot {
    /// Parameter (or legacy variable) to fill, without the '$'/'?'.
    /// Must not be projected.
    std::string variable;
    /// Predicate whose extent supplies sample values.
    std::string predicate;
    /// Sample from the predicate's objects (true) or subjects (false).
    bool sample_object = true;
  };
  std::vector<Slot> slots;
};

/// One query of a built workload.
struct WorkloadQuery {
  /// The fully bound query (every slot replaced by its sampled constant).
  sparql::Query query;
  /// Index of the originating template (for per-template analysis).
  int template_index = 0;
  /// 0 = the template's original instantiation, 1..k = mutations.
  int mutation = 0;

  /// The originating template's parameterized text, when every slot is a
  /// `$param` — the key the runners prepare once per template and re-bind
  /// per mutation. Empty for legacy (AST-substituted) instantiations;
  /// those execute through the one-shot path.
  std::string prepared_text;
  /// Parameter name -> sampled term text, aligned with `prepared_text`.
  std::vector<std::pair<std::string, std::string>> bindings;
};

/// A fully instantiated workload.
struct Workload {
  std::string name;
  std::vector<WorkloadQuery> queries;

  /// Splits into `n` consecutive batches of near-equal size (the paper
  /// uses n = 5). Earlier batches get the remainder.
  std::vector<std::vector<WorkloadQuery>> SplitBatches(int n) const;

  /// The half-open index ranges [begin, end) into `queries` of the same
  /// `n` batches, without copying any query — the runners' hot path uses
  /// this (a batch copy is pure overhead once workloads reach production
  /// size). Guaranteed to agree with `SplitBatches`.
  std::vector<std::pair<size_t, size_t>> BatchRanges(int n) const;
};

/// Options for workload construction.
struct WorkloadOptions {
  /// Mutations per template in addition to the original (paper: 4).
  int mutations_per_template = 4;
  /// Cluster template with its mutations (true) or shuffle all (false).
  bool ordered = true;
  uint64_t seed = 42;
};

/// Instantiates templates against a dataset.
class WorkloadBuilder {
 public:
  /// `dataset` is not owned and must outlive the builder.
  explicit WorkloadBuilder(const rdf::Dataset* dataset);

  /// Builds a workload named `name` from `templates`.
  /// Fails with InvalidArgument if a template is unparsable, projects a
  /// slot variable, or references a predicate absent from the dataset.
  Result<Workload> Build(const std::string& name,
                         const std::vector<QueryTemplate>& templates,
                         const WorkloadOptions& options) const;

 private:
  /// Sampled value pool for one (predicate, position).
  Result<std::string> SampleTerm(const std::string& predicate,
                                 bool sample_object, Rng* rng) const;

  struct Pool {
    std::vector<rdf::TermId> subjects;
    std::vector<rdf::TermId> objects;
  };

  const rdf::Dataset* dataset_;
  /// Lazily built per-predicate sample pools (cache only; logically const).
  mutable std::unordered_map<rdf::TermId, Pool> pools_;
};

}  // namespace dskg::workload

#endif  // DSKG_WORKLOAD_WORKLOAD_H_
