#ifndef DSKG_WORKLOAD_GENERATORS_H_
#define DSKG_WORKLOAD_GENERATORS_H_

/// \file generators.h
/// Synthetic knowledge-graph generators.
///
/// The paper evaluates on YAGO, WatDiv and Bio2RDF (Table 3). Those dumps
/// are not redistributable / available offline, so DSKG generates
/// synthetic graphs that reproduce the statistics the experiments actually
/// depend on: the predicate count (39 / 86 / 161), heavy predicate skew,
/// the entity-class structure the query templates traverse, and enough
/// correlation (e.g. advisors born in their student's city) that the
/// paper's flagship complex query has non-trivial answers. Scale is a
/// parameter; the default benches run at laptop scale.
///
/// All generators are deterministic functions of their config (seed
/// included) — independent of the optional thread pool: entities are
/// generated in fixed-size blocks, each block drawing from its own RNG
/// stream seeded by (config seed, loop salt, block id), and blocks are
/// interned in block order. The block decomposition never depends on the
/// worker count, so the parallel dataset is byte-identical to the serial
/// one (triple-for-triple and term-id-for-term-id) at every thread count.

#include <cstdint>

#include "rdf/dataset.h"

namespace dskg {
class ThreadPool;
}  // namespace dskg

namespace dskg::workload {

/// Configuration for the YAGO-like academic/social fact graph.
struct YagoConfig {
  uint64_t seed = 1;
  /// Approximate number of triples to generate.
  uint64_t target_triples = 200000;
  /// Zipf skew of city / prize / university popularity.
  double skew = 0.8;
  /// Probability that a person's academic advisor was born in the same
  /// city (drives the selectivity of the paper's flagship query).
  double advisor_same_city_prob = 0.25;
};

/// Configuration for the WatDiv-like e-commerce graph.
struct WatDivConfig {
  uint64_t seed = 2;
  uint64_t target_triples = 200000;
  double skew = 0.9;
};

/// Configuration for the Bio2RDF-like biomedical graph.
struct Bio2RdfConfig {
  uint64_t seed = 3;
  uint64_t target_triples = 250000;
  double skew = 0.85;
};

/// Generates a YAGO-like graph: persons, cities, universities, movies,
/// prizes, ... with 39 predicates (y:wasBornIn, y:hasAcademicAdvisor,
/// y:isMarriedTo, y:hasGivenName, ...). With a `pool`, entity blocks are
/// generated in parallel; the dataset is identical either way.
rdf::Dataset GenerateYago(const YagoConfig& config,
                          ThreadPool* pool = nullptr);

/// Generates a WatDiv-like graph: users, products, retailers, reviews,
/// genres, ... with 86 predicates (wsdbm:follows, wsdbm:purchases, ...).
rdf::Dataset GenerateWatDiv(const WatDivConfig& config,
                            ThreadPool* pool = nullptr);

/// Generates a Bio2RDF-like graph: genes, proteins, drugs, diseases,
/// articles, ... with 161 predicates (b2r:encodes, b2r:targets, ...).
rdf::Dataset GenerateBio2Rdf(const Bio2RdfConfig& config,
                             ThreadPool* pool = nullptr);

}  // namespace dskg::workload

#endif  // DSKG_WORKLOAD_GENERATORS_H_
