#include "common/status.h"

namespace dskg {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCapacityExceeded:
      return "CapacityExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace dskg
