#ifndef DSKG_COMMON_RNG_H_
#define DSKG_COMMON_RNG_H_

/// \file rng.h
/// Deterministic pseudo-random number generation.
///
/// All randomized components of DSKG (dataset generators, query template
/// mutations, the DOTIL initial-transfer coin flip) draw from an explicitly
/// seeded `Rng` so that every experiment in the benchmark harness is
/// bit-for-bit reproducible. The generator is xoroshiro128++ seeded through
/// SplitMix64, which is both fast and statistically strong for simulation
/// workloads.

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace dskg {

/// A small, fast, seedable PRNG (xoroshiro128++).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds yield equal
  /// streams on every platform.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Reseed(seed); }

  /// Re-seeds the generator, restarting its stream.
  void Reseed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 128-bit state, as
    // recommended by the xoroshiro authors.
    uint64_t x = seed;
    s0_ = SplitMix64(&x);
    s1_ = SplitMix64(&x);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;  // the all-zero state is invalid
  }

  /// Next 64 uniformly distributed bits.
  uint64_t NextU64() {
    const uint64_t r = Rotl(s0_ + s1_, 17) + s0_;
    const uint64_t t = s1_ ^ s0_;
    s0_ = Rotl(s0_, 49) ^ t ^ (t << 21);
    s1_ = Rotl(t, 28);
    return r;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// nearly-divisionless rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound) {
    assert(bound > 0);
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<uint64_t>(m);
    if (l < bound) {
      const uint64_t threshold = -bound % bound;
      while (l < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle of `v` using this generator.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      using std::swap;
      swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniformly random element index of a container of size `n`.
  size_t NextIndex(size_t n) { return static_cast<size_t>(NextBounded(n)); }

 private:
  static uint64_t SplitMix64(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
};

/// Samples from a Zipf(s, n) distribution over ranks {0, ..., n-1}.
///
/// Knowledge-graph predicates and entities are highly skewed; the dataset
/// generators use Zipfian rank selection to reproduce that skew. Sampling
/// is done by inverse transform over a precomputed CDF (O(log n) per draw).
class ZipfSampler {
 public:
  /// \param n      number of ranks (> 0)
  /// \param skew   Zipf exponent s >= 0 (0 = uniform)
  ZipfSampler(size_t n, double skew) : cdf_(n) {
    assert(n > 0);
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
  }

  /// Draws a rank in [0, n). Rank 0 is the most probable.
  size_t Sample(Rng* rng) const {
    double u = rng->NextDouble();
    // Binary search for the first CDF entry >= u.
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dskg

#endif  // DSKG_COMMON_RNG_H_
