#ifndef DSKG_COMMON_BYTES_H_
#define DSKG_COMMON_BYTES_H_

/// \file bytes.h
/// Little-endian binary codec helpers shared by the persistence tier's
/// on-disk formats (WAL records, snapshot sections) and the update-batch
/// codec.
///
/// Writers append to a `std::string` (the frame-then-checksum pattern
/// wants a contiguous payload anyway); the reader is a bounds-checked
/// cursor over a `string_view` that returns `Status` instead of reading
/// past the end — a truncated or corrupt buffer is a clean error, never
/// undefined behaviour. Integers are encoded fixed-width little-endian so
/// files are byte-identical across compilers on the little-endian
/// platforms the project targets.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dskg {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU16(std::string* out, uint16_t v) {
  char buf[2];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  out->append(buf, 2);
}

inline void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 4);
}

inline void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out->append(buf, 8);
}

inline void PutBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

/// Length-prefixed string: u32 byte count + raw bytes.
inline void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Bounds-checked sequential reader over an immutable byte buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  Status ReadU8(uint8_t* v) {
    DSKG_RETURN_NOT_OK(Need(1));
    *v = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU16(uint16_t* v) {
    DSKG_RETURN_NOT_OK(Need(2));
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v = static_cast<uint16_t>(
          *v | (static_cast<uint16_t>(
                    static_cast<unsigned char>(data_[pos_ + i]))
                << (8 * i)));
    }
    pos_ += 2;
    return Status::OK();
  }

  Status ReadU32(uint32_t* v) {
    DSKG_RETURN_NOT_OK(Need(4));
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return Status::OK();
  }

  Status ReadU64(uint64_t* v) {
    DSKG_RETURN_NOT_OK(Need(8));
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return Status::OK();
  }

  Status ReadBytes(void* dst, size_t n) {
    DSKG_RETURN_NOT_OK(Need(n));
    std::memcpy(dst, data_.data() + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  /// Counterpart of `PutString`. The view aliases the underlying buffer.
  Status ReadStringView(std::string_view* s) {
    uint32_t len = 0;
    DSKG_RETURN_NOT_OK(ReadU32(&len));
    DSKG_RETURN_NOT_OK(Need(len));
    *s = data_.substr(pos_, len);
    pos_ += len;
    return Status::OK();
  }

  Status ReadString(std::string* s) {
    std::string_view v;
    DSKG_RETURN_NOT_OK(ReadStringView(&v));
    s->assign(v);
    return Status::OK();
  }

  Status Skip(size_t n) {
    DSKG_RETURN_NOT_OK(Need(n));
    pos_ += n;
    return Status::OK();
  }

 private:
  Status Need(size_t n) const {
    if (data_.size() - pos_ < n) {
      return Status::IoError("truncated buffer: need " + std::to_string(n) +
                             " bytes at offset " + std::to_string(pos_) +
                             " of " + std::to_string(data_.size()));
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace dskg

#endif  // DSKG_COMMON_BYTES_H_
