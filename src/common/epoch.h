#ifndef DSKG_COMMON_EPOCH_H_
#define DSKG_COMMON_EPOCH_H_

/// \file epoch.h
/// Epoch-based read/write coordination for the online-update subsystem.
///
/// The protocol (KVell-style epoch reclamation, adapted to DSKG's
/// read-mostly dual store):
///
///   * Readers *pin* the current epoch for the duration of one query by
///     publishing it in a private slot — a handful of atomic operations,
///     no lock, no waiting on the writer. DSKG's read units are coarse
///     (one whole query), so pin overhead is noise.
///   * The single applier thread publishes a new store state (an atomic
///     pointer/index swap done by the caller), *advances* the epoch, and
///     then *waits for the old epoch to drain*: once no reader slot holds
///     an epoch at or below the pre-advance value, every in-flight reader
///     that could have observed the retired state has finished, and the
///     retired state may be reclaimed or mutated.
///
/// Memory ordering: all epoch traffic is sequentially consistent. The one
/// subtle reader obligation is the re-validation loop in `Pin` — a reader
/// must never end up published under an epoch older than the one the
/// writer is draining while reading the *new* state's predecessor. With
/// seq_cst, a reader whose slot holds epoch `e` observed every publication
/// the writer made before advancing to `e`, which is exactly the guarantee
/// `WaitUntilDrained` hands to the applier.
///
/// Slots: a fixed array of cache-line-aligned atomics. A pin claims the
/// first free slot with a CAS scan (readers outnumbering slots spin-wait;
/// with 64 slots and query-granular pins that is effectively never).

#include <atomic>
#include <cassert>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace dskg {

/// Coordinates one writer (the applier) with many pinned readers.
class EpochManager {
 public:
  static constexpr size_t kMaxReaders = 64;
  static constexpr uint64_t kIdle = 0;  ///< slot value: not pinned

  EpochManager() = default;
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// RAII pin: holds a reader slot published at the pin-time epoch.
  /// Movable so guards can be returned; not copyable.
  class Pin {
   public:
    Pin() = default;
    Pin(EpochManager* mgr, size_t slot) : mgr_(mgr), slot_(slot) {}
    Pin(Pin&& other) noexcept : mgr_(other.mgr_), slot_(other.slot_) {
      other.mgr_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        mgr_ = other.mgr_;
        slot_ = other.slot_;
        other.mgr_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    bool pinned() const { return mgr_ != nullptr; }

    /// The epoch this pin published (for tests/diagnostics).
    uint64_t epoch() const {
      assert(pinned());
      return mgr_->slots_[slot_].epoch.load(std::memory_order_seq_cst);
    }

   private:
    void Release() {
      if (mgr_ != nullptr) {
        mgr_->slots_[slot_].epoch.store(kIdle, std::memory_order_seq_cst);
        mgr_ = nullptr;
      }
    }
    EpochManager* mgr_ = nullptr;
    size_t slot_ = 0;
  };

  /// Pins the current epoch: claims a slot, publishes the epoch in it,
  /// and re-validates that the epoch did not advance mid-publish (if it
  /// did, republishes the newer value — the writer only ever waits on
  /// strictly older pins, so a pin at the *newer* epoch never blocks a
  /// drain it should not). Wait-free against the writer; spins only if
  /// all `kMaxReaders` slots are simultaneously claimed.
  Pin Enter() {
    for (;;) {
      for (size_t i = 0; i < kMaxReaders; ++i) {
        uint64_t expected = kIdle;
        uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
        if (!slots_[i].epoch.compare_exchange_strong(
                expected, e, std::memory_order_seq_cst)) {
          continue;  // slot taken
        }
        // Re-validate: if the writer advanced between our epoch load and
        // slot publish, move the pin forward so the writer never drains
        // around a stale-but-invisible pin.
        for (;;) {
          const uint64_t now = global_epoch_.load(std::memory_order_seq_cst);
          if (now == e) break;
          slots_[i].epoch.store(now, std::memory_order_seq_cst);
          e = now;
        }
        return Pin(this, i);
      }
      std::this_thread::yield();  // all slots busy: rare at query grain
    }
  }

  /// Current epoch value (starts at 1; `kIdle` is reserved).
  uint64_t current_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }

  /// Writer: advances the epoch and returns the *previous* value — the
  /// epoch whose readers must drain before retired state is touched.
  uint64_t Advance() {
    return global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  }

  /// Writer: blocks until no reader slot holds an epoch <= `epoch`.
  /// After it returns, any state published strictly before the matching
  /// `Advance` has no remaining observers and is safe to reclaim/mutate.
  void WaitUntilDrained(uint64_t epoch) const {
    for (size_t i = 0; i < kMaxReaders; ++i) {
      for (;;) {
        const uint64_t e = slots_[i].epoch.load(std::memory_order_seq_cst);
        if (e == kIdle || e > epoch) break;
        std::this_thread::yield();
      }
    }
  }

  /// Number of currently pinned slots (diagnostics; racy by nature).
  size_t ActivePins() const {
    size_t n = 0;
    for (size_t i = 0; i < kMaxReaders; ++i) {
      if (slots_[i].epoch.load(std::memory_order_seq_cst) != kIdle) ++n;
    }
    return n;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdle};
  };

  std::atomic<uint64_t> global_epoch_{1};
  Slot slots_[kMaxReaders];
};

/// Writer-side queue of retired state tagged with the epoch it was retired
/// in. Each shard of the online store keeps its own queues (share-nothing:
/// no cross-shard synchronization on the reclamation path); the injector
/// drains them after `WaitUntilDrained` proves the tagged epochs have no
/// remaining observers.
///
/// Not thread-safe: one owner pushes and drains. The epoch tag exists so
/// state that must outlive *two* publications (the dictionary's two-stage
/// id reclamation) can sit in the same queue as single-batch retirees.
template <typename T>
class RetireQueue {
 public:
  /// Queues `item`, retired as of `epoch` (its readers may be pinned at
  /// `epoch` or earlier, never later).
  void Push(uint64_t epoch, T item) {
    items_.push_back({epoch, std::move(item)});
  }

  /// Invokes `fn(item)` on — and removes — every item whose retire epoch
  /// is <= `drained_epoch`. Items retire in epoch order, so this is a
  /// prefix drain.
  template <typename Fn>
  void Drain(uint64_t drained_epoch, Fn&& fn) {
    size_t keep = 0;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].epoch <= drained_epoch) {
        fn(std::move(items_[i].item));
      } else {
        items_[keep++] = std::move(items_[i]);
      }
    }
    items_.resize(keep);
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  struct Entry {
    uint64_t epoch;
    T item;
  };
  std::vector<Entry> items_;
};

}  // namespace dskg

#endif  // DSKG_COMMON_EPOCH_H_
